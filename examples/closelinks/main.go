// Close links (Section 2.1 of the paper): the ECB Guideline 2018/876 notion
// of financial conflict of interest — two entities are close-linked when one
// holds at least 20% of the other's capital, directly or indirectly, or when
// a common third party holds at least 20% of both. The direct part runs as a
// declarative MetaLog program; the indirect part computes integrated
// ownership (the total share owned through the whole graph) natively and
// shows the links that only the indirect computation finds.
//
//	go run ./examples/closelinks
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/metalog"
	"repro/internal/vadalog"
)

func main() {
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(1500, 31))
	g := topo.Shareholding()
	own := finance.BuildOwnership(topo)
	fmt.Printf("shareholding graph: %d nodes, %d OWNS edges\n\n", g.NumNodes(), g.NumEdges())

	// Direct close links via MetaLog (threshold on single edges and common
	// direct parents).
	prog, err := metalog.Parse(finance.CloseLinksDirectProgram())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
		log.Fatal(err)
	}
	directPairs := map[[2]int64]bool{}
	for _, e := range g.EdgesByLabel("CLOSE_LINK") {
		a, b := int64(e.From), int64(e.To)
		if a > b {
			a, b = b, a
		}
		directPairs[[2]int64{a, b}] = true
	}
	fmt.Printf("direct close links (MetaLog):      %6d undirected pairs in %v\n",
		len(directPairs), time.Since(start).Round(time.Millisecond))

	// Full close links over integrated ownership.
	start = time.Now()
	links := finance.CloseLinks(own, own.Entities, 0.2, 1e-9, 100)
	fmt.Printf("full close links (integrated own): %6d undirected pairs in %v\n",
		len(links), time.Since(start).Round(time.Millisecond))

	// How much the indirect computation adds: integrated ownership follows
	// chains like a -> b -> c where each step is below the threshold on its
	// own path product but the accumulated share still crosses 20%.
	fmt.Printf("\nindirect-only links: %d (the conflict-of-interest cases a direct check misses)\n",
		len(links)-len(directPairs))

	// A concrete integrated-ownership vector for the busiest investor.
	busiest, best := 0, 0
	for e, stakes := range own.Out {
		if len(stakes) > best {
			busiest, best = e, len(stakes)
		}
	}
	io := finance.IntegratedOwnership(own, busiest, 1e-9, 100)
	over := 0
	for _, v := range io {
		if v >= 0.2 {
			over++
		}
	}
	fmt.Printf("\nbusiest investor (entity %d, %d direct stakes): integrated ownership reaches %d companies, %d above the 20%% threshold\n",
		busiest, best, len(io), over)
}
