// Company control (Examples 4.1 and 4.2 of the paper): the same intensional
// component expressed three ways — MetaLog over the property graph, plain
// Vadalog over extracted relations, and a native Go worklist — all agreeing
// on a synthetic scale-free shareholding network, including the joint-control
// cases a plain transitive closure would miss.
//
//	go run ./examples/control
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func main() {
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(2000, 7))
	g := topo.Shareholding()
	fmt.Printf("shareholding graph: %d nodes, %d OWNS edges\n\n", g.NumNodes(), g.NumEdges())

	// 1. MetaLog (Example 4.1), through MTV and the Vadalog engine, with the
	//    derived CONTROLS edges materialized back into the graph.
	prog, err := metalog.Parse(finance.ControlEntityProgram())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MetaLog program (Example 4.1):")
	fmt.Print(prog.String())
	res, err := metalog.Reason(prog, g, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	metalogPairs := countNonSelf(g)
	fmt.Printf("\nMetaLog pipeline: %d control edges (non-self) in %v (load %v, reason %v, flush %v)\n",
		metalogPairs, res.LoadDuration+res.ReasonDuration+res.FlushDuration,
		res.LoadDuration.Round(time.Microsecond), res.ReasonDuration.Round(time.Microsecond), res.FlushDuration.Round(time.Microsecond))

	// 2. Plain Vadalog (Example 4.2) over company/owns relations.
	own := finance.BuildOwnership(topo)
	db := vadalog.NewDatabase()
	for _, e := range own.Entities {
		db.MustAddFact("company", value.IntV(int64(e)))
	}
	for owner, stakes := range own.Out {
		for _, st := range stakes {
			db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
		}
	}
	start := time.Now()
	vres, err := vadalog.RunInPlace(vadalog.MustParse(finance.ControlVadalog()), db, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nonSelf := 0
	for _, f := range vres.Output("controls") {
		if !value.Equal(f[0], f[1]) {
			nonSelf++
		}
	}
	fmt.Printf("Vadalog (Example 4.2): %d control pairs (non-self) in %v\n", nonSelf, time.Since(start).Round(time.Microsecond))

	// 3. Native worklist baseline.
	start = time.Now()
	pairs := finance.NativeControl(own, false)
	fmt.Printf("native baseline:       %d control pairs (non-self) in %v\n", len(pairs), time.Since(start).Round(time.Microsecond))

	// Company groups from the control relation (Section 2.1: "virtual
	// concepts denoting a center of interest").
	groups := finance.Groups(pairs)
	largest := finance.Group{}
	for _, grp := range groups {
		if len(grp.Controlled) > len(largest.Controlled) {
			largest = grp
		}
	}
	fmt.Printf("\ncompany groups: %d; largest controls %d companies (ultimate controller: entity %d)\n",
		len(groups), len(largest.Controlled), largest.Ultimate)
}

func countNonSelf(g *pg.Graph) int {
	n := 0
	for _, e := range g.EdgesByLabel("CONTROLS") {
		if e.From != e.To {
			n++
		}
	}
	return n
}
