// The Bank of Italy Company KG walk-through (Sections 3.3, 5 and 6 of the
// paper): the Figure 4 design, its translations into the property-graph and
// relational models (Figures 6 and 8), the enforceable deployment artifacts,
// and the materialization of the intensional components over a synthetic
// register extract.
//
//	go run ./examples/companykg
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/models"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

func main() {
	// The Figure 4 super-schema, built with the design decisions narrated in
	// Section 3.3 (HOLDS/BELONGS_TO decoupling, total/disjoint person
	// generalization, intensional OWNS/CONTROLS/Family constructs, ...).
	schema := supermodel.CompanyKG()
	kg, err := core.NewKG(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 4: the Company KG design ==")
	fmt.Println(kg.Text())

	// Figure 6: the property-graph translation with multi-label tagging.
	pgRes, err := kg.Translate("pg", "multi-label")
	if err != nil {
		log.Fatal(err)
	}
	pgView, err := models.ReadPGSchema(pgRes.Dict, pgRes.Mapping.TargetOID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Figure 6: PG schema — %d node types, %d relationship types ==\n", len(pgView.Nodes), len(pgView.Rels))
	for _, n := range pgView.Nodes {
		fmt.Printf("  %v\n", n.Labels)
	}

	// Figure 8: the relational translation (table-per-class), with DDL.
	ddl, err := kg.DeploySQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 8: relational schema as DDL (excerpt) ==")
	printFirstLines(ddl, 24)

	// RDF-S for triplestore targets — generalizations survive natively.
	fmt.Println("== RDF-S deployment (excerpt) ==")
	printFirstLines(kg.DeployRDFS(), 8)

	// The intensional components of Section 2.1, registered in dependency
	// order: ownership compaction feeds control, which feeds the families.
	for _, c := range []struct{ name, src string }{
		{"ownership", finance.OwnershipProgram()},
		{"control", finance.ControlProgram()},
		{"family", finance.FamilyProgram()},
	} {
		if err := kg.AddIntensional(c.name, c.src); err != nil {
			log.Fatal(err)
		}
	}

	// A synthetic register extract standing in for the Chambers of Commerce
	// data, and the full Algorithm 2 materialization.
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(300, 2022))
	data := topo.CompanyKG()
	fmt.Printf("== Register extract: %d nodes, %d edges ==\n", data.NumNodes(), data.NumEdges())

	res, err := kg.Materialize(core.PGData(data), 1, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	names := kg.IntensionalComponents()
	for i, step := range res.Steps {
		fmt.Printf("  %-10s load=%-11v reason=%-11v flush=%-11v -> %d entities, %d edges, %d properties\n",
			names[i], step.LoadDuration.Round(1000), step.ReasonDuration.Round(1000), step.FlushDuration.Round(1000),
			len(step.Derived.NewEntities), len(step.Derived.NewEdges), step.Derived.UpdatedProps)
	}
	fmt.Printf("== Materialized intensional component ==\n")
	for _, label := range []string{"OWNS", "CONTROLS", "BELONGS_TO_FAMILY", "IS_RELATED_TO", "FAMILY_OWNS"} {
		fmt.Printf("  %-18s %d edges\n", label, len(data.EdgesByLabel(label)))
	}
	fmt.Printf("  %-18s %d nodes\n", "Family", len(data.NodesByLabel("Family")))
}

func printFirstLines(s string, n int) {
	lines := 0
	for i := 0; i < len(s); i++ {
		fmt.Print(string(s[i]))
		if s[i] == '\n' {
			lines++
			if lines >= n {
				fmt.Println("  ...")
				return
			}
		}
	}
}
