// Streaming supervision: new ownership stakes arrive from the register feed
// and the control relation is maintained incrementally — the step beyond the
// batch accumulation Section 6 of the paper describes. Each event propagates
// through the saturated fixpoint in milliseconds instead of recomputing it,
// and analysts watch for the moment a takeover crosses the 50% threshold
// (the COVID-19 takeover-monitoring scenario of the paper's companion work).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func main() {
	// A 5000-company register as the standing state.
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(5000, 12))
	own := finance.BuildOwnership(topo)
	db := vadalog.NewDatabase()
	for _, e := range own.Entities {
		db.MustAddFact("company", value.IntV(int64(e)))
	}
	for owner, stakes := range own.Out {
		for _, st := range stakes {
			db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
		}
	}

	prog := vadalog.MustParse(finance.ControlVadalog())
	start := time.Now()
	inc, err := vadalog.NewIncremental(prog, db, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseline := inc.DB().Count("controls")
	fmt.Printf("initial saturation: %d control facts over %d entities in %v\n\n",
		baseline, len(own.Entities), time.Since(start).Round(time.Millisecond))

	// The feed: four newly registered companies enter the graph — a raider,
	// two intermediaries and a target — then the raider quietly accumulates
	// stakes in the target through the intermediaries until the final
	// purchase tips the joint holding over 50%.
	raider, intermediaryA, intermediaryB, target := int64(9_000_000), int64(9_000_001), int64(9_000_002), int64(9_000_003)
	for _, c := range []int64{raider, intermediaryA, intermediaryB, target} {
		if err := inc.Add("company", value.IntV(c)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := inc.Propagate(); err != nil {
		log.Fatal(err)
	}
	events := []struct {
		desc string
		x, y int64
		pct  float64
	}{
		{"raider takes 70% of intermediary A", raider, intermediaryA, 0.70},
		{"raider takes 65% of intermediary B", raider, intermediaryB, 0.65},
		{"intermediary A buys 30% of the target", intermediaryA, target, 0.30},
		{"intermediary B buys 15% of the target", intermediaryB, target, 0.15},
		{"raider buys 10% of the target directly", raider, target, 0.10},
	}

	controls := func(x, y int64) bool {
		for _, f := range inc.DB().Facts("controls") {
			if f[0].I == x && f[1].I == y && f[0].K == value.Int {
				return true
			}
		}
		return false
	}

	for i, ev := range events {
		if err := inc.Add("owns", value.IntV(ev.x), value.IntV(ev.y), value.FloatV(ev.pct)); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		derived, err := inc.Propagate()
		if err != nil {
			log.Fatal(err)
		}
		alert := ""
		if controls(raider, target) {
			alert = "  << TAKEOVER: raider now controls the target"
		}
		fmt.Printf("event %d: %-42s propagated in %-10v (+%d facts)%s\n",
			i+1, ev.desc, time.Since(t0).Round(time.Microsecond), derived, alert)
	}

	if !controls(raider, target) {
		log.Fatal("expected the takeover to complete")
	}
	fmt.Printf("\nfinal control facts: %d (%d derived since saturation)\n",
		inc.DB().Count("controls"), inc.DB().Count("controls")-baseline)
	fmt.Println("the joint holding 30% + 15% + 10% = 55% crossed the majority threshold —")
	fmt.Println("the monotonic sum accumulated across propagations, no recomputation needed")
}
