// Model independence end to end (the central promise of the paper): the
// same intensional component Σ, written once in MetaLog against the
// super-schema, materializes over a *relational* deployment of the Company
// KG — rows of the Figure 8 table-per-class schema — and the enriched
// instance exports as a property graph. No rule was rewritten for either
// model: Algorithm 2 lifts the data into the instance super-constructs,
// reasons at super-model level, and flushes back.
//
//	go run ./examples/modelindependence
package main

import (
	"fmt"
	"log"

	"repro/internal/instance"
	"repro/internal/metalog"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func main() {
	schema := supermodel.CompanyKG()
	dict, err := instance.NewDictionary(schema)
	if err != nil {
		log.Fatal(err)
	}

	// A relational deployment: table-per-class rows (each business appears
	// in Person, LegalPerson and Business, joined on fiscalCode) and an OWNS
	// junction table with FK columns — exactly what the Figure 8 DDL stores.
	str, flt := value.Str, value.FloatV
	tables := map[string][]instance.Row{}
	companies := []struct {
		code, name string
	}{
		{"IT0001", "Alfa Holding"},
		{"IT0002", "Beta Industrie"},
		{"IT0003", "Gamma Logistica"},
		{"IT0004", "Delta Retail"},
		{"IT0005", "Epsilon Energia"},
	}
	for _, c := range companies {
		tables["Person"] = append(tables["Person"], instance.Row{"fiscalCode": str(c.code)})
		tables["LegalPerson"] = append(tables["LegalPerson"], instance.Row{
			"fiscalCode": str(c.code), "businessName": str(c.name), "legalNature": str("spa"),
		})
		tables["Business"] = append(tables["Business"], instance.Row{
			"fiscalCode": str(c.code), "shareholdingCapital": flt(1_000_000),
		})
	}
	owns := func(x, y string, pct float64) instance.Row {
		return instance.Row{
			"fk_owns_src_fiscalCode": str(x),
			"fk_owns_dst_fiscalCode": str(y),
			"percentage":             flt(pct),
		}
	}
	tables["OWNS"] = []instance.Row{
		owns("IT0001", "IT0002", 0.70), // Alfa majority-owns Beta
		owns("IT0001", "IT0003", 0.35), // ... and jointly with Beta ...
		owns("IT0002", "IT0003", 0.30), // ... controls Gamma
		owns("IT0003", "IT0004", 0.60), // Gamma majority-owns Delta
		owns("IT0004", "IT0005", 0.10), // Delta holds a sliver of Epsilon
	}

	// Σ: company control, Example 4.1, written once at super-model level.
	sigma := metalog.MustParse(`
		(x: Business) -> (x) [c: CONTROLS] (x).
		(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
			v = sum(w, <z>), v > 0.5
			-> (x) [c: CONTROLS] (y).
	`)

	res, err := instance.Materialize(dict,
		instance.RelationalSource{Inst: &instance.RelationalInstance{Tables: tables}},
		sigma, 555, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance super-constructs: %d entities, %d edges (ground + derived)\n",
		len(res.Loaded.Entities), res.Loaded.EdgeCount)
	fmt.Printf("derived %d CONTROLS edges (load %v, reason %v, flush %v)\n\n",
		len(res.Derived.NewEdges), res.LoadDuration.Round(1000), res.ReasonDuration.Round(1000), res.FlushDuration.Round(1000))

	// Export the enriched instance as a property graph: the full
	// relational -> super-model -> reasoning -> property-graph circle.
	out := res.ExportPG()
	name := map[string]string{}
	for _, c := range companies {
		name[c.code] = c.name
	}
	codeOf := map[int64]string{}
	for _, n := range out.NodesByLabel("Business") {
		codeOf[int64(n.ID)] = n.Props["fiscalCode"].S
	}
	fmt.Println("control structure (exported property graph):")
	for _, e := range out.EdgesByLabel("CONTROLS") {
		from, to := codeOf[int64(e.From)], codeOf[int64(e.To)]
		if from == to {
			continue
		}
		fmt.Printf("  %-16s controls %s\n", name[from], name[to])
	}
}
