// Quickstart: design a small Knowledge Graph in GSL, attach an intensional
// component in MetaLog, deploy it to SQL, and materialize the derived
// knowledge over a data instance — the full KGModel methodology in ~80
// lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func main() {
	// 1. Design the extensional component in the textual GSL dialect
	//    (Section 3 of the paper; kgse renders the same design visually).
	kg, err := core.ParseGSL(`schema SupplyChain oid 42 {
		node Company {
			vat: string @id @unique
			country: string
		}
		node Product {
			sku: string @id
			price: float @range(0, 1000000)
		}
		edge SUPPLIES (Company 0..N -> 0..N Company) {
			volume: float
		}
		edge MAKES (Company 0..N -> 1..1 Product)
		intensional edge DEPENDS_ON (Company 0..N -> 0..N Company)
	}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== GSL design ==")
	fmt.Println(kg.Text())

	// 2. Attach the intensional component: DEPENDS_ON is the transitive
	//    closure of supply relationships (a MetaLog path pattern).
	err = kg.AddIntensional("dependencies", `
		(x: Company) ([: SUPPLIES])+ (y: Company) -> (x) [d: DEPENDS_ON] (y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Deploy: SSST translates the super-schema into the relational model
	//    and emits DDL (Section 5).
	ddl, err := kg.DeploySQL()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Relational deployment (SSST + DDL emitter) ==")
	fmt.Println(ddl)

	// 4. Build a data instance and materialize (Algorithm 2, Section 6).
	data := pg.New()
	company := func(vat, country string) pg.OID {
		return data.AddNode([]string{"Company"}, pg.Props{
			"vat": value.Str(vat), "country": value.Str(country),
		}).ID
	}
	acme := company("IT001", "IT")
	bolt := company("DE002", "DE")
	chip := company("TW003", "TW")
	data.MustAddEdge(bolt, acme, "SUPPLIES", pg.Props{"volume": value.FloatV(100)})
	data.MustAddEdge(chip, bolt, "SUPPLIES", pg.Props{"volume": value.FloatV(60)})

	res, err := kg.Materialize(core.PGData(data), 1, vadalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_, edges, _ := res.Totals()
	fmt.Printf("== Materialization: %d DEPENDS_ON edges derived ==\n", edges)
	names := map[pg.OID]string{}
	for _, n := range data.NodesByLabel("Company") {
		names[n.ID] = n.Props["vat"].S
	}
	for _, e := range data.EdgesByLabel("DEPENDS_ON") {
		fmt.Printf("  %s depends on %s\n", names[e.To], names[e.From])
	}
}
