GO ?= go

.PHONY: build vet test test-race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# test-race is part of tier-1 verification: the full suite under the race
# detector, plus one short iteration of the parallel-evaluation benchmarks
# (E1 graph statistics and E11 path-pattern reasoning) so the sharded
# fixpoint and the concurrent statistics tasks run under -race at benchmark
# scale too. The cancellation / trace-determinism tests rerun with -count=3:
# they interrupt the worker pool mid-fan-out and compare run traces across
# worker counts, the shapes most likely to surface a scheduling-dependent
# race.
test-race: build
	$(GO) test -race ./...
	$(GO) test -race -count=3 -run 'TestCancel|TestTimeout|TestCallerDeadline|TestGoldenTrace|TestTraceSequentialFallbacks' ./internal/vadalog/
	$(GO) test -race -run '^$$' -bench 'BenchmarkE11DescFrom|BenchmarkE1GraphStats' -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
