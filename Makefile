GO ?= go

.PHONY: build vet test test-race test-chaos fuzz-smoke check bench bench-storage

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# test-race is part of tier-1 verification: the full suite under the race
# detector, plus one short iteration of the parallel-evaluation benchmarks
# (E1 graph statistics and E11 path-pattern reasoning) so the sharded
# fixpoint and the concurrent statistics tasks run under -race at benchmark
# scale too. The cancellation / trace-determinism tests rerun with -count=3:
# they interrupt the worker pool mid-fan-out and compare run traces across
# worker counts, the shapes most likely to surface a scheduling-dependent
# race.
test-race: build
	$(GO) test -race ./...
	$(GO) test -race -count=3 -run 'TestCancel|TestTimeout|TestCallerDeadline|TestGoldenTrace|TestTraceSequentialFallbacks' ./internal/vadalog/
	$(GO) test -race -count=3 -run 'TestFrozenConcurrentReaders|TestFrozenQueryConcurrent|TestConcurrentFrozenReaders' ./internal/pg/ ./internal/metalog/ ./internal/symtab/
	$(GO) test -race -run '^$$' -bench 'BenchmarkE11DescFrom|BenchmarkE1GraphStats' -benchtime 1x .

# test-chaos sweeps every registered fault-injection site across error and
# panic modes (see internal/instance/chaos_test.go and
# internal/vadalog/fault_test.go), asserting the atomicity invariant,
# panic containment, and goroutine hygiene. -count=2 reruns the sweep so a
# site left armed or a counter left dirty by the first pass fails the second.
test-chaos: build
	$(GO) test -count=2 -run 'TestChaos|TestStratum|TestShard|TestBestEffort|TestRetry|TestWriteSites|TestMaterializeFlushErrorRollsBack' ./internal/instance/ ./internal/vadalog/ ./internal/pg/ ./internal/fault/

# fuzz-smoke gives each parser fuzz target a short budget — enough to shake
# out regressions in the corpus without turning CI into a fuzzing farm.
fuzz-smoke: build
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/metalog/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/gsl/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/vadalog/

# check is the tier-1 gate: vet + full suite, the race-detector pass, the
# chaos sweep, and the fuzz smoke test.
check: test test-race test-chaos fuzz-smoke

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-storage captures the storage microbenchmarks (EXPERIMENTS.md E19) —
# frozen vs mutable label scans and adjacency walks in internal/pg, and the
# hashed vs string-keyed Relation insert/probe paths in internal/vadalog —
# into BENCH_storage.json via cmd/benchjson. The committed file is the
# baseline this refactor is judged against; regenerate on comparable hardware
# before comparing numbers.
bench-storage: build
	$(GO) test -run '^$$' -bench 'BenchmarkStorage' -benchmem ./internal/pg/ ./internal/vadalog/ | tee BENCH_storage.txt
	$(GO) run ./cmd/benchjson < BENCH_storage.txt > BENCH_storage.json
	rm -f BENCH_storage.txt
