GO ?= go

.PHONY: build vet test test-race test-chaos fuzz-smoke cover check bench bench-storage bench-serve bench-snapshot bench-incr bench-wal bench-plan bench-load

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# test-race is part of tier-1 verification: the full suite under the race
# detector, plus one short iteration of the parallel-evaluation benchmarks
# (E1 graph statistics and E11 path-pattern reasoning) so the sharded
# fixpoint and the concurrent statistics tasks run under -race at benchmark
# scale too. The cancellation / trace-determinism tests rerun with -count=3:
# they interrupt the worker pool mid-fan-out and compare run traces across
# worker counts, the shapes most likely to surface a scheduling-dependent
# race.
test-race: build
	$(GO) test -race ./...
	$(GO) test -race -count=3 -run 'TestCancel|TestTimeout|TestCallerDeadline|TestGoldenTrace|TestTraceSequentialFallbacks' ./internal/vadalog/
	$(GO) test -race -count=3 -run 'TestFrozenConcurrentReaders|TestFrozenQueryConcurrent|TestConcurrentFrozenReaders' ./internal/pg/ ./internal/metalog/ ./internal/symtab/
	$(GO) test -race -count=2 -run 'TestServeSoak|TestConcurrentQueriesShareSnapshot' ./internal/server/
	$(GO) test -race -count=2 -run 'TestConcurrentBulkIngest' ./internal/pg/
	$(GO) test -race -run '^$$' -bench 'BenchmarkE11DescFrom|BenchmarkE1GraphStats' -benchtime 1x .

# test-chaos sweeps every registered fault-injection site across error and
# panic modes (see internal/instance/chaos_test.go and
# internal/vadalog/fault_test.go), asserting the atomicity invariant,
# panic containment, and goroutine hygiene. -count=2 reruns the sweep so a
# site left armed or a counter left dirty by the first pass fails the second.
test-chaos: build
	$(GO) test -count=2 -run 'TestChaos|TestStratum|TestShard|TestBestEffort|TestRetry|TestWriteSites|TestMaterializeFlushErrorRollsBack' ./internal/instance/ ./internal/vadalog/ ./internal/pg/ ./internal/fault/ ./internal/server/
	$(GO) test -count=2 -run 'TestWriteFileFaultsLeaveNoPartialFile|TestOpenMmapFaultFallsBack' ./internal/snapfile/
	$(GO) test -count=2 -run 'TestReloadCorruptSnapshotKeepsServing|TestSnapshotMmapFaultStillServes' ./internal/server/
	$(GO) test -count=2 -run 'TestFault|TestChaos' ./internal/wal/

# fuzz-smoke gives each parser fuzz target a short budget — enough to shake
# out regressions in the corpus without turning CI into a fuzzing farm.
fuzz-smoke: build
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/metalog/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/gsl/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime 10s -run '^$$' ./internal/vadalog/
	$(GO) test -fuzz '^FuzzDecodeQuery$$' -fuzztime 10s -run '^$$' ./internal/server/
	$(GO) test -fuzz '^FuzzDecodeMutation$$' -fuzztime 10s -run '^$$' ./internal/server/
	$(GO) test -fuzz '^FuzzOpenSnapshot$$' -fuzztime 10s -run '^$$' ./internal/snapfile/
	$(GO) test -fuzz '^FuzzReplayWAL$$' -fuzztime 10s -run '^$$' ./internal/wal/
	$(GO) test -fuzz '^FuzzPlanPattern$$' -fuzztime 10s -run '^$$' ./internal/metalog/
	$(GO) test -fuzz '^FuzzExplain$$' -fuzztime 10s -run '^$$' ./internal/server/
	$(GO) test -fuzz '^FuzzBulkLoadBatch$$' -fuzztime 10s -run '^$$' ./internal/pg/

# cover enforces the per-package coverage floors on the newest subsystems —
# the serving layer and the on-disk snapshot format both carry the strictest
# gate (70% of statements) so their suites cannot silently rot. Profiles are
# written to temp files and removed; only the threshold checks are
# CI-visible.
cover: build
	@$(GO) test -coverprofile=cover_server.out ./internal/server/
	@total=$$($(GO) tool cover -func=cover_server.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_server.out; \
	echo "internal/server coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/server coverage $$total% is below the 70% floor"; exit 1; }
	@$(GO) test -coverprofile=cover_snapfile.out ./internal/snapfile/
	@total=$$($(GO) tool cover -func=cover_snapfile.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_snapfile.out; \
	echo "internal/snapfile coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/snapfile coverage $$total% is below the 70% floor"; exit 1; }
	@$(GO) test -coverprofile=cover_overlay.out ./internal/overlay/
	@total=$$($(GO) tool cover -func=cover_overlay.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_overlay.out; \
	echo "internal/overlay coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/overlay coverage $$total% is below the 70% floor"; exit 1; }
	@$(GO) test -coverprofile=cover_wal.out ./internal/wal/
	@total=$$($(GO) tool cover -func=cover_wal.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_wal.out; \
	echo "internal/wal coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/wal coverage $$total% is below the 70% floor"; exit 1; }
	@$(GO) test -coverprofile=cover_plan.out ./internal/plan/
	@total=$$($(GO) tool cover -func=cover_plan.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_plan.out; \
	echo "internal/plan coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/plan coverage $$total% is below the 70% floor"; exit 1; }
	@$(GO) test -coverprofile=cover_pg.out ./internal/pg/
	@total=$$($(GO) tool cover -func=cover_pg.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f cover_pg.out; \
	echo "internal/pg coverage: $$total% (floor 70%)"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70.0) ? 0 : 1 }' || \
	{ echo "FAIL: internal/pg coverage $$total% is below the 70% floor"; exit 1; }

# check is the tier-1 gate: vet + full suite, the race-detector pass, the
# chaos sweep, the fuzz smoke test, and the coverage floor.
check: test test-race test-chaos fuzz-smoke cover

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-storage captures the storage microbenchmarks (EXPERIMENTS.md E19) —
# frozen vs mutable label scans and adjacency walks in internal/pg, and the
# hashed vs string-keyed Relation insert/probe paths in internal/vadalog —
# into BENCH_storage.json via cmd/benchjson. The committed file is the
# baseline this refactor is judged against; regenerate on comparable hardware
# before comparing numbers.
bench-storage: build
	$(GO) test -run '^$$' -bench 'BenchmarkStorage' -benchmem ./internal/pg/ ./internal/vadalog/ | tee BENCH_storage.txt
	$(GO) run ./cmd/benchjson < BENCH_storage.txt > BENCH_storage.json
	rm -f BENCH_storage.txt

# bench-serve captures the E20 serving benchmarks (EXPERIMENTS.md) — /query
# throughput over a real listener at 1/2/8 concurrent clients, the
# latency-bound variant whose C8/C1 ratio is the concurrency acceptance
# criterion, and the cache fast path — into BENCH_serve.json via
# cmd/benchjson. Fixed iteration counts keep the wall-clock bounded; the
# committed file is the baseline, regenerate on comparable hardware before
# comparing numbers.
bench-serve: build
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchtime 200x -benchmem ./internal/server/ | tee BENCH_serve.txt
	$(GO) run ./cmd/benchjson < BENCH_serve.txt > BENCH_serve.json
	rm -f BENCH_serve.txt

# bench-snapshot captures the E21 cold-start benchmarks (EXPERIMENTS.md) —
# parse+freeze of the E19 reference JSON versus snapfile.Open of the same
# graph (validation-only, and with the lazy facade forced), plus the encode
# path — into BENCH_snapshot.json via cmd/benchjson. The acceptance target
# is snapfile-open at least 50x faster than parse-freeze; the committed
# file is the baseline, regenerate on comparable hardware before comparing.
bench-snapshot: build
	$(GO) test -run '^$$' -bench 'BenchmarkSnapshot' -benchtime 2s -benchmem ./internal/snapfile/ | tee BENCH_snapshot.txt
	$(GO) run ./cmd/benchjson < BENCH_snapshot.txt > BENCH_snapshot.json
	rm -f BENCH_snapshot.txt

# bench-incr captures the E22 incremental-maintenance benchmarks
# (EXPERIMENTS.md) — one 0.1% edge-churn batch through Maintainer.Apply
# versus the full fixpoint rebuild it replaces — into BENCH_incr.json via
# cmd/benchjson. The acceptance criterion (churn batch < 1% of rebuild wall
# time) is enforced on every `go test ./...` by TestIncrChurnRatio; the
# committed file is the baseline, regenerate on comparable hardware before
# comparing numbers.
bench-incr: build
	$(GO) test -run '^$$' -bench 'BenchmarkIncr' -benchmem ./internal/vadalog/ | tee BENCH_incr.txt
	$(GO) run ./cmd/benchjson < BENCH_incr.txt > BENCH_incr.json
	rm -f BENCH_incr.txt

# bench-wal captures the E23 durability benchmarks (EXPERIMENTS.md) —
# /mutate latency (mean plus p50/p99 custom metrics) with the write-ahead
# log disabled and under each fsync policy — into BENCH_wal.json via
# cmd/benchjson, and runs the E23 acceptance gate: the "interval" policy
# must cost less than 10% over running with no WAL at all. The committed
# file is the baseline, regenerate on comparable hardware before comparing.
bench-wal: build
	$(GO) test -run '^$$' -bench 'BenchmarkWALMutate' -benchtime 300x -benchmem ./internal/server/ | tee BENCH_wal.txt
	RUN_WAL_GATE=1 $(GO) test -run '^TestWALIntervalOverheadGate$$' -count=1 ./internal/server/
	$(GO) run ./cmd/benchjson < BENCH_wal.txt > BENCH_wal.json
	rm -f BENCH_wal.txt

# bench-plan captures the E24 query-planning benchmarks (EXPERIMENTS.md) —
# one company's ownership-closure point query over the E1 shareholding graph,
# evaluated through the written-order program versus the cost-based plan
# (join reordering + demand transformation) — into BENCH_plan.json via
# cmd/benchjson, and runs the E24 acceptance gate: the planned point query
# must evaluate at least 5x faster than the unplanned one. The committed
# file is the baseline, regenerate on comparable hardware before comparing.
bench-plan: build
	$(GO) test -run '^$$' -bench 'BenchmarkPlanPointQuery' -benchtime 30x -benchmem ./internal/metalog/ | tee BENCH_plan.txt
	RUN_PLAN_GATE=1 $(GO) test -run '^TestPlanPointQueryGate$$' -count=1 ./internal/metalog/
	$(GO) run ./cmd/benchjson < BENCH_plan.txt > BENCH_plan.json
	rm -f BENCH_plan.txt

# bench-load captures the E25 streaming-ingest benchmarks (EXPERIMENTS.md) —
# stream-vs-materialize load legs at 1M/10M/100M edges, each in a fresh child
# process so peak RSS (VmHWM) is per-leg, plus the delayed-backend worker
# floor pair — into BENCH_load.json via cmd/benchjson (-strip-procs so gate
# lookups are name-stable), then runs the E25 acceptance gates: W=8 ingest at
# least 3x W=1 edges/sec against the backend floor, and stream peak RSS at
# most 25% of the materializing generator's at 10M edges. The 100M leg needs
# ~20 GB and a few minutes; the committed file is the baseline, regenerate on
# comparable hardware before comparing numbers.
bench-load: build
	LOADBENCH_FULL=1 $(GO) test -run '^$$' -bench 'BenchmarkLoad' -benchtime 1x -timeout 60m ./internal/fingraph/ | tee BENCH_load.txt
	$(GO) run ./cmd/benchjson -strip-procs < BENCH_load.txt > BENCH_load.json
	RUN_LOAD_GATE=1 $(GO) test -run '^TestBenchLoadGates$$' -count=1 ./internal/fingraph/
	rm -f BENCH_load.txt
