GO ?= go

.PHONY: build test test-race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# test-race is part of tier-1 verification: the full suite under the race
# detector, plus one short iteration of the parallel-evaluation benchmarks
# (E1 graph statistics and E11 path-pattern reasoning) so the sharded
# fixpoint and the concurrent statistics tasks run under -race at benchmark
# scale too.
test-race: build
	$(GO) test -race ./...
	$(GO) test -race -run '^$$' -bench 'BenchmarkE11DescFrom|BenchmarkE1GraphStats' -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
