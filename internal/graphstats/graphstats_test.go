package graphstats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pg"
)

func ring(n int) *pg.Graph {
	g := pg.New()
	ids := make([]pg.OID, n)
	for i := range ids {
		ids[i] = g.AddNode([]string{"N"}, nil).ID
	}
	for i := range ids {
		g.MustAddEdge(ids[i], ids[(i+1)%n], "E", nil)
	}
	return g
}

func TestSCCRing(t *testing.T) {
	g := ring(5)
	sccs := SCC(g)
	if len(sccs) != 1 || len(sccs[0]) != 5 {
		t.Fatalf("ring SCCs = %v", sccs)
	}
}

func TestSCCChain(t *testing.T) {
	g := pg.New()
	var prev pg.OID
	for i := 0; i < 6; i++ {
		n := g.AddNode([]string{"N"}, nil)
		if i > 0 {
			g.MustAddEdge(prev, n.ID, "E", nil)
		}
		prev = n.ID
	}
	sccs := SCC(g)
	if len(sccs) != 6 {
		t.Fatalf("chain must have 6 trivial SCCs, got %d", len(sccs))
	}
}

func TestSCCTwoComponents(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	c := g.AddNode([]string{"N"}, nil).ID
	d := g.AddNode([]string{"N"}, nil).ID
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(b, a, "E", nil)
	g.MustAddEdge(b, c, "E", nil)
	g.MustAddEdge(c, d, "E", nil)
	g.MustAddEdge(d, c, "E", nil)
	sccs := SCC(g)
	if len(sccs) != 2 {
		t.Fatalf("SCCs = %v", sccs)
	}
	if len(sccs[0]) != 2 || len(sccs[1]) != 2 {
		t.Errorf("component sizes wrong: %v", sccs)
	}
}

func TestSCCDeepChainNoStackOverflow(t *testing.T) {
	// The iterative Tarjan must survive paths far deeper than the goroutine
	// stack would allow recursively.
	g := pg.New()
	var prev pg.OID
	const n = 200_000
	for i := 0; i < n; i++ {
		node := g.AddNode(nil, nil)
		if i > 0 {
			g.MustAddEdge(prev, node.ID, "E", nil)
		}
		prev = node.ID
	}
	if got := len(SCC(g)); got != n {
		t.Fatalf("SCC count = %d", got)
	}
}

func TestWCC(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"N"}, nil).ID
	b := g.AddNode([]string{"N"}, nil).ID
	g.AddNode([]string{"N"}, nil) // isolated
	g.MustAddEdge(a, b, "E", nil)
	wccs := WCC(g)
	if len(wccs) != 2 {
		t.Fatalf("WCCs = %v", wccs)
	}
}

// TestSCCRefinesWCC is a property-based test: every SCC is contained in a
// single WCC, and the component partitions cover all nodes exactly once.
func TestSCCRefinesWCC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := pg.New()
		n := 20 + rng.Intn(30)
		ids := make([]pg.OID, n)
		for i := range ids {
			ids[i] = g.AddNode([]string{"N"}, nil).ID
		}
		for i := 0; i < n*2; i++ {
			g.MustAddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "E", nil)
		}
		sccs := SCC(g)
		wccs := WCC(g)
		wccOf := map[pg.OID]int{}
		covered := 0
		for wi, comp := range wccs {
			for _, id := range comp {
				wccOf[id] = wi
				covered++
			}
		}
		if covered != n {
			return false
		}
		sccCovered := 0
		for _, comp := range sccs {
			sccCovered += len(comp)
			w := wccOf[comp[0]]
			for _, id := range comp {
				if wccOf[id] != w {
					return false
				}
			}
		}
		return sccCovered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := pg.New()
	a := g.AddNode(nil, nil).ID
	b := g.AddNode(nil, nil).ID
	c := g.AddNode(nil, nil).ID
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(b, c, "E", nil)
	g.MustAddEdge(c, a, "E", nil)
	if got := AvgClustering(g, 0); got < 0.999 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	// A star has zero clustering.
	s := pg.New()
	hub := s.AddNode(nil, nil).ID
	for i := 0; i < 5; i++ {
		leaf := s.AddNode(nil, nil).ID
		s.MustAddEdge(hub, leaf, "E", nil)
	}
	if got := AvgClustering(s, 0); got != 0 {
		t.Errorf("star clustering = %v, want 0", got)
	}
}

func TestPowerLawMLE(t *testing.T) {
	// A synthetic Zipf-ish sample with alpha ~2.
	rng := rand.New(rand.NewSource(1))
	var degrees []int
	for i := 0; i < 20000; i++ {
		u := rng.Float64()
		k := int(1 / (1 - u)) // pareto with alpha ~ 2
		if k > 100000 {
			k = 100000
		}
		degrees = append(degrees, k)
	}
	alpha, xmin := PowerLawMLE(degrees)
	if xmin != 1 {
		t.Errorf("xmin = %d", xmin)
	}
	if alpha < 1.6 || alpha > 2.4 {
		t.Errorf("alpha = %v, want ~2", alpha)
	}
	// Degenerate samples return no fit.
	if a, _ := PowerLawMLE([]int{0, 0}); a != 0 {
		t.Errorf("degenerate fit = %v", a)
	}
}

func TestComputeOnRing(t *testing.T) {
	s := Compute(ring(10))
	if s.Nodes != 10 || s.Edges != 10 {
		t.Fatalf("sizes = %d/%d", s.Nodes, s.Edges)
	}
	if s.SCCCount != 1 || s.SCCMaxSize != 10 {
		t.Errorf("SCC stats wrong: %+v", s)
	}
	if s.WCCCount != 1 || s.WCCMaxSize != 10 {
		t.Errorf("WCC stats wrong: %+v", s)
	}
	if s.AvgInDegreeAll != 1 || s.MaxInDegree != 1 {
		t.Errorf("degree stats wrong: %+v", s)
	}
	if s.Table() == "" {
		t.Error("table rendering empty")
	}
}

func TestDegreeHelpers(t *testing.T) {
	g := pg.New()
	a := g.AddNode(nil, nil).ID
	b := g.AddNode(nil, nil).ID
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(a, b, "E", nil)
	if got := OutDegrees(g); got[0] != 2 || got[1] != 0 {
		t.Errorf("out degrees = %v", got)
	}
	if got := InDegrees(g); got[0] != 0 || got[1] != 2 {
		t.Errorf("in degrees = %v", got)
	}
	h := DegreeHistogram([]int{1, 1, 2})
	if h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	s := Compute(pg.New())
	if s.Nodes != 0 || s.SCCCount != 0 {
		t.Errorf("empty graph stats = %+v", s)
	}
}

// TestComputeWorkersIdentical: every Stats field — including the two
// floating-point averages built from sharded partial sums — must be exactly
// equal for any worker count, on random graphs large enough to split into
// multiple clustering shards.
func TestComputeWorkersIdentical(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := pg.New()
		n := 600 + rng.Intn(400)
		ids := make([]pg.OID, n)
		for i := range ids {
			ids[i] = g.AddNode([]string{"N"}, nil).ID
		}
		for i := 0; i < n*3; i++ {
			g.MustAddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "E", nil)
		}
		base := ComputeWorkers(g, 1)
		for _, w := range []int{2, 8} {
			if got := ComputeWorkers(g, w); got != base {
				t.Fatalf("seed %d: workers=%d stats differ:\n%+v\nvs workers=1:\n%+v", seed, w, got, base)
			}
		}
	}
}
