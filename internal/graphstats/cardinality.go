package graphstats

import "repro/internal/pg"

// LabelCardinalities counts the nodes and edges carrying each label — the
// cheap, single-pass slice of the statistics this package computes. Unlike
// Compute, which walks the whole graph for SCCs, clustering and degree
// distributions, this touches only the per-label postings the frozen layout
// already maintains, so it is safe to run at every Freeze()/snapshot load.
// It is the entry point the query planner's statistics catalog builds on
// (see internal/plan.ComputeStats).
func LabelCardinalities(g pg.View) (nodes, edges map[string]int) {
	nodes = make(map[string]int)
	edges = make(map[string]int)
	for _, l := range g.NodeLabels() {
		nodes[l] = len(g.NodesByLabel(l))
	}
	for _, l := range g.EdgeLabels() {
		edges[l] = len(g.EdgesByLabel(l))
	}
	return nodes, edges
}
