// Package graphstats computes the topological statistics that Section 2.1 of
// the paper reports for the Bank of Italy shareholding graph: strongly and
// weakly connected components, degree statistics, the average clustering
// coefficient, and a power-law fit of the degree distribution (the paper
// observes a scale-free structure, as common in financial networks).
package graphstats

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/pg"
	"repro/internal/sortedset"
)

// Stats mirrors the figures of Section 2.1.
type Stats struct {
	Nodes int
	Edges int

	SCCCount   int
	SCCAvgSize float64
	SCCMaxSize int

	WCCCount   int
	WCCAvgSize float64
	WCCMaxSize int

	// Degree averages over all nodes (edges/nodes) and over nodes with
	// non-zero degree of the respective direction. The paper's in/out
	// averages (3.12 / 1.78) are computed over active nodes, which is why
	// they differ from edges/nodes.
	AvgInDegreeAll     float64
	AvgOutDegreeAll    float64
	AvgInDegreeActive  float64
	AvgOutDegreeActive float64
	MaxInDegree        int
	MaxOutDegree       int

	AvgClusteringCoefficient float64

	// PowerLawAlpha is the maximum-likelihood exponent of a discrete
	// power-law fitted to the in-degree distribution (degrees >= XMin).
	PowerLawAlpha float64
	PowerLawXMin  int
}

// Compute derives all statistics for the graph, using every available CPU.
// The clustering coefficient is computed on the undirected simple projection
// of the graph; for graphs with more than maxClusteringNodes nodes it is
// estimated on a deterministic sample of nodes, which is standard practice at
// the scale of Section 2.1.
func Compute(g pg.View) Stats { return ComputeWorkers(g, runtime.NumCPU()) }

// ComputeWorkers is Compute with an explicit degree of parallelism. The four
// independent analyses — SCC, WCC, degree statistics with the power-law fit,
// and clustering — run as concurrent tasks, and the clustering sample is
// additionally sharded across workers. The result is identical for every
// workers value: the graph is read-only during computation, the analyses
// share no state, and the clustering partial sums are reduced in a fixed
// shard order that does not depend on the worker count (the workers == 1
// path folds the very same shards in the very same order).
func ComputeWorkers(g pg.View, workers int) Stats {
	const maxClusteringNodes = 200_000

	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes == 0 {
		return s
	}

	var sccs, wccs [][]pg.OID
	runTasks(workers,
		func() { sccs = SCC(g) },
		func() { wccs = WCC(g) },
		func() {
			var inSum, outSum, inActive, outActive int
			var indegrees []int
			for _, n := range g.Nodes() {
				in, out := g.InDegree(n.ID), g.OutDegree(n.ID)
				inSum += in
				outSum += out
				if in > 0 {
					inActive++
				}
				if out > 0 {
					outActive++
				}
				if in > s.MaxInDegree {
					s.MaxInDegree = in
				}
				if out > s.MaxOutDegree {
					s.MaxOutDegree = out
				}
				indegrees = append(indegrees, in)
			}
			s.AvgInDegreeAll = float64(inSum) / float64(s.Nodes)
			s.AvgOutDegreeAll = float64(outSum) / float64(s.Nodes)
			if inActive > 0 {
				s.AvgInDegreeActive = float64(inSum) / float64(inActive)
			}
			if outActive > 0 {
				s.AvgOutDegreeActive = float64(outSum) / float64(outActive)
			}
			s.PowerLawAlpha, s.PowerLawXMin = PowerLawMLE(indegrees)
		},
		func() { s.AvgClusteringCoefficient = avgClusteringWorkers(g, maxClusteringNodes, workers) },
	)

	s.SCCCount = len(sccs)
	for _, c := range sccs {
		if len(c) > s.SCCMaxSize {
			s.SCCMaxSize = len(c)
		}
	}
	s.SCCAvgSize = float64(s.Nodes) / float64(max(1, s.SCCCount))

	s.WCCCount = len(wccs)
	for _, c := range wccs {
		if len(c) > s.WCCMaxSize {
			s.WCCMaxSize = len(c)
		}
	}
	s.WCCAvgSize = float64(s.Nodes) / float64(max(1, s.WCCCount))
	return s
}

// runTasks executes the tasks on up to workers goroutines and waits for all
// of them; workers <= 1 runs them in order on the calling goroutine. Tasks
// must write to disjoint state.
func runTasks(workers int, tasks ...func()) {
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t func()) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t()
		}(t)
	}
	wg.Wait()
}

// SCC returns the strongly connected components of the graph using an
// iterative Tarjan algorithm (the recursion is unrolled so that graphs with
// millions of nodes do not overflow the stack). Components are returned with
// their member node OIDs sorted, and components sorted by first member.
func SCC(g pg.View) [][]pg.OID {
	nodes := g.Nodes()
	index := make(map[pg.OID]int, len(nodes))
	low := make(map[pg.OID]int, len(nodes))
	onStack := make(map[pg.OID]bool, len(nodes))
	var stack []pg.OID
	var comps [][]pg.OID
	counter := 0

	type frame struct {
		v     pg.OID
		edges []*pg.Edge
		next  int
	}

	for _, root := range nodes {
		if _, seen := index[root.ID]; seen {
			continue
		}
		frames := []frame{{v: root.ID, edges: g.Out(root.ID)}}
		index[root.ID] = counter
		low[root.ID] = counter
		counter++
		stack = append(stack, root.ID)
		onStack[root.ID] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.next < len(f.edges) {
				w := f.edges[f.next].To
				f.next++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, edges: g.Out(w)})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All successors done: pop the frame.
			if low[f.v] == index[f.v] {
				var comp []pg.OID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sortedset.Sort(comp)
				comps = append(comps, comp)
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// WCC returns the weakly connected components via union-find.
func WCC(g pg.View) [][]pg.OID {
	parent := map[pg.OID]pg.OID{}
	var find func(x pg.OID) pg.OID
	find = func(x pg.OID) pg.OID {
		r := x
		for parent[r] != r {
			r = parent[r]
		}
		for parent[x] != r {
			parent[x], x = r, parent[x]
		}
		return r
	}
	for _, n := range g.Nodes() {
		parent[n.ID] = n.ID
	}
	for _, e := range g.Edges() {
		a, b := find(e.From), find(e.To)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	groups := map[pg.OID][]pg.OID{}
	for _, n := range g.Nodes() {
		r := find(n.ID)
		groups[r] = append(groups[r], n.ID)
	}
	comps := make([][]pg.OID, 0, len(groups))
	for _, members := range groups {
		sortedset.Sort(members)
		comps = append(comps, members)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// AvgClustering computes the average local clustering coefficient of the
// undirected simple projection of g. If the graph has more than sampleCap
// nodes the coefficient is averaged over the first sampleCap nodes in OID
// order (deterministic sampling).
func AvgClustering(g pg.View, sampleCap int) float64 {
	return avgClusteringWorkers(g, sampleCap, 1)
}

const (
	// clusterMinShard is the smallest node range worth a separate shard;
	// clusterMaxShards bounds the number of partial sums.
	clusterMinShard  = 256
	clusterMaxShards = 64
)

// clusterShards partitions n sample positions into contiguous [lo,hi)
// ranges. Like the reasoner's shard plan (internal/vadalog/parallel.go), it
// is a function of n alone, so the association order of the floating-point
// partial sums — and with it the exact result — is the same for every worker
// count.
func clusterShards(n int) [][2]int {
	shards := n / clusterMinShard
	if shards < 1 {
		shards = 1
	}
	if shards > clusterMaxShards {
		shards = clusterMaxShards
	}
	out := make([][2]int, 0, shards)
	for i := 0; i < shards; i++ {
		if lo, hi := i*n/shards, (i+1)*n/shards; lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

func avgClusteringWorkers(g pg.View, sampleCap, workers int) float64 {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	// Undirected neighbor sets, excluding self-loops.
	neigh := make(map[pg.OID]map[pg.OID]bool, len(nodes))
	add := func(a, b pg.OID) {
		if a == b {
			return
		}
		m := neigh[a]
		if m == nil {
			m = map[pg.OID]bool{}
			neigh[a] = m
		}
		m[b] = true
	}
	for _, e := range g.Edges() {
		add(e.From, e.To)
		add(e.To, e.From)
	}
	sample := nodes
	if sampleCap > 0 && len(nodes) > sampleCap {
		sample = nodes[:sampleCap]
	}
	plan := clusterShards(len(sample))
	partial := make([]float64, len(plan))
	shard := func(s int) {
		var sum float64
		for _, n := range sample[plan[s][0]:plan[s][1]] {
			ns := neigh[n.ID]
			k := len(ns)
			if k < 2 {
				continue
			}
			links := 0
			for a := range ns {
				na := neigh[a]
				for b := range ns {
					if a < b && na[b] {
						links++
					}
				}
			}
			sum += 2 * float64(links) / (float64(k) * float64(k-1))
		}
		partial[s] = sum
	}
	if workers <= 1 || len(plan) == 1 {
		for s := range plan {
			shard(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < min(workers, len(plan)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1) - 1)
					if s >= len(plan) {
						return
					}
					shard(s)
				}
			}()
		}
		wg.Wait()
	}
	// Reduce in shard order: identical association for every worker count.
	var total float64
	for _, p := range partial {
		total += p
	}
	return total / float64(len(sample))
}

// PowerLawMLE fits a discrete power law p(k) ∝ k^-α to the degree sample via
// the Clauset-Shalizi-Newman continuous approximation
// α = 1 + n / Σ ln(k_i / (xmin - 0.5)) over degrees k_i ≥ xmin. The xmin is
// fixed at 1 unless fewer than 10 samples qualify, in which case (0,0) is
// returned.
func PowerLawMLE(degrees []int) (alpha float64, xmin int) {
	xmin = 1
	var n int
	var sum float64
	for _, k := range degrees {
		if k >= xmin {
			n++
			sum += math.Log(float64(k) / (float64(xmin) - 0.5))
		}
	}
	if n < 10 || sum == 0 {
		return 0, 0
	}
	return 1 + float64(n)/sum, xmin
}

// DegreeHistogram returns the distribution of the given degree sample as a
// map degree → count.
func DegreeHistogram(degrees []int) map[int]int {
	h := map[int]int{}
	for _, d := range degrees {
		h[d]++
	}
	return h
}

// InDegrees returns the in-degree of every node, in OID order.
func InDegrees(g pg.View) []int {
	nodes := g.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = g.InDegree(n.ID)
	}
	return out
}

// OutDegrees returns the out-degree of every node, in OID order.
func OutDegrees(g pg.View) []int {
	nodes := g.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = g.OutDegree(n.ID)
	}
	return out
}

// Table renders the statistics in the layout of Section 2.1, for kgstats and
// kgbench output.
func (s Stats) Table() string {
	var b strings.Builder
	row := func(name, val string) { fmt.Fprintf(&b, "%-34s %s\n", name, val) }
	row("nodes", fmt.Sprintf("%d", s.Nodes))
	row("edges", fmt.Sprintf("%d", s.Edges))
	row("strongly connected components", fmt.Sprintf("%d", s.SCCCount))
	row("  avg SCC size", fmt.Sprintf("%.2f", s.SCCAvgSize))
	row("  largest SCC", fmt.Sprintf("%d", s.SCCMaxSize))
	row("weakly connected components", fmt.Sprintf("%d", s.WCCCount))
	row("  avg WCC size", fmt.Sprintf("%.2f", s.WCCAvgSize))
	row("  largest WCC", fmt.Sprintf("%d", s.WCCMaxSize))
	row("avg in-degree (active nodes)", fmt.Sprintf("%.2f", s.AvgInDegreeActive))
	row("avg out-degree (active nodes)", fmt.Sprintf("%.2f", s.AvgOutDegreeActive))
	row("avg degree (edges/nodes)", fmt.Sprintf("%.2f", s.AvgInDegreeAll))
	row("max in-degree", fmt.Sprintf("%d", s.MaxInDegree))
	row("max out-degree", fmt.Sprintf("%d", s.MaxOutDegree))
	row("avg clustering coefficient", fmt.Sprintf("%.4f", s.AvgClusteringCoefficient))
	row("power-law alpha (in-degree)", fmt.Sprintf("%.2f (xmin=%d)", s.PowerLawAlpha, s.PowerLawXMin))
	return b.String()
}
