// Package cli holds the flag plumbing shared by the command-line tools, so
// the robustness surface (retries, fault policy, chaos reproduction) is
// spelled identically across kgreason, kgbench, and vadalog.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fault"
	"repro/internal/vadalog"
)

// FaultFlags carries the robustness flags shared by the CLIs:
//
//	-retries N    attempts for transiently failing data loads (1 = no retry)
//	-on-fault P   fail-fast (default) or best-effort stratum salvage
//	-chaos SPEC   arm fault-injection sites for reproduction runs
//
// -chaos is hidden from -help: it is a developer tool for reproducing chaos
// findings, taking comma-separated "site[:mode[:after]]" specs (see
// fault.ParseSpec); the value "list" prints the sites this binary registers
// and exits.
type FaultFlags struct {
	// Retries is the -retries value; 1 (the default) disables retrying.
	Retries int

	onFault string
	chaos   string
}

// RegisterFaultFlags declares the shared robustness flags on fs. Tools whose
// data is generated in memory rather than loaded from an external source
// pass withRetries=false to omit the meaningless -retries flag.
func RegisterFaultFlags(fs *flag.FlagSet, withRetries bool) *FaultFlags {
	ff := &FaultFlags{Retries: 1}
	if withRetries {
		fs.IntVar(&ff.Retries, "retries", 1, "attempts for transiently failing data loads (1 = no retry)")
	}
	fs.StringVar(&ff.onFault, "on-fault", "fail-fast", "reasoning fault policy: fail-fast or best-effort")
	fs.StringVar(&ff.chaos, "chaos", "", "")
	HideFlags(fs, "chaos")
	return ff
}

// HideFlags rewrites fs.Usage to omit the named flags from -help, keeping
// developer-only flags out of the user surface while still parsing them.
func HideFlags(fs *flag.FlagSet, names ...string) {
	hidden := map[string]bool{}
	for _, n := range names {
		hidden[n] = true
	}
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintf(w, "Usage of %s:\n", fs.Name())
		fs.VisitAll(func(f *flag.Flag) {
			if hidden[f.Name] {
				return
			}
			arg, usage := flag.UnquoteUsage(f)
			if arg != "" {
				fmt.Fprintf(w, "  -%s %s\n", f.Name, arg)
			} else {
				fmt.Fprintf(w, "  -%s\n", f.Name)
			}
			fmt.Fprintf(w, "    \t%s", usage)
			if f.DefValue != "" && f.DefValue != "false" {
				fmt.Fprintf(w, " (default %v)", f.DefValue)
			}
			fmt.Fprintln(w)
		})
	}
}

// Apply resolves the flags after fs.Parse: it arms any -chaos spec and
// parses -on-fault into the engine's fault policy. When -chaos is "list" it
// writes the fault sites this binary registers to w, one per line, and
// returns done=true — the caller should exit without running.
func (ff *FaultFlags) Apply(w io.Writer) (policy vadalog.FaultPolicy, done bool, err error) {
	if w == nil {
		w = os.Stdout
	}
	if ff.chaos == "list" {
		for _, s := range fault.Sites() {
			fmt.Fprintln(w, s)
		}
		return vadalog.FailFast, true, nil
	}
	if ff.chaos != "" {
		if err := fault.ArmSpecs(ff.chaos); err != nil {
			return vadalog.FailFast, false, err
		}
	}
	policy, err = vadalog.ParseFaultPolicy(ff.onFault)
	return policy, false, err
}

// RetryPolicy builds the load-retry policy for the -retries value, with the
// default backoff schedule.
func (ff *FaultFlags) RetryPolicy() fault.RetryPolicy {
	return fault.RetryPolicy{MaxAttempts: ff.Retries}
}
