package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vadalog"
)

var siteCLITest = fault.Site("cli/test")

func parse(t *testing.T, withRetries bool, args ...string) *FaultFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ff := RegisterFaultFlags(fs, withRetries)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return ff
}

func TestFaultFlagsDefaults(t *testing.T) {
	ff := parse(t, true)
	policy, done, err := ff.Apply(nil)
	if err != nil || done {
		t.Fatalf("Apply() = %v, done=%v", err, done)
	}
	if policy != vadalog.FailFast {
		t.Errorf("default policy = %v, want fail-fast", policy)
	}
	if ff.Retries != 1 || ff.RetryPolicy().MaxAttempts != 1 {
		t.Errorf("default retries = %d, want 1", ff.Retries)
	}
}

func TestFaultFlagsBestEffortAndRetries(t *testing.T) {
	ff := parse(t, true, "-on-fault", "best-effort", "-retries", "4")
	policy, done, err := ff.Apply(nil)
	if err != nil || done {
		t.Fatalf("Apply() = %v, done=%v", err, done)
	}
	if policy != vadalog.BestEffort {
		t.Errorf("policy = %v, want best-effort", policy)
	}
	if ff.RetryPolicy().MaxAttempts != 4 {
		t.Errorf("retry attempts = %d, want 4", ff.RetryPolicy().MaxAttempts)
	}
}

func TestFaultFlagsBadPolicy(t *testing.T) {
	ff := parse(t, false)
	ff.onFault = "never-fail"
	if _, _, err := ff.Apply(nil); err == nil {
		t.Error("unknown -on-fault value must error")
	}
}

func TestFaultFlagsChaosList(t *testing.T) {
	ff := parse(t, false, "-chaos", "list")
	var buf bytes.Buffer
	_, done, err := ff.Apply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("-chaos list must signal the caller to exit")
	}
	if !strings.Contains(buf.String(), "cli/test") {
		t.Errorf("site listing missing registered site:\n%s", buf.String())
	}
}

func TestFaultFlagsChaosArm(t *testing.T) {
	defer fault.Reset()
	ff := parse(t, false, "-chaos", "cli/test:error:2")
	if _, done, err := ff.Apply(nil); err != nil || done {
		t.Fatalf("Apply() = %v, done=%v", err, done)
	}
	if err := fault.Hit(siteCLITest); err != nil {
		t.Fatalf("hit 1 fired before the After threshold: %v", err)
	}
	if err := fault.Hit(siteCLITest); err == nil {
		t.Error("armed site did not fire on hit 2 (spec after=2)")
	}
}

func TestFaultFlagsChaosBadSpec(t *testing.T) {
	defer fault.Reset()
	ff := parse(t, false, "-chaos", "no/such/site:error")
	if _, _, err := ff.Apply(nil); err == nil {
		t.Error("arming an unregistered site must error")
	}
}

func TestHideFlagsOmitsChaosFromUsage(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterFaultFlags(fs, true)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	if strings.Contains(out, "-chaos") {
		t.Errorf("usage leaks the hidden -chaos flag:\n%s", out)
	}
	for _, want := range []string{"-retries", "-on-fault"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage missing %s:\n%s", want, out)
		}
	}
}
