package sortedset

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func TestInsertRemoveContains(t *testing.T) {
	var s []int64
	for _, v := range []int64{5, 1, 9, 5, 3, 1} {
		s = Insert(s, v)
	}
	want := []int64{1, 3, 5, 9}
	if !slices.Equal(s, want) {
		t.Fatalf("Insert: got %v, want %v", s, want)
	}
	for _, v := range want {
		if !Contains(s, v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	if Contains(s, 4) {
		t.Fatal("Contains(4) = true")
	}
	s = Remove(s, 5)
	s = Remove(s, 42) // absent: no-op
	if want := []int64{1, 3, 9}; !slices.Equal(s, want) {
		t.Fatalf("Remove: got %v, want %v", s, want)
	}
}

// TestAgainstMap drives a random insert/remove sequence and checks the
// slice always matches a reference set.
func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s []int
	ref := map[int]bool{}
	for i := 0; i < 2000; i++ {
		v := rng.Intn(100)
		if rng.Intn(2) == 0 {
			s = Insert(s, v)
			ref[v] = true
		} else {
			s = Remove(s, v)
			delete(ref, v)
		}
		if len(s) != len(ref) {
			t.Fatalf("step %d: len %d, want %d", i, len(s), len(ref))
		}
		if !sort.IntsAreSorted(s) {
			t.Fatalf("step %d: not sorted: %v", i, s)
		}
	}
	for v := range ref {
		if !Contains(s, v) {
			t.Fatalf("missing %d", v)
		}
	}
}

func TestSort(t *testing.T) {
	s := []uint32{9, 1, 4, 4, 0}
	Sort(s)
	if want := []uint32{0, 1, 4, 4, 9}; !slices.Equal(s, want) {
		t.Fatalf("Sort: got %v, want %v", s, want)
	}
}
