// Package sortedset maintains sorted, duplicate-free slices of ordered
// values. It is the shared home of the sorted-OID index discipline the
// property-graph store and the graph algorithms rely on for deterministic
// iteration: every index slice (nodes per label, incident edges per node,
// component members) is kept ascending so that results are reproducible
// across runs and worker counts.
//
// All functions are O(log n) search + O(n) shift, which is the right trade
// for the store's workload: indexes are read far more often than they are
// mutated, and reads want a plain slice they can range over with no
// indirection.
package sortedset

import (
	"cmp"
	"slices"
)

// Insert returns s with v inserted at its sorted position. It is a no-op if
// v is already present: the result is a set, not a multiset. The input
// slice may be reallocated, as with append.
func Insert[T cmp.Ordered](s []T, v T) []T {
	i, found := slices.BinarySearch(s, v)
	if found {
		return s
	}
	return slices.Insert(s, i, v)
}

// Remove returns s with v removed, preserving order. It is a no-op if v is
// absent.
func Remove[T cmp.Ordered](s []T, v T) []T {
	i, found := slices.BinarySearch(s, v)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}

// Contains reports whether v is present in the sorted slice s.
func Contains[T cmp.Ordered](s []T, v T) bool {
	_, found := slices.BinarySearch(s, v)
	return found
}

// Sort sorts s ascending in place, for slices built out of order and sorted
// once at the end.
func Sort[T cmp.Ordered](s []T) {
	slices.Sort(s)
}
