package snapfile_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/snapfile"
	"repro/internal/value"
)

// testGraph builds a pseudo-random graph across every value kind (strings
// with separators, ints, floats, bools, labeled nulls, Skolem IDs),
// multi-label and unlabeled nodes, unlabeled edges, and empty property
// bags — the full domain the format must round-trip.
func testGraph(rng *rand.Rand) *pg.Graph {
	g := pg.New()
	labels := []string{"Company", "Person", "KG", ""}
	var ids []pg.OID
	for i := 0; i < 3+rng.Intn(12); i++ {
		props := pg.Props{}
		if rng.Intn(2) == 0 {
			props["s"] = value.Str(fmt.Sprintf("str %d, with, commas \"and\" quotes", i))
		}
		if rng.Intn(2) == 0 {
			props["i"] = value.IntV(rng.Int63n(1000) - 500)
		}
		if rng.Intn(2) == 0 {
			props["f"] = value.FloatV(rng.Float64() * 100)
		}
		if rng.Intn(2) == 0 {
			props["b"] = value.BoolV(rng.Intn(2) == 0)
		}
		if rng.Intn(3) == 0 {
			props["n"] = value.NullV(rng.Int63n(40))
		}
		if rng.Intn(3) == 0 {
			props["k"] = value.Skolem("own", value.IntV(rng.Int63n(9)))
		}
		var ls []string
		if l := labels[rng.Intn(len(labels))]; l != "" {
			ls = append(ls, l)
			if rng.Intn(3) == 0 {
				ls = append(ls, "Extra")
			}
		}
		ids = append(ids, g.AddNode(ls, props).ID)
	}
	for i := 0; i < rng.Intn(2*len(ids)); i++ {
		props := pg.Props{}
		if rng.Intn(2) == 0 {
			props["w"] = value.FloatV(rng.Float64())
		}
		label := "REL"
		if rng.Intn(4) == 0 {
			label = ""
		}
		g.MustAddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], label, props)
	}
	return g
}

// assertViewEqual compares two frozen views across the whole read surface:
// canonical serialization, per-node adjacency, columnar property reads,
// and the label indexes.
func assertViewEqual(t *testing.T, want, got *pg.Frozen) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size: got %d/%d, want %d/%d", got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	var bw, bg bytes.Buffer
	if err := want.Thaw().WriteJSON(&bw); err != nil {
		t.Fatal(err)
	}
	if err := got.Thaw().WriteJSON(&bg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bw.Bytes(), bg.Bytes()) {
		t.Fatal("canonical serializations diverge")
	}
	for _, n := range want.Nodes() {
		if !reflect.DeepEqual(want.Out(n.ID), got.Out(n.ID)) || !reflect.DeepEqual(want.In(n.ID), got.In(n.ID)) {
			t.Fatalf("adjacency of node %d diverges", n.ID)
		}
		for k := range n.Props {
			v1, ok1 := want.NodeProp(n.ID, k)
			v2, ok2 := got.NodeProp(n.ID, k)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("NodeProp(%d, %q): %v/%v vs %v/%v", n.ID, k, v1, ok1, v2, ok2)
			}
		}
	}
	for _, e := range want.Edges() {
		for k := range e.Props {
			v1, ok1 := want.EdgeProp(e.ID, k)
			v2, ok2 := got.EdgeProp(e.ID, k)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("EdgeProp(%d, %q) diverges", e.ID, k)
			}
		}
	}
	for _, l := range want.NodeLabels() {
		if !reflect.DeepEqual(want.NodesByLabel(l), got.NodesByLabel(l)) {
			t.Fatalf("NodesByLabel(%q) diverges", l)
		}
	}
	for _, l := range want.EdgeLabels() {
		if !reflect.DeepEqual(want.EdgesByLabel(l), got.EdgesByLabel(l)) {
			t.Fatalf("EdgesByLabel(%q) diverges", l)
		}
	}
}

// TestDecodeRoundTripProperty: randomized graphs survive
// Freeze → Encode → Decode with every read path intact.
func TestDecodeRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		f := testGraph(rand.New(rand.NewSource(seed))).Freeze()
		data, err := snapfile.Encode(f, snapfile.BuildInfo{Tool: "test", Params: map[string]string{"seed": fmt.Sprint(seed)}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		snap, err := snapfile.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if snap.Mapped() {
			t.Fatal("Decode must not report a mapping")
		}
		if snap.Info.Tool != "test" || snap.Info.Params["seed"] != fmt.Sprint(seed) {
			t.Fatalf("seed %d: build info lost: %+v", seed, snap.Info)
		}
		assertViewEqual(t, f, snap.Frozen)
	}
}

// TestDecodeDoesNotAliasInput: Decode's documented contract is a full
// copy — corrupting the source buffer afterwards must not corrupt the
// decoded view.
func TestDecodeDoesNotAliasInput(t *testing.T) {
	f := testGraph(rand.New(rand.NewSource(7))).Freeze()
	data, err := snapfile.Encode(f, snapfile.BuildInfo{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapfile.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xFF
	}
	assertViewEqual(t, f, snap.Frozen)
}

// TestOpenRoundTrip: WriteFile → Open serves the identical view zero-copy
// from the mapping (where the platform supports it).
func TestOpenRoundTrip(t *testing.T) {
	f := testGraph(rand.New(rand.NewSource(3))).Freeze()
	path := filepath.Join(t.TempDir(), "g.snap")
	size, err := snapfile.WriteFile(path, f, snapfile.BuildInfo{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != size {
		t.Fatalf("WriteFile reported %d bytes, file has %d", size, st.Size())
	}
	snap, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if !snap.Mapped() {
		t.Log("mmap unavailable on this platform; copying loader served the open")
	}
	assertViewEqual(t, f, snap.Frozen)
	if err := snap.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if snap.Mapped() {
		t.Fatal("snapshot still mapped after Close")
	}
}

// TestOpenMmapFaultFallsBack: an injected fault at snapfile/mmap must not
// fail the open — it degrades to the copying loader with an identical view.
func TestOpenMmapFaultFallsBack(t *testing.T) {
	defer fault.Reset()
	f := testGraph(rand.New(rand.NewSource(11))).Freeze()
	path := filepath.Join(t.TempDir(), "g.snap")
	if _, err := snapfile.WriteFile(path, f, snapfile.BuildInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("snapfile/mmap", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	snap, err := snapfile.Open(path)
	if err != nil {
		t.Fatalf("open must survive an mmap fault, got %v", err)
	}
	defer snap.Close()
	if snap.Mapped() {
		t.Fatal("open reported a mapping while the mmap site was armed")
	}
	assertViewEqual(t, f, snap.Frozen)
}

// TestEncodeDeterministic: equal snapshots and equal info encode to
// byte-identical files, the property the golden tests pin.
func TestEncodeDeterministic(t *testing.T) {
	info := snapfile.BuildInfo{Tool: "det", Params: map[string]string{"a": "1", "b": "2"}}
	g1 := testGraph(rand.New(rand.NewSource(5)))
	g2 := testGraph(rand.New(rand.NewSource(5)))
	d1, err := snapfile.Encode(g1.Freeze(), info)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := snapfile.Encode(g2.Freeze(), info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("two encodes of equal snapshots diverge")
	}
}

// TestProvenanceOnlyDiff: two snapshots of the same graph that differ only
// in build parameters must differ only in the build-info section (plus the
// table entry and header checksum describing it); every data section sits
// at identical offsets with identical bytes.
func TestProvenanceOnlyDiff(t *testing.T) {
	f := testGraph(rand.New(rand.NewSource(9))).Freeze()
	a, err := snapfile.Encode(f, snapfile.BuildInfo{Tool: "kgsnap", Params: map[string]string{"run": "a"}, CreatedUnix: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapfile.Encode(f, snapfile.BuildInfo{Tool: "kgsnap", Params: map[string]string{"run": "b", "extra": "x"}, CreatedUnix: 200})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := sections(t, a), sections(t, b)
	if len(sa) != len(sb) {
		t.Fatalf("section counts diverge: %d vs %d", len(sa), len(sb))
	}
	var dataBytesDiffer []uint32
	for id, ea := range sa {
		eb := sb[id]
		if id == 1 { // build info
			if bytes.Equal(a[ea.off:ea.off+ea.len], b[eb.off:eb.off+eb.len]) {
				t.Fatal("build-info sections are identical despite different params")
			}
			continue
		}
		if ea.off != eb.off || ea.len != eb.len {
			t.Fatalf("data section %d moved: [%d,+%d) vs [%d,+%d)", id, ea.off, ea.len, eb.off, eb.len)
		}
		if !bytes.Equal(a[ea.off:ea.off+ea.len], b[eb.off:eb.off+eb.len]) {
			dataBytesDiffer = append(dataBytesDiffer, id)
		}
	}
	if len(dataBytesDiffer) > 0 {
		t.Fatalf("data sections %v differ between provenance-only variants", dataBytesDiffer)
	}
}

// TestWriteFileFaultsLeaveNoPartialFile sweeps the write-side fault sites:
// a failed write or rename must leave an existing snapshot byte-identical
// and must not leave temporary files behind.
func TestWriteFileFaultsLeaveNoPartialFile(t *testing.T) {
	defer fault.Reset()
	f := testGraph(rand.New(rand.NewSource(2))).Freeze()
	f2 := testGraph(rand.New(rand.NewSource(4))).Freeze()
	for _, site := range []string{"snapfile/write", "snapfile/rename"} {
		for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "g.snap")
				fault.Reset()
				if _, err := snapfile.WriteFile(path, f, snapfile.BuildInfo{Tool: "orig"}); err != nil {
					t.Fatal(err)
				}
				before, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := fault.Arm(site, fault.Plan{Mode: mode, Times: -1}); err != nil {
					t.Fatal(err)
				}
				werr := fault.Guard(site, func() error {
					_, err := snapfile.WriteFile(path, f2, snapfile.BuildInfo{Tool: "new"})
					return err
				})
				if werr == nil {
					t.Fatal("write must fail while the site is armed")
				}
				fault.Reset()
				after, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(before, after) {
					t.Fatal("failed write mutated the published snapshot")
				}
				names, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, de := range names {
					if strings.Contains(de.Name(), ".tmp") {
						t.Fatalf("failed write left temporary file %s", de.Name())
					}
				}
				snap, err := snapfile.Open(path)
				if err != nil {
					t.Fatalf("snapshot unreadable after failed overwrite: %v", err)
				}
				defer snap.Close()
				if snap.Info.Tool != "orig" {
					t.Fatalf("snapshot provenance changed: %+v", snap.Info)
				}
			})
		}
	}
}
