package snapfile_test

// Cold-start benchmarks (EXPERIMENTS.md E21): how fast a serving replica
// reaches a queryable frozen view from disk. The baseline is the JSON
// path — parse the dictionary, freeze it — and the contender is
// snapfile.Open over the same graph: validate checksums, alias the mmapped
// columns, rebuild only the pointer facade. Run via make bench-snapshot;
// the committed BENCH_snapshot.json is the baseline. The acceptance target
// is an Open at least 50x faster than parse+freeze on the E19 reference
// shape (4096 companies + 4096 persons, 4 ownership edges per person).

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pg"
	"repro/internal/snapfile"
	"repro/internal/value"
)

// coldStartGraph is the E19 reference shape from the storage benchmarks.
func coldStartGraph(n int) *pg.Graph {
	g := pg.New()
	companies := make([]pg.OID, n)
	persons := make([]pg.OID, n)
	for i := 0; i < n; i++ {
		companies[i] = g.AddNode([]string{"Company"}, pg.Props{"name": value.Str("c")}).ID
	}
	for i := 0; i < n; i++ {
		persons[i] = g.AddNode([]string{"Person"}, pg.Props{"name": value.Str("p")}).ID
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			g.MustAddEdge(persons[i], companies[(i*7+k*13)%n], "Owns", pg.Props{"w": value.FloatV(0.25)})
		}
	}
	return g
}

func coldStartFixture(b *testing.B) (jsonPath, snapPath string) {
	b.Helper()
	dir := b.TempDir()
	jsonPath = filepath.Join(dir, "e19.json")
	snapPath = filepath.Join(dir, "e19.snap")
	g := coldStartGraph(4096)
	f, err := os.Create(jsonPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	if _, err := snapfile.WriteFile(snapPath, g.Freeze(), snapfile.BuildInfo{Tool: "bench"}); err != nil {
		b.Fatal(err)
	}
	return jsonPath, snapPath
}

// BenchmarkSnapshotColdStart/parse-freeze is the pre-snapshot cold start:
// read and decode the JSON dictionary, then freeze it into the CSR view.
// BenchmarkSnapshotColdStart/snapfile-open is the snapshot cold start over
// identical data: checksums plus full structural validation, ending in a
// servable pg.Frozen whose pointer facade materializes lazily on first
// facade read. snapfile-open-facade additionally forces that
// materialization (Nodes()), bounding the one-time cost the first query
// pays after a swap.
func BenchmarkSnapshotColdStart(b *testing.B) {
	jsonPath, snapPath := coldStartFixture(b)

	b.Run("parse-freeze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(jsonPath)
			if err != nil {
				b.Fatal(err)
			}
			g, err := pg.ReadJSON(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if fz := g.Freeze(); fz.NumNodes() == 0 {
				b.Fatal("empty freeze")
			}
		}
	})

	b.Run("snapfile-open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, err := snapfile.Open(snapPath)
			if err != nil {
				b.Fatal(err)
			}
			if snap.Frozen.NumNodes() == 0 {
				b.Fatal("empty snapshot")
			}
			if err := snap.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("snapfile-open-facade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, err := snapfile.Open(snapPath)
			if err != nil {
				b.Fatal(err)
			}
			if len(snap.Frozen.Nodes()) == 0 { // forces facade materialization
				b.Fatal("empty snapshot")
			}
			if err := snap.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotEncode measures the offline producer side: Encode plus
// the atomic temp-file/fsync/rename publication.
func BenchmarkSnapshotEncode(b *testing.B) {
	dir := b.TempDir()
	f := coldStartGraph(4096).Freeze()
	path := filepath.Join(dir, "e19.snap")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapfile.WriteFile(path, f, snapfile.BuildInfo{Tool: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}
