package snapfile_test

// Byte-level test helpers: an independent re-implementation of the header
// and section-table layout. The tests parse and patch snapshot images with
// these instead of the package's own decoder, so a layout drift between
// writer and reader cannot cancel out.

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

const (
	hdrMagicOff    = 0
	hdrVersionOff  = 8
	hdrLenOff      = 12
	hdrFlagsOff    = 16
	hdrNodesOff    = 24
	hdrEdgesOff    = 32
	hdrSymsOff     = 40
	hdrSectionsOff = 48
	hdrTableCRCOff = 52
	hdrReservedOff = 56

	tblEntryLen = 32
)

var testCRC = crc32.MakeTable(crc32.Castagnoli)

type secEntry struct {
	idx int // table row
	off uint64
	len uint64
	crc uint32
}

// sections parses the section table of an encoded snapshot.
func sections(t *testing.T, data []byte) map[uint32]secEntry {
	t.Helper()
	hdrLen := uint64(binary.LittleEndian.Uint32(data[hdrLenOff:]))
	count := int(binary.LittleEndian.Uint32(data[hdrSectionsOff:]))
	m := make(map[uint32]secEntry, count)
	for i := 0; i < count; i++ {
		rec := data[hdrLen+uint64(i)*tblEntryLen:]
		id := binary.LittleEndian.Uint32(rec[0:])
		if _, dup := m[id]; dup {
			t.Fatalf("section %d appears twice", id)
		}
		m[id] = secEntry{
			idx: i,
			off: binary.LittleEndian.Uint64(rec[8:]),
			len: binary.LittleEndian.Uint64(rec[16:]),
			crc: binary.LittleEndian.Uint32(rec[24:]),
		}
	}
	return m
}

// tableEntry returns the byte slice of one section-table row.
func tableEntry(data []byte, row int) []byte {
	hdrLen := uint64(binary.LittleEndian.Uint32(data[hdrLenOff:]))
	return data[hdrLen+uint64(row)*tblEntryLen:][:tblEntryLen]
}

// fixMetaCRCs recomputes the table and header checksums after a test
// patched header or table bytes, leaving section checksums alone.
func fixMetaCRCs(data []byte) {
	hdrLen := uint64(binary.LittleEndian.Uint32(data[hdrLenOff:]))
	count := uint64(binary.LittleEndian.Uint32(data[hdrSectionsOff:]))
	table := data[hdrLen : hdrLen+count*tblEntryLen]
	binary.LittleEndian.PutUint32(data[hdrTableCRCOff:], crc32.Checksum(table, testCRC))
	binary.LittleEndian.PutUint32(data[hdrLen-4:], crc32.Checksum(data[:hdrLen-4], testCRC))
}

// fixAllCRCs additionally recomputes every section checksum from its
// payload, for tests that patch section contents and want the structural
// validation (not the checksum) to reject the file.
func fixAllCRCs(data []byte) {
	count := int(binary.LittleEndian.Uint32(data[hdrSectionsOff:]))
	for i := 0; i < count; i++ {
		rec := tableEntry(data, i)
		off := binary.LittleEndian.Uint64(rec[8:])
		l := binary.LittleEndian.Uint64(rec[16:])
		binary.LittleEndian.PutUint32(rec[24:], crc32.Checksum(data[off:off+l], testCRC))
	}
	fixMetaCRCs(data)
}

// growHeader rebuilds a snapshot image with a larger header, as a future
// format revision that appends header fields would produce: the extra
// header bytes are zero, the section table and every payload shift by the
// growth delta, and all checksums are recomputed. Version-1 readers must
// honor the headerLen field and open such files.
func growHeader(t *testing.T, data []byte, newLen uint32) []byte {
	t.Helper()
	oldLen := binary.LittleEndian.Uint32(data[hdrLenOff:])
	if newLen <= oldLen || newLen%8 != 0 {
		t.Fatalf("bad grown header length %d (old %d)", newLen, oldLen)
	}
	delta := uint64(newLen - oldLen)
	out := make([]byte, uint64(len(data))+delta)
	// Header fields stay at their v1 positions; the growth region is zero.
	copy(out, data[:hdrLen(data)-4])
	binary.LittleEndian.PutUint32(out[hdrLenOff:], newLen)
	// Table and payloads, shifted.
	copy(out[newLen:], data[hdrLen(data):])
	count := int(binary.LittleEndian.Uint32(out[hdrSectionsOff:]))
	for i := 0; i < count; i++ {
		rec := tableEntry(out, i)
		off := binary.LittleEndian.Uint64(rec[8:])
		binary.LittleEndian.PutUint64(rec[8:], off+delta)
	}
	fixMetaCRCs(out)
	return out
}

func hdrLen(data []byte) uint64 {
	return uint64(binary.LittleEndian.Uint32(data[hdrLenOff:]))
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
