package snapfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/symtab"
	"repro/internal/value"
)

// Snapshot is an opened snapshot file: the reconstructed frozen view plus
// the provenance header. When Mapped reports true the view's columns alias
// the memory-mapped file — the mapping must stay alive for as long as any
// reader can touch the view, which is why Close is explicit and never
// called implicitly (a serving process simply keeps retired mappings; the
// page cache reclaims the memory, only address space is held).
type Snapshot struct {
	// Frozen is the reconstructed snapshot, a full pg.View.
	Frozen *pg.Frozen
	// Info is the provenance header stamped by the producer.
	Info BuildInfo
	// Path is the file the snapshot was opened from ("" for Decode).
	Path string

	mapped []byte // the mmap region backing Frozen, nil for copied loads
}

// Mapped reports whether the snapshot serves zero-copy from an mmapped
// file (as opposed to a private heap copy).
func (s *Snapshot) Mapped() bool { return s.mapped != nil }

// Close releases the file mapping, if any. The caller must guarantee no
// reader still uses the Frozen view: its columns alias the mapping and
// become invalid the moment it is unmapped. Close on a copied snapshot is
// a no-op. Close is not idempotent-safe for concurrent use.
func (s *Snapshot) Close() error {
	if s.mapped == nil {
		return nil
	}
	m := s.mapped
	s.mapped = nil
	return munmap(m)
}

// Open opens and validates a snapshot file. It memory-maps the file and
// reconstructs the view zero-copy; when mapping is unavailable (platform,
// syscall failure, or an injected fault at snapfile/mmap) it falls back to
// reading the file into memory with identical semantics. Validation —
// magic, version, header and per-section checksums, then every structural
// invariant — completes before any data is handed out: a malformed file
// yields a typed error and no snapshot.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()

	if mmapSupported && size > 0 && size == int64(int(size)) {
		if err := fault.Hit(siteMmap); err == nil {
			if data, merr := mmapFile(f, size); merr == nil {
				snap, derr := decode(data, true)
				if derr != nil {
					munmap(data) //nolint:errcheck // already failing
					return nil, fmt.Errorf("snapfile: %s: %w", path, derr)
				}
				snap.mapped = data
				snap.Path = path
				return snap, nil
			}
		}
	}

	// Copying loader: the snapshot owns a private heap buffer, so the
	// columns may alias it without lifetime concerns.
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := decode(data, true)
	if err != nil {
		return nil, fmt.Errorf("snapfile: %s: %w", path, err)
	}
	snap.Path = path
	return snap, nil
}

// Decode reconstructs a snapshot from an in-memory image, copying every
// column out of data: the caller remains free to reuse or mutate the
// buffer afterwards. The validation pipeline is identical to Open's.
func Decode(data []byte) (*Snapshot, error) {
	return decode(data, false)
}

// hostLittleEndian gates the zero-copy reinterpretation of column bytes;
// big-endian hosts always take the element-wise decoding path.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// sectionEntry is one parsed section-table row.
type sectionEntry struct {
	off uint64
	len uint64
	crc uint32
}

// decode runs the full validation pipeline over a snapshot image and
// rebuilds the frozen view. With zeroCopy the numeric columns and string
// bytes alias data; otherwise everything is copied.
func decode(data []byte, zeroCopy bool) (*Snapshot, error) {
	size := uint64(len(data))

	// Magic. A file shorter than the signature that matches the prefix it
	// does have is truncated; anything else is not a snapshot at all.
	if !Sniff(data) {
		n := len(data)
		if n < len(Magic) && string(data[:n]) == Magic[:n] {
			return nil, truncatedf("%d bytes is shorter than the signature", n)
		}
		return nil, ErrBadMagic
	}
	if size < minHeader {
		return nil, truncatedf("%d bytes is shorter than the %d-byte header", size, minHeader)
	}

	version := binary.LittleEndian.Uint32(data[8:])
	if version != Version {
		return nil, fmt.Errorf("%w: file has version %d, reader supports %d", ErrBadVersion, version, Version)
	}
	hdrLen := uint64(binary.LittleEndian.Uint32(data[12:]))
	switch {
	case hdrLen < minHeader:
		return nil, corruptf("header length %d below minimum %d", hdrLen, minHeader)
	case hdrLen%8 != 0:
		return nil, corruptf("header length %d not 8-byte aligned", hdrLen)
	case hdrLen > size:
		return nil, truncatedf("header length %d exceeds file size %d", hdrLen, size)
	}
	if got, want := crcOf(data[:hdrLen-4]), binary.LittleEndian.Uint32(data[hdrLen-4:]); got != want {
		return nil, checksumf("header: computed %08x, stored %08x", got, want)
	}
	if flags := binary.LittleEndian.Uint64(data[16:]); flags != 0 {
		return nil, corruptf("unknown flags %#x", flags)
	}

	nodes := binary.LittleEndian.Uint64(data[24:])
	edges := binary.LittleEndian.Uint64(data[32:])
	syms := binary.LittleEndian.Uint64(data[40:])
	if nodes > math.MaxInt32 || edges > math.MaxInt32 || syms > math.MaxInt32 {
		return nil, corruptf("counts out of range: %d nodes, %d edges, %d symbols", nodes, edges, syms)
	}
	n, m, s := int(nodes), int(edges), int(syms)

	// Section table.
	count := uint64(binary.LittleEndian.Uint32(data[48:]))
	if count < numSections || count > maxSections {
		return nil, corruptf("section count %d outside [%d, %d]", count, numSections, maxSections)
	}
	tableEnd := hdrLen + count*entryLen
	if tableEnd > size {
		return nil, truncatedf("section table ends at %d, file is %d bytes", tableEnd, size)
	}
	table := data[hdrLen:tableEnd]
	if got, want := crcOf(table), binary.LittleEndian.Uint32(data[52:]); got != want {
		return nil, checksumf("section table: computed %08x, stored %08x", got, want)
	}

	entries := make(map[uint32]sectionEntry, count)
	maxEnd := tableEnd
	for i := uint64(0); i < count; i++ {
		rec := table[i*entryLen:]
		id := binary.LittleEndian.Uint32(rec[0:])
		if id == 0 {
			return nil, corruptf("section table row %d has id 0", i)
		}
		if _, dup := entries[id]; dup {
			return nil, corruptf("section %d appears twice in the table", id)
		}
		e := sectionEntry{
			off: binary.LittleEndian.Uint64(rec[8:]),
			len: binary.LittleEndian.Uint64(rec[16:]),
			crc: binary.LittleEndian.Uint32(rec[24:]),
		}
		if e.off%8 != 0 {
			return nil, corruptf("section %d offset %d not 8-byte aligned", id, e.off)
		}
		if e.off > size || e.len > size-e.off {
			return nil, truncatedf("section %d spans [%d, %d+%d), file is %d bytes", id, e.off, e.off, e.len, size)
		}
		if e.len > 0 && e.off < tableEnd {
			return nil, corruptf("section %d overlaps the header region", id)
		}
		if end := e.off + e.len; end > maxEnd {
			maxEnd = end
		}
		entries[id] = e
	}
	if maxEnd != size {
		return nil, corruptf("%d trailing bytes after the last section", size-maxEnd)
	}

	// Per-section payloads: presence, exact or element-multiple lengths,
	// and checksums, before any content is interpreted.
	sec := make(map[uint32][]byte, numSections)
	for id := uint32(secBuildInfo); id <= numSections; id++ {
		e, ok := entries[id]
		if !ok {
			return nil, corruptf("section %d missing", id)
		}
		p := data[e.off : e.off+e.len]
		if got := crcOf(p); got != e.crc {
			return nil, checksumf("section %d: computed %08x, stored %08x", id, got, e.crc)
		}
		sec[id] = p
	}
	type want struct {
		id    uint32
		bytes uint64
		what  string
	}
	for _, w := range []want{
		{secSymOff, uint64(s+1) * 4, "symbol offsets"},
		{secNodeOIDs, uint64(n) * 8, "node OIDs"},
		{secNodeLabelOff, uint64(n+1) * 4, "node label offsets"},
		{secNodePropOff, uint64(n+1) * 4, "node property offsets"},
		{secEdgeOIDs, uint64(m) * 8, "edge OIDs"},
		{secEdgeLabels, uint64(m) * 4, "edge labels"},
		{secEdgeFrom, uint64(m) * 8, "edge sources"},
		{secEdgeTo, uint64(m) * 8, "edge targets"},
		{secEdgePropOff, uint64(m+1) * 4, "edge property offsets"},
		{secOutOff, uint64(n+1) * 4, "out-adjacency offsets"},
		{secOutAdj, uint64(m) * 4, "out adjacency"},
		{secInOff, uint64(n+1) * 4, "in-adjacency offsets"},
		{secInAdj, uint64(m) * 4, "in adjacency"},
	} {
		if got := uint64(len(sec[w.id])); got != w.bytes {
			return nil, corruptf("%s section holds %d bytes, want %d", w.what, got, w.bytes)
		}
	}
	if l := len(sec[secNodeLabels]); l%4 != 0 {
		return nil, corruptf("node labels section length %d not a multiple of 4", l)
	}
	for _, pair := range [][2]uint32{{secNodePropKeys, secNodePropVals}, {secEdgePropKeys, secEdgePropVals}} {
		keys, vals := len(sec[pair[0]]), len(sec[pair[1]])
		if keys%4 != 0 || vals%valueRecLen != 0 || keys/4 != vals/valueRecLen {
			return nil, corruptf("property sections disagree: %d key bytes vs %d value bytes", keys, vals)
		}
	}

	// Symbol table: offsets into the name blob, monotone and exhaustive.
	symBlob := sec[secSymBlob]
	symOffs := colU32[uint32](sec[secSymOff], zeroCopy)
	if s > 0 || len(symOffs) > 0 {
		if symOffs[0] != 0 {
			return nil, corruptf("symbol offsets start at %d, want 0", symOffs[0])
		}
		for i := 1; i <= s; i++ {
			if symOffs[i] < symOffs[i-1] {
				return nil, corruptf("symbol offsets decrease at %d", i)
			}
		}
		if int(symOffs[s]) != len(symBlob) {
			return nil, corruptf("symbol offsets end at %d, blob holds %d bytes", symOffs[s], len(symBlob))
		}
	}
	symNames := make([]string, s)
	for i := 0; i < s; i++ {
		symNames[i] = blobString(symBlob, uint64(symOffs[i]), uint64(symOffs[i+1]-symOffs[i]), zeroCopy)
	}

	strBlob := sec[secStrBlob]
	nodeVals, err := decodeValues(sec[secNodePropVals], strBlob, zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("node properties: %w", err)
	}
	edgeVals, err := decodeValues(sec[secEdgePropVals], strBlob, zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("edge properties: %w", err)
	}

	cols := pg.Columns{
		SymNames:     symNames,
		NodeOIDs:     col64[pg.OID](sec[secNodeOIDs], zeroCopy),
		NodeLabelOff: colI32(sec[secNodeLabelOff], zeroCopy),
		NodeLabels:   colU32[symtab.Sym](sec[secNodeLabels], zeroCopy),
		NodePropOff:  colI32(sec[secNodePropOff], zeroCopy),
		NodePropKeys: colU32[symtab.Sym](sec[secNodePropKeys], zeroCopy),
		NodePropVals: nodeVals,
		EdgeOIDs:     col64[pg.OID](sec[secEdgeOIDs], zeroCopy),
		EdgeLabels:   colU32[symtab.Sym](sec[secEdgeLabels], zeroCopy),
		EdgeFrom:     col64[pg.OID](sec[secEdgeFrom], zeroCopy),
		EdgeTo:       col64[pg.OID](sec[secEdgeTo], zeroCopy),
		EdgePropOff:  colI32(sec[secEdgePropOff], zeroCopy),
		EdgePropKeys: colU32[symtab.Sym](sec[secEdgePropKeys], zeroCopy),
		EdgePropVals: edgeVals,
		OutOff:       colI32(sec[secOutOff], zeroCopy),
		OutAdj:       colI32(sec[secOutAdj], zeroCopy),
		InOff:        colI32(sec[secInOff], zeroCopy),
		InAdj:        colI32(sec[secInAdj], zeroCopy),
	}
	frozen, err := pg.FrozenFromColumns(cols)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	var info BuildInfo
	if err := json.Unmarshal(sec[secBuildInfo], &info); err != nil {
		return nil, corruptf("build info is not valid JSON: %v", err)
	}

	return &Snapshot{Frozen: frozen, Info: info}, nil
}

// decodeValues rebuilds a value column from its fixed-size records,
// enforcing the canonical encoding: known kind, zero padding, zero unused
// fields, and string windows inside the blob.
func decodeValues(recs, blob []byte, zeroCopy bool) ([]value.Value, error) {
	out := make([]value.Value, len(recs)/valueRecLen)
	for i := range out {
		r := recs[i*valueRecLen:]
		if r[1] != 0 || r[2] != 0 || r[3] != 0 {
			return nil, corruptf("value record %d has nonzero padding", i)
		}
		kind := value.Kind(r[0])
		strLen := uint64(binary.LittleEndian.Uint32(r[4:]))
		num := binary.LittleEndian.Uint64(r[8:])
		strOff := binary.LittleEndian.Uint64(r[16:])
		isStr := kind == value.String || kind == value.ID
		if !isStr && (strLen != 0 || strOff != 0) {
			return nil, corruptf("value record %d (kind %d) has string fields set", i, kind)
		}
		switch kind {
		case value.String, value.ID:
			if num != 0 {
				return nil, corruptf("value record %d (kind %d) has numeric field set", i, kind)
			}
			if strOff > uint64(len(blob)) || strLen > uint64(len(blob))-strOff {
				return nil, corruptf("value record %d string [%d, %d+%d) outside %d-byte blob", i, strOff, strOff, strLen, len(blob))
			}
			if strLen == 0 && strOff != 0 {
				return nil, corruptf("value record %d empty string with nonzero offset", i)
			}
			str := blobString(blob, strOff, strLen, zeroCopy)
			if kind == value.String {
				out[i] = value.Str(str)
			} else {
				out[i] = value.IDV(str)
			}
		case value.Int:
			out[i] = value.IntV(int64(num))
		case value.Null:
			out[i] = value.NullV(int64(num))
		case value.Float:
			out[i] = value.FloatV(math.Float64frombits(num))
		case value.Bool:
			if num > 1 {
				return nil, corruptf("value record %d bool payload %d", i, num)
			}
			out[i] = value.BoolV(num == 1)
		case value.Invalid:
			if num != 0 {
				return nil, corruptf("value record %d invalid kind with payload", i)
			}
		default:
			return nil, corruptf("value record %d has unknown kind %d", i, kind)
		}
	}
	return out, nil
}

// blobString extracts one string from a blob, sharing the bytes in
// zero-copy mode.
func blobString(blob []byte, off, length uint64, zeroCopy bool) string {
	if length == 0 {
		return ""
	}
	b := blob[off : off+length]
	if zeroCopy {
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}

// col64 decodes an 8-byte-element column, aliasing the section bytes when
// the platform and alignment allow it.
func col64[T ~int64](sec []byte, zeroCopy bool) []T {
	count := len(sec) / 8
	if count == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&sec[0]))%8 == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&sec[0])), count)
	}
	out := make([]T, count)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint64(sec[i*8:]))
	}
	return out
}

// colU32 decodes a 4-byte unsigned-element column (symbols).
func colU32[T ~uint32](sec []byte, zeroCopy bool) []T {
	count := len(sec) / 4
	if count == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&sec[0]))%4 == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&sec[0])), count)
	}
	out := make([]T, count)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(sec[i*4:]))
	}
	return out
}

// colI32 decodes a 4-byte signed-element column (offsets, adjacency rows).
func colI32(sec []byte, zeroCopy bool) []int32 {
	count := len(sec) / 4
	if count == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&sec[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&sec[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(sec[i*4:]))
	}
	return out
}
