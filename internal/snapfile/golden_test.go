package snapfile_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pg"
	"repro/internal/snapfile"
	"repro/internal/value"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.snap from the canonical graph")

// goldenGraph is the canonical snapshot content: every value kind, a
// multi-label node, an unlabeled node, an unlabeled edge, and an empty
// property bag, with fixed OIDs and symbols.
func goldenGraph() *pg.Frozen {
	g := pg.New()
	acme := g.AddNode([]string{"Company"}, pg.Props{
		"name":   value.Str("Acme Holding"),
		"cap":    value.FloatV(1.5e6),
		"listed": value.BoolV(true),
	})
	bob := g.AddNode([]string{"Person", "Director"}, pg.Props{
		"name": value.Str("Bob"),
		"age":  value.IntV(52),
	})
	shell := g.AddNode(nil, pg.Props{
		"why": value.NullV(3),
		"sk":  value.Skolem("own", value.IntV(1)),
	})
	g.MustAddEdge(bob.ID, acme.ID, "Owns", pg.Props{"w": value.FloatV(0.6)})
	g.MustAddEdge(shell.ID, acme.ID, "Owns", pg.Props{"w": value.FloatV(0.4)})
	g.MustAddEdge(acme.ID, shell.ID, "", nil)
	return g.Freeze()
}

var goldenInfo = snapfile.BuildInfo{
	Tool:        "kgsnap (golden)",
	Source:      "goldenGraph",
	SourceHash:  "00000000deadbeef",
	CreatedUnix: 1700000000,
	Params:      map[string]string{"kind": "golden", "rev": "1"},
}

const goldenPath = "testdata/golden.snap"

// TestGoldenBytes pins the version-1 encoding byte for byte: any change to
// the writer's output — layout, ordering, padding, checksums — fails here
// and forces an explicit format-version decision rather than a silent
// drift that would strand existing snapshot files.
func TestGoldenBytes(t *testing.T) {
	got, err := snapfile.Encode(goldenGraph(), goldenInfo)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("encoding drifted from the pinned golden file: %d vs %d bytes, first difference at offset %d — if intentional, bump the format version and regenerate with -update", len(got), len(want), i)
	}
}

// TestGoldenDecodes pins the decoded contents of the golden file: a reader
// change that misinterprets pinned bytes fails here even if round-trip
// tests (which push bugs through both sides) stay green.
func TestGoldenDecodes(t *testing.T) {
	snap, err := snapfile.Open(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	f := snap.Frozen
	if f.NumNodes() != 3 || f.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges, want 3/3", f.NumNodes(), f.NumEdges())
	}
	if !reflect.DeepEqual(snap.Info, goldenInfo) {
		t.Fatalf("build info: %+v, want %+v", snap.Info, goldenInfo)
	}
	if got, want := f.NodeLabels(), []string{"Company", "Director", "Person"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("node labels %v, want %v", got, want)
	}
	if got, want := f.EdgeLabels(), []string{"", "Owns"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("edge labels %v, want %v", got, want)
	}
	acme := f.Nodes()[0]
	bob := f.Nodes()[1]
	shell := f.Nodes()[2]
	if v, ok := f.NodeProp(acme.ID, "name"); !ok || v != value.Str("Acme Holding") {
		t.Fatalf("acme name = %v, %v", v, ok)
	}
	if v, ok := f.NodeProp(bob.ID, "age"); !ok || v != value.IntV(52) {
		t.Fatalf("bob age = %v, %v", v, ok)
	}
	if v, ok := f.NodeProp(shell.ID, "why"); !ok || v != value.NullV(3) {
		t.Fatalf("shell why = %v, %v", v, ok)
	}
	if v, ok := f.NodeProp(shell.ID, "sk"); !ok || v != value.Skolem("own", value.IntV(1)) {
		t.Fatalf("shell sk = %v, %v", v, ok)
	}
	out := f.Out(bob.ID)
	if len(out) != 1 || out[0].To != acme.ID || out[0].Label != "Owns" {
		t.Fatalf("bob out-edges: %+v", out)
	}
	if v, ok := f.EdgeProp(out[0].ID, "w"); !ok || v != value.FloatV(0.6) {
		t.Fatalf("ownership weight = %v, %v", v, ok)
	}
	if got := f.In(shell.ID); len(got) != 1 || got[0].Label != "" {
		t.Fatalf("shell in-edges: %+v", got)
	}
	assertViewEqual(t, goldenGraph(), f)
}

// TestHeaderGrowthCompat simulates the forward-compatibility story: a
// future revision that appends header fields (larger headerLen, zero-fill
// we do not understand) must still open with today's reader, because the
// reader locates the section table through headerLen instead of assuming
// the v1 size.
func TestHeaderGrowthCompat(t *testing.T) {
	base, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, newLen := range []uint32{72, 96, 256} {
		grown := growHeader(t, clone(base), newLen)
		snap, err := snapfile.Decode(grown)
		if err != nil {
			t.Fatalf("headerLen=%d: grown-header file rejected: %v", newLen, err)
		}
		if !reflect.DeepEqual(snap.Info, goldenInfo) {
			t.Fatalf("headerLen=%d: build info diverged", newLen)
		}
		assertViewEqual(t, goldenGraph(), snap.Frozen)
	}
}

// TestGoldenMappedZeroCopy asserts the golden file actually takes the mmap
// path on platforms that have one, so the zero-copy loader is what the
// rest of the suite exercises.
func TestGoldenMappedZeroCopy(t *testing.T) {
	snap, err := snapfile.Open(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if !snap.Mapped() {
		t.Skip("mmap unsupported on this platform")
	}
	if snap.Path != goldenPath {
		t.Fatalf("snapshot path %q", snap.Path)
	}
}
