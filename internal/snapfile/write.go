package snapfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/value"
)

// Encode serializes a frozen snapshot into the version-1 format. Encoding
// is deterministic: equal snapshots (and equal info) produce byte-identical
// output, which the golden-file tests pin.
func Encode(f *pg.Frozen, info BuildInfo) ([]byte, error) {
	c := f.Columns()
	n, m, s := len(c.NodeOIDs), len(c.EdgeOIDs), len(c.SymNames)

	infoJSON, err := json.Marshal(info)
	if err != nil {
		return nil, fmt.Errorf("snapfile: encoding build info: %w", err)
	}

	// String blob for value records, deduplicated on first use in column
	// order (deterministic: the columns have one canonical order).
	var strBlob []byte
	strOff := map[string]uint64{}
	intern := func(str string) (off uint64, length uint32) {
		if len(str) == 0 {
			return 0, 0
		}
		off, ok := strOff[str]
		if !ok {
			off = uint64(len(strBlob))
			strOff[str] = off
			strBlob = append(strBlob, str...)
		}
		return off, uint32(len(str))
	}
	encodeVals := func(vals []value.Value) ([]byte, error) {
		out := make([]byte, len(vals)*valueRecLen)
		for i, v := range vals {
			rec := out[i*valueRecLen:]
			rec[0] = byte(v.K)
			switch v.K {
			case value.String, value.ID:
				off, l := intern(v.S)
				binary.LittleEndian.PutUint32(rec[4:], l)
				binary.LittleEndian.PutUint64(rec[16:], off)
			case value.Int, value.Null:
				binary.LittleEndian.PutUint64(rec[8:], uint64(v.I))
			case value.Float:
				binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(v.F))
			case value.Bool:
				if v.B {
					binary.LittleEndian.PutUint64(rec[8:], 1)
				}
			case value.Invalid:
				// all-zero record
			default:
				return nil, fmt.Errorf("snapfile: cannot encode value kind %d", v.K)
			}
		}
		return out, nil
	}

	// Symbol table: offsets + concatenated names.
	symOff := make([]byte, (s+1)*4)
	var symBlob []byte
	for i, name := range c.SymNames {
		binary.LittleEndian.PutUint32(symOff[i*4:], uint32(len(symBlob)))
		symBlob = append(symBlob, name...)
	}
	binary.LittleEndian.PutUint32(symOff[s*4:], uint32(len(symBlob)))

	nodeVals, err := encodeVals(c.NodePropVals)
	if err != nil {
		return nil, err
	}
	edgeVals, err := encodeVals(c.EdgePropVals)
	if err != nil {
		return nil, err
	}

	payloads := map[uint32][]byte{
		secBuildInfo:    infoJSON,
		secSymOff:       symOff,
		secSymBlob:      symBlob,
		secNodeOIDs:     i64Bytes(c.NodeOIDs),
		secNodeLabelOff: i32Bytes(c.NodeLabelOff),
		secNodeLabels:   symBytes(c.NodeLabels),
		secNodePropOff:  i32Bytes(c.NodePropOff),
		secNodePropKeys: symBytes(c.NodePropKeys),
		secNodePropVals: nodeVals,
		secEdgeOIDs:     i64Bytes(c.EdgeOIDs),
		secEdgeLabels:   symBytes(c.EdgeLabels),
		secEdgeFrom:     i64Bytes(c.EdgeFrom),
		secEdgeTo:       i64Bytes(c.EdgeTo),
		secEdgePropOff:  i32Bytes(c.EdgePropOff),
		secEdgePropKeys: symBytes(c.EdgePropKeys),
		secEdgePropVals: edgeVals,
		secStrBlob:      strBlob,
		secOutOff:       i32Bytes(c.OutOff),
		secOutAdj:       i32Bytes(c.OutAdj),
		secInOff:        i32Bytes(c.InOff),
		secInAdj:        i32Bytes(c.InAdj),
	}

	// Lay the sections out: data sections in id order, build info last, so
	// provenance-only differences leave every data section untouched.
	order := make([]uint32, 0, numSections)
	for id := uint32(secSymOff); id <= numSections; id++ {
		order = append(order, id)
	}
	order = append(order, secBuildInfo)

	type entry struct {
		off uint64
		len uint64
		crc uint32
	}
	entries := make(map[uint32]entry, numSections)
	pos := uint64(headerLen + numSections*entryLen)
	pos = align8(pos)
	for _, id := range order {
		p := payloads[id]
		entries[id] = entry{off: pos, len: uint64(len(p)), crc: crcOf(p)}
		pos += uint64(len(p))
		if id != order[len(order)-1] {
			pos = align8(pos)
		}
	}
	fileSize := pos

	out := make([]byte, fileSize)

	// Section table, ascending id.
	table := out[headerLen : headerLen+numSections*entryLen]
	for i := 0; i < numSections; i++ {
		id := uint32(i + 1)
		e := entries[id]
		rec := table[i*entryLen:]
		binary.LittleEndian.PutUint32(rec[0:], id)
		binary.LittleEndian.PutUint64(rec[8:], e.off)
		binary.LittleEndian.PutUint64(rec[16:], e.len)
		binary.LittleEndian.PutUint32(rec[24:], e.crc)
	}

	// Header.
	copy(out[0:], Magic)
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint32(out[12:], headerLen)
	binary.LittleEndian.PutUint64(out[24:], uint64(n))
	binary.LittleEndian.PutUint64(out[32:], uint64(m))
	binary.LittleEndian.PutUint64(out[40:], uint64(s))
	binary.LittleEndian.PutUint32(out[48:], numSections)
	binary.LittleEndian.PutUint32(out[52:], crcOf(table))
	binary.LittleEndian.PutUint32(out[60:], crcOf(out[:headerLen-4]))

	// Payloads.
	for id, e := range entries {
		copy(out[e.off:], payloads[id])
	}
	return out, nil
}

// WriteFile atomically writes a snapshot to path: encode, write to a
// temporary file in the same directory, fsync, rename into place, fsync
// the directory. On any failure — including injected faults at
// snapfile/write and snapfile/rename — the temporary file is removed and
// an existing file at path is left untouched, so readers never observe a
// torn snapshot. It returns the encoded size.
func WriteFile(path string, f *pg.Frozen, info BuildInfo) (int64, error) {
	data, err := Encode(f, info)
	if err != nil {
		return 0, err
	}
	if err := fault.Hit(siteWrite); err != nil {
		return 0, fmt.Errorf("snapfile: writing %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("snapfile: writing %s: %w", path, err)
	}
	// CreateTemp creates 0600; published snapshots are world-readable like
	// any other build artifact (umask still applies via the explicit chmod
	// semantics: 0644 is the ceiling we set, not a widening of the mask).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()           //nolint:errcheck // already failing
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort
		return 0, fmt.Errorf("snapfile: writing %s: %w", path, err)
	}
	tmpName := tmp.Name()
	published := false
	// Deferred (not inline) so that a panic between here and the rename —
	// e.g. an injected ModePanic fault — also removes the temporary file:
	// no failure shape may leave a partial snapshot beside the real one.
	defer func() {
		if !published {
			tmp.Close()        //nolint:errcheck // already failing
			os.Remove(tmpName) //nolint:errcheck // best-effort
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return 0, fmt.Errorf("snapfile: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return 0, fmt.Errorf("snapfile: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("snapfile: closing %s: %w", path, err)
	}
	if err := fault.Hit(siteRename); err != nil {
		return 0, fmt.Errorf("snapfile: publishing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return 0, fmt.Errorf("snapfile: publishing %s: %w", path, err)
	}
	published = true
	// Durability of the rename itself; best-effort (some filesystems do
	// not support fsync on directories).
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort
		d.Close()
	}
	return int64(len(data)), nil
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

func i32Bytes(xs []int32) []byte {
	out := make([]byte, len(xs)*4)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

func i64Bytes[T ~int64](xs []T) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

func symBytes[T ~uint32](xs []T) []byte {
	out := make([]byte, len(xs)*4)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}
