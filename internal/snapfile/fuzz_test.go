package snapfile_test

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"testing"

	"repro/internal/snapfile"
)

// FuzzOpenSnapshot drives arbitrary bytes through the full decode pipeline.
// The invariant is the format's safety contract: any input either decodes
// into a structurally valid snapshot or is rejected with one of the typed
// errors — never a panic, never an out-of-bounds access (the latter caught
// by the fuzzer's sanitizers), never an untyped error.
func FuzzOpenSnapshot(f *testing.F) {
	// Seed corpus: two valid snapshots (the pinned golden file and a
	// randomized one), plus near-valid mutants that steer the fuzzer at the
	// interesting boundaries.
	if golden, err := os.ReadFile(goldenPath); err == nil {
		f.Add(golden)
		trunc := golden[:len(golden)/2]
		f.Add(trunc)
		flipped := clone(golden)
		flipped[70] ^= 0xFF
		f.Add(flipped)
		badVer := clone(golden)
		binary.LittleEndian.PutUint32(badVer[hdrVersionOff:], 9)
		f.Add(badVer)
	}
	if data, err := snapfile.Encode(testGraph(rand.New(rand.NewSource(42))).Freeze(), snapfile.BuildInfo{Tool: "fuzz"}); err == nil {
		f.Add(data)
	}
	f.Add([]byte(snapfile.Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := snapfile.Decode(data)
		if err != nil {
			for _, sentinel := range []error{
				snapfile.ErrBadMagic, snapfile.ErrBadVersion, snapfile.ErrTruncated,
				snapfile.ErrChecksum, snapfile.ErrCorrupt,
			} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// Accepted input must be a coherent snapshot: re-encoding it with
		// its own provenance must succeed and decode again.
		re, err := snapfile.Encode(snap.Frozen, snap.Info)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if _, err := snapfile.Decode(re); err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
	})
}
