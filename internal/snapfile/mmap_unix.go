//go:build unix

package snapfile

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy read path; on unsupported platforms
// Open goes straight to the copying loader.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so every replica
// opening the same snapshot shares one page-cache copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
