// Package snapfile implements the persistent on-disk format for frozen
// graph snapshots (pg.Frozen): a versioned, checksummed, mmap-friendly
// binary layout that turns kgserve cold-start from "parse JSON + freeze"
// into "open + validate + swap". It is the durability layer the ROADMAP's
// "snapshot persistence and instant-start replicas" item calls for — one
// offline build (§6's ~160-minute materialization in the paper's Bank of
// Italy deployment) shared by any number of stateless serving replicas
// through the page cache.
//
// # File layout (version 1)
//
// All integers are little-endian. Every section starts on an 8-byte
// boundary; gaps are zero. Offsets are absolute file offsets.
//
//	┌────────────────────────────────────────────────────────────┐
//	│ header (64 bytes)                                          │
//	│   0  magic      [8]byte  "KGSNAP\r\n"                      │
//	│   8  version    u32      1                                 │
//	│  12  headerLen  u32      64 (v1) — offset of section table │
//	│  16  flags      u64      reserved, 0                       │
//	│  24  nodes      u64                                        │
//	│  32  edges      u64                                        │
//	│  40  syms       u64                                        │
//	│  48  sections   u32      number of section-table entries   │
//	│  52  tableCRC   u32      CRC32C of the section table       │
//	│  56  reserved   u32      0                                 │
//	│  60  headerCRC  u32      CRC32C of bytes [0, headerLen-4)  │
//	├────────────────────────────────────────────────────────────┤
//	│ section table (sections × 32 bytes, ascending section id)  │
//	│   0  id       u32                                          │
//	│   4  reserved u32      0                                   │
//	│   8  off      u64      8-byte aligned                      │
//	│  16  len      u64      exact payload length                │
//	│  24  crc      u32      CRC32C of the payload               │
//	│  28  reserved u32      0                                   │
//	├────────────────────────────────────────────────────────────┤
//	│ sections 2..21 in id order, then section 1 (build info)    │
//	└────────────────────────────────────────────────────────────┘
//
// The build-info section is written last so that two snapshots of the same
// graph with different provenance differ only in that section (and the
// table/header bytes describing it) — every data section sits at identical
// offsets with identical bytes.
//
// Section payloads (elements little-endian, counts n = nodes, m = edges,
// s = syms):
//
//	 1 buildInfo    JSON-encoded BuildInfo
//	 2 symOff       (s+1) × u32   name i is symBlob[symOff[i]:symOff[i+1]]
//	 3 symBlob      bytes         concatenated symbol names
//	 4 nodeOIDs     n × i64       strictly ascending
//	 5 nodeLabelOff (n+1) × i32   CSR offsets into nodeLabels
//	 6 nodeLabels   × u32         symtab.Sym values
//	 7 nodePropOff  (n+1) × i32
//	 8 nodePropKeys × u32         ascending per row
//	 9 nodePropVals × 24-byte value records
//	10 edgeOIDs     m × i64       strictly ascending
//	11 edgeLabels   m × u32
//	12 edgeFrom     m × i64
//	13 edgeTo       m × i64
//	14 edgePropOff  (m+1) × i32
//	15 edgePropKeys × u32
//	16 edgePropVals × 24-byte value records
//	17 strBlob      bytes         string payloads of value records
//	18 outOff       (n+1) × i32   CSR offsets into outAdj
//	19 outAdj       m × i32       edge rows, ascending per node
//	20 inOff        (n+1) × i32
//	21 inAdj        m × i32
//
// A value record is 24 bytes: kind u8 (value.Kind), 3 zero pad bytes,
// strLen u32, num u64 (int64 bits, float64 bits, bool 0/1, or null label),
// strOff u64 into strBlob. Fields a kind does not use must be zero, which
// makes the encoding canonical: equal snapshots encode to identical bytes.
//
// # Reading
//
// Open memory-maps the file and reconstructs a pg.Frozen without copying
// the numeric columns or string bytes: after the magic, version, checksum
// and structural validation passes (nothing is handed out before they all
// succeed), the column slices alias the mapping directly and only the
// pointer facade (nodes, edges, row maps, label indexes) is rebuilt on the
// heap. Where mmap is unavailable — unsupported platform, mapping failure,
// or an injected fault at snapfile/mmap — Open falls back to a copying
// loader with identical semantics. Malformed input of any shape yields a
// typed error (ErrBadMagic, ErrBadVersion, ErrTruncated, ErrChecksum,
// ErrCorrupt), never a panic and never a partially-valid snapshot.
//
// Writes go through the atomic-materialization discipline: WriteFile
// encodes to a temporary file in the destination directory, fsyncs, then
// renames into place, so a crashed or fault-injected write leaves either
// the old file or no file — never a torn snapshot. The injection sites
// snapfile/write, snapfile/rename and snapfile/mmap plug into the chaos
// harness (internal/fault).
package snapfile

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/fault"
)

// Magic is the 8-byte file signature. The \r\n tail catches text-mode
// transfer mangling the way PNG's signature does.
const Magic = "KGSNAP\r\n"

// Version is the current format version written by Encode.
const Version = 1

const (
	headerLen   = 64 // v1 header size; readers honor the headerLen field
	minHeader   = 64 // smallest header any version may declare
	entryLen    = 32 // section-table entry size
	valueRecLen = 24 // value record size
	maxSections = 1024
)

// Section ids of format version 1. Readers require 1..21 exactly once and
// ignore unknown ids, so future versions can add sections without breaking
// v1 readers of v1 files.
const (
	secBuildInfo = 1 + iota
	secSymOff
	secSymBlob
	secNodeOIDs
	secNodeLabelOff
	secNodeLabels
	secNodePropOff
	secNodePropKeys
	secNodePropVals
	secEdgeOIDs
	secEdgeLabels
	secEdgeFrom
	secEdgeTo
	secEdgePropOff
	secEdgePropKeys
	secEdgePropVals
	secStrBlob
	secOutOff
	secOutAdj
	secInOff
	secInAdj

	numSections = secInAdj // 21
)

// Fault-injection sites of the snapshot layer (see internal/fault): the
// temp-file write, the publishing rename, and the read-side mmap (whose
// failure is survivable — Open degrades to the copying loader).
var (
	siteWrite  = fault.Site("snapfile/write")
	siteRename = fault.Site("snapfile/rename")
	siteMmap   = fault.Site("snapfile/mmap")
)

// Typed decode errors. Every malformed input maps to exactly one of these
// through errors.Is; the message carries the detail.
var (
	// ErrBadMagic: the file does not start with the KGSNAP signature.
	ErrBadMagic = errors.New("snapfile: bad magic")
	// ErrBadVersion: the signature matched but the format version is not
	// one this reader understands.
	ErrBadVersion = errors.New("snapfile: unsupported format version")
	// ErrTruncated: the file ends before a region the header or section
	// table says exists.
	ErrTruncated = errors.New("snapfile: truncated file")
	// ErrChecksum: a CRC32C over the header, section table or a section
	// payload does not match the stored value.
	ErrChecksum = errors.New("snapfile: checksum mismatch")
	// ErrCorrupt: the checksums hold but the content violates a structural
	// invariant of the format (bad counts, offsets, symbols, records…).
	ErrCorrupt = errors.New("snapfile: corrupt snapshot")
)

// crcTable is the Castagnoli polynomial table (CRC32C), hardware
// accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// BuildInfo is the provenance header stamped into every snapshot by its
// producer: which tool built it, from what source, with which parameters.
// It is surfaced by kgsnap -info and the kgserve /stats endpoint so an
// operator can tell which build a replica is serving. The zero value is
// valid (an anonymous build). Timestamps are the caller's choice — Encode
// never stamps one, keeping encoding a pure function of its inputs.
type BuildInfo struct {
	// Tool identifies the producer, e.g. "kgsnap v1" or "kggen".
	Tool string `json:"tool,omitempty"`
	// Source names the input the snapshot was built from (a path, URL…).
	Source string `json:"source,omitempty"`
	// SourceHash fingerprints the source bytes (FNV-1a 64, hex), so two
	// replicas can tell whether they serve the same build.
	SourceHash string `json:"sourceHash,omitempty"`
	// CreatedUnix is the build time in Unix seconds, 0 when unstamped.
	CreatedUnix int64 `json:"createdUnix,omitempty"`
	// Params records creation parameters (seeds, modes, sizes…).
	Params map[string]string `json:"params,omitempty"`
}

// Sniff reports whether b begins with the snapshot magic — enough bytes to
// route a file between the JSON loader and Open without extensions.
func Sniff(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func truncatedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTruncated, fmt.Sprintf(format, args...))
}

func checksumf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrChecksum, fmt.Sprintf(format, args...))
}
