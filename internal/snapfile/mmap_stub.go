//go:build !unix

package snapfile

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("snapfile: mmap unsupported on this platform")
}

func munmap(b []byte) error { return nil }
