package snapfile_test

// The corruption suite: every malformed shape of a snapshot file — flipped
// header fields, truncations at section boundaries, zeroed checksums,
// structurally invalid content behind valid checksums — must surface as
// one of the typed errors, never a panic and never a silently-wrong view.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"testing"

	"repro/internal/snapfile"
)

// baseImage returns a fresh encoded snapshot for mutation. The golden
// graph guarantees every section is populated, so content mutations always
// have bytes to land on.
func baseImage(t *testing.T) []byte {
	t.Helper()
	data, err := snapfile.Encode(goldenGraph(), snapfile.BuildInfo{Tool: "corrupt-base"})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mustTypedError asserts err matches exactly the expected sentinel (and is
// non-nil).
func mustTypedError(t *testing.T, err, want error) {
	t.Helper()
	if err == nil {
		t.Fatal("corrupt input was accepted")
	}
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

// anyTypedError asserts err matches at least one sentinel of the format's
// error taxonomy — the contract that no malformed input escapes typing.
func anyTypedError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("corrupt input was accepted")
	}
	for _, sentinel := range []error{
		snapfile.ErrBadMagic, snapfile.ErrBadVersion, snapfile.ErrTruncated,
		snapfile.ErrChecksum, snapfile.ErrCorrupt,
	} {
		if errors.Is(err, sentinel) {
			return
		}
	}
	t.Fatalf("error %v matches no typed sentinel", err)
}

// TestCorruptHeaderTargeted: precise error types for each header-level
// corruption.
func TestCorruptHeaderTargeted(t *testing.T) {
	base := baseImage(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty file", func(d []byte) []byte { return nil }, snapfile.ErrTruncated},
		{"magic prefix only", func(d []byte) []byte { return d[:5] }, snapfile.ErrTruncated},
		{"flipped magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }, snapfile.ErrBadMagic},
		{"not a snapshot", func(d []byte) []byte { return []byte(`{"nodes":[]}`) }, snapfile.ErrBadMagic},
		{"future version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrVersionOff:], 2)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrBadVersion},
		{"version zero", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrVersionOff:], 0)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrBadVersion},
		{"headerLen below minimum", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrLenOff:], 32)
			return d
		}, snapfile.ErrCorrupt},
		{"headerLen unaligned", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrLenOff:], 68)
			return d
		}, snapfile.ErrCorrupt},
		{"headerLen past EOF", func(d []byte) []byte {
			past := (uint32(len(d)) + 15) &^ 7 // aligned, beyond the file
			binary.LittleEndian.PutUint32(d[hdrLenOff:], past)
			return d
		}, snapfile.ErrTruncated},
		{"unknown flags", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[hdrFlagsOff:], 1)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrCorrupt},
		{"node count off by one", func(d []byte) []byte {
			n := binary.LittleEndian.Uint64(d[hdrNodesOff:])
			binary.LittleEndian.PutUint64(d[hdrNodesOff:], n+1)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrCorrupt},
		{"edge count off by one", func(d []byte) []byte {
			m := binary.LittleEndian.Uint64(d[hdrEdgesOff:])
			binary.LittleEndian.PutUint64(d[hdrEdgesOff:], m+1)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrCorrupt},
		{"symbol count off by one", func(d []byte) []byte {
			s := binary.LittleEndian.Uint64(d[hdrSymsOff:])
			binary.LittleEndian.PutUint64(d[hdrSymsOff:], s+1)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrCorrupt},
		{"node count overflows int32", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[hdrNodesOff:], 1<<40)
			fixMetaCRCs(d)
			return d
		}, snapfile.ErrCorrupt},
		{"section count zero", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrSectionsOff:], 0)
			hl := hdrLen(d) // header CRC only: the count is rejected before the table is read
			binary.LittleEndian.PutUint32(d[hl-4:], crc32.Checksum(d[:hl-4], testCRC))
			return d
		}, snapfile.ErrCorrupt},
		{"section count huge", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrSectionsOff:], 1<<20)
			hl := hdrLen(d)
			binary.LittleEndian.PutUint32(d[hl-4:], crc32.Checksum(d[:hl-4], testCRC))
			return d
		}, snapfile.ErrCorrupt},
		{"table checksum zeroed", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrTableCRCOff:], 0)
			binary.LittleEndian.PutUint32(d[hdrLen(d)-4:], 0)
			// header CRC must be valid for the zeroed-table-CRC bytes
			hl := hdrLen(d)
			binary.LittleEndian.PutUint32(d[hl-4:], crc32.Checksum(d[:hl-4], testCRC))
			return d
		}, snapfile.ErrChecksum},
		{"header checksum zeroed", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[hdrLen(d)-4:], 0)
			return d
		}, snapfile.ErrChecksum},
		{"reserved word flipped", func(d []byte) []byte {
			d[hdrReservedOff] = 0xAA // covered by the header CRC
			return d
		}, snapfile.ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := snapfile.Decode(tc.mutate(clone(base)))
			mustTypedError(t, err, tc.want)
		})
	}
}

// TestCorruptHeaderExhaustive flips one byte in every header word —
// covering each field without enumerating them — and requires a typed
// rejection for each.
func TestCorruptHeaderExhaustive(t *testing.T) {
	base := baseImage(t)
	for off := 0; off < int(hdrLen(base)); off += 4 {
		t.Run(fmt.Sprintf("byte_%d", off), func(t *testing.T) {
			d := clone(base)
			d[off] ^= 0x5A
			_, err := snapfile.Decode(d)
			anyTypedError(t, err)
		})
	}
}

// TestCorruptTruncations cuts the file at every section boundary (and a
// few interior points) and requires a typed rejection for each prefix.
func TestCorruptTruncations(t *testing.T) {
	base := baseImage(t)
	cuts := map[int]bool{1: true, 7: true, 40: true, 63: true, 64: true, len(base) - 1: true}
	for _, e := range sections(t, base) {
		cuts[int(e.off)] = true
		if end := int(e.off + e.len); end < len(base) {
			cuts[end] = true
		}
	}
	points := make([]int, 0, len(cuts))
	for p := range cuts {
		if p >= 0 && p < len(base) {
			points = append(points, p)
		}
	}
	sort.Ints(points)
	for _, p := range points {
		t.Run(fmt.Sprintf("at_%d", p), func(t *testing.T) {
			_, err := snapfile.Decode(base[:p])
			anyTypedError(t, err)
		})
	}
}

// TestCorruptSectionChecksums zeroes each section's stored checksum (with
// valid table and header checksums around it) and flips one payload byte
// per section: both must surface as ErrChecksum.
func TestCorruptSectionChecksums(t *testing.T) {
	base := baseImage(t)
	for id, e := range sections(t, base) {
		if e.crc != 0 {
			t.Run(fmt.Sprintf("zeroed_crc_section_%d", id), func(t *testing.T) {
				d := clone(base)
				binary.LittleEndian.PutUint32(tableEntry(d, e.idx)[24:], 0)
				fixMetaCRCs(d)
				_, err := snapfile.Decode(d)
				mustTypedError(t, err, snapfile.ErrChecksum)
			})
		}
		if e.len > 0 {
			t.Run(fmt.Sprintf("flipped_payload_section_%d", id), func(t *testing.T) {
				d := clone(base)
				d[e.off] ^= 0x5A
				_, err := snapfile.Decode(d)
				mustTypedError(t, err, snapfile.ErrChecksum)
			})
		}
	}
}

// TestCorruptTable: structural corruption of the section table itself.
func TestCorruptTable(t *testing.T) {
	base := baseImage(t)
	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"duplicate section id", func(d []byte) {
			src := tableEntry(d, 0)
			copy(tableEntry(d, 1), src)
			fixMetaCRCs(d)
		}, snapfile.ErrCorrupt},
		{"required section renamed away", func(d []byte) {
			binary.LittleEndian.PutUint32(tableEntry(d, 20)[0:], 500)
			fixMetaCRCs(d)
		}, snapfile.ErrCorrupt},
		{"section id zero", func(d []byte) {
			binary.LittleEndian.PutUint32(tableEntry(d, 0)[0:], 0)
			fixMetaCRCs(d)
		}, snapfile.ErrCorrupt},
		{"unaligned section offset", func(d []byte) {
			rec := tableEntry(d, 3)
			off := binary.LittleEndian.Uint64(rec[8:])
			binary.LittleEndian.PutUint64(rec[8:], off+4)
			fixMetaCRCs(d)
		}, snapfile.ErrCorrupt},
		{"section past EOF", func(d []byte) {
			rec := tableEntry(d, 3)
			binary.LittleEndian.PutUint64(rec[16:], uint64(len(d)))
			fixMetaCRCs(d)
		}, snapfile.ErrTruncated},
		{"section overlapping header", func(d []byte) {
			rec := tableEntry(d, 3)
			binary.LittleEndian.PutUint64(rec[8:], 0)
			fixMetaCRCs(d)
		}, snapfile.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := clone(base)
			tc.mutate(d)
			_, err := snapfile.Decode(d)
			mustTypedError(t, err, tc.want)
		})
	}
}

// TestCorruptContent: checksums all valid, content structurally wrong —
// the deepest validation layer must reject with ErrCorrupt.
func TestCorruptContent(t *testing.T) {
	base := baseImage(t)
	secs := sections(t, base)
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"trailing bytes", func(d []byte) {}}, // handled below via append
		{"symbol offsets decrease", func(d []byte) {
			e := secs[2] // symOff
			binary.LittleEndian.PutUint32(d[e.off+4:], 1<<30)
			fixAllCRCs(d)
		}},
		{"value record unknown kind", func(d []byte) {
			e := secs[9] // nodePropVals
			d[e.off] = 99
			fixAllCRCs(d)
		}},
		{"value record nonzero padding", func(d []byte) {
			e := secs[9]
			d[e.off+1] = 1
			fixAllCRCs(d)
		}},
		{"value record string past blob", func(d []byte) {
			e := secs[9]
			d[e.off] = 1 // kind String
			binary.LittleEndian.PutUint32(d[e.off+4:], 1<<30)
			fixAllCRCs(d)
		}},
		{"node OIDs not ascending", func(d []byte) {
			e := secs[4] // nodeOIDs
			first := binary.LittleEndian.Uint64(d[e.off:])
			binary.LittleEndian.PutUint64(d[e.off+8:], first)
			fixAllCRCs(d)
		}},
		{"adjacency row out of range", func(d []byte) {
			e := secs[19] // outAdj
			binary.LittleEndian.PutUint32(d[e.off:], 1<<30)
			fixAllCRCs(d)
		}},
		{"build info not JSON", func(d []byte) {
			e := secs[1]
			copy(d[e.off:e.off+e.len], "not json at all")
			fixAllCRCs(d)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := clone(base)
			if tc.name == "trailing bytes" {
				d = append(d, 0, 0, 0, 0, 0, 0, 0, 0)
			} else {
				tc.mutate(d)
			}
			_, err := snapfile.Decode(d)
			mustTypedError(t, err, snapfile.ErrCorrupt)
		})
	}
}
