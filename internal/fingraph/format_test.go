package fingraph

import (
	"strings"
	"testing"
)

// TestCodeFormatBoundary pins the fixed-width code contract on both sides of
// the 10⁸ boundary. The legacy %08d format does not truncate past 10⁸ — fmt
// widens the field — but the widened codes break the fixed-width /
// lexicographic-order contract downstream consumers assume: "PF100000000"
// sorts before "PF99999999". FormatWide restores the contract out to 10¹⁰.
func TestCodeFormatBoundary(t *testing.T) {
	legacy := Config{}
	wide := Config{FormatVersion: FormatWide}

	// In range, both formats are fixed-width and order-preserving.
	if got := legacy.personCode(0); got != "PF00000000" {
		t.Fatalf("legacy personCode(0) = %q", got)
	}
	if got := legacy.companyCode(99_999_999); got != "CO99999999" {
		t.Fatalf("legacy companyCode(1e8-1) = %q", got)
	}
	if got := wide.personCode(0); got != "PF0000000000" {
		t.Fatalf("wide personCode(0) = %q", got)
	}
	if got := wide.companyCode(9_999_999_999); got != "CO9999999999" {
		t.Fatalf("wide companyCode(1e10-1) = %q", got)
	}

	// Past the boundary the legacy format silently widens — the hazard the
	// format-version guard exists for: codes stop being fixed-width and
	// lexicographic order diverges from numeric order.
	over := legacy.personCode(100_000_000)
	if len(over) == len(legacy.personCode(0)) {
		t.Fatalf("expected legacy code to widen past 1e8, got %q", over)
	}
	if !(over < legacy.personCode(99_999_999)) {
		t.Fatalf("expected lexicographic inversion at the legacy boundary")
	}

	// FormatWide keeps the contract intact across the same boundary.
	w1, w2 := wide.personCode(99_999_999), wide.personCode(100_000_000)
	if len(w1) != len(w2) || !(w1 < w2) {
		t.Fatalf("wide format broke fixed width/order at 1e8: %q vs %q", w1, w2)
	}

	// Prefixes are stable across versions so entity kinds stay decodable.
	for _, c := range []string{legacy.personCode(7), wide.personCode(7)} {
		if !strings.HasPrefix(c, "PF") {
			t.Fatalf("person code %q lost its PF prefix", c)
		}
	}
}

// TestCodeWidthSelection pins the version→width mapping, including the
// zero-value default.
func TestCodeWidthSelection(t *testing.T) {
	cases := []struct {
		version int
		width   int
	}{
		{0, 8}, // zero value defaults to legacy
		{FormatLegacy, 8},
		{FormatWide, 10},
	}
	for _, c := range cases {
		if got := (Config{FormatVersion: c.version}).codeWidth(); got != c.width {
			t.Fatalf("codeWidth(version=%d) = %d, want %d", c.version, got, c.width)
		}
	}
}
