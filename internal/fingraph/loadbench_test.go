package fingraph

// The E25 load-path benchmarks: streaming generation through the sharded
// bulk loader versus the materializing pipeline it replaces, at 1M, 10M,
// and 100M edges.
//
// Peak RSS is the metric the streaming plane exists to bound, and it is only
// measurable in a process that has done nothing else — a benchmark that ran
// the materializing leg first would report its high-water mark for every leg
// after it. So each measured leg re-executes this test binary with
// LOADBENCH_CHILD=1 (the crash-harness pattern from internal/server): the
// child runs exactly one load, reads VmHWM from /proc/self/status, and
// prints a one-line JSON result the parent turns into b.ReportMetric values
// (edges/sec, peak-RSS-bytes) for cmd/benchjson to capture.
//
// The 10M/100M legs only run under LOADBENCH_FULL=1 (set by make bench-load);
// a bare `go test -bench Load` gets the 1M legs and the backend-floor pair.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/testutil"
)

const loadChildEnv = "LOADBENCH_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(loadChildEnv) == "1" {
		runLoadChild()
		return
	}
	os.Exit(m.Run())
}

// loadBenchConfig is the benchmark graph shape — the 10M-edge smoke
// configuration from integration_test.go scaled by company count, which
// yields ~3.1 edges and ~3 nodes per company.
func loadBenchConfig(companies int) Config {
	return Config{
		Companies:              companies,
		MeanShareholders:       2.0,
		MajorityFraction:       0.6,
		LocalFraction:          0.55,
		CompanyHolderFraction:  0.35,
		PreferentialAttachment: 0.6,
		CrossHoldingFraction:   0.002,
		Seed:                   20260809,
	}
}

// Companies per edge-count target under loadBenchConfig (~3.03 edges per
// company; the 100M leg is padded so it lands above, not below, 100M).
const (
	companies1M   = 320_000
	companies10M  = 3_200_000
	companies100M = 33_500_000
)

type loadChildResult struct {
	Edges      int   `json:"edges"`
	Nodes      int   `json:"nodes"`
	WallNs     int64 `json:"wall_ns"`
	VmHWMBytes int64 `json:"vm_hwm_bytes"`
}

// runLoadChild executes one load leg described by environment variables and
// prints its result as JSON. It is the whole life of the child process, so
// VmHWM is the peak RSS of that leg alone.
func runLoadChild() {
	mode := os.Getenv("LOADBENCH_MODE")
	companies, err := strconv.Atoi(os.Getenv("LOADBENCH_COMPANIES"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "load child:", err)
		os.Exit(1)
	}
	workers, _ := strconv.Atoi(os.Getenv("LOADBENCH_WORKERS"))
	cfg := loadBenchConfig(companies)

	var res loadChildResult
	start := time.Now()
	switch mode {
	case "stream":
		ld := pg.NewBulkLoader(workers)
		if _, err := StreamTopology(cfg, StreamOptions{}, ld); err != nil {
			fmt.Fprintln(os.Stderr, "load child:", err)
			os.Exit(1)
		}
		frozen, err := ld.Finish()
		if err != nil {
			fmt.Fprintln(os.Stderr, "load child:", err)
			os.Exit(1)
		}
		res.Edges, res.Nodes = frozen.NumEdges(), frozen.NumNodes()
	case "materialize":
		frozen := GenerateTopology(cfg).Shareholding().Freeze()
		res.Edges, res.Nodes = frozen.NumEdges(), frozen.NumNodes()
	default:
		fmt.Fprintf(os.Stderr, "load child: unknown mode %q\n", mode)
		os.Exit(1)
	}
	res.WallNs = time.Since(start).Nanoseconds()
	res.VmHWMBytes, err = readVmHWM()
	if err != nil {
		fmt.Fprintln(os.Stderr, "load child:", err)
		os.Exit(1)
	}
	if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "load child:", err)
		os.Exit(1)
	}
}

// readVmHWM returns the process peak resident set in bytes from
// /proc/self/status (Linux-only, like the rest of the scale harness).
func readVmHWM() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, err
		}
		return kb * 1024, nil
	}
	return 0, errors.New("VmHWM not found in /proc/self/status")
}

// benchLoadChild runs one leg in a fresh child process per iteration and
// reports edges/sec and peak-RSS-bytes.
func benchLoadChild(b *testing.B, mode string, companies, workers int) {
	if testutil.RaceEnabled {
		b.Skip("load legs do not fit under the race detector's memory multiplier")
	}
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	var last loadChildResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			loadChildEnv+"=1",
			"LOADBENCH_MODE="+mode,
			"LOADBENCH_COMPANIES="+strconv.Itoa(companies),
			"LOADBENCH_WORKERS="+strconv.Itoa(workers),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			b.Fatalf("load child: %v", err)
		}
		if err := json.Unmarshal(out, &last); err != nil {
			b.Fatalf("load child output %q: %v", out, err)
		}
	}
	b.StopTimer()
	wall := time.Duration(last.WallNs)
	b.ReportMetric(float64(last.Edges)/wall.Seconds(), "edges/sec")
	b.ReportMetric(float64(last.VmHWMBytes), "peak-RSS-bytes")
	b.Logf("%s %d companies: %d nodes, %d edges in %v (peak RSS %.1f MB)",
		mode, companies, last.Nodes, last.Edges, wall.Round(time.Millisecond),
		float64(last.VmHWMBytes)/(1<<20))
}

func requireFull(b *testing.B) {
	if os.Getenv("LOADBENCH_FULL") == "" {
		b.Skip("large legs run under make bench-load (set LOADBENCH_FULL=1)")
	}
}

func BenchmarkLoadStream1M(b *testing.B) { benchLoadChild(b, "stream", companies1M, 0) }

func BenchmarkLoadStream10M(b *testing.B) {
	requireFull(b)
	benchLoadChild(b, "stream", companies10M, 0)
}

func BenchmarkLoadStream100M(b *testing.B) {
	requireFull(b)
	benchLoadChild(b, "stream", companies100M, 0)
}

func BenchmarkLoadMaterialize1M(b *testing.B) { benchLoadChild(b, "materialize", companies1M, 0) }

func BenchmarkLoadMaterialize10M(b *testing.B) {
	requireFull(b)
	benchLoadChild(b, "materialize", companies10M, 0)
}

// The backend-floor pair: a per-batch ModeDelay at pg/bulkload stands in for
// the symbol-fill work of a slow backing store, so the worker-count speedup
// is observable even on hosts with few cores (the same construction as the
// E23 WAL backend floor). TestBulkLoadDelayFaultHarmless proves delay plans
// do not alter the loaded bytes.
func benchLoadBackend(b *testing.B, workers int) {
	if testutil.RaceEnabled {
		b.Skip("backend floor timing is meaningless under the race detector")
	}
	fault.Reset()
	if err := fault.Arm("pg/bulkload", fault.Plan{
		Mode: fault.ModeDelay, Times: -1, Delay: 10 * time.Millisecond,
	}); err != nil {
		b.Fatal(err)
	}
	defer fault.Reset()
	cfg := loadBenchConfig(100_000)
	edges := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld := pg.NewBulkLoader(workers)
		stats, err := StreamTopology(cfg, StreamOptions{BatchSize: 2048}, ld)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ld.Finish(); err != nil {
			b.Fatal(err)
		}
		edges += stats.Edges
	}
	b.StopTimer()
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/sec")
}

func BenchmarkLoadBackendW1(b *testing.B) { benchLoadBackend(b, 1) }
func BenchmarkLoadBackendW8(b *testing.B) { benchLoadBackend(b, 8) }

// TestBenchLoadGates enforces the E25 acceptance criteria over the
// BENCH_load.json that make bench-load just produced (names already
// normalized by benchjson -strip-procs):
//
//   - W=8 sharded interning must clear 3x the edges/sec of W=1 against the
//     delayed backend floor;
//   - the streaming pipeline's peak RSS at 10M edges must be at most 25% of
//     the materializing generator's.
//
// Run by make bench-load (RUN_LOAD_GATE=1); skipped otherwise.
func TestBenchLoadGates(t *testing.T) {
	if os.Getenv("RUN_LOAD_GATE") == "" {
		t.Skip("load gates run under make bench-load (set RUN_LOAD_GATE=1)")
	}
	data, err := os.ReadFile("../../BENCH_load.json")
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Name  string             `json:"name"`
		Extra map[string]float64 `json:"extra"`
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	metric := func(bench, unit string) float64 {
		for _, r := range results {
			if r.Name == bench {
				v, ok := r.Extra[unit]
				if !ok {
					t.Fatalf("%s has no %q metric in BENCH_load.json", bench, unit)
				}
				return v
			}
		}
		t.Fatalf("%s missing from BENCH_load.json", bench)
		return 0
	}

	w1 := metric("BenchmarkLoadBackendW1", "edges/sec")
	w8 := metric("BenchmarkLoadBackendW8", "edges/sec")
	if ratio := w8 / w1; ratio < 3.0 {
		t.Errorf("W8/W1 ingest speedup %.2fx below the 3x floor (W1 %.0f, W8 %.0f edges/sec)", ratio, w1, w8)
	} else {
		t.Logf("W8/W1 ingest speedup %.2fx (W1 %.0f, W8 %.0f edges/sec)", ratio, w1, w8)
	}

	streamRSS := metric("BenchmarkLoadStream10M", "peak-RSS-bytes")
	matRSS := metric("BenchmarkLoadMaterialize10M", "peak-RSS-bytes")
	if frac := streamRSS / matRSS; frac > 0.25 {
		t.Errorf("stream peak RSS at 10M edges is %.1f%% of materialize (%.1f MB vs %.1f MB); ceiling is 25%%",
			frac*100, streamRSS/(1<<20), matRSS/(1<<20))
	} else {
		t.Logf("stream peak RSS at 10M edges: %.1f MB = %.1f%% of materialize's %.1f MB",
			streamRSS/(1<<20), streamRSS/matRSS*100, matRSS/(1<<20))
	}
}
