package fingraph

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pg"
	"repro/internal/snapfile"
)

// streamConfigs are the sweep shapes: three sizes spanning two orders of
// magnitude, plus a pyramid-heavy variant that maximizes tail-stake volume
// (pyramids are the largest tail phase, and the one whose pairs most often
// collide with main-loop stakes).
func streamConfigs(seed int64) []Config {
	base := Config{
		MeanShareholders:       2.0,
		MajorityFraction:       0.6,
		LocalFraction:          0.55,
		CompanyHolderFraction:  0.35,
		PreferentialAttachment: 0.6,
		CrossHoldingFraction:   0.002,
		Seed:                   seed,
	}
	small, mid, large, pyr := base, base, base, base
	small.Companies = 60
	mid.Companies = 400
	large.Companies = 2500
	pyr.Companies = 500
	pyr.PyramidFraction = 0.3
	pyr.PyramidDepth = 4
	return []Config{small, mid, large, pyr}
}

// encodeViaMaterialize is the reference pipeline: full in-memory topology,
// mutable graph, Freeze, snapfile encode.
func encodeViaMaterialize(t *testing.T, cfg Config) []byte {
	t.Helper()
	frozen := GenerateTopology(cfg).Shareholding().Freeze()
	data, err := snapfile.Encode(frozen, snapfile.BuildInfo{Tool: "equivalence"})
	if err != nil {
		t.Fatalf("encode materialized: %v", err)
	}
	return data
}

// encodeViaStream is the streaming pipeline under test: StreamTopology into
// a BulkLoader at the given worker count, Finish, snapfile encode.
func encodeViaStream(t *testing.T, cfg Config, workers, batch int) []byte {
	t.Helper()
	ld := pg.NewBulkLoader(workers)
	stats, err := StreamTopology(cfg, StreamOptions{BatchSize: batch}, ld)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	frozen, err := ld.Finish()
	if err != nil {
		t.Fatalf("bulk finish: %v", err)
	}
	if got := frozen.NumNodes(); got != stats.Persons+stats.Companies {
		t.Fatalf("stream stats claim %d nodes, snapshot has %d", stats.Persons+stats.Companies, got)
	}
	if got := frozen.NumEdges(); got != stats.Edges {
		t.Fatalf("stream stats claim %d edges, snapshot has %d", stats.Edges, got)
	}
	data, err := snapfile.Encode(frozen, snapfile.BuildInfo{Tool: "equivalence"})
	if err != nil {
		t.Fatalf("encode streamed: %v", err)
	}
	return data
}

// TestStreamEquivalenceSweep is the equivalence wall of the streaming data
// plane: for 25 seeds × 4 config shapes, the streamed snapshot must be
// byte-identical through the snapfile encoder to the materialized one, at
// W=1 and W=8 and across batch sizes. Determinism is the contract, not a
// hope — a single diverging byte fails the sweep.
func TestStreamEquivalenceSweep(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		for ci, cfg := range streamConfigs(seed) {
			want := encodeViaMaterialize(t, cfg)
			for _, workers := range []int{1, 8} {
				got := encodeViaStream(t, cfg, workers, 512)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d config %d W=%d: streamed snapshot diverges from materialized (%d vs %d bytes)",
						seed, ci, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestStreamBatchSizeInvariance pins that the batch boundary cannot leak
// into the output: pathological sizes (1, 7, huge) produce identical bytes.
func TestStreamBatchSizeInvariance(t *testing.T) {
	cfg := streamConfigs(3)[1]
	want := encodeViaStream(t, cfg, 2, 512)
	for _, batch := range []int{1, 7, 1 << 20} {
		if got := encodeViaStream(t, cfg, 2, batch); !bytes.Equal(got, want) {
			t.Fatalf("batch size %d changed the snapshot bytes", batch)
		}
	}
}

// TestStreamStatsMatchTopology cross-checks the stream's self-reported
// stats against the materialized topology.
func TestStreamStatsMatchTopology(t *testing.T) {
	cfg := streamConfigs(11)[2]
	topo := GenerateTopology(cfg)
	g := topo.Shareholding()

	ld := pg.NewBulkLoader(2)
	stats, err := StreamTopology(cfg, StreamOptions{}, ld)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if _, err := ld.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if stats.Persons != topo.Persons || stats.Companies != topo.Companies {
		t.Fatalf("stats (%d persons, %d companies) disagree with topology (%d, %d)",
			stats.Persons, stats.Companies, topo.Persons, topo.Companies)
	}
	if stats.Edges != g.NumEdges() {
		t.Fatalf("stats claim %d edges, materialized graph has %d", stats.Edges, g.NumEdges())
	}
}

// TestStreamCodeOverflowGuard pins the loud half of the format-version
// guard: a scale whose indexes exceed the configured code width is refused
// with ErrCodeOverflow before anything is emitted, and widening the format
// version clears it.
func TestStreamCodeOverflowGuard(t *testing.T) {
	// Legacy width refuses a company count past 10⁸ before the prepass.
	cfg := Config{Companies: 200_000_000, Seed: 1}
	if _, err := StreamTopology(cfg, StreamOptions{}, pg.NewBulkLoader(1)); !errors.Is(err, ErrCodeOverflow) {
		t.Fatalf("expected ErrCodeOverflow for 2e8 companies at legacy width, got %v", err)
	}

	// The wide format streams the same content with 10-digit codes, still
	// byte-identical to its own materialized pipeline.
	wide := streamConfigs(5)[0]
	wide.FormatVersion = FormatWide
	want := encodeViaMaterialize(t, wide)
	if got := encodeViaStream(t, wide, 2, 64); !bytes.Equal(got, want) {
		t.Fatalf("wide-format streamed snapshot diverges from materialized")
	}
	legacy := streamConfigs(5)[0]
	if bytes.Equal(encodeViaMaterialize(t, legacy), want) {
		t.Fatalf("format versions should produce different fiscal codes, snapshots are identical")
	}
}
