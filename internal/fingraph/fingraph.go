// Package fingraph generates synthetic financial knowledge graphs that stand
// in for the Italian Chambers of Commerce register data the paper's Company
// KG is built from (Section 2.1). The real data cannot be redistributed; the
// generator reproduces the topological shape the paper reports — a
// scale-free shareholding network with power-law degrees, a giant weakly
// connected component alongside ~a million small ones, almost exclusively
// trivial strongly connected components with a few larger cycles from
// cross-shareholding, and a tiny clustering coefficient — at any scale, so
// that the intensional components (control, integrated ownership, close
// links) exercise the same code paths as on the production graph.
package fingraph

import (
	"fmt"
	"math/rand"

	"repro/internal/pg"
	"repro/internal/value"
)

// Identifier format versions (Config.FormatVersion). The zero value selects
// FormatLegacy, so existing configurations keep their historical output.
const (
	// FormatLegacy renders fiscal codes with 8-digit zero-padded indexes
	// (PF%08d / CO%08d). Past 10⁸ entities the codes outgrow their field:
	// the fixed-width contract breaks, lexicographic order stops agreeing
	// with numeric order, and downstream consumers that slice or sort codes
	// positionally misattribute entities. TestCodeWidthBoundary pins the
	// hazard.
	FormatLegacy = 1
	// FormatWide renders 10-digit codes (PF%010d / CO%010d), keeping the
	// fixed-width contract intact up to 10¹⁰ entities — past every scale
	// the 100M-edge data plane targets. Selecting it changes every rendered
	// code, so it is gated behind an explicit version bump rather than an
	// entity-count heuristic.
	FormatWide = 2
)

// Config parameterizes the generator. The defaults (see DefaultConfig)
// reproduce the Section 2.1 shape.
type Config struct {
	Seed      int64
	Companies int

	// FormatVersion selects the synthetic-identifier format (FormatLegacy
	// or FormatWide); 0 means FormatLegacy. The streaming generator refuses
	// scales whose entity indexes would overflow the selected code width —
	// the loud half of the format-version guard.
	FormatVersion int

	// PersonsPerCompany controls how many natural persons exist relative to
	// companies (the Bank of Italy graph has roughly 2 persons per company
	// among its 11.97M nodes).
	PersonsPerCompany float64

	// MeanShareholders is the mean number of shareholders per company with
	// a heavy-tailed (approximately Zipfian) distribution around it.
	MeanShareholders float64

	// CompanyHolderFraction is the probability that a shareholder slot is
	// filled by a company rather than a person, creating ownership chains.
	CompanyHolderFraction float64

	// PreferentialAttachment is the probability of picking an existing
	// high-degree holder instead of a uniform one, producing the power-law
	// out-degree tail (investment hubs).
	PreferentialAttachment float64

	// LocalFraction is the probability that a company draws its
	// shareholders only from fresh persons, forming a small star-shaped
	// weakly connected component of its own (the ~1.3M small WCCs).
	LocalFraction float64

	// MajorityFraction is the probability that a company has a majority
	// shareholder (> 50%), which is what makes control chains non-trivial.
	MajorityFraction float64

	// CrossHoldingFraction is the fraction of companies involved in
	// reciprocal-ownership cycles (small SCCs); CycleCluster adds one larger
	// cycle of the given size, standing in for the 1.9k-node largest SCC.
	CrossHoldingFraction float64
	CycleCluster         int

	// PyramidFraction organizes the given fraction of companies into
	// majority-holding chains of PyramidDepth companies (corporate pyramids,
	// common in the Italian economy). Pyramids are what make the control
	// reasoning expensive: a depth-d chain derives d(d-1)/2 control pairs.
	PyramidFraction float64
	PyramidDepth    int

	// Events is the number of BusinessEvents in the full KG rendering.
	Events int
}

// DefaultConfig returns the reference configuration at the given scale
// (number of companies), seeded deterministically.
func DefaultConfig(companies int, seed int64) Config {
	return Config{
		Seed:                   seed,
		Companies:              companies,
		PersonsPerCompany:      1.6,
		MeanShareholders:       2.4,
		CompanyHolderFraction:  0.25,
		PreferentialAttachment: 0.55,
		LocalFraction:          0.45,
		MajorityFraction:       0.4,
		CrossHoldingFraction:   0.002,
		CycleCluster:           0, // enabled when companies is large enough
		Events:                 companies / 20,
	}
}

// Holder identifies a shareholder in the topology: a person or a company.
type Holder struct {
	IsCompany bool
	Index     int
}

// Stake is one ownership stake: holder owns Pct of company Company.
type Stake struct {
	Holder  Holder
	Company int
	Pct     float64
}

// Topology is the raw shareholding structure, before rendering to a graph.
type Topology struct {
	Config    Config
	Persons   int
	Companies int
	Stakes    []Stake
}

// normalized applies the historical in-place Config adjustments of
// GenerateTopology, so every consumer of the shared generation core (the
// materializing path, the streaming prepass, the streaming emission pass)
// sees the same effective configuration.
func (cfg Config) normalized() Config {
	if cfg.Companies <= 0 {
		cfg.Companies = 100
	}
	if cfg.CycleCluster == 0 && cfg.Companies >= 2000 {
		cfg.CycleCluster = cfg.Companies / 1500
	}
	return cfg
}

// topoSink receives the deterministic event stream of one generation run.
// person(i) fires when natural person i is created (indexes are dense and
// ascending); stake fires for every generated stake in emission order, with
// tail=true for the post-main-loop phases (pyramids, cross-holdings, cycle
// cluster), whose holders are always companies.
type topoSink interface {
	person(i int)
	stake(h Holder, company int, pct float64, tail bool)
}

// Pool entries are packed into int32 — persons as the index itself,
// companies as its bitwise complement — because at 100M-edge scale the
// preferential-attachment pool holds tens of millions of entries and the
// 16-byte Holder struct would quadruple its footprint. The packing caps
// entity indexes at 2³¹-1, far above any feasible in-memory scale.
func encodePool(h Holder) int32 {
	if h.IsCompany {
		return ^int32(h.Index)
	}
	return int32(h.Index)
}

func decodePool(v int32) Holder {
	if v < 0 {
		return Holder{IsCompany: true, Index: int(^v)}
	}
	return Holder{IsCompany: false, Index: int(v)}
}

// runTopology is the generation core shared by GenerateTopology and the
// streaming generator. It drives the seeded RNG through the exact historical
// call sequence — the determinism contract every differential test pins —
// and reports each event to the sink. It returns the number of persons
// created. cfg must already be normalized.
func runTopology(cfg Config, sink topoSink) (persons int) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The global pool from which connected companies draw shareholders;
	// repeated entries implement preferential attachment ("the rich get
	// richer" — every acquired stake re-enters the pool).
	var pool []int32
	addPerson := func() Holder {
		h := Holder{IsCompany: false, Index: persons}
		sink.person(persons)
		persons++
		return h
	}

	zipfK := func(mean float64) int {
		// Heavy-tailed shareholder counts: mostly 1..3, occasionally large.
		u := rng.Float64()
		k := 1
		switch {
		case u < 0.45:
			k = 1
		case u < 0.72:
			k = 2
		case u < 0.86:
			k = 3
		case u < 0.94:
			k = 4 + rng.Intn(3)
		case u < 0.99:
			k = 7 + rng.Intn(12)
		default:
			k = 20 + rng.Intn(int(mean*40)+1)
		}
		return k
	}

	// pctBuf is reused across companies: stakes receive the percentage by
	// value, so nothing aliases the buffer past one company's loop.
	var pctBuf []float64
	splitPercent := func(k int, majority bool) []float64 {
		if cap(pctBuf) < k {
			pctBuf = make([]float64, k)
		}
		out := pctBuf[:k]
		if k == 1 {
			out[0] = 1
			return out
		}
		if majority {
			out[0] = 0.5 + rng.Float64()*0.45
			rest := 1 - out[0]
			acc := 0.0
			for i := 1; i < k-1; i++ {
				out[i] = rest * rng.Float64() / float64(k)
				acc += out[i]
			}
			out[k-1] = rest - acc
			return out
		}
		acc := 0.0
		for i := 0; i < k; i++ {
			out[i] = rng.Float64() + 0.05
			acc += out[i]
		}
		for i := range out {
			out[i] /= acc
		}
		return out
	}

	// seen dedups holder picks within one company. Shareholder counts are
	// bounded by zipfK's tail (~a hundred), so a linear scan over a reused
	// slice replaces the historical per-company map without touching the
	// RNG sequence — the map was never iterated.
	seen := make([]Holder, 0, 32)
	for c := 0; c < cfg.Companies; c++ {
		k := zipfK(cfg.MeanShareholders)
		majority := rng.Float64() < cfg.MajorityFraction
		pcts := splitPercent(k, majority)
		local := rng.Float64() < cfg.LocalFraction

		seen = seen[:0]
		for i := 0; i < k; i++ {
			var h Holder
			switch {
			case local:
				h = addPerson()
			case rng.Float64() < cfg.CompanyHolderFraction && c > 0:
				// A company holder: prefer companies with existing stakes.
				if cfg.PreferentialAttachment > rng.Float64() && len(pool) > 0 {
					h = decodePool(pool[rng.Intn(len(pool))])
					if !h.IsCompany {
						h = Holder{IsCompany: true, Index: rng.Intn(c)}
					}
				} else {
					h = Holder{IsCompany: true, Index: rng.Intn(c)}
				}
			default:
				if cfg.PreferentialAttachment > rng.Float64() && len(pool) > 0 {
					h = decodePool(pool[rng.Intn(len(pool))])
				} else {
					h = addPerson()
				}
			}
			if h.IsCompany && h.Index == c {
				h = addPerson() // no self-ownership
			}
			dup := false
			for _, s := range seen {
				if s == h {
					dup = true
					break
				}
			}
			if dup {
				continue // merge duplicate picks into a single stake
			}
			seen = append(seen, h)
			sink.stake(h, c, pcts[i], false)
			if !local {
				pool = append(pool, encodePool(h))
			}
		}
	}

	// Corporate pyramids: consecutive companies chained by majority stakes.
	if cfg.PyramidFraction > 0 && cfg.PyramidDepth > 1 {
		chained := int(float64(cfg.Companies) * cfg.PyramidFraction)
		for start := 0; start+cfg.PyramidDepth <= chained; start += cfg.PyramidDepth {
			for i := 0; i < cfg.PyramidDepth-1; i++ {
				sink.stake(Holder{IsCompany: true, Index: start + i}, start+i+1, 0.51+rng.Float64()*0.3, true)
			}
		}
	}

	// Cross-holdings: reciprocal minority stakes create 2-cycles (small
	// non-trivial SCCs, like the real graph's).
	crossPairs := int(float64(cfg.Companies) * cfg.CrossHoldingFraction)
	for i := 0; i < crossPairs; i++ {
		a := rng.Intn(cfg.Companies)
		b := rng.Intn(cfg.Companies)
		if a == b {
			continue
		}
		sink.stake(Holder{IsCompany: true, Index: a}, b, 0.05+rng.Float64()*0.1, true)
		sink.stake(Holder{IsCompany: true, Index: b}, a, 0.05+rng.Float64()*0.1, true)
	}
	// One larger ring of cross-held companies, standing in for the 1.9k
	// largest SCC of the production graph.
	if cfg.CycleCluster > 1 {
		start := rng.Intn(cfg.Companies - cfg.CycleCluster)
		for i := 0; i < cfg.CycleCluster; i++ {
			from := start + i
			to := start + (i+1)%cfg.CycleCluster
			sink.stake(Holder{IsCompany: true, Index: from}, to, 0.05+rng.Float64()*0.05, true)
		}
	}
	return persons
}

// collectSink materializes the event stream into a Topology.
type collectSink struct{ t *Topology }

func (s collectSink) person(int) {}
func (s collectSink) stake(h Holder, company int, pct float64, _ bool) {
	s.t.Stakes = append(s.t.Stakes, Stake{Holder: h, Company: company, Pct: pct})
}

// GenerateTopology builds the shareholding structure.
func GenerateTopology(cfg Config) *Topology {
	cfg = cfg.normalized()
	t := &Topology{Config: cfg, Companies: cfg.Companies}
	t.Persons = runTopology(cfg, collectSink{t})
	return t
}

// personCode and companyCode build synthetic fiscal codes at the width the
// config's FormatVersion selects.
func (cfg Config) codeWidth() int {
	if cfg.FormatVersion >= FormatWide {
		return 10
	}
	return 8
}

func (cfg Config) personCode(i int) string  { return fmt.Sprintf("PF%0*d", cfg.codeWidth(), i) }
func (cfg Config) companyCode(i int) string { return fmt.Sprintf("CO%0*d", cfg.codeWidth(), i) }

// Shareholding renders the topology as the paper's "simple shareholding
// graph": nodes are shareholders (persons and companies, all also tagged
// with the unified Entity label), and OWNS edges denote owned shares with
// their percentage, aggregated per (holder, company) pair — the layout the
// control rule of Example 4.1 assumes. The Section 2.1 statistics are
// computed on this projection.
func (t *Topology) Shareholding() *pg.Graph {
	g := pg.New()
	personOID := make([]pg.OID, t.Persons)
	companyOID := make([]pg.OID, t.Companies)
	for i := 0; i < t.Persons; i++ {
		personOID[i] = g.AddNode([]string{"PhysicalPerson", "Entity"}, pg.Props{
			"fiscalCode": value.Str(t.Config.personCode(i)),
		}).ID
	}
	for i := 0; i < t.Companies; i++ {
		companyOID[i] = g.AddNode([]string{"Business", "Entity"}, pg.Props{
			"fiscalCode": value.Str(t.Config.companyCode(i)),
		}).ID
	}
	type pair struct{ from, to pg.OID }
	agg := map[pair]float64{}
	var order []pair
	for _, s := range t.Stakes {
		var from pg.OID
		if s.Holder.IsCompany {
			from = companyOID[s.Holder.Index]
		} else {
			from = personOID[s.Holder.Index]
		}
		k := pair{from, companyOID[s.Company]}
		if _, seen := agg[k]; !seen {
			order = append(order, k)
		}
		agg[k] += s.Pct
	}
	for _, k := range order {
		g.MustAddEdge(k.from, k.to, "OWNS", pg.Props{
			"percentage": value.FloatV(agg[k]),
		})
	}
	return g
}

// CompanyKG renders the topology as a full Figure 4 data instance: persons
// and businesses with register attributes, Share nodes decoupling ownership
// via HOLDS and BELONGS_TO edges, and business events. The intensional
// constructs (OWNS, CONTROLS, …) are left for the reasoning process.
func (t *Topology) CompanyKG() *pg.Graph {
	rng := rand.New(rand.NewSource(t.Config.Seed + 1))
	g := pg.New()
	surnames := []string{"Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo", "Ricci", "Marino", "Greco"}
	firstNames := []string{"Maria", "Giuseppe", "Anna", "Francesco", "Luigi", "Rosa", "Antonio", "Giovanna", "Carlo", "Elena"}
	genders := []string{"female", "male"}
	natures := []string{"spa", "srl", "sas", "snc", "cooperativa"}

	// Nodes carry their full ancestor label sets, conforming to the
	// multi-label PG schema the SSST translation produces (Figure 6).
	personOID := make([]pg.OID, t.Persons)
	for i := 0; i < t.Persons; i++ {
		surname := surnames[rng.Intn(len(surnames))]
		personOID[i] = g.AddNode([]string{"PhysicalPerson", "Person"}, pg.Props{
			"fiscalCode": value.Str(t.Config.personCode(i)),
			"name":       value.Str(surname + " " + firstNames[rng.Intn(len(firstNames))]),
			"gender":     value.Str(genders[rng.Intn(2)]),
			"birthDate":  value.Str(fmt.Sprintf("%04d-%02d-%02d", 1930+rng.Intn(70), 1+rng.Intn(12), 1+rng.Intn(28))),
		}).ID
	}
	companyOID := make([]pg.OID, t.Companies)
	for i := 0; i < t.Companies; i++ {
		companyOID[i] = g.AddNode([]string{"Business", "LegalPerson", "Person"}, pg.Props{
			"fiscalCode":          value.Str(t.Config.companyCode(i)),
			"businessName":        value.Str(fmt.Sprintf("company-%d %s", i, natures[rng.Intn(len(natures))])),
			"legalNature":         value.Str(natures[rng.Intn(len(natures))]),
			"shareholdingCapital": value.FloatV(float64(10000 + rng.Intn(10_000_000))),
		}).ID
	}

	// Shares: one Share node per stake, held through HOLDS and anchored by
	// BELONGS_TO (the Section 3.3 decoupling).
	for si, s := range t.Stakes {
		share := g.AddNode([]string{"Share"}, pg.Props{
			"shareCode":  value.Str(fmt.Sprintf("SH%09d", si)),
			"percentage": value.FloatV(s.Pct),
		}).ID
		var holder pg.OID
		if s.Holder.IsCompany {
			holder = companyOID[s.Holder.Index]
		} else {
			holder = personOID[s.Holder.Index]
		}
		g.MustAddEdge(holder, share, "HOLDS", pg.Props{
			"right":      value.Str("ownership"),
			"percentage": value.FloatV(1.0),
		})
		g.MustAddEdge(share, companyOID[s.Company], "BELONGS_TO", nil)
	}

	// Business events.
	types := []string{"merger", "acquisition", "split"}
	for i := 0; i < t.Config.Events && t.Companies >= 2; i++ {
		ev := g.AddNode([]string{"BusinessEvent"}, pg.Props{
			"eventCode": value.Str(fmt.Sprintf("EV%07d", i)),
			"type":      value.Str(types[rng.Intn(len(types))]),
			"date":      value.Str(fmt.Sprintf("%04d-%02d-%02d", 2000+rng.Intn(22), 1+rng.Intn(12), 1+rng.Intn(28))),
		}).ID
		a := companyOID[rng.Intn(t.Companies)]
		b := companyOID[rng.Intn(t.Companies)]
		g.MustAddEdge(a, ev, "PARTICIPATES", pg.Props{"role": value.Str("acquirer")})
		if b != a {
			g.MustAddEdge(b, ev, "PARTICIPATES", pg.Props{"role": value.Str("acquired")})
		}
	}
	return g
}

// OwnershipEdges extracts the (holder, company, pct) triples of the simple
// shareholding graph, for native algorithms that bypass the graph store.
func (t *Topology) OwnershipEdges() []Stake { return t.Stakes }

// NumNodes returns the number of nodes of the simple shareholding graph.
func (t *Topology) NumNodes() int { return t.Persons + t.Companies }
