package fingraph

// Streaming generation: the producer side of the 100M-edge data plane.
//
// StreamTopology emits the simple shareholding graph — the same nodes,
// edges, OIDs and property values Shareholding builds — as uniform-schema
// batches, without materializing the Topology, the stake list, or the
// mutable graph. The peak footprint is the preferential-attachment pool
// plus one batch, instead of hundreds of bytes per construct.
//
// It works in two passes over the same seeded RNG:
//
//   - The prepass runs the generation core with a counting sink: it learns
//     the person count (which fixes every node OID arithmetically: persons
//     get 1..P in creation order — which is index order — and companies
//     P+1..P+C) and collects the tail stakes (pyramids, cross-holdings,
//     cycle cluster), a ~0.4% fraction of companies, all company→company.
//
//   - The emission pass re-runs the core. Main-loop stakes are provably
//     unique (holder, company) pairs — the per-company dedup plus distinct
//     company indexes guarantee it — so each one becomes exactly one OWNS
//     edge, emitted immediately in stake order, which is exactly
//     Shareholding's first-seen pair order. A tail stake may duplicate a
//     main pair; those are merged *forward* into the main edge using the
//     prepass tail list (pct additions applied in tail-stake order, the
//     same float addition order as Shareholding's sequential aggregation).
//     Tail stakes not consumed that way are aggregated and emitted after
//     the main loop, in first-seen order — again matching Shareholding.
//
// The differential sweep (stream_test.go) holds the result byte-identical
// through the snapfile encoder to GenerateTopology→Shareholding→Freeze
// across seeds, sizes and worker counts.

import (
	"errors"
	"fmt"

	"repro/internal/pg"
	"repro/internal/value"
)

// ErrCodeOverflow reports a scale whose entity indexes do not fit the
// fixed-width fiscal codes of the configured FormatVersion. This is the
// loud half of the format-version guard: the legacy 8-digit format would
// not truncate past 10⁸, but it would silently break the fixed-width,
// lexicographically-ordered code contract. Set Config.FormatVersion to
// FormatWide for runs past 10⁸ entities of one kind.
var ErrCodeOverflow = errors.New("fingraph: entity index exceeds the selected code width")

// BatchSink receives the batch stream. *pg.BulkLoader satisfies it; tests
// substitute recorders. Reserve is a capacity hint (edges may be slightly
// over-reported: tail merges are only resolved during emission).
type BatchSink interface {
	Reserve(nodes, nodeProps, edges, edgeProps int)
	AddNodes(pg.NodeBatch) error
	AddEdges(pg.EdgeBatch) error
}

// StreamOptions tunes the batch stream.
type StreamOptions struct {
	// BatchSize is the row count per emitted batch; 0 means 65536.
	BatchSize int
}

// StreamStats summarizes one streaming run.
type StreamStats struct {
	Persons   int
	Companies int
	Edges     int
}

// countSink is the prepass: count persons (via runTopology's return),
// count main stakes, keep the tail.
type countSink struct {
	mainStakes int
	tail       []Stake
}

func (s *countSink) person(int) {}
func (s *countSink) stake(h Holder, c int, pct float64, tail bool) {
	if tail {
		s.tail = append(s.tail, Stake{Holder: h, Company: c, Pct: pct})
	} else {
		s.mainStakes++
	}
}

// pairKey packs a company→company pair; tail holders are always companies
// and indexes are far below 2³¹.
func pairKey(holderIdx, company int) uint64 {
	return uint64(holderIdx)<<32 | uint64(company)
}

// emitSink is the emission pass: stream each main stake out as one edge,
// folding in any tail additions for the same pair.
type emitSink struct {
	sink      BatchSink
	batch     int
	personOID func(i int) pg.OID
	company   func(i int) pg.OID

	tailAdd  map[uint64][]float64 // pair → tail pcts, in tail-stake order
	consumed map[uint64]bool      // tail pairs merged into a main edge

	nextEdge pg.OID
	edges    int

	oids []pg.OID
	from []pg.OID
	to   []pg.OID
	vals []value.Value
	err  error
}

func (e *emitSink) person(int) {} // nodes were emitted arithmetically upfront

func (e *emitSink) stake(h Holder, c int, pct float64, tail bool) {
	if e.err != nil || tail {
		// Tail stakes were captured by the prepass; the emission pass
		// handles them after the main loop.
		return
	}
	from := e.personOID(h.Index)
	if h.IsCompany {
		from = e.company(h.Index)
		if adds, ok := e.tailAdd[pairKey(h.Index, c)]; ok {
			for _, a := range adds {
				pct += a
			}
			e.consumed[pairKey(h.Index, c)] = true
		}
	}
	e.addEdge(from, e.company(c), pct)
}

func (e *emitSink) addEdge(from, to pg.OID, pct float64) {
	if e.err != nil {
		return
	}
	e.nextEdge++
	e.edges++
	e.oids = append(e.oids, e.nextEdge)
	e.from = append(e.from, from)
	e.to = append(e.to, to)
	e.vals = append(e.vals, value.FloatV(pct))
	if len(e.oids) >= e.batch {
		e.flush()
	}
}

var (
	personLabels  = []string{"Entity", "PhysicalPerson"}
	companyLabels = []string{"Business", "Entity"}
	fiscalKeys    = []string{"fiscalCode"}
	ownsKeys      = []string{"percentage"}
)

func (e *emitSink) flush() {
	if e.err != nil || len(e.oids) == 0 {
		return
	}
	e.err = e.sink.AddEdges(pg.EdgeBatch{
		Label: "OWNS",
		Keys:  ownsKeys,
		OIDs:  e.oids,
		From:  e.from,
		To:    e.to,
		Vals:  e.vals,
	})
	e.oids, e.from, e.to, e.vals = e.oids[:0], e.from[:0], e.to[:0], e.vals[:0]
}

// StreamTopology generates cfg's simple shareholding graph as a batch
// stream into sink: persons, then companies, then OWNS edges, with the
// exact OIDs, labels and property values of
// GenerateTopology(cfg).Shareholding(). Feed it a pg.BulkLoader and call
// Finish for the frozen snapshot.
func StreamTopology(cfg Config, opt StreamOptions, sink BatchSink) (StreamStats, error) {
	cfg = cfg.normalized()
	limit := 1
	for i := 0; i < cfg.codeWidth(); i++ {
		limit *= 10
	}
	if cfg.Companies > limit {
		return StreamStats{}, fmt.Errorf("%w: %d companies need codes past %d digits (set FormatVersion: FormatWide)",
			ErrCodeOverflow, cfg.Companies, cfg.codeWidth())
	}

	pre := &countSink{}
	persons := runTopology(cfg, pre)
	if persons > limit {
		return StreamStats{}, fmt.Errorf("%w: %d persons need codes past %d digits (set FormatVersion: FormatWide)",
			ErrCodeOverflow, persons, cfg.codeWidth())
	}

	batch := opt.BatchSize
	if batch <= 0 {
		batch = 1 << 16
	}
	nodes := persons + cfg.Companies
	edgeCap := pre.mainStakes + len(pre.tail) // upper bound: tail merges shrink it
	sink.Reserve(nodes, nodes, edgeCap, edgeCap)

	// Nodes are arithmetic once the prepass has fixed P: persons take OIDs
	// 1..P (AddNode order in Shareholding), companies P+1..P+C.
	oids := make([]pg.OID, 0, batch)
	vals := make([]value.Value, 0, batch)
	emitNodes := func(labels []string, count int, base pg.OID, code func(int) string) error {
		for i := 0; i < count; i++ {
			oids = append(oids, base+pg.OID(i))
			vals = append(vals, value.Str(code(i)))
			if len(oids) >= batch {
				if err := sink.AddNodes(pg.NodeBatch{Labels: labels, Keys: fiscalKeys, OIDs: oids, Vals: vals}); err != nil {
					return err
				}
				oids, vals = oids[:0], vals[:0]
			}
		}
		if len(oids) > 0 {
			if err := sink.AddNodes(pg.NodeBatch{Labels: labels, Keys: fiscalKeys, OIDs: oids, Vals: vals}); err != nil {
				return err
			}
			oids, vals = oids[:0], vals[:0]
		}
		return nil
	}
	if err := emitNodes(personLabels, persons, 1, cfg.personCode); err != nil {
		return StreamStats{}, err
	}
	if err := emitNodes(companyLabels, cfg.Companies, pg.OID(persons+1), cfg.companyCode); err != nil {
		return StreamStats{}, err
	}

	// Index the tail for the forward merge.
	tailAdd := make(map[uint64][]float64, len(pre.tail))
	for _, s := range pre.tail {
		k := pairKey(s.Holder.Index, s.Company)
		tailAdd[k] = append(tailAdd[k], s.Pct)
	}

	em := &emitSink{
		sink:      sink,
		batch:     batch,
		personOID: func(i int) pg.OID { return pg.OID(1 + i) },
		company:   func(i int) pg.OID { return pg.OID(1 + persons + i) },
		tailAdd:   tailAdd,
		consumed:  make(map[uint64]bool, len(pre.tail)),
		nextEdge:  pg.OID(nodes),
	}
	runTopology(cfg, em)
	if em.err != nil {
		return StreamStats{}, em.err
	}

	// Tail pairs that never met a main stake become fresh edges, in
	// first-seen tail order, with pcts summed in tail-stake order — the
	// same order Shareholding's sequential aggregation would have used.
	type tailEdge struct {
		from, to pg.OID
		pct      float64
	}
	firstSeen := make(map[uint64]int, len(pre.tail))
	var fresh []tailEdge
	for _, s := range pre.tail {
		k := pairKey(s.Holder.Index, s.Company)
		if em.consumed[k] {
			continue
		}
		if j, ok := firstSeen[k]; ok {
			fresh[j].pct += s.Pct
			continue
		}
		firstSeen[k] = len(fresh)
		fresh = append(fresh, tailEdge{from: em.company(s.Holder.Index), to: em.company(s.Company), pct: s.Pct})
	}
	for _, t := range fresh {
		em.addEdge(t.from, t.to, t.pct)
	}
	em.flush()
	if em.err != nil {
		return StreamStats{}, em.err
	}
	return StreamStats{Persons: persons, Companies: cfg.Companies, Edges: em.edges}, nil
}
