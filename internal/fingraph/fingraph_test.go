package fingraph

import (
	"testing"

	"repro/internal/graphstats"
)

func TestDeterminism(t *testing.T) {
	a := GenerateTopology(DefaultConfig(500, 42))
	b := GenerateTopology(DefaultConfig(500, 42))
	if a.Persons != b.Persons || len(a.Stakes) != len(b.Stakes) {
		t.Fatalf("same seed must generate the same topology")
	}
	for i := range a.Stakes {
		if a.Stakes[i] != b.Stakes[i] {
			t.Fatalf("stake %d differs across runs", i)
		}
	}
	c := GenerateTopology(DefaultConfig(500, 43))
	if len(a.Stakes) == len(c.Stakes) {
		same := true
		for i := range a.Stakes {
			if a.Stakes[i] != c.Stakes[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
}

func TestNoSelfOwnership(t *testing.T) {
	topo := GenerateTopology(DefaultConfig(1000, 7))
	for _, s := range topo.Stakes {
		if s.Holder.IsCompany && s.Holder.Index == s.Company {
			t.Fatalf("self-ownership stake generated: %+v", s)
		}
	}
}

func TestStakePercentagesSane(t *testing.T) {
	topo := GenerateTopology(DefaultConfig(1000, 7))
	total := map[int]float64{}
	for _, s := range topo.Stakes {
		if s.Pct <= 0 || s.Pct > 1 {
			t.Fatalf("stake pct out of range: %+v", s)
		}
		total[s.Company] += s.Pct
	}
	over := 0
	for _, v := range total {
		if v > 1.30001 { // cross-holdings and cycle rings add on top of the split
			over++
		}
	}
	if float64(over) > 0.02*float64(len(total)) {
		t.Errorf("too many companies with summed ownership > 130%%: %d of %d", over, len(total))
	}
}

// TestSection21StatisticsShape is experiment E1: the synthetic shareholding
// graph reproduces the qualitative shape of the Section 2.1 statistics of
// the Bank of Italy graph:
//
//   - edges/nodes ratio near 1.2 (14.18M edges / 11.97M nodes);
//   - almost all SCCs trivial (11.96M SCCs for 11.97M nodes), with a small
//     number of larger components from cross-shareholding;
//   - many weakly connected components with a single giant one holding a
//     large fraction of the graph (largest WCC > 6M of 11.97M);
//   - heavy-tailed degrees: the maximum in-degree far exceeds the average
//     (16.9k vs 3.12 in the paper);
//   - near-zero average clustering coefficient (0.0086);
//   - a power-law in-degree fit with a plausible exponent.
func TestSection21StatisticsShape(t *testing.T) {
	topo := GenerateTopology(DefaultConfig(8000, 42))
	g := topo.Shareholding()
	s := graphstats.Compute(g)

	ratio := float64(s.Edges) / float64(s.Nodes)
	if ratio < 0.7 || ratio > 2.0 {
		t.Errorf("edges/nodes = %.2f, want near 1.2", ratio)
	}
	if s.SCCAvgSize > 1.05 {
		t.Errorf("avg SCC size = %.3f, want ~1 (trivial SCCs)", s.SCCAvgSize)
	}
	if s.SCCMaxSize < 3 {
		t.Errorf("largest SCC = %d, want a non-trivial cross-holding component", s.SCCMaxSize)
	}
	if s.SCCMaxSize > s.Nodes/10 {
		t.Errorf("largest SCC = %d is too large (%d nodes total)", s.SCCMaxSize, s.Nodes)
	}
	if s.WCCCount < s.Nodes/100 {
		t.Errorf("WCC count = %d, want many small components", s.WCCCount)
	}
	giant := float64(s.WCCMaxSize) / float64(s.Nodes)
	if giant < 0.2 || giant > 0.9 {
		t.Errorf("giant WCC fraction = %.2f, want a dominant component like the paper's 6M/11.97M", giant)
	}
	if float64(s.MaxInDegree) < 8*s.AvgInDegreeActive {
		t.Errorf("max in-degree %d vs avg %.2f: tail not heavy enough", s.MaxInDegree, s.AvgInDegreeActive)
	}
	if float64(s.MaxOutDegree) < 8*s.AvgOutDegreeActive {
		t.Errorf("max out-degree %d vs avg %.2f: tail not heavy enough", s.MaxOutDegree, s.AvgOutDegreeActive)
	}
	if s.AvgClusteringCoefficient > 0.05 {
		t.Errorf("clustering coefficient = %.4f, want near zero like the paper's 0.0086", s.AvgClusteringCoefficient)
	}
	if s.PowerLawAlpha < 1.5 || s.PowerLawAlpha > 4.5 {
		t.Errorf("power-law alpha = %.2f, implausible for a scale-free network", s.PowerLawAlpha)
	}
}

func TestCompanyKGConformsToSchema(t *testing.T) {
	topo := GenerateTopology(DefaultConfig(100, 5))
	g := topo.CompanyKG()
	if len(g.NodesByLabel("Business")) != 100 {
		t.Errorf("businesses = %d", len(g.NodesByLabel("Business")))
	}
	if len(g.NodesByLabel("Share")) != len(topo.Stakes) {
		t.Errorf("shares = %d, stakes = %d", len(g.NodesByLabel("Share")), len(topo.Stakes))
	}
	if len(g.EdgesByLabel("HOLDS")) != len(topo.Stakes) {
		t.Errorf("HOLDS edges = %d", len(g.EdgesByLabel("HOLDS")))
	}
	if len(g.EdgesByLabel("BELONGS_TO")) != len(topo.Stakes) {
		t.Errorf("BELONGS_TO edges = %d", len(g.EdgesByLabel("BELONGS_TO")))
	}
	// Multi-label conformance (Figure 6): businesses carry ancestor labels.
	for _, n := range g.NodesByLabel("Business") {
		if !n.HasLabel("LegalPerson") || !n.HasLabel("Person") {
			t.Fatalf("business %d misses ancestor labels: %v", n.ID, n.Labels)
		}
	}
	// Every share belongs to exactly one business.
	for _, s := range g.NodesByLabel("Share") {
		bt := 0
		for _, e := range g.Out(s.ID) {
			if e.Label == "BELONGS_TO" {
				bt++
			}
		}
		if bt != 1 {
			t.Fatalf("share %d has %d BELONGS_TO edges", s.ID, bt)
		}
	}
}

func TestShareholdingAggregatesStakes(t *testing.T) {
	topo := &Topology{Companies: 2}
	topo.Stakes = []Stake{
		{Holder: Holder{IsCompany: true, Index: 0}, Company: 1, Pct: 0.3},
		{Holder: Holder{IsCompany: true, Index: 0}, Company: 1, Pct: 0.4},
	}
	g := topo.Shareholding()
	owns := g.EdgesByLabel("OWNS")
	if len(owns) != 1 {
		t.Fatalf("OWNS edges = %d, want 1 aggregated", len(owns))
	}
	if got := owns[0].Props["percentage"].F; got < 0.699 || got > 0.701 {
		t.Errorf("aggregated pct = %v", got)
	}
}
