package instance

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/testutil"
	"repro/internal/vadalog"
)

// The chaos harness: sweep every registered fault site across error and
// panic modes and both engine configurations, asserting the pipeline's two
// robustness invariants on each run —
//
//  1. Atomicity: if Materialize returns an error, the dictionary is
//     byte-identical to its pre-call state.
//  2. Containment: an injected panic surfaces as a typed *fault.PanicError,
//     never a process crash, and no goroutines leak.
//
// Sites that are not on this pipeline's path (the pg serialization sites,
// the shard site when the translated program evaluates sequentially) simply
// never fire; the harness asserts those runs succeed untouched, which guards
// against a site accidentally firing somewhere it should not exist.

// dictSerial captures the dictionary graph's observable state. Injection
// must be disarmed before calling it — the pg/write-json site sits on this
// path too.
func dictSerial(t *testing.T, d *Dictionary) string {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Graph.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func chaosFixture(t *testing.T) (*Dictionary, *pg.Graph, *metalog.Program) {
	t.Helper()
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := metalog.Parse(controlSigma)
	if err != nil {
		t.Fatal(err)
	}
	return d, buildCompanyData(t), sigma
}

func TestChaosSweep(t *testing.T) {
	sites := fault.Sites()
	if len(sites) < 9 {
		t.Fatalf("only %d fault sites registered, expected the full pipeline set: %v", len(sites), sites)
	}
	for _, workers := range []int{1, 8} {
		for _, site := range sites {
			for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", site, mode, workers), func(t *testing.T) {
					defer fault.Reset()
					checkLeak := testutil.CheckGoroutineLeak(t)
					d, data, sigma := chaosFixture(t)
					before := dictSerial(t, d)

					if err := fault.Arm(site, fault.Plan{Mode: mode}); err != nil {
						t.Fatal(err)
					}
					res, err := Materialize(d, PGSource{Data: data}, sigma, 1, vadalog.Options{Workers: workers})
					fired := fault.Fired(site)
					fault.Reset()

					if fired == 0 {
						// Site off this pipeline's path: the armed fault must
						// be invisible.
						if err != nil {
							t.Fatalf("site never fired yet the run failed: %v", err)
						}
						return
					}
					if err == nil {
						t.Fatalf("site fired %d times but Materialize succeeded", fired)
					}
					switch mode {
					case fault.ModeError:
						if !errors.Is(err, fault.ErrInjected) {
							t.Errorf("err = %v, want ErrInjected", err)
						}
					case fault.ModePanic:
						var pe *fault.PanicError
						if !errors.As(err, &pe) {
							t.Errorf("err = %v, want contained *fault.PanicError", err)
						} else if len(pe.Stack) == 0 {
							t.Error("PanicError lost its stack")
						}
					}
					if res != nil {
						t.Errorf("failed Materialize returned a non-nil Result")
					}
					if after := dictSerial(t, d); after != before {
						t.Errorf("atomicity violated at site %s: dictionary changed after a failed run", site)
					}
					checkLeak()
				})
			}
		}
	}
}

// TestChaosRetrySuccessIsBitIdentical: a load that fails transiently and
// succeeds on retry produces exactly the dictionary and derived set of a run
// that never faulted — the rollback between attempts restores the OID
// allocator, so the replay allocates identical OIDs.
func TestChaosRetrySuccessIsBitIdentical(t *testing.T) {
	defer fault.Reset()

	dRef, dataRef, sigmaRef := chaosFixture(t)
	ref, err := Materialize(dRef, PGSource{Data: dataRef}, sigmaRef, 1, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := dictSerial(t, dRef)

	d, data, sigma := chaosFixture(t)
	if err := fault.Arm("instance/load", fault.Plan{Mode: fault.ModeError, After: 1, Times: 1}); err != nil {
		t.Fatal(err)
	}
	src := RetryingSource{
		Inner:  PGSource{Data: data},
		Policy: fault.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
	}
	res, err := Materialize(d, src, sigma, 1, vadalog.Options{})
	fault.Reset()
	if err != nil {
		t.Fatalf("retry did not recover the run: %v", err)
	}
	if got := dictSerial(t, d); got != want {
		t.Error("retried run's dictionary differs from the no-fault run")
	}
	if len(res.Derived.NewEdges) != len(ref.Derived.NewEdges) {
		t.Errorf("retried run derived %d edges, no-fault run %d", len(res.Derived.NewEdges), len(ref.Derived.NewEdges))
	}
}

// TestChaosRetryPanicNotRetried: a contained panic during load is a bug, not
// a transient failure — the retry wrapper must give up immediately and the
// dictionary must roll back.
func TestChaosRetryPanicNotRetried(t *testing.T) {
	defer fault.Reset()
	d, data, sigma := chaosFixture(t)
	before := dictSerial(t, d)
	if err := fault.Arm("instance/load", fault.Plan{Mode: fault.ModePanic, Times: -1}); err != nil {
		t.Fatal(err)
	}
	src := RetryingSource{
		Inner:  PGSource{Data: data},
		Policy: fault.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}},
	}
	_, err := Materialize(d, src, sigma, 1, vadalog.Options{})
	hits := fault.Hits("instance/load")
	fault.Reset()
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *fault.PanicError", err)
	}
	if hits != 1 {
		t.Errorf("load attempted %d times after a panic, want 1 (panics are not transient)", hits)
	}
	if after := dictSerial(t, d); after != before {
		t.Error("dictionary changed after a contained panic")
	}
}

// TestChaosBestEffortSalvage: under vadalog.BestEffort a mid-reasoning
// failure salvages the completed strata — the run returns both a Result and
// the typed *vadalog.PartialError, and the dictionary keeps the loaded
// instance plus whatever the partial saturation flushed.
func TestChaosBestEffortSalvage(t *testing.T) {
	defer fault.Reset()
	d, data, sigma := chaosFixture(t)
	before := dictSerial(t, d)
	if err := fault.Arm("vadalog/stratum", fault.Plan{Mode: fault.ModeError, After: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Materialize(d, PGSource{Data: data}, sigma, 1, vadalog.Options{OnFault: vadalog.BestEffort})
	fault.Reset()
	var pe *vadalog.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *vadalog.PartialError", err)
	}
	if res == nil {
		t.Fatal("best-effort salvage lost the Result")
	}
	// The failing first stratum means no CONTROLS edges were derived…
	if n := len(res.Derived.NewEdges); n != 0 {
		t.Errorf("salvaged run derived %d edges from a stratum that never ran", n)
	}
	// …but the loaded instance was committed, not rolled back.
	if after := dictSerial(t, d); after == before {
		t.Error("best-effort salvage rolled the loaded instance back")
	}
	// FailFast over the same fault discards everything.
	d2, data2, sigma2 := chaosFixture(t)
	before2 := dictSerial(t, d2)
	if err := fault.Arm("vadalog/stratum", fault.Plan{Mode: fault.ModeError, After: 1}); err != nil {
		t.Fatal(err)
	}
	res2, err2 := Materialize(d2, PGSource{Data: data2}, sigma2, 1, vadalog.Options{})
	fault.Reset()
	if err2 == nil || res2 != nil {
		t.Fatalf("fail-fast run: res=%v err=%v, want nil result and an error", res2, err2)
	}
	if after2 := dictSerial(t, d2); after2 != before2 {
		t.Error("fail-fast run left dictionary mutations behind")
	}
}

// TestMaterializeFlushErrorRollsBack: a natural (non-injected) flush-time
// failure — Σ deriving an edge type outside the schema — also restores the
// dictionary byte-identically, even though the load phase had already
// written the full instance into it.
func TestMaterializeFlushErrorRollsBack(t *testing.T) {
	d, data, _ := chaosFixture(t)
	before := dictSerial(t, d)
	sigma := metalog.MustParse(`(x: Business) -> (x) [e: TELEPORTS_TO] (x).`)
	_, err := Materialize(d, PGSource{Data: data}, sigma, 1, vadalog.Options{})
	if err == nil || !strings.Contains(err.Error(), "TELEPORTS_TO") {
		t.Fatalf("off-schema derivation must fail, got %v", err)
	}
	if after := dictSerial(t, d); after != before {
		t.Error("flush failure left the loaded instance in the dictionary")
	}
}

// TestChaosScheduleSweep drives the harness the way the hidden -chaos CLI
// flag does: a seeded fault.Schedule covering every site in shuffled order,
// one run per step, with the atomicity invariant checked after each.
func TestChaosScheduleSweep(t *testing.T) {
	defer fault.Reset()
	for _, seed := range []int64{1, 42} {
		steps := fault.Schedule(seed, []fault.Mode{fault.ModeError, fault.ModePanic})
		if len(steps) != len(fault.Sites()) {
			t.Fatalf("schedule covers %d of %d sites", len(steps), len(fault.Sites()))
		}
		for _, step := range steps {
			d, data, sigma := chaosFixture(t)
			before := dictSerial(t, d)
			if err := fault.Arm(step.Site, step.Plan); err != nil {
				t.Fatal(err)
			}
			_, err := Materialize(d, PGSource{Data: data}, sigma, 1, vadalog.Options{})
			fired := fault.Fired(step.Site)
			fault.Reset()
			if fired > 0 && err == nil {
				t.Errorf("seed %d site %s: fault fired but run succeeded", seed, step.Site)
			}
			if err != nil {
				if after := dictSerial(t, d); after != before {
					t.Errorf("seed %d site %s: atomicity violated", seed, step.Site)
				}
			}
		}
	}
}
