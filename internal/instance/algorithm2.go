package instance

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/sortedset"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// Fault-injection sites of the materialization pipeline, one per phase of
// Algorithm 2. The load site sits inside the Source implementations — not at
// the Materialize boundary — so a RetryingSource wrapper actually covers the
// injected failure; the other phases are probed at their boundaries.
var (
	siteLoad   = fault.Site("instance/load")
	siteViews  = fault.Site("instance/input-views")
	siteReason = fault.Site("instance/reason")
	siteFlush  = fault.Site("instance/flush")
)

// Source abstracts the data instance D of Algorithm 2: whatever target
// model it lives in, it can be loaded into the instance super-constructs.
type Source interface {
	load(d *Dictionary, instanceOID int64) (*Loaded, error)
}

// PGSource is a property-graph data instance. The load phase only reads the
// graph, so any pg.View works — including a pg.Frozen snapshot, which makes
// the load side safe to share across concurrent materializations. Callers
// that want the derived components applied back (core.Materialize,
// Result.ApplyToPG) must supply a mutable *pg.Graph.
type PGSource struct{ Data pg.View }

func (s PGSource) load(d *Dictionary, instanceOID int64) (*Loaded, error) {
	if err := fault.Hit(siteLoad); err != nil {
		return nil, err
	}
	return d.LoadPG(s.Data, instanceOID)
}

// RelationalSource is a relational data instance (tables of the Figure 8
// schema).
type RelationalSource struct{ Inst *RelationalInstance }

func (s RelationalSource) load(d *Dictionary, instanceOID int64) (*Loaded, error) {
	if err := fault.Hit(siteLoad); err != nil {
		return nil, err
	}
	return d.LoadRelational(s.Inst, instanceOID)
}

// RetryingSource retries a transiently failing Source under the policy,
// rolling the dictionary back between attempts so a retried load replays on
// exactly the pre-attempt state (same OIDs, same serialization — the
// "bit-identical to a no-fault run" guarantee the chaos suite asserts).
// Contained panics are never retried; they surface as *fault.PanicError.
type RetryingSource struct {
	Inner  Source
	Policy fault.RetryPolicy
}

func (s RetryingSource) load(d *Dictionary, instanceOID int64) (*Loaded, error) {
	var loaded *Loaded
	err := s.Policy.Do("instance/load", func() error {
		snap := d.Graph.Begin()
		err := fault.Guard("instance/load", func() error {
			var lerr error
			loaded, lerr = s.Inner.load(d, instanceOID)
			return lerr
		})
		if err != nil {
			snap.Rollback()
			return err
		}
		snap.Commit()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loaded, nil
}

// Result is the outcome of Algorithm 2, with the phase breakdown that
// Section 6 discusses: loading the instance into the super-components and
// building the input views (Load), the reasoning task proper (Reason), and
// flushing the derived components back (Flush). On the Bank of Italy KG the
// paper reports ~160 minutes of reasoning against ~15 minutes of loading
// plus flushing; the benchmarks reproduce that shape.
type Result struct {
	Loaded      *Loaded
	Catalog     *metalog.Catalog
	Translation *metalog.Translation
	DB          *vadalog.Database
	Derived     *Derived
	RunStats    vadalog.RunStats

	LoadDuration   time.Duration
	ReasonDuration time.Duration
	FlushDuration  time.Duration
}

// Materialize runs Algorithm 2: it loads the data instance D into the
// instance super-constructs (via the model's quasi-inverse mapping), builds
// the input views V_I^Σ, applies the intensional component Σ (translated to
// Vadalog by MTV), and flushes the derived facts back into the instance
// constructs via the output views V_O^Σ.
//
// Failure semantics (DESIGN.md §9). The whole run executes under one
// dictionary savepoint and every phase under a fault guard, so Materialize
// is atomic and crash-contained: on any error — including a panic anywhere
// in the pipeline, which surfaces as a *fault.PanicError — the dictionary
// rolls back byte-identical to its pre-call state. The one deliberate
// exception: when opts.OnFault is vadalog.BestEffort and the reasoning
// fails partway, the strata that completed are a sound prefix of the
// saturation, so their facts are flushed and committed, and the Result comes
// back alongside the *vadalog.PartialError describing what was salvaged. A
// flush failure always rolls back, best effort or not.
func Materialize(d *Dictionary, src Source, sigma *metalog.Program, instanceOID int64, opts vadalog.Options) (*Result, error) {
	cat := CatalogFromSchema(d.Schema)
	tr, err := metalog.Translate(sigma, cat)
	if err != nil {
		return nil, fmt.Errorf("instance: translating Σ: %w", err)
	}

	snap := d.Graph.Begin()
	fail := func(e error) (*Result, error) {
		snap.Rollback()
		return nil, e
	}

	loadStart := time.Now()
	var loaded *Loaded
	if err := fault.Guard("instance/load", func() error {
		var lerr error
		loaded, lerr = src.load(d, instanceOID)
		return lerr
	}); err != nil {
		return fail(fmt.Errorf("instance: loading D into super-components: %w", err))
	}
	var db *vadalog.Database
	if err := fault.Guard("instance/input-views", func() error {
		if err := fault.Hit(siteViews); err != nil {
			return err
		}
		var verr error
		db, verr = loaded.InputViews(cat)
		return verr
	}); err != nil {
		return fail(fmt.Errorf("instance: building input views: %w", err))
	}
	loadDur := time.Since(loadStart)

	// Reasoning works on the fact database, not the dictionary; its own
	// stratum and shard guards contain panics on worker goroutines. A
	// *vadalog.PartialError (BestEffort runs only) is not fatal here: the
	// completed strata are salvaged through the flush below.
	reasonStart := time.Now()
	var run *vadalog.Result
	gerr := fault.Guard("instance/reason", func() error {
		if err := fault.Hit(siteReason); err != nil {
			return err
		}
		var rerr error
		run, rerr = vadalog.RunInPlace(tr.Program, db, opts)
		return rerr
	})
	var salvaged *vadalog.PartialError
	if gerr != nil && !errors.As(gerr, &salvaged) {
		return fail(fmt.Errorf("instance: reasoning: %w", gerr))
	}
	reasonDur := time.Since(reasonStart)

	flushStart := time.Now()
	var derived *Derived
	if err := fault.Guard("instance/flush", func() error {
		if err := fault.Hit(siteFlush); err != nil {
			return err
		}
		var ferr error
		derived, ferr = loaded.Flush(run.DB, tr, cat)
		return ferr
	}); err != nil {
		return fail(fmt.Errorf("instance: flushing derived components: %w", err))
	}
	flushDur := time.Since(flushStart)

	snap.Commit()
	res := &Result{
		Loaded:         loaded,
		Catalog:        cat,
		Translation:    tr,
		DB:             run.DB,
		Derived:        derived,
		RunStats:       run.Stats,
		LoadDuration:   loadDur,
		ReasonDuration: reasonDur,
		FlushDuration:  flushDur,
	}
	if salvaged != nil {
		return res, salvaged
	}
	return res, nil
}

// ApplyStats reports what ApplyToPG changed in the target graph.
type ApplyStats struct {
	NodesCreated int
	EdgesCreated int
	PropsSet     int
}

// ApplyToPG writes the derived components into a property-graph data
// instance: the final step of materialization when the target system is a
// graph database. For PG sources pass the original data graph; entity
// updates land on the corresponding nodes and new intensional entities and
// edges are created.
func (r *Result) ApplyToPG(data *pg.Graph) (ApplyStats, error) {
	var stats ApplyStats
	// Reverse map: entity I_SM_Node OID -> data node OID.
	rev := map[pg.OID]pg.OID{}
	for dataOID, ioid := range r.Loaded.SourceNode {
		rev[ioid] = dataOID
	}
	// New entities become new data nodes.
	for _, ent := range r.Derived.NewEntities {
		n := data.AddNode([]string{ent.Type}, nil)
		rev[ent.IOID] = n.ID
		stats.NodesCreated++
	}
	// Property updates flow onto the data nodes.
	for ioid, ent := range r.Loaded.Entities {
		dataOID, ok := rev[ioid]
		if !ok {
			continue
		}
		n := data.Node(dataOID)
		names := make([]string, 0, len(ent.Attrs))
		for k := range ent.Attrs {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			v := ent.Attrs[k]
			if cur, ok := n.Props[k]; !ok || !value.Equal(cur, v) {
				if err := data.SetNodeProp(dataOID, k, v); err != nil {
					return stats, err
				}
				stats.PropsSet++
			}
		}
	}
	// Derived edges.
	for _, de := range r.Derived.NewEdges {
		from, ok1 := rev[de.From]
		to, ok2 := rev[de.To]
		if !ok1 || !ok2 {
			return stats, fmt.Errorf("instance: derived edge %s endpoints not in target graph", de.Type)
		}
		props := pg.Props{}
		for k, v := range de.Attrs {
			props[k] = v
		}
		if _, err := data.AddEdge(from, to, de.Type, props); err != nil {
			return stats, err
		}
		stats.EdgesCreated++
	}
	return stats, nil
}

// ExportPG builds a fresh property graph from the loaded and derived
// instance: one node per entity (labeled with its type and every ancestor
// type) and one edge per instance edge. This realizes the model-independence
// promise end to end: an instance loaded from relational tables exports as a
// property graph with its intensional components materialized.
func (r *Result) ExportPG() *pg.Graph {
	out := pg.New()
	s := r.Loaded.Dict.Schema
	rev := map[pg.OID]pg.OID{}
	ioids := make([]pg.OID, 0, len(r.Loaded.Entities))
	for ioid := range r.Loaded.Entities {
		ioids = append(ioids, ioid)
	}
	sortedset.Sort(ioids)
	for _, ioid := range ioids {
		ent := r.Loaded.Entities[ioid]
		labels := append([]string{ent.Type}, s.Ancestors(ent.Type)...)
		props := pg.Props{}
		for k, v := range ent.Attrs {
			props[k] = v
		}
		n := out.AddNode(labels, props)
		rev[ioid] = n.ID
	}
	// Replay every instance edge from the dictionary.
	g := r.Loaded.Dict.Graph
	for _, ie := range g.NodesByLabel(LIEdge) {
		if io, ok := ie.Props["instanceOID"]; !ok || io.I != r.Loaded.InstanceOID {
			continue
		}
		var typ string
		var from, to pg.OID
		props := pg.Props{}
		for _, e := range g.Out(ie.ID) {
			switch e.Label {
			case LRefs:
				typ, _ = constructTypeName(g, e.To, "SM_HAS_EDGE_TYPE")
			case LIFrom:
				from = e.To
			case LITo:
				to = e.To
			case LIHasEAttr:
				ia := g.Node(e.To)
				for _, re := range g.Out(ia.ID) {
					if re.Label == LRefs {
						props[g.Node(re.To).Props["name"].S] = ia.Props["value"]
					}
				}
			}
		}
		if f, ok1 := rev[from]; ok1 {
			if t, ok2 := rev[to]; ok2 {
				out.MustAddEdge(f, t, typ, props)
			}
		}
	}
	return out
}
