// Package instance implements the instance level of KGModel (Section 6):
// the instance super-constructs of Figure 9, the loading of data instances
// into super-components via quasi-inverse mappings, the input/output views
// that let a MetaLog intensional component Σ run over super-schema
// instances, and Algorithm 2 — the end-to-end materialization of the
// intensional component with its load / reason / flush phase breakdown.
//
// Instance constructs extend the graph dictionary: every super-construct C
// has an I_C "instance twin" connected to the schema construct it
// instantiates by an SM_REFERENCES edge. I_SM_Attribute additionally holds a
// value property:
//
//	(i:I_SM_Node  {instanceOID})  -SM_REFERENCES->  (n:SM_Node)
//	(e:I_SM_Edge  {instanceOID})  -SM_REFERENCES->  (s:SM_Edge)
//	(a:I_SM_Attribute {instanceOID, value}) -SM_REFERENCES-> (sa:SM_Attribute)
//	I_SM_HAS_NODE_ATTR  i -> a      I_SM_HAS_EDGE_ATTR  e -> a
//	I_SM_FROM           e -> i      I_SM_TO             e -> i
package instance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

// Instance construct labels (Figure 9).
const (
	LINode     = "I_SM_Node"
	LIEdge     = "I_SM_Edge"
	LIAttr     = "I_SM_Attribute"
	LRefs      = "SM_REFERENCES"
	LIHasNAttr = "I_SM_HAS_NODE_ATTR"
	LIHasEAttr = "I_SM_HAS_EDGE_ATTR"
	LIFrom     = "I_SM_FROM"
	LITo       = "I_SM_TO"
)

// Dictionary wraps a graph dictionary holding a super-schema together with
// the index structures needed to create and navigate instance constructs.
type Dictionary struct {
	Graph  *pg.Graph
	Schema *supermodel.Schema

	// Construct OIDs of the schema in the dictionary.
	nodeConstruct map[string]pg.OID            // node type name -> SM_Node OID
	edgeConstruct map[string]pg.OID            // edge type name -> SM_Edge OID
	nodeAttr      map[string]map[string]pg.OID // node type -> attr name -> SM_Attribute OID
	edgeAttr      map[string]map[string]pg.OID
}

// NewDictionary stores the super-schema into a fresh dictionary and indexes
// its constructs.
func NewDictionary(s *supermodel.Schema) (*Dictionary, error) {
	g := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(s, g); err != nil {
		return nil, err
	}
	return IndexDictionary(g, s)
}

// IndexDictionary indexes an existing dictionary that already contains the
// schema.
func IndexDictionary(g *pg.Graph, s *supermodel.Schema) (*Dictionary, error) {
	d := &Dictionary{
		Graph:         g,
		Schema:        s,
		nodeConstruct: map[string]pg.OID{},
		edgeConstruct: map[string]pg.OID{},
		nodeAttr:      map[string]map[string]pg.OID{},
		edgeAttr:      map[string]map[string]pg.OID{},
	}
	// Resolve constructs through SM_HAS_NODE_TYPE / SM_HAS_EDGE_TYPE names.
	for _, n := range g.NodesByLabel(supermodel.LNode) {
		if !inSchema(n, s.OID) {
			continue
		}
		name, ok := constructTypeName(g, n.ID, supermodel.LHasNodeType)
		if !ok {
			return nil, fmt.Errorf("instance: SM_Node %d has no type", n.ID)
		}
		d.nodeConstruct[name] = n.ID
		d.nodeAttr[name] = attrIndex(g, n.ID, supermodel.LHasNodeProp)
	}
	for _, e := range g.NodesByLabel(supermodel.LEdge) {
		if !inSchema(e, s.OID) {
			continue
		}
		name, ok := constructTypeName(g, e.ID, supermodel.LHasEdgeType)
		if !ok {
			return nil, fmt.Errorf("instance: SM_Edge %d has no type", e.ID)
		}
		d.edgeConstruct[name] = e.ID
		d.edgeAttr[name] = attrIndex(g, e.ID, supermodel.LHasEdgeProp)
	}
	for _, n := range s.Nodes {
		if _, ok := d.nodeConstruct[n.Name]; !ok {
			return nil, fmt.Errorf("instance: dictionary misses construct for node %s", n.Name)
		}
	}
	return d, nil
}

func inSchema(n *pg.Node, oid int64) bool {
	so, ok := n.Props["schemaOID"]
	return ok && so.K == value.Int && so.I == oid
}

func constructTypeName(g pg.View, owner pg.OID, label string) (string, bool) {
	for _, e := range g.Out(owner) {
		if e.Label == label {
			if nm, ok := g.Node(e.To).Props["name"]; ok {
				return nm.S, true
			}
		}
	}
	return "", false
}

func attrIndex(g pg.View, owner pg.OID, label string) map[string]pg.OID {
	out := map[string]pg.OID{}
	for _, e := range g.Out(owner) {
		if e.Label == label {
			out[g.Node(e.To).Props["name"].S] = e.To
		}
	}
	return out
}

// Entity is one instance node loaded into the super-components: its
// I_SM_Node OID in the dictionary, its most specific type, and its
// attribute values.
type Entity struct {
	IOID  pg.OID
	Type  string
	Attrs map[string]value.Value
}

// Loaded is the result of loading a data instance into the dictionary's
// instance super-constructs (Algorithm 2, line 4).
type Loaded struct {
	Dict        *Dictionary
	InstanceOID int64

	// Entities indexed by the I_SM_Node OID.
	Entities map[pg.OID]*Entity
	// SourceNode maps a source PG node OID to its I_SM_Node OID (PG source
	// only).
	SourceNode map[pg.OID]pg.OID
	// EdgeCount is the number of I_SM_Edge constructs created.
	EdgeCount int
}

// attrValueOf resolves the attribute construct for a (possibly inherited)
// attribute of the given type.
func (d *Dictionary) attrConstruct(nodeType, attr string) (pg.OID, bool) {
	if oid, ok := d.nodeAttr[nodeType][attr]; ok {
		return oid, true
	}
	for _, anc := range d.Schema.Ancestors(nodeType) {
		if oid, ok := d.nodeAttr[anc][attr]; ok {
			return oid, true
		}
	}
	return 0, false
}

// addInstanceNode creates an I_SM_Node with its attribute twins.
func (d *Dictionary) addInstanceNode(instOID int64, nodeType string, attrs map[string]value.Value) (pg.OID, error) {
	construct, ok := d.nodeConstruct[nodeType]
	if !ok {
		return 0, fmt.Errorf("instance: unknown node type %q", nodeType)
	}
	in := d.Graph.AddNode([]string{LINode}, pg.Props{"instanceOID": value.IntV(instOID)})
	d.Graph.MustAddEdge(in.ID, construct, LRefs, nil)
	names := make([]string, 0, len(attrs))
	for k := range attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		ac, ok := d.attrConstruct(nodeType, name)
		if !ok {
			return 0, fmt.Errorf("instance: node type %s has no attribute %q", nodeType, name)
		}
		ia := d.Graph.AddNode([]string{LIAttr}, pg.Props{
			"instanceOID": value.IntV(instOID),
			"value":       attrs[name],
		})
		d.Graph.MustAddEdge(in.ID, ia.ID, LIHasNAttr, nil)
		d.Graph.MustAddEdge(ia.ID, ac, LRefs, nil)
	}
	return in.ID, nil
}

// addInstanceEdge creates an I_SM_Edge between two I_SM_Nodes.
func (d *Dictionary) addInstanceEdge(instOID int64, edgeType string, from, to pg.OID, attrs map[string]value.Value) (pg.OID, error) {
	construct, ok := d.edgeConstruct[edgeType]
	if !ok {
		return 0, fmt.Errorf("instance: unknown edge type %q", edgeType)
	}
	ie := d.Graph.AddNode([]string{LIEdge}, pg.Props{"instanceOID": value.IntV(instOID)})
	d.Graph.MustAddEdge(ie.ID, construct, LRefs, nil)
	d.Graph.MustAddEdge(ie.ID, from, LIFrom, nil)
	d.Graph.MustAddEdge(ie.ID, to, LITo, nil)
	names := make([]string, 0, len(attrs))
	for k := range attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		ac, ok := d.edgeAttr[edgeType][name]
		if !ok {
			return 0, fmt.Errorf("instance: edge type %s has no attribute %q", edgeType, name)
		}
		ia := d.Graph.AddNode([]string{LIAttr}, pg.Props{
			"instanceOID": value.IntV(instOID),
			"value":       attrs[name],
		})
		d.Graph.MustAddEdge(ie.ID, ia.ID, LIHasEAttr, nil)
		d.Graph.MustAddEdge(ia.ID, ac, LRefs, nil)
	}
	return ie.ID, nil
}

// LoadPG loads a property-graph data instance into the instance
// super-constructs: the quasi-inverse (V(M).copy)⁻¹ for the PG model, which
// reads the data back into the super-model. Each data node must carry
// exactly one most-specific schema label (multi-label tagging is resolved
// against the generalization hierarchy).
func (d *Dictionary) LoadPG(data pg.View, instanceOID int64) (*Loaded, error) {
	out := &Loaded{
		Dict:        d,
		InstanceOID: instanceOID,
		Entities:    map[pg.OID]*Entity{},
		SourceNode:  map[pg.OID]pg.OID{},
	}
	for _, n := range data.Nodes() {
		typ, err := d.mostSpecificType(n.Labels)
		if err != nil {
			return nil, fmt.Errorf("instance: node %d: %w", n.ID, err)
		}
		attrs := map[string]value.Value{}
		for k, v := range n.Props {
			if _, ok := d.attrConstruct(typ, k); ok {
				attrs[k] = v
			}
		}
		ioid, err := d.addInstanceNode(instanceOID, typ, attrs)
		if err != nil {
			return nil, err
		}
		out.Entities[ioid] = &Entity{IOID: ioid, Type: typ, Attrs: attrs}
		out.SourceNode[n.ID] = ioid
	}
	for _, e := range data.Edges() {
		if _, ok := d.edgeConstruct[e.Label]; !ok {
			continue // label outside the schema (e.g. auxiliary data)
		}
		attrs := map[string]value.Value{}
		for k, v := range e.Props {
			if _, ok := d.edgeAttr[e.Label][k]; ok {
				attrs[k] = v
			}
		}
		if _, err := d.addInstanceEdge(instanceOID, e.Label, out.SourceNode[e.From], out.SourceNode[e.To], attrs); err != nil {
			return nil, err
		}
		out.EdgeCount++
	}
	return out, nil
}

// mostSpecificType resolves a label set to the most specific schema node:
// the label that is not an ancestor of any other label present.
func (d *Dictionary) mostSpecificType(labels []string) (string, error) {
	var candidates []string
	for _, l := range labels {
		if _, ok := d.nodeConstruct[l]; ok {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("no schema label among %v", labels)
	}
	best := ""
	for _, c := range candidates {
		isAncestorOfOther := false
		for _, o := range candidates {
			if o == c {
				continue
			}
			for _, anc := range d.Schema.Ancestors(o) {
				if anc == c {
					isAncestorOfOther = true
				}
			}
		}
		if !isAncestorOfOther {
			if best != "" && best != c {
				return "", fmt.Errorf("ambiguous most-specific type among %v (%s vs %s)", labels, best, c)
			}
			best = c
		}
	}
	return best, nil
}

// Row is one tuple of a relational data instance.
type Row map[string]value.Value

// RelationalInstance is a data instance of the relational schema produced
// by the SSST relational mapping: one table per relation of Figure 8.
// Foreign-key columns follow the DDL emitter's naming (IS-A keys reuse the
// identifier columns; other keys are prefixed with the lowercase key name).
type RelationalInstance struct {
	Tables map[string][]Row
}

// LoadRelational loads a relational data instance into the instance
// super-constructs: the quasi-inverse for the relational model. Entities
// split across table-per-class relations are re-joined on their inherited
// identifiers, junction tables become I_SM_Edges, and foreign-key columns
// of functional edges become I_SM_Edges as well.
func (d *Dictionary) LoadRelational(ri *RelationalInstance, instanceOID int64) (*Loaded, error) {
	out := &Loaded{
		Dict:        d,
		InstanceOID: instanceOID,
		Entities:    map[pg.OID]*Entity{},
		SourceNode:  map[pg.OID]pg.OID{},
	}
	s := d.Schema

	idKey := func(nodeType string, r Row) (string, error) {
		ids := s.EffectiveIDAttributes(nodeType)
		if len(ids) == 0 {
			return "", fmt.Errorf("instance: node type %s has no identifier", nodeType)
		}
		parts := make([]string, 0, len(ids))
		names := make([]string, 0, len(ids))
		for _, a := range ids {
			names = append(names, a.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			v, ok := r[n]
			if !ok {
				return "", fmt.Errorf("instance: row of %s misses identifier column %s", nodeType, n)
			}
			parts = append(parts, v.Canonical())
		}
		return strings.Join(parts, "\x00"), nil
	}

	// Pass 1: group rows by entity key; the most specific relation holding
	// the key determines the entity type, and attributes merge across the
	// table-per-class levels.
	type pending struct {
		typ   string
		attrs map[string]value.Value
	}
	entities := map[string]*pending{}
	deeper := func(a, b string) string {
		// Returns the more specific of two types (the one that descends
		// from the other); unrelated types are an error resolved upstream.
		for _, anc := range s.Ancestors(a) {
			if anc == b {
				return a
			}
		}
		return b
	}
	for _, n := range s.Nodes {
		rows := ri.Tables[n.Name]
		for _, r := range rows {
			key, err := idKey(n.Name, r)
			if err != nil {
				return nil, err
			}
			p, ok := entities[key]
			if !ok {
				p = &pending{typ: n.Name, attrs: map[string]value.Value{}}
				entities[key] = p
			} else {
				p.typ = deeper(n.Name, p.typ)
			}
			for col, v := range r {
				if _, ok := d.attrConstruct(n.Name, col); ok {
					p.attrs[col] = v
				}
			}
		}
	}
	keys := make([]string, 0, len(entities))
	for k := range entities {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	byKey := map[string]pg.OID{}
	for _, k := range keys {
		p := entities[k]
		ioid, err := d.addInstanceNode(instanceOID, p.typ, p.attrs)
		if err != nil {
			return nil, err
		}
		out.Entities[ioid] = &Entity{IOID: ioid, Type: p.typ, Attrs: p.attrs}
		byKey[k] = ioid
	}

	lookupRef := func(target string, r Row, prefix string) (pg.OID, error) {
		ids := s.EffectiveIDAttributes(target)
		names := make([]string, 0, len(ids))
		for _, a := range ids {
			names = append(names, a.Name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			v, ok := r[prefix+n]
			if !ok {
				return 0, fmt.Errorf("instance: missing foreign-key column %s%s", prefix, n)
			}
			parts = append(parts, v.Canonical())
		}
		ioid, ok := byKey[strings.Join(parts, "\x00")]
		if !ok {
			return 0, fmt.Errorf("instance: dangling foreign key to %s", target)
		}
		return ioid, nil
	}

	// Pass 2: edges. Junction tables hold one row per edge; functional
	// edges live as foreign-key columns on their holder relation.
	for _, e := range s.Edges {
		switch {
		// Intensional edges are junction relations in the relational schema;
		// previously materialized rows load as ordinary instance edges.
		case e.IsIntensional, e.IsManyToMany():
			for _, r := range ri.Tables[e.Name] {
				from, err := lookupRef(e.From, r, "fk_"+strings.ToLower(e.Name)+"_src_")
				if err != nil {
					return nil, fmt.Errorf("instance: junction %s: %w", e.Name, err)
				}
				to, err := lookupRef(e.To, r, "fk_"+strings.ToLower(e.Name)+"_dst_")
				if err != nil {
					return nil, fmt.Errorf("instance: junction %s: %w", e.Name, err)
				}
				attrs := map[string]value.Value{}
				for _, a := range e.Attributes {
					if v, ok := r[a.Name]; ok {
						attrs[a.Name] = v
					}
				}
				if _, err := d.addInstanceEdge(instanceOID, e.Name, from, to, attrs); err != nil {
					return nil, err
				}
				out.EdgeCount++
			}
		default:
			holder, target := e.From, e.To
			if !e.FromCard.Max1 && e.ToCard.Max1 {
				holder, target = e.To, e.From
			}
			prefix := strings.ToLower(e.Name) + "_"
			for _, r := range ri.Tables[holder] {
				if _, ok := r[prefix+firstIDField(s, target)]; !ok {
					continue // optional participation: FK columns absent
				}
				fromKey, err := idKey(holder, r)
				if err != nil {
					return nil, err
				}
				to, err := lookupRef(target, r, prefix)
				if err != nil {
					return nil, fmt.Errorf("instance: edge %s: %w", e.Name, err)
				}
				attrs := map[string]value.Value{}
				for _, a := range e.Attributes {
					if v, ok := r[a.Name]; ok {
						attrs[a.Name] = v
					}
				}
				from := byKey[fromKey]
				src, dst := from, to
				if holder != e.From {
					src, dst = to, from
				}
				if _, err := d.addInstanceEdge(instanceOID, e.Name, src, dst, attrs); err != nil {
					return nil, err
				}
				out.EdgeCount++
			}
		}
	}
	return out, nil
}

func firstIDField(s *supermodel.Schema, nodeType string) string {
	ids := s.EffectiveIDAttributes(nodeType)
	names := make([]string, 0, len(ids))
	for _, a := range ids {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}
