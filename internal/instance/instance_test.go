package instance

import (
	"testing"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// controlSigma is the intensional component of Example 4.1, written against
// the Company KG super-schema constructs: companies control themselves, and
// control propagates through jointly-held majorities of OWNS edges.
const controlSigma = `
	(x: Business) -> (x) [c: CONTROLS] (x).
	(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
		v = sum(w, <z>), v > 0.5
		-> (x) [c: CONTROLS] (y).
`

// buildCompanyData builds a small Company-KG data instance: four businesses
// with the ownership pattern of the engine tests (a controls b directly and
// c jointly with b).
func buildCompanyData(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	biz := func(code, name string) pg.OID {
		return g.AddNode([]string{"Business"}, pg.Props{
			"fiscalCode":          value.Str(code),
			"businessName":        value.Str(name),
			"legalNature":         value.Str("spa"),
			"shareholdingCapital": value.FloatV(1000),
		}).ID
	}
	a, b, c, d := biz("IT1", "a"), biz("IT2", "b"), biz("IT3", "c"), biz("IT4", "d")
	own := func(x, y pg.OID, w float64) {
		g.MustAddEdge(x, y, "OWNS", pg.Props{"percentage": value.FloatV(w)})
	}
	own(a, b, 0.6)
	own(a, c, 0.3)
	own(b, c, 0.3)
	own(c, d, 0.4)
	return g
}

func controlPairs(t *testing.T, g *pg.Graph) map[string]bool {
	t.Helper()
	names := map[pg.OID]string{}
	for _, n := range g.NodesByLabel("Business") {
		names[n.ID] = n.Props["businessName"].S
	}
	out := map[string]bool{}
	for _, e := range g.EdgesByLabel("CONTROLS") {
		out[names[e.From]+"->"+names[e.To]] = true
	}
	return out
}

// TestFigure9InstanceConstructs checks the instance-level dictionary
// encoding of Figure 9: instance twins with SM_REFERENCES links, and value
// holders on I_SM_Attribute.
func TestFigure9InstanceConstructs(t *testing.T) {
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	data := buildCompanyData(t)
	loaded, err := d.LoadPG(data, 234)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entities) != 4 {
		t.Fatalf("expected 4 entities, got %d", len(loaded.Entities))
	}
	if loaded.EdgeCount != 4 {
		t.Fatalf("expected 4 instance edges, got %d", loaded.EdgeCount)
	}
	g := d.Graph
	if n := len(g.NodesByLabel(LINode)); n != 4 {
		t.Errorf("I_SM_Node count = %d", n)
	}
	if n := len(g.NodesByLabel(LIEdge)); n != 4 {
		t.Errorf("I_SM_Edge count = %d", n)
	}
	// Every instance construct references a schema construct.
	for _, in := range g.NodesByLabel(LINode) {
		found := false
		for _, e := range g.Out(in.ID) {
			if e.Label == LRefs && g.Node(e.To).HasLabel(supermodel.LNode) {
				found = true
			}
		}
		if !found {
			t.Errorf("I_SM_Node %d has no SM_REFERENCES to an SM_Node", in.ID)
		}
	}
	// Attribute twins hold values and reference SM_Attributes (Example 6.1).
	attrs := g.NodesByLabel(LIAttr)
	if len(attrs) != 4*4+4 { // 4 node attrs per business + 1 edge attr per OWNS
		t.Errorf("I_SM_Attribute count = %d, want 20", len(attrs))
	}
	for _, ia := range attrs {
		if _, ok := ia.Props["value"]; !ok {
			t.Errorf("I_SM_Attribute %d has no value", ia.ID)
		}
		if io := ia.Props["instanceOID"]; io.I != 234 {
			t.Errorf("I_SM_Attribute %d has wrong instanceOID %v", ia.ID, io)
		}
	}
}

// TestExample62InputView checks the input view construction: Business facts
// aggregate the attribute twins into catalog-ordered tuples.
func TestExample62InputView(t *testing.T) {
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	data := buildCompanyData(t)
	loaded, err := d.LoadPG(data, 123)
	if err != nil {
		t.Fatal(err)
	}
	cat := CatalogFromSchema(d.Schema)
	db, err := loaded.InputViews(cat)
	if err != nil {
		t.Fatal(err)
	}
	if n := db.Count("Business"); n != 4 {
		t.Errorf("Business view facts = %d, want 4", n)
	}
	// Generalization-aware upcast: businesses also appear as LegalPerson
	// and Person (Section 3.3's graph homogeneity).
	if n := db.Count("LegalPerson"); n != 4 {
		t.Errorf("LegalPerson view facts = %d, want 4", n)
	}
	if n := db.Count("Person"); n != 4 {
		t.Errorf("Person view facts = %d, want 4", n)
	}
	if n := db.Count("OWNS"); n != 4 {
		t.Errorf("OWNS view facts = %d, want 4", n)
	}
	// The Business tuple layout follows the catalog: oid + effective attrs.
	f := db.Facts("Business")[0]
	if len(f) != 1+len(cat.NodeProps["Business"]) {
		t.Errorf("Business fact arity = %d", len(f))
	}
}

// TestAlgorithm2PGSource runs the full materialization pipeline over a PG
// data instance and applies the result back to the graph.
func TestAlgorithm2PGSource(t *testing.T) {
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := metalog.Parse(controlSigma)
	if err != nil {
		t.Fatal(err)
	}
	data := buildCompanyData(t)
	res, err := Materialize(d, PGSource{Data: data}, sigma, 777, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived.NewEdges) != 6 {
		t.Errorf("derived CONTROLS edges = %d, want 6", len(res.Derived.NewEdges))
	}
	if res.LoadDuration <= 0 || res.ReasonDuration <= 0 {
		t.Errorf("phase durations must be positive")
	}
	if _, err := res.ApplyToPG(data); err != nil {
		t.Fatal(err)
	}
	got := controlPairs(t, data)
	for _, want := range []string{"a->a", "b->b", "c->c", "d->d", "a->b", "a->c"} {
		if !got[want] {
			t.Errorf("missing control edge %s; got %v", want, got)
		}
	}
	if len(got) != 6 {
		t.Errorf("control edges = %v", got)
	}
}

// TestAlgorithm2RelationalSource demonstrates model independence: the same
// intensional component Σ materializes over a *relational* data instance,
// and the result exports as a property graph.
func TestAlgorithm2RelationalSource(t *testing.T) {
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := metalog.Parse(controlSigma)
	if err != nil {
		t.Fatal(err)
	}
	// Table-per-class rows: each business appears in Person, LegalPerson
	// and Business; OWNS is an (intensional, thus junction) relation — here
	// we feed ground OWNS rows as the extensional sums of HOLDS, which is
	// how a relational deployment stores the materialized edges.
	str, flt := value.Str, value.FloatV
	ri := &RelationalInstance{Tables: map[string][]Row{}}
	for _, code := range []string{"IT1", "IT2", "IT3", "IT4"} {
		ri.Tables["Person"] = append(ri.Tables["Person"], Row{"fiscalCode": str(code)})
		ri.Tables["LegalPerson"] = append(ri.Tables["LegalPerson"], Row{
			"fiscalCode": str(code), "businessName": str("biz-" + code), "legalNature": str("spa"),
		})
		ri.Tables["Business"] = append(ri.Tables["Business"], Row{
			"fiscalCode": str(code), "shareholdingCapital": flt(1000),
		})
	}
	own := func(x, y string, w float64) Row {
		return Row{
			"fk_owns_src_fiscalCode": str(x),
			"fk_owns_dst_fiscalCode": str(y),
			"percentage":             flt(w),
		}
	}
	ri.Tables["OWNS"] = []Row{
		own("IT1", "IT2", 0.6),
		own("IT1", "IT3", 0.3),
		own("IT2", "IT3", 0.3),
		own("IT3", "IT4", 0.4),
	}

	res, err := Materialize(d, RelationalSource{Inst: ri}, sigma, 888, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loaded.Entities) != 4 {
		t.Fatalf("entities = %d, want 4 (table-per-class rows re-joined)", len(res.Loaded.Entities))
	}
	if len(res.Derived.NewEdges) != 6 {
		t.Errorf("derived CONTROLS edges = %d, want 6", len(res.Derived.NewEdges))
	}
	out := res.ExportPG()
	codes := map[pg.OID]string{}
	for _, n := range out.NodesByLabel("Business") {
		codes[n.ID] = n.Props["fiscalCode"].S
		if !n.HasLabel("Person") {
			t.Errorf("exported business must carry its ancestor labels")
		}
	}
	got := map[string]bool{}
	for _, e := range out.EdgesByLabel("CONTROLS") {
		got[codes[e.From]+"->"+codes[e.To]] = true
	}
	if !got["IT1->IT2"] || !got["IT1->IT3"] {
		t.Errorf("relational-source control edges = %v", got)
	}
}

// TestExample61InstanceCopy checks the intensional-property path: the
// numberOfStakeholders property materializes onto Business entities through
// the instance constructs.
func TestExample61InstanceCopy(t *testing.T) {
	s := supermodel.CompanyKG()
	d, err := NewDictionary(s)
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	person := g.AddNode([]string{"PhysicalPerson"}, pg.Props{
		"fiscalCode": value.Str("P1"), "name": value.Str("Ann"), "gender": value.Str("female"),
	}).ID
	share := g.AddNode([]string{"Share"}, pg.Props{
		"shareCode": value.Str("S1"), "percentage": value.FloatV(1.0),
	}).ID
	biz := g.AddNode([]string{"Business"}, pg.Props{
		"fiscalCode": value.Str("B1"), "shareholdingCapital": value.FloatV(10),
	}).ID
	g.MustAddEdge(person, share, "HOLDS", pg.Props{"right": value.Str("ownership"), "percentage": value.FloatV(1.0)})
	g.MustAddEdge(share, biz, "BELONGS_TO", nil)

	sigma := metalog.MustParse(`
		(p: Person) [: HOLDS] (s: Share) [: BELONGS_TO] (y: Business), c = count()
			-> (y: Business; numberOfStakeholders: c).
	`)
	res, err := Materialize(d, PGSource{Data: g}, sigma, 234, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Derived.UpdatedProps != 1 {
		t.Errorf("UpdatedProps = %d, want 1", res.Derived.UpdatedProps)
	}
	if _, err := res.ApplyToPG(g); err != nil {
		t.Fatal(err)
	}
	if got := g.Node(biz).Props["numberOfStakeholders"]; got.I != 1 {
		t.Errorf("numberOfStakeholders = %v", got)
	}
	// The I_SM_Attribute twin exists in the dictionary too (Example 6.1).
	found := false
	for _, ia := range d.Graph.NodesByLabel(LIAttr) {
		for _, e := range d.Graph.Out(ia.ID) {
			if e.Label == LRefs && d.Graph.Node(e.To).Props["name"].S == "numberOfStakeholders" {
				if ia.Props["value"].I == 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("numberOfStakeholders attribute twin missing in dictionary")
	}
}

// TestIntensionalNodeCreation: a Σ that derives new Family entities and
// BELONGS_TO_FAMILY edges.
func TestIntensionalNodeCreation(t *testing.T) {
	s := supermodel.CompanyKG()
	d, err := NewDictionary(s)
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	add := func(code, name string) pg.OID {
		return g.AddNode([]string{"PhysicalPerson"}, pg.Props{
			"fiscalCode": value.Str(code), "name": value.Str(name), "gender": value.Str("other"),
		}).ID
	}
	a := add("P1", "Rossi Mario")
	b := add("P2", "Rossi Luigi")
	c := add("P3", "Bianchi Anna")
	_ = a
	_ = b
	_ = c
	// One family per surname (first token of the name), linked via the
	// linker Skolem functor so that the same surname maps to one Family.
	sigma := metalog.MustParse(`
		(p: PhysicalPerson; name: n), f = concat(n)
			-> (#skFam(f): Family; familyName: f), (p) [e: BELONGS_TO_FAMILY] (#skFam(f): Family).
	`)
	res, err := Materialize(d, PGSource{Data: g}, sigma, 1, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct names -> three families here (no string splitting in
	// this toy Σ); what matters is entity creation and linking.
	if len(res.Derived.NewEntities) != 3 {
		t.Errorf("new Family entities = %d, want 3", len(res.Derived.NewEntities))
	}
	if len(res.Derived.NewEdges) != 3 {
		t.Errorf("BELONGS_TO_FAMILY edges = %d, want 3", len(res.Derived.NewEdges))
	}
	stats, err := res.ApplyToPG(g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesCreated != 3 {
		t.Errorf("nodes created in data graph = %d", stats.NodesCreated)
	}
	if n := len(g.NodesByLabel("Family")); n != 3 {
		t.Errorf("Family nodes = %d", n)
	}
}

func TestMostSpecificType(t *testing.T) {
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	typ, err := d.mostSpecificType([]string{"Person", "LegalPerson", "Business"})
	if err != nil || typ != "Business" {
		t.Errorf("mostSpecificType = %q, %v", typ, err)
	}
	if _, err := d.mostSpecificType([]string{"Unknown"}); err == nil {
		t.Error("unknown labels must fail")
	}
	if _, err := d.mostSpecificType([]string{"Business", "Place"}); err == nil {
		t.Error("ambiguous label sets must fail")
	}
}
