package instance

import (
	"strings"
	"testing"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

func newCompanyDict(t *testing.T) *Dictionary {
	t.Helper()
	d, err := NewDictionary(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadPGUnknownLabel(t *testing.T) {
	d := newCompanyDict(t)
	g := pg.New()
	g.AddNode([]string{"Martian"}, nil)
	if _, err := d.LoadPG(g, 1); err == nil || !strings.Contains(err.Error(), "no schema label") {
		t.Errorf("unknown label must fail, got %v", err)
	}
}

func TestLoadPGSkipsNonSchemaProps(t *testing.T) {
	d := newCompanyDict(t)
	g := pg.New()
	g.AddNode([]string{"Business"}, pg.Props{
		"fiscalCode": value.Str("B1"),
		"_internal":  value.Str("ignored"),
		"randomJunk": value.IntV(3),
	})
	loaded, err := d.LoadPG(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range loaded.Entities {
		if _, ok := ent.Attrs["randomJunk"]; ok {
			t.Error("non-schema property must not load")
		}
		if _, ok := ent.Attrs["fiscalCode"]; !ok {
			t.Error("schema property missing")
		}
	}
}

func TestLoadRelationalDanglingFK(t *testing.T) {
	d := newCompanyDict(t)
	ri := &RelationalInstance{Tables: map[string][]Row{
		"Person":   {{"fiscalCode": value.Str("A")}},
		"Business": {{"fiscalCode": value.Str("A"), "shareholdingCapital": value.FloatV(1)}},
		"OWNS": {{
			"fk_owns_src_fiscalCode": value.Str("A"),
			"fk_owns_dst_fiscalCode": value.Str("GHOST"),
			"percentage":             value.FloatV(0.5),
		}},
	}}
	if _, err := d.LoadRelational(ri, 1); err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Errorf("dangling FK must fail, got %v", err)
	}
}

func TestLoadRelationalMissingIdentifier(t *testing.T) {
	d := newCompanyDict(t)
	ri := &RelationalInstance{Tables: map[string][]Row{
		"Business": {{"shareholdingCapital": value.FloatV(1)}},
	}}
	if _, err := d.LoadRelational(ri, 1); err == nil || !strings.Contains(err.Error(), "identifier") {
		t.Errorf("row without identifier must fail, got %v", err)
	}
}

func TestMaterializeRejectsBadSigma(t *testing.T) {
	d := newCompanyDict(t)
	g := pg.New()
	// Σ that derives an edge type outside the schema fails at flush time
	// with a helpful error.
	sigma := metalog.MustParse(`(x: Business) -> (x) [e: TELEPORTS_TO] (x).`)
	g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("B")})
	_, err := Materialize(d, PGSource{Data: g}, sigma, 1, vadalog.Options{})
	if err == nil || !strings.Contains(err.Error(), "TELEPORTS_TO") {
		t.Errorf("off-schema derivation must fail mentioning the type, got %v", err)
	}
}

func TestIndexDictionaryMissingConstruct(t *testing.T) {
	// A dictionary holding a different schema cannot be indexed for this one.
	other := supermodel.NewSchema("other", 99)
	other.MustAddNode("X", false, supermodel.Attr("id", supermodel.String).ID())
	g := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(other, g); err != nil {
		t.Fatal(err)
	}
	if _, err := IndexDictionary(g, supermodel.CompanyKG()); err == nil {
		t.Error("indexing against the wrong dictionary must fail")
	}
}

func TestCatalogFromSchemaLayouts(t *testing.T) {
	cat := CatalogFromSchema(supermodel.CompanyKG())
	// Business exposes its effective attributes: own + inherited.
	props := cat.NodeProps["Business"]
	want := map[string]bool{"fiscalCode": true, "businessName": true, "shareholdingCapital": true}
	seen := map[string]bool{}
	for _, p := range props {
		seen[p] = true
	}
	for w := range want {
		if !seen[w] {
			t.Errorf("Business catalog missing %s: %v", w, props)
		}
	}
	if got := cat.EdgeProps["HOLDS"]; len(got) != 2 {
		t.Errorf("HOLDS catalog = %v", got)
	}
}
