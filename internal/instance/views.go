package instance

import (
	"fmt"
	"sort"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/sortedset"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// CatalogFromSchema derives the MetaLog catalog of a designed super-schema:
// each node label exposes its effective attributes (own plus inherited), and
// each edge label its own attributes. This is the schema-driven counterpart
// of metalog.FromGraph, used when the property layout comes from the design
// rather than from instance inference.
func CatalogFromSchema(s *supermodel.Schema) *metalog.Catalog {
	cat := metalog.NewCatalog()
	for _, n := range s.Nodes {
		var props []string
		for _, a := range s.EffectiveAttributes(n.Name) {
			props = append(props, a.Name)
		}
		cat.EnsureNode(n.Name, props...)
	}
	for _, e := range s.Edges {
		var props []string
		for _, a := range e.Attributes {
			props = append(props, a.Name)
		}
		cat.EnsureEdge(e.Name, props...)
	}
	return cat
}

// InputViews builds the V_I^Σ facts (Algorithm 2, line 5): for every node
// label, one fact per instance entity whose type is the label or a
// descendant of it — the generalization-aware reading of Example 6.2 — and
// for every edge label one fact per I_SM_Edge. Fact layouts follow the
// catalog; absent attributes hold the Missing marker.
func (l *Loaded) InputViews(cat *metalog.Catalog) (*vadalog.Database, error) {
	db := vadalog.NewDatabase()
	s := l.Dict.Schema

	ioids := make([]pg.OID, 0, len(l.Entities))
	for ioid := range l.Entities {
		ioids = append(ioids, ioid)
	}
	sortedset.Sort(ioids)

	for _, ioid := range ioids {
		ent := l.Entities[ioid]
		labels := append([]string{ent.Type}, s.Ancestors(ent.Type)...)
		for _, label := range labels {
			props := cat.NodeProps[label]
			f := make([]value.Value, 1+len(props))
			f[0] = value.IntV(int64(ioid))
			for i, p := range props {
				if v, ok := ent.Attrs[p]; ok {
					f[i+1] = v
				} else {
					f[i+1] = metalog.Missing
				}
			}
			if _, err := db.AddFact(label, f...); err != nil {
				return nil, err
			}
		}
	}

	// Edge facts from the instance constructs.
	g := l.Dict.Graph
	for _, ie := range g.NodesByLabel(LIEdge) {
		if io, ok := ie.Props["instanceOID"]; !ok || io.I != l.InstanceOID {
			continue
		}
		var typ string
		var from, to pg.OID
		attrs := map[string]value.Value{}
		for _, e := range g.Out(ie.ID) {
			switch e.Label {
			case LRefs:
				typ, _ = constructTypeName(g, e.To, supermodel.LHasEdgeType)
			case LIFrom:
				from = e.To
			case LITo:
				to = e.To
			case LIHasEAttr:
				ia := g.Node(e.To)
				for _, re := range g.Out(ia.ID) {
					if re.Label == LRefs {
						attrs[g.Node(re.To).Props["name"].S] = ia.Props["value"]
					}
				}
			}
		}
		if typ == "" || from == 0 || to == 0 {
			return nil, fmt.Errorf("instance: malformed I_SM_Edge %d", ie.ID)
		}
		props := cat.EdgeProps[typ]
		f := make([]value.Value, 3+len(props))
		f[0] = value.IntV(int64(ie.ID))
		f[1] = value.IntV(int64(from))
		f[2] = value.IntV(int64(to))
		for i, p := range props {
			if v, ok := attrs[p]; ok {
				f[i+3] = v
			} else {
				f[i+3] = metalog.Missing
			}
		}
		if _, err := db.AddFact(typ, f...); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// DerivedEdge is one intensional edge produced by the reasoning process.
type DerivedEdge struct {
	IOID  pg.OID
	Type  string
	From  pg.OID
	To    pg.OID
	Attrs map[string]value.Value
}

// Derived is the output of the flush phase: the derived components written
// back into the instance super-constructs (Algorithm 2, line 9).
type Derived struct {
	NewEntities  []*Entity
	NewEdges     []DerivedEdge
	UpdatedProps int
}

// Flush applies the V_O^Σ output views: derived node facts become new
// I_SM_Nodes (one per distinct Skolem identifier), derived edge facts become
// I_SM_Edges between resolved entities, and in-place updates set attribute
// values on existing entities.
func (l *Loaded) Flush(db *vadalog.Database, tr *metalog.Translation, cat *metalog.Catalog) (*Derived, error) {
	out := &Derived{}
	d := l.Dict
	idMap := map[string]pg.OID{}

	resolve := func(v value.Value, createType string) (pg.OID, error) {
		if oid, ok := v.AsInt(); ok {
			if _, ok := l.Entities[pg.OID(oid)]; !ok {
				return 0, fmt.Errorf("instance: derived fact references unknown entity %d", oid)
			}
			return pg.OID(oid), nil
		}
		key := v.Canonical()
		if oid, ok := idMap[key]; ok {
			return oid, nil
		}
		if createType == "" {
			return 0, fmt.Errorf("instance: derived edge endpoint %s does not correspond to any entity", v)
		}
		ioid, err := d.addInstanceNode(l.InstanceOID, createType, nil)
		if err != nil {
			return 0, err
		}
		ent := &Entity{IOID: ioid, Type: createType, Attrs: map[string]value.Value{}}
		l.Entities[ioid] = ent
		out.NewEntities = append(out.NewEntities, ent)
		idMap[key] = ioid
		return ioid, nil
	}

	// New or updated entities from derived node facts.
	for _, label := range sortedKeys(tr.HeadNodeLabels) {
		props := cat.NodeProps[label]
		for _, f := range db.SortedFacts(label) {
			ioid, err := resolve(f[0], label)
			if err != nil {
				return nil, err
			}
			ent := l.Entities[ioid]
			for i, p := range props {
				v := f[i+1]
				if v.IsZero() || value.Equal(v, metalog.Missing) {
					continue
				}
				if _, ok := d.attrConstruct(ent.Type, p); !ok {
					continue
				}
				if cur, ok := ent.Attrs[p]; !ok || !value.Equal(cur, v) {
					ent.Attrs[p] = v
					out.UpdatedProps++
					if err := d.setInstanceAttr(l.InstanceOID, ioid, ent.Type, p, v); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// In-place property updates (mtv_set_<Label> shadow predicates).
	for _, pred := range sortedKeys(boolKeys(tr.UpdateNodePreds)) {
		label := tr.UpdateNodePreds[pred]
		props := cat.NodeProps[label]
		for _, f := range db.SortedFacts(pred) {
			ioid, err := resolve(f[0], "")
			if err != nil {
				return nil, err
			}
			ent := l.Entities[ioid]
			for i, p := range props {
				v := f[i+1]
				if v.IsZero() || value.Equal(v, metalog.Missing) {
					continue
				}
				if cur, ok := ent.Attrs[p]; !ok || !value.Equal(cur, v) {
					ent.Attrs[p] = v
					out.UpdatedProps++
					if err := d.setInstanceAttr(l.InstanceOID, ioid, ent.Type, p, v); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Derived edges: only Skolem-identified facts are new derivations;
	// integer-identified facts are the input edges echoed through the views.
	for _, label := range sortedKeys(tr.HeadEdgeLabels) {
		props := cat.EdgeProps[label]
		for _, f := range db.SortedFacts(label) {
			if _, isInput := f[0].AsInt(); isInput {
				continue
			}
			from, err := resolve(f[1], "")
			if err != nil {
				return nil, err
			}
			to, err := resolve(f[2], "")
			if err != nil {
				return nil, err
			}
			attrs := map[string]value.Value{}
			for i, p := range props {
				v := f[i+3]
				if v.IsZero() || value.Equal(v, metalog.Missing) {
					continue
				}
				attrs[p] = v
			}
			ieOID, err := d.addInstanceEdge(l.InstanceOID, label, from, to, attrs)
			if err != nil {
				return nil, err
			}
			out.NewEdges = append(out.NewEdges, DerivedEdge{
				IOID: ieOID, Type: label, From: from, To: to, Attrs: attrs,
			})
			l.EdgeCount++
		}
	}
	return out, nil
}

// setInstanceAttr updates or creates the I_SM_Attribute twin for one
// attribute of an instance node.
func (d *Dictionary) setInstanceAttr(instOID int64, ioid pg.OID, nodeType, attr string, v value.Value) error {
	ac, ok := d.attrConstruct(nodeType, attr)
	if !ok {
		return fmt.Errorf("instance: node type %s has no attribute %q", nodeType, attr)
	}
	// Update in place if the twin exists.
	for _, e := range d.Graph.Out(ioid) {
		if e.Label != LIHasNAttr {
			continue
		}
		ia := d.Graph.Node(e.To)
		for _, re := range d.Graph.Out(ia.ID) {
			if re.Label == LRefs && re.To == ac {
				// Through SetNodeProp, not a direct map write: Materialize
				// flushes under a savepoint, and only journaled writes roll
				// back (pg/snapshot.go).
				return d.Graph.SetNodeProp(ia.ID, "value", v)
			}
		}
	}
	ia := d.Graph.AddNode([]string{LIAttr}, pg.Props{
		"instanceOID": value.IntV(instOID),
		"value":       v,
	})
	d.Graph.MustAddEdge(ioid, ia.ID, LIHasNAttr, nil)
	d.Graph.MustAddEdge(ia.ID, ac, LRefs, nil)
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func boolKeys(m map[string]string) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
