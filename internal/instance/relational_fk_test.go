package instance

import (
	"testing"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// fkSchema exercises both foreign-key directions of the relational loader:
// ASSIGNED_TO is source-functional (the FK sits on the From relation) and
// MAKES is target-functional (the FK sits on the To relation).
func fkSchema(t *testing.T) *supermodel.Schema {
	t.Helper()
	s := supermodel.NewSchema("fk", 11)
	s.MustAddNode("Worker", false, supermodel.Attr("badge", supermodel.String).ID())
	s.MustAddNode("Team", false, supermodel.Attr("teamId", supermodel.String).ID())
	s.MustAddNode("Product", false, supermodel.Attr("sku", supermodel.String).ID())
	// Each worker belongs to at most one team: FK on Worker.
	s.MustAddEdge("ASSIGNED_TO", false, "Worker", "Team", supermodel.ZeroToOne, supermodel.ZeroToMany,
		supermodel.Attr("since", supermodel.String))
	// Each product is made by exactly one team: FK on Product.
	s.MustAddEdge("MAKES", false, "Team", "Product", supermodel.ZeroToMany, supermodel.ExactlyOne)
	// An intensional result to materialize.
	s.MustAddEdge("WORKS_ON", true, "Worker", "Product", supermodel.ZeroToMany, supermodel.ZeroToMany)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadRelationalBothFKDirections(t *testing.T) {
	s := fkSchema(t)
	d, err := NewDictionary(s)
	if err != nil {
		t.Fatal(err)
	}
	str := value.Str
	ri := &RelationalInstance{Tables: map[string][]Row{
		"Worker": {
			// FK columns follow the DDL emitter naming: <fkname>_<idfield>.
			{"badge": str("w1"), "assigned_to_teamId": str("t1"), "since": str("2020-01-01")},
			{"badge": str("w2")}, // optional participation: no FK columns
		},
		"Team": {
			{"teamId": str("t1")},
		},
		"Product": {
			{"sku": str("p1"), "makes_teamId": str("t1")},
		},
	}}
	loaded, err := d.LoadRelational(ri, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entities) != 4 {
		t.Fatalf("entities = %d", len(loaded.Entities))
	}
	if loaded.EdgeCount != 2 {
		t.Fatalf("edges = %d, want ASSIGNED_TO + MAKES", loaded.EdgeCount)
	}

	// The views expose the edges with the schema's orientation: ASSIGNED_TO
	// Worker->Team and MAKES Team->Product, regardless of which relation
	// held the FK.
	cat := CatalogFromSchema(s)
	db, err := loaded.InputViews(cat)
	if err != nil {
		t.Fatal(err)
	}
	typeOf := func(ioid int64) string { return loaded.Entities[pg.OID(ioid)].Type }
	for _, f := range db.Facts("ASSIGNED_TO") {
		if typeOf(f[1].I) != "Worker" || typeOf(f[2].I) != "Team" {
			t.Errorf("ASSIGNED_TO orientation wrong: %s -> %s", typeOf(f[1].I), typeOf(f[2].I))
		}
	}
	for _, f := range db.Facts("MAKES") {
		if typeOf(f[1].I) != "Team" || typeOf(f[2].I) != "Product" {
			t.Errorf("MAKES orientation wrong: %s -> %s", typeOf(f[1].I), typeOf(f[2].I))
		}
	}

	// The edge attribute survived on the FK-shaped edge.
	found := false
	for _, f := range db.Facts("ASSIGNED_TO") {
		for _, v := range f[3:] {
			if v.K == value.String && v.S == "2020-01-01" {
				found = true
			}
		}
	}
	if !found {
		t.Error("ASSIGNED_TO 'since' attribute lost in loading")
	}

	// End to end: materialize an intensional join through both edges.
	sigma := metalog.MustParse(`
		(w: Worker) [: ASSIGNED_TO] (t: Team) [: MAKES] (p: Product)
			-> (w) [e: WORKS_ON] (p).
	`)
	res, err := Materialize(d, RelationalSource{Inst: ri}, sigma, 4, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived.NewEdges) != 1 {
		t.Errorf("WORKS_ON edges = %d, want 1 (w1 only; w2 has no team)", len(res.Derived.NewEdges))
	}
}
