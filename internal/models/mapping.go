package models

import (
	"fmt"
	"strings"
)

// Mapping is one entry of the KGModel mapping repository: the MetaLog
// programs implementing the translation of a super-schema into a schema of a
// target model (Section 5.1). Eliminate rewrites the source super-schema
// (SourceOID) into the intermediate super-schema S⁻ (MidOID) using only
// constructs the target model supports; Copy downcasts S⁻ into the target
// schema S′ (TargetOID) by renaming super-constructs into model constructs.
type Mapping struct {
	Model       string
	Strategy    string
	Description string

	SourceOID, MidOID, TargetOID int64

	Eliminate string // MetaLog source
	Copy      string // MetaLog source
}

// Repo returns the candidate mappings of the repository for the given OIDs
// (Algorithm 1, line 1: "select candidate mappings to M from REPO").
func Repo(src, mid, dst int64) []Mapping {
	return []Mapping{
		PGMapping(src, mid, dst, "multi-label"),
		PGMapping(src, mid, dst, "child-edges"),
		RelationalMapping(src, mid, dst, "table-per-class"),
	}
}

// SelectMapping picks a mapping from the repository by model and
// implementation strategy (Algorithm 1, line 2: the engineer "refines the
// choice on the basis of the desired implementation strategy"). An empty
// strategy selects the model's first (default) entry.
func SelectMapping(src, mid, dst int64, model, strategy string) (Mapping, error) {
	var candidates []Mapping
	for _, m := range Repo(src, mid, dst) {
		if m.Model == model {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return Mapping{}, fmt.Errorf("models: no mapping for model %q in repository", model)
	}
	if strategy == "" {
		return candidates[0], nil
	}
	for _, m := range candidates {
		if m.Strategy == strategy {
			return m, nil
		}
	}
	var known []string
	for _, m := range candidates {
		known = append(known, m.Strategy)
	}
	return Mapping{}, fmt.Errorf("models: model %q has no strategy %q (have %s)", model, strategy, strings.Join(known, ", "))
}

// modifierKinds are the attribute-modifier super-constructs whose copy rules
// are generated per kind (MetaLog atoms are label-specific).
var modifierKinds = []string{
	"SM_UniqueAttributeModifier",
	"SM_EnumAttributeModifier",
	"SM_RangeAttributeModifier",
	"SM_DefaultAttributeModifier",
}

// PGMapping builds M(PG), the mapping to the property-graph model of
// Section 5.2. Two implementation strategies are offered, as discussed in
// the paper (Algorithm 1): "multi-label", where generalizations are
// eliminated by tagging nodes with every ancestor type and inheriting
// attributes and edges down the hierarchy, and "child-edges", where each
// generalization becomes an explicit IS_A relationship.
func PGMapping(src, mid, dst int64, strategy string) Mapping {
	m := Mapping{
		Model:     "pg",
		Strategy:  strategy,
		SourceOID: src, MidOID: mid, TargetOID: dst,
	}
	switch strategy {
	case "child-edges":
		m.Description = "generalizations become IS_A relationships"
		m.Eliminate = pgEliminateChildEdges(src, mid)
	default:
		m.Strategy = "multi-label"
		m.Description = "generalizations eliminated via multi-label tagging and inheritance"
		m.Eliminate = pgEliminateMultiLabel(src, mid)
	}
	m.Copy = pgCopy(mid, dst)
	return m
}

// pgEliminateMultiLabel implements Eliminate.CopyNodes, Eliminate.CopyEdges,
// Eliminate.CopyAttributes and Eliminate.DeleteGeneralizations(1)-(4) of
// Section 5.2. Rule numbering follows the paper; the ancestor traversal uses
// the ([:SM_CHILD]- . [:SM_PARENT]) pattern of Example 5.1, with "*"
// covering the node itself and "+" proper ancestors/descendants.
func pgEliminateMultiLabel(src, mid int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
%% Eliminate.CopyNodes — SM_Nodes of S are copied into new SM_Nodes of S-.
(n: SM_Node; schemaOID: %[1]d, isIntensional: i)
  -> (#elimN(n): SM_Node; schemaOID: %[2]d, isIntensional: i).

%% Eliminate.DeleteGeneralizations(1) — each node accumulates its own type
%% and the types of all its ancestors (Example 5.1).
(n: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])* (a: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#elimN(n)) [#elimHT(n, t): SM_HAS_NODE_TYPE]
     (#elimT(n, t): SM_Type; schemaOID: %[2]d, name: w).

%% Eliminate.DeleteGeneralizations(2) — attributes are inherited down to
%% every descendant (c ranges over the node itself and its descendants).
(n: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d),
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])* (n)
  -> (#elimN(c)) [#elimHP(a, c): SM_HAS_NODE_PROPERTY; isIntensional: ii]
     (#elimA(a, c): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Eliminate.DeleteGeneralizations(3) — outgoing edges are inherited by
%% every descendant of the source (including the source itself: the c = n
%% case is the plain Eliminate.CopyEdges copy).
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])* (n: SM_Node; schemaOID: %[1]d)
    [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2)
    [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#elimEO(e, c): SM_Edge; schemaOID: %[2]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2),
     (#elimEO(e, c)) [#elimEOF(e, c): SM_FROM] (#elimN(c)),
     (#elimEO(e, c)) [#elimEOT(e, c): SM_TO] (#elimN(m)),
     (#elimEO(e, c)) [#elimEOHT(e, c): SM_HAS_EDGE_TYPE] (#elimEOTY(e, c): SM_Type; schemaOID: %[2]d, name: w).

%% Eliminate.DeleteGeneralizations(3') — incoming edges are inherited by
%% every proper descendant of the target.
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])+ (n: SM_Node; schemaOID: %[1]d)
    [: SM_TO]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2)
    [: SM_FROM] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#elimEI(e, c): SM_Edge; schemaOID: %[2]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2),
     (#elimEI(e, c)) [#elimEIF(e, c): SM_FROM] (#elimN(m)),
     (#elimEI(e, c)) [#elimEIT(e, c): SM_TO] (#elimN(c)),
     (#elimEI(e, c)) [#elimEIHT(e, c): SM_HAS_EDGE_TYPE] (#elimEITY(e, c): SM_Type; schemaOID: %[2]d, name: w).

%% Eliminate.DeleteGeneralizations(4) — the SM_Attributes of an inherited
%% edge are copied and linked to each new edge (outgoing and incoming
%% variants).
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])* (n: SM_Node; schemaOID: %[1]d)
    [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d)
    [: SM_HAS_EDGE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d)
  -> (#elimEO(e, c)) [#elimEOHP(a, c): SM_HAS_EDGE_PROPERTY; isIntensional: ii]
     (#elimEOA(a, c): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])+ (n: SM_Node; schemaOID: %[1]d)
    [: SM_TO]- (e: SM_Edge; schemaOID: %[1]d)
    [: SM_HAS_EDGE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d)
  -> (#elimEI(e, c)) [#elimEIHP(a, c): SM_HAS_EDGE_PROPERTY; isIntensional: ii]
     (#elimEIA(a, c): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).
`, src, mid)

	// Eliminate.CopyUniqueAttributeModifier (and the other modifier kinds):
	// node-attribute modifiers follow their attribute down the hierarchy.
	for _, kind := range modifierKinds {
		fmt.Fprintf(&b, `
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d)
    [: SM_HAS_MODIFIER] (m: %[3]s; schemaOID: %[1]d, payload: p),
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])* (n)
  -> (#elimA(a, c)) [#elimHM(m, c): SM_HAS_MODIFIER] (#elimM(m, c): %[3]s; schemaOID: %[2]d, payload: p).
`, src, mid, kind)
	}
	return b.String()
}

// pgEliminateChildEdges is the alternative implementation strategy: nodes,
// types, attributes and edges are copied as-is, and every generalization
// becomes an explicit IS_A SM_Edge from child to parent.
func pgEliminateChildEdges(src, mid int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
%% Eliminate.CopyNodes and own types only (no inheritance).
(n: SM_Node; schemaOID: %[1]d, isIntensional: i)
  -> (#elimN(n): SM_Node; schemaOID: %[2]d, isIntensional: i).

(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#elimN(n)) [#elimHT(n, t): SM_HAS_NODE_TYPE] (#elimT(n, t): SM_Type; schemaOID: %[2]d, name: w).

%% Eliminate.CopyAttributes (own attributes only).
(n: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d)
  -> (#elimN(n)) [#elimHP(a, n): SM_HAS_NODE_PROPERTY; isIntensional: ii]
     (#elimA(a, n): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Eliminate.CopyEdges (as declared, no inheritance).
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#elimE(e): SM_Edge; schemaOID: %[2]d, isIntensional: i, isOpt1: o1, isFun1: f1, isOpt2: o2, isFun2: f2),
     (#elimE(e)) [#elimEF(e): SM_FROM] (#elimN(n)),
     (#elimE(e)) [#elimET(e): SM_TO] (#elimN(m)),
     (#elimE(e)) [#elimEHT(e): SM_HAS_EDGE_TYPE] (#elimETY(e): SM_Type; schemaOID: %[2]d, name: w).

(e: SM_Edge; schemaOID: %[1]d)
    [: SM_HAS_EDGE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d)
  -> (#elimE(e)) [#elimEHP(a): SM_HAS_EDGE_PROPERTY; isIntensional: ii]
     (#elimEA(a): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Eliminate.DeleteGeneralizations — each (parent, child) pair becomes an
%% IS_A SM_Edge from the child copy to the parent copy.
(g: SM_Generalization; schemaOID: %[1]d) [: SM_PARENT] (p: SM_Node; schemaOID: %[1]d),
(g) [: SM_CHILD] (c: SM_Node; schemaOID: %[1]d),
(c) [: SM_HAS_NODE_TYPE] (ct: SM_Type; schemaOID: %[1]d, name: cn),
(p) [: SM_HAS_NODE_TYPE] (pt: SM_Type; schemaOID: %[1]d, name: pn),
nm = concat("IS_A_", cn, "_", pn)
  -> (#elimISA(g, c): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (#elimISA(g, c)) [#elimISAF(g, c): SM_FROM] (#elimN(c)),
     (#elimISA(g, c)) [#elimISAT(g, c): SM_TO] (#elimN(p)),
     (#elimISA(g, c)) [#elimISAHT(g, c): SM_HAS_EDGE_TYPE] (#elimISATY(g, c): SM_Type; schemaOID: %[2]d, name: nm).
`, src, mid)
	for _, kind := range modifierKinds {
		fmt.Fprintf(&b, `
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d)
    [: SM_HAS_MODIFIER] (m: %[3]s; schemaOID: %[1]d, payload: p)
  -> (#elimA(a, n)) [#elimHM(m, n): SM_HAS_MODIFIER] (#elimM(m, n): %[3]s; schemaOID: %[2]d, payload: p).
`, src, mid, kind)
	}
	return b.String()
}

// pgCopy implements the Copy phase of M(PG): StoreNodes,
// StoreRelationships, StoreProperties and StoreUniquePropertyModifiers
// (Section 5.2), downcasting S⁻ super-constructs into the Figure 5 model
// constructs. Modifiers other than uniqueness are not supported by the PG
// model and are therefore dropped here — the "elimination of constructs of
// the super-model that are not supported by the specific target model".
func pgCopy(mid, dst int64) string {
	return fmt.Sprintf(`
%% Copy.StoreNodes.
(n: SM_Node; schemaOID: %[1]d, isIntensional: i)
  -> (#copyN(n): Node; schemaOID: %[2]d, isIntensional: i).

%% Copy.StoreNodes — label tags.
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_TYPE] (t: SM_Type; name: w)
  -> (#copyN(n)) [#copyHL(t): HAS_LABEL] (#copyL(t): Label; schemaOID: %[2]d, name: w).

%% Copy.StoreRelationships.
(e: SM_Edge; schemaOID: %[1]d, isIntensional: i) [: SM_HAS_EDGE_TYPE] (t: SM_Type; name: w)
  -> (#copyR(e): Relationship; schemaOID: %[2]d, isIntensional: i, name: w).

(e: SM_Edge; schemaOID: %[1]d) [: SM_FROM] (n)
  -> (#copyR(e)) [#copyRF(e): R_FROM] (#copyN(n)).

(e: SM_Edge; schemaOID: %[1]d) [: SM_TO] (n)
  -> (#copyR(e)) [#copyRT(e): R_TO] (#copyN(n)).

%% Copy.StoreProperties (node and relationship properties).
(n: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; name: an, dataType: dt, isOpt: o, isId: d)
  -> (#copyN(n)) [#copyHP(a): HAS_PROPERTY; isIntensional: ii]
     (#copyP(a): Property; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

(e: SM_Edge; schemaOID: %[1]d)
    [: SM_HAS_EDGE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; name: an, dataType: dt, isOpt: o, isId: d)
  -> (#copyR(e)) [#copyRHP(a): R_HAS_PROPERTY; isIntensional: ii]
     (#copyRP(a): Property; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Copy.StoreUniquePropertyModifiers — the only modifier the PG model
%% supports.
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute)
    [: SM_HAS_MODIFIER] (m: SM_UniqueAttributeModifier; payload: p)
  -> (#copyP(a)) [#copyHM(m): HAS_MODIFIER] (#copyM(m): UniquePropertyModifier; schemaOID: %[2]d, payload: p).
`, mid, dst)
}

// RelationalMapping builds M(relational) of Section 5.3 with the
// table-per-class strategy the paper adopts: "a relation for each
// generalization member, connecting each child relation to the respective
// parent relation via foreign keys". Many-to-many edges are replaced by
// junction predicates with two foreign keys; functional edges become
// foreign keys directly; identifying attributes are inherited down so every
// child relation carries its primary key.
func RelationalMapping(src, mid, dst int64, strategy string) Mapping {
	return Mapping{
		Model:       "relational",
		Strategy:    "table-per-class",
		Description: "generalizations as child-to-parent foreign keys; N:M edges as junction relations",
		SourceOID:   src, MidOID: mid, TargetOID: dst,
		Eliminate: relationalEliminate(src, mid),
		Copy:      relationalCopy(mid, dst),
	}
}

func relationalEliminate(src, mid int64) string {
	return fmt.Sprintf(`
%% Eliminate.CopyNodes.
(n: SM_Node; schemaOID: %[1]d, isIntensional: i)
  -> (#relN(n): SM_Node; schemaOID: %[2]d, isIntensional: i).

%% Eliminate.CopyTypes.
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#relN(n)) [#relHT(n, t): SM_HAS_NODE_TYPE] (#relT(t): SM_Type; schemaOID: %[2]d, name: w).

%% Eliminate.CopyNodeAttributes.
(n: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o, isId: d)
  -> (#relN(n)) [#relHP(a, n): SM_HAS_NODE_PROPERTY; isIntensional: ii]
     (#relA(a, n): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Identifier inheritance — every descendant relation carries the
%% identifying attributes of its ancestors (they are both its primary key
%% and the source fields of the IS-A foreign key).
(n: SM_Node; schemaOID: %[1]d) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true),
(c: SM_Node; schemaOID: %[1]d) ([: SM_CHILD]- . [: SM_PARENT])+ (n)
  -> (#relN(c)) [#relHPI(a, c): SM_HAS_NODE_PROPERTY] (#relAI(a, c): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: true).

%% Eliminate.DeleteGeneralizations — table-per-class: an IS-A foreign-key
%% edge from each child to its parent, carrying the parent identifier as
%% source fields.
(g: SM_Generalization; schemaOID: %[1]d) [: SM_PARENT] (p: SM_Node; schemaOID: %[1]d),
(g) [: SM_CHILD] (c: SM_Node; schemaOID: %[1]d),
(c) [: SM_HAS_NODE_TYPE] (ct: SM_Type; schemaOID: %[1]d, name: cn),
(p) [: SM_HAS_NODE_TYPE] (pt: SM_Type; schemaOID: %[1]d, name: pn),
nm = concat("FK_ISA_", cn, "_", pn)
  -> (#relISA(g, c): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (#relISA(g, c)) [#relISAF(g, c): SM_FROM] (#relN(c)),
     (#relISA(g, c)) [#relISAT(g, c): SM_TO] (#relN(p)),
     (#relISA(g, c)) [#relISAHT(g, c): SM_HAS_EDGE_TYPE] (#relISATY(g, c): SM_Type; schemaOID: %[2]d, name: nm).

(g: SM_Generalization; schemaOID: %[1]d) [: SM_PARENT] (p: SM_Node; schemaOID: %[1]d),
(g) [: SM_CHILD] (c: SM_Node; schemaOID: %[1]d),
(p) ([: SM_CHILD]- . [: SM_PARENT])* (anc: SM_Node; schemaOID: %[1]d),
(anc) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true)
  -> (#relISA(g, c)) [#relISAHP(a, g, c): SM_HAS_EDGE_PROPERTY] (#relISAA(a, g, c): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).

%% Eliminate.CopyOneToManyEdges — functional edges become foreign keys.
%% Source-functional: the foreign key sits on the source relation and its
%% fields reference the target identifier.
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: true, isOpt1: o1) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#relFK(e): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: o1, isFun1: true, isOpt2: true, isFun2: false),
     (#relFK(e)) [#relFKF(e): SM_FROM] (#relN(n)),
     (#relFK(e)) [#relFKT(e): SM_TO] (#relN(m)),
     (#relFK(e)) [#relFKHT(e): SM_HAS_EDGE_TYPE] (#relFKTY(e): SM_Type; schemaOID: %[2]d, name: w).

(e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: true) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(m) ([: SM_CHILD]- . [: SM_PARENT])* (anc: SM_Node; schemaOID: %[1]d),
(anc) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true)
  -> (#relFK(e)) [#relFKHP(a, e): SM_HAS_EDGE_PROPERTY] (#relFKA(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).

%% The SM_Attributes of a functional edge are copied to the source node
%% (they become columns of the relation holding the foreign key).
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: true)
    [: SM_HAS_EDGE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o)
  -> (#relN(n)) [#relEHP(a, e): SM_HAS_NODE_PROPERTY] (#relEA(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: false).

%% Target-functional edges are handled symmetrically: the foreign key sits
%% on the target relation.
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: false, isFun2: true, isOpt2: o2) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w)
  -> (#relFK2(e): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: o2, isFun1: true, isOpt2: true, isFun2: false),
     (#relFK2(e)) [#relFK2F(e): SM_FROM] (#relN(m)),
     (#relFK2(e)) [#relFK2T(e): SM_TO] (#relN(n)),
     (#relFK2(e)) [#relFK2HT(e): SM_HAS_EDGE_TYPE] (#relFK2TY(e): SM_Type; schemaOID: %[2]d, name: w).

(e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: false, isFun2: true) [: SM_FROM] (n: SM_Node; schemaOID: %[1]d),
(n) ([: SM_CHILD]- . [: SM_PARENT])* (anc: SM_Node; schemaOID: %[1]d),
(anc) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true)
  -> (#relFK2(e)) [#relFK2HP(a, e): SM_HAS_EDGE_PROPERTY] (#relFK2A(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).

(m: SM_Node; schemaOID: %[1]d) [: SM_TO]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: false, isFun1: false, isFun2: true)
    [: SM_HAS_EDGE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o)
  -> (#relN(m)) [#relEHP2(a, e): SM_HAS_NODE_PROPERTY] (#relEA2(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: false).

%% Eliminate.DeleteManyToManyEdges(1) — a junction SM_Node per N:M edge,
%% typed with the edge's type and carrying the edge's attributes. Intensional
%% edges stay edge-shaped conceptually, but the relational model has no edge
%% construct, so they are translated the same way with their intensional flag
%% preserved on the junction node.
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isFun1: f1, isFun2: f2) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w),
(i = true) or (f1 = false and f2 = false)
  -> (#relJ(e): SM_Node; schemaOID: %[2]d, isIntensional: i),
     (#relJ(e)) [#relJHT(e): SM_HAS_NODE_TYPE] (#relJTY(e): SM_Type; schemaOID: %[2]d, name: w).

(e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isFun1: f1, isFun2: f2)
    [: SM_HAS_EDGE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isOpt: o),
(i = true) or (f1 = false and f2 = false)
  -> (#relJ(e)) [#relJHP(a, e): SM_HAS_NODE_PROPERTY; isIntensional: ii]
     (#relJA(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: false).

%% Eliminate.DeleteManyToManyEdges(2)/(3) — the two foreign keys from the
%% junction to the endpoint relations, with the endpoint identifiers as
%% source fields.
(n: SM_Node; schemaOID: %[1]d) [: SM_FROM]- (e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isFun1: f1, isFun2: f2) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(e) [: SM_HAS_EDGE_TYPE] (t: SM_Type; schemaOID: %[1]d, name: w),
(i = true) or (f1 = false and f2 = false),
fn = concat("FK_", w, "_SRC"), tn = concat("FK_", w, "_DST")
  -> (#relJFKS(e): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (#relJFKS(e)) [#relJFKSF(e): SM_FROM] (#relJ(e)),
     (#relJFKS(e)) [#relJFKST(e): SM_TO] (#relN(n)),
     (#relJFKS(e)) [#relJFKSHT(e): SM_HAS_EDGE_TYPE] (#relJFKSTY(e): SM_Type; schemaOID: %[2]d, name: fn),
     (#relJFKD(e): SM_Edge; schemaOID: %[2]d, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (#relJFKD(e)) [#relJFKDF(e): SM_FROM] (#relJ(e)),
     (#relJFKD(e)) [#relJFKDT(e): SM_TO] (#relN(m)),
     (#relJFKD(e)) [#relJFKDHT(e): SM_HAS_EDGE_TYPE] (#relJFKDTY(e): SM_Type; schemaOID: %[2]d, name: tn).

(e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isFun1: f1, isFun2: f2) [: SM_FROM] (n: SM_Node; schemaOID: %[1]d),
(i = true) or (f1 = false and f2 = false),
(n) ([: SM_CHILD]- . [: SM_PARENT])* (anc: SM_Node; schemaOID: %[1]d),
(anc) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true)
  -> (#relJFKS(e)) [#relJFKSHP(a, e): SM_HAS_EDGE_PROPERTY] (#relJFKSA(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).

(e: SM_Edge; schemaOID: %[1]d, isIntensional: i, isFun1: f1, isFun2: f2) [: SM_TO] (m: SM_Node; schemaOID: %[1]d),
(i = true) or (f1 = false and f2 = false),
(m) ([: SM_CHILD]- . [: SM_PARENT])* (anc: SM_Node; schemaOID: %[1]d),
(anc) [: SM_HAS_NODE_PROPERTY] (a: SM_Attribute; schemaOID: %[1]d, name: an, dataType: dt, isId: true)
  -> (#relJFKD(e)) [#relJFKDHP(a, e): SM_HAS_EDGE_PROPERTY] (#relJFKDA(a, e): SM_Attribute; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).
`, src, mid)
}

// relationalCopy implements the Copy phase of M(relational):
// StorePredicatesAndRelations, StoreNodeAttributes and
// StoreOneToManyEdges (Section 5.3), downcasting S⁻ into the Figure 7
// constructs.
func relationalCopy(mid, dst int64) string {
	return fmt.Sprintf(`
%% Copy.StorePredicatesAndRelations.
(n: SM_Node; schemaOID: %[1]d, isIntensional: i) [: SM_HAS_NODE_TYPE] (t: SM_Type; name: w)
  -> (#copyPred(n): Predicate; schemaOID: %[2]d, isIntensional: i),
     (#copyPred(n)) [#copyHR(n, t): HAS_RELATION] (#copyRel(n, t): Relation; schemaOID: %[2]d, name: w).

%% Copy.StoreNodeAttributes.
(n: SM_Node; schemaOID: %[1]d)
    [: SM_HAS_NODE_PROPERTY; isIntensional: ii]
    (a: SM_Attribute; name: an, dataType: dt, isOpt: o, isId: d)
  -> (#copyPred(n)) [#copyHF(a): HAS_FIELD; isIntensional: ii]
     (#copyF(a): Field; schemaOID: %[2]d, name: an, dataType: dt, isOpt: o, isId: d).

%% Copy.StoreOneToManyEdges — every surviving SM_Edge is FK-shaped.
(e: SM_Edge; schemaOID: %[1]d) [: SM_HAS_EDGE_TYPE] (t: SM_Type; name: w),
(e) [: SM_FROM] (n), (e) [: SM_TO] (m)
  -> (#copyFK(e): ForeignKey; schemaOID: %[2]d, name: w),
     (#copyFK(e)) [#copyFKF(e): FK_FROM] (#copyPred(n)),
     (#copyFK(e)) [#copyFKT(e): FK_TO] (#copyPred(m)).

(e: SM_Edge; schemaOID: %[1]d)
    [: SM_HAS_EDGE_PROPERTY]
    (a: SM_Attribute; name: an, dataType: dt)
  -> (#copyFK(e)) [#copyHSF(a): HAS_SOURCE_FIELD] (#copySF(a): Field; schemaOID: %[2]d, name: an, dataType: dt, isOpt: false, isId: false).
`, mid, dst)
}
