package models

import (
	"fmt"
	"strings"
)

// Diagram renderers for translated schemas: the paper presents the
// translation results as diagrams (Figure 6 for the PG model, Figure 8 for
// the relational model); these emit the equivalent Graphviz DOT.

// RenderPGViewDOT renders a translated property-graph schema in the style
// of Figure 6: one box per node type listing its label set and properties,
// one arrow per relationship type (dashed when intensional).
func RenderPGViewDOT(v *PGSchemaView) string {
	var b strings.Builder
	b.WriteString("digraph \"pg-schema\" {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=record fontsize=9 fontname=\"Helvetica\"];\n  edge [fontsize=8 fontname=\"Helvetica\"];\n")
	id := func(labels []string) string { return strings.Join(labels, ":") }
	for _, n := range v.Nodes {
		var props []string
		for _, p := range n.Properties {
			marker := ""
			if p.IsID {
				marker = " *"
			} else if p.IsOpt {
				marker = " ?"
			}
			if p.IsIntensional {
				marker += " ~"
			}
			props = append(props, p.Name+": "+p.DataType+marker)
		}
		style := "solid"
		if n.IsIntensional {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q [style=%s label=\"{%s|%s}\"];\n",
			id(n.Labels), style, strings.Join(n.Labels, "\\n:"), strings.Join(props, "\\l"))
	}
	for _, r := range v.Rels {
		style := "solid"
		if r.IsIntensional {
			style = "dashed"
		}
		var props []string
		for _, p := range r.Properties {
			props = append(props, p.Name)
		}
		label := r.Name
		if len(props) > 0 {
			label += "\\n{" + strings.Join(props, ", ") + "}"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s label=\"%s\"];\n",
			id(r.FromLabels), id(r.ToLabels), style, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// RenderRelationalViewDOT renders a translated relational schema in the
// style of Figure 8: one record per relation listing its fields (keys
// starred), one arrow per foreign key labeled with its source fields.
func RenderRelationalViewDOT(v *RelationalSchemaView) string {
	var b strings.Builder
	b.WriteString("digraph \"relational-schema\" {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=record fontsize=9 fontname=\"Helvetica\"];\n  edge [fontsize=8 fontname=\"Helvetica\"];\n")
	for _, r := range v.Relations {
		var fields []string
		for _, f := range r.Fields {
			marker := ""
			if f.IsID {
				marker = " *"
			} else if f.IsOpt {
				marker = " ?"
			}
			fields = append(fields, f.Name+": "+f.DataType+marker)
		}
		style := "solid"
		if r.IsIntensional {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q [style=%s label=\"{%s|%s}\"];\n",
			r.Name, style, r.Name, strings.Join(fields, "\\l"))
	}
	for _, r := range v.Relations {
		for _, fk := range r.ForeignKeys {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%s\\n(%s)\"];\n",
				r.Name, fk.TargetRelation, fk.Name, strings.Join(fk.SourceFields, ", "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
