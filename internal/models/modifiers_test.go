package models

import (
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

func modifierSchema(t *testing.T) *supermodel.Schema {
	t.Helper()
	s := supermodel.NewSchema("mods", 5)
	s.MustAddNode("Share", false,
		supermodel.Attr("code", supermodel.String).ID(),
		supermodel.Attr("percentage", supermodel.Float).With(supermodel.RangeModifier{Min: 0, Max: 1}),
		supermodel.Attr("right", supermodel.String).With(supermodel.EnumModifier{Values: []string{"ownership", "usufruct"}}),
		supermodel.Attr("currency", supermodel.String).Opt().With(supermodel.DefaultModifier{Value: "EUR"}),
	)
	return s
}

func TestValidateModifiers(t *testing.T) {
	s := modifierSchema(t)
	g := pg.New()
	g.AddNode([]string{"Share"}, pg.Props{
		"code": value.Str("ok"), "percentage": value.FloatV(0.4), "right": value.Str("ownership"),
	})
	g.AddNode([]string{"Share"}, pg.Props{
		"code": value.Str("bad1"), "percentage": value.FloatV(1.4), "right": value.Str("ownership"),
	})
	g.AddNode([]string{"Share"}, pg.Props{
		"code": value.Str("bad2"), "percentage": value.FloatV(0.2), "right": value.Str("theft"),
	})
	got := ValidateModifiers(g, s)
	if len(got) != 2 {
		t.Fatalf("violations = %v", got)
	}
	if !strings.Contains(got[0].Detail, "outside range") {
		t.Errorf("first violation = %v", got[0])
	}
	if !strings.Contains(got[1].Detail, "not in enum") {
		t.Errorf("second violation = %v", got[1])
	}
}

func TestValidateModifiersInheritedAttributes(t *testing.T) {
	// Modifiers on parent attributes apply to child-typed nodes.
	s := supermodel.NewSchema("inh", 6)
	s.MustAddNode("Person", false,
		supermodel.Attr("code", supermodel.String).ID(),
		supermodel.Attr("gender", supermodel.String).With(supermodel.EnumModifier{Values: []string{"female", "male", "other"}}),
	)
	s.MustAddNode("Employee", false)
	s.MustAddGeneralization("", "Person", []string{"Employee"}, false, true)
	g := pg.New()
	g.AddNode([]string{"Employee", "Person"}, pg.Props{
		"code": value.Str("e1"), "gender": value.Str("robot"),
	})
	got := ValidateModifiers(g, s)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "not in enum") {
		t.Errorf("inherited modifier not enforced: %v", got)
	}
}

func TestApplyDefaults(t *testing.T) {
	s := modifierSchema(t)
	g := pg.New()
	withCur := g.AddNode([]string{"Share"}, pg.Props{
		"code": value.Str("a"), "percentage": value.FloatV(0.1), "right": value.Str("ownership"),
		"currency": value.Str("USD"),
	}).ID
	withoutCur := g.AddNode([]string{"Share"}, pg.Props{
		"code": value.Str("b"), "percentage": value.FloatV(0.1), "right": value.Str("ownership"),
	}).ID
	if n := ApplyDefaults(g, s); n != 1 {
		t.Fatalf("defaults set = %d", n)
	}
	if got := g.Node(withCur).Props["currency"].S; got != "USD" {
		t.Errorf("existing value clobbered: %s", got)
	}
	if got := g.Node(withoutCur).Props["currency"].S; got != "EUR" {
		t.Errorf("default not applied: %q", got)
	}
	// Idempotent.
	if n := ApplyDefaults(g, s); n != 0 {
		t.Errorf("second pass set %d", n)
	}
}

func TestValidateModifiersCompanyKG(t *testing.T) {
	// The Figure 4 schema carries enum and range modifiers; generated data
	// conforms.
	s := supermodel.CompanyKG()
	g := pg.New()
	g.AddNode([]string{"Share"}, pg.Props{
		"shareCode": value.Str("S1"), "percentage": value.FloatV(0.5),
	})
	g.AddNode([]string{"Person", "PhysicalPerson"}, pg.Props{
		"fiscalCode": value.Str("P"), "name": value.Str("X Y"), "gender": value.Str("female"),
	})
	if got := ValidateModifiers(g, s); len(got) != 0 {
		t.Errorf("conforming data flagged: %v", got)
	}
	g.AddNode([]string{"Share"}, pg.Props{
		"shareCode": value.Str("S2"), "percentage": value.FloatV(3.0),
	})
	if got := ValidateModifiers(g, s); len(got) != 1 {
		t.Errorf("range violation missed: %v", got)
	}
}
