package models

import (
	"strings"
	"testing"

	"repro/internal/supermodel"
)

func TestEmitSQLFromFigure8(t *testing.T) {
	res := translateCompanyKG(t, "relational", "")
	view, err := ReadRelationalSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	ddl := EmitSQL(view)
	for _, want := range []string{
		`CREATE TABLE "Business"`,
		`CREATE TABLE "HOLDS"`,
		`CREATE TABLE "CONTROLS"`,
		`"fiscalCode" TEXT NOT NULL`,
		`PRIMARY KEY ("fiscalCode")`,
		`FOREIGN KEY ("fiscalCode") REFERENCES "LegalPerson" ("fiscalCode")`,
		`CONSTRAINT "BELONGS_TO" FOREIGN KEY ("belongs_to_fiscalCode") REFERENCES "Business" ("fiscalCode")`,
		"-- CONTROLS is intensional",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	// Junction tables reference both endpoints.
	if !strings.Contains(ddl, `CONSTRAINT "FK_HOLDS_SRC"`) || !strings.Contains(ddl, `CONSTRAINT "FK_HOLDS_DST"`) {
		t.Errorf("HOLDS junction foreign keys missing:\n%s", ddl)
	}
}

func TestEmitPGConstraintsFromFigure6(t *testing.T) {
	res := translateCompanyKG(t, "pg", "multi-label")
	view, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	out := EmitPGConstraints(view)
	for _, want := range []string{
		"ASSERT n.fiscalCode IS UNIQUE",
		"ASSERT exists(n.businessName)",
		"[:CONTROLS]->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PG constraints missing %q:\n%s", want, out)
		}
	}
	// Optional properties must not get existence constraints.
	if strings.Contains(out, "exists(n.birthDate)") {
		t.Errorf("optional property must not be required:\n%s", out)
	}
	// Intensional properties must not get existence constraints either.
	if strings.Contains(out, "exists(n.numberOfStakeholders)") {
		t.Errorf("intensional property must not be required:\n%s", out)
	}
}

func TestEmitRDFS(t *testing.T) {
	s := supermodel.CompanyKG()
	out := EmitRDFS(s)
	for _, want := range []string{
		"kg:Person a rdfs:Class .",
		"kg:Business rdfs:subClassOf kg:LegalPerson .",
		"kg:CONTROLS a rdf:Property ; rdfs:domain kg:Person ; rdfs:range kg:Business .",
		"rdfs:range xsd:date",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RDF-S missing %q", want)
		}
	}
}

func TestEmitCSVLayout(t *testing.T) {
	s := supermodel.CompanyKG()
	out := EmitCSVLayout(s)
	if !strings.Contains(out, "business.csv: _oid,shareholdingCapital,numberOfStakeholders,businessName,legalNature,website,fiscalCode") {
		t.Errorf("business.csv layout wrong:\n%s", out)
	}
	if !strings.Contains(out, "holds.csv: _oid,_from,_to,right,percentage") {
		t.Errorf("holds.csv layout wrong:\n%s", out)
	}
}

func TestSQLTypeMapping(t *testing.T) {
	for dt, want := range map[string]string{
		"int": "BIGINT", "float": "DOUBLE PRECISION", "bool": "BOOLEAN",
		"date": "DATE", "string": "TEXT", "unknown": "TEXT",
	} {
		if got := sqlType(dt); got != want {
			t.Errorf("sqlType(%q) = %q, want %q", dt, got, want)
		}
	}
}
