package models

import (
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

// miniView translates a small schema and returns its PG view.
func miniView(t *testing.T) *PGSchemaView {
	t.Helper()
	s := supermodel.NewSchema("mini", 77)
	s.MustAddNode("Company", false,
		supermodel.Attr("vat", supermodel.String).ID(),
		supermodel.Attr("cap", supermodel.Float).Opt(),
	)
	s.MustAddNode("Person", false,
		supermodel.Attr("code", supermodel.String).ID().With(supermodel.UniqueModifier{}),
	)
	s.MustAddEdge("OWNS", false, "Person", "Company", supermodel.ZeroToMany, supermodel.ZeroToMany,
		supermodel.Attr("pct", supermodel.Float),
	)
	v, err := NativeToPG(s, "multi-label")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestValidateInstanceClean(t *testing.T) {
	view := miniView(t)
	g := pg.New()
	p := g.AddNode([]string{"Person"}, pg.Props{"code": value.Str("P1")}).ID
	c := g.AddNode([]string{"Company"}, pg.Props{"vat": value.Str("IT1"), "cap": value.FloatV(10)}).ID
	g.MustAddEdge(p, c, "OWNS", pg.Props{"pct": value.FloatV(0.5)})
	if got := ValidateInstance(g, view); len(got) != 0 {
		t.Errorf("clean instance reported violations: %v", got)
	}
}

func TestValidateInstanceViolations(t *testing.T) {
	view := miniView(t)
	g := pg.New()
	// Missing required vat; wrong type for cap; unknown property; unknown
	// label; duplicate unique code; edge with bad endpoints and missing pct.
	c1 := g.AddNode([]string{"Company"}, pg.Props{"cap": value.Str("not-a-float"), "color": value.Str("red")}).ID
	p1 := g.AddNode([]string{"Person"}, pg.Props{"code": value.Str("X")}).ID
	p2 := g.AddNode([]string{"Person"}, pg.Props{"code": value.Str("X")}).ID
	alien := g.AddNode([]string{"Alien"}, nil).ID
	g.MustAddEdge(c1, p1, "OWNS", nil)    // wrong direction (Company -> Person)
	g.MustAddEdge(p1, c1, "OWNS", nil)    // missing pct
	g.MustAddEdge(p2, c1, "FRIENDS", nil) // unknown relationship
	_ = alien

	got := ValidateInstance(g, view)
	kinds := map[string]int{}
	for _, v := range got {
		kinds[v.Kind]++
	}
	for kind, want := range map[string]int{
		"missing-property":     2, // vat on c1, pct on the p1->c1 edge
		"bad-type":             1,
		"unknown-property":     1,
		"unknown-label":        2, // the label itself and the unmatched label set
		"not-unique":           1,
		"bad-endpoint":         1,
		"unknown-relationship": 1,
	} {
		if kinds[kind] != want {
			t.Errorf("%s violations = %d, want %d\nall: %v", kind, kinds[kind], want, got)
		}
	}
}

func TestValidateInstanceIntensionalPropsOptional(t *testing.T) {
	// Intensional properties (numberOfStakeholders) must not be required of
	// ground data.
	res := translateCompanyKG(t, "pg", "multi-label")
	view, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	g.AddNode([]string{"Business", "LegalPerson", "Person"}, pg.Props{
		"fiscalCode":          value.Str("B1"),
		"businessName":        value.Str("acme"),
		"legalNature":         value.Str("spa"),
		"shareholdingCapital": value.FloatV(1),
	})
	for _, v := range ValidateInstance(g, view) {
		if strings.Contains(v.Detail, "numberOfStakeholders") {
			t.Errorf("intensional property must not be required: %v", v)
		}
		if strings.Contains(v.Detail, "website") && v.Kind == "missing-property" {
			t.Errorf("optional property must not be required: %v", v)
		}
	}
}

func TestValidateCardinalities(t *testing.T) {
	g := pg.New()
	a := g.AddNode([]string{"Share"}, nil).ID
	b := g.AddNode([]string{"Share"}, nil).ID
	biz1 := g.AddNode([]string{"Business"}, nil).ID
	biz2 := g.AddNode([]string{"Business"}, nil).ID
	g.MustAddEdge(a, biz1, "BELONGS_TO", nil)
	g.MustAddEdge(a, biz2, "BELONGS_TO", nil) // violates at-most-one
	_ = b                                     // violates mandatory participation

	got := ValidateCardinalities(g, "BELONGS_TO", true, true, "Share")
	if len(got) != 2 {
		t.Fatalf("violations = %v", got)
	}
	if !strings.Contains(got[0].Detail, "at most 1") {
		t.Errorf("first violation = %v", got[0])
	}
	if !strings.Contains(got[1].Detail, "mandatory") {
		t.Errorf("second violation = %v", got[1])
	}
}

func TestValidateGeneratedInstanceAgainstFigure6(t *testing.T) {
	// The synthetic Company KG instances conform to the Figure 6 schema by
	// construction — cross-check generator and translator against each
	// other, ignoring the Entity convenience label.
	res := translateCompanyKG(t, "pg", "multi-label")
	view, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	// Generated businesses carry Business:LegalPerson:Person, persons carry
	// PhysicalPerson:Person; both are valid label sets of the view.
	if view.NodeByLabel("Business") == nil || view.NodeByLabel("PhysicalPerson") == nil {
		t.Fatal("view misses expected node types")
	}
	g := pg.New()
	p := g.AddNode([]string{"Person", "PhysicalPerson"}, pg.Props{
		"fiscalCode": value.Str("P1"), "name": value.Str("Rossi Maria"), "gender": value.Str("female"),
	}).ID
	sh := g.AddNode([]string{"Share"}, pg.Props{
		"shareCode": value.Str("S1"), "percentage": value.FloatV(1.0),
	}).ID
	bz := g.AddNode([]string{"Business", "LegalPerson", "Person"}, pg.Props{
		"fiscalCode": value.Str("B1"), "businessName": value.Str("acme"),
		"legalNature": value.Str("spa"), "shareholdingCapital": value.FloatV(5),
	}).ID
	g.MustAddEdge(p, sh, "HOLDS", pg.Props{"right": value.Str("ownership"), "percentage": value.FloatV(1)})
	g.MustAddEdge(sh, bz, "BELONGS_TO", nil)
	if got := ValidateInstance(g, view); len(got) != 0 {
		t.Errorf("conforming instance reported violations: %v", got)
	}
}
