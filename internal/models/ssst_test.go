package models

import (
	"reflect"
	"testing"

	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

// translateCompanyKG runs SSST over the Figure 4 schema with the given
// mapping and returns the dictionary.
func translateCompanyKG(t *testing.T, model, strategy string) *TranslateResult {
	t.Helper()
	s := supermodel.CompanyKG()
	dict := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(s, dict); err != nil {
		t.Fatal(err)
	}
	m, err := SelectMapping(supermodel.CompanyKGOID, 124, 125, model, strategy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(dict, m, vadalog.Options{})
	if err != nil {
		t.Fatalf("SSST translate: %v", err)
	}
	return res
}

// TestFigure6Translation reproduces Figure 6: the Company KG super-schema
// translated to the PG model with multi-label tagging. The MetaLog pipeline
// result must agree exactly with the native translation.
func TestFigure6Translation(t *testing.T) {
	res := translateCompanyKG(t, "pg", "multi-label")
	got, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NativeToPG(supermodel.CompanyKG(), "multi-label")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Errorf("PG node views differ.\nMetaLog: %+v\nNative:  %+v", got.Nodes, want.Nodes)
	}
	if !reflect.DeepEqual(got.Rels, want.Rels) {
		t.Errorf("PG relationship views differ (%d vs %d).\nMetaLog: %+v\nNative:  %+v",
			len(got.Rels), len(want.Rels), got.Rels, want.Rels)
	}

	// Figure 6 spot checks: Business carries its whole ancestry as labels.
	biz := got.NodeByLabel("Business")
	if biz == nil {
		t.Fatal("no Business node view")
	}
	wantLabels := []string{"Business", "LegalPerson", "Person"}
	if !reflect.DeepEqual(biz.Labels, wantLabels) {
		t.Errorf("Business labels = %v, want %v", biz.Labels, wantLabels)
	}
	// ... and the inherited attributes, down from Person and LegalPerson.
	names := map[string]bool{}
	for _, p := range biz.Properties {
		names[p.Name] = true
	}
	for _, want := range []string{"fiscalCode", "businessName", "legalNature", "shareholdingCapital", "numberOfStakeholders"} {
		if !names[want] {
			t.Errorf("Business properties missing %s: %v", want, names)
		}
	}
	// No generalization survives in the PG schema.
	for _, r := range got.Rels {
		if r.Name == "SM_PARENT" || r.Name == "SM_CHILD" {
			t.Errorf("generalization link leaked into PG schema: %v", r)
		}
	}
}

// TestExample51TypeAccumulation is the E12 check for Example 5.1: nodes of
// S⁻ accumulate the types inherited from their parent nodes, at any level.
func TestExample51TypeAccumulation(t *testing.T) {
	res := translateCompanyKG(t, "pg", "multi-label")
	got, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	plc := got.NodeByLabel("PublicListedCompany")
	if plc == nil {
		t.Fatal("no PublicListedCompany node view")
	}
	want := []string{"Business", "LegalPerson", "Person", "PublicListedCompany"}
	if !reflect.DeepEqual(plc.Labels, want) {
		t.Errorf("PublicListedCompany labels = %v, want %v (3-level accumulation)", plc.Labels, want)
	}
}

// TestExample52EdgeInheritance is the E12 check for Example 5.2: outgoing
// edges of a parent node are inherited by its children.
func TestExample52EdgeInheritance(t *testing.T) {
	res := translateCompanyKG(t, "pg", "multi-label")
	got, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	// HOLDS is declared on Person; PhysicalPerson and LegalPerson (and the
	// deeper descendants) must each get an inherited copy.
	holds := got.RelsByName("HOLDS")
	fromPrimary := map[string]bool{}
	for _, r := range holds {
		// The most specific label identifies the inheriting source.
		var labels []string
		labels = append(labels, r.FromLabels...)
		fromPrimary[labels[len(labels)-1]] = true
	}
	// Count the copies: Person + its 5 descendants on the source side, plus
	// the incoming-inheritance copy targeting StockShare.
	if len(holds) != 7 {
		t.Errorf("HOLDS should have 7 copies (Person + 5 descendants + StockShare target), got %d", len(holds))
	}
	_ = fromPrimary
	// Every copy keeps the right/percentage attributes.
	for _, r := range holds {
		if len(r.Properties) != 2 {
			t.Errorf("inherited HOLDS copy lost attributes: %+v", r)
		}
	}
	// Incoming inheritance: HOLDS targets Share, which has StockShare as a
	// descendant — one of the copies must target the StockShare label set.
	foundStock := false
	for _, r := range holds {
		for _, l := range r.ToLabels {
			if l == "StockShare" {
				foundStock = true
			}
		}
	}
	if !foundStock {
		t.Errorf("incoming edge inheritance to StockShare missing: %+v", holds)
	}
}

// TestPGChildEdgesStrategy checks the alternative implementation strategy:
// generalizations become IS_A relationships and nothing is inherited.
func TestPGChildEdgesStrategy(t *testing.T) {
	res := translateCompanyKG(t, "pg", "child-edges")
	got, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NativeToPG(supermodel.CompanyKG(), "child-edges")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Errorf("PG node views differ.\nMetaLog: %+v\nNative:  %+v", got.Nodes, want.Nodes)
	}
	if !reflect.DeepEqual(got.Rels, want.Rels) {
		t.Errorf("PG relationship views differ.\nMetaLog: %+v\nNative:  %+v", got.Rels, want.Rels)
	}
	isa := got.RelsByName("IS_A_Business_LegalPerson")
	if len(isa) != 1 {
		t.Errorf("IS_A relationship missing under child-edges strategy")
	}
	biz := got.NodeByLabel("Business")
	if len(biz.Labels) != 1 {
		t.Errorf("child-edges strategy must not multi-label: %v", biz.Labels)
	}
}

// TestFigure8Translation reproduces Figure 8: the Company KG super-schema
// translated to the relational model, cross-validated against the native
// translation.
func TestFigure8Translation(t *testing.T) {
	res := translateCompanyKG(t, "relational", "")
	got, err := ReadRelationalSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	want := NativeToRelational(supermodel.CompanyKG())
	if len(got.Relations) != len(want.Relations) {
		gotNames := make([]string, len(got.Relations))
		for i, r := range got.Relations {
			gotNames[i] = r.Name
		}
		wantNames := make([]string, len(want.Relations))
		for i, r := range want.Relations {
			wantNames[i] = r.Name
		}
		t.Fatalf("relation count %d vs %d:\nMetaLog: %v\nNative:  %v", len(got.Relations), len(want.Relations), gotNames, wantNames)
	}
	for i := range want.Relations {
		g, w := got.Relations[i], want.Relations[i]
		if g.Name != w.Name {
			t.Fatalf("relation %d: %s vs %s", i, g.Name, w.Name)
		}
		if !reflect.DeepEqual(g.Fields, w.Fields) {
			t.Errorf("relation %s fields differ.\nMetaLog: %+v\nNative:  %+v", g.Name, g.Fields, w.Fields)
		}
		if !reflect.DeepEqual(g.ForeignKeys, w.ForeignKeys) {
			t.Errorf("relation %s foreign keys differ.\nMetaLog: %+v\nNative:  %+v", g.Name, g.ForeignKeys, w.ForeignKeys)
		}
	}

	// Figure 8 spot checks.
	// Table-per-class: each generalization member is a relation with an
	// IS-A foreign key to its parent.
	biz := got.Relation("Business")
	if biz == nil {
		t.Fatal("no Business relation")
	}
	foundISA := false
	for _, fk := range biz.ForeignKeys {
		if fk.Name == "FK_ISA_Business_LegalPerson" && fk.TargetRelation == "LegalPerson" {
			foundISA = true
			if !reflect.DeepEqual(fk.SourceFields, []string{"fiscalCode"}) {
				t.Errorf("ISA FK source fields = %v", fk.SourceFields)
			}
		}
	}
	if !foundISA {
		t.Errorf("Business must have an IS-A FK to LegalPerson: %+v", biz.ForeignKeys)
	}
	// The child relation carries the inherited identifier.
	if f := biz.Field("fiscalCode"); f == nil || !f.IsID {
		t.Errorf("Business must inherit fiscalCode as its key: %+v", biz.Fields)
	}
	// N:M HOLDS becomes a junction relation with two FKs.
	holds := got.Relation("HOLDS")
	if holds == nil {
		t.Fatal("no HOLDS junction relation")
	}
	if len(holds.ForeignKeys) != 2 {
		t.Errorf("HOLDS junction needs 2 FKs, got %+v", holds.ForeignKeys)
	}
	if holds.Field("right") == nil || holds.Field("percentage") == nil {
		t.Errorf("HOLDS junction lost the edge attributes: %+v", holds.Fields)
	}
	// Functional BELONGS_TO becomes a FK on Share referencing Business.
	share := got.Relation("Share")
	foundBT := false
	for _, fk := range share.ForeignKeys {
		if fk.Name == "BELONGS_TO" && fk.TargetRelation == "Business" {
			foundBT = true
		}
	}
	if !foundBT {
		t.Errorf("Share must hold the BELONGS_TO FK: %+v", share.ForeignKeys)
	}
	// Intensional CONTROLS becomes a (derived) junction relation.
	controls := got.Relation("CONTROLS")
	if controls == nil || !controls.IsIntensional {
		t.Errorf("CONTROLS must be an intensional junction relation: %+v", controls)
	}
}

// TestFigure5PGModel and TestFigure7RelationalModel check the model
// dictionaries: which super-constructs each model specializes, with the
// Figure 5 / Figure 7 names.
func TestFigure5PGModel(t *testing.T) {
	m := PGModel()
	checks := map[string]string{
		"SM_Node":                    "Node",
		"SM_Edge":                    "Relationship",
		"SM_Type":                    "Label",
		"SM_Attribute":               "Property",
		"SM_UniqueAttributeModifier": "UniquePropertyModifier",
	}
	for super, construct := range checks {
		if got := m.Construct(super); got != construct {
			t.Errorf("PG model: %s specialized by %q, want %q", super, got, construct)
		}
	}
	if m.Supports("SM_Generalization") {
		t.Errorf("the PG model must not support generalizations (they are eliminated)")
	}
}

func TestFigure7RelationalModel(t *testing.T) {
	m := RelationalModel()
	checks := map[string]string{
		"SM_Type":      "Relation",
		"SM_Attribute": "Field",
		"SM_Node":      "Predicate",
		"SM_Edge":      "ForeignKey",
	}
	for super, construct := range checks {
		if got := m.Construct(super); got != construct {
			t.Errorf("relational model: %s specialized by %q, want %q", super, got, construct)
		}
	}
	if m.Supports("SM_Generalization") {
		t.Errorf("the relational model must not support generalizations")
	}
	if RDFSModel().Construct("SM_Generalization") != "SubClassOf" {
		t.Errorf("RDFS must support generalizations natively")
	}
}

func TestSelectMapping(t *testing.T) {
	if _, err := SelectMapping(1, 2, 3, "pg", "multi-label"); err != nil {
		t.Error(err)
	}
	if _, err := SelectMapping(1, 2, 3, "pg", "nope"); err == nil {
		t.Error("unknown strategy must fail")
	}
	if _, err := SelectMapping(1, 2, 3, "zzz", ""); err == nil {
		t.Error("unknown model must fail")
	}
	m, err := SelectMapping(1, 2, 3, "pg", "")
	if err != nil || m.Strategy != "multi-label" {
		t.Errorf("default PG strategy should be multi-label: %+v, %v", m, err)
	}
}
