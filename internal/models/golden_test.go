package models

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gsl"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenCheck compares got against testdata/<name>.golden, rewriting the
// file under -update. Golden files pin the exact emitted artifacts for the
// Figure 4 design, so any unintended change to the translation pipeline or
// the emitters shows up as a diff.
func goldenCheck(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test ./internal/models -run Golden -update`): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden file; re-run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
			name, clip(got), clip(string(want)))
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n…(clipped)"
	}
	return s
}

func TestGoldenArtifacts(t *testing.T) {
	schema := supermodel.CompanyKG()

	// GSL canonical serialization.
	goldenCheck(t, "companykg.gsl", gsl.Serialize(schema))
	// GSL text rendering (graphemes).
	goldenCheck(t, "companykg.txt", gsl.RenderText(schema))
	// GSL DOT diagram (Figure 4).
	goldenCheck(t, "companykg.dot", gsl.RenderDOT(schema))
	// RDF-S deployment.
	goldenCheck(t, "companykg.rdfs.ttl", EmitRDFS(schema))
	// CSV layout.
	goldenCheck(t, "companykg.csv-layout", EmitCSVLayout(schema))

	// SSST artifacts, through the MetaLog pipeline.
	run := func(model, strategy string) *TranslateResult {
		dict := supermodel.NewDictionary()
		if err := supermodel.ToDictionary(schema, dict); err != nil {
			t.Fatal(err)
		}
		m, err := SelectMapping(schema.OID, 124, 125, model, strategy)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Translate(dict, m, vadalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pgRes := run("pg", "multi-label")
	pgView, err := ReadPGSchema(pgRes.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "figure6.constraints", EmitPGConstraints(pgView))
	goldenCheck(t, "figure6.dot", RenderPGViewDOT(pgView))

	relRes := run("relational", "")
	relView, err := ReadRelationalSchema(relRes.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "figure8.sql", EmitSQL(relView))
	goldenCheck(t, "figure8.dot", RenderRelationalViewDOT(relView))
}
