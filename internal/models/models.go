// Package models implements the model level of KGModel (Section 5): the
// concrete data models a super-schema can be cast into, the translation
// mapping library M(M), and the SSST Super-Schema to Schema Translator
// (Algorithm 1).
//
// A model is represented by specializing and renaming a subset of the
// super-constructs (Figures 5 and 7). The mappings are genuine MetaLog
// programs operating on the graph dictionary: the Eliminate programs rewrite
// the super-schema S into an intermediate super-schema S⁻ that only uses
// constructs the target model supports, and the Copy programs downcast S⁻
// into the target schema S′ by renaming super-constructs into model
// constructs. Both phases are compiled by MTV and executed by the Vadalog
// engine, exactly as in the paper's architecture; native Go twins
// (native.go) cross-validate the MetaLog path and serve as ablation
// baselines.
package models

import (
	"fmt"
	"sort"
)

// ConstructSpec declares one construct of a model and the super-construct it
// specializes, as in the "Node: SM_Node" suffix notation of Figure 5.
type ConstructSpec struct {
	Name        string
	Specializes string
}

// Model is a concrete data model.
type Model struct {
	Name       string
	Constructs []ConstructSpec
}

// Construct returns the construct specializing the given super-construct, or
// "" when the model does not support it.
func (m Model) Construct(superConstruct string) string {
	for _, c := range m.Constructs {
		if c.Specializes == superConstruct {
			return c.Name
		}
	}
	return ""
}

// Supports reports whether the model specializes the super-construct.
func (m Model) Supports(superConstruct string) bool { return m.Construct(superConstruct) != "" }

// PGModel is the essential property-graph model of Figure 5: labeled nodes
// and relationships with properties, multi-label tagging, a uniqueness
// modifier — and no generalizations.
func PGModel() Model {
	return Model{
		Name: "pg",
		Constructs: []ConstructSpec{
			{"Node", "SM_Node"},
			{"Relationship", "SM_Edge"},
			{"Label", "SM_Type"},
			{"Property", "SM_Attribute"},
			{"UniquePropertyModifier", "SM_UniqueAttributeModifier"},
			{"HAS_LABEL", "SM_HAS_NODE_TYPE"},
			{"R_FROM", "SM_FROM"},
			{"R_TO", "SM_TO"},
			{"HAS_PROPERTY", "SM_HAS_NODE_PROPERTY"},
			{"R_HAS_PROPERTY", "SM_HAS_EDGE_PROPERTY"},
			{"HAS_MODIFIER", "SM_HAS_MODIFIER"},
		},
	}
}

// RelationalModel is the essential relational model of Figure 7: Relations
// with Fields, Predicates connecting them, and ForeignKeys constraining
// source fields to the identifier of the target relation.
func RelationalModel() Model {
	return Model{
		Name: "relational",
		Constructs: []ConstructSpec{
			{"Predicate", "SM_Node"},
			{"Relation", "SM_Type"},
			{"Field", "SM_Attribute"},
			{"ForeignKey", "SM_Edge"},
			{"HAS_RELATION", "SM_HAS_NODE_TYPE"},
			{"HAS_FIELD", "SM_HAS_NODE_PROPERTY"},
			{"FK_FROM", "SM_FROM"},
			{"FK_TO", "SM_TO"},
			{"HAS_SOURCE_FIELD", "SM_HAS_EDGE_PROPERTY"},
		},
	}
}

// RDFSModel is a minimal RDF-Schema model: classes, properties with domain
// and range, and subclass links. It supports generalizations natively
// (rdfs:subClassOf), so its Eliminate phase keeps them.
func RDFSModel() Model {
	return Model{
		Name: "rdfs",
		Constructs: []ConstructSpec{
			{"Class", "SM_Node"},
			{"RdfProperty", "SM_Attribute"},
			{"ObjectProperty", "SM_Edge"},
			{"SubClassOf", "SM_Generalization"},
			{"ClassName", "SM_Type"},
		},
	}
}

// CSVModel serializes graphs as plain CSV files: one file per node type and
// per edge type, no constraints (Section 2.2 lists CSV among the non-graph
// serializations in use).
func CSVModel() Model {
	return Model{
		Name: "csv",
		Constructs: []ConstructSpec{
			{"File", "SM_Type"},
			{"Column", "SM_Attribute"},
		},
	}
}

// Models returns the registered models, sorted by name.
func Models() []Model {
	ms := []Model{CSVModel(), PGModel(), RDFSModel(), RelationalModel()}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// ModelByName returns the named model.
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown model %q", name)
}
