package models

import (
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

func TestEmitNTriples(t *testing.T) {
	g := pg.New()
	p := g.AddNode([]string{"Person"}, pg.Props{"name": value.Str("Ann"), "age": value.IntV(40)}).ID
	c := g.AddNode([]string{"Business", "LegalPerson"}, pg.Props{"cap": value.FloatV(1.5)}).ID
	g.MustAddEdge(p, c, "OWNS", pg.Props{"pct": value.FloatV(0.6)})
	g.MustAddEdge(c, p, "KNOWS", nil)

	out := EmitNTriples(g, "urn:kg")
	for _, want := range []string{
		`<urn:kg/node/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <urn:kg/class/Person> .`,
		`<urn:kg/node/1> <urn:kg/prop/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<urn:kg/node/1> <urn:kg/prop/name> "Ann" .`,
		`<urn:kg/node/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <urn:kg/class/Business> .`,
		`<urn:kg/node/1> <urn:kg/rel/OWNS> <urn:kg/node/2> .`,
		// The OWNS edge has a property, so it is reified.
		`<urn:kg/edge/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .`,
		`<urn:kg/edge/3> <urn:kg/prop/pct> "0.6"^^<http://www.w3.org/2001/XMLSchema#double> .`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("N-Triples missing:\n%s\nin:\n%s", want, out)
		}
	}
	// The property-less KNOWS edge must not be reified.
	if strings.Contains(out, "edge/4") {
		t.Errorf("property-less edge should not be reified:\n%s", out)
	}
	// Every line is a syntactically complete triple.
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasSuffix(l, " .") {
			t.Errorf("bad triple line: %q", l)
		}
	}
}

func TestRenderViewDOTs(t *testing.T) {
	res := translateCompanyKG(t, "pg", "multi-label")
	pgView, err := ReadPGSchema(res.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	dot := RenderPGViewDOT(pgView)
	for _, want := range []string{
		"digraph", "shape=record",
		`"Business:LegalPerson:Person"`,
		"style=dashed", // intensional constructs
		"fiscalCode: string *",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("PG DOT missing %q", want)
		}
	}

	res2 := translateCompanyKG(t, "relational", "")
	relView, err := ReadRelationalSchema(res2.Dict, 125)
	if err != nil {
		t.Fatal(err)
	}
	dot2 := RenderRelationalViewDOT(relView)
	for _, want := range []string{
		`"HOLDS"`, "FK_HOLDS_SRC", `"Business" -> "LegalPerson"`,
	} {
		if !strings.Contains(dot2, want) {
			t.Errorf("relational DOT missing %q", want)
		}
	}
}

// TestModelConstructsSpecializeSuperModel is a cross-package consistency
// check: every construct of every registered model specializes a construct
// that actually exists in the Figure 3 super-model dictionary.
func TestModelConstructsSpecializeSuperModel(t *testing.T) {
	known := map[string]bool{}
	for _, sc := range supermodel.SuperModelConstructs() {
		known[sc.Name] = true
	}
	for _, m := range Models() {
		for _, c := range m.Constructs {
			if !known[c.Specializes] {
				t.Errorf("model %s: construct %s specializes unknown super-construct %q",
					m.Name, c.Name, c.Specializes)
			}
		}
	}
}
