package models

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pg"
	"repro/internal/value"
)

// Instance validation: Section 5 notes that for schema-less systems like
// graph databases, translated schemas "can be enforced with ad-hoc
// methodologies" (citing Bonifati et al. on schema validation for graph
// databases). This file implements that enforcement for property-graph
// instances: a data graph is checked against the PGSchemaView produced by
// SSST — label sets, property presence and types, uniqueness modifiers,
// relationship signatures and cardinalities.

// Violation is one schema violation found in a data instance.
type Violation struct {
	Kind    string // unknown-label, missing-property, bad-type, not-unique, unknown-relationship, bad-endpoint, cardinality
	Subject string // "node 12", "edge 33", ...
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Kind, v.Subject, v.Detail)
}

// typeMatches checks a value against a super-model data type.
func typeMatches(v value.Value, dataType string) bool {
	switch dataType {
	case "string", "date":
		return v.K == value.String
	case "int":
		return v.K == value.Int
	case "float":
		_, ok := v.AsFloat()
		return ok
	case "bool":
		return v.K == value.Bool
	default:
		return true
	}
}

// ValidateInstance checks a property-graph data instance against a
// translated PG schema view. Derived/intensional constructs are validated
// like extensional ones (they conform to the same schema once materialized);
// labels and relationship types absent from the schema are violations.
// The returned violations are deterministic and sorted.
func ValidateInstance(g pg.View, view *PGSchemaView) []Violation {
	var out []Violation
	report := func(kind, subject, detail string, args ...any) {
		out = append(out, Violation{Kind: kind, Subject: subject, Detail: fmt.Sprintf(detail, args...)})
	}

	// Index the schema: label-set signature -> node view; every label known.
	nodeBySig := map[string]*PGNodeView{}
	knownLabel := map[string]bool{}
	for i := range view.Nodes {
		nv := &view.Nodes[i]
		nodeBySig[strings.Join(nv.Labels, ":")] = nv
		for _, l := range nv.Labels {
			knownLabel[l] = true
		}
	}
	relByName := map[string][]PGRelView{}
	for _, rv := range view.Rels {
		relByName[rv.Name] = append(relByName[rv.Name], rv)
	}

	// Track unique-property values per (label, property).
	uniqueSeen := map[string]map[string]pg.OID{}

	nodeView := map[pg.OID]*PGNodeView{}
	for _, n := range g.Nodes() {
		subject := fmt.Sprintf("node %d", n.ID)
		for _, l := range n.Labels {
			if !knownLabel[l] {
				report("unknown-label", subject, "label %s is not part of the schema", l)
			}
		}
		nv, ok := nodeBySig[strings.Join(n.Labels, ":")]
		if !ok {
			report("unknown-label", subject, "label set %v matches no schema node type", n.Labels)
			continue
		}
		nodeView[n.ID] = nv
		for _, p := range nv.Properties {
			v, has := n.Props[p.Name]
			if !has {
				if !p.IsOpt && !p.IsIntensional {
					report("missing-property", subject, "required property %s absent", p.Name)
				}
				continue
			}
			if !typeMatches(v, p.DataType) {
				report("bad-type", subject, "property %s has kind %s, want %s", p.Name, v.K, p.DataType)
			}
			if p.IsID || p.Unique {
				key := nv.PrimaryLabel(view.Nodes) + "." + p.Name
				seen := uniqueSeen[key]
				if seen == nil {
					seen = map[string]pg.OID{}
					uniqueSeen[key] = seen
				}
				ck := v.Canonical()
				if prev, dup := seen[ck]; dup {
					report("not-unique", subject, "property %s value %s already used by node %d", p.Name, v, prev)
				} else {
					seen[ck] = n.ID
				}
			}
		}
		// Properties not in the schema.
		var extra []string
		declared := map[string]bool{}
		for _, p := range nv.Properties {
			declared[p.Name] = true
		}
		for k := range n.Props {
			// Underscore-prefixed properties are framework bookkeeping
			// (e.g. _derivedOID from materialization), not schema data.
			if !declared[k] && !strings.HasPrefix(k, "_") {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		for _, k := range extra {
			report("unknown-property", subject, "property %s is not declared for %v", k, n.Labels)
		}
	}

	// Relationship signatures: the edge's endpoints must match one of the
	// schema's (FromLabels, ToLabels) pairs for that relationship name.
	type cardKey struct {
		node pg.OID
		rel  string
	}
	outCount := map[cardKey]int{}
	for _, e := range g.Edges() {
		subject := fmt.Sprintf("edge %d (%s)", e.ID, e.Label)
		views, ok := relByName[e.Label]
		if !ok {
			report("unknown-relationship", subject, "relationship type %s is not part of the schema", e.Label)
			continue
		}
		fromV, toV := nodeView[e.From], nodeView[e.To]
		if fromV == nil || toV == nil {
			continue // endpoint already reported as unknown
		}
		matched := false
		var sig PGRelView
		for _, rv := range views {
			if strings.Join(rv.FromLabels, ":") == strings.Join(fromV.Labels, ":") &&
				strings.Join(rv.ToLabels, ":") == strings.Join(toV.Labels, ":") {
				matched = true
				sig = rv
				break
			}
		}
		if !matched {
			report("bad-endpoint", subject, "no %s signature matches %v -> %v", e.Label, fromV.Labels, toV.Labels)
			continue
		}
		for _, p := range sig.Properties {
			v, has := e.Props[p.Name]
			if !has {
				if !p.IsOpt && !p.IsIntensional {
					report("missing-property", subject, "required property %s absent", p.Name)
				}
				continue
			}
			if !typeMatches(v, p.DataType) {
				report("bad-type", subject, "property %s has kind %s, want %s", p.Name, v.K, p.DataType)
			}
		}
		outCount[cardKey{e.From, e.Label}]++
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// ValidateCardinalities checks the isFun/isOpt participation constraints of
// a super-schema against a data instance: a source-functional edge type
// allows at most one outgoing edge per source node, a mandatory side
// requires at least one. It complements ValidateInstance, which works on
// the translated view (where cardinalities have been lowered into FK shape).
func ValidateCardinalities(g pg.View, edgeName string, fromMax1, fromMandatory bool, fromLabel string) []Violation {
	var out []Violation
	count := map[pg.OID]int{}
	for _, e := range g.EdgesByLabel(edgeName) {
		count[e.From]++
	}
	for _, n := range g.NodesByLabel(fromLabel) {
		c := count[n.ID]
		subject := fmt.Sprintf("node %d", n.ID)
		if fromMax1 && c > 1 {
			out = append(out, Violation{Kind: "cardinality", Subject: subject,
				Detail: fmt.Sprintf("%d outgoing %s edges, at most 1 allowed", c, edgeName)})
		}
		if fromMandatory && c == 0 {
			out = append(out, Violation{Kind: "cardinality", Subject: subject,
				Detail: fmt.Sprintf("no outgoing %s edge, participation is mandatory", edgeName)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}
