package models

import (
	"fmt"
	"sort"

	"repro/internal/supermodel"
)

// Native Go twins of the MetaLog mappings. They compute the same typed views
// that ReadPGSchema / ReadRelationalSchema extract from an SSST-translated
// dictionary, and serve two purposes: cross-validating the MetaLog pipeline
// in tests (the two paths must agree exactly) and acting as the baseline in
// the translation ablation benchmarks.

func toPropView(a *supermodel.Attribute) PropView {
	pv := PropView{
		Name:          a.Name,
		DataType:      string(a.Type),
		IsOpt:         a.IsOpt,
		IsID:          a.IsID,
		IsIntensional: a.IsIntensional,
	}
	for _, m := range a.Modifiers {
		if _, ok := m.(supermodel.UniqueModifier); ok {
			pv.Unique = true
		}
	}
	return pv
}

func sortProps(ps []PropView) []PropView {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// labelSet returns the multi-label tag set of a node: its own type plus
// every ancestor type, sorted.
func labelSet(s *supermodel.Schema, node string) []string {
	labels := append([]string{node}, s.Ancestors(node)...)
	sort.Strings(labels)
	return labels
}

func descOrSelf(s *supermodel.Schema, node string) []string {
	out := append([]string{node}, s.Descendants(node)...)
	sort.Strings(out)
	return out
}

// NativeToPG computes the property-graph schema view the SSST PG mapping
// produces, without going through MetaLog.
func NativeToPG(s *supermodel.Schema, strategy string) (*PGSchemaView, error) {
	switch strategy {
	case "", "multi-label":
		return nativePGMultiLabel(s), nil
	case "child-edges":
		return nativePGChildEdges(s), nil
	default:
		return nil, fmt.Errorf("models: unknown PG strategy %q", strategy)
	}
}

func nativePGMultiLabel(s *supermodel.Schema) *PGSchemaView {
	v := &PGSchemaView{}
	for _, n := range s.Nodes {
		var props []PropView
		for _, a := range s.EffectiveAttributes(n.Name) {
			props = append(props, toPropView(a))
		}
		v.Nodes = append(v.Nodes, PGNodeView{
			Labels:        labelSet(s, n.Name),
			Properties:    sortProps(props),
			IsIntensional: n.IsIntensional,
		})
	}
	for _, e := range s.Edges {
		var props []PropView
		for _, a := range e.Attributes {
			pv := toPropView(a)
			pv.Unique = false // edge-attribute modifiers are not part of the PG model
			props = append(props, pv)
		}
		props = sortProps(props)
		// Outgoing inheritance: one relationship per descendant-or-self of
		// the source (the self case is the original edge).
		for _, c := range descOrSelf(s, e.From) {
			v.Rels = append(v.Rels, PGRelView{
				Name:          e.Name,
				FromLabels:    labelSet(s, c),
				ToLabels:      labelSet(s, e.To),
				Properties:    props,
				IsIntensional: e.IsIntensional,
			})
		}
		// Incoming inheritance: proper descendants of the target.
		for _, c := range s.Descendants(e.To) {
			v.Rels = append(v.Rels, PGRelView{
				Name:          e.Name,
				FromLabels:    labelSet(s, e.From),
				ToLabels:      labelSet(s, c),
				Properties:    props,
				IsIntensional: e.IsIntensional,
			})
		}
	}
	sortPGView(v)
	return v
}

func nativePGChildEdges(s *supermodel.Schema) *PGSchemaView {
	v := &PGSchemaView{}
	for _, n := range s.Nodes {
		var props []PropView
		for _, a := range n.Attributes {
			props = append(props, toPropView(a))
		}
		v.Nodes = append(v.Nodes, PGNodeView{
			Labels:        []string{n.Name},
			Properties:    sortProps(props),
			IsIntensional: n.IsIntensional,
		})
	}
	for _, e := range s.Edges {
		var props []PropView
		for _, a := range e.Attributes {
			pv := toPropView(a)
			pv.Unique = false
			props = append(props, pv)
		}
		v.Rels = append(v.Rels, PGRelView{
			Name:          e.Name,
			FromLabels:    []string{e.From},
			ToLabels:      []string{e.To},
			Properties:    sortProps(props),
			IsIntensional: e.IsIntensional,
		})
	}
	for _, g := range s.Generalizations {
		for _, c := range g.Children {
			v.Rels = append(v.Rels, PGRelView{
				Name:       "IS_A_" + c + "_" + g.Parent,
				FromLabels: []string{c},
				ToLabels:   []string{g.Parent},
			})
		}
	}
	sortPGView(v)
	return v
}

func sortPGView(v *PGSchemaView) {
	sort.Slice(v.Nodes, func(i, j int) bool {
		return fmt.Sprint(v.Nodes[i].Labels) < fmt.Sprint(v.Nodes[j].Labels)
	})
	sort.Slice(v.Rels, func(i, j int) bool {
		if v.Rels[i].Name != v.Rels[j].Name {
			return v.Rels[i].Name < v.Rels[j].Name
		}
		if a, b := fmt.Sprint(v.Rels[i].FromLabels), fmt.Sprint(v.Rels[j].FromLabels); a != b {
			return a < b
		}
		return fmt.Sprint(v.Rels[i].ToLabels) < fmt.Sprint(v.Rels[j].ToLabels)
	})
}

// effectiveIDFields returns the identifying attributes of the node,
// including inherited ones, as sorted field names.
func effectiveIDFields(s *supermodel.Schema, node string) []string {
	var out []string
	for _, a := range s.EffectiveIDAttributes(node) {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// isJunction reports whether the relational mapping turns the edge into a
// junction relation: every intensional edge, and every extensional
// many-to-many edge.
func isJunction(e *supermodel.Edge) bool {
	return e.IsIntensional || e.IsManyToMany()
}

// NativeToRelational computes the relational schema view the SSST
// relational mapping (table-per-class strategy) produces.
func NativeToRelational(s *supermodel.Schema) *RelationalSchemaView {
	v := &RelationalSchemaView{}

	// One relation per node: own attributes, inherited identifiers, and the
	// attributes of functional edges absorbed into the relation that holds
	// the foreign key.
	for _, n := range s.Nodes {
		rv := RelationView{Name: n.Name, IsIntensional: n.IsIntensional}
		for _, a := range n.Attributes {
			pv := toPropView(a)
			pv.Unique = false // the relational mapping omits modifiers (Section 5.3)
			rv.Fields = append(rv.Fields, pv)
		}
		for _, anc := range s.Ancestors(n.Name) {
			for _, a := range s.Node(anc).Attributes {
				if a.IsID {
					pv := toPropView(a)
					pv.IsOpt = false
					pv.Unique = false
					pv.IsIntensional = false
					rv.Fields = append(rv.Fields, pv)
				}
			}
		}
		for _, e := range s.Edges {
			if isJunction(e) {
				continue
			}
			var holder string
			switch {
			case e.FromCard.Max1:
				holder = e.From
			case e.ToCard.Max1:
				holder = e.To
			}
			if holder != n.Name {
				continue
			}
			for _, a := range e.Attributes {
				pv := toPropView(a)
				pv.IsID = false
				pv.Unique = false
				pv.IsIntensional = false
				rv.Fields = append(rv.Fields, pv)
			}
		}
		rv.Fields = sortProps(rv.Fields)

		// IS-A foreign keys to every direct parent.
		for _, g := range s.Generalizations {
			for _, c := range g.Children {
				if c != n.Name {
					continue
				}
				rv.ForeignKeys = append(rv.ForeignKeys, FKView{
					Name:           "FK_ISA_" + c + "_" + g.Parent,
					TargetRelation: g.Parent,
					SourceFields:   effectiveIDFields(s, g.Parent),
				})
			}
		}
		// Functional-edge foreign keys held by this relation.
		for _, e := range s.Edges {
			if isJunction(e) {
				continue
			}
			switch {
			case e.FromCard.Max1 && e.From == n.Name:
				rv.ForeignKeys = append(rv.ForeignKeys, FKView{
					Name:           e.Name,
					TargetRelation: e.To,
					SourceFields:   effectiveIDFields(s, e.To),
				})
			case !e.FromCard.Max1 && e.ToCard.Max1 && e.To == n.Name:
				rv.ForeignKeys = append(rv.ForeignKeys, FKView{
					Name:           e.Name,
					TargetRelation: e.From,
					SourceFields:   effectiveIDFields(s, e.From),
				})
			}
		}
		sort.Slice(rv.ForeignKeys, func(i, j int) bool { return rv.ForeignKeys[i].Name < rv.ForeignKeys[j].Name })
		v.Relations = append(v.Relations, rv)
	}

	// Junction relations for intensional and many-to-many edges.
	for _, e := range s.Edges {
		if !isJunction(e) {
			continue
		}
		rv := RelationView{Name: e.Name, IsIntensional: e.IsIntensional}
		for _, a := range e.Attributes {
			pv := toPropView(a)
			pv.IsID = false
			pv.Unique = false
			rv.Fields = append(rv.Fields, pv)
		}
		rv.Fields = sortProps(rv.Fields)
		rv.ForeignKeys = []FKView{
			{Name: "FK_" + e.Name + "_SRC", TargetRelation: e.From, SourceFields: effectiveIDFields(s, e.From)},
			{Name: "FK_" + e.Name + "_DST", TargetRelation: e.To, SourceFields: effectiveIDFields(s, e.To)},
		}
		sort.Slice(rv.ForeignKeys, func(i, j int) bool { return rv.ForeignKeys[i].Name < rv.ForeignKeys[j].Name })
		v.Relations = append(v.Relations, rv)
	}
	sort.Slice(v.Relations, func(i, j int) bool { return v.Relations[i].Name < v.Relations[j].Name })
	return v
}
