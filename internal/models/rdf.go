package models

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pg"
	"repro/internal/value"
)

// Triplestore instance serialization: Section 2.2 lists triple stores among
// the target systems for the extensional component. EmitNTriples serializes
// a property-graph data instance as RDF N-Triples under a simple reification
// scheme: nodes become IRIs minted from their OID, labels become rdf:type
// triples, properties become data triples, and edges become triples of the
// edge label (edges with properties are additionally reified as statement
// resources so the properties are not lost).

const (
	rdfType   = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
	rdfSubj   = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#subject>"
	rdfPred   = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate>"
	rdfObj    = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#object>"
	rdfStmt   = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement>"
	xsdInt    = "<http://www.w3.org/2001/XMLSchema#integer>"
	xsdDouble = "<http://www.w3.org/2001/XMLSchema#double>"
	xsdBool   = "<http://www.w3.org/2001/XMLSchema#boolean>"
)

func rdfLiteral(v value.Value) string {
	switch v.K {
	case value.Int:
		return fmt.Sprintf("%q^^%s", v.String(), xsdInt)
	case value.Float:
		return fmt.Sprintf("%q^^%s", v.String(), xsdDouble)
	case value.Bool:
		return fmt.Sprintf("%q^^%s", v.String(), xsdBool)
	default:
		return fmt.Sprintf("%q", v.String())
	}
}

// EmitNTriples serializes the graph as N-Triples under the base IRI.
func EmitNTriples(g pg.View, base string) string {
	base = strings.TrimSuffix(base, "/")
	nodeIRI := func(id pg.OID) string { return fmt.Sprintf("<%s/node/%d>", base, id) }
	classIRI := func(l string) string { return fmt.Sprintf("<%s/class/%s>", base, l) }
	propIRI := func(p string) string { return fmt.Sprintf("<%s/prop/%s>", base, p) }
	relIRI := func(r string) string { return fmt.Sprintf("<%s/rel/%s>", base, r) }

	var b strings.Builder
	line := func(s, p, o string) { fmt.Fprintf(&b, "%s %s %s .\n", s, p, o) }

	for _, n := range g.Nodes() {
		s := nodeIRI(n.ID)
		for _, l := range n.Labels {
			line(s, rdfType, classIRI(l))
		}
		keys := make([]string, 0, len(n.Props))
		for k := range n.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line(s, propIRI(k), rdfLiteral(n.Props[k]))
		}
	}
	for _, e := range g.Edges() {
		s, o := nodeIRI(e.From), nodeIRI(e.To)
		line(s, relIRI(e.Label), o)
		if len(e.Props) > 0 {
			stmt := fmt.Sprintf("<%s/edge/%d>", base, e.ID)
			line(stmt, rdfType, rdfStmt)
			line(stmt, rdfSubj, s)
			line(stmt, rdfPred, relIRI(e.Label))
			line(stmt, rdfObj, o)
			keys := make([]string, 0, len(e.Props))
			for k := range e.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line(stmt, propIRI(k), rdfLiteral(e.Props[k]))
			}
		}
	}
	return b.String()
}
