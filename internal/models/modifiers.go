package models

import (
	"fmt"
	"sort"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

// Attribute-modifier enforcement: Section 3.2 introduces the
// SM_AttributeModifier family precisely so business constraints live in the
// design ("the SM_EnumAttributeModifier lists all the values an attribute
// may have"). ValidateModifiers checks a property-graph data instance
// against the modifiers of the super-schema directly — complementing
// ValidateInstance, which works on the translated view where only the
// uniqueness modifier survives into the PG model.

// ValidateModifiers checks every node of the instance against the enum,
// range and default modifiers of its (effective) attributes. Nodes are
// matched to schema types by their most specific label.
func ValidateModifiers(g pg.View, s *supermodel.Schema) []Violation {
	var out []Violation
	report := func(subject, detail string, args ...any) {
		out = append(out, Violation{Kind: "modifier", Subject: subject, Detail: fmt.Sprintf(detail, args...)})
	}
	for _, n := range g.Nodes() {
		typ := mostSpecificSchemaLabel(s, n.Labels)
		if typ == "" {
			continue // unknown labels are ValidateInstance's business
		}
		subject := fmt.Sprintf("node %d", n.ID)
		for _, a := range s.EffectiveAttributes(typ) {
			v, has := n.Props[a.Name]
			if !has {
				continue
			}
			for _, m := range a.Modifiers {
				switch m := m.(type) {
				case supermodel.EnumModifier:
					ok := false
					for _, allowed := range m.Values {
						if v.K == value.String && v.S == allowed {
							ok = true
						}
					}
					if !ok {
						report(subject, "property %s value %q not in enum %v", a.Name, v.String(), m.Values)
					}
				case supermodel.RangeModifier:
					f, isNum := v.AsFloat()
					if !isNum {
						report(subject, "property %s has range modifier but non-numeric value %s", a.Name, v)
						continue
					}
					if f < m.Min || f > m.Max {
						report(subject, "property %s value %g outside range [%g, %g]", a.Name, f, m.Min, m.Max)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// ApplyDefaults fills absent properties that carry a default modifier,
// returning the number of properties set. Defaults parse with the
// attribute's data type (falling back to the raw string).
func ApplyDefaults(g *pg.Graph, s *supermodel.Schema) int {
	set := 0
	for _, n := range g.Nodes() {
		typ := mostSpecificSchemaLabel(s, n.Labels)
		if typ == "" {
			continue
		}
		for _, a := range s.EffectiveAttributes(typ) {
			if _, has := n.Props[a.Name]; has {
				continue
			}
			for _, m := range a.Modifiers {
				if d, ok := m.(supermodel.DefaultModifier); ok {
					n.Props[a.Name] = parseTyped(d.Value, a.Type)
					set++
				}
			}
		}
	}
	return set
}

func parseTyped(raw string, t supermodel.DataType) value.Value {
	switch t {
	case supermodel.Int, supermodel.Float, supermodel.Bool:
		if v, err := value.ParseLiteral(raw); err == nil {
			return v
		}
	}
	return value.Str(raw)
}

// mostSpecificSchemaLabel picks the node's deepest schema label: the one
// none of the node's other labels descend from.
func mostSpecificSchemaLabel(s *supermodel.Schema, labels []string) string {
	var candidates []string
	for _, l := range labels {
		if s.Node(l) != nil {
			candidates = append(candidates, l)
		}
	}
	best := ""
	for _, c := range candidates {
		isAncestor := false
		for _, o := range candidates {
			if o == c {
				continue
			}
			for _, anc := range s.Ancestors(o) {
				if anc == c {
					isAncestor = true
				}
			}
		}
		if !isAncestor && best == "" {
			best = c
		}
	}
	return best
}
