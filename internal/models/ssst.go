package models

import (
	"fmt"
	"sort"

	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// This file implements SSST, the Super-Schema to Schema Translator
// (Algorithm 1 of the paper): given a super-schema S stored in a graph
// dictionary and a mapping M(M) selected from the repository, it runs
// S⁻ ← Reason(S, M(M).Eliminate) and S′ ← Reason(S⁻, M(M).Copy), both as
// MetaLog programs compiled by MTV and executed by the Vadalog engine over
// the dictionary itself.

// TranslateResult reports the outcome of one SSST run. The intermediate
// super-schema S⁻ (MidOID) and the target schema S′ (TargetOID) are
// materialized into the same dictionary graph.
type TranslateResult struct {
	Mapping Mapping
	Dict    *pg.Graph

	EliminateStats metalog.MaterializeStats
	CopyStats      metalog.MaterializeStats
	EliminateRun   vadalog.RunStats
	CopyRun        vadalog.RunStats
}

// Translate runs Algorithm 1 over the dictionary.
func Translate(dict *pg.Graph, m Mapping, opts vadalog.Options) (*TranslateResult, error) {
	elimProg, err := metalog.Parse(m.Eliminate)
	if err != nil {
		return nil, fmt.Errorf("models: parsing Eliminate program: %w", err)
	}
	copyProg, err := metalog.Parse(m.Copy)
	if err != nil {
		return nil, fmt.Errorf("models: parsing Copy program: %w", err)
	}
	res := &TranslateResult{Mapping: m, Dict: dict}

	// Line 4: S⁻ ← Reason(S, M(M).Eliminate).
	elim, err := metalog.Reason(elimProg, dict, opts)
	if err != nil {
		return nil, fmt.Errorf("models: Eliminate phase: %w", err)
	}
	res.EliminateStats = elim.Materialize
	res.EliminateRun = elim.RunStats

	// Line 5: S′ ← Reason(S⁻, M(M).Copy).
	cp, err := metalog.Reason(copyProg, dict, opts)
	if err != nil {
		return nil, fmt.Errorf("models: Copy phase: %w", err)
	}
	res.CopyStats = cp.Materialize
	res.CopyRun = cp.RunStats
	return res, nil
}

// --- Typed views over translated schemas -------------------------------

// PropView is one property/field of a translated schema.
type PropView struct {
	Name          string
	DataType      string
	IsOpt         bool
	IsID          bool
	IsIntensional bool
	Unique        bool
}

// PGNodeView is a node type of a translated property-graph schema: the set
// of labels it carries (multi-label tagging accumulates ancestor types) and
// its properties.
type PGNodeView struct {
	Labels        []string // sorted
	Properties    []PropView
	IsIntensional bool
}

// PrimaryLabel returns the most specific label under multi-label tagging:
// by construction it is the label carried by no other node view that has a
// superset label set; for practical purposes the first label unique to this
// node, falling back to the first label.
func (n PGNodeView) PrimaryLabel(all []PGNodeView) string {
	counts := map[string]int{}
	for _, o := range all {
		for _, l := range o.Labels {
			counts[l]++
		}
	}
	for _, l := range n.Labels {
		if counts[l] == 1 {
			return l
		}
	}
	if len(n.Labels) > 0 {
		return n.Labels[0]
	}
	return ""
}

// PGRelView is a relationship type of a translated property-graph schema.
type PGRelView struct {
	Name          string
	FromLabels    []string
	ToLabels      []string
	Properties    []PropView
	IsIntensional bool
}

// PGSchemaView is the typed view of a property-graph schema stored in the
// dictionary (Figure 6).
type PGSchemaView struct {
	Nodes []PGNodeView
	Rels  []PGRelView
}

// NodeByLabel returns the node view carrying the given label, preferring
// the one for which the label is primary (smallest label set).
func (v *PGSchemaView) NodeByLabel(label string) *PGNodeView {
	var best *PGNodeView
	for i := range v.Nodes {
		n := &v.Nodes[i]
		has := false
		for _, l := range n.Labels {
			if l == label {
				has = true
			}
		}
		if !has {
			continue
		}
		if best == nil || len(n.Labels) < len(best.Labels) {
			best = n
		}
	}
	return best
}

// RelsByName returns the relationship views with the given name.
func (v *PGSchemaView) RelsByName(name string) []PGRelView {
	var out []PGRelView
	for _, r := range v.Rels {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

func readProps(dict pg.View, owner pg.OID, edgeLabel string) []PropView {
	var out []PropView
	for _, e := range dict.Out(owner) {
		if e.Label != edgeLabel {
			continue
		}
		p := dict.Node(e.To)
		pv := PropView{
			Name:          p.Props["name"].S,
			DataType:      p.Props["dataType"].S,
			IsOpt:         p.Props["isOpt"].B,
			IsID:          p.Props["isId"].B,
			IsIntensional: e.Props["isIntensional"].B,
		}
		for _, me := range dict.Out(p.ID) {
			if me.Label == "HAS_MODIFIER" && dict.Node(me.To).HasLabel("UniquePropertyModifier") {
				pv.Unique = true
			}
		}
		out = append(out, pv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func inSchema(n *pg.Node, oid int64) bool {
	so, ok := n.Props["schemaOID"]
	return ok && so.K == value.Int && so.I == oid
}

// ReadPGSchema builds the typed view of the property-graph schema with the
// given schemaOID from the dictionary.
func ReadPGSchema(dict pg.View, oid int64) (*PGSchemaView, error) {
	v := &PGSchemaView{}
	labelsOf := map[pg.OID][]string{}
	for _, n := range dict.NodesByLabel("Node") {
		if !inSchema(n, oid) {
			continue
		}
		var labels []string
		for _, e := range dict.Out(n.ID) {
			if e.Label == "HAS_LABEL" {
				labels = append(labels, dict.Node(e.To).Props["name"].S)
			}
		}
		sort.Strings(labels)
		if len(labels) == 0 {
			return nil, fmt.Errorf("models: PG node %d has no labels", n.ID)
		}
		labelsOf[n.ID] = labels
		v.Nodes = append(v.Nodes, PGNodeView{
			Labels:        labels,
			Properties:    readProps(dict, n.ID, "HAS_PROPERTY"),
			IsIntensional: n.Props["isIntensional"].B,
		})
	}
	for _, r := range dict.NodesByLabel("Relationship") {
		if !inSchema(r, oid) {
			continue
		}
		rv := PGRelView{
			Name:          r.Props["name"].S,
			Properties:    readProps(dict, r.ID, "R_HAS_PROPERTY"),
			IsIntensional: r.Props["isIntensional"].B,
		}
		for _, e := range dict.Out(r.ID) {
			switch e.Label {
			case "R_FROM":
				rv.FromLabels = labelsOf[e.To]
			case "R_TO":
				rv.ToLabels = labelsOf[e.To]
			}
		}
		v.Rels = append(v.Rels, rv)
	}
	sortPGView(v)
	return v, nil
}

// FKView is a foreign key of a translated relational schema.
type FKView struct {
	Name           string
	TargetRelation string
	SourceFields   []string // sorted
}

// RelationView is a relation of a translated relational schema (Figure 8):
// its own fields plus foreign keys referencing other relations.
type RelationView struct {
	Name          string
	Fields        []PropView
	ForeignKeys   []FKView
	IsIntensional bool
}

// Field returns the field with the given name, or nil.
func (r *RelationView) Field(name string) *PropView {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return &r.Fields[i]
		}
	}
	return nil
}

// RelationalSchemaView is the typed view of a relational schema stored in
// the dictionary.
type RelationalSchemaView struct {
	Relations []RelationView
}

// Relation returns the relation with the given name, or nil.
func (v *RelationalSchemaView) Relation(name string) *RelationView {
	for i := range v.Relations {
		if v.Relations[i].Name == name {
			return &v.Relations[i]
		}
	}
	return nil
}

// ReadRelationalSchema builds the typed view of the relational schema with
// the given schemaOID from the dictionary.
func ReadRelationalSchema(dict pg.View, oid int64) (*RelationalSchemaView, error) {
	v := &RelationalSchemaView{}
	relName := map[pg.OID]string{}
	preds := dict.NodesByLabel("Predicate")
	for _, p := range preds {
		if !inSchema(p, oid) {
			continue
		}
		for _, e := range dict.Out(p.ID) {
			if e.Label == "HAS_RELATION" {
				relName[p.ID] = dict.Node(e.To).Props["name"].S
			}
		}
		if relName[p.ID] == "" {
			return nil, fmt.Errorf("models: predicate %d has no relation", p.ID)
		}
	}
	for _, p := range preds {
		if !inSchema(p, oid) {
			continue
		}
		rv := RelationView{
			Name:          relName[p.ID],
			Fields:        readProps(dict, p.ID, "HAS_FIELD"),
			IsIntensional: p.Props["isIntensional"].B,
		}
		// Foreign keys whose FK_FROM is this predicate.
		for _, fk := range dict.NodesByLabel("ForeignKey") {
			if !inSchema(fk, oid) {
				continue
			}
			var fromPred, toPred pg.OID
			for _, e := range dict.Out(fk.ID) {
				switch e.Label {
				case "FK_FROM":
					fromPred = e.To
				case "FK_TO":
					toPred = e.To
				}
			}
			if fromPred != p.ID {
				continue
			}
			fkv := FKView{Name: fk.Props["name"].S, TargetRelation: relName[toPred]}
			for _, e := range dict.Out(fk.ID) {
				if e.Label == "HAS_SOURCE_FIELD" {
					fkv.SourceFields = append(fkv.SourceFields, dict.Node(e.To).Props["name"].S)
				}
			}
			sort.Strings(fkv.SourceFields)
			rv.ForeignKeys = append(rv.ForeignKeys, fkv)
		}
		sort.Slice(rv.ForeignKeys, func(i, j int) bool { return rv.ForeignKeys[i].Name < rv.ForeignKeys[j].Name })
		v.Relations = append(v.Relations, rv)
	}
	sort.Slice(v.Relations, func(i, j int) bool { return v.Relations[i].Name < v.Relations[j].Name })
	return v, nil
}
