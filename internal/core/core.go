// Package core is the KGModel framework facade: the public API a data
// engineer uses to follow the paper's methodology end to end.
//
//  1. Design the extensional component as a super-schema — programmatically
//     with the supermodel builder or in the textual GSL dialect (Section 3).
//  2. Attach the intensional components as MetaLog programs (Section 4).
//  3. Deploy: SSST translates the super-schema into each target model and
//     the emitters render the enforceable artifacts — SQL DDL, PG
//     constraints, RDF-S (Section 5).
//  4. Materialize: Algorithm 2 loads a data instance into the instance
//     super-constructs, runs the intensional components through MTV and the
//     Vadalog engine, and flushes the derived knowledge back (Section 6).
//
// A minimal session:
//
//	kg, _ := core.NewKG(supermodel.CompanyKG())
//	kg.AddIntensional("control", finance.ControlProgram())
//	ddl, _ := kg.DeploySQL()
//	res, _ := kg.Materialize(core.PGData(data), 1, vadalog.Options{})
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/gsl"
	"repro/internal/instance"
	"repro/internal/metalog"
	"repro/internal/models"
	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

// KG is a designed Knowledge Graph: the super-schema of its extensional
// component, the graph dictionary storing it, and the MetaLog programs of
// its intensional component.
type KG struct {
	Schema *supermodel.Schema
	Dict   *instance.Dictionary

	intensional []namedProgram
}

type namedProgram struct {
	name string
	prog *metalog.Program
}

// NewKG validates the super-schema and stores it into a fresh graph
// dictionary.
func NewKG(schema *supermodel.Schema) (*KG, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	dict, err := instance.NewDictionary(schema)
	if err != nil {
		return nil, err
	}
	return &KG{Schema: schema, Dict: dict}, nil
}

// ParseGSL builds a KG from a textual GSL design.
func ParseGSL(src string) (*KG, error) {
	schema, err := gsl.Parse(src)
	if err != nil {
		return nil, err
	}
	return NewKG(schema)
}

// AddIntensional registers a MetaLog program as part of the KG's
// intensional component. Programs are applied in registration order by
// Materialize, so later programs may read the labels earlier ones derive
// (the stratification the paper's staging discussion assumes).
//
// Registration is model-aware (a §1 desideratum: the intensional language
// "should refer to the schema constructs"): the program is compiled against
// the designed schema's catalog, and any label or property the schema does
// not declare is rejected — typos surface at design time, not at
// materialization.
func (kg *KG) AddIntensional(name, metalogSrc string) error {
	prog, err := metalog.Parse(metalogSrc)
	if err != nil {
		return fmt.Errorf("core: intensional component %q: %w", name, err)
	}
	cat := instance.CatalogFromSchema(kg.Schema)
	before := catalogSnapshot(cat)
	if _, err := metalog.Translate(prog, cat); err != nil {
		return fmt.Errorf("core: intensional component %q: %w", name, err)
	}
	if unknown := catalogDiff(before, cat); len(unknown) > 0 {
		return fmt.Errorf("core: intensional component %q references constructs outside the schema: %s",
			name, strings.Join(unknown, ", "))
	}
	kg.intensional = append(kg.intensional, namedProgram{name: name, prog: prog})
	return nil
}

// catalogSnapshot captures the catalog's construct inventory as
// "kind label.prop" keys.
func catalogSnapshot(cat *metalog.Catalog) map[string]bool {
	out := map[string]bool{}
	for l, props := range cat.NodeProps {
		out["node "+l] = true
		for _, p := range props {
			out["node "+l+"."+p] = true
		}
	}
	for l, props := range cat.EdgeProps {
		out["edge "+l] = true
		for _, p := range props {
			out["edge "+l+"."+p] = true
		}
	}
	return out
}

// catalogDiff lists the constructs present after translation that the
// schema-derived snapshot did not contain, sorted.
func catalogDiff(before map[string]bool, cat *metalog.Catalog) []string {
	var out []string
	for k := range catalogSnapshot(cat) {
		if !before[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// IntensionalComponents lists the registered program names in order.
func (kg *KG) IntensionalComponents() []string {
	out := make([]string, len(kg.intensional))
	for i, np := range kg.intensional {
		out[i] = np.name
	}
	return out
}

// IntensionalPrograms returns the registered programs in order, parallel to
// IntensionalComponents — the parsed form, for analysis tools (kgreason
// -explain). Callers must not mutate the programs.
func (kg *KG) IntensionalPrograms() []*metalog.Program {
	out := make([]*metalog.Program, len(kg.intensional))
	for i, np := range kg.intensional {
		out[i] = np.prog
	}
	return out
}

// GSL renders the design in the textual GSL dialect.
func (kg *KG) GSL() string { return gsl.Serialize(kg.Schema) }

// DOT renders the GSL diagram as Graphviz DOT, applying the Γ_SM graphemes.
func (kg *KG) DOT() string { return gsl.RenderDOT(kg.Schema) }

// Text renders a terminal-friendly GSL diagram.
func (kg *KG) Text() string { return gsl.RenderText(kg.Schema) }

// Translate runs SSST (Algorithm 1) against the given target model and
// strategy, on a scratch copy of the dictionary, and returns the result.
// OIDs for S⁻ and S′ are allocated above the schema OID.
func (kg *KG) Translate(model, strategy string) (*models.TranslateResult, error) {
	m, err := models.SelectMapping(kg.Schema.OID, kg.Schema.OID+1, kg.Schema.OID+2, model, strategy)
	if err != nil {
		return nil, err
	}
	dict := supermodel.NewDictionary()
	if err := supermodel.ToDictionary(kg.Schema, dict); err != nil {
		return nil, err
	}
	return models.Translate(dict, m, vadalog.Options{})
}

// DeploySQL translates to the relational model and renders the DDL.
func (kg *KG) DeploySQL() (string, error) {
	res, err := kg.Translate("relational", "")
	if err != nil {
		return "", err
	}
	view, err := models.ReadRelationalSchema(res.Dict, res.Mapping.TargetOID)
	if err != nil {
		return "", err
	}
	return models.EmitSQL(view), nil
}

// DeployPGConstraints translates to the property-graph model (multi-label
// strategy) and renders the constraint statements.
func (kg *KG) DeployPGConstraints() (string, error) {
	res, err := kg.Translate("pg", "multi-label")
	if err != nil {
		return "", err
	}
	view, err := models.ReadPGSchema(res.Dict, res.Mapping.TargetOID)
	if err != nil {
		return "", err
	}
	return models.EmitPGConstraints(view), nil
}

// DeployRDFS renders the RDF-Schema document (the RDF-S model supports the
// super-model natively, so no elimination is needed).
func (kg *KG) DeployRDFS() string { return models.EmitRDFS(kg.Schema) }

// DeployCSVLayout renders the CSV serialization layout.
func (kg *KG) DeployCSVLayout() string { return models.EmitCSVLayout(kg.Schema) }

// Data wraps a data instance of any supported model for Materialize.
type Data = instance.Source

// PGData wraps a property-graph data instance. Any pg.View serves as the
// read side of Algorithm 2; pass a mutable *pg.Graph when Materialize should
// apply the derived components back to the data graph (frozen snapshots are
// materialized without write-back).
func PGData(g pg.View) Data { return instance.PGSource{Data: g} }

// RelationalData wraps a relational data instance.
func RelationalData(tables map[string][]instance.Row) Data {
	return instance.RelationalSource{Inst: &instance.RelationalInstance{Tables: tables}}
}

// RetryingData wraps a data instance so transient load failures are retried
// under the policy, with the dictionary rolled back between attempts (see
// instance.RetryingSource).
func RetryingData(src Data, policy fault.RetryPolicy) Data {
	return instance.RetryingSource{Inner: src, Policy: policy}
}

// pgData unwraps a source down to its mutable property graph, looking
// through any RetryingSource wrapper — a retried PG instance still needs the
// derived components applied back to its data graph. A PGSource holding an
// immutable view (e.g. a pg.Frozen snapshot) reports false: there is no
// graph to write back into.
func pgData(src Data) (*pg.Graph, bool) {
	if rs, ok := src.(instance.RetryingSource); ok {
		src = rs.Inner
	}
	pgSrc, ok := src.(instance.PGSource)
	if !ok {
		return nil, false
	}
	mg, ok := pgSrc.Data.(*pg.Graph)
	return mg, ok
}

// MaterializeResult is the outcome of materializing all registered
// intensional components over one data instance.
type MaterializeResult struct {
	// Steps holds one Algorithm 2 result per registered program, in order.
	Steps []*instance.Result
}

// Totals sums the derived knowledge across steps.
func (r *MaterializeResult) Totals() (entities, edges, props int) {
	for _, s := range r.Steps {
		entities += len(s.Derived.NewEntities)
		edges += len(s.Derived.NewEdges)
		props += s.Derived.UpdatedProps
	}
	return
}

// Materialize runs Algorithm 2 once per registered intensional component,
// in registration order, against the same data instance. For PG sources the
// derived components are applied back to the data graph after each step, so
// subsequent programs see the previously derived knowledge — the batch
// accumulation strategy of Section 6.
//
// Under vadalog.BestEffort (Options.OnFault) a step that fails mid-reasoning
// with a *vadalog.PartialError still contributes its salvaged prefix: the
// result is returned non-nil alongside the wrapped error, with the partial
// step included. Every other error returns a nil result.
func (kg *KG) Materialize(src Data, instanceOID int64, opts vadalog.Options) (*MaterializeResult, error) {
	out := &MaterializeResult{}
	pgSrc, isPG := pgData(src)
	for i, np := range kg.intensional {
		// Each step gets a fresh dictionary so instance constructs do not
		// accumulate across steps (the staging-area flush of Section 6).
		dict, err := instance.NewDictionary(kg.Schema)
		if err != nil {
			return nil, err
		}
		res, err := instance.Materialize(dict, src, np.prog, instanceOID+int64(i), opts)
		if err != nil {
			// Best-effort salvage (Options.OnFault): the step failed
			// mid-reasoning but flushed the sound prefix of its saturation.
			// Keep the step and stop — later programs must not read an
			// unsaturated prefix — returning the accumulated result next to
			// the error so callers can report or persist what materialized.
			var pe *vadalog.PartialError
			wrapped := fmt.Errorf("core: materializing %q: %w", np.name, err)
			if !errors.As(err, &pe) || res == nil {
				return nil, wrapped
			}
			out.Steps = append(out.Steps, res)
			if isPG {
				if _, aerr := res.ApplyToPG(pgSrc); aerr != nil {
					return nil, fmt.Errorf("core: applying %q: %w", np.name, aerr)
				}
			}
			return out, wrapped
		}
		out.Steps = append(out.Steps, res)
		if isPG {
			if _, err := res.ApplyToPG(pgSrc); err != nil {
				return nil, fmt.Errorf("core: applying %q: %w", np.name, err)
			}
		}
	}
	return out, nil
}

// Models lists the target models of the mapping repository, sorted.
func Models() []string {
	ms := models.Models()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}
