package core

import (
	"strings"
	"testing"

	"repro/internal/finance"
	"repro/internal/fingraph"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
)

func TestNewKGValidates(t *testing.T) {
	bad := supermodel.NewSchema("bad", 1)
	bad.MustAddNode("NoID", false, supermodel.Attr("x", supermodel.String))
	if _, err := NewKG(bad); err == nil {
		t.Fatal("invalid schema must be rejected")
	}
	if _, err := NewKG(supermodel.CompanyKG()); err != nil {
		t.Fatal(err)
	}
}

func TestParseGSLFacade(t *testing.T) {
	kg, err := ParseGSL(`schema mini oid 9 {
		node Company { code: string @id }
		intensional edge CONTROLS (Company 0..N -> 0..N Company)
		edge OWNS (Company 0..N -> 0..N Company) { percentage: float }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kg.GSL(), "intensional edge CONTROLS") {
		t.Errorf("GSL round trip lost constructs:\n%s", kg.GSL())
	}
	if !strings.Contains(kg.DOT(), "digraph") {
		t.Error("DOT rendering broken")
	}
}

func TestAddIntensionalValidatesEagerly(t *testing.T) {
	kg, err := NewKG(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.AddIntensional("broken", `(x: Business -> (x).`); err == nil {
		t.Error("syntax errors must surface at registration")
	}
	if err := kg.AddIntensional("recursive-star", `
		(x: Business) ([: CONTROLS])+ (y: Business) -> (x) [c: CONTROLS] (y).
	`); err == nil {
		t.Error("decidability violations must surface at registration")
	}
	if err := kg.AddIntensional("control", finance.ControlProgram()); err != nil {
		t.Fatal(err)
	}
	if got := kg.IntensionalComponents(); len(got) != 1 || got[0] != "control" {
		t.Errorf("components = %v", got)
	}
}

func TestDeployArtifacts(t *testing.T) {
	kg, err := NewKG(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	ddl, err := kg.DeploySQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ddl, `CREATE TABLE "Business"`) {
		t.Errorf("DDL missing Business table")
	}
	constraints, err := kg.DeployPGConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(constraints, "fiscalCode IS UNIQUE") {
		t.Errorf("constraints missing uniqueness")
	}
	if !strings.Contains(kg.DeployRDFS(), "rdfs:subClassOf") {
		t.Error("RDF-S missing subclass links")
	}
	if !strings.Contains(kg.DeployCSVLayout(), "business.csv") {
		t.Error("CSV layout missing")
	}
}

// TestEndToEndPipeline is the full paper workflow: design, register the
// intensional components, deploy, then materialize over a synthetic data
// instance — ownership compaction first, then control over the derived OWNS
// edges.
func TestEndToEndPipeline(t *testing.T) {
	kg, err := NewKG(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.AddIntensional("ownership", finance.OwnershipProgram()); err != nil {
		t.Fatal(err)
	}
	if err := kg.AddIntensional("control", finance.ControlProgram()); err != nil {
		t.Fatal(err)
	}

	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(60, 11))
	data := topo.CompanyKG()
	res, err := kg.Materialize(PGData(data), 1000, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	_, edges, props := res.Totals()
	if edges == 0 {
		t.Error("no intensional edges derived")
	}
	if props == 0 {
		t.Error("numberOfStakeholders never set")
	}
	if len(data.EdgesByLabel("OWNS")) == 0 {
		t.Error("OWNS not materialized into the data graph")
	}
	// Control must exceed the trivial self-loops (60 businesses).
	if n := len(data.EdgesByLabel("CONTROLS")); n <= 60 {
		t.Errorf("CONTROLS edges = %d, want more than the self-loops", n)
	}
}

func TestModelsList(t *testing.T) {
	got := Models()
	want := map[string]bool{"csv": true, "pg": true, "rdfs": true, "relational": true}
	if len(got) != len(want) {
		t.Fatalf("models = %v", got)
	}
	for _, m := range got {
		if !want[m] {
			t.Errorf("unexpected model %q", m)
		}
	}
}

func TestAddIntensionalModelAwareness(t *testing.T) {
	kg, err := NewKG(supermodel.CompanyKG())
	if err != nil {
		t.Fatal(err)
	}
	// Typo'd label.
	if err := kg.AddIntensional("typo-label", `(x: Bussiness) -> (x) [c: CONTROLS] (x).`); err == nil {
		t.Error("unknown label must be rejected")
	} else if !strings.Contains(err.Error(), "Bussiness") {
		t.Errorf("error should name the construct: %v", err)
	}
	// Typo'd property.
	if err := kg.AddIntensional("typo-prop", `(x: Business; sharholdingCapital: c) -> (x) [o: OWNS; percentage: c] (x).`); err == nil {
		t.Error("unknown property must be rejected")
	}
	// Correct constructs pass.
	if err := kg.AddIntensional("ok", `(x: Business; shareholdingCapital: c) -> (x) [o: OWNS; percentage: c] (x).`); err != nil {
		t.Errorf("schema-conformant program rejected: %v", err)
	}
}
