package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/pg"
	"repro/internal/value"
)

// The E23 durability benchmarks (EXPERIMENTS.md): /mutate latency with the
// write-ahead log disabled and under each fsync policy. make bench-wal
// captures them — mean plus p50/p99 custom metrics — into BENCH_wal.json,
// and runs the overhead gate below.

// benchServer builds a mutate-ready server; walSync == "" disables the WAL.
func benchServer(b testing.TB, walSync string) *Server {
	b.Helper()
	cfg := Config{CacheSize: 0}
	if walSync != "" {
		cfg.WALDir = filepath.Join(b.TempDir(), "wal")
		cfg.WALSync = walSync
	}
	s, err := NewFromGraph(cfg, benchBase(b))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchBase is mutateBase for testing.TB callers (benchmarks included).
func benchBase(b testing.TB) *pg.Graph {
	b.Helper()
	g := pg.New()
	a := g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("c1")})
	c := g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("c2")})
	if _, err := g.AddEdge(a.ID, c.ID, "OWNS", pg.Props{"percentage": value.FloatV(0.6)}); err != nil {
		b.Fatal(err)
	}
	return g
}

// benchMutate drives one /mutate batch through the handler and returns its
// latency; the fiscal code keeps every batch valid and unique.
func benchMutate(b testing.TB, s *Server, i int) time.Duration {
	b.Helper()
	body := fmt.Sprintf(`{"ops":[{"op":"add_node","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"b%d"}}}]}`, i)
	req := httptest.NewRequest(http.MethodPost, "/mutate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(w, req)
	lat := time.Since(start)
	if w.Code != http.StatusOK {
		b.Fatalf("mutate %d: %d %s", i, w.Code, w.Body.String())
	}
	return lat
}

func reportPercentiles(b *testing.B, lats []time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		b.ReportMetric(float64(lats[n/2]), "p50-ns/op")
		b.ReportMetric(float64(lats[n*99/100]), "p99-ns/op")
	}
}

func BenchmarkWALMutate(b *testing.B) {
	for _, tc := range []struct{ name, sync string }{
		{"nowal", ""},
		{"always", "always"},
		{"interval", "interval"},
		{"off", "off"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := benchServer(b, tc.sync)
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lats = append(lats, benchMutate(b, s, i))
			}
			b.StopTimer()
			reportPercentiles(b, lats)
		})
	}
}

// TestWALIntervalOverheadGate is the E23 acceptance gate: the "interval"
// fsync policy must cost less than 10% over running with no WAL at all.
// It compares the median of per-round median latencies and retries, since a
// single noisy round on shared hardware proves nothing. Run by make
// bench-wal (RUN_WAL_GATE=1); skipped otherwise.
func TestWALIntervalOverheadGate(t *testing.T) {
	if os.Getenv("RUN_WAL_GATE") == "" {
		t.Skip("overhead gate runs under make bench-wal (set RUN_WAL_GATE=1)")
	}
	const (
		rounds   = 5
		batches  = 200
		attempts = 4
	)
	medianLat := func(sync string) time.Duration {
		meds := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			s := benchServer(t, sync)
			lats := make([]time.Duration, 0, batches)
			for i := 0; i < batches; i++ {
				lats = append(lats, benchMutate(t, s, i))
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			meds = append(meds, lats[len(lats)/2])
		}
		sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
		return meds[len(meds)/2]
	}

	var base, withWAL time.Duration
	for attempt := 1; attempt <= attempts; attempt++ {
		base, withWAL = medianLat(""), medianLat("interval")
		ratio := float64(withWAL) / float64(base)
		t.Logf("attempt %d: no-WAL %v, interval %v (ratio %.3f)", attempt, base, withWAL, ratio)
		if ratio < 1.10 {
			return
		}
	}
	t.Fatalf("interval-mode WAL overhead exceeds 10%%: no-WAL %v, interval %v", base, withWAL)
}
