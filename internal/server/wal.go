package server

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/metalog"
	"repro/internal/overlay"
	"repro/internal/wal"
)

// Durability wiring: when Config.WALDir is set, every applied /mutate batch
// is appended to a write-ahead log (internal/wal) *before* the generation
// swap that acknowledges it, and startup replays the log over the base
// snapshot — so a crash loses nothing a client was told succeeded. The order
// of operations pins the invariant both ways:
//
//   - Mutate: validate (apply to a clone) → WAL append (+fsync under the
//     "always" policy) → swap. A failed append rejects the batch with the
//     serving snapshot untouched, so rejected and logged are mutually
//     exclusive; a crash between append and swap re-applies the batch on
//     restart, which the client never saw acknowledged — acknowledged ⊆
//     logged ⊆ replayed.
//   - Compact: swap first, then checkpoint the WAL against the persisted
//     snapshot (only when CompactDir wrote one). A failed or half-finished
//     truncation is harmless: the untruncated log replays over the old base
//     to the same merged view.
//   - Reload: checkpoint *before* the swap, because a reload abandons the
//     logged batches by design — the new source file is the state. A failed
//     checkpoint fails the reload; otherwise a crash after the swap would
//     replay pre-reload batches over the post-reload source.
//
// Recovery is synchronous inside New by default. With WALAsyncRecovery the
// server starts serving immediately and answers every endpoint — /healthz
// included — with a typed 503 "recovering" until the replay lands, giving
// operators a readiness probe over a real listener.

// openWAL opens the configured log and stashes the recovery state for
// replayWAL.
func (s *Server) openWAL() error {
	pol, every, err := wal.ParseSyncPolicy(s.cfg.walSyncSpec())
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	l, rec, err := wal.Open(s.cfg.WALDir, wal.Options{Sync: pol, SyncEvery: every})
	if err != nil {
		return fmt.Errorf("server: opening wal: %w", err)
	}
	s.wal, s.walRec = l, rec
	return nil
}

func (c Config) walSyncSpec() string {
	if c.WALSync == "" {
		return "always"
	}
	return c.WALSync
}

// walBase resolves the path the recovered log replays over: the checkpoint
// base when one was stamped (a compacted snapshot or a reloaded source),
// otherwise the originally configured source.
func (s *Server) walBase() string {
	if s.walRec != nil && s.walRec.Checkpoint != nil && s.walRec.Checkpoint.Base != "" {
		return s.walRec.Checkpoint.Base
	}
	return s.cfg.Source
}

// replayWAL reconstructs the pre-crash overlay: every recovered batch is
// decoded from the /mutate wire format and applied over the base snapshot,
// then the query substrate is rebuilt once. The recovered snapshot replaces
// the base under the same generation — no reader has observed either while
// recovery gates the endpoints. Clears the recovering flag on success.
func (s *Server) replayWAL() error {
	rec := s.walRec
	s.walRec = nil
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if rec != nil && len(rec.Records) > 0 {
		sn := s.current()
		ov := overlay.New(sn.frozen)
		for _, r := range rec.Records {
			ops, err := overlay.DecodeOps(r.Payload)
			if err != nil {
				return fmt.Errorf("server: wal replay: batch %d: %w", r.Seq, err)
			}
			if _, err := ov.Apply(ops); err != nil {
				return fmt.Errorf("server: wal replay: batch %d: %w", r.Seq, err)
			}
			mWALReplayed.Add(1)
		}
		cat := metalog.FromGraph(ov)
		db, err := metalog.ExtractFacts(ov, cat)
		if err != nil {
			return fmt.Errorf("server: wal replay: %w", err)
		}
		s.snap.Store(&snapshot{gen: sn.gen, frozen: sn.frozen, view: ov, ov: ov,
			cat: cat, db: db, pstats: sn.pstats, build: sn.build, file: sn.file})
	}
	s.recovering.Store(false)
	return nil
}

// finishRecovery is the WALAsyncRecovery path: replay in the background and
// open the readiness gate. A replay failure leaves the server permanently
// unready (503 with the failure), never serving a state that is missing
// acknowledged writes.
func (s *Server) finishRecovery() {
	defer s.recoverWG.Done()
	if err := s.replayWAL(); err != nil {
		msg := err.Error()
		s.recoverFail.Store(&msg)
	}
}

// errRecovering is the typed 503 every endpoint answers while (or after a
// failed) WAL replay.
func (s *Server) errRecovering() *apiError {
	if p := s.recoverFail.Load(); p != nil {
		return &apiError{Status: http.StatusServiceUnavailable, Code: "recovering",
			Message: "write-ahead log recovery failed: " + *p}
	}
	return &apiError{Status: http.StatusServiceUnavailable, Code: "recovering",
		Message: "replaying write-ahead log; retry shortly"}
}

// notRecovering gates the direct (non-HTTP) write APIs during an async
// replay, so a caller cannot interleave a mutation with the reconstruction.
func (s *Server) notRecovering() error {
	if s.recovering.Load() {
		return errors.New("server: write-ahead log recovery in progress")
	}
	return nil
}

// WALStats returns the live log's statistics; zero when no WAL is configured.
func (s *Server) WALStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}
