package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/metalog"
	"repro/internal/overlay"
	"repro/internal/snapfile"
)

// The live write path. POST /mutate applies a batch of graph mutations on
// top of the serving snapshot without rebuilding it: the batch goes into an
// LSM-style overlay (internal/overlay) cloned from the current generation,
// the extracted fact database is maintained incrementally from the batch's
// net diff (metalog.ApplyFactsDelta), and the whole unit — merged view,
// catalog, fact database — swaps in as the next generation. A failed batch
// mutates only the clone, so the serving generation is untouched, bit for
// bit.
//
// Compaction folds the overlay into a fresh frozen snapshot (the PR 4
// two-phase discipline): the overlay's Compact reuses the freeze pipeline,
// the catalog and facts are re-inferred from the new base, and optionally
// the generation is persisted as a binary snapshot file. A failed compaction
// keeps serving the overlay generation; generations never move backwards.

// ErrBadMutation wraps batch-validation failures (unknown refs, duplicate
// handles, removed targets…) so the handler can answer 400 instead of 500.
var ErrBadMutation = errors.New("invalid mutation batch")

// maxMutateOps bounds a single batch independently of the body cap.
const maxMutateOps = 10_000

// MutateInfo describes an applied mutation batch.
type MutateInfo struct {
	Generation   uint64 `json:"generation"`
	Ops          int    `json:"ops"`
	AddedNodes   int    `json:"addedNodes"`
	AddedEdges   int    `json:"addedEdges"`
	RemovedNodes int    `json:"removedNodes"`
	RemovedEdges int    `json:"removedEdges"`
	ChangedNodes int    `json:"changedNodes"`
	// Incremental reports whether the fact database was maintained from the
	// batch's diff; false means the batch grew the catalog (a new label or
	// property column) and facts were re-extracted in full.
	Incremental bool `json:"incremental"`
	Nodes       int  `json:"nodes"`
	Edges       int  `json:"edges"`
	// DeltaSize is the overlay's delta entry count after the batch — the
	// compaction debt of the serving generation.
	DeltaSize int `json:"deltaSize"`
	// Assigned maps the batch's add_node handles to their assigned OIDs, so
	// clients can address created nodes in later batches.
	Assigned map[string]int64 `json:"assigned,omitempty"`
	// Seq is the batch's write-ahead-log sequence number; 0 when the server
	// runs without a WAL.
	Seq uint64 `json:"seq,omitempty"`
}

// Mutate applies a batch of mutations as the next serving generation. The
// batch is atomic at the serving boundary: it is applied to a clone of the
// current overlay (or a fresh one over the frozen base), and only a fully
// applied batch swaps in. On any error — validation, injected faults,
// contained panics — the serving snapshot is untouched.
func (s *Server) Mutate(ops []overlay.Op) (MutateInfo, error) {
	if err := s.notRecovering(); err != nil {
		mMutateErr.Add(1)
		return MutateInfo{}, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sn := s.current()
	var next *snapshot
	var info MutateInfo
	err := fault.Guard("server/mutate", func() error {
		ov := sn.ov
		if ov == nil {
			ov = overlay.New(sn.frozen)
		} else {
			ov = ov.Clone()
		}
		diff, err := ov.Apply(ops)
		if err != nil {
			if errors.Is(err, fault.ErrInjected) {
				return err
			}
			return fmt.Errorf("%w: %v", ErrBadMutation, err)
		}
		db, ok := metalog.ApplyFactsDelta(sn.db, sn.cat, diff)
		cat := sn.cat
		if !ok {
			// The batch needs columns the lineage catalog lacks: re-infer
			// the catalog from the merged view and re-extract in full.
			mMutateFallback.Add(1)
			cat = metalog.FromGraph(ov)
			if db, err = metalog.ExtractFacts(ov, cat); err != nil {
				return err
			}
		}
		next = &snapshot{frozen: sn.frozen, view: ov, ov: ov, cat: cat, db: db,
			pstats: sn.pstats, build: sn.build, file: sn.file}
		info = MutateInfo{
			Ops:          len(ops),
			AddedNodes:   len(diff.AddedNodes),
			AddedEdges:   len(diff.AddedEdges),
			RemovedNodes: len(diff.RemovedNodes),
			RemovedEdges: len(diff.RemovedEdges),
			ChangedNodes: len(diff.ChangedNodes),
			Incremental:  ok,
			DeltaSize:    ov.DeltaSize(),
		}
		if len(diff.Handles) > 0 {
			info.Assigned = make(map[string]int64, len(diff.Handles))
			for name, id := range diff.Handles {
				info.Assigned[name] = int64(id)
			}
		}
		if s.wal != nil {
			// Log before the swap acknowledges: under the "always" policy
			// Append fsyncs, so an acknowledged batch survives any crash. A
			// failed append rejects the batch (the clone is discarded) —
			// rejected and logged are mutually exclusive, on both sides.
			payload, err := overlay.EncodeOps(ops)
			if err != nil {
				return err
			}
			seq, err := s.wal.Append(payload)
			if err != nil {
				mWALAppendErr.Add(1)
				return fmt.Errorf("server: wal append: %w", err)
			}
			info.Seq = seq
			mWALAppends.Add(1)
		}
		return nil
	})
	if err != nil {
		mMutateErr.Add(1)
		return MutateInfo{}, err
	}
	next.gen = sn.gen + 1
	s.snap.Store(next)
	mMutates.Add(1)
	info.Generation = next.gen
	info.Nodes = next.view.NumNodes()
	info.Edges = next.view.NumEdges()
	return info, nil
}

// CompactInfo describes a compaction outcome.
type CompactInfo struct {
	Generation uint64 `json:"generation"`
	// Compacted is false when there was no overlay to fold (no-op; the
	// generation is unchanged).
	Compacted bool   `json:"compacted"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Path      string `json:"path,omitempty"`
}

// Compact folds the live overlay into a fresh frozen generation, re-deriving
// the query substrate from the new base and (when Config.CompactDir is set)
// persisting it as a binary snapshot file. Without a pending overlay it is a
// no-op. On failure the overlay generation keeps serving.
func (s *Server) Compact() (CompactInfo, error) {
	if err := s.notRecovering(); err != nil {
		mCompactErr.Add(1)
		return CompactInfo{}, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sn := s.current()
	if sn.ov == nil {
		return CompactInfo{Generation: sn.gen, Compacted: false,
			Nodes: sn.view.NumNodes(), Edges: sn.view.NumEdges()}, nil
	}
	var next *snapshot
	var path string
	err := fault.Guard("server/compact", func() error {
		frozen, err := sn.ov.Compact()
		if err != nil {
			return err
		}
		ns, err := s.buildFromFrozen(frozen, nil)
		if err != nil {
			return err
		}
		if dir := s.cfg.CompactDir; dir != "" {
			path = filepath.Join(dir, fmt.Sprintf("gen%06d.snap", sn.gen+1))
			info := snapfile.BuildInfo{Tool: "kgserve", Source: "compaction",
				CreatedUnix: time.Now().Unix()}
			if _, err := snapfile.WriteFile(path, frozen, info); err != nil {
				return err
			}
		}
		next = ns
		return nil
	})
	if err != nil {
		mCompactErr.Add(1)
		return CompactInfo{}, err
	}
	next.gen = sn.gen + 1
	s.snap.Store(next)
	mCompacts.Add(1)
	if s.wal != nil && path != "" {
		// The compacted generation is durable on disk: checkpoint the WAL
		// against it so recovery replays only post-snapshot batches. Failure
		// is tolerated — serving continues and the untruncated log replays
		// idempotently over the OLD base to the same merged view.
		if _, cerr := s.wal.Checkpoint(path); cerr != nil {
			mWALCheckpointErr.Add(1)
		} else {
			mWALCheckpoints.Add(1)
		}
	}
	return CompactInfo{Generation: next.gen, Compacted: true,
		Nodes: next.view.NumNodes(), Edges: next.view.NumEdges(), Path: path}, nil
}

// startAutoCompact launches the periodic compactor when configured.
func (s *Server) startAutoCompact() {
	if s.cfg.CompactEvery <= 0 {
		return
	}
	s.compactStop = make(chan struct{})
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		t := time.NewTicker(s.cfg.CompactEvery)
		defer t.Stop()
		for {
			select {
			case <-s.compactStop:
				return
			case <-t.C:
				// Failures are counted (compact_errors) and retried on the
				// next tick; the overlay generation keeps serving meanwhile.
				s.Compact() //nolint:errcheck
			}
		}
	}()
}

// stopAutoCompact stops and joins the compactor; safe to call repeatedly.
func (s *Server) stopAutoCompact() {
	if s.compactStop == nil {
		return
	}
	s.compactOnce.Do(func() { close(s.compactStop) })
	s.compactWG.Wait()
}

// ---- request decoding ----

// mutateRequest is the POST /mutate envelope; the ops array uses the wire
// format owned by internal/overlay (EncodeOps/DecodeOps) — the same bytes
// the write-ahead log records and replays.
type mutateRequest struct {
	Ops json.RawMessage `json:"ops"`
}

// decodeMutateRequest parses and validates a /mutate body. It is the surface
// FuzzDecodeMutation exercises: any input must produce either a batch or a
// typed error, never a panic. Deep validation (ref resolution, duplicate
// handles) stays in overlay.Apply, against live state.
func decodeMutateRequest(body []byte) ([]overlay.Op, *apiError) {
	var req mutateRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, errBadRequest("decoding mutate request: %v", err)
	}
	if len(req.Ops) == 0 {
		return nil, errBadRequest("empty mutation batch")
	}
	ops, err := overlay.DecodeOps(req.Ops)
	if err != nil {
		return nil, errBadRequest("decoding mutate request: %v", err)
	}
	if len(ops) == 0 {
		return nil, errBadRequest("empty mutation batch")
	}
	if len(ops) > maxMutateOps {
		return nil, errBadRequest("batch exceeds %d ops", maxMutateOps)
	}
	return ops, nil
}

// ---- endpoint handlers ----

func (s *Server) handleMutate(r *http.Request) (*apiResult, *apiError) {
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	ops, aerr := decodeMutateRequest(body)
	if aerr != nil {
		return nil, aerr
	}
	info, err := s.Mutate(ops)
	if err != nil {
		if errors.Is(err, ErrBadMutation) {
			return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_mutation", Message: err.Error()}
		}
		e := mapEvalError(err)
		if e.Code == "eval_failed" {
			e.Code = "mutate_failed"
		}
		return nil, e
	}
	out, aerr := marshalBody(info)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: info.Generation}, nil
}

func (s *Server) handleCompact(*http.Request) (*apiResult, *apiError) {
	info, err := s.Compact()
	if err != nil {
		e := mapEvalError(err)
		if e.Code == "eval_failed" {
			e.Code = "compact_failed"
		}
		return nil, e
	}
	out, aerr := marshalBody(info)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: info.Generation}, nil
}
