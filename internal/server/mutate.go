package server

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/metalog"
	"repro/internal/overlay"
	"repro/internal/pg"
	"repro/internal/snapfile"
)

// The live write path. POST /mutate applies a batch of graph mutations on
// top of the serving snapshot without rebuilding it: the batch goes into an
// LSM-style overlay (internal/overlay) cloned from the current generation,
// the extracted fact database is maintained incrementally from the batch's
// net diff (metalog.ApplyFactsDelta), and the whole unit — merged view,
// catalog, fact database — swaps in as the next generation. A failed batch
// mutates only the clone, so the serving generation is untouched, bit for
// bit.
//
// Compaction folds the overlay into a fresh frozen snapshot (the PR 4
// two-phase discipline): the overlay's Compact reuses the freeze pipeline,
// the catalog and facts are re-inferred from the new base, and optionally
// the generation is persisted as a binary snapshot file. A failed compaction
// keeps serving the overlay generation; generations never move backwards.

// ErrBadMutation wraps batch-validation failures (unknown refs, duplicate
// handles, removed targets…) so the handler can answer 400 instead of 500.
var ErrBadMutation = errors.New("invalid mutation batch")

// maxMutateOps bounds a single batch independently of the body cap.
const maxMutateOps = 10_000

// MutateInfo describes an applied mutation batch.
type MutateInfo struct {
	Generation   uint64 `json:"generation"`
	Ops          int    `json:"ops"`
	AddedNodes   int    `json:"addedNodes"`
	AddedEdges   int    `json:"addedEdges"`
	RemovedNodes int    `json:"removedNodes"`
	RemovedEdges int    `json:"removedEdges"`
	ChangedNodes int    `json:"changedNodes"`
	// Incremental reports whether the fact database was maintained from the
	// batch's diff; false means the batch grew the catalog (a new label or
	// property column) and facts were re-extracted in full.
	Incremental bool `json:"incremental"`
	Nodes       int  `json:"nodes"`
	Edges       int  `json:"edges"`
	// DeltaSize is the overlay's delta entry count after the batch — the
	// compaction debt of the serving generation.
	DeltaSize int `json:"deltaSize"`
	// Assigned maps the batch's add_node handles to their assigned OIDs, so
	// clients can address created nodes in later batches.
	Assigned map[string]int64 `json:"assigned,omitempty"`
}

// Mutate applies a batch of mutations as the next serving generation. The
// batch is atomic at the serving boundary: it is applied to a clone of the
// current overlay (or a fresh one over the frozen base), and only a fully
// applied batch swaps in. On any error — validation, injected faults,
// contained panics — the serving snapshot is untouched.
func (s *Server) Mutate(ops []overlay.Op) (MutateInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sn := s.current()
	var next *snapshot
	var info MutateInfo
	err := fault.Guard("server/mutate", func() error {
		ov := sn.ov
		if ov == nil {
			ov = overlay.New(sn.frozen)
		} else {
			ov = ov.Clone()
		}
		diff, err := ov.Apply(ops)
		if err != nil {
			if errors.Is(err, fault.ErrInjected) {
				return err
			}
			return fmt.Errorf("%w: %v", ErrBadMutation, err)
		}
		db, ok := metalog.ApplyFactsDelta(sn.db, sn.cat, diff)
		cat := sn.cat
		if !ok {
			// The batch needs columns the lineage catalog lacks: re-infer
			// the catalog from the merged view and re-extract in full.
			mMutateFallback.Add(1)
			cat = metalog.FromGraph(ov)
			if db, err = metalog.ExtractFacts(ov, cat); err != nil {
				return err
			}
		}
		next = &snapshot{frozen: sn.frozen, view: ov, ov: ov, cat: cat, db: db,
			build: sn.build, file: sn.file}
		info = MutateInfo{
			Ops:          len(ops),
			AddedNodes:   len(diff.AddedNodes),
			AddedEdges:   len(diff.AddedEdges),
			RemovedNodes: len(diff.RemovedNodes),
			RemovedEdges: len(diff.RemovedEdges),
			ChangedNodes: len(diff.ChangedNodes),
			Incremental:  ok,
			DeltaSize:    ov.DeltaSize(),
		}
		if len(diff.Handles) > 0 {
			info.Assigned = make(map[string]int64, len(diff.Handles))
			for name, id := range diff.Handles {
				info.Assigned[name] = int64(id)
			}
		}
		return nil
	})
	if err != nil {
		mMutateErr.Add(1)
		return MutateInfo{}, err
	}
	next.gen = sn.gen + 1
	s.snap.Store(next)
	mMutates.Add(1)
	info.Generation = next.gen
	info.Nodes = next.view.NumNodes()
	info.Edges = next.view.NumEdges()
	return info, nil
}

// CompactInfo describes a compaction outcome.
type CompactInfo struct {
	Generation uint64 `json:"generation"`
	// Compacted is false when there was no overlay to fold (no-op; the
	// generation is unchanged).
	Compacted bool   `json:"compacted"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Path      string `json:"path,omitempty"`
}

// Compact folds the live overlay into a fresh frozen generation, re-deriving
// the query substrate from the new base and (when Config.CompactDir is set)
// persisting it as a binary snapshot file. Without a pending overlay it is a
// no-op. On failure the overlay generation keeps serving.
func (s *Server) Compact() (CompactInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sn := s.current()
	if sn.ov == nil {
		return CompactInfo{Generation: sn.gen, Compacted: false,
			Nodes: sn.view.NumNodes(), Edges: sn.view.NumEdges()}, nil
	}
	var next *snapshot
	var path string
	err := fault.Guard("server/compact", func() error {
		frozen, err := sn.ov.Compact()
		if err != nil {
			return err
		}
		ns, err := s.buildFromFrozen(frozen, nil)
		if err != nil {
			return err
		}
		if dir := s.cfg.CompactDir; dir != "" {
			path = filepath.Join(dir, fmt.Sprintf("gen%06d.snap", sn.gen+1))
			info := snapfile.BuildInfo{Tool: "kgserve", Source: "compaction",
				CreatedUnix: time.Now().Unix()}
			if _, err := snapfile.WriteFile(path, frozen, info); err != nil {
				return err
			}
		}
		next = ns
		return nil
	})
	if err != nil {
		mCompactErr.Add(1)
		return CompactInfo{}, err
	}
	next.gen = sn.gen + 1
	s.snap.Store(next)
	mCompacts.Add(1)
	return CompactInfo{Generation: next.gen, Compacted: true,
		Nodes: next.view.NumNodes(), Edges: next.view.NumEdges(), Path: path}, nil
}

// startAutoCompact launches the periodic compactor when configured.
func (s *Server) startAutoCompact() {
	if s.cfg.CompactEvery <= 0 {
		return
	}
	s.compactStop = make(chan struct{})
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		t := time.NewTicker(s.cfg.CompactEvery)
		defer t.Stop()
		for {
			select {
			case <-s.compactStop:
				return
			case <-t.C:
				// Failures are counted (compact_errors) and retried on the
				// next tick; the overlay generation keeps serving meanwhile.
				s.Compact() //nolint:errcheck
			}
		}
	}()
}

// stopAutoCompact stops and joins the compactor; safe to call repeatedly.
func (s *Server) stopAutoCompact() {
	if s.compactStop == nil {
		return
	}
	s.compactOnce.Do(func() { close(s.compactStop) })
	s.compactWG.Wait()
}

// ---- request decoding ----

// jsonRef names a node either by OID or by the in-batch handle of an
// add_node op.
type jsonRef struct {
	ID   int64  `json:"id,omitempty"`
	Name string `json:"name,omitempty"`
}

func (j *jsonRef) toRef() overlay.Ref {
	if j == nil {
		return overlay.Ref{}
	}
	return overlay.Ref{ID: pg.OID(j.ID), Name: j.Name}
}

// jsonOp is one mutation of the POST /mutate payload. Fields are per-kind:
//
//	{"op":"add_node","name":"h","labels":["Company"],"props":{...}}
//	{"op":"add_edge","from":{"id":3},"to":{"name":"h"},"label":"owns","props":{...}}
//	{"op":"remove_node","node":{"id":3}}
//	{"op":"remove_edge","edge":7}
//	{"op":"set_node_prop","node":{"id":3},"key":"name","value":{"kind":"string","str":"x"}}
//	{"op":"del_node_prop","node":{"id":3},"key":"name"}
//	{"op":"add_label","node":{"id":3},"label":"Bank"}
//
// Property values use the same kind-tagged encoding as the graph JSON files.
type jsonOp struct {
	Op     string                  `json:"op"`
	Name   string                  `json:"name,omitempty"`
	Labels []string                `json:"labels,omitempty"`
	Label  string                  `json:"label,omitempty"`
	Props  map[string]pg.JSONValue `json:"props,omitempty"`
	Node   *jsonRef                `json:"node,omitempty"`
	From   *jsonRef                `json:"from,omitempty"`
	To     *jsonRef                `json:"to,omitempty"`
	Edge   int64                   `json:"edge,omitempty"`
	Key    string                  `json:"key,omitempty"`
	Value  *pg.JSONValue           `json:"value,omitempty"`
}

type mutateRequest struct {
	Ops []jsonOp `json:"ops"`
}

func (j *jsonOp) toOp() (overlay.Op, error) {
	op := overlay.Op{
		Kind:  overlay.OpKind(j.Op),
		Name:  j.Name,
		Label: j.Label,
		Node:  j.Node.toRef(),
		From:  j.From.toRef(),
		To:    j.To.toRef(),
		Edge:  pg.OID(j.Edge),
		Key:   j.Key,
	}
	switch op.Kind {
	case overlay.OpAddNode, overlay.OpAddEdge, overlay.OpRemoveNode,
		overlay.OpRemoveEdge, overlay.OpDelNodeProp, overlay.OpAddLabel:
	case overlay.OpSetNodeProp:
		if j.Value == nil {
			return overlay.Op{}, errors.New("set_node_prop needs a value")
		}
	default:
		return overlay.Op{}, fmt.Errorf("unknown op kind %q", j.Op)
	}
	op.Labels = append([]string(nil), j.Labels...)
	if len(j.Props) > 0 {
		op.Props = make(pg.Props, len(j.Props))
		for k, jv := range j.Props {
			v, err := pg.DecodeValue(jv)
			if err != nil {
				return overlay.Op{}, fmt.Errorf("prop %q: %w", k, err)
			}
			op.Props[k] = v
		}
	}
	if j.Value != nil {
		v, err := pg.DecodeValue(*j.Value)
		if err != nil {
			return overlay.Op{}, fmt.Errorf("value: %w", err)
		}
		op.Value = v
	}
	return op, nil
}

// decodeMutateRequest parses and validates a /mutate body. It is the surface
// FuzzDecodeMutation exercises: any input must produce either a batch or a
// typed error, never a panic. Deep validation (ref resolution, duplicate
// handles) stays in overlay.Apply, against live state.
func decodeMutateRequest(body []byte) ([]overlay.Op, *apiError) {
	var req mutateRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, errBadRequest("decoding mutate request: %v", err)
	}
	if len(req.Ops) == 0 {
		return nil, errBadRequest("empty mutation batch")
	}
	if len(req.Ops) > maxMutateOps {
		return nil, errBadRequest("batch exceeds %d ops", maxMutateOps)
	}
	ops := make([]overlay.Op, len(req.Ops))
	for i := range req.Ops {
		op, err := req.Ops[i].toOp()
		if err != nil {
			return nil, errBadRequest("op %d: %v", i, err)
		}
		ops[i] = op
	}
	return ops, nil
}

// ---- endpoint handlers ----

func (s *Server) handleMutate(r *http.Request) (*apiResult, *apiError) {
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	ops, aerr := decodeMutateRequest(body)
	if aerr != nil {
		return nil, aerr
	}
	info, err := s.Mutate(ops)
	if err != nil {
		if errors.Is(err, ErrBadMutation) {
			return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_mutation", Message: err.Error()}
		}
		e := mapEvalError(err)
		if e.Code == "eval_failed" {
			e.Code = "mutate_failed"
		}
		return nil, e
	}
	out, aerr := marshalBody(info)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: info.Generation}, nil
}

func (s *Server) handleCompact(*http.Request) (*apiResult, *apiError) {
	info, err := s.Compact()
	if err != nil {
		e := mapEvalError(err)
		if e.Code == "eval_failed" {
			e.Code = "compact_failed"
		}
		return nil, e
	}
	out, aerr := marshalBody(info)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: info.Generation}, nil
}
