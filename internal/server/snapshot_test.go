package server

// Serving-layer coverage for binary snapshot files (internal/snapfile):
// cold-starting from a snapshot must be observationally identical to
// parsing the JSON it was built from, /reload must accept snapshot paths
// (sniffed by magic, no flag), corruption and injected faults must leave
// the serving generation untouched, and /stats must surface the snapshot's
// provenance header.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/fingraph"
	"repro/internal/pg"
	"repro/internal/snapfile"
	"repro/internal/testutil"
)

const snapTestQuery = `{"query":"(x: Business; fiscalCode: c) [: OWNS] (y: Business)"}`

// snapFixture writes the same graph as kg.json and kg.snap and returns the
// two paths.
func snapFixture(t *testing.T) (jsonPath, snapPath string) {
	t.Helper()
	dir := t.TempDir()
	jsonPath = filepath.Join(dir, "kg.json")
	snapPath = filepath.Join(dir, "kg.snap")
	g := fingraph.GenerateTopology(fingraph.DefaultConfig(10, 3)).Shareholding()
	f, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	info := snapfile.BuildInfo{Tool: "server-test", Source: "fingraph", SourceHash: "f00f", Params: map[string]string{"companies": "10"}}
	if _, err := snapfile.WriteFile(snapPath, g.Freeze(), info); err != nil {
		t.Fatal(err)
	}
	return jsonPath, snapPath
}

// TestServeFromSnapshotFile: a server cold-started from the binary
// snapshot answers queries byte-identically to one that parsed the JSON,
// and its /stats carries the provenance header.
func TestServeFromSnapshotFile(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	jsonPath, snapPath := snapFixture(t)

	jsonSrv, err := New(Config{Source: jsonPath})
	if err != nil {
		t.Fatal(err)
	}
	snapSrv, err := New(Config{Source: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	if snapSrv.Generation() != 1 {
		t.Fatalf("generation %d, want 1", snapSrv.Generation())
	}

	jw := postJSON(t, jsonSrv.Handler(), "/query", snapTestQuery)
	sw := postJSON(t, snapSrv.Handler(), "/query", snapTestQuery)
	if jw.Code != http.StatusOK || sw.Code != http.StatusOK {
		t.Fatalf("query status %d / %d", jw.Code, sw.Code)
	}
	if jw.Body.String() != sw.Body.String() {
		t.Fatal("snapshot-served query differs from JSON-served query")
	}

	stw := getPath(t, snapSrv.Handler(), "/stats")
	if stw.Code != http.StatusOK {
		t.Fatalf("stats status %d", stw.Code)
	}
	var stats struct {
		Build *snapfile.BuildInfo `json:"build"`
		Nodes int                 `json:"nodes"`
	}
	if err := json.Unmarshal(stw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Build == nil || stats.Build.Tool != "server-test" || stats.Build.Params["companies"] != "10" {
		t.Fatalf("stats build info missing or wrong: %+v", stats.Build)
	}

	// JSON-loaded generations must NOT grow a build field: the existing
	// /stats output stays bit-identical.
	jstw := getPath(t, jsonSrv.Handler(), "/stats")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(jstw.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["build"]; has {
		t.Fatal("JSON-loaded /stats sprouted a build field")
	}
}

// TestReloadIntoSnapshotFile: /reload with a .snap path swaps generations
// exactly as a JSON reload does — same data, one generation forward,
// byte-identical query results, provenance visible afterwards.
func TestReloadIntoSnapshotFile(t *testing.T) {
	jsonPath, snapPath := snapFixture(t)
	s, err := New(Config{Source: jsonPath})
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s.Handler(), "/query", snapTestQuery)
	if w.Code != http.StatusOK {
		t.Fatalf("baseline query: %d", w.Code)
	}
	baseline := w.Body.String()

	rw := postJSON(t, s.Handler(), "/reload", `{"path":"`+snapPath+`"}`)
	if rw.Code != http.StatusOK {
		t.Fatalf("reload into snapshot: %d %s", rw.Code, rw.Body.String())
	}
	if s.Generation() != 2 {
		t.Fatalf("generation %d, want 2", s.Generation())
	}
	if qw := postJSON(t, s.Handler(), "/query", snapTestQuery); qw.Body.String() != baseline {
		t.Fatal("query drifted across JSON→snapshot reload of identical data")
	}
	var stats struct {
		Build *snapfile.BuildInfo `json:"build"`
	}
	stw := getPath(t, s.Handler(), "/stats")
	if err := json.Unmarshal(stw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Build == nil || stats.Build.Tool != "server-test" {
		t.Fatalf("post-reload stats lack provenance: %+v", stats.Build)
	}
}

// TestReloadCorruptSnapshotKeepsServing: a corrupt snapshot file — flipped
// payload byte, truncation, zeroed checksum — fails /reload with a typed
// error while the old generation keeps serving bit-identically.
func TestReloadCorruptSnapshotKeepsServing(t *testing.T) {
	_, snapPath := snapFixture(t)
	s, err := New(Config{Source: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	baseline := postJSON(t, s.Handler(), "/query", snapTestQuery).Body.String()
	genBefore := s.Generation()

	good, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	corrupt := func(name string, mutate func([]byte) []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	paths := []string{
		corrupt("flipped.snap", func(b []byte) []byte { b[len(b)/2] ^= 0xFF; return b }),
		corrupt("truncated.snap", func(b []byte) []byte { return b[:len(b)*2/3] }),
		corrupt("nocrc.snap", func(b []byte) []byte { b[60] ^= 0xFF; return b }),
	}
	for _, p := range paths {
		rw := postJSON(t, s.Handler(), "/reload", `{"path":"`+p+`"}`)
		if rw.Code != http.StatusInternalServerError {
			t.Fatalf("%s: reload status %d, want 500", p, rw.Code)
		}
		var typed struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(rw.Body.Bytes(), &typed); err != nil || typed.Error.Code == "" {
			t.Fatalf("%s: reload error is not typed JSON: %s", p, rw.Body.String())
		}
		if s.Generation() != genBefore {
			t.Fatalf("%s: generation moved on failed reload", p)
		}
		if qw := postJSON(t, s.Handler(), "/query", snapTestQuery); qw.Body.String() != baseline {
			t.Fatalf("%s: serving snapshot disturbed by failed reload", p)
		}
	}
}

// TestSnapshotMmapFaultStillServes: an injected fault at snapfile/mmap
// must not fail a snapshot load anywhere in the serving stack — the
// copying loader takes over transparently, for both cold start and reload.
func TestSnapshotMmapFaultStillServes(t *testing.T) {
	defer fault.Reset()
	_, snapPath := snapFixture(t)
	if err := fault.Arm("snapfile/mmap", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Source: snapPath})
	if err != nil {
		t.Fatalf("cold start must survive mmap faults: %v", err)
	}
	baseline := postJSON(t, s.Handler(), "/query", snapTestQuery).Body.String()
	if rw := postJSON(t, s.Handler(), "/reload", `{}`); rw.Code != http.StatusOK {
		t.Fatalf("reload must survive mmap faults: %d", rw.Code)
	}
	if fault.Fired("snapfile/mmap") == 0 {
		t.Fatal("mmap site never fired")
	}
	if qw := postJSON(t, s.Handler(), "/query", snapTestQuery); qw.Body.String() != baseline {
		t.Fatal("fallback loader served different data")
	}
}

// TestSnapshotColdStartMatchesFreeze is the deep equivalence check behind
// the serving tests: the snapshot file reconstructs the exact frozen view
// the JSON path builds.
func TestSnapshotColdStartMatchesFreeze(t *testing.T) {
	jsonPath, snapPath := snapFixture(t)
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pg.ReadJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapfile.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	want, got := g.Freeze(), snap.Frozen
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", want.NumNodes(), want.NumEdges(), got.NumNodes(), got.NumEdges())
	}
	wj, gj := jsonOf(t, want), jsonOf(t, got)
	if wj != gj {
		t.Fatal("snapshot view diverges from frozen view")
	}
}

func jsonOf(t *testing.T, f *pg.Frozen) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Thaw().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
