package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fingraph"
	"repro/internal/testutil"
)

// TestServeSoak is the concurrency soak: 64 goroutines issuing a mix of
// query, stats, health and reload requests against one server (run it under
// -race; make test-race reruns it twice). Invariants:
//
//   - every response is 200 or a typed 429 from admission control;
//   - every 200 query body is bit-identical to the single-threaded
//     reference for that pattern — cache hits equal misses in results, and
//     snapshot swaps mid-traffic never surface a torn or mixed result;
//   - the generation only moves forward;
//   - no goroutines leak once the storm is over.
func TestServeSoak(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()

	dir := t.TempDir()
	path := filepath.Join(dir, "kg.json")
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(30, 21))
	g := topo.Shareholding()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	queries := []string{
		`(x: Business; fiscalCode: c) [: OWNS; percentage: p] (y: Business), p > 0.5`,
		`(x: PhysicalPerson; fiscalCode: c) [: OWNS] (y: Business)`,
		`(x: Entity) [: OWNS; percentage: p] (y: Business), p > 0.9`,
		`(x: Business; fiscalCode: c)`,
	}

	// Reference bodies from an isolated, cache-less server over the same
	// data: the ground truth every concurrent response must match.
	ref, err := NewFromGraph(Config{CacheSize: 0, MaxInflight: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		w := postJSON(t, ref.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, q))
		if w.Code != http.StatusOK {
			t.Fatalf("reference query failed %d: %s", w.Code, w.Body.String())
		}
		want[q] = w.Body.String()
	}

	s, err := New(Config{Source: path, CacheSize: 32, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 64
	const opsPerG = 30
	var (
		wg                   sync.WaitGroup
		hits, misses, shed   atomic.Int64
		queriesOK, reloadsOK atomic.Int64
		lastGen              atomic.Uint64
	)
	lastGen.Store(s.Generation())
	errs := make(chan string, goroutines)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	before := CountersSnapshot()

	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for op := 0; op < opsPerG; op++ {
				// Deterministic mixed schedule: mostly queries, some stats
				// and health probes, an occasional reload.
				switch (gi + op) % 16 {
				case 0:
					if gi%8 == 0 { // 8 reloading goroutines
						w := postJSON(t, s.Handler(), "/reload", `{}`)
						if w.Code != http.StatusOK {
							fail("reload failed %d: %s", w.Code, w.Body.String())
							return
						}
						reloadsOK.Add(1)
					}
				case 1:
					w := getPath(t, s.Handler(), "/stats")
					if w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
						fail("stats %d: %s", w.Code, w.Body.String())
						return
					}
				case 2:
					w := getPath(t, s.Handler(), "/healthz")
					if w.Code != http.StatusOK {
						fail("healthz %d", w.Code)
						return
					}
				default:
					q := queries[(gi+op)%len(queries)]
					w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, q))
					switch w.Code {
					case http.StatusTooManyRequests:
						shed.Add(1)
					case http.StatusOK:
						queriesOK.Add(1)
						if got := w.Body.String(); got != want[q] {
							fail("response drifted under concurrency for %q", q)
							return
						}
						switch w.Header().Get("X-KG-Cache") {
						case "hit":
							hits.Add(1)
						case "miss":
							misses.Add(1)
						default:
							fail("missing cache header")
							return
						}
					default:
						fail("query %d: %s", w.Code, w.Body.String())
						return
					}
				}
				// Generation must never go backwards as observed by any
				// single goroutine.
				for {
					prev := lastGen.Load()
					cur := s.Generation()
					if cur < prev {
						fail("generation went backwards: %d -> %d", prev, cur)
						return
					}
					if cur == prev || lastGen.CompareAndSwap(prev, cur) {
						break
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if queriesOK.Load() == 0 {
		t.Fatal("no query ever succeeded")
	}
	if misses.Load() == 0 {
		t.Error("no cache miss observed")
	}
	if hits.Load() == 0 {
		t.Error("no cache hit observed — cache never warmed under soak")
	}
	t.Logf("soak: %d ok queries (%d hits, %d misses), %d shed, %d reloads, final generation %d",
		queriesOK.Load(), hits.Load(), misses.Load(), shed.Load(), reloadsOK.Load(), s.Generation())

	// The process-wide counters moved consistently with what we observed.
	delta := CountersSnapshot()
	if delta.CacheHits-before.CacheHits < hits.Load() {
		t.Errorf("counter hits %d < observed %d", delta.CacheHits-before.CacheHits, hits.Load())
	}
	if delta.Reloads-before.Reloads < reloadsOK.Load() {
		t.Errorf("counter reloads %d < observed %d", delta.Reloads-before.Reloads, reloadsOK.Load())
	}
}
