package server

import (
	"container/list"
	"context"
	"net/http"
	"sync"

	"repro/internal/metalog"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/vadalog"
)

// The serving side of the cost-based query planner (internal/plan,
// DESIGN.md §15): compiled queries — parsed, translated and planned against
// the generation's statistics catalog — are cached per (generation,
// canonical pattern), so the per-request work of the hot path is the engine
// run alone. A snapshot swap invalidates implicitly, exactly like the
// result cache: stale generations stop being asked for and age out.

// planKey identifies one compiled plan.
type planKey struct {
	gen   uint64
	query string
}

// planCache is a mutex-guarded LRU of metalog.Prepared entries. Prepared
// queries are immutable and safe for concurrent use, so hits share one
// entry across requests.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	items map[planKey]*list.Element
}

type planEntry struct {
	key  planKey
	prep *metalog.Prepared
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{cap: capacity}
	if capacity > 0 {
		c.order = list.New()
		c.items = make(map[planKey]*list.Element, capacity)
	}
	return c
}

func (c *planCache) get(k planKey) (*metalog.Prepared, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).prep, true
}

func (c *planCache) put(k planKey, p *metalog.Prepared) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*planEntry).prep = p
		return
	}
	c.items[k] = c.order.PushFront(&planEntry{key: k, prep: p})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
	}
}

func (c *planCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// preparedFor returns the compiled plan for a pattern under a snapshot,
// consulting the plan cache. The second return reports the cache
// disposition ("hit" or "miss").
func (s *Server) preparedFor(sn *snapshot, query string) (*metalog.Prepared, string, error) {
	key := planKey{gen: sn.gen, query: canonicalQuery(query)}
	if p, ok := s.plans.get(key); ok {
		mPlanHits.Add(1)
		return p, "hit", nil
	}
	mPlanMisses.Add(1)
	// The catalog clone is private to the Prepared: translation extends it
	// with the query-result layout.
	p, err := metalog.PrepareQuery(sn.cat.Clone(), query, sn.pstats)
	if err != nil {
		return nil, "miss", err
	}
	s.plans.put(key, p)
	return p, "miss", nil
}

// plannerSection is the live planner block of the /stats document: the
// server-side plan-cache counters plus the process-wide obs planner
// counters (planned vs unplanned runs, fallbacks, estimated-vs-actual row
// totals).
type plannerSection struct {
	Enabled       bool  `json:"enabled"`
	CacheCapacity int   `json:"cacheCapacity"`
	CacheEntries  int   `json:"cacheEntries"`
	CacheHits     int64 `json:"cacheHits"`
	CacheMisses   int64 `json:"cacheMisses"`
	PlannedRuns   int64 `json:"plannedRuns"`
	UnplannedRuns int64 `json:"unplannedRuns"`
	Fallbacks     int64 `json:"fallbacks"`
	EstRows       int64 `json:"estRows"`
	ActualRows    int64 `json:"actualRows"`
}

func (s *Server) plannerStats() *plannerSection {
	oc := obs.Counters()
	return &plannerSection{
		Enabled:       !s.cfg.PlannerOff,
		CacheCapacity: s.cfg.PlanCacheSize,
		CacheEntries:  s.plans.len(),
		CacheHits:     mPlanHits.Load(),
		CacheMisses:   mPlanMisses.Load(),
		PlannedRuns:   oc.PlannedRuns,
		UnplannedRuns: oc.UnplannedRuns,
		Fallbacks:     oc.PlanFallbacks,
		EstRows:       oc.PlanEstRows,
		ActualRows:    oc.PlanActualRows,
	}
}

// explainResponse is the /explain body: the plan chosen for the pattern
// under the current generation, its cost estimates, and — with "run": true —
// the actual row count next to the estimate.
type explainResponse struct {
	Generation    uint64     `json:"generation"`
	Planner       string     `json:"planner"` // "on" or "off"
	Planned       bool       `json:"planned"`
	Fallback      string     `json:"fallback,omitempty"`
	EstimatedRows float64    `json:"estimatedRows"`
	ActualRows    *int       `json:"actualRows,omitempty"`
	Plan          *plan.Plan `json:"plan,omitempty"`
}

func (s *Server) handleExplain(r *http.Request) (*apiResult, *apiError) {
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	req, aerr := decodeExplainRequest(body)
	if aerr != nil {
		return nil, aerr
	}
	sn := s.current()
	if s.cfg.PlannerOff {
		out, aerr := marshalBody(explainResponse{
			Generation: sn.gen, Planner: "off",
			Fallback: "planner disabled by configuration",
		})
		if aerr != nil {
			return nil, aerr
		}
		return &apiResult{body: out, gen: sn.gen}, nil
	}
	prep, disposition, err := s.preparedFor(sn, req.Query)
	if err != nil {
		return nil, mapEvalError(err)
	}
	resp := explainResponse{
		Generation:    sn.gen,
		Planner:       "on",
		Planned:       prep.Planned(),
		EstimatedRows: prep.EstimatedRows(),
		Plan:          prep.Plan(),
	}
	if resp.Plan != nil {
		resp.Fallback = resp.Plan.Fallback
	}
	if req.Run {
		ctx := r.Context()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		opts := vadalog.Options{
			Workers:  s.cfg.EngineWorkers,
			MaxFacts: s.cfg.MaxFacts,
			OnFault:  s.cfg.OnFault,
		}
		rows, err := s.queryRows(ctx, sn, prep, req.Query, opts)
		if err != nil {
			return nil, mapEvalError(err)
		}
		n := len(rows)
		resp.ActualRows = &n
	}
	out, aerr := marshalBody(resp)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: sn.gen, cache: disposition}, nil
}
