package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestExplainEndpoint covers the /explain surface: a planned pattern reports
// its cost estimates and per-rule orders, "run": true adds the actual row
// count next to the estimate, and a planner-off server answers with a typed
// "off" document instead of an error.
func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/explain", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", w.Code, w.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Planner != "on" || !resp.Planned || resp.Plan == nil || !resp.Plan.Planned {
		t.Fatalf("unexpected explain response: %s", w.Body.String())
	}
	if resp.EstimatedRows <= 0 {
		t.Fatalf("planned pattern must carry a positive estimate, got %v", resp.EstimatedRows)
	}
	if len(resp.Plan.Rules) == 0 || len(resp.Plan.Rules[0].Literals) == 0 {
		t.Fatalf("plan carries no per-rule literals: %s", w.Body.String())
	}
	if resp.ActualRows != nil {
		t.Fatal("actualRows must be absent without run:true")
	}

	// run:true executes the planned program and reports the actual count.
	w = postJSON(t, s.Handler(), "/explain", fmt.Sprintf(`{"query":%q,"run":true}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("explain run: %d %s", w.Code, w.Body.String())
	}
	resp = explainResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ActualRows == nil || *resp.ActualRows != 1 {
		t.Fatalf("actualRows = %v, want 1", resp.ActualRows)
	}

	// Decoder errors stay typed, like /query.
	w = postJSON(t, s.Handler(), "/explain", `{"query":"((("}`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_query" {
		t.Fatalf("bad pattern: %d %s", w.Code, w.Body.String())
	}

	off := newTestServer(t, Config{PlannerOff: true})
	w = postJSON(t, off.Handler(), "/explain", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("explain off: %d %s", w.Code, w.Body.String())
	}
	resp = explainResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Planner != "off" || resp.Planned || resp.Plan != nil {
		t.Fatalf("planner-off explain: %s", w.Body.String())
	}
}

// TestPlanCacheHitMiss proves compiled plans are cached per (generation,
// pattern): the first /query compiles (miss), repeats hit, and a mutation —
// a new generation — forces a recompile.
func TestPlanCacheHitMiss(t *testing.T) {
	s, err := NewFromGraph(Config{}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	const q = `(x: Business; fiscalCode: c)`
	before := CountersSnapshot()

	queryRows(t, s, q)
	queryRows(t, s, q)
	queryRows(t, s, q)
	d := CountersSnapshot()
	if miss := d.PlanCacheMisses - before.PlanCacheMisses; miss != 1 {
		t.Fatalf("plan-cache misses = %d, want 1", miss)
	}
	if hit := d.PlanCacheHits - before.PlanCacheHits; hit != 2 {
		t.Fatalf("plan-cache hits = %d, want 2", hit)
	}

	// A new generation moves the key: the same pattern misses once more.
	w := postJSON(t, s.Handler(), "/mutate", `{"ops":[
		{"op":"add_node","name":"c9","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"c9"}}}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	queryRows(t, s, q)
	if miss := CountersSnapshot().PlanCacheMisses - before.PlanCacheMisses; miss != 2 {
		t.Fatalf("plan-cache misses after mutation = %d, want 2", miss)
	}

	// /explain shares the same cache: the pattern is already compiled.
	w = postJSON(t, s.Handler(), "/explain", fmt.Sprintf(`{"query":%q}`, q))
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-KG-Cache"); got != "hit" {
		t.Fatalf("explain cache disposition = %q, want hit", got)
	}
}

// TestStatsCachedPerGeneration proves the expensive graph-statistics walk
// runs once per snapshot generation however many /stats requests arrive, and
// that every generation-advancing path — overlay mutation, compaction,
// reload — invalidates the cache by installing a fresh snapshot.
func TestStatsCachedPerGeneration(t *testing.T) {
	g := mutateBase(t)
	src := filepath.Join(t.TempDir(), "base.json")
	f, err := os.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := NewFromGraph(Config{}, g)
	if err != nil {
		t.Fatal(err)
	}
	before := CountersSnapshot().StatsComputes
	computes := func() int64 { return CountersSnapshot().StatsComputes - before }

	for i := 0; i < 3; i++ {
		if w := getPath(t, s.Handler(), "/stats"); w.Code != http.StatusOK {
			t.Fatalf("stats %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	if got := computes(); got != 1 {
		t.Fatalf("stats computes after 3 requests = %d, want 1", got)
	}

	w := postJSON(t, s.Handler(), "/mutate", `{"ops":[
		{"op":"add_node","name":"m1","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"m1"}}}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	getPath(t, s.Handler(), "/stats")
	getPath(t, s.Handler(), "/stats")
	if got := computes(); got != 2 {
		t.Fatalf("stats computes after mutation = %d, want 2", got)
	}

	if w := postJSON(t, s.Handler(), "/compact", ""); w.Code != http.StatusOK {
		t.Fatalf("compact: %d %s", w.Code, w.Body.String())
	}
	getPath(t, s.Handler(), "/stats")
	if got := computes(); got != 3 {
		t.Fatalf("stats computes after compaction = %d, want 3", got)
	}

	if w := postJSON(t, s.Handler(), "/reload", fmt.Sprintf(`{"path":%q}`, src)); w.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", w.Code, w.Body.String())
	}
	getPath(t, s.Handler(), "/stats")
	if got := computes(); got != 4 {
		t.Fatalf("stats computes after reload = %d, want 4", got)
	}
}

// TestStatsPlannerSection checks /stats surfaces the live planner block —
// cache and run counters, estimated-vs-actual rows — and omits it with the
// planner off.
func TestStatsPlannerSection(t *testing.T) {
	s := newTestServer(t, Config{})
	queryRows(t, s, controlQuery)
	w := getPath(t, s.Handler(), "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var doc struct {
		Planner *plannerSection `json:"planner"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Planner == nil || !doc.Planner.Enabled {
		t.Fatalf("stats misses the planner section: %s", w.Body.String())
	}
	if doc.Planner.CacheEntries < 1 || doc.Planner.CacheMisses < 1 {
		t.Fatalf("planner section carries no cache activity: %+v", doc.Planner)
	}

	off := newTestServer(t, Config{PlannerOff: true})
	w = getPath(t, off.Handler(), "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats off: %d", w.Code)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["planner"]; ok {
		t.Fatal("planner-off stats must omit the planner section")
	}
}

// TestChaosPlanOrderFallback arms the plan/order fault site persistently and
// proves the planner's failure is invisible to clients: /query answers stay
// bit-identical to an unfaulted server's, the prepare-time fallback counter
// grows, and /explain names the failure instead of erroring.
func TestChaosPlanOrderFallback(t *testing.T) {
	defer fault.Reset()

	ref := newTestServer(t, Config{})
	w := postJSON(t, ref.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("reference query: %d %s", w.Code, w.Body.String())
	}
	want := w.Body.String()

	if err := fault.Arm("plan/order", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{})
	before := obs.Counters().PlanFallbacks

	w = postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("faulted query: %d %s", w.Code, w.Body.String())
	}
	if got := w.Body.String(); got != want {
		t.Errorf("faulted planner changed the answer:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if fault.Fired("plan/order") == 0 {
		t.Fatal("fault site never fired; the sweep proved nothing")
	}
	if d := obs.Counters().PlanFallbacks - before; d < 1 {
		t.Fatalf("plan fallbacks delta = %d, want >= 1", d)
	}

	w = postJSON(t, s.Handler(), "/explain", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("faulted explain: %d %s", w.Code, w.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Planned || resp.Fallback == "" {
		t.Fatalf("faulted explain must report an unplanned fallback: %s", w.Body.String())
	}

	// Disarming restores planning for new generations/patterns without a
	// restart: a fresh server plans again.
	fault.Reset()
	s2 := newTestServer(t, Config{})
	w = postJSON(t, s2.Handler(), "/explain", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("recovered explain: %d %s", w.Code, w.Body.String())
	}
	resp = explainResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Planned {
		t.Fatalf("recovered server should plan: %s", w.Body.String())
	}
}
