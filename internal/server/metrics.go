package server

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Process-wide serving counters, in the same style as the engine counters of
// internal/obs: static program locations, published once under the "kgserve"
// expvar map. Tests read them through CountersSnapshot deltas so multiple
// server instances per process (the test suites) stay unambiguous.
var (
	mRequests  atomic.Int64 // requests dispatched to any endpoint
	mErrors    atomic.Int64 // requests answered with a typed error
	mRejected  atomic.Int64 // requests shed by admission control (429)
	mHits      atomic.Int64 // query cache hits
	mMisses    atomic.Int64 // query cache misses (evaluations)
	mReloads   atomic.Int64 // successful snapshot swaps
	mReloadErr atomic.Int64 // failed reloads (snapshot kept)

	mMutates        atomic.Int64 // applied mutation batches
	mMutateErr      atomic.Int64 // failed batches (snapshot kept)
	mMutateFallback atomic.Int64 // batches that forced a full fact re-extract
	mCompacts       atomic.Int64 // overlay-to-frozen compactions
	mCompactErr     atomic.Int64 // failed compactions (overlay kept serving)

	mPlanHits      atomic.Int64 // plan cache hits
	mPlanMisses    atomic.Int64 // plan cache misses (prepare runs)
	mStatsComputes atomic.Int64 // graph-stats walks (once per generation)

	mWALAppends       atomic.Int64 // batches logged to the write-ahead log
	mWALAppendErr     atomic.Int64 // failed appends (batch rejected)
	mWALCheckpoints   atomic.Int64 // WAL truncation checkpoints stamped
	mWALCheckpointErr atomic.Int64 // failed checkpoints (log kept, replay stays idempotent)
	mWALReplayed      atomic.Int64 // batches replayed during crash recovery

	metricsOnce sync.Once
)

// CounterSnapshot is a point-in-time copy of the serving counters.
type CounterSnapshot struct {
	Requests, Errors, Rejected int64
	CacheHits, CacheMisses     int64
	Reloads, ReloadErrors      int64

	Mutates, MutateErrors, MutateFallbacks int64
	Compactions, CompactErrors             int64

	PlanCacheHits, PlanCacheMisses int64
	StatsComputes                  int64

	WALAppends, WALAppendErrors         int64
	WALCheckpoints, WALCheckpointErrors int64
	WALReplayed                         int64
}

// CountersSnapshot returns the current process-wide serving counters.
func CountersSnapshot() CounterSnapshot {
	return CounterSnapshot{
		Requests:     mRequests.Load(),
		Errors:       mErrors.Load(),
		Rejected:     mRejected.Load(),
		CacheHits:    mHits.Load(),
		CacheMisses:  mMisses.Load(),
		Reloads:      mReloads.Load(),
		ReloadErrors: mReloadErr.Load(),

		Mutates:         mMutates.Load(),
		MutateErrors:    mMutateErr.Load(),
		MutateFallbacks: mMutateFallback.Load(),
		Compactions:     mCompacts.Load(),
		CompactErrors:   mCompactErr.Load(),

		PlanCacheHits:   mPlanHits.Load(),
		PlanCacheMisses: mPlanMisses.Load(),
		StatsComputes:   mStatsComputes.Load(),

		WALAppends:          mWALAppends.Load(),
		WALAppendErrors:     mWALAppendErr.Load(),
		WALCheckpoints:      mWALCheckpoints.Load(),
		WALCheckpointErrors: mWALCheckpointErr.Load(),
		WALReplayed:         mWALReplayed.Load(),
	}
}

// registerExpvar publishes the serving counters as the expvar map "kgserve"
// (served at /debug/vars). Safe to call more than once.
func registerExpvar() {
	metricsOnce.Do(func() {
		m := new(expvar.Map)
		m.Set("requests", expvar.Func(func() any { return mRequests.Load() }))
		m.Set("errors", expvar.Func(func() any { return mErrors.Load() }))
		m.Set("rejected", expvar.Func(func() any { return mRejected.Load() }))
		m.Set("cache_hits", expvar.Func(func() any { return mHits.Load() }))
		m.Set("cache_misses", expvar.Func(func() any { return mMisses.Load() }))
		m.Set("reloads", expvar.Func(func() any { return mReloads.Load() }))
		m.Set("reload_errors", expvar.Func(func() any { return mReloadErr.Load() }))
		m.Set("mutates", expvar.Func(func() any { return mMutates.Load() }))
		m.Set("mutate_errors", expvar.Func(func() any { return mMutateErr.Load() }))
		m.Set("mutate_fallbacks", expvar.Func(func() any { return mMutateFallback.Load() }))
		m.Set("compactions", expvar.Func(func() any { return mCompacts.Load() }))
		m.Set("compact_errors", expvar.Func(func() any { return mCompactErr.Load() }))
		m.Set("plan_cache_hits", expvar.Func(func() any { return mPlanHits.Load() }))
		m.Set("plan_cache_misses", expvar.Func(func() any { return mPlanMisses.Load() }))
		m.Set("stats_computes", expvar.Func(func() any { return mStatsComputes.Load() }))
		m.Set("wal_appends", expvar.Func(func() any { return mWALAppends.Load() }))
		m.Set("wal_append_errors", expvar.Func(func() any { return mWALAppendErr.Load() }))
		m.Set("wal_checkpoints", expvar.Func(func() any { return mWALCheckpoints.Load() }))
		m.Set("wal_checkpoint_errors", expvar.Func(func() any { return mWALCheckpointErr.Load() }))
		m.Set("wal_replayed", expvar.Func(func() any { return mWALReplayed.Load() }))
		expvar.Publish("kgserve", m)
	})
}
