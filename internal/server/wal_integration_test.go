package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/snapfile"
	"repro/internal/testutil"
	"repro/internal/wal"
)

// Durability integration tests: a server with Config.WALDir must recover,
// after an abrupt stop, a state bit-identical (through the snapfile encoder)
// to the one a crash-free server reaches with the same batches — and replay
// only the batches the last checkpoint has not already folded away.

// walBatch is a small always-valid /mutate body: one new Business node (the
// tag keeps fiscal codes unique across batches) plus an edge to base node 1.
func walBatch(tag string) string {
	return fmt.Sprintf(`{"ops":[
		{"op":"add_node","name":"w","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"w%s"}}},
		{"op":"add_edge","from":{"name":"w"},"to":{"id":1},"label":"OWNS","props":{"percentage":{"kind":"float","float":0.2}}}
	]}`, tag)
}

func mustMutate(t *testing.T, s *Server, body string) MutateInfo {
	t.Helper()
	w := postJSON(t, s.Handler(), "/mutate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	var info MutateInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// encodeView folds the server's current serving view through the snapfile
// encoder with a zero BuildInfo — Encode is a pure function of the graph, so
// equal bytes mean bit-identical recovered state.
func encodeView(t *testing.T, s *Server) []byte {
	t.Helper()
	sn := s.current()
	frozen := sn.frozen
	if sn.ov != nil {
		var err error
		if frozen, err = sn.ov.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := snapfile.Encode(frozen, snapfile.BuildInfo{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestWALMutateDurableRestart is the basic durability round trip: batches
// acknowledged by one server instance are all present after a restart over
// the same log, with sequence numbers surfaced to the client and never
// regressing across the restart.
func TestWALMutateDurableRestart(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	walDir := filepath.Join(t.TempDir(), "wal")

	s, err := NewFromGraph(Config{WALDir: walDir}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		info := mustMutate(t, s, walBatch(fmt.Sprint(i)))
		if info.Seq != uint64(i+1) {
			t.Fatalf("batch %d acknowledged with seq %d, want %d", i, info.Seq, i+1)
		}
	}
	want := encodeView(t, s)
	genWAL := s.WALStats().Generation
	shutdownServer(t, s)

	// The restart: same base graph, same log directory. Recovery is
	// synchronous inside NewFromGraph, so the returned server already
	// serves the replayed state.
	s2, err := NewFromGraph(Config{WALDir: walDir}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	if got := encodeView(t, s2); !bytes.Equal(got, want) {
		t.Fatal("recovered state is not bit-identical to the pre-restart view")
	}
	if _, n := queryRows(t, s2, `(x: Business; fiscalCode: c)`); n != 5 {
		t.Fatalf("recovered rows = %d, want 5", n)
	}
	st := s2.WALStats()
	if st.NextSeq != 4 {
		t.Fatalf("recovered NextSeq = %d, want 4", st.NextSeq)
	}
	if st.Generation < genWAL {
		t.Fatalf("wal generation regressed across restart: %d -> %d", genWAL, st.Generation)
	}
	// The next acknowledged batch continues the sequence — no reuse, no gap.
	if info := mustMutate(t, s2, walBatch("post")); info.Seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", info.Seq)
	}
}

// TestWALRecoveryAfterCompaction pins the truncation contract: once /compact
// persists a frozen snapshot and checkpoints the log, a restart loads that
// snapshot as the base and replays only the batches after it.
func TestWALRecoveryAfterCompaction(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	dir := t.TempDir()
	cfg := Config{WALDir: filepath.Join(dir, "wal"), CompactDir: filepath.Join(dir, "snaps")}
	if err := os.MkdirAll(cfg.CompactDir, 0o755); err != nil {
		t.Fatal(err)
	}

	s, err := NewFromGraph(cfg, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustMutate(t, s, walBatch(fmt.Sprint(i)))
	}
	before := CountersSnapshot()
	if w := postJSON(t, s.Handler(), "/compact", ""); w.Code != http.StatusOK {
		t.Fatalf("compact: %d %s", w.Code, w.Body.String())
	}
	if d := CountersSnapshot().WALCheckpoints - before.WALCheckpoints; d != 1 {
		t.Fatalf("compact stamped %d checkpoints, want 1", d)
	}
	mustMutate(t, s, walBatch("3"))
	mustMutate(t, s, walBatch("4"))
	want := encodeView(t, s)
	shutdownServer(t, s)

	// Only the two post-checkpoint batches replay; the first three live in
	// the compacted snapshot the checkpoint points at.
	before = CountersSnapshot()
	s2, err := NewFromGraph(cfg, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	if d := CountersSnapshot().WALReplayed - before.WALReplayed; d != 2 {
		t.Fatalf("replayed %d batches after compaction, want 2", d)
	}
	if got := encodeView(t, s2); !bytes.Equal(got, want) {
		t.Fatal("post-compaction recovery is not bit-identical to the pre-restart view")
	}
	if st := s2.WALStats(); st.NextSeq != 6 {
		t.Fatalf("recovered NextSeq = %d, want 6", st.NextSeq)
	}
}

// TestWALReloadCheckpoints pins the reload ordering invariant: a reload
// checkpoints the log *before* swapping, so logged pre-reload batches are
// abandoned with the old state and a restart replays nothing over the new
// source.
func TestWALReloadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.json")
	g := mutateBase(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := Config{Source: path, WALDir: filepath.Join(dir, "wal")}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, s, walBatch("a"))
	mustMutate(t, s, walBatch("b"))
	before := CountersSnapshot()
	if w := postJSON(t, s.Handler(), "/reload", `{}`); w.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", w.Code, w.Body.String())
	}
	if d := CountersSnapshot().WALCheckpoints - before.WALCheckpoints; d != 1 {
		t.Fatalf("reload stamped %d checkpoints, want 1", d)
	}
	shutdownServer(t, s)

	before = CountersSnapshot()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	if d := CountersSnapshot().WALReplayed - before.WALReplayed; d != 0 {
		t.Fatalf("replayed %d abandoned pre-reload batches, want 0", d)
	}
	if _, n := queryRows(t, s2, `(x: Business; fiscalCode: c)`); n != 2 {
		t.Fatalf("post-reload recovery rows = %d, want 2 (the fresh source)", n)
	}
	// Sequence numbers survive the checkpoint: the next batch extends the
	// old numbering rather than restarting it.
	if info := mustMutate(t, s2, walBatch("c")); info.Seq != 3 {
		t.Fatalf("post-reload seq = %d, want 3", info.Seq)
	}
}

// TestWALRecoveringGate pins the readiness surface: while recovery is in
// flight every endpoint — /healthz included — answers the typed 503, and the
// direct write APIs refuse.
func TestWALRecoveringGate(t *testing.T) {
	s, err := NewFromGraph(Config{WALDir: filepath.Join(t.TempDir(), "wal")}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)

	s.recovering.Store(true)
	for _, ep := range []struct{ method, path, body string }{
		{http.MethodGet, "/healthz", ""},
		{http.MethodGet, "/stats", ""},
		{http.MethodPost, "/query", `{"query":"(x: Business)"}`},
		{http.MethodPost, "/mutate", walBatch("x")},
		{http.MethodPost, "/compact", ""},
		{http.MethodPost, "/reload", `{}`},
	} {
		var w interface {
			Result() *http.Response
		}
		if ep.method == http.MethodGet {
			w = getPath(t, s.Handler(), ep.path)
		} else {
			w = postJSON(t, s.Handler(), ep.path, ep.body)
		}
		resp := w.Result()
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while recovering: status %d, want 503", ep.path, resp.StatusCode)
		}
	}
	hw := getPath(t, s.Handler(), "/healthz")
	if got := errCode(t, hw); got != "recovering" {
		t.Fatalf("error code %q, want %q", got, "recovering")
	}
	if _, err := s.Mutate(nil); err == nil {
		t.Fatal("direct Mutate accepted during recovery")
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("direct Compact accepted during recovery")
	}
	if _, err := s.Reload(""); err == nil {
		t.Fatal("direct Reload accepted during recovery")
	}
	s.recovering.Store(false)
	if hw := getPath(t, s.Handler(), "/healthz"); hw.Code != http.StatusOK {
		t.Fatalf("healthz after recovery: %d", hw.Code)
	}
}

// TestWALAsyncRecoveryBecomesReady drives the WALAsyncRecovery path end to
// end: the constructor returns immediately, and the server turns ready with
// the replayed state once the background replay lands.
func TestWALAsyncRecoveryBecomesReady(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	walDir := filepath.Join(t.TempDir(), "wal")

	s, err := NewFromGraph(Config{WALDir: walDir}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, s, walBatch("a"))
	mustMutate(t, s, walBatch("b"))
	shutdownServer(t, s)

	s2, err := NewFromGraph(Config{WALDir: walDir, WALAsyncRecovery: true}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		hw := getPath(t, s2.Handler(), "/healthz")
		if hw.Code == http.StatusOK {
			break
		}
		if hw.Code != http.StatusServiceUnavailable {
			t.Fatalf("healthz during async recovery: %d %s", hw.Code, hw.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %s", hw.Body.String())
		}
		time.Sleep(time.Millisecond)
	}
	if _, n := queryRows(t, s2, `(x: Business; fiscalCode: c)`); n != 4 {
		t.Fatalf("recovered rows = %d, want 4", n)
	}
}

// TestWALAsyncRecoveryFailureStaysUnready: a log whose payloads cannot
// replay (valid records, garbage inside) must leave the async server
// permanently answering 503 — never serving a state that is missing
// acknowledged writes — while the synchronous constructor fails outright.
func TestWALAsyncRecoveryFailureStaysUnready(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	walDir := filepath.Join(t.TempDir(), "wal")
	l, _, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("not a batch")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewFromGraph(Config{WALDir: walDir}, mutateBase(t)); err == nil {
		t.Fatal("synchronous recovery accepted an unreplayable log")
	}

	s, err := NewFromGraph(Config{WALDir: walDir, WALAsyncRecovery: true}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	s.recoverWG.Wait()
	hw := getPath(t, s.Handler(), "/healthz")
	if hw.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after failed recovery: %d", hw.Code)
	}
	if got := errCode(t, hw); got != "recovering" {
		t.Fatalf("error code %q, want %q", got, "recovering")
	}
	var typed struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &typed); err != nil {
		t.Fatal(err)
	}
	if want := "recovery failed"; !bytes.Contains([]byte(typed.Error.Message), []byte(want)) {
		t.Fatalf("503 message %q does not explain the failure", typed.Error.Message)
	}
}

// TestWALStatsSection: with a WAL the /stats document carries a live "wal"
// object (depth, fsync latency); without one the key is absent and the
// cached bytes stay bit-identical across requests.
func TestWALStatsSection(t *testing.T) {
	s, err := NewFromGraph(Config{WALDir: filepath.Join(t.TempDir(), "wal")}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	mustMutate(t, s, walBatch("a"))

	w := getPath(t, s.Handler(), "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	var doc struct {
		WAL *wal.Stats `json:"wal"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.WAL == nil {
		t.Fatal("stats document has no wal section")
	}
	if doc.WAL.Appended != 1 || doc.WAL.NextSeq != 2 {
		t.Fatalf("wal stats %+v, want appended 1 / nextSeq 2", doc.WAL)
	}
	if doc.WAL.Syncs == 0 || doc.WAL.LastSyncNanos <= 0 {
		t.Fatalf("wal stats carry no fsync latency: %+v", doc.WAL)
	}

	plain, err := NewFromGraph(Config{}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	w1 := getPath(t, plain.Handler(), "/stats")
	w2 := getPath(t, plain.Handler(), "/stats")
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("wal-less stats responses are not bit-identical")
	}
	if bytes.Contains(w1.Body.Bytes(), []byte(`"wal"`)) {
		t.Fatal("wal-less stats document grew a wal section")
	}
}

// TestChaosWALSweep extends the chaos harness to the four durability fault
// sites. Per injection the write-path atomicity invariant holds: a failed
// append or fsync rejects the batch with a typed error, an unmoved
// generation, an unmoved WAL sequence and a bit-identical served view; a
// clean retry then succeeds.
func TestChaosWALSweep(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	defer fault.Reset()

	cases := []struct {
		site string
		mode fault.Mode
	}{
		{"wal/append", fault.ModeError},
		{"wal/append", fault.ModePanic},
		{"wal/fsync", fault.ModeError},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s", tc.site, tc.mode), func(t *testing.T) {
			fault.Reset()
			s, err := NewFromGraph(Config{WALDir: filepath.Join(t.TempDir(), "wal")}, mutateBase(t))
			if err != nil {
				t.Fatal(err)
			}
			defer shutdownServer(t, s)
			mustMutate(t, s, walBatch("seed"))
			baseline := encodeView(t, s)
			genBefore := s.Generation()
			seqBefore := s.WALStats().NextSeq

			if err := fault.Arm(tc.site, fault.Plan{Mode: tc.mode}); err != nil {
				t.Fatal(err)
			}
			w := postJSON(t, s.Handler(), "/mutate", walBatch("hurt"))
			if fault.Fired(tc.site) == 0 {
				t.Fatalf("site %s never fired", tc.site)
			}
			if w.Code != http.StatusInternalServerError {
				t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
			}
			wantCode := "injected"
			if tc.mode == fault.ModePanic {
				wantCode = "panic"
			}
			if got := errCode(t, w); got != wantCode {
				t.Errorf("code %q, want %q", got, wantCode)
			}
			fault.Reset()

			// Rejected and logged are mutually exclusive: the sequence did
			// not advance, the generation did not move, the view is
			// bit-identical.
			if st := s.WALStats(); st.NextSeq != seqBefore {
				t.Fatalf("rejected batch advanced NextSeq: %d -> %d", seqBefore, st.NextSeq)
			}
			if s.Generation() != genBefore {
				t.Fatalf("generation moved under fault: %d -> %d", genBefore, s.Generation())
			}
			if got := encodeView(t, s); !bytes.Equal(got, baseline) {
				t.Fatal("served view disturbed by injected WAL fault")
			}

			// A clean retry succeeds and takes the very next sequence number.
			info := mustMutate(t, s, walBatch("retry"))
			if info.Seq != seqBefore {
				t.Fatalf("retry seq = %d, want %d", info.Seq, seqBefore)
			}
		})
	}
}

// TestChaosWALTruncationFailureTolerated: a failed WAL truncation during
// /compact must not fail the compaction — serving continues on the new
// generation, and the untruncated log replays idempotently (the checkpoint
// skips the already-folded batches) after a restart.
func TestChaosWALTruncationFailureTolerated(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	defer fault.Reset()
	dir := t.TempDir()
	cfg := Config{WALDir: filepath.Join(dir, "wal"), CompactDir: filepath.Join(dir, "snaps")}
	if err := os.MkdirAll(cfg.CompactDir, 0o755); err != nil {
		t.Fatal(err)
	}

	s, err := NewFromGraph(cfg, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, s, walBatch("a"))
	mustMutate(t, s, walBatch("b"))

	before := CountersSnapshot()
	if err := fault.Arm("wal/rotate", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s.Handler(), "/compact", "")
	fault.Reset()
	if w.Code != http.StatusOK {
		t.Fatalf("compact under truncation fault: %d %s", w.Code, w.Body.String())
	}
	delta := CountersSnapshot()
	if delta.WALCheckpointErrors-before.WALCheckpointErrors != 1 {
		t.Fatal("truncation failure not counted")
	}
	// Serving continues: reads and writes keep landing on the compacted
	// generation.
	if _, n := queryRows(t, s, `(x: Business; fiscalCode: c)`); n != 4 {
		t.Fatalf("rows after tolerated failure = %d, want 4", n)
	}
	mustMutate(t, s, walBatch("c"))
	want := encodeView(t, s)
	shutdownServer(t, s)

	// The restart replays idempotently over whatever base the (possibly
	// half-finished) checkpoint left behind — the merged view is the same.
	s2, err := NewFromGraph(cfg, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	if got := encodeView(t, s2); !bytes.Equal(got, want) {
		t.Fatal("recovery after failed truncation is not bit-identical")
	}
	if info := mustMutate(t, s2, walBatch("d")); info.Seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", info.Seq)
	}
}

// TestChaosWALReplayFault: an injected failure at the replay site surfaces
// as a typed constructor error — the server never starts over a log it
// could not read.
func TestChaosWALReplayFault(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("wal/replay", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	_, err := NewFromGraph(Config{WALDir: filepath.Join(t.TempDir(), "wal")}, mutateBase(t))
	fault.Reset()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("constructor error = %v, want the injected fault", err)
	}
}
