package server

import (
	"container/list"
	"strings"
	"sync"
)

// cacheKey identifies one query result: the snapshot generation pins the
// data the result was computed from, so a /reload swap invalidates every
// cached entry implicitly — stale generations simply stop being asked for
// and age out of the LRU. Canonicalized query text plus the row limit pin
// the computation.
type cacheKey struct {
	gen   uint64
	query string
	limit int
}

// canonicalQuery normalizes a pattern for cache keying: runs of whitespace
// (including newlines) collapse to single spaces, so formatting differences
// between clients hit the same entry. It deliberately does not parse — two
// alpha-renamed patterns are different keys, which only costs a duplicate
// entry, never a wrong answer.
func canonicalQuery(q string) string {
	return strings.Join(strings.Fields(q), " ")
}

// resultCache is a mutex-guarded LRU over marshaled response bodies. Storing
// the exact bytes (not the row structs) makes a cache hit bit-identical to
// the miss that populated it — the soak test asserts precisely that.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newResultCache returns a cache holding up to capacity entries; capacity
// <= 0 disables caching (every lookup misses, puts are dropped).
func newResultCache(capacity int) *resultCache {
	c := &resultCache{cap: capacity}
	if capacity > 0 {
		c.order = list.New()
		c.items = make(map[cacheKey]*list.Element, capacity)
	}
	return c
}

func (c *resultCache) get(k cacheKey) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *resultCache) put(k cacheKey, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
