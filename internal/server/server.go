// Package server is the serving layer of the reproduction: an HTTP query
// service over frozen dictionary snapshots. It is the deployment shape the
// paper's Bank of Italy stack implies — analysts querying the company KG
// concurrently — mapped onto the repo's two-phase storage discipline:
//
//   - a dictionary is loaded and frozen once into an immutable pg.Frozen
//     snapshot (plus its MetaLog catalog and extracted fact database), and
//     every request reads that snapshot lock-free through one atomic
//     pointer;
//   - /reload builds the next snapshot entirely off-line — load, freeze,
//     extract — and then swaps the pointer. Old readers drain on the old
//     snapshot; the generation counter is monotonic, and a failed reload
//     (including injected faults and contained panics) leaves the serving
//     snapshot untouched;
//   - compute endpoints (/query, /stats, /validate) pass admission control
//     first: a bounded worker pool that sheds load with a typed 429 instead
//     of queueing, keeping tail latency bounded under overload;
//   - query results are cached in an LRU keyed by (snapshot generation,
//     canonical query text, limit) — a swap invalidates implicitly because
//     stale generations stop being asked for;
//   - per-request context deadlines ride the PR 2 cancellation path into
//     the engine (vadalog.RunCtx), fault sites bracket the load, swap and
//     handler boundaries for chaos testing, and obs supplies expvar
//     counters and per-endpoint latency traces.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/graphstats"
	"repro/internal/gsl"
	"repro/internal/metalog"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/pg"
	"repro/internal/plan"
	"repro/internal/snapfile"
	"repro/internal/supermodel"
	"repro/internal/vadalog"
	"repro/internal/value"
	"repro/internal/wal"
)

// Fault-injection sites of the serving layer (see internal/fault): the
// dictionary load, the freeze-and-swap boundary of /reload, and the request
// dispatch path every endpoint crosses.
var (
	siteLoad    = fault.Site("server/load")
	siteSwap    = fault.Site("server/freeze-swap")
	siteHandler = fault.Site("server/handler")
)

const (
	defaultMaxBody = int64(1 << 20)
	defaultTimeout = 30 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Source is the property-graph JSON file served; /reload with an empty
	// path re-reads it. Optional when the server is built with
	// NewFromGraph, in which case /reload requires an explicit path.
	Source string

	// Schema enables /validate and enriches /schema; nil disables both
	// behaviors (validate answers with a typed no_schema error).
	Schema *supermodel.Schema
	// Strategy is the SSST PG translation strategy used by /validate when
	// the request does not override it. Defaults to "multi-label".
	Strategy string

	// MaxInflight bounds the number of concurrently executing compute
	// requests (/query, /stats, /validate); excess requests are shed with a
	// typed 429. Defaults to 8.
	MaxInflight int
	// EngineWorkers is the vadalog.Options.Workers value for each admitted
	// query — per-query engine parallelism, multiplied by MaxInflight for
	// the process budget. Defaults to 1 (concurrency comes from requests).
	EngineWorkers int
	// MaxFacts is the per-query derivation valve (vadalog.Options.MaxFacts);
	// 0 means unlimited.
	MaxFacts int
	// Timeout is the per-request evaluation deadline, wired into the
	// engine's cancellation path. 0 selects the 30s default; negative
	// disables the deadline.
	Timeout time.Duration

	// CacheSize is the query-result LRU capacity in entries; 0 disables
	// caching.
	CacheSize int
	// MaxBody caps request body bytes (defaults to 1 MiB).
	MaxBody int64

	// PlannerOff disables the cost-based query planner: /query evaluates
	// written-order programs, /explain answers with planner "off", and no
	// statistics catalog is computed at snapshot build.
	PlannerOff bool
	// PlanCacheSize is the compiled-plan LRU capacity in entries, keyed by
	// (generation, canonical pattern). 0 selects the 128 default; negative
	// disables plan caching (plans are still computed, per request).
	PlanCacheSize int

	// CompactEvery starts a background compactor that folds the live write
	// overlay into a fresh frozen generation at this interval; 0 disables
	// it (compaction stays available through POST /compact).
	CompactEvery time.Duration
	// CompactDir, when set, persists every compacted generation as a binary
	// snapshot file (snapfile format) in this directory.
	CompactDir string

	// WALDir, when set, makes the write path durable: every applied /mutate
	// batch is appended to a write-ahead log in this directory before it is
	// acknowledged, and startup replays the log over the base snapshot (see
	// wal.go). Empty disables the WAL — mutations live only in memory.
	WALDir string
	// WALSync selects the log's fsync policy: "always" (default; fsync
	// before every acknowledgment), "interval[:duration]" (background
	// fsyncs) or "off".
	WALSync string
	// WALAsyncRecovery makes New return before the WAL replay finishes; the
	// server answers every endpoint with a typed 503 "recovering" until the
	// replayed state is installed. Off, New blocks until recovery completes.
	WALAsyncRecovery bool

	// Retry is the load-retry policy applied to dictionary reads.
	Retry fault.RetryPolicy
	// OnFault is the engine failure policy for query evaluation.
	OnFault vadalog.FaultPolicy

	// Debug mounts /debug/vars (expvar), /debug/pprof and /debug/latency.
	Debug bool
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = "multi-label"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.Timeout == 0 {
		c.Timeout = defaultTimeout
	} else if c.Timeout < 0 {
		c.Timeout = 0
	}
	if c.MaxBody <= 0 {
		c.MaxBody = defaultMaxBody
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	} else if c.PlanCacheSize < 0 {
		c.PlanCacheSize = 0
	}
	return c
}

// snapshot is one immutable serving generation: the frozen graph, its
// catalog, and the extracted fact database every query starts from. Stats
// are computed lazily, once per generation.
type snapshot struct {
	gen    uint64
	frozen *pg.Frozen
	// view is what every read endpoint consumes: the frozen base itself
	// when no writes are pending, or the live overlay layered over it once
	// POST /mutate has applied batches. Readers never observe a generation
	// gap — the pointer swap installs view, catalog and fact database as
	// one unit.
	view pg.View
	// ov is the mutable delta this generation serves through view; nil for
	// purely frozen generations. It is never mutated in place: Mutate
	// clones it, applies the batch to the clone, and swaps.
	ov  *overlay.Overlay
	cat *metalog.Catalog
	db  *vadalog.Database

	// pstats is the planner's statistics catalog, computed once per frozen
	// generation (nil with the planner off). Mutated generations carry the
	// base's stats forward unchanged — estimates drift with the overlay but
	// correctness never depends on them, and the next compaction or reload
	// recomputes from scratch.
	pstats *plan.Stats

	// build is the provenance header of the snapshot file this generation
	// was opened from; nil for JSON loads and in-memory graphs. Surfaced by
	// /stats so an operator can tell which build a replica serves.
	build *snapfile.BuildInfo
	// file keeps an mmap-backed snapshot alive for the generation's whole
	// lifetime (the frozen view's columns alias the mapping). It is never
	// closed on swap: old readers may still drain, and the retired pages
	// are reclaimable by the OS anyway.
	file *snapfile.Snapshot

	statsOnce sync.Once
	stats     graphstats.Stats
	statsJSON []byte
}

// Server serves MetaLog queries, graph statistics and schema validation
// over a shared frozen snapshot. Create one with New or NewFromGraph.
type Server struct {
	cfg   Config
	snap  atomic.Pointer[snapshot]
	pool  *pool
	cache *resultCache
	plans *planCache
	lat   *obs.LatencyTracker
	mux   *http.ServeMux
	http  *http.Server

	// reloadMu serializes snapshot builds — reloads, mutation batches and
	// compactions — so generations are assigned in swap order; readers
	// never take it.
	reloadMu sync.Mutex

	// Background compactor lifecycle (see startAutoCompact / Shutdown).
	compactStop chan struct{}
	compactOnce sync.Once
	compactWG   sync.WaitGroup

	// Durability (see wal.go): the open log, the recovery carried from Open
	// to replayWAL, and the readiness gate for async recovery.
	wal         *wal.Log
	walRec      *wal.Recovery
	recovering  atomic.Bool
	recoverFail atomic.Pointer[string]
	recoverWG   sync.WaitGroup
}

// New builds a server from cfg, loading and freezing cfg.Source. With a WAL
// configured, the base is the last checkpoint's snapshot (falling back to
// cfg.Source) and the log's acknowledged batches are replayed on top.
func New(cfg Config) (*Server, error) {
	if cfg.Source == "" {
		return nil, fmt.Errorf("server: Config.Source required (or use NewFromGraph)")
	}
	s := newServer(cfg)
	if s.cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	first, err := s.buildFromPath(s.walBase())
	if err != nil {
		s.closeWALOnFailure()
		return nil, err
	}
	first.gen = 1
	s.snap.Store(first)
	if err := s.startRecovery(); err != nil {
		return nil, err
	}
	s.startAutoCompact()
	return s, nil
}

// NewFromGraph builds a server from an in-memory graph — the entry point
// for tests and benchmarks. The graph is frozen immediately and not
// retained; later mutations of g are invisible to the server. A configured
// WAL replays over the graph, unless a checkpoint names an on-disk base.
func NewFromGraph(cfg Config, g *pg.Graph) (*Server, error) {
	s := newServer(cfg)
	if s.cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	var first *snapshot
	var err error
	if s.walRec != nil && s.walRec.Checkpoint != nil && s.walRec.Checkpoint.Base != "" {
		first, err = s.buildFromPath(s.walRec.Checkpoint.Base)
	} else {
		first, err = s.buildSnapshot(g)
	}
	if err != nil {
		s.closeWALOnFailure()
		return nil, err
	}
	first.gen = 1
	s.snap.Store(first)
	if err := s.startRecovery(); err != nil {
		return nil, err
	}
	s.startAutoCompact()
	return s, nil
}

// startRecovery runs the WAL replay — inline, or in the background with
// WALAsyncRecovery, in which case the recovering gate answers 503 until the
// replay lands.
func (s *Server) startRecovery() error {
	if s.wal == nil {
		return nil
	}
	if s.cfg.WALAsyncRecovery {
		s.recovering.Store(true)
		s.recoverWG.Add(1)
		go s.finishRecovery()
		return nil
	}
	if err := s.replayWAL(); err != nil {
		s.closeWALOnFailure()
		return err
	}
	return nil
}

// closeWALOnFailure tears the log down on a failed construction, so its
// background syncer never outlives the half-built server.
func (s *Server) closeWALOnFailure() {
	if s.wal != nil {
		s.wal.Close() //nolint:errcheck // already failing
		s.wal = nil
	}
}

func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  newPool(cfg.MaxInflight),
		cache: newResultCache(cfg.CacheSize),
		plans: newPlanCache(cfg.PlanCacheSize),
		lat:   obs.NewLatencyTracker(),
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("/healthz", s.endpoint("healthz", http.MethodGet, false, s.handleHealthz))
	s.mux.Handle("/query", s.endpoint("query", http.MethodPost, true, s.handleQuery))
	s.mux.Handle("/explain", s.endpoint("explain", http.MethodPost, true, s.handleExplain))
	s.mux.Handle("/stats", s.endpoint("stats", http.MethodGet, true, s.handleStats))
	s.mux.Handle("/validate", s.endpoint("validate", http.MethodPost, true, s.handleValidate))
	s.mux.Handle("/schema", s.endpoint("schema", http.MethodGet, false, s.handleSchema))
	s.mux.Handle("/reload", s.endpoint("reload", http.MethodPost, false, s.handleReload))
	s.mux.Handle("/mutate", s.endpoint("mutate", http.MethodPost, false, s.handleMutate))
	s.mux.Handle("/compact", s.endpoint("compact", http.MethodPost, false, s.handleCompact))
	if cfg.Debug {
		registerExpvar()
		obs.RegisterExpvar()
		s.mux.Handle("/debug/vars", expvar.Handler())
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.mux.HandleFunc("/debug/latency", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			s.lat.WriteJSON(w) //nolint:errcheck // best-effort debug endpoint
		})
	}
	s.http = &http.Server{Handler: s.mux}
	return s
}

// current returns the serving snapshot; never nil after construction.
func (s *Server) current() *snapshot { return s.snap.Load() }

// Generation returns the current snapshot generation. It starts at 1 and
// only ever increases: failed reloads keep the serving snapshot and its
// generation.
func (s *Server) Generation() uint64 { return s.current().gen }

// Latency exposes the per-endpoint latency tracker (for tests and the
// debug endpoint).
func (s *Server) Latency() *obs.LatencyTracker { return s.lat }

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It blocks, returning
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// the background compactor (if any) is stopped and joined, in-flight
// requests run to completion (bounded by ctx), and the compute pool is
// drained before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopAutoCompact()
	err := s.http.Shutdown(ctx)
	s.pool.drain()
	s.recoverWG.Wait()
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// buildFromPath loads a dictionary file (through the retry policy and the
// server/load fault site) and builds its snapshot. The file's first bytes
// route it: a KGSNAP signature takes the binary snapshot fast path (mmap,
// no freeze), anything else is parsed as property-graph JSON.
func (s *Server) buildFromPath(path string) (*snapshot, error) {
	if err := fault.Hit(siteLoad); err != nil {
		return nil, err
	}
	if isSnapshotFile(path) {
		sf, err := snapfile.Open(path)
		if err != nil {
			return nil, fmt.Errorf("server: loading %s: %w", path, err)
		}
		sn, err := s.buildFromFrozen(sf.Frozen, &sf.Info)
		if err != nil {
			sf.Close() //nolint:errcheck // already failing
			return nil, err
		}
		sn.file = sf
		return sn, nil
	}
	g, err := pg.ReadJSONRetry(func() (io.ReadCloser, error) { return os.Open(path) }, s.cfg.Retry)
	if err != nil {
		return nil, fmt.Errorf("server: loading %s: %w", path, err)
	}
	return s.buildSnapshot(g)
}

// isSnapshotFile sniffs the snapfile magic without consuming the file.
func isSnapshotFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	n, _ := f.Read(hdr[:])
	return snapfile.Sniff(hdr[:n])
}

// buildSnapshot freezes a graph and precomputes the query substrate.
func (s *Server) buildSnapshot(g *pg.Graph) (*snapshot, error) {
	return s.buildFromFrozen(g.Freeze(), nil)
}

// buildFromFrozen precomputes the query substrate over an existing frozen
// view: the inferred catalog and the extracted fact database shared
// (read-only) by every query against this generation.
func (s *Server) buildFromFrozen(frozen *pg.Frozen, build *snapfile.BuildInfo) (*snapshot, error) {
	cat := metalog.FromGraph(frozen)
	db, err := metalog.ExtractFacts(frozen, cat)
	if err != nil {
		return nil, fmt.Errorf("server: extracting facts: %w", err)
	}
	sn := &snapshot{frozen: frozen, view: frozen, cat: cat, db: db, build: build}
	if !s.cfg.PlannerOff {
		sn.pstats = metalog.ComputePlanStats(frozen, cat)
	}
	return sn, nil
}

// ReloadInfo describes a completed snapshot swap.
type ReloadInfo struct {
	Generation uint64 `json:"generation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
}

// Reload builds a fresh snapshot from path (the configured source when
// empty) entirely off-line, then atomically swaps it in. On any failure —
// including injected faults and contained panics — the serving snapshot and
// generation are untouched.
func (s *Server) Reload(path string) (ReloadInfo, error) {
	if path == "" {
		path = s.cfg.Source
	}
	if path == "" {
		return ReloadInfo{}, fmt.Errorf("server: no reload path and no configured source")
	}
	if err := s.notRecovering(); err != nil {
		mReloadErr.Add(1)
		return ReloadInfo{}, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var next *snapshot
	err := fault.Guard("server/reload", func() error {
		var err error
		if next, err = s.buildFromPath(path); err != nil {
			return err
		}
		if err := fault.Hit(siteSwap); err != nil {
			return err
		}
		if s.wal != nil {
			// A reload abandons the logged batches by design: the new source
			// is the state. Checkpoint BEFORE the swap — if the checkpoint
			// cannot land, the reload must fail, or a crash after the swap
			// would replay pre-reload batches over the post-reload source.
			if _, err := s.wal.Checkpoint(path); err != nil {
				mWALCheckpointErr.Add(1)
				return fmt.Errorf("server: checkpointing wal for reload: %w", err)
			}
			mWALCheckpoints.Add(1)
		}
		return nil
	})
	if err != nil {
		mReloadErr.Add(1)
		return ReloadInfo{}, err
	}
	next.gen = s.current().gen + 1
	s.snap.Store(next)
	mReloads.Add(1)
	return ReloadInfo{Generation: next.gen, Nodes: next.frozen.NumNodes(), Edges: next.frozen.NumEdges()}, nil
}

// apiResult is a successful endpoint outcome: marshaled body plus the
// snapshot generation it was computed from and the cache disposition.
type apiResult struct {
	body  []byte
	gen   uint64
	cache string // "", "hit" or "miss"
}

// endpoint wraps a handler with the cross-cutting request path: method
// check, metrics, per-endpoint latency, the server/handler fault site,
// panic containment, optional admission control, and uniform JSON framing.
// The snapshot generation travels in the X-KG-Generation header — never the
// body — so query responses stay bit-identical across a swap of identical
// data.
func (s *Server) endpoint(name, method string, pooled bool, h func(r *http.Request) (*apiResult, *apiError)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mRequests.Add(1)
		var res *apiResult
		var aerr *apiError
		gerr := fault.Guard("server/handler", func() error {
			if r.Method != method {
				w.Header().Set("Allow", method)
				aerr = errMethod(method)
				return nil
			}
			if s.recovering.Load() {
				// Readiness gate: until the WAL replay lands, every endpoint
				// (healthz included) answers a typed 503.
				aerr = s.errRecovering()
				return nil
			}
			if err := fault.Hit(siteHandler); err != nil {
				aerr = mapEvalError(err)
				return nil
			}
			if pooled {
				if !s.pool.tryAcquire() {
					mRejected.Add(1)
					aerr = errSaturated()
					return nil
				}
				defer s.pool.release()
			}
			res, aerr = h(r)
			return nil
		})
		if gerr != nil {
			// A contained panic anywhere on the request path.
			res, aerr = nil, mapEvalError(gerr)
		}
		if aerr != nil {
			mErrors.Add(1)
			w.Header().Set("X-KG-Generation", strconv.FormatUint(s.Generation(), 10))
			writeAPIError(w, aerr)
		} else {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-KG-Generation", strconv.FormatUint(res.gen, 10))
			if res.cache != "" {
				w.Header().Set("X-KG-Cache", res.cache)
			}
			w.Write(res.body) //nolint:errcheck // client gone
		}
		s.lat.Observe(name, time.Since(start))
	})
}

// ---- endpoint handlers ----

func (s *Server) handleHealthz(*http.Request) (*apiResult, *apiError) {
	sn := s.current()
	body, err := marshalBody(struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Nodes      int    `json:"nodes"`
		Edges      int    `json:"edges"`
	}{"ok", sn.gen, sn.view.NumNodes(), sn.view.NumEdges()})
	if err != nil {
		return nil, err
	}
	return &apiResult{body: body, gen: sn.gen}, nil
}

// queryResponse is the /query body: the sorted column set, one object per
// match in the engine's deterministic order (Limit permitting), and the
// returned row count.
type queryResponse struct {
	Columns []string         `json:"columns"`
	Rows    []map[string]any `json:"rows"`
	Count   int              `json:"count"`
	Total   int              `json:"total"`
}

func (s *Server) handleQuery(r *http.Request) (*apiResult, *apiError) {
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	req, aerr := decodeQueryRequest(body)
	if aerr != nil {
		return nil, aerr
	}

	sn := s.current()
	key := cacheKey{gen: sn.gen, query: canonicalQuery(req.Query), limit: req.Limit}
	if cached, ok := s.cache.get(key); ok {
		mHits.Add(1)
		return &apiResult{body: cached, gen: sn.gen, cache: "hit"}, nil
	}
	mMisses.Add(1)

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	opts := vadalog.Options{
		Workers:  s.cfg.EngineWorkers,
		MaxFacts: s.cfg.MaxFacts,
		OnFault:  s.cfg.OnFault,
	}
	var rows []metalog.QueryRow
	var err error
	if s.cfg.PlannerOff {
		// Planner disabled: the pre-planner path, per request. The snapshot's
		// database is shared read-only across queries: the engine clones it
		// (OwnInput is left false); the catalog is cloned because translation
		// extends it with the query-result layout.
		rows, err = metalog.QueryDBCtx(ctx, sn.db, sn.cat.Clone(), req.Query, opts)
		if errors.Is(err, metalog.ErrStaleDatabase) {
			rows, err = metalog.QueryWithCatalogCtx(ctx, sn.view, sn.cat.Clone(), req.Query, opts)
		}
	} else {
		var prep *metalog.Prepared
		prep, _, err = s.preparedFor(sn, req.Query)
		if err == nil {
			rows, err = s.queryRows(ctx, sn, prep, req.Query, opts)
		}
	}
	if err != nil {
		return nil, mapEvalError(err)
	}

	resp := buildQueryResponse(rows, req.Limit)
	out, aerr := marshalBody(resp)
	if aerr != nil {
		return nil, aerr
	}
	s.cache.put(key, out)
	return &apiResult{body: out, gen: sn.gen, cache: "miss"}, nil
}

// queryRows runs a prepared query against the snapshot's shared database,
// with the stale-pattern fallback of the unplanned path: a pattern that
// mentions labels or properties the shared database has no columns for is
// re-extracted (and evaluated written-order) against a fresh catalog clone —
// slower, but the result is still cached under this generation.
func (s *Server) queryRows(ctx context.Context, sn *snapshot, prep *metalog.Prepared, query string, opts vadalog.Options) ([]metalog.QueryRow, error) {
	rows, err := prep.QueryDB(ctx, sn.db, opts)
	if errors.Is(err, metalog.ErrStaleDatabase) {
		rows, err = metalog.QueryWithCatalogCtx(ctx, sn.view, sn.cat.Clone(), query, opts)
	}
	return rows, err
}

// buildQueryResponse renders rows deterministically: columns are the sorted
// union of bound variables, cells are native JSON scalars (identifiers and
// Skolems as their canonical strings), and map-key marshaling keeps every
// row's field order sorted.
func buildQueryResponse(rows []metalog.QueryRow, limit int) queryResponse {
	colSet := map[string]bool{}
	for _, r := range rows {
		for k := range r {
			colSet[k] = true
		}
	}
	cols := make([]string, 0, len(colSet))
	for k := range colSet {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	total := len(rows)
	if limit > 0 && total > limit {
		rows = rows[:limit]
	}
	out := make([]map[string]any, len(rows))
	for i, r := range rows {
		m := make(map[string]any, len(r))
		for k, v := range r {
			m[k] = cellJSON(v)
		}
		out[i] = m
	}
	return queryResponse{Columns: cols, Rows: out, Count: len(out), Total: total}
}

func cellJSON(v value.Value) any {
	switch v.K {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Bool:
		return v.B
	case value.String:
		return v.S
	default: // ID, Skolem, Null
		return v.String()
	}
}

func (s *Server) handleStats(*http.Request) (*apiResult, *apiError) {
	sn := s.current()
	sn.statsOnce.Do(func() {
		// The expensive graph walk runs once per generation — mutations,
		// compactions and reloads install a fresh snapshot struct, so its
		// sync.Once naturally re-arms. mStatsComputes counts the walks; tests
		// assert N requests cost one.
		mStatsComputes.Add(1)
		sn.stats = graphstats.Compute(sn.view)
		// Snapshot-file generations carry their provenance header; plain
		// JSON generations marshal the bare stats, so existing outputs stay
		// bit-identical.
		var payload any = sn.stats
		if sn.build != nil {
			payload = struct {
				Build *snapfile.BuildInfo `json:"build"`
				graphstats.Stats
			}{sn.build, sn.stats}
		}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b = []byte(`{"error":"stats marshal failed"}`)
		}
		sn.statsJSON = append(b, '\n')
	})
	if s.wal == nil && s.cfg.PlannerOff {
		return &apiResult{body: sn.statsJSON, gen: sn.gen}, nil
	}
	// With the planner or a WAL active the response gains live sections — the
	// planner's cache and run counters, the WAL's durability lag and
	// compaction debt — re-marshaled per request around the cached graph
	// stats. Planner-off WAL-less responses above stay bit-identical to
	// previous builds.
	var ws *wal.Stats
	if s.wal != nil {
		w := s.wal.Stats()
		ws = &w
	}
	var ps *plannerSection
	if !s.cfg.PlannerOff {
		ps = s.plannerStats()
	}
	out, aerr := marshalBody(struct {
		Build *snapfile.BuildInfo `json:"build,omitempty"`
		graphstats.Stats
		Planner *plannerSection `json:"planner,omitempty"`
		WAL     *wal.Stats      `json:"wal,omitempty"`
	}{sn.build, sn.stats, ps, ws})
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: sn.gen}, nil
}

func (s *Server) handleValidate(r *http.Request) (*apiResult, *apiError) {
	if s.cfg.Schema == nil {
		return nil, &apiError{Status: http.StatusNotFound, Code: "no_schema",
			Message: "server was started without a schema; /validate is unavailable"}
	}
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	req, aerr := decodeValidateRequest(body)
	if aerr != nil {
		return nil, aerr
	}
	strategy := req.Strategy
	if strategy == "" {
		strategy = s.cfg.Strategy
	}
	view, err := models.NativeToPG(s.cfg.Schema, strategy)
	if err != nil {
		return nil, errBadRequest("translating schema: %v", err)
	}
	sn := s.current()
	violations := models.ValidateInstance(sn.view, view)
	violations = append(violations, models.ValidateModifiers(sn.view, s.cfg.Schema)...)
	out, aerr := marshalBody(struct {
		Schema     string             `json:"schema"`
		Strategy   string             `json:"strategy"`
		Conforms   bool               `json:"conforms"`
		Count      int                `json:"count"`
		Violations []models.Violation `json:"violations"`
	}{s.cfg.Schema.Name, strategy, len(violations) == 0, len(violations), violations})
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: sn.gen}, nil
}

func (s *Server) handleSchema(*http.Request) (*apiResult, *apiError) {
	sn := s.current()
	resp := struct {
		Name       string              `json:"name"`
		GSL        string              `json:"gsl,omitempty"`
		NodeLabels map[string][]string `json:"nodeLabels"`
		EdgeLabels map[string][]string `json:"edgeLabels"`
	}{NodeLabels: sn.cat.NodeProps, EdgeLabels: sn.cat.EdgeProps}
	if s.cfg.Schema != nil {
		resp.Name = s.cfg.Schema.Name
		resp.GSL = gsl.Serialize(s.cfg.Schema)
	}
	body, aerr := marshalBody(resp)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: body, gen: sn.gen}, nil
}

func (s *Server) handleReload(r *http.Request) (*apiResult, *apiError) {
	body, aerr := readBody(r.Body, s.cfg.MaxBody)
	if aerr != nil {
		return nil, aerr
	}
	req, aerr := decodeReloadRequest(body)
	if aerr != nil {
		return nil, aerr
	}
	info, err := s.Reload(req.Path)
	if err != nil {
		e := mapEvalError(err)
		if e.Code == "eval_failed" {
			e.Code = "load_failed"
		}
		return nil, e
	}
	out, aerr := marshalBody(info)
	if aerr != nil {
		return nil, aerr
	}
	return &apiResult{body: out, gen: info.Generation}, nil
}

func marshalBody(v any) ([]byte, *apiError) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, &apiError{Status: http.StatusInternalServerError, Code: "internal",
			Message: fmt.Sprintf("marshaling response: %v", err)}
	}
	return append(b, '\n'), nil
}
