package server

import (
	"strings"
	"testing"
)

// FuzzDecodeQuery exercises the /query request decoder — the surface raw
// client bytes cross before any worker slot is taken. The contract under
// fuzzing: decodeQueryRequest either returns a request or a typed apiError
// with a status and a code; it never panics, whatever the JSON shape or the
// MetaLog inside it (the MetaLog parser itself is additionally fuzzed by
// internal/metalog's FuzzParse). make fuzz-smoke gives this a short budget.
func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		`{"query":"(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y"}`,
		`{"query":"(x: Business)","limit":10}`,
		`{"query":""}`,
		`{"query":"((("}`,
		`{"query":"(x: Business)","limit":-5}`,
		`{"query":"(x: Business)","nope":true}`,
		`{"query":"(x: Business)"} trailing`,
		`{"query`,
		`[1,2,3]`,
		`null`,
		`"just a string"`,
		`{"query":"(x: B) ([: E])+ (y: B)"}`,
		`{"query":"(x: B; p: v), v > 1, v < "}`,
		`{"query":"` + strings.Repeat("(x: A),", 200) + `(y: B)"}`,
		"\xff\xfe{\"query\":\"(x: A)\"}",
		`{"limit":9223372036854775807,"query":"(x: A)"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, aerr := decodeQueryRequest(data)
		if (req == nil) == (aerr == nil) {
			t.Fatalf("decoder must return exactly one of request/error: req=%v err=%v", req, aerr)
		}
		if aerr != nil {
			if aerr.Status < 400 || aerr.Status > 599 {
				t.Fatalf("error status out of range: %d", aerr.Status)
			}
			if aerr.Code == "" {
				t.Fatal("error with empty code")
			}
			return
		}
		if req.Query == "" || req.Limit < 0 {
			t.Fatalf("decoder accepted invalid request: %+v", req)
		}
		// Canonicalization must be stable (cache keys depend on it).
		if canonicalQuery(req.Query) != canonicalQuery(canonicalQuery(req.Query)) {
			t.Fatal("canonicalQuery is not idempotent")
		}
	})
}

// FuzzDecodeMutation exercises the /mutate request decoder — raw client
// bytes that become graph mutations. The contract: decodeMutateRequest
// either returns a non-empty batch of structurally valid ops or a typed
// apiError; it never panics. Deep validation (ref resolution, duplicate
// handles) is deliberately out of scope here — it runs in overlay.Apply
// against live state, and its failures must also never tear the serving
// snapshot (TestChaosMutateSweep). make fuzz-smoke gives this a short
// budget.
func FuzzDecodeMutation(f *testing.F) {
	seeds := []string{
		`{"ops":[{"op":"add_node","name":"h","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"c"}}}]}`,
		`{"ops":[{"op":"add_edge","from":{"id":1},"to":{"name":"h"},"label":"OWNS","props":{"percentage":{"kind":"float","float":0.5}}}]}`,
		`{"ops":[{"op":"remove_node","node":{"id":3}}]}`,
		`{"ops":[{"op":"remove_edge","edge":7}]}`,
		`{"ops":[{"op":"set_node_prop","node":{"id":3},"key":"name","value":{"kind":"string","str":"x"}}]}`,
		`{"ops":[{"op":"set_node_prop","node":{"id":3},"key":"name"}]}`,
		`{"ops":[{"op":"del_node_prop","node":{"id":3},"key":"name"}]}`,
		`{"ops":[{"op":"add_label","node":{"id":3},"label":"Bank"}]}`,
		`{"ops":[{"op":"explode"}]}`,
		`{"ops":[]}`,
		`{"ops":[{"op":"add_node","props":{"k":{"kind":"complex"}}}]}`,
		`{"ops":[{"op":"add_node","props":{"k":{"kind":"int","int":9223372036854775807}}}]}`,
		`{"ops":null}`,
		`{"ops":[{"op":"add_node"},{"op":"add_node"}]} trailing`,
		`{"op":[{}]}`,
		`[]`,
		`null`,
		"\xff\xfe{\"ops\":[]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, aerr := decodeMutateRequest(data)
		if (ops == nil) == (aerr == nil) {
			t.Fatalf("decoder must return exactly one of batch/error: ops=%v err=%v", ops, aerr)
		}
		if aerr != nil {
			if aerr.Status < 400 || aerr.Status > 599 {
				t.Fatalf("error status out of range: %d", aerr.Status)
			}
			if aerr.Code == "" {
				t.Fatal("error with empty code")
			}
			return
		}
		if len(ops) == 0 || len(ops) > maxMutateOps {
			t.Fatalf("decoder accepted invalid batch size %d", len(ops))
		}
		for i, op := range ops {
			switch op.Kind {
			case "add_node", "add_edge", "remove_node", "remove_edge",
				"set_node_prop", "del_node_prop", "add_label":
			default:
				t.Fatalf("op %d: unvalidated kind %q", i, op.Kind)
			}
		}
	})
}

// FuzzExplain exercises the /explain request decoder with the same contract
// as FuzzDecodeQuery: any client bytes produce either a request or a typed
// apiError, never a panic, before the planner or a worker slot is touched.
// make fuzz-smoke gives this a short budget.
func FuzzExplain(f *testing.F) {
	seeds := []string{
		`{"query":"(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y"}`,
		`{"query":"(x: Business)","run":true}`,
		`{"query":"(x: Business)","run":false}`,
		`{"query":""}`,
		`{"query":"((("}`,
		`{"query":"(x: Business)","limit":10}`,
		`{"run":true}`,
		`{"query":"(x: B) ([: E])+ (y: B)","run":true}`,
		`{"query`,
		`[1,2,3]`,
		`null`,
		`{"query":"` + strings.Repeat("(x: A),", 200) + `(y: B)"}`,
		"\xff\xfe{\"query\":\"(x: A)\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, aerr := decodeExplainRequest(data)
		if (req == nil) == (aerr == nil) {
			t.Fatalf("decoder must return exactly one of request/error: req=%v err=%v", req, aerr)
		}
		if aerr != nil {
			if aerr.Status < 400 || aerr.Status > 599 {
				t.Fatalf("error status out of range: %d", aerr.Status)
			}
			if aerr.Code == "" {
				t.Fatal("error with empty code")
			}
			return
		}
		if req.Query == "" {
			t.Fatalf("decoder accepted invalid request: %+v", req)
		}
		if canonicalQuery(req.Query) != canonicalQuery(canonicalQuery(req.Query)) {
			t.Fatal("canonicalQuery is not idempotent")
		}
	})
}
