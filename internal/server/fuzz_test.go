package server

import (
	"strings"
	"testing"
)

// FuzzDecodeQuery exercises the /query request decoder — the surface raw
// client bytes cross before any worker slot is taken. The contract under
// fuzzing: decodeQueryRequest either returns a request or a typed apiError
// with a status and a code; it never panics, whatever the JSON shape or the
// MetaLog inside it (the MetaLog parser itself is additionally fuzzed by
// internal/metalog's FuzzParse). make fuzz-smoke gives this a short budget.
func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		`{"query":"(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y"}`,
		`{"query":"(x: Business)","limit":10}`,
		`{"query":""}`,
		`{"query":"((("}`,
		`{"query":"(x: Business)","limit":-5}`,
		`{"query":"(x: Business)","nope":true}`,
		`{"query":"(x: Business)"} trailing`,
		`{"query`,
		`[1,2,3]`,
		`null`,
		`"just a string"`,
		`{"query":"(x: B) ([: E])+ (y: B)"}`,
		`{"query":"(x: B; p: v), v > 1, v < "}`,
		`{"query":"` + strings.Repeat("(x: A),", 200) + `(y: B)"}`,
		"\xff\xfe{\"query\":\"(x: A)\"}",
		`{"limit":9223372036854775807,"query":"(x: A)"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, aerr := decodeQueryRequest(data)
		if (req == nil) == (aerr == nil) {
			t.Fatalf("decoder must return exactly one of request/error: req=%v err=%v", req, aerr)
		}
		if aerr != nil {
			if aerr.Status < 400 || aerr.Status > 599 {
				t.Fatalf("error status out of range: %d", aerr.Status)
			}
			if aerr.Code == "" {
				t.Fatal("error with empty code")
			}
			return
		}
		if req.Query == "" || req.Limit < 0 {
			t.Fatalf("decoder accepted invalid request: %+v", req)
		}
		// Canonicalization must be stable (cache keys depend on it).
		if canonicalQuery(req.Query) != canonicalQuery(canonicalQuery(req.Query)) {
			t.Fatal("canonicalQuery is not idempotent")
		}
	})
}
