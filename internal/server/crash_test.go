package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash-injection harness: a real kgserve-shaped child process is
// SIGKILLed mid-batch over a real TCP listener, and the recovered state must
// be bit-identical (through the snapfile encoder) to replaying exactly the
// batches the write-ahead log holds — which must bracket what the client saw
// acknowledged: acked ≤ recovered ≤ sent.
//
// The child is this very test binary re-executed with KGSERVE_CRASH_CHILD=1;
// TestMain diverts into runCrashChild before any test runs.

const crashChildEnv = "KGSERVE_CRASH_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		runCrashChild()
		return
	}
	os.Exit(m.Run())
}

// runCrashChild serves the configured graph with a WAL over a real listener
// and prints the address; it never exits on its own — the parent SIGKILLs it.
func runCrashChild() {
	srv, err := New(Config{
		Source:  os.Getenv("KGSERVE_CRASH_GRAPH"),
		WALDir:  os.Getenv("KGSERVE_CRASH_WAL"),
		WALSync: os.Getenv("KGSERVE_CRASH_SYNC"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
}

// crashOps generates the k-th mutation batch of a run as a canonical wire
// JSON array — the single source of truth both for what the parent POSTs and
// for what the differential reference replays. Every batch is valid against
// any state the earlier ones produce.
func crashOps(rng *rand.Rand, run, k int) string {
	tag := fmt.Sprintf("r%db%d", run, k)
	switch rng.Intn(3) {
	case 0: // a node and an edge into the base
		return fmt.Sprintf(`[{"op":"add_node","name":"w","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"%s"}}},
			{"op":"add_edge","from":{"name":"w"},"to":{"id":1},"label":"OWNS","props":{"percentage":{"kind":"float","float":0.3}}}]`, tag)
	case 1: // overwrite a base-node property
		return fmt.Sprintf(`[{"op":"set_node_prop","node":{"id":1},"key":"note","value":{"kind":"string","str":"%s"}}]`, tag)
	default: // a bare node
		return fmt.Sprintf(`[{"op":"add_node","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"%s"}}}]`, tag)
	}
}

// TestCrashRecoveryDifferential runs 25 seeded crash/recover cycles across
// the three fsync policies. Per run: N serial acknowledged batches, one more
// launched concurrently with a SIGKILL, then an in-process restart over the
// orphaned WAL. Invariants: the log replays acked..acked+1 batches, the
// recovered bytes equal a crash-free replay of exactly that prefix, and the
// next sequence number continues where the log ends.
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns real processes; skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	policies := []string{"always", "interval:5ms", "off"}

	for run := 0; run < 25; run++ {
		run := run
		t.Run(fmt.Sprintf("seed%02d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + run)))
			sync := policies[run%len(policies)]
			dir := t.TempDir()
			graph := filepath.Join(dir, "kg.json")
			walDir := filepath.Join(dir, "wal")
			f, err := os.Create(graph)
			if err != nil {
				t.Fatal(err)
			}
			if err := mutateBase(t).WriteJSON(f); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Launch the child and wait for its listener address.
			cmd := exec.Command(exe, "-test.run=^$")
			cmd.Env = append(os.Environ(),
				crashChildEnv+"=1",
				"KGSERVE_CRASH_GRAPH="+graph,
				"KGSERVE_CRASH_WAL="+walDir,
				"KGSERVE_CRASH_SYNC="+sync,
			)
			var childErr bytes.Buffer
			cmd.Stderr = &childErr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				cmd.Process.Kill()
				cmd.Wait()
			}()
			var addr string
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
					addr = a
					break
				}
			}
			if addr == "" {
				t.Fatalf("child never published an address (stderr: %s)", childErr.String())
			}
			go io.Copy(io.Discard, stdout)

			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			post := func(opsJSON string) (int, error) {
				resp, err := client.Post("http://"+addr+"/mutate", "application/json",
					strings.NewReader(`{"ops":`+opsJSON+`}`))
				if err != nil {
					return 0, err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return resp.StatusCode, nil
			}

			// Serial acknowledged prefix.
			nSerial := 1 + rng.Intn(4)
			batches := make([]string, 0, nSerial+1)
			for k := 0; k < nSerial; k++ {
				ops := crashOps(rng, run, k)
				batches = append(batches, ops)
				code, err := post(ops)
				if err != nil || code != http.StatusOK {
					t.Fatalf("serial batch %d: code %d err %v (child stderr: %s)",
						k, code, err, childErr.String())
				}
			}

			// The mid-batch kill: one more request races a SIGKILL. Whether
			// it lands is the point — the recovery invariant brackets it.
			final := crashOps(rng, run, nSerial)
			batches = append(batches, final)
			ackc := make(chan bool, 1)
			go func() {
				code, err := post(final)
				ackc <- err == nil && code == http.StatusOK
			}()
			time.Sleep(time.Duration(rng.Intn(2_000_000))) // 0–2ms into the batch
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()
			acked := nSerial
			if <-ackc {
				acked++
			}

			// In-process restart over the orphaned log (synchronous replay).
			s2, err := New(Config{Source: graph, WALDir: walDir, WALSync: sync})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer shutdownServer(t, s2)
			recovered := int(s2.WALStats().NextSeq) - 1
			if recovered < acked || recovered > nSerial+1 {
				t.Fatalf("recovered %d batches, want within [%d, %d]", recovered, acked, nSerial+1)
			}

			// Differential: a crash-free server fed exactly the recovered
			// prefix must encode to the same bytes.
			ref, err := New(Config{Source: graph})
			if err != nil {
				t.Fatal(err)
			}
			defer shutdownServer(t, ref)
			for k := 0; k < recovered; k++ {
				if w := postJSON(t, ref.Handler(), "/mutate", `{"ops":`+batches[k]+`}`); w.Code != http.StatusOK {
					t.Fatalf("reference batch %d: %d %s", k, w.Code, w.Body.String())
				}
			}
			if got, want := encodeView(t, s2), encodeView(t, ref); !bytes.Equal(got, want) {
				t.Fatalf("recovered state diverges from replaying the %d-batch prefix (policy %s)",
					recovered, sync)
			}

			// Sequence numbers continue exactly after the recovered prefix.
			if info := mustMutate(t, s2, walBatch(fmt.Sprintf("tail%d", run))); info.Seq != uint64(recovered+1) {
				t.Fatalf("post-recovery seq = %d, want %d", info.Seq, recovered+1)
			}
		})
	}
}
