package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fingraph"
)

// E20 serving benchmarks (EXPERIMENTS.md): end-to-end /query throughput
// over a real TCP listener with the result cache disabled, so every request
// is admitted, evaluated against the frozen snapshot, and marshaled.
//
// Two families:
//
//   - BenchmarkServeQueryC{1,2,8}: CPU-bound evaluation. Scaling with
//     client count here requires spare cores — on a single-core host the
//     curve is flat by construction, on an N-core host it tracks N.
//   - BenchmarkServeBackendC{1,8}: each request additionally carries a
//     fixed 5ms service-time floor (the server/handler fault site in delay
//     mode — simulating the backend/storage waits of a production stack).
//     Throughput here scales with how many requests the server genuinely
//     overlaps, independent of core count: a serialized server stays at
//     1x, the admission pool's concurrency shows up directly as the
//     C8/C1 ratio. This is the acceptance ratio recorded in
//     BENCH_serve.json.
func benchServe(b *testing.B, clients int, backendDelay time.Duration) {
	g := fingraph.GenerateTopology(fingraph.DefaultConfig(10, 5)).Shareholding()
	s, err := NewFromGraph(Config{CacheSize: 0, MaxInflight: 16, Timeout: -1}, g)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
		<-done
	}()

	url := "http://" + ln.Addr().String() + "/query"
	body := []byte(`{"query":"(x: Business; fiscalCode: c) [: OWNS; percentage: p] (y: Business), p > 0.5"}`)

	// Warm the path (and the lazily computed snapshot state) off the clock.
	warm, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body) //nolint:errcheck
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", warm.StatusCode)
	}

	if backendDelay > 0 {
		defer fault.Reset()
		if err := fault.Arm("server/handler", fault.Plan{
			Mode: fault.ModeDelay, Delay: backendDelay, Times: -1,
		}); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{}}
			defer client.CloseIdleConnections()
			for next.Add(1) <= int64(b.N) {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Error(fmt.Errorf("status %d", resp.StatusCode))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkServeQueryC1(b *testing.B) { benchServe(b, 1, 0) }
func BenchmarkServeQueryC2(b *testing.B) { benchServe(b, 2, 0) }
func BenchmarkServeQueryC8(b *testing.B) { benchServe(b, 8, 0) }

const backendFloor = 5 * time.Millisecond

func BenchmarkServeBackendC1(b *testing.B) { benchServe(b, 1, backendFloor) }
func BenchmarkServeBackendC8(b *testing.B) { benchServe(b, 8, backendFloor) }

// BenchmarkServeCacheHit measures the cache fast path: same canonical query,
// warm LRU — an upper bound on per-request overhead (decode, admission,
// lookup, write).
func BenchmarkServeCacheHit(b *testing.B) {
	g := fingraph.GenerateTopology(fingraph.DefaultConfig(10, 5)).Shareholding()
	s, err := NewFromGraph(Config{CacheSize: 8, MaxInflight: 16, Timeout: -1}, g)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
		<-done
	}()
	url := "http://" + ln.Addr().String() + "/query"
	body := []byte(`{"query":"(x: Business; fiscalCode: c) [: OWNS; percentage: p] (y: Business), p > 0.5"}`)
	client := &http.Client{}
	warm, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body) //nolint:errcheck
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
}
