package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/fault"
	"repro/internal/metalog"
	"repro/internal/vadalog"
)

// apiError is the typed error every endpoint returns to clients: an HTTP
// status plus a stable machine-readable code. The JSON shape is
//
//	{"error": {"code": "saturated", "message": "..."}}
//
// and every non-2xx response of the server — including injected faults and
// contained panics — carries it, so clients never have to parse free text.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Code + ": " + e.Message }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: fmt.Sprintf(format, args...)}
}

func errTooLarge(limit int64) *apiError {
	return &apiError{Status: http.StatusRequestEntityTooLarge, Code: "too_large",
		Message: fmt.Sprintf("request body exceeds %d bytes", limit)}
}

func errMethod(want string) *apiError {
	return &apiError{Status: http.StatusMethodNotAllowed, Code: "method_not_allowed",
		Message: "use " + want}
}

func errSaturated() *apiError {
	return &apiError{Status: http.StatusTooManyRequests, Code: "saturated",
		Message: "all query workers busy; retry with backoff"}
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client gone
		Error *apiError `json:"error"`
	}{e})
}

// queryRequest is the POST /query payload.
type queryRequest struct {
	// Query is the MetaLog body pattern to evaluate (docs/METALOG.md).
	Query string `json:"query"`
	// Limit caps the number of rows returned; 0 returns all.
	Limit int `json:"limit"`
}

// explainRequest is the POST /explain payload: the pattern to plan, and
// optionally Run to execute it and report actual rows next to the estimate.
type explainRequest struct {
	Query string `json:"query"`
	Run   bool   `json:"run"`
}

// reloadRequest is the POST /reload payload; an empty body (or empty path)
// reloads the server's configured source.
type reloadRequest struct {
	Path string `json:"path"`
}

// validateRequest is the POST /validate payload; an empty strategy uses the
// server's configured one.
type validateRequest struct {
	Strategy string `json:"strategy"`
}

// maxQueryLen bounds the pattern text independently of the body cap: a
// megabyte of conjuncts is an attack, not a query.
const maxQueryLen = 1 << 16

// readBody reads at most maxBody bytes, distinguishing "too large" from
// transport errors. A zero-length body is returned as-is; the per-request
// decoders decide whether that is allowed.
func readBody(r io.Reader, maxBody int64) ([]byte, *apiError) {
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	body, err := io.ReadAll(io.LimitReader(r, maxBody+1))
	if err != nil {
		return nil, errBadRequest("reading body: %v", err)
	}
	if int64(len(body)) > maxBody {
		return nil, errTooLarge(maxBody)
	}
	return body, nil
}

// decodeQueryRequest parses and validates a /query body. It is the surface
// FuzzDecodeQuery exercises: any input must produce either a request or a
// typed error, never a panic. The MetaLog pattern is parsed here too, so
// syntax errors come back as bad_query before a worker slot is taken.
func decodeQueryRequest(body []byte) (*queryRequest, *apiError) {
	req := &queryRequest{}
	if err := strictUnmarshal(body, req); err != nil {
		return nil, errBadRequest("decoding query request: %v", err)
	}
	req.Query = strings.TrimSpace(req.Query)
	if req.Query == "" {
		return nil, errBadRequest("empty query")
	}
	if len(req.Query) > maxQueryLen {
		return nil, errTooLarge(maxQueryLen)
	}
	if req.Limit < 0 {
		return nil, errBadRequest("negative limit %d", req.Limit)
	}
	if _, err := metalog.ParseBody(req.Query); err != nil {
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_query", Message: err.Error()}
	}
	return req, nil
}

// decodeExplainRequest parses and validates an /explain body, with the same
// guarantees as decodeQueryRequest (FuzzExplain exercises it): any input is
// either a request or a typed error, never a panic.
func decodeExplainRequest(body []byte) (*explainRequest, *apiError) {
	req := &explainRequest{}
	if err := strictUnmarshal(body, req); err != nil {
		return nil, errBadRequest("decoding explain request: %v", err)
	}
	req.Query = strings.TrimSpace(req.Query)
	if req.Query == "" {
		return nil, errBadRequest("empty query")
	}
	if len(req.Query) > maxQueryLen {
		return nil, errTooLarge(maxQueryLen)
	}
	if _, err := metalog.ParseBody(req.Query); err != nil {
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_query", Message: err.Error()}
	}
	return req, nil
}

// decodeReloadRequest parses a /reload body; empty bodies are valid and mean
// "reload the configured source".
func decodeReloadRequest(body []byte) (*reloadRequest, *apiError) {
	req := &reloadRequest{}
	if len(bytes.TrimSpace(body)) == 0 {
		return req, nil
	}
	if err := strictUnmarshal(body, req); err != nil {
		return nil, errBadRequest("decoding reload request: %v", err)
	}
	return req, nil
}

// decodeValidateRequest parses a /validate body; empty bodies are valid.
func decodeValidateRequest(body []byte) (*validateRequest, *apiError) {
	req := &validateRequest{}
	if len(bytes.TrimSpace(body)) == 0 {
		return req, nil
	}
	if err := strictUnmarshal(body, req); err != nil {
		return nil, errBadRequest("decoding validate request: %v", err)
	}
	return req, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data,
// so typos in request payloads fail loudly instead of being ignored.
func strictUnmarshal(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// mapEvalError classifies an evaluation failure into the typed error space:
// deadline and cancellation map onto their own codes (the PR 2 sentinels),
// injected faults and contained panics onto theirs, everything else onto a
// generic eval_failed.
func mapEvalError(err error) *apiError {
	var pe *fault.PanicError
	switch {
	case errors.Is(err, vadalog.ErrTimeout):
		return &apiError{Status: http.StatusGatewayTimeout, Code: "timeout", Message: err.Error()}
	case errors.Is(err, vadalog.ErrCanceled):
		// The client went away; the status is moot but keep it typed.
		return &apiError{Status: http.StatusRequestTimeout, Code: "canceled", Message: err.Error()}
	case errors.As(err, &pe):
		return &apiError{Status: http.StatusInternalServerError, Code: "panic", Message: err.Error()}
	case errors.Is(err, fault.ErrInjected):
		return &apiError{Status: http.StatusInternalServerError, Code: "injected", Message: err.Error()}
	default:
		return &apiError{Status: http.StatusInternalServerError, Code: "eval_failed", Message: err.Error()}
	}
}
