package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fingraph"
	"repro/internal/supermodel"
	"repro/internal/testutil"
)

// startE2E generates a dictionary the way cmd/kggen does, writes it to disk,
// and serves it over a real TCP listener — the full kggen → load → serve
// pipeline. It returns the base URL, the server, and an idempotent stop
// function (also registered as a cleanup fallback).
func startE2E(t *testing.T, cfg Config, companies int, seed int64) (string, *Server, func()) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.json")
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(companies, seed))
	g := topo.Shareholding()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Source = path
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-done; err != http.ErrServerClosed {
				t.Errorf("serve returned %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return "http://" + ln.Addr().String(), s, stop
}

// stripPlannerSection removes the live "planner" block from a /stats body so
// byte-identity assertions compare only the per-generation graph figures.
func stripPlannerSection(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshaling stats: %v", err)
	}
	delete(m, "planner")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func httpPost(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func httpGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

const e2eQuery = `(x: Business; fiscalCode: c) [: OWNS; percentage: p] (y: Business), p > 0.5`

// TestE2EPipeline runs the full serving lifecycle over a real listener:
// generate → load → query → reload → query, asserting the snapshot swap is
// invisible in the response bytes (bit-identical) while the generation
// header advances.
func TestE2EPipeline(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	func() {
		base, srv, stop := startE2E(t, Config{CacheSize: 64, Schema: supermodel.CompanyKG()}, 50, 7)
		defer stop()

		// Health: generation 1, sizes from the generator.
		code, _, body := httpGet(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz %d: %s", code, body)
		}
		var health struct {
			Generation uint64 `json:"generation"`
			Nodes      int    `json:"nodes"`
			Edges      int    `json:"edges"`
		}
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatal(err)
		}
		if health.Generation != 1 || health.Nodes == 0 || health.Edges == 0 {
			t.Fatalf("unexpected health %+v", health)
		}

		// Query against generation 1.
		qbody := fmt.Sprintf(`{"query":%q}`, e2eQuery)
		code, hdr1, resp1 := httpPost(t, base+"/query", qbody)
		if code != http.StatusOK {
			t.Fatalf("query %d: %s", code, resp1)
		}
		if hdr1.Get("X-KG-Generation") != "1" || hdr1.Get("X-KG-Cache") != "miss" {
			t.Fatalf("headers: gen=%q cache=%q", hdr1.Get("X-KG-Generation"), hdr1.Get("X-KG-Cache"))
		}
		var qr queryResponse
		if err := json.Unmarshal(resp1, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Total == 0 {
			t.Fatal("expected majority-ownership matches in the generated graph")
		}

		// Stats endpoint returns the §2.1 figures for the same snapshot.
		code, _, stats1 := httpGet(t, base+"/stats")
		if code != http.StatusOK {
			t.Fatalf("stats %d: %s", code, stats1)
		}

		// Reload the same file: a full off-line rebuild and atomic swap.
		code, _, rbody := httpPost(t, base+"/reload", `{}`)
		if code != http.StatusOK {
			t.Fatalf("reload %d: %s", code, rbody)
		}
		var rinfo ReloadInfo
		if err := json.Unmarshal(rbody, &rinfo); err != nil {
			t.Fatal(err)
		}
		if rinfo.Generation != 2 || rinfo.Nodes != health.Nodes || rinfo.Edges != health.Edges {
			t.Fatalf("unexpected reload info %+v", rinfo)
		}
		if srv.Generation() != 2 {
			t.Fatalf("server generation = %d", srv.Generation())
		}

		// Same query against generation 2: recomputed (the cache key moved
		// with the generation) yet bit-identical — the acceptance criterion
		// for snapshot swaps of identical data.
		code, hdr2, resp2 := httpPost(t, base+"/query", qbody)
		if code != http.StatusOK {
			t.Fatalf("query after reload %d: %s", code, resp2)
		}
		if hdr2.Get("X-KG-Generation") != "2" || hdr2.Get("X-KG-Cache") != "miss" {
			t.Fatalf("headers after reload: gen=%q cache=%q", hdr2.Get("X-KG-Generation"), hdr2.Get("X-KG-Cache"))
		}
		if !bytes.Equal(resp1, resp2) {
			t.Errorf("query responses differ across snapshot swap:\nbefore: %s\nafter: %s", resp1, resp2)
		}

		// Stats are likewise identical across the swap — modulo the live
		// planner section, whose cache and run counters moved with the
		// intervening query by design.
		code, _, stats2 := httpGet(t, base+"/stats")
		if code != http.StatusOK {
			t.Fatalf("stats after reload %d", code)
		}
		if !bytes.Equal(stripPlannerSection(t, stats1), stripPlannerSection(t, stats2)) {
			t.Errorf("stats differ across snapshot swap")
		}

		// Validation works over the network too (the generated shareholding
		// projection does not conform to the full Figure 4 design — the
		// endpoint must say so deterministically).
		code, _, v1 := httpPost(t, base+"/validate", `{}`)
		if code != http.StatusOK {
			t.Fatalf("validate %d: %s", code, v1)
		}
		code, _, v2 := httpPost(t, base+"/validate", `{}`)
		if code != http.StatusOK || !bytes.Equal(v1, v2) {
			t.Errorf("validate not deterministic")
		}
	}()
}

// TestE2EGracefulShutdown proves draining: a request in flight when
// Shutdown starts completes with 200, and the listener refuses new
// connections afterwards.
func TestE2EGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.json")
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(30, 11))
	g := topo.Shareholding()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := New(Config{Source: path})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Park the first request inside the handler for long enough that
	// Shutdown provably overlaps it.
	defer fault.Reset()
	if err := fault.Arm("server/handler", fault.Plan{
		Mode: fault.ModeDelay, Delay: 150 * time.Millisecond, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Launch a query and immediately start shutting down.
	result := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/query", "application/json",
			strings.NewReader(fmt.Sprintf(`{"query":%q}`, e2eQuery)))
		if err != nil {
			result <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the handler
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	if code := <-result; code != http.StatusOK {
		t.Errorf("in-flight request got %d, want 200", code)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
