package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fingraph"
	"repro/internal/testutil"
)

// The serving-layer chaos sweep, extending the PR 3 harness to the three
// server sites (server/load, server/freeze-swap, server/handler) in error
// and panic modes. Invariants per injection:
//
//   - the client sees a typed JSON error ({"error":{"code":...}}), never a
//     process crash or free-text 500;
//   - the snapshot generation never goes backwards, and a failed reload
//     leaves the serving snapshot fully functional;
//   - no goroutines leak.

func chaosServer(t *testing.T) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "kg.json")
	g := fingraph.GenerateTopology(fingraph.DefaultConfig(10, 3)).Shareholding()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := New(Config{Source: path, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestChaosServerSweep(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	defer fault.Reset()

	s, _ := chaosServer(t)
	query := `{"query":"(x: Business; fiscalCode: c) [: OWNS] (y: Business)"}`

	type inject struct {
		site     string
		mode     fault.Mode
		endpoint string // endpoint whose path crosses the site
		method   string
		body     string
		wantCode string // expected typed error code
	}
	cases := []inject{
		{"server/load", fault.ModeError, "/reload", http.MethodPost, `{}`, "injected"},
		{"server/load", fault.ModePanic, "/reload", http.MethodPost, `{}`, "panic"},
		{"server/freeze-swap", fault.ModeError, "/reload", http.MethodPost, `{}`, "injected"},
		{"server/freeze-swap", fault.ModePanic, "/reload", http.MethodPost, `{}`, "panic"},
		{"server/handler", fault.ModeError, "/query", http.MethodPost, query, "injected"},
		{"server/handler", fault.ModePanic, "/query", http.MethodPost, query, "panic"},
		{"server/handler", fault.ModeError, "/stats", http.MethodGet, "", "injected"},
		{"server/handler", fault.ModeError, "/reload", http.MethodPost, `{}`, "injected"},
	}

	for _, tc := range cases {
		name := fmt.Sprintf("%s/%s@%s", tc.site, tc.mode, tc.endpoint)
		t.Run(name, func(t *testing.T) {
			genBefore := s.Generation()
			fault.Reset()
			if err := fault.Arm(tc.site, fault.Plan{Mode: tc.mode}); err != nil {
				t.Fatal(err)
			}

			var w interface {
				Result() *http.Response
			}
			switch tc.method {
			case http.MethodGet:
				w = getPath(t, s.Handler(), tc.endpoint)
			default:
				w = postJSON(t, s.Handler(), tc.endpoint, tc.body)
			}
			resp := w.Result()
			defer resp.Body.Close()
			if fault.Fired(tc.site) == 0 {
				t.Fatalf("site %s never fired", tc.site)
			}
			if resp.StatusCode != http.StatusInternalServerError {
				t.Fatalf("status %d, want 500", resp.StatusCode)
			}
			var typed struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&typed); err != nil {
				t.Fatalf("error body is not typed JSON: %v", err)
			}
			if typed.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", typed.Error.Code, tc.wantCode, typed.Error.Message)
			}

			// Generation is monotonic and the failed operation left the
			// server fully functional.
			fault.Reset()
			if got := s.Generation(); got < genBefore {
				t.Fatalf("generation went backwards: %d -> %d", genBefore, got)
			}
			if hw := getPath(t, s.Handler(), "/healthz"); hw.Code != http.StatusOK {
				t.Fatalf("server unhealthy after injection: %d", hw.Code)
			}
			if qw := postJSON(t, s.Handler(), "/query", query); qw.Code != http.StatusOK {
				t.Fatalf("query broken after injection: %d %s", qw.Code, qw.Body.String())
			}
		})
	}
}

// TestChaosServerReloadKeepsServing drives traffic while reloads fail with
// injected faults: the serving snapshot must answer every request from the
// pre-fault generation, and a subsequent clean reload advances exactly one
// generation.
func TestChaosServerReloadKeepsServing(t *testing.T) {
	defer fault.Reset()
	s, _ := chaosServer(t)
	query := `{"query":"(x: Business; fiscalCode: c) [: OWNS] (y: Business)"}`

	w := postJSON(t, s.Handler(), "/query", query)
	if w.Code != http.StatusOK {
		t.Fatalf("baseline query: %d", w.Code)
	}
	baseline := w.Body.String()
	genBefore := s.Generation()

	// Three consecutive failing reloads (error on every hit).
	if err := fault.Arm("server/freeze-swap", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if rw := postJSON(t, s.Handler(), "/reload", `{}`); rw.Code != http.StatusInternalServerError {
			t.Fatalf("reload %d: status %d", i, rw.Code)
		}
		if qw := postJSON(t, s.Handler(), "/query", query); qw.Code != http.StatusOK || qw.Body.String() != baseline {
			t.Fatalf("serving snapshot disturbed by failed reload %d", i)
		}
		if s.Generation() != genBefore {
			t.Fatalf("generation moved on failed reload: %d", s.Generation())
		}
	}
	fault.Reset()

	if rw := postJSON(t, s.Handler(), "/reload", `{}`); rw.Code != http.StatusOK {
		t.Fatalf("clean reload failed: %d %s", rw.Code, rw.Body.String())
	}
	if s.Generation() != genBefore+1 {
		t.Fatalf("generation = %d, want %d", s.Generation(), genBefore+1)
	}
	if qw := postJSON(t, s.Handler(), "/query", query); qw.Code != http.StatusOK || qw.Body.String() != baseline {
		t.Fatal("post-reload query drifted")
	}
}

// TestChaosServerDelayMode exercises the delay mode on the handler site
// together with the request deadline: a slow dispatch path must not corrupt
// anything — the request still completes (the delay sits before evaluation,
// so the engine deadline is unaffected).
func TestChaosServerDelayMode(t *testing.T) {
	defer fault.Reset()
	s, _ := chaosServer(t)
	if err := fault.Arm("server/handler", fault.Plan{
		Mode: fault.ModeDelay, Delay: 20 * time.Millisecond, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	w := getPath(t, s.Handler(), "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("delay did not apply")
	}
}
