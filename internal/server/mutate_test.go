package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/pg"
	"repro/internal/testutil"
	"repro/internal/value"
)

// mutateBase is a small shareholding graph with a fully known layout:
// Business nodes (fiscalCode) connected by OWNS edges (percentage).
func mutateBase(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.New()
	a := g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("c1")})
	b := g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("c2")})
	if _, err := g.AddEdge(a.ID, b.ID, "OWNS", pg.Props{"percentage": value.FloatV(0.6)}); err != nil {
		t.Fatal(err)
	}
	return g
}

func queryRows(t *testing.T, s *Server, q string) (string, int) {
	t.Helper()
	w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, q))
	if w.Code != http.StatusOK {
		t.Fatalf("query %q: %d %s", q, w.Code, w.Body.String())
	}
	var resp struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return w.Body.String(), resp.Count
}

// TestMutateEndToEnd drives the live write path over HTTP: batches advance
// the generation, reads merge the overlay with no gap, the incremental and
// fallback fact-maintenance paths both serve correct query results, and
// compaction folds everything into a frozen generation whose persisted
// snapshot file reproduces the same answers.
func TestMutateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFromGraph(Config{CacheSize: 8, CompactDir: dir}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	const all = `(x: Business; fiscalCode: c)`

	if _, n := queryRows(t, s, all); n != 2 {
		t.Fatalf("baseline rows = %d, want 2", n)
	}

	// Batch 1: stays inside the catalog — the incremental path.
	w := postJSON(t, s.Handler(), "/mutate", `{"ops":[
		{"op":"add_node","name":"c3","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"c3"}}},
		{"op":"add_edge","from":{"name":"c3"},"to":{"id":1},"label":"OWNS","props":{"percentage":{"kind":"float","float":0.4}}}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	var info MutateInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || !info.Incremental || info.AddedNodes != 1 || info.AddedEdges != 1 {
		t.Fatalf("unexpected mutate info: %+v", info)
	}
	if got := w.Header().Get("X-KG-Generation"); got != "2" {
		t.Fatalf("generation header %q", got)
	}
	if _, n := queryRows(t, s, all); n != 3 {
		t.Fatalf("rows after add = %d, want 3", n)
	}
	if hw := getPath(t, s.Handler(), "/healthz"); hw.Code != http.StatusOK {
		t.Fatal("unhealthy after mutate")
	} else {
		var h struct{ Nodes, Edges int }
		if err := json.Unmarshal(hw.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		if h.Nodes != 3 || h.Edges != 2 {
			t.Fatalf("healthz counts %+v", h)
		}
	}

	// Batch 2: a new label grows the catalog — the full re-extract fallback.
	w = postJSON(t, s.Handler(), "/mutate", `{"ops":[
		{"op":"add_node","labels":["Person"],"props":{"fiscalCode":{"kind":"string","str":"p1"}}}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Incremental {
		t.Fatal("catalog-growing batch reported incremental")
	}
	if _, n := queryRows(t, s, `(p: Person; fiscalCode: c)`); n != 1 {
		t.Fatalf("Person rows = %d, want 1", n)
	}

	// Batch 3: retraction — the removed node takes its edge along.
	w = postJSON(t, s.Handler(), "/mutate", `{"ops":[{"op":"remove_node","node":{"id":2}}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", w.Code, w.Body.String())
	}
	if _, n := queryRows(t, s, all); n != 2 {
		t.Fatalf("rows after remove = %d, want 2", n)
	}
	if _, n := queryRows(t, s, `(x: Business) [: OWNS] (y: Business)`); n != 1 {
		t.Fatalf("OWNS rows after remove = %d, want 1", n)
	}

	// A bad batch must not advance anything: same generation, same bytes.
	before, _ := queryRows(t, s, all)
	genBefore := s.Generation()
	w = postJSON(t, s.Handler(), "/mutate", `{"ops":[{"op":"remove_node","node":{"id":999}}]}`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_mutation" {
		t.Fatalf("bad batch: %d %s", w.Code, w.Body.String())
	}
	if s.Generation() != genBefore {
		t.Fatal("generation moved on failed batch")
	}
	if after, _ := queryRows(t, s, all); after != before {
		t.Fatal("serving view disturbed by failed batch")
	}

	// Compaction folds the overlay, persists the generation, and the
	// persisted snapshot answers identically.
	preCompact, _ := queryRows(t, s, all)
	w = postJSON(t, s.Handler(), "/compact", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("compact: %d %s", w.Code, w.Body.String())
	}
	var ci CompactInfo
	if err := json.Unmarshal(w.Body.Bytes(), &ci); err != nil {
		t.Fatal(err)
	}
	if !ci.Compacted || ci.Path == "" {
		t.Fatalf("unexpected compact info: %+v", ci)
	}
	if _, err := os.Stat(ci.Path); err != nil {
		t.Fatalf("compacted snapshot not persisted: %v", err)
	}
	if got, _ := queryRows(t, s, all); got != preCompact {
		t.Fatal("compaction changed query results")
	}
	replica, err := New(Config{Source: ci.Path, CacheSize: 0})
	if err != nil {
		t.Fatalf("opening compacted snapshot: %v", err)
	}
	if got, _ := queryRows(t, replica, all); got != preCompact {
		t.Fatal("compacted snapshot file answers differently")
	}

	// A second compact is a no-op; mutations keep working on the new base.
	genBefore = s.Generation()
	w = postJSON(t, s.Handler(), "/compact", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("compact: %d %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ci); err != nil {
		t.Fatal(err)
	}
	if ci.Compacted || ci.Generation != genBefore {
		t.Fatalf("no-op compact moved the generation: %+v", ci)
	}
	w = postJSON(t, s.Handler(), "/mutate", `{"ops":[
		{"op":"add_node","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"c9"}}}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate after compact: %d %s", w.Code, w.Body.String())
	}
	if _, n := queryRows(t, s, all); n != 3 {
		t.Fatalf("rows after post-compact add = %d, want 3", n)
	}
}

// TestMutateDecodeErrors pins the typed-error surface of /mutate.
func TestMutateDecodeErrors(t *testing.T) {
	s, err := NewFromGraph(Config{}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body, code string
	}{
		{"malformed JSON", `{"ops":`, "bad_request"},
		{"unknown field", `{"opz":[]}`, "bad_request"},
		{"empty batch", `{"ops":[]}`, "bad_request"},
		{"unknown op", `{"ops":[{"op":"explode"}]}`, "bad_request"},
		{"missing value", `{"ops":[{"op":"set_node_prop","node":{"id":1},"key":"k"}]}`, "bad_request"},
		{"bad value kind", `{"ops":[{"op":"add_node","props":{"k":{"kind":"complex"}}}]}`, "bad_request"},
		{"unknown ref", `{"ops":[{"op":"add_edge","from":{"id":77},"to":{"id":1},"label":"OWNS"}]}`, "bad_mutation"},
		{"duplicate handle", `{"ops":[{"op":"add_node","name":"h"},{"op":"add_node","name":"h"}]}`, "bad_mutation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen := s.Generation()
			w := postJSON(t, s.Handler(), "/mutate", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			if got := errCode(t, w); got != tc.code {
				t.Errorf("code %q, want %q", got, tc.code)
			}
			if s.Generation() != gen {
				t.Error("generation moved on rejected batch")
			}
		})
	}
}

// TestChaosMutateSweep extends the chaos harness to the write path's fault
// sites (overlay/apply, overlay/compact) in error and panic modes. Per
// injection: a typed JSON error, a bit-identical serving view, an unmoved
// generation — and a clean retry that succeeds.
func TestChaosMutateSweep(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()
	defer fault.Reset()

	const all = `(x: Business; fiscalCode: c)`
	batch := `{"ops":[{"op":"add_node","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"cx"}}}]}`

	cases := []struct {
		site     string
		mode     fault.Mode
		endpoint string
		body     string
		wantCode string
	}{
		{"overlay/apply", fault.ModeError, "/mutate", batch, "injected"},
		{"overlay/apply", fault.ModePanic, "/mutate", batch, "panic"},
		{"overlay/compact", fault.ModeError, "/compact", "", "injected"},
		{"overlay/compact", fault.ModePanic, "/compact", "", "panic"},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/%s", tc.site, tc.mode)
		t.Run(name, func(t *testing.T) {
			fault.Reset()
			s, err := NewFromGraph(Config{CacheSize: 0}, mutateBase(t))
			if err != nil {
				t.Fatal(err)
			}
			// Give /compact an overlay to fold.
			if w := postJSON(t, s.Handler(), "/mutate", batch); w.Code != http.StatusOK {
				t.Fatalf("seeding batch: %d %s", w.Code, w.Body.String())
			}
			baseline, _ := queryRows(t, s, all)
			genBefore := s.Generation()

			if err := fault.Arm(tc.site, fault.Plan{Mode: tc.mode}); err != nil {
				t.Fatal(err)
			}
			w := postJSON(t, s.Handler(), tc.endpoint, tc.body)
			if fault.Fired(tc.site) == 0 {
				t.Fatalf("site %s never fired", tc.site)
			}
			if w.Code != http.StatusInternalServerError {
				t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
			}
			if got := errCode(t, w); got != tc.wantCode {
				t.Errorf("code %q, want %q", got, tc.wantCode)
			}
			fault.Reset()

			// The failed operation left the serving generation untouched —
			// same generation, bit-identical query bytes.
			if s.Generation() != genBefore {
				t.Fatalf("generation moved under fault: %d -> %d", genBefore, s.Generation())
			}
			if got, _ := queryRows(t, s, all); got != baseline {
				t.Fatal("serving view disturbed by injected fault")
			}

			// A clean retry succeeds and moves the generation forward only.
			w = postJSON(t, s.Handler(), tc.endpoint, tc.body)
			if w.Code != http.StatusOK {
				t.Fatalf("clean retry: %d %s", w.Code, w.Body.String())
			}
			if s.Generation() < genBefore {
				t.Fatal("generation went backwards")
			}
		})
	}
}

// TestChaosCompactFaultKeepsOverlayServing holds a persistent compaction
// fault while mutation batches keep landing: the overlay generation keeps
// serving every write and read, and once the fault clears, one compaction
// folds the accumulated overlay.
func TestChaosCompactFaultKeepsOverlayServing(t *testing.T) {
	defer fault.Reset()
	s, err := NewFromGraph(Config{CacheSize: 0}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	const all = `(x: Business; fiscalCode: c)`

	if err := fault.Arm("overlay/compact", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"add_node","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"b%d"}}}]}`, i)
		if w := postJSON(t, s.Handler(), "/mutate", body); w.Code != http.StatusOK {
			t.Fatalf("mutate %d under compact fault: %d %s", i, w.Code, w.Body.String())
		}
		if w := postJSON(t, s.Handler(), "/compact", ""); w.Code != http.StatusInternalServerError {
			t.Fatalf("compact %d should fail: %d", i, w.Code)
		}
		if _, n := queryRows(t, s, all); n != 2+i+1 {
			t.Fatalf("overlay generation stopped serving after failed compact %d", i)
		}
	}
	fault.Reset()

	genBefore := s.Generation()
	w := postJSON(t, s.Handler(), "/compact", "")
	if w.Code != http.StatusOK {
		t.Fatalf("clean compact: %d %s", w.Code, w.Body.String())
	}
	if s.Generation() != genBefore+1 {
		t.Fatalf("generation = %d, want %d", s.Generation(), genBefore+1)
	}
	if _, n := queryRows(t, s, all); n != 5 {
		t.Fatalf("rows after compact = %d, want 5", n)
	}
}

// TestServeSoakMutate is the write-path soak: 64 reader goroutines against
// one server while a writer streams mutation batches and a compactor
// periodically folds the overlay (run under -race; make test-race includes
// it). Readers tolerate result drift — the data is genuinely changing — but
// every response must be well-formed, the generation monotonic, and no
// goroutine may leak.
func TestServeSoakMutate(t *testing.T) {
	leak := testutil.CheckGoroutineLeak(t)
	defer leak()

	s, err := NewFromGraph(Config{CacheSize: 32, MaxInflight: 8}, mutateBase(t))
	if err != nil {
		t.Fatal(err)
	}
	runMutateSoak(t, s)
}

func runMutateSoak(t *testing.T, s *Server) {
	t.Helper()
	const (
		readers    = 64
		opsPerR    = 25
		writeOps   = 40
		compactEvr = 8 // writer compacts every N batches
	)
	queries := []string{
		`(x: Business; fiscalCode: c)`,
		`(x: Business) [: OWNS; percentage: p] (y: Business)`,
	}

	var (
		wg        sync.WaitGroup
		queriesOK atomic.Int64
		shed      atomic.Int64
		lastGen   atomic.Uint64
	)
	lastGen.Store(s.Generation())
	errs := make(chan string, readers+1)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	checkGen := func() bool {
		for {
			prev := lastGen.Load()
			cur := s.Generation()
			if cur < prev {
				fail("generation went backwards: %d -> %d", prev, cur)
				return false
			}
			if cur == prev || lastGen.CompareAndSwap(prev, cur) {
				return true
			}
		}
	}

	// The writer: streams batches that add a node + an edge, retracts some of
	// its own creations (via the assigned-OID report), and periodically folds
	// the overlay. Writes are serialized by the server; each one advances the
	// generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var mine []int64 // OIDs this writer created and may retract
		for i := 0; i < writeOps; i++ {
			body := fmt.Sprintf(`{"ops":[
				{"op":"add_node","name":"w","labels":["Business"],"props":{"fiscalCode":{"kind":"string","str":"w%d"}}},
				{"op":"add_edge","from":{"name":"w"},"to":{"id":1},"label":"OWNS","props":{"percentage":{"kind":"float","float":0.1}}}
			]}`, i)
			w := postJSON(t, s.Handler(), "/mutate", body)
			if w.Code != http.StatusOK {
				fail("writer batch %d: %d %s", i, w.Code, w.Body.String())
				return
			}
			var info MutateInfo
			if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
				fail("writer batch %d: %v", i, err)
				return
			}
			if id, ok := info.Assigned["w"]; ok {
				mine = append(mine, id)
			}
			// Retraction-heavy interleaving: every third batch removes an
			// earlier creation (cascading its edge).
			if i%3 == 2 && len(mine) > 1 {
				id := mine[0]
				mine = mine[1:]
				rb := fmt.Sprintf(`{"ops":[{"op":"remove_node","node":{"id":%d}}]}`, id)
				if w := postJSON(t, s.Handler(), "/mutate", rb); w.Code != http.StatusOK {
					fail("writer retract %d: %d %s", i, w.Code, w.Body.String())
					return
				}
			}
			if i%compactEvr == compactEvr-1 {
				if w := postJSON(t, s.Handler(), "/compact", ""); w.Code != http.StatusOK {
					fail("writer compact %d: %d %s", i, w.Code, w.Body.String())
					return
				}
			}
			if !checkGen() {
				return
			}
		}
	}()

	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for op := 0; op < opsPerR; op++ {
				switch (ri + op) % 8 {
				case 0:
					if w := getPath(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
						fail("healthz %d", w.Code)
						return
					}
				case 1:
					w := getPath(t, s.Handler(), "/stats")
					if w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
						fail("stats %d: %s", w.Code, w.Body.String())
						return
					}
				default:
					q := queries[(ri+op)%len(queries)]
					w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, q))
					switch w.Code {
					case http.StatusTooManyRequests:
						shed.Add(1)
					case http.StatusOK:
						// The data is changing under us, so no fixed expected
						// body — but the response must be well-formed and
						// internally consistent.
						var resp struct {
							Rows  []map[string]any `json:"rows"`
							Count int              `json:"count"`
						}
						if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
							fail("malformed query body: %v", err)
							return
						}
						if resp.Count != len(resp.Rows) {
							fail("count %d != rows %d", resp.Count, len(resp.Rows))
							return
						}
						queriesOK.Add(1)
					default:
						fail("query %d: %s", w.Code, w.Body.String())
						return
					}
				}
				if !checkGen() {
					return
				}
			}
		}(ri)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if queriesOK.Load() == 0 {
		t.Fatal("no query ever succeeded under the write soak")
	}

	// Quiesced end state: the served view answers identically to a fresh
	// server rebuilt from a compaction of that same view — no drift between
	// the incremental lineage and ground truth.
	if w := postJSON(t, s.Handler(), "/compact", ""); w.Code != http.StatusOK {
		t.Fatalf("final compact: %d %s", w.Code, w.Body.String())
	}
	final, _ := queryRows(t, s, queries[0])
	sn := s.current()
	ref, err := NewFromGraph(Config{CacheSize: 0}, sn.frozen.Thaw())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := queryRows(t, ref, queries[0]); got != final {
		t.Fatal("incremental lineage drifted from a from-scratch rebuild")
	}
	t.Logf("mutate soak: %d ok queries, %d shed, final generation %d",
		queriesOK.Load(), shed.Load(), s.Generation())
}
