package server

import "sync"

// pool is the admission controller for the compute endpoints: a counting
// semaphore sized to the worker budget. Acquisition never queues — a full
// pool turns the request away immediately with 429, which keeps tail
// latency bounded under overload (shed, don't buffer). drain() waits for
// in-flight work during graceful shutdown.
type pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{sem: make(chan struct{}, workers)}
}

// tryAcquire claims a worker slot if one is free; it never blocks.
func (p *pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		p.wg.Add(1)
		return true
	default:
		return false
	}
}

func (p *pool) release() {
	<-p.sem
	p.wg.Done()
}

// inflight reports the number of currently held slots.
func (p *pool) inflight() int { return len(p.sem) }

// drain blocks until every held slot is released. New tryAcquire calls can
// still succeed while draining; the server stops routing requests before it
// drains.
func (p *pool) drain() { p.wg.Wait() }
