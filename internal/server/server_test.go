package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pg"
	"repro/internal/supermodel"
	"repro/internal/value"
)

// tinyGraph is the two-company control graph used by the golden tests:
// node 1 (ACME) controls node 2 (Bolt) through edge 3.
func tinyGraph() *pg.Graph {
	g := pg.New()
	a := g.AddNode([]string{"Business"}, pg.Props{"businessName": value.Str("ACME")})
	b := g.AddNode([]string{"Business"}, pg.Props{"businessName": value.Str("Bolt")})
	g.MustAddEdge(a.ID, b.ID, "CONTROLS", nil)
	return g
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewFromGraph(cfg, tinyGraph())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func errCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var resp struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("error body is not typed JSON: %v: %q", err, w.Body.String())
	}
	if resp.Error.Code == "" {
		t.Fatalf("error body has empty code: %q", w.Body.String())
	}
	return resp.Error.Code
}

const controlQuery = `(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y`

func TestQueryGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/query", `{"query":"(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	golden := `{
  "columns": [
    "n",
    "x",
    "y"
  ],
  "rows": [
    {
      "n": "ACME",
      "x": 1,
      "y": 2
    }
  ],
  "count": 1,
  "total": 1
}
`
	if got := w.Body.String(); got != golden {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if gen := w.Header().Get("X-KG-Generation"); gen != "1" {
		t.Errorf("generation header = %q, want 1", gen)
	}
	if c := w.Header().Get("X-KG-Cache"); c != "miss" {
		t.Errorf("cache header = %q, want miss (cache disabled still reports miss)", c)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	w := getPath(t, s.Handler(), "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Nodes      int    `json:"nodes"`
		Edges      int    `json:"edges"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Generation != 1 || resp.Nodes != 2 || resp.Edges != 1 {
		t.Errorf("unexpected healthz: %+v", resp)
	}
}

func TestQueryCacheHitIsBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 8})
	body := fmt.Sprintf(`{"query":%q}`, controlQuery)
	w1 := postJSON(t, s.Handler(), "/query", body)
	// Same pattern with scrambled whitespace must canonicalize to the same
	// cache key.
	w2 := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`,
		"(x: Business;  businessName: n)\n\t[: CONTROLS] (y: Business),\n x != y"))
	if w1.Header().Get("X-KG-Cache") != "miss" || w2.Header().Get("X-KG-Cache") != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit",
			w1.Header().Get("X-KG-Cache"), w2.Header().Get("X-KG-Cache"))
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Errorf("cache hit body differs from miss body")
	}
	// A different limit is a different key.
	w3 := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q,"limit":1}`, controlQuery))
	if w3.Header().Get("X-KG-Cache") != "miss" {
		t.Errorf("different limit should miss, got %q", w3.Header().Get("X-KG-Cache"))
	}
}

func TestQueryLimit(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/query", `{"query":"(x: Business; businessName: n)","limit":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Total != 2 || len(resp.Rows) != 1 {
		t.Errorf("limit not applied: count=%d total=%d rows=%d", resp.Count, resp.Total, len(resp.Rows))
	}
}

func TestDecodeErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxBody: 256})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed JSON", `{"query":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"query":"(x: Business)","nope":1}`, http.StatusBadRequest, "bad_request"},
		{"trailing data", `{"query":"(x: Business)"} extra`, http.StatusBadRequest, "bad_request"},
		{"empty query", `{"query":"  "}`, http.StatusBadRequest, "bad_request"},
		{"negative limit", `{"query":"(x: Business)","limit":-1}`, http.StatusBadRequest, "bad_request"},
		{"bad metalog", `{"query":"((("}`, http.StatusBadRequest, "bad_query"},
		{"no variables", `{"query":"(: Business)"}`, http.StatusInternalServerError, "eval_failed"},
		{"oversized body", `{"query":"` + strings.Repeat("x", 300) + `"}`, http.StatusRequestEntityTooLarge, "too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s.Handler(), "/query", tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if code := errCode(t, w); code != tc.code {
				t.Errorf("code %q, want %q", code, tc.code)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	w := getPath(t, s.Handler(), "/query")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", w.Code)
	}
	if code := errCode(t, w); code != "method_not_allowed" {
		t.Errorf("code %q", code)
	}
	if allow := w.Header().Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q", allow)
	}
}

func TestAdmissionControl(t *testing.T) {
	// Pool of 1, occupied directly: a request arriving while every worker
	// slot is held must be shed with a typed 429, not queued.
	s := newTestServer(t, Config{MaxInflight: 1})
	if !s.pool.tryAcquire() {
		t.Fatal("pool should have a free slot")
	}
	defer s.pool.release()
	w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if code := errCode(t, w); code != "saturated" {
		t.Errorf("code %q, want saturated", code)
	}
}

func TestQueryTimeout(t *testing.T) {
	s := newTestServer(t, Config{Timeout: time.Nanosecond})
	w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, controlQuery))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if code := errCode(t, w); code != "timeout" {
		t.Errorf("code %q, want timeout", code)
	}
}

func TestValidateEndpoints(t *testing.T) {
	noSchema := newTestServer(t, Config{})
	w := postJSON(t, noSchema.Handler(), "/validate", `{}`)
	if w.Code != http.StatusNotFound || errCode(t, w) != "no_schema" {
		t.Fatalf("no-schema validate: status %d body %s", w.Code, w.Body.String())
	}

	s := newTestServer(t, Config{Schema: supermodel.CompanyKG()})
	w = postJSON(t, s.Handler(), "/validate", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Schema   string `json:"schema"`
		Strategy string `json:"strategy"`
		Conforms bool   `json:"conforms"`
		Count    int    `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Schema != "CompanyKG" || resp.Strategy != "multi-label" {
		t.Errorf("unexpected validate response: %+v", resp)
	}
	// The tiny graph misses mandatory Company KG properties; the endpoint
	// must report that, not hide it.
	if resp.Conforms || resp.Count == 0 {
		t.Errorf("expected violations on the tiny graph, got %+v", resp)
	}

	w = postJSON(t, s.Handler(), "/validate", `{"strategy":"no-such-strategy"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad strategy: status %d", w.Code)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Schema: supermodel.CompanyKG()})
	w := getPath(t, s.Handler(), "/schema")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp struct {
		Name       string              `json:"name"`
		GSL        string              `json:"gsl"`
		NodeLabels map[string][]string `json:"nodeLabels"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "CompanyKG" || resp.GSL == "" {
		t.Errorf("schema response missing design: %+v", resp.Name)
	}
	if _, ok := resp.NodeLabels["Business"]; !ok {
		t.Errorf("catalog layout missing Business label: %v", resp.NodeLabels)
	}
}

func TestReloadErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	// No configured source and no path.
	w := postJSON(t, s.Handler(), "/reload", ``)
	if w.Code != http.StatusInternalServerError || errCode(t, w) != "load_failed" {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	// Nonexistent path: typed error, generation untouched.
	w = postJSON(t, s.Handler(), "/reload", `{"path":"/nonexistent/kg.json"}`)
	if w.Code != http.StatusInternalServerError || errCode(t, w) != "load_failed" {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	if s.Generation() != 1 {
		t.Errorf("generation moved on failed reload: %d", s.Generation())
	}
}

func TestCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(q string) cacheKey { return cacheKey{gen: 1, query: q} }
	c.put(k("a"), []byte("A"))
	c.put(k("b"), []byte("B"))
	if _, ok := c.get(k("a")); !ok {
		t.Fatal("a evicted too early")
	}
	c.put(k("c"), []byte("C")) // evicts b (a was just used)
	if _, ok := c.get(k("b")); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.get(k("a")); !ok || string(got) != "A" {
		t.Errorf("a lost: %q %v", got, ok)
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Overwrite keeps one entry.
	c.put(k("a"), []byte("A2"))
	if got, _ := c.get(k("a")); string(got) != "A2" {
		t.Errorf("overwrite lost: %q", got)
	}

	off := newResultCache(0)
	off.put(k("x"), []byte("X"))
	if _, ok := off.get(k("x")); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestCanonicalQuery(t *testing.T) {
	a := canonicalQuery("  (x: Business)\n\t[: OWNS]   (y: Business)  ")
	b := canonicalQuery("(x: Business) [: OWNS] (y: Business)")
	if a != b {
		t.Errorf("canonical forms differ: %q vs %q", a, b)
	}
}

func TestPool(t *testing.T) {
	p := newPool(2)
	if !p.tryAcquire() || !p.tryAcquire() {
		t.Fatal("two slots expected")
	}
	if p.tryAcquire() {
		t.Fatal("third acquire should fail")
	}
	if p.inflight() != 2 {
		t.Errorf("inflight = %d", p.inflight())
	}
	done := make(chan struct{})
	go func() { p.drain(); close(done) }()
	select {
	case <-done:
		t.Fatal("drain returned with slots held")
	case <-time.After(20 * time.Millisecond):
	}
	p.release()
	p.release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not return after release")
	}
}

func TestLatencyTracked(t *testing.T) {
	s := newTestServer(t, Config{})
	getPath(t, s.Handler(), "/healthz")
	getPath(t, s.Handler(), "/healthz")
	snap := s.Latency().Snapshot()
	for _, op := range snap {
		if op.Name == "healthz" {
			if op.Count != 2 {
				t.Errorf("healthz count = %d", op.Count)
			}
			return
		}
	}
	t.Error("healthz missing from latency snapshot")
}

func TestConcurrentQueriesShareSnapshot(t *testing.T) {
	// The catalog-clone discipline: concurrent queries with different
	// variable sets against one shared snapshot must not interfere (this is
	// the regression test for sharing the snapshot catalog un-cloned).
	s := newTestServer(t, Config{MaxInflight: 8})
	queries := []string{
		`(x: Business; businessName: n) [: CONTROLS] (y: Business), x != y`,
		`(a: Business; businessName: m)`,
		`(p: Business) [e: CONTROLS] (q: Business)`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, q))
		if w.Code != http.StatusOK {
			t.Fatalf("probe %d: %s", w.Code, w.Body.String())
		}
		want[i] = w.Body.String()
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qi := (g + i) % len(queries)
				w := postJSON(t, s.Handler(), "/query", fmt.Sprintf(`{"query":%q}`, queries[qi]))
				if w.Code == http.StatusTooManyRequests {
					continue // shed is a valid outcome
				}
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", w.Code, w.Body.String())
					return
				}
				if w.Body.String() != want[qi] {
					errs <- fmt.Sprintf("query %d result drifted under concurrency", qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestQueryAbsentPropFallsBack: a pattern mentioning a property absent from
// the snapshot's pre-extracted database takes the re-extraction slow path
// (metalog.ErrStaleDatabase → QueryWithCatalogCtx against the frozen view)
// and still answers 200, with the result cached like any other.
func TestQueryAbsentPropFallsBack(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 8})
	body := `{"query":"(x: Business; nope: v) [: CONTROLS] (y: Business)"}`
	w := postJSON(t, s.Handler(), "/query", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 1 {
		t.Fatalf("total = %d: %s", resp.Total, w.Body.String())
	}
	for _, c := range resp.Columns {
		if c == "v" {
			t.Fatalf("absent property surfaced as column: %v", resp.Columns)
		}
	}
	// Second request is served from the cache, byte-identical.
	w2 := postJSON(t, s.Handler(), "/query", body)
	if got := w2.Header().Get("X-KG-Cache"); got != "hit" {
		t.Fatalf("X-KG-Cache = %q, want hit", got)
	}
	if w2.Body.String() != w.Body.String() {
		t.Fatal("fallback result not cached bit-identically")
	}
}
