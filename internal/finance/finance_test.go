package finance

import (
	"testing"

	"repro/internal/fingraph"
	"repro/internal/metalog"
	"repro/internal/pg"
	"repro/internal/vadalog"
	"repro/internal/value"
)

// metalogControlPairs runs the Entity control program over the shareholding
// graph and returns the non-self control pairs as entity ids.
func metalogControlPairs(t *testing.T, topo *fingraph.Topology) map[ControlPair]bool {
	t.Helper()
	g := topo.Shareholding()
	prog, err := metalog.Parse(ControlEntityProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	// Map graph OIDs back to entity ids via fiscal codes.
	idOf := map[pg.OID]int{}
	for _, n := range g.Nodes() {
		fc := n.Props["fiscalCode"].S
		var idx int
		if _, err := scan(fc[2:], &idx); err != nil {
			t.Fatalf("bad fiscal code %q", fc)
		}
		if fc[:2] == "CO" {
			idOf[n.ID] = idx
		} else {
			idOf[n.ID] = -(idx + 1)
		}
	}
	out := map[ControlPair]bool{}
	for _, e := range g.EdgesByLabel("CONTROLS") {
		a, b := idOf[e.From], idOf[e.To]
		if a == b {
			continue
		}
		out[ControlPair{a, b}] = true
	}
	return out
}

func scan(s string, out *int) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	*out = n
	return n, nil
}

// TestControlMetaLogVsNative cross-validates the declarative control
// computation against the native worklist algorithm on random topologies.
func TestControlMetaLogVsNative(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		topo := fingraph.GenerateTopology(fingraph.DefaultConfig(120, seed))
		own := BuildOwnership(topo)
		native := map[ControlPair]bool{}
		for _, p := range NativeControl(own, false) {
			native[p] = true
		}
		ml := metalogControlPairs(t, topo)
		for p := range native {
			if !ml[p] {
				t.Errorf("seed %d: native pair %v missing from MetaLog result", seed, p)
			}
		}
		for p := range ml {
			if !native[p] {
				t.Errorf("seed %d: MetaLog pair %v missing from native result", seed, p)
			}
		}
		if len(native) == 0 {
			t.Errorf("seed %d: no control pairs at all — generator too sparse for the test", seed)
		}
	}
}

// TestControlVadalogExample42 runs the plain Vadalog form (Example 4.2) and
// checks it agrees with the native algorithm restricted to companies.
func TestControlVadalogExample42(t *testing.T) {
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(150, 99))
	own := BuildOwnership(topo)

	prog := vadalog.MustParse(ControlVadalog())
	db := vadalog.NewDatabase()
	for _, e := range own.Entities {
		if e >= 0 {
			db.MustAddFact("company", value.IntV(int64(e)))
		}
	}
	for owner, stakes := range own.Out {
		if owner < 0 {
			continue // Example 4.2 reasons over companies only
		}
		for _, st := range stakes {
			db.MustAddFact("owns", value.IntV(int64(owner)), value.IntV(int64(st.Company)), value.FloatV(st.Pct))
		}
	}
	res, err := vadalog.Run(prog, db, vadalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[ControlPair]bool{}
	for _, f := range res.Output("controls") {
		a, b := int(f[0].I), int(f[1].I)
		if a != b {
			got[ControlPair{a, b}] = true
		}
	}
	// Native restricted to company-only ownership edges.
	companyOwn := &Ownership{Out: map[int][]StakeTo{}, In: map[int][]StakeFrom{}}
	for owner, stakes := range own.Out {
		if owner >= 0 {
			companyOwn.Out[owner] = stakes
		}
	}
	companyOwn.Entities = nil
	for _, e := range own.Entities {
		if e >= 0 {
			companyOwn.Entities = append(companyOwn.Entities, e)
		}
	}
	want := map[ControlPair]bool{}
	for _, p := range NativeControl(companyOwn, true) {
		want[p] = true
	}
	if len(got) != len(want) {
		t.Fatalf("control pair count: vadalog %d vs native %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestIntegratedOwnershipChain(t *testing.T) {
	// a owns 80% of b, b owns 50% of c: IO(a,c) = 0.4.
	topo := &fingraph.Topology{Companies: 3}
	co := func(i int) fingraph.Holder { return fingraph.Holder{IsCompany: true, Index: i} }
	topo.Stakes = []fingraph.Stake{
		{Holder: co(0), Company: 1, Pct: 0.8},
		{Holder: co(1), Company: 2, Pct: 0.5},
	}
	own := BuildOwnership(topo)
	io := IntegratedOwnership(own, 0, 1e-9, 100)
	if got := io[1]; !close(got, 0.8) {
		t.Errorf("IO(a,b) = %v", got)
	}
	if got := io[2]; !close(got, 0.4) {
		t.Errorf("IO(a,c) = %v", got)
	}
}

func TestIntegratedOwnershipCycleConverges(t *testing.T) {
	// a owns 60% of b, b owns 30% of a (cross-holding): the geometric series
	// along the 2-cycle converges.
	topo := &fingraph.Topology{Companies: 2}
	co := func(i int) fingraph.Holder { return fingraph.Holder{IsCompany: true, Index: i} }
	topo.Stakes = []fingraph.Stake{
		{Holder: co(0), Company: 1, Pct: 0.6},
		{Holder: co(1), Company: 0, Pct: 0.3},
	}
	own := BuildOwnership(topo)
	io := IntegratedOwnership(own, 0, 1e-12, 1000)
	// Paths a->b, a->b->a->b (excluded: returns to a are cut), so IO(a,b)
	// stays at the direct 0.6 because paths through a itself are pruned.
	if got := io[1]; !close(got, 0.6) {
		t.Errorf("IO(a,b) = %v, want 0.6", got)
	}
}

func TestCloseLinksCommonParent(t *testing.T) {
	// z owns 30% of x and 25% of y: x-y close-linked via common parent; z
	// linked to both directly.
	topo := &fingraph.Topology{Companies: 3}
	co := func(i int) fingraph.Holder { return fingraph.Holder{IsCompany: true, Index: i} }
	topo.Stakes = []fingraph.Stake{
		{Holder: co(2), Company: 0, Pct: 0.3},
		{Holder: co(2), Company: 1, Pct: 0.25},
	}
	own := BuildOwnership(topo)
	links := CloseLinks(own, own.Entities, 0.2, 1e-9, 100)
	want := []CloseLinkPair{{0, 1}, {0, 2}, {1, 2}}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Errorf("links[%d] = %v, want %v", i, links[i], want[i])
		}
	}
}

func TestCloseLinksIndirect(t *testing.T) {
	// a owns 50% of b, b owns 50% of c: IO(a,c) = 0.25 ≥ 0.2 — an indirect
	// close link the direct-only rule would miss.
	topo := &fingraph.Topology{Companies: 3}
	co := func(i int) fingraph.Holder { return fingraph.Holder{IsCompany: true, Index: i} }
	topo.Stakes = []fingraph.Stake{
		{Holder: co(0), Company: 1, Pct: 0.5},
		{Holder: co(1), Company: 2, Pct: 0.5},
	}
	own := BuildOwnership(topo)
	links := CloseLinks(own, own.Entities, 0.2, 1e-9, 100)
	found := false
	for _, l := range links {
		if l == (CloseLinkPair{0, 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("indirect close link a~c missing: %v", links)
	}
}

func TestGroups(t *testing.T) {
	pairs := []ControlPair{
		{0, 1}, {0, 2}, {1, 2}, // 0 is ultimate, controls 1 and 2; 1 controls 2 but is itself controlled
		{5, 6},
	}
	groups := Groups(pairs)
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Ultimate != 0 || len(groups[0].Controlled) != 2 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Ultimate != 5 || len(groups[1].Controlled) != 1 {
		t.Errorf("group 1 = %+v", groups[1])
	}
}

// TestOwnershipAndFamilyPrograms runs the full intensional component over a
// small Company KG instance: ownership compaction, then families.
func TestOwnershipAndFamilyPrograms(t *testing.T) {
	topo := fingraph.GenerateTopology(fingraph.DefaultConfig(40, 3))
	g := topo.CompanyKG()

	prog, err := metalog.Parse(OwnershipProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatalf("ownership compaction: %v", err)
	}
	owns := g.EdgesByLabel("OWNS")
	if len(owns) == 0 {
		t.Fatal("no OWNS edges derived")
	}
	// Every business with a stakeholder got the intensional count.
	countSet := 0
	for _, n := range g.NodesByLabel("Business") {
		if v, ok := n.Props["numberOfStakeholders"]; ok && v.I > 0 {
			countSet++
		}
	}
	if countSet == 0 {
		t.Error("numberOfStakeholders never set")
	}

	famProg, err := metalog.Parse(FamilyProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metalog.Reason(famProg, g, vadalog.Options{}); err != nil {
		t.Fatalf("family program: %v", err)
	}
	fams := g.NodesByLabel("Family")
	if len(fams) == 0 || len(fams) > 10 {
		t.Errorf("families = %d, want one per surname (max 10)", len(fams))
	}
	if len(g.EdgesByLabel("BELONGS_TO_FAMILY")) == 0 {
		t.Error("no BELONGS_TO_FAMILY edges")
	}
	if len(g.EdgesByLabel("IS_RELATED_TO")) == 0 {
		t.Error("no IS_RELATED_TO edges")
	}
}

// TestOwnershipCompactionSums checks that multiple shares of the same
// holder in the same company sum into one OWNS percentage.
func TestOwnershipCompactionSums(t *testing.T) {
	g := pg.New()
	p := g.AddNode([]string{"PhysicalPerson", "Person"}, pg.Props{"fiscalCode": value.Str("P"), "name": value.Str("Rossi A")}).ID
	b := g.AddNode([]string{"Business"}, pg.Props{"fiscalCode": value.Str("B")}).ID
	for i, pct := range []float64{0.3, 0.4} {
		s := g.AddNode([]string{"Share"}, pg.Props{
			"shareCode": value.Str(string(rune('a' + i))), "percentage": value.FloatV(pct),
		}).ID
		g.MustAddEdge(p, s, "HOLDS", pg.Props{"right": value.Str("ownership"), "percentage": value.FloatV(1.0)})
		g.MustAddEdge(s, b, "BELONGS_TO", nil)
	}
	prog := metalog.MustParse(OwnershipProgram())
	if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	owns := g.EdgesByLabel("OWNS")
	if len(owns) != 1 {
		t.Fatalf("OWNS edges = %d, want 1 (aggregated)", len(owns))
	}
	if got := owns[0].Props["percentage"].F; !close(got, 0.7) {
		t.Errorf("aggregated percentage = %v, want 0.7", got)
	}
}

// TestCloseLinksDirectProgram runs the declarative direct close-links rule.
func TestCloseLinksDirectProgram(t *testing.T) {
	topo := &fingraph.Topology{Companies: 3}
	co := func(i int) fingraph.Holder { return fingraph.Holder{IsCompany: true, Index: i} }
	topo.Stakes = []fingraph.Stake{
		{Holder: co(2), Company: 0, Pct: 0.3},
		{Holder: co(2), Company: 1, Pct: 0.25},
	}
	g := topo.Shareholding()
	prog := metalog.MustParse(CloseLinksDirectProgram())
	if _, err := metalog.Reason(prog, g, vadalog.Options{}); err != nil {
		t.Fatal(err)
	}
	links := g.EdgesByLabel("CLOSE_LINK")
	// z~x (both directions), z~y (both), x~y and y~x via common parent: 6.
	if len(links) != 6 {
		t.Errorf("CLOSE_LINK edges = %d, want 6", len(links))
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
