// Package finance implements the financial intensional components the paper
// builds on the Bank of Italy Company KG (Sections 2.1 and 6): company
// control (Examples 4.1/4.2), the compaction of the HOLDS/BELONGS_TO
// decoupling into the intensional OWNS edge, integrated ownership, close
// links (ECB Guideline 2018/876), company groups, and family links.
//
// Each component exists in two forms:
//
//   - a MetaLog program, run through the full MTV → Vadalog pipeline, which
//     is how the paper materializes the intensional components;
//   - a native Go baseline, used to cross-validate the declarative path in
//     tests and as the comparison point in the ablation benchmarks.
package finance

import (
	"math"
	"sort"

	"repro/internal/fingraph"
)

// ControlProgram is Example 4.1 verbatim, in the textual MetaLog syntax: a
// business controls itself, and control propagates through jointly-held
// majorities.
func ControlProgram() string {
	return `
	(x: Business) -> (x) [c: CONTROLS] (x).
	(x: Business) [: CONTROLS] (z: Business) [: OWNS; percentage: w] (y: Business),
		v = sum(w, <z>), v > 0.5
		-> (x) [c: CONTROLS] (y).
	`
}

// ControlEntityProgram generalizes control to every shareholder (persons
// included), over the unified Entity label of the simple shareholding graph.
func ControlEntityProgram() string {
	return `
	(x: Entity) -> (x) [c: CONTROLS] (x).
	(x: Entity) [: CONTROLS] (z: Entity) [: OWNS; percentage: w] (y: Entity),
		v = sum(w, <z>), v > 0.5
		-> (x) [c: CONTROLS] (y).
	`
}

// ControlVadalog is Example 4.2 verbatim: the control component in plain
// Vadalog, over company/owns relations.
func ControlVadalog() string {
	return `
	controls(X, X) :- company(X).
	controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	@output("controls").
	`
}

// OwnershipProgram compacts the HOLDS/BELONGS_TO decoupling of Section 3.3
// into the intensional OWNS edge (summing a holder's stakes per company) and
// derives the intensional numberOfStakeholders property.
func OwnershipProgram() string {
	return `
	(p: Person) [: HOLDS; right: "ownership", percentage: hp] (s: Share; percentage: sp)
		[: BELONGS_TO] (y: Business),
		q = hp * sp, w = sum(q)
		-> (p) [o: OWNS; percentage: w] (y).

	(p: Person) [: HOLDS] (s: Share) [: BELONGS_TO] (y: Business), c = count()
		-> (y: Business; numberOfStakeholders: c).
	`
}

// FamilyProgram derives the family constructs of Section 3.3: a Family node
// per surname (via a linker Skolem functor, so one family per surname),
// BELONGS_TO_FAMILY memberships, IS_RELATED_TO links between members, and
// FAMILY_OWNS edges where the members jointly hold a majority.
func FamilyProgram() string {
	return `
	(p: PhysicalPerson; name: n), f = substring_before(n, " ")
		-> (#skFam(f): Family; familyName: f),
		   (p) [e: BELONGS_TO_FAMILY] (#skFam(f): Family).

	(p: PhysicalPerson) [: BELONGS_TO_FAMILY] (f: Family),
	(q: PhysicalPerson) [: BELONGS_TO_FAMILY] (f), p != q
		-> (p) [e: IS_RELATED_TO; kind: "family"] (q).

	(p: PhysicalPerson) [: BELONGS_TO_FAMILY] (f: Family),
	(p) [: OWNS; percentage: w] (y: Business),
		v = sum(w, <p>), v > 0.5
		-> (f) [e: FAMILY_OWNS] (y).
	`
}

// CloseLinksDirectProgram derives the direct-capital part of the ECB close
// links: two entities are close-linked when one owns at least 20% of the
// other, or a third party owns at least 20% of both. The indirect
// (integrated-ownership) part needs products along paths and is computed
// natively (IntegratedOwnership / CloseLinks below).
func CloseLinksDirectProgram() string {
	return `
	(x: Entity) [: OWNS; percentage: w] (y: Entity), w >= 0.2
		-> (x) [c: CLOSE_LINK] (y), (y) [c2: CLOSE_LINK] (x).

	(z: Entity) [: OWNS; percentage: w1] (x: Entity),
	(z) [: OWNS; percentage: w2] (y: Entity),
		w1 >= 0.2, w2 >= 0.2, x != y
		-> (x) [c: CLOSE_LINK] (y).
	`
}

// --- Native baselines ---------------------------------------------------

// EntityID encodes topology holders and companies into one id space:
// companies keep their index, persons are encoded as -(index+1).
func EntityID(h fingraph.Holder) int {
	if h.IsCompany {
		return h.Index
	}
	return -(h.Index + 1)
}

// Ownership is the adjacency of the shareholding structure: for every owner
// entity, its stakes as (company, pct) pairs, deduplicated and summed.
type Ownership struct {
	// Out[owner] lists (company, pct); In[company] lists (owner, pct).
	Out map[int][]StakeTo
	In  map[int][]StakeFrom
	// Entities lists every entity id, sorted.
	Entities []int
}

// StakeTo is one outgoing stake.
type StakeTo struct {
	Company int
	Pct     float64
}

// StakeFrom is one incoming stake.
type StakeFrom struct {
	Owner int
	Pct   float64
}

// BuildOwnership aggregates topology stakes into the native adjacency.
func BuildOwnership(t *fingraph.Topology) *Ownership {
	type key struct{ owner, company int }
	agg := map[key]float64{}
	entities := map[int]bool{}
	for _, s := range t.Stakes {
		o := EntityID(s.Holder)
		agg[key{o, s.Company}] += s.Pct
		entities[o] = true
		entities[s.Company] = true
	}
	own := &Ownership{Out: map[int][]StakeTo{}, In: map[int][]StakeFrom{}}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].company < keys[j].company
	})
	for _, k := range keys {
		own.Out[k.owner] = append(own.Out[k.owner], StakeTo{Company: k.company, Pct: agg[k]})
		own.In[k.company] = append(own.In[k.company], StakeFrom{Owner: k.owner, Pct: agg[k]})
	}
	for e := range entities {
		own.Entities = append(own.Entities, e)
	}
	sort.Ints(own.Entities)
	return own
}

// ControlPair is one derived control edge.
type ControlPair struct{ Controller, Controlled int }

// NativeControl computes the control relation of Example 4.1 with a
// worklist algorithm: starting from each candidate controller, stake
// contributions from the controlled set accumulate per target until no new
// majority emerges. Self-control pairs are omitted (the MetaLog program
// derives them as its recursion seed; tests account for that). When
// companiesOnly is set, only companies are candidate controllers, matching
// Example 4.1; otherwise every shareholder is.
func NativeControl(own *Ownership, companiesOnly bool) []ControlPair {
	var out []ControlPair
	for _, x := range own.Entities {
		if companiesOnly && x < 0 {
			continue
		}
		controlled := controlledSet(own, x)
		for _, y := range controlled {
			out = append(out, ControlPair{Controller: x, Controlled: y})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Controller != out[j].Controller {
			return out[i].Controller < out[j].Controller
		}
		return out[i].Controlled < out[j].Controlled
	})
	return out
}

// controlledSet returns the companies controlled by x, sorted.
func controlledSet(own *Ownership, x int) []int {
	contrib := map[int]float64{}
	inSet := map[int]bool{}
	frontier := []int{x}
	var controlled []int
	for len(frontier) > 0 {
		z := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, st := range own.Out[z] {
			if st.Company == x || inSet[st.Company] {
				continue
			}
			contrib[st.Company] += st.Pct
			if contrib[st.Company] > 0.5 {
				inSet[st.Company] = true
				controlled = append(controlled, st.Company)
				frontier = append(frontier, st.Company)
			}
		}
	}
	sort.Ints(controlled)
	return controlled
}

// IntegratedOwnership computes, for one source entity, the integrated
// ownership vector IO(x, ·): the total share of each company owned directly
// and indirectly through the whole graph (Romei et al.), as the power series
// IO = A_x + IO·A evaluated by sparse Jacobi iteration. Cross-holding cycles
// with path products below one converge geometrically; maxIter bounds the
// pathological cases.
func IntegratedOwnership(own *Ownership, x int, eps float64, maxIter int) map[int]float64 {
	direct := map[int]float64{}
	for _, st := range own.Out[x] {
		direct[st.Company] = st.Pct
	}
	cur := map[int]float64{}
	for k, v := range direct {
		cur[k] = v
	}
	for iter := 0; iter < maxIter; iter++ {
		next := map[int]float64{}
		for k, v := range direct {
			next[k] = v
		}
		for z, v := range cur {
			if v <= 0 {
				continue
			}
			for _, st := range own.Out[z] {
				if st.Company == x {
					continue
				}
				next[st.Company] += v * st.Pct
			}
		}
		delta := 0.0
		for k, v := range next {
			delta = math.Max(delta, math.Abs(v-cur[k]))
		}
		cur = next
		if delta < eps {
			break
		}
	}
	return cur
}

// CloseLinkPair is one undirected close link, stored with A < B.
type CloseLinkPair struct{ A, B int }

// CloseLinks computes the ECB close links over integrated ownership: x and
// y are close-linked when IO(x,y) ≥ threshold, IO(y,x) ≥ threshold, or a
// common third party z has IO(z,x) ≥ threshold and IO(z,y) ≥ threshold.
// sources restricts the candidate third parties and endpoints (pass
// own.Entities for the full relation; the production computation samples).
func CloseLinks(own *Ownership, sources []int, threshold float64, eps float64, maxIter int) []CloseLinkPair {
	io := map[int]map[int]float64{}
	for _, x := range sources {
		io[x] = IntegratedOwnership(own, x, eps, maxIter)
	}
	pairSet := map[CloseLinkPair]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		pairSet[CloseLinkPair{a, b}] = true
	}
	for x, vec := range io {
		var held []int
		for y, v := range vec {
			if v >= threshold {
				add(x, y) // direct or indirect capital link
				held = append(held, y)
			}
		}
		sort.Ints(held)
		// Common-parent links: x holds ≥ threshold of both y1 and y2.
		for i := 0; i < len(held); i++ {
			for j := i + 1; j < len(held); j++ {
				add(held[i], held[j])
			}
		}
	}
	out := make([]CloseLinkPair, 0, len(pairSet))
	for p := range pairSet {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Group is a company group: an ultimate controller together with the
// companies it controls ("virtual concepts denoting a center of interest",
// Section 2.1).
type Group struct {
	Ultimate   int
	Controlled []int
}

// Groups derives company groups from the control relation: an entity is an
// ultimate controller if it controls at least one company and no other
// entity controls it.
func Groups(pairs []ControlPair) []Group {
	controlledBy := map[int][]int{}
	controls := map[int][]int{}
	for _, p := range pairs {
		if p.Controller == p.Controlled {
			continue
		}
		controlledBy[p.Controlled] = append(controlledBy[p.Controlled], p.Controller)
		controls[p.Controller] = append(controls[p.Controller], p.Controlled)
	}
	var ultimates []int
	for c := range controls {
		if len(controlledBy[c]) == 0 {
			ultimates = append(ultimates, c)
		}
	}
	sort.Ints(ultimates)
	out := make([]Group, 0, len(ultimates))
	for _, u := range ultimates {
		members := append([]int(nil), controls[u]...)
		sort.Ints(members)
		out = append(out, Group{Ultimate: u, Controlled: members})
	}
	return out
}
