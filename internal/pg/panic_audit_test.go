package pg

import (
	"math/rand"
	"strings"
	"testing"
)

// Regression tests for the package's panic audit: the error-returning API
// must reject user-reachable bad input with errors, and the Must wrappers —
// reserved for callers that just created both endpoints — keep their
// documented panic contract so misuse fails loudly in development.

func TestAddEdgeErrorsNeverPanic(t *testing.T) {
	g := New()
	n := g.AddNode(nil, nil)
	if _, err := g.AddEdge(n.ID, 999, "E", nil); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("dangling target: err = %v", err)
	}
	if _, err := g.AddEdge(999, n.ID, "E", nil); err == nil {
		t.Error("dangling source must return an error")
	}
}

func TestMustAddEdgePanicContract(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge on a dangling endpoint must panic (programming error)")
		}
	}()
	g := New()
	n := g.AddNode(nil, nil)
	g.MustAddEdge(n.ID, 999, "E", nil)
}

// TestClonePanicFreeOnRandomGraphs pins the "cannot happen" invariant the
// Clone panics document: for any graph built through the public API —
// including removals, which leave OID gaps — cloning succeeds and preserves
// every OID.
func TestClonePanicFreeOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		// Punch OID gaps: remove a few nodes and edges.
		if es := g.Edges(); len(es) > 1 {
			_ = g.RemoveEdge(es[rng.Intn(len(es))].ID)
		}
		if ns := g.Nodes(); len(ns) > 2 {
			_ = g.RemoveNode(ns[rng.Intn(len(ns))].ID)
		}
		c := g.Clone()
		if a, b := serialize(t, g), serialize(t, c); a != b {
			t.Fatalf("seed %d: clone differs from source", seed)
		}
	}
}
