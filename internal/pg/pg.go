// Package pg implements an embedded property-graph store.
//
// It realizes the (regular) property-graph definition of the paper
// (Section 4): a finite set of nodes N, a set of edges E disjoint from N, an
// incidence function μ : E → N², a partial labelling function λ over nodes
// and edges, and a partial property function σ : (N ∪ E) × P → V.
//
// The store is used pervasively across the framework: the graph dictionaries
// holding the super-model, the models, super-schemas and schemas are all
// property graphs (Section 2.2 "Graph Dictionaries"), as are the instances of
// the extensional component. Nodes may carry multiple labels, as required by
// the property-graph target model of Section 5.2 ("nodes can be tagged with
// multiple labels"); edges carry exactly one label.
//
// All iteration orders are deterministic (ascending OID) so that reasoning
// results, rendered diagrams and benchmarks are reproducible. Graphs are not
// safe for concurrent mutation; the framework's pipelines are single-writer
// by construction (the paper's staging discussion in Section 6 batches all
// writes).
package pg

import (
	"fmt"
	"sort"

	"repro/internal/sortedset"
	"repro/internal/value"
)

// OID is the internal object identifier of a node or edge. The paper assumes
// every construct instance carries a unique internal OID (Section 3.1).
type OID int64

// Props is the property map σ restricted to one node or edge.
type Props map[string]value.Value

// Node is a vertex of the property graph.
type Node struct {
	ID     OID
	Labels []string // sorted, unique
	Props  Props
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	i := sort.SearchStrings(n.Labels, label)
	return i < len(n.Labels) && n.Labels[i] == label
}

// Label returns the primary (first) label, or "" for an unlabeled node.
func (n *Node) Label() string {
	if len(n.Labels) == 0 {
		return ""
	}
	return n.Labels[0]
}

// Edge is a directed, labeled edge of the property graph.
type Edge struct {
	ID    OID
	Label string
	From  OID
	To    OID
	Props Props
}

// Graph is a mutable in-memory property graph.
//
// The zero value is not usable; construct graphs with New.
type Graph struct {
	nodes map[OID]*Node
	edges map[OID]*Edge
	next  OID

	byLabel     map[string][]OID // node OIDs per label, sorted
	byEdgeLabel map[string][]OID // edge OIDs per label, sorted
	out         map[OID][]OID    // node -> outgoing edge OIDs, sorted
	in          map[OID][]OID    // node -> incoming edge OIDs, sorted

	// Undo journal of the open savepoints (snapshot.go). Mutators append
	// compensating entries while snapDepth > 0.
	journal   []undoOp
	snapDepth int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:       make(map[OID]*Node),
		edges:       make(map[OID]*Edge),
		next:        1,
		byLabel:     make(map[string][]OID),
		byEdgeLabel: make(map[string][]OID),
		out:         make(map[OID][]OID),
		in:          make(map[OID][]OID),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

func normalizeLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	out := append([]string(nil), labels...)
	sort.Strings(out)
	j := 0
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			out[j] = l
			j++
		}
	}
	return out[:j]
}

func cloneProps(p Props) Props {
	if p == nil {
		return Props{}
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// cloneEdgeProps keeps empty edge property maps nil: edges are never
// mutated in place (unlike nodes, whose Props the materializers write), and
// graphs at dictionary scale carry millions of property-less edges whose
// empty maps would otherwise dominate allocation.
func cloneEdgeProps(p Props) Props {
	if len(p) == 0 {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// AddNode creates a node with the given labels and properties and returns it.
func (g *Graph) AddNode(labels []string, props Props) *Node {
	n := &Node{ID: g.next, Labels: normalizeLabels(labels), Props: cloneProps(props)}
	g.record(undoOp{kind: undoAddNode, id: n.ID, prevNext: g.next})
	g.next++
	g.nodes[n.ID] = n
	for _, l := range n.Labels {
		g.byLabel[l] = sortedset.Insert(g.byLabel[l], n.ID)
	}
	return n
}

// AddNodeWithID creates a node with a caller-chosen OID, used when importing
// serialized graphs. It fails if the OID is already taken.
func (g *Graph) AddNodeWithID(id OID, labels []string, props Props) (*Node, error) {
	if _, ok := g.nodes[id]; ok {
		return nil, fmt.Errorf("pg: node OID %d already exists", id)
	}
	if _, ok := g.edges[id]; ok {
		return nil, fmt.Errorf("pg: OID %d already used by an edge", id)
	}
	n := &Node{ID: id, Labels: normalizeLabels(labels), Props: cloneProps(props)}
	g.record(undoOp{kind: undoAddNode, id: id, prevNext: g.next})
	g.nodes[id] = n
	if id >= g.next {
		g.next = id + 1
	}
	for _, l := range n.Labels {
		g.byLabel[l] = sortedset.Insert(g.byLabel[l], n.ID)
	}
	return n, nil
}

// AddLabel adds a label to an existing node (used by the PG translation's
// multi-label tagging strategy for generalizations).
func (g *Graph) AddLabel(id OID, label string) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("pg: no node with OID %d", id)
	}
	if n.HasLabel(label) {
		return nil
	}
	g.record(undoOp{kind: undoAddLabel, id: id, label: label})
	n.Labels = normalizeLabels(append(n.Labels, label))
	g.byLabel[label] = sortedset.Insert(g.byLabel[label], id)
	return nil
}

// SetNodeProp sets one property of an existing node. Unlike writing
// node.Props directly, the mutation is journaled, so an open Snapshot can
// roll it back; code mutating properties on a graph that may be inside a
// savepoint (the instance flush path) must use it.
func (g *Graph) SetNodeProp(id OID, key string, v value.Value) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("pg: no node with OID %d", id)
	}
	op := undoOp{kind: undoSetProp, id: id, key: key}
	if old, had := n.Props[key]; had {
		op.old = Props{key: old}
	}
	g.record(op)
	if n.Props == nil {
		n.Props = Props{}
	}
	n.Props[key] = v
	return nil
}

// AddEdge creates a directed edge from one node to another.
func (g *Graph) AddEdge(from, to OID, label string, props Props) (*Edge, error) {
	if _, ok := g.nodes[from]; !ok {
		return nil, fmt.Errorf("pg: edge source OID %d does not exist", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return nil, fmt.Errorf("pg: edge target OID %d does not exist", to)
	}
	e := &Edge{ID: g.next, Label: label, From: from, To: to, Props: cloneEdgeProps(props)}
	g.record(undoOp{kind: undoAddEdge, id: e.ID, prevNext: g.next})
	g.next++
	g.edges[e.ID] = e
	g.byEdgeLabel[label] = sortedset.Insert(g.byEdgeLabel[label], e.ID)
	g.out[from] = sortedset.Insert(g.out[from], e.ID)
	g.in[to] = sortedset.Insert(g.in[to], e.ID)
	return e, nil
}

// MustAddEdge is AddEdge for callers that have just created both endpoints.
// It panics on dangling endpoints, which indicates a programming error.
func (g *Graph) MustAddEdge(from, to OID, label string, props Props) *Edge {
	e, err := g.AddEdge(from, to, label, props)
	if err != nil {
		panic(err)
	}
	return e
}

// AddEdgeWithID creates an edge with a caller-chosen OID, for import.
func (g *Graph) AddEdgeWithID(id, from, to OID, label string, props Props) (*Edge, error) {
	if _, ok := g.edges[id]; ok {
		return nil, fmt.Errorf("pg: edge OID %d already exists", id)
	}
	if _, ok := g.nodes[id]; ok {
		return nil, fmt.Errorf("pg: OID %d already used by a node", id)
	}
	if _, ok := g.nodes[from]; !ok {
		return nil, fmt.Errorf("pg: edge source OID %d does not exist", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return nil, fmt.Errorf("pg: edge target OID %d does not exist", to)
	}
	e := &Edge{ID: id, Label: label, From: from, To: to, Props: cloneEdgeProps(props)}
	g.record(undoOp{kind: undoAddEdge, id: id, prevNext: g.next})
	g.edges[id] = e
	if id >= g.next {
		g.next = id + 1
	}
	g.byEdgeLabel[label] = sortedset.Insert(g.byEdgeLabel[label], e.ID)
	g.out[from] = sortedset.Insert(g.out[from], e.ID)
	g.in[to] = sortedset.Insert(g.in[to], e.ID)
	return e, nil
}

// Node returns the node with the given OID, or nil.
func (g *Graph) Node(id OID) *Node { return g.nodes[id] }

// Edge returns the edge with the given OID, or nil.
func (g *Graph) Edge(id OID) *Edge { return g.edges[id] }

// Nodes returns all nodes in ascending OID order.
func (g *Graph) Nodes() []*Node {
	ids := make([]OID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sortedset.Sort(ids)
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// Edges returns all edges in ascending OID order.
func (g *Graph) Edges() []*Edge {
	ids := make([]OID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sortedset.Sort(ids)
	out := make([]*Edge, len(ids))
	for i, id := range ids {
		out[i] = g.edges[id]
	}
	return out
}

// NodesByLabel returns the nodes carrying the given label, in OID order.
func (g *Graph) NodesByLabel(label string) []*Node {
	ids := g.byLabel[label]
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// EdgesByLabel returns the edges carrying the given label, in OID order.
func (g *Graph) EdgesByLabel(label string) []*Edge {
	ids := g.byEdgeLabel[label]
	out := make([]*Edge, len(ids))
	for i, id := range ids {
		out[i] = g.edges[id]
	}
	return out
}

// Out returns the outgoing edges of a node, in OID order.
func (g *Graph) Out(id OID) []*Edge {
	ids := g.out[id]
	out := make([]*Edge, len(ids))
	for i, eid := range ids {
		out[i] = g.edges[eid]
	}
	return out
}

// In returns the incoming edges of a node, in OID order.
func (g *Graph) In(id OID) []*Edge {
	ids := g.in[id]
	out := make([]*Edge, len(ids))
	for i, eid := range ids {
		out[i] = g.edges[eid]
	}
	return out
}

// OutDegree returns the number of outgoing edges of a node.
func (g *Graph) OutDegree(id OID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of a node.
func (g *Graph) InDegree(id OID) int { return len(g.in[id]) }

// NodeLabels returns every node label present in the graph, sorted.
func (g *Graph) NodeLabels() []string {
	out := make([]string, 0, len(g.byLabel))
	for l, ids := range g.byLabel {
		if len(ids) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// EdgeLabels returns every edge label present in the graph, sorted.
func (g *Graph) EdgeLabels() []string {
	out := make([]string, 0, len(g.byEdgeLabel))
	for l, ids := range g.byEdgeLabel {
		if len(ids) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// RemoveEdge deletes an edge.
func (g *Graph) RemoveEdge(id OID) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("pg: no edge with OID %d", id)
	}
	g.record(undoOp{kind: undoRemoveEdge, edge: e})
	delete(g.edges, id)
	g.byEdgeLabel[e.Label] = sortedset.Remove(g.byEdgeLabel[e.Label], id)
	g.out[e.From] = sortedset.Remove(g.out[e.From], id)
	g.in[e.To] = sortedset.Remove(g.in[e.To], id)
	return nil
}

// RemoveNode deletes a node together with all its incident edges.
func (g *Graph) RemoveNode(id OID) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("pg: no node with OID %d", id)
	}
	for _, eid := range append(append([]OID(nil), g.out[id]...), g.in[id]...) {
		if _, ok := g.edges[eid]; ok {
			if err := g.RemoveEdge(eid); err != nil {
				return err
			}
		}
	}
	g.record(undoOp{kind: undoRemoveNode, node: n})
	delete(g.nodes, id)
	for _, l := range n.Labels {
		g.byLabel[l] = sortedset.Remove(g.byLabel[l], id)
	}
	delete(g.out, id)
	delete(g.in, id)
	return nil
}

// Clone returns a deep copy of the graph, preserving all OIDs.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, n := range g.Nodes() {
		if _, err := out.AddNodeWithID(n.ID, n.Labels, n.Props); err != nil {
			panic(err) // cannot happen: source OIDs are unique
		}
	}
	for _, e := range g.Edges() {
		if _, err := out.AddEdgeWithID(e.ID, e.From, e.To, e.Label, e.Props); err != nil {
			// Invariant: edge OIDs are unique and every endpoint was copied
			// by the node loop above, so the insert cannot fail on a graph
			// that satisfies its own invariants.
			panic(err)
		}
	}
	return out
}
