package pg

// Bulk ingest: the streaming write path of the 100M-edge data plane.
//
// BulkLoader builds a Frozen snapshot directly from uniform-schema batches,
// never materializing the mutable Graph. The mutable store spends ~hundreds
// of bytes per construct on map-of-pointer bookkeeping; at the paper's §6
// scale (11.97M nodes / 14.18M edges, ~15 min load+flush) and an order of
// magnitude past it, that bookkeeping is the difference between a load that
// fits in memory and one that does not. The loader instead appends straight
// into the exact columnar arrays Freeze would have produced:
//
//   - Add* calls copy batch payloads into the final numeric/value columns
//     (offsets are arithmetic for uniform batches, so they are written on
//     the spot) and record one small metadata entry per batch.
//   - Finish shards the batches across W workers. Workers collect distinct
//     names into per-shard symtab.Sets, which merge into one sorted,
//     deterministic symbol table — node labels, then edge labels, then
//     property keys, each group sorted, exactly Freeze's interning order.
//     Workers then fill the symbol columns and permute each batch's
//     property values into symbol order, over disjoint ranges, so the
//     result is independent of scheduling (the PR 1 shard-merge
//     discipline).
//   - A sequential CSR pass builds adjacency, and the columns go through
//     FrozenFromColumns — the same validation wall an untrusted on-disk
//     snapshot faces — before anything is handed out.
//
// Determinism contract: for equal batch content (any partitioning, any W)
// the loader produces byte-identical Columns, which snapfile.Encode maps to
// byte-identical files. The differential sweep in internal/fingraph holds
// this against GenerateTopology→Freeze across seeds, sizes and worker
// counts.
//
// Failure contract: any error (malformed batch, dangling edge, injected
// fault at pg/bulkload) leaves no partial dictionary state — the symbol
// table is private to Finish and is discarded, the loader marks itself
// done, and every later call returns ErrLoaderDone. A fresh loader fed the
// same batches reproduces the identical snapshot, mirroring the savepoint
// atomicity guarantee of the mutable write path.

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/symtab"
	"repro/internal/value"
)

// siteBulkLoad brackets per-batch work inside Finish's worker pool: one hit
// per staged batch. Chaos tests arm it with error/panic plans to prove the
// no-partial-state contract; the load benchmarks arm it with a delay plan to
// measure worker overlap independently of core count.
var siteBulkLoad = fault.Site("pg/bulkload")

// Typed bulk-ingest errors. All loader failures match exactly one of these
// through errors.Is; the loader never panics on malformed input.
var (
	// ErrBadBatch reports a structurally malformed batch: column length
	// disagreements, unsorted or duplicate labels/keys, non-positive OIDs,
	// or a batch that would overflow the columnar offset width.
	ErrBadBatch = errors.New("pg: malformed bulk batch")
	// ErrDuplicateOID reports an OID that is not strictly above every OID
	// already staged in its column — duplicates and out-of-order arrivals
	// alike.
	ErrDuplicateOID = errors.New("pg: duplicate or non-ascending OID in bulk batch")
	// ErrDanglingEdge reports an edge whose endpoint is not among the
	// loaded nodes.
	ErrDanglingEdge = errors.New("pg: bulk edge references missing node")
	// ErrLoaderDone reports a call on a loader that already finished or
	// failed.
	ErrLoaderDone = errors.New("pg: bulk loader already finished")
)

// NodeBatch is a uniform-schema run of nodes: every row carries the same
// sorted label set and the same sorted property-key set, with values
// row-major in key order. Uniformity is what lets the loader write offsets
// arithmetically and resolve symbols once per batch instead of once per
// row; producers emit one batch stream per schema shape (persons,
// companies, …).
type NodeBatch struct {
	Labels []string // shared by every row; strictly ascending
	Keys   []string // shared by every row; strictly ascending
	OIDs   []OID    // strictly ascending, above all previously staged node OIDs
	Vals   []value.Value // len(OIDs)*len(Keys), row-major in Keys order
}

// EdgeBatch is a uniform-schema run of edges: one label, one sorted
// property-key set, values row-major in key order.
type EdgeBatch struct {
	Label string
	Keys  []string // strictly ascending
	OIDs  []OID    // strictly ascending, above all previously staged edge OIDs
	From  []OID
	To    []OID
	Vals  []value.Value // len(OIDs)*len(Keys), row-major in Keys order
}

// batchMeta records where one staged batch landed in the columns; Finish's
// workers recompute everything else from the offset columns.
type batchMeta struct {
	labels   []string // nil for edge batches with no labels concept; edges store [1]string
	keys     []string
	rowStart int
	rows     int
}

// BulkLoader assembles a Frozen snapshot from batches. Not safe for
// concurrent use: the producer side is single-writer (the paper's §6
// staging discipline); parallelism lives inside Finish.
type BulkLoader struct {
	workers int
	done    bool

	nodeMeta []batchMeta
	edgeMeta []batchMeta

	nodeOIDs     []OID
	nodeLabelOff []int32
	nodePropOff  []int32
	nodePropVals []value.Value

	edgeOIDs     []OID
	edgeFrom     []OID
	edgeTo       []OID
	edgePropOff  []int32
	edgePropVals []value.Value
}

// NewBulkLoader returns a loader whose Finish phase uses the given worker
// count; workers < 1 means GOMAXPROCS.
func NewBulkLoader(workers int) *BulkLoader {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &BulkLoader{
		workers:      workers,
		nodeLabelOff: []int32{0},
		nodePropOff:  []int32{0},
		edgePropOff:  []int32{0},
	}
}

// Reserve pre-sizes the columns for a load whose totals are known, so the
// append path never reallocates: one exact-size allocation per column. The
// streaming generator knows its totals after the prepass and calls this
// before the first batch.
func (l *BulkLoader) Reserve(nodes, nodeProps, edges, edgeProps int) {
	grow := func(oids []OID, n int) []OID {
		out := make([]OID, len(oids), len(oids)+n)
		copy(out, oids)
		return out
	}
	growOff := func(off []int32, n int) []int32 {
		out := make([]int32, len(off), len(off)+n)
		copy(out, off)
		return out
	}
	growVals := func(vals []value.Value, n int) []value.Value {
		out := make([]value.Value, len(vals), len(vals)+n)
		copy(out, vals)
		return out
	}
	l.nodeOIDs = grow(l.nodeOIDs, nodes)
	l.nodeLabelOff = growOff(l.nodeLabelOff, nodes)
	l.nodePropOff = growOff(l.nodePropOff, nodes)
	l.nodePropVals = growVals(l.nodePropVals, nodeProps)
	l.edgeOIDs = grow(l.edgeOIDs, edges)
	l.edgeFrom = grow(l.edgeFrom, edges)
	l.edgeTo = grow(l.edgeTo, edges)
	l.edgePropOff = growOff(l.edgePropOff, edges)
	l.edgePropVals = growVals(l.edgePropVals, edgeProps)
}

// strictlyAscending reports whether names are sorted with no duplicates.
func strictlyAscending(names []string) bool {
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			return false
		}
	}
	return true
}

// checkOIDRun validates one batch's OID column against the staged tail:
// positive, strictly ascending, strictly above last.
func checkOIDRun(what string, oids []OID, last OID) error {
	for i, id := range oids {
		if id < 1 {
			return fmt.Errorf("%w: %s OID %d is not positive", ErrBadBatch, what, id)
		}
		if id <= last {
			return fmt.Errorf("%w: %s OID %d after %d", ErrDuplicateOID, what, id, last)
		}
		last = id
		_ = i
	}
	return nil
}

// AddNodes stages one node batch. The batch payload is copied; the caller
// may reuse its slices. Strings inside values are shared, not copied.
func (l *BulkLoader) AddNodes(b NodeBatch) error {
	if l.done {
		return ErrLoaderDone
	}
	if !strictlyAscending(b.Labels) {
		return fmt.Errorf("%w: node labels not strictly ascending", ErrBadBatch)
	}
	if !strictlyAscending(b.Keys) {
		return fmt.Errorf("%w: node property keys not strictly ascending", ErrBadBatch)
	}
	rows := len(b.OIDs)
	if len(b.Vals) != rows*len(b.Keys) {
		return fmt.Errorf("%w: node batch holds %d values, want %d", ErrBadBatch, len(b.Vals), rows*len(b.Keys))
	}
	var last OID
	if n := len(l.nodeOIDs); n > 0 {
		last = l.nodeOIDs[n-1]
	}
	if err := checkOIDRun("node", b.OIDs, last); err != nil {
		return err
	}
	if rows == 0 {
		return nil
	}
	labelEnd := int(l.nodeLabelOff[len(l.nodeLabelOff)-1]) + rows*len(b.Labels)
	propEnd := len(l.nodePropVals) + rows*len(b.Keys)
	if labelEnd > math.MaxInt32 || propEnd > math.MaxInt32 || len(l.nodeOIDs)+rows > math.MaxInt32 {
		return fmt.Errorf("%w: node columns would overflow int32 offsets", ErrBadBatch)
	}

	l.nodeMeta = append(l.nodeMeta, batchMeta{
		labels:   append([]string(nil), b.Labels...),
		keys:     append([]string(nil), b.Keys...),
		rowStart: len(l.nodeOIDs),
		rows:     rows,
	})
	l.nodeOIDs = append(l.nodeOIDs, b.OIDs...)
	l.nodePropVals = append(l.nodePropVals, b.Vals...)
	labelOff := l.nodeLabelOff[len(l.nodeLabelOff)-1]
	propOff := l.nodePropOff[len(l.nodePropOff)-1]
	for i := 0; i < rows; i++ {
		labelOff += int32(len(b.Labels))
		propOff += int32(len(b.Keys))
		l.nodeLabelOff = append(l.nodeLabelOff, labelOff)
		l.nodePropOff = append(l.nodePropOff, propOff)
	}
	return nil
}

// AddEdges stages one edge batch. The batch payload is copied.
func (l *BulkLoader) AddEdges(b EdgeBatch) error {
	if l.done {
		return ErrLoaderDone
	}
	if !strictlyAscending(b.Keys) {
		return fmt.Errorf("%w: edge property keys not strictly ascending", ErrBadBatch)
	}
	rows := len(b.OIDs)
	if len(b.From) != rows || len(b.To) != rows {
		return fmt.Errorf("%w: edge batch endpoint columns disagree with %d OIDs", ErrBadBatch, rows)
	}
	if len(b.Vals) != rows*len(b.Keys) {
		return fmt.Errorf("%w: edge batch holds %d values, want %d", ErrBadBatch, len(b.Vals), rows*len(b.Keys))
	}
	var last OID
	if n := len(l.edgeOIDs); n > 0 {
		last = l.edgeOIDs[n-1]
	}
	if err := checkOIDRun("edge", b.OIDs, last); err != nil {
		return err
	}
	if rows == 0 {
		return nil
	}
	propEnd := len(l.edgePropVals) + rows*len(b.Keys)
	if propEnd > math.MaxInt32 || len(l.edgeOIDs)+rows > math.MaxInt32 {
		return fmt.Errorf("%w: edge columns would overflow int32 offsets", ErrBadBatch)
	}

	l.edgeMeta = append(l.edgeMeta, batchMeta{
		labels:   []string{b.Label},
		keys:     append([]string(nil), b.Keys...),
		rowStart: len(l.edgeOIDs),
		rows:     rows,
	})
	l.edgeOIDs = append(l.edgeOIDs, b.OIDs...)
	l.edgeFrom = append(l.edgeFrom, b.From...)
	l.edgeTo = append(l.edgeTo, b.To...)
	l.edgePropVals = append(l.edgePropVals, b.Vals...)
	propOff := l.edgePropOff[len(l.edgePropOff)-1]
	for i := 0; i < rows; i++ {
		propOff += int32(len(b.Keys))
		l.edgePropOff = append(l.edgePropOff, propOff)
	}
	return nil
}

// NumNodes reports the number of staged nodes.
func (l *BulkLoader) NumNodes() int { return len(l.nodeOIDs) }

// NumEdges reports the number of staged edges.
func (l *BulkLoader) NumEdges() int { return len(l.edgeOIDs) }

// Finish assembles the staged batches into a validated Frozen snapshot. It
// may be called once; afterwards the loader is done regardless of outcome.
// On error no snapshot and no symbol table escape — the failed load leaves
// no partial dictionary state.
func (l *BulkLoader) Finish() (*Frozen, error) {
	if l.done {
		return nil, ErrLoaderDone
	}
	l.done = true

	syms, err := l.buildSymbols()
	if err != nil {
		return nil, err
	}
	nodeLabels := make([]symtab.Sym, l.nodeLabelOff[len(l.nodeLabelOff)-1])
	nodePropKeys := make([]symtab.Sym, len(l.nodePropVals))
	edgeLabels := make([]symtab.Sym, len(l.edgeOIDs))
	edgePropKeys := make([]symtab.Sym, len(l.edgePropVals))

	if err := l.fillSymbolColumns(syms, nodeLabels, nodePropKeys, edgeLabels, edgePropKeys); err != nil {
		return nil, err
	}

	outOff, outAdj, inOff, inAdj, err := l.buildCSR()
	if err != nil {
		return nil, err
	}

	return FrozenFromColumns(Columns{
		SymNames:     syms.Names(),
		NodeOIDs:     l.nodeOIDs,
		NodeLabelOff: l.nodeLabelOff,
		NodeLabels:   nodeLabels,
		NodePropOff:  l.nodePropOff,
		NodePropKeys: nodePropKeys,
		NodePropVals: l.nodePropVals,
		EdgeOIDs:     l.edgeOIDs,
		EdgeLabels:   edgeLabels,
		EdgeFrom:     l.edgeFrom,
		EdgeTo:       l.edgeTo,
		EdgePropOff:  l.edgePropOff,
		EdgePropKeys: edgePropKeys,
		EdgePropVals: l.edgePropVals,
		OutOff:       outOff,
		OutAdj:       outAdj,
		InOff:        inOff,
		InAdj:        inAdj,
	})
}

// buildSymbols collects the distinct names of every staged batch into
// per-worker shard dictionaries and merges them into one table in Freeze's
// deterministic order: sorted node labels, sorted edge labels, sorted
// property keys. The final symbol assignment depends only on the name
// population, not on sharding or worker count.
func (l *BulkLoader) buildSymbols() (*symtab.Table, error) {
	w := l.workers
	type shardSets struct{ nodeLabels, edgeLabels, propKeys *symtab.Set }
	shards := make([]shardSets, w)
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		shards[s] = shardSets{symtab.NewSet(), symtab.NewSet(), symtab.NewSet()}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := shards[s]
			for i := s; i < len(l.nodeMeta); i += w {
				for _, lb := range l.nodeMeta[i].labels {
					sh.nodeLabels.Add(lb)
				}
				for _, k := range l.nodeMeta[i].keys {
					sh.propKeys.Add(k)
				}
			}
			for i := s; i < len(l.edgeMeta); i += w {
				sh.edgeLabels.Add(l.edgeMeta[i].labels[0])
				for _, k := range l.edgeMeta[i].keys {
					sh.propKeys.Add(k)
				}
			}
		}(s)
	}
	wg.Wait()

	collect := func(pick func(shardSets) *symtab.Set) []string {
		sets := make([]*symtab.Set, w)
		for i, sh := range shards {
			sets[i] = pick(sh)
		}
		return symtab.MergeSorted(sets...)
	}
	t := symtab.New()
	for _, n := range collect(func(s shardSets) *symtab.Set { return s.nodeLabels }) {
		t.Intern(n)
	}
	for _, n := range collect(func(s shardSets) *symtab.Set { return s.edgeLabels }) {
		t.Intern(n)
	}
	for _, n := range collect(func(s shardSets) *symtab.Set { return s.propKeys }) {
		t.Intern(n)
	}
	return t, nil
}

// fillSymbolColumns resolves each batch's names against the final table and
// writes the symbol columns, permuting property values into symbol order.
// Batches are sharded across workers; every batch writes a disjoint column
// range, so the result is scheduling-independent. The pg/bulkload fault
// site fires once per batch here.
func (l *BulkLoader) fillSymbolColumns(syms *symtab.Table, nodeLabels, nodePropKeys, edgeLabels, edgePropKeys []symtab.Sym) error {
	w := l.workers
	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Guard converts an injected (or organic) panic into an
			// ordinary error, keeping worker crashes contained.
			if err := fault.Guard(siteBulkLoad, func() error {
				var perm []int
				var rowBuf []value.Value
				for i := s; i < len(l.nodeMeta); i += w {
					if failed() {
						return nil
					}
					if err := fault.Hit(siteBulkLoad); err != nil {
						return err
					}
					m := l.nodeMeta[i]
					labelSyms := lookupAll(syms, m.labels)
					lo := l.nodeLabelOff[m.rowStart]
					for r := 0; r < m.rows; r++ {
						copy(nodeLabels[int(lo)+r*len(labelSyms):], labelSyms)
					}
					perm, rowBuf = fillPropColumn(syms, m, l.nodePropOff, nodePropKeys, l.nodePropVals, perm, rowBuf)
				}
				for i := s; i < len(l.edgeMeta); i += w {
					if failed() {
						return nil
					}
					if err := fault.Hit(siteBulkLoad); err != nil {
						return err
					}
					m := l.edgeMeta[i]
					labelSym, _ := syms.Lookup(m.labels[0])
					for r := 0; r < m.rows; r++ {
						edgeLabels[m.rowStart+r] = labelSym
					}
					perm, rowBuf = fillPropColumn(syms, m, l.edgePropOff, edgePropKeys, l.edgePropVals, perm, rowBuf)
				}
				return nil
			}); err != nil {
				setErr(err)
			}
		}(s)
	}
	wg.Wait()
	return firstErr
}

// lookupAll resolves names that buildSymbols is guaranteed to have interned.
func lookupAll(syms *symtab.Table, names []string) []symtab.Sym {
	out := make([]symtab.Sym, len(names))
	for i, n := range names {
		out[i], _ = syms.Lookup(n)
	}
	return out
}

// fillPropColumn writes one batch's property-key symbols and reorders its
// value rows into ascending symbol order. Batch keys arrive sorted by name,
// but symbol order can differ: a key that doubles as a label was interned
// in the earlier label groups and carries a smaller symbol (Freeze has the
// same wrinkle — it sorts each row by symbol). perm/rowBuf are per-worker
// scratch, returned for reuse.
func fillPropColumn(syms *symtab.Table, m batchMeta, off []int32, keyCol []symtab.Sym, valCol []value.Value, perm []int, rowBuf []value.Value) ([]int, []value.Value) {
	nk := len(m.keys)
	if nk == 0 {
		return perm, rowBuf
	}
	keySyms := lookupAll(syms, m.keys)
	if cap(perm) < nk {
		perm = make([]int, nk)
	}
	perm = perm[:nk]
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return keySyms[perm[a]] < keySyms[perm[b]] })
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	sorted := make([]symtab.Sym, nk)
	for i, p := range perm {
		sorted[i] = keySyms[p]
	}
	lo := int(off[m.rowStart])
	for r := 0; r < m.rows; r++ {
		copy(keyCol[lo+r*nk:], sorted)
	}
	if !identity {
		if cap(rowBuf) < nk {
			rowBuf = make([]value.Value, nk)
		}
		rowBuf = rowBuf[:nk]
		for r := 0; r < m.rows; r++ {
			row := valCol[lo+r*nk : lo+(r+1)*nk]
			copy(rowBuf, row)
			for i, p := range perm {
				row[i] = rowBuf[p]
			}
		}
	}
	return perm, rowBuf
}

// buildCSR packs adjacency exactly like Freeze: a counting pass, prefix
// sums, and a fill pass in ascending edge order, so each node's window is
// ascending by edge row. Endpoint resolution uses the dense fast path when
// node OIDs are consecutive — the shape every bulk load of generated data
// has — and falls back to binary search otherwise.
func (l *BulkLoader) buildCSR() (outOff []int32, outAdj []int32, inOff []int32, inAdj []int32, err error) {
	n, m := len(l.nodeOIDs), len(l.edgeOIDs)
	rf := newRowFinder(l.nodeOIDs)
	outOff = make([]int32, n+1)
	inOff = make([]int32, n+1)
	fromRow := make([]int32, m)
	toRow := make([]int32, m)
	for i := 0; i < m; i++ {
		fr, ok := rf.row(l.edgeFrom[i])
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("%w: edge %d source %d", ErrDanglingEdge, l.edgeOIDs[i], l.edgeFrom[i])
		}
		to, ok := rf.row(l.edgeTo[i])
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("%w: edge %d target %d", ErrDanglingEdge, l.edgeOIDs[i], l.edgeTo[i])
		}
		fromRow[i], toRow[i] = fr, to
		outOff[fr+1]++
		inOff[to+1]++
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	outAdj = make([]int32, m)
	inAdj = make([]int32, m)
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, outOff[:n])
	copy(inNext, inOff[:n])
	for i := 0; i < m; i++ {
		outAdj[outNext[fromRow[i]]] = int32(i)
		outNext[fromRow[i]]++
		inAdj[inNext[toRow[i]]] = int32(i)
		inNext[toRow[i]]++
	}
	return outOff, outAdj, inOff, inAdj, nil
}
