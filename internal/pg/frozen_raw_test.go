package pg

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/symtab"
	"repro/internal/value"
)

// rawRandomGraph extends randomGraph with the value kinds the serialization
// property tests skip (labeled nulls and Skolem identifiers), so the column
// round trip exercises the full value domain.
func rawRandomGraph(rng *rand.Rand) *Graph {
	g := randomGraph(rng)
	ids := make([]OID, 0, g.NumNodes())
	for _, n := range g.Nodes() {
		ids = append(ids, n.ID)
	}
	for i := 0; i < 3; i++ {
		g.AddNode([]string{"Nullish"}, Props{
			"n":  value.NullV(rng.Int63n(50)),
			"id": value.Skolem("link", value.IntV(rng.Int63n(9))),
		})
	}
	if len(ids) >= 2 {
		g.MustAddEdge(ids[0], ids[1], "", Props{"tag": value.IDV("k(1)")})
	}
	return g
}

// TestColumnsRoundTrip: FrozenFromColumns(f.Columns()) must be
// indistinguishable from f through the whole View surface, including the
// columnar property reads and the thawed mutable graph.
func TestColumnsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := rawRandomGraph(rand.New(rand.NewSource(seed)))
		f := g.Freeze()
		f2, err := FrozenFromColumns(f.Columns())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertFrozenEqual(t, f, f2)
	}
}

// assertFrozenEqual compares two snapshots across every read path.
func assertFrozenEqual(t *testing.T, f, f2 *Frozen) {
	t.Helper()
	if f2.NumNodes() != f.NumNodes() || f2.NumEdges() != f.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", f2.NumNodes(), f2.NumEdges(), f.NumNodes(), f.NumEdges())
	}
	if !reflect.DeepEqual(f.NodeLabels(), f2.NodeLabels()) {
		t.Fatalf("node labels: %v vs %v", f.NodeLabels(), f2.NodeLabels())
	}
	if !reflect.DeepEqual(f.EdgeLabels(), f2.EdgeLabels()) {
		t.Fatalf("edge labels: %v vs %v", f.EdgeLabels(), f2.EdgeLabels())
	}
	if !reflect.DeepEqual(f.Symbols().Names(), f2.Symbols().Names()) {
		t.Fatal("symbol tables diverge")
	}
	for i, n := range f.Nodes() {
		n2 := f2.Nodes()[i]
		if !reflect.DeepEqual(n, n2) {
			t.Fatalf("node row %d: %+v vs %+v", i, n, n2)
		}
		if !reflect.DeepEqual(f.Out(n.ID), f2.Out(n.ID)) || !reflect.DeepEqual(f.In(n.ID), f2.In(n.ID)) {
			t.Fatalf("adjacency of node %d diverges", n.ID)
		}
		for k := range n.Props {
			v1, ok1 := f.NodeProp(n.ID, k)
			v2, ok2 := f2.NodeProp(n.ID, k)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("NodeProp(%d, %q): %v/%v vs %v/%v", n.ID, k, v1, ok1, v2, ok2)
			}
		}
	}
	for i, e := range f.Edges() {
		if !reflect.DeepEqual(e, f2.Edges()[i]) {
			t.Fatalf("edge row %d diverges", i)
		}
		for k := range e.Props {
			v1, ok1 := f.EdgeProp(e.ID, k)
			v2, ok2 := f2.EdgeProp(e.ID, k)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("EdgeProp(%d, %q) diverges", e.ID, k)
			}
		}
	}
	for _, l := range f.NodeLabels() {
		if !reflect.DeepEqual(f.NodesByLabel(l), f2.NodesByLabel(l)) {
			t.Fatalf("NodesByLabel(%q) diverges", l)
		}
	}
	for _, l := range f.EdgeLabels() {
		if !reflect.DeepEqual(f.EdgesByLabel(l), f2.EdgesByLabel(l)) {
			t.Fatalf("EdgesByLabel(%q) diverges", l)
		}
	}
	var b1, b2 bytes.Buffer
	if err := f.Thaw().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := f2.Thaw().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("thawed serializations diverge")
	}
}

// TestFrozenFromColumnsRejects: every structural invariant violation must
// yield an error, never a panic or a silently wrong snapshot.
func TestFrozenFromColumnsRejects(t *testing.T) {
	base := func() Columns {
		g := New()
		a := g.AddNode([]string{"A"}, Props{"p": value.IntV(1)})
		b := g.AddNode([]string{"B"}, nil)
		g.MustAddEdge(a.ID, b.ID, "E", nil)
		return g.Freeze().Columns()
	}
	cases := []struct {
		name    string
		mutate  func(*Columns)
		wantSub string
	}{
		{"duplicate symbol", func(c *Columns) { c.SymNames = []string{"A", "A", "E", "p"} }, "duplicate name"},
		{"label sym out of range", func(c *Columns) { c.NodeLabels = cloneSyms(c.NodeLabels); c.NodeLabels[0] = 99 }, "out of range"},
		{"prop sym zero", func(c *Columns) { c.NodePropKeys = cloneSyms(c.NodePropKeys); c.NodePropKeys[0] = 0 }, "out of range"},
		{"offsets decrease", func(c *Columns) {
			c.NodeLabelOff = cloneI32(c.NodeLabelOff)
			c.NodeLabelOff[1], c.NodeLabelOff[2] = 2, 1
		}, "decrease"},
		{"offsets wrong length", func(c *Columns) { c.NodePropOff = c.NodePropOff[:1] }, "entries"},
		{"node OIDs descending", func(c *Columns) { c.NodeOIDs = cloneOIDs(c.NodeOIDs); c.NodeOIDs[1] = c.NodeOIDs[0] }, "ascending"},
		{"edge endpoint missing", func(c *Columns) { c.EdgeFrom = cloneOIDs(c.EdgeFrom); c.EdgeFrom[0] = 999 }, "is not a node"},
		{"adjacency out of range", func(c *Columns) { c.OutAdj = cloneI32(c.OutAdj); c.OutAdj[0] = 42 }, "out of range"},
		{"adjacency wrong owner", func(c *Columns) { c.OutOff = cloneI32(c.OutOff); c.OutOff[1], c.OutOff[2] = 0, 1 }, "different source"},
		{"edge column length", func(c *Columns) { c.EdgeTo = c.EdgeTo[:0] }, "disagree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mutate(&c)
			f, err := FrozenFromColumns(c)
			if err == nil {
				t.Fatalf("accepted corrupt columns, got snapshot with %d nodes", f.NumNodes())
			}
			if !contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func cloneSyms(s []symtab.Sym) []symtab.Sym {
	out := make([]symtab.Sym, len(s))
	copy(out, s)
	return out
}

func cloneI32(s []int32) []int32 { out := make([]int32, len(s)); copy(out, s); return out }

func cloneOIDs(s []OID) []OID { out := make([]OID, len(s)); copy(out, s); return out }

// TestFrozenConcurrentReadersLazyFacade: a column-built snapshot defers its
// pointer facade to first use; many goroutines racing to be that first use
// must all observe the same fully-built facade (facadeOnce), and
// column-only reads (counts, degrees, property lookups) must be correct
// before anything has forced materialization.
func TestFrozenConcurrentReadersLazyFacade(t *testing.T) {
	g := rawRandomGraph(rand.New(rand.NewSource(7)))
	f := g.Freeze()
	f2, err := FrozenFromColumns(f.Columns())
	if err != nil {
		t.Fatal(err)
	}

	// Column-only reads work pre-facade.
	if f2.NumNodes() != f.NumNodes() || f2.NumEdges() != f.NumEdges() {
		t.Fatal("counts diverge before facade materialization")
	}
	for _, n := range f.Nodes() {
		if f2.OutDegree(n.ID) != f.OutDegree(n.ID) || f2.InDegree(n.ID) != f.InDegree(n.ID) {
			t.Fatalf("degree of node %d diverges before facade materialization", n.ID)
		}
		for k := range n.Props {
			v1, _ := f.NodeProp(n.ID, k)
			v2, ok := f2.NodeProp(n.ID, k)
			if !ok || v1 != v2 {
				t.Fatalf("NodeProp(%d, %q) diverges before facade materialization", n.ID, k)
			}
		}
	}

	// Race to materialize: every goroutine mixes facade-forcing reads.
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				nodes := f2.Nodes()
				if len(nodes) != f.NumNodes() {
					errs <- "Nodes() length diverges"
					return
				}
				n := nodes[(w*53+iter)%len(nodes)]
				if got := f2.Node(n.ID); got != n {
					errs <- "Node() does not return the shared facade pointer"
					return
				}
				if len(f2.Out(n.ID)) != f.OutDegree(n.ID) {
					errs <- "Out() window diverges"
					return
				}
				for _, l := range f2.NodeLabels() {
					if len(f2.NodesByLabel(l)) != len(f.NodesByLabel(l)) {
						errs <- "NodesByLabel diverges"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	assertFrozenEqual(t, f, f2)
}
