package pg

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/testutil"
	"repro/internal/value"
)

// bulkRun is one uniform-schema run of a reference fact stream: partitioning
// tests split runs into sub-batches at random boundaries, which is exactly
// the freedom a producer has (rows are ordered; schema is per batch).
type bulkRun struct {
	node   bool
	labels []string // node runs
	label  string   // edge runs
	keys   []string
	oids   []OID
	from   []OID
	to     []OID
	vals   []value.Value
}

// makeBulkStream builds a deterministic reference stream: three node
// schemas and two edge schemas, with property keys that deliberately
// collide with label names (the symbol-order-vs-name-order wrinkle the
// permutation path exists for).
func makeBulkStream(rng *rand.Rand, nNodes, nEdges int) []bulkRun {
	nodeShapes := []struct {
		labels []string
		keys   []string
	}{
		{[]string{"Entity", "PhysicalPerson"}, []string{"fiscalCode"}},
		{[]string{"Business", "Entity"}, []string{"Business", "fiscalCode"}}, // key collides with a label
		{[]string{"Share"}, nil},
	}
	edgeShapes := []struct {
		label string
		keys  []string
	}{
		{"OWNS", []string{"percentage"}},
		{"HOLDS", []string{"Share", "right"}}, // key collides with a node label
	}

	var runs []bulkRun
	var nodeOIDs []OID
	next := OID(1)
	for done := 0; done < nNodes; {
		shape := nodeShapes[rng.Intn(len(nodeShapes))]
		rows := 1 + rng.Intn(7)
		if done+rows > nNodes {
			rows = nNodes - done
		}
		r := bulkRun{node: true, labels: shape.labels, keys: shape.keys}
		for i := 0; i < rows; i++ {
			r.oids = append(r.oids, next)
			nodeOIDs = append(nodeOIDs, next)
			next++
			for _, k := range shape.keys {
				r.vals = append(r.vals, value.Str(k+"-v"))
			}
		}
		runs = append(runs, r)
		done += rows
	}
	for done := 0; done < nEdges; {
		shape := edgeShapes[rng.Intn(len(edgeShapes))]
		rows := 1 + rng.Intn(9)
		if done+rows > nEdges {
			rows = nEdges - done
		}
		r := bulkRun{label: shape.label, keys: shape.keys}
		for i := 0; i < rows; i++ {
			r.oids = append(r.oids, next)
			next++
			r.from = append(r.from, nodeOIDs[rng.Intn(len(nodeOIDs))])
			r.to = append(r.to, nodeOIDs[rng.Intn(len(nodeOIDs))])
			for range shape.keys {
				r.vals = append(r.vals, value.FloatV(float64(rng.Intn(100))/7))
			}
		}
		runs = append(runs, r)
		done += rows
	}
	return runs
}

// feedRuns loads a stream, splitting each run into sub-batches at the
// boundaries cut chooses (cut(rows) returns a split size in [1,rows]).
func feedRuns(t *testing.T, l *BulkLoader, runs []bulkRun, cut func(rows int) int) {
	t.Helper()
	for _, r := range runs {
		for lo := 0; lo < len(r.oids); {
			n := cut(len(r.oids) - lo)
			hi := lo + n
			nk := len(r.keys)
			var err error
			if r.node {
				err = l.AddNodes(NodeBatch{
					Labels: r.labels, Keys: r.keys,
					OIDs: r.oids[lo:hi], Vals: r.vals[lo*nk : hi*nk],
				})
			} else {
				err = l.AddEdges(EdgeBatch{
					Label: r.label, Keys: r.keys,
					OIDs: r.oids[lo:hi], From: r.from[lo:hi], To: r.to[lo:hi],
					Vals: r.vals[lo*nk : hi*nk],
				})
			}
			if err != nil {
				t.Fatalf("staging batch: %v", err)
			}
			lo = hi
		}
	}
}

func finishColumns(t *testing.T, l *BulkLoader) Columns {
	t.Helper()
	f, err := l.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return f.Columns()
}

// TestBulkLoadPartitioningInvariance is the loader's property test: any
// batch partitioning of the same fact stream, at any worker count, produces
// an identical snapshot — column for column.
func TestBulkLoadPartitioningInvariance(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		runs := makeBulkStream(rng, 40+rng.Intn(60), 60+rng.Intn(90))

		ref := NewBulkLoader(1)
		feedRuns(t, ref, runs, func(rows int) int { return rows }) // one batch per run
		want := finishColumns(t, ref)

		for _, workers := range []int{1, 3, 8} {
			l := NewBulkLoader(workers)
			feedRuns(t, l, runs, func(rows int) int { return 1 + rng.Intn(rows) }) // random splits
			got := finishColumns(t, l)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d W=%d: random partitioning changed the snapshot columns", trial, workers)
			}
		}
	}
}

// TestBulkLoadMatchesFreeze pins the loader against the reference pipeline:
// replaying the stream through the mutable Graph and Freeze yields the same
// columns, including the per-row symbol-order property permutation.
func TestBulkLoadMatchesFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runs := makeBulkStream(rng, 80, 120)

	l := NewBulkLoader(4)
	feedRuns(t, l, runs, func(rows int) int { return rows })
	got := finishColumns(t, l)

	g := New()
	for _, r := range runs {
		nk := len(r.keys)
		for i, id := range r.oids {
			props := make(Props, nk)
			for j, k := range r.keys {
				props[k] = r.vals[i*nk+j]
			}
			if nk == 0 {
				props = nil
			}
			if r.node {
				if _, err := g.AddNodeWithID(id, r.labels, props); err != nil {
					t.Fatalf("replay node: %v", err)
				}
			} else if _, err := g.AddEdgeWithID(id, r.from[i], r.to[i], r.label, props); err != nil {
				t.Fatalf("replay edge: %v", err)
			}
		}
	}
	want := g.Freeze().Columns()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bulk-loaded columns diverge from Graph+Freeze columns")
	}
}

// TestBulkLoadTypedErrors sweeps the malformed-input space: every rejection
// is one of the typed errors, never a panic, and the loader refuses further
// use after Finish.
func TestBulkLoadTypedErrors(t *testing.T) {
	str := []value.Value{value.Str("x")}
	cases := []struct {
		name string
		feed func(l *BulkLoader) error
		want error
	}{
		{"unsorted labels", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{Labels: []string{"b", "a"}, OIDs: []OID{1}})
		}, ErrBadBatch},
		{"duplicate labels", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{Labels: []string{"a", "a"}, OIDs: []OID{1}})
		}, ErrBadBatch},
		{"unsorted keys", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{Keys: []string{"k", "j"}, OIDs: []OID{1}, Vals: []value.Value{str[0], str[0]}})
		}, ErrBadBatch},
		{"value count mismatch", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{Keys: []string{"k"}, OIDs: []OID{1, 2}, Vals: str})
		}, ErrBadBatch},
		{"non-positive OID", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{OIDs: []OID{0}})
		}, ErrBadBatch},
		{"duplicate OID within batch", func(l *BulkLoader) error {
			return l.AddNodes(NodeBatch{OIDs: []OID{3, 3}})
		}, ErrDuplicateOID},
		{"out-of-order across batches", func(l *BulkLoader) error {
			if err := l.AddNodes(NodeBatch{OIDs: []OID{5}}); err != nil {
				return err
			}
			return l.AddNodes(NodeBatch{OIDs: []OID{4}})
		}, ErrDuplicateOID},
		{"edge endpoint column mismatch", func(l *BulkLoader) error {
			return l.AddEdges(EdgeBatch{OIDs: []OID{1}, From: []OID{1}})
		}, ErrBadBatch},
		{"edge value count mismatch", func(l *BulkLoader) error {
			return l.AddEdges(EdgeBatch{Keys: []string{"k"}, OIDs: []OID{1}, From: []OID{1}, To: []OID{1}})
		}, ErrBadBatch},
		{"edge duplicate OID", func(l *BulkLoader) error {
			if err := l.AddEdges(EdgeBatch{OIDs: []OID{9}, From: []OID{1}, To: []OID{1}}); err != nil {
				return err
			}
			return l.AddEdges(EdgeBatch{OIDs: []OID{9}, From: []OID{1}, To: []OID{1}})
		}, ErrDuplicateOID},
	}
	for _, tc := range cases {
		if err := tc.feed(NewBulkLoader(2)); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Dangling endpoints surface at Finish.
	l := NewBulkLoader(2)
	if err := l.AddNodes(NodeBatch{OIDs: []OID{1}}); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if err := l.AddEdges(EdgeBatch{Label: "E", OIDs: []OID{2}, From: []OID{1}, To: []OID{99}}); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if _, err := l.Finish(); !errors.Is(err, ErrDanglingEdge) {
		t.Fatalf("dangling edge: got %v, want ErrDanglingEdge", err)
	}

	// A finished (or failed) loader is done for good.
	if err := l.AddNodes(NodeBatch{OIDs: []OID{10}}); !errors.Is(err, ErrLoaderDone) {
		t.Fatalf("add after finish: got %v, want ErrLoaderDone", err)
	}
	if _, err := l.Finish(); !errors.Is(err, ErrLoaderDone) {
		t.Fatalf("double finish: got %v, want ErrLoaderDone", err)
	}
}

// TestBulkLoadEmpty pins the degenerate case: an empty load (and empty
// batches) produce a valid empty snapshot.
func TestBulkLoadEmpty(t *testing.T) {
	l := NewBulkLoader(2)
	if err := l.AddNodes(NodeBatch{Labels: []string{"A"}}); err != nil {
		t.Fatalf("empty node batch: %v", err)
	}
	if err := l.AddEdges(EdgeBatch{Label: "E"}); err != nil {
		t.Fatalf("empty edge batch: %v", err)
	}
	f, err := l.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if f.NumNodes() != 0 || f.NumEdges() != 0 {
		t.Fatalf("empty load produced %d nodes / %d edges", f.NumNodes(), f.NumEdges())
	}
}

// TestBulkLoadReserve pins that a correctly-hinted load never reallocates
// its OID column (the exact-size allocation contract of the stream path).
func TestBulkLoadReserve(t *testing.T) {
	l := NewBulkLoader(1)
	l.Reserve(10, 10, 5, 5)
	base := &l.nodeOIDs[:1][0] // capacity > 0 after Reserve
	for i := 0; i < 10; i++ {
		if err := l.AddNodes(NodeBatch{Keys: []string{"k"}, OIDs: []OID{OID(i + 1)}, Vals: []value.Value{value.IntV(int64(i))}}); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if &l.nodeOIDs[0] != base {
		t.Fatalf("node OID column reallocated despite exact Reserve")
	}
	if f, err := l.Finish(); err != nil || f.NumNodes() != 10 {
		t.Fatalf("finish: %v", err)
	}
}

// TestChaosBulkLoad chaos-sweeps the pg/bulkload site: error and panic
// plans at several trigger offsets must fail Finish with a typed error,
// leak no goroutines, leave no partial dictionary state behind (the loader
// is done, nothing escaped), and a fresh unfaulted loader must reproduce
// the exact snapshot — the savepoint guarantee, ported to bulk ingest.
func TestChaosBulkLoad(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(42))
	runs := makeBulkStream(rng, 60, 80)

	fault.Reset()
	clean := NewBulkLoader(4)
	feedRuns(t, clean, runs, func(rows int) int { return rows })
	want := finishColumns(t, clean)

	for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
		for _, after := range []int{1, 3, 7} {
			checkLeak := testutil.CheckGoroutineLeak(t)
			if err := fault.Arm("pg/bulkload", fault.Plan{Mode: mode, After: after}); err != nil {
				t.Fatalf("arm: %v", err)
			}
			l := NewBulkLoader(4)
			feedRuns(t, l, runs, func(rows int) int { return rows })
			f, err := l.Finish()
			if fired := fault.Fired("pg/bulkload"); fired == 0 {
				t.Fatalf("mode=%v after=%d: fault site never fired", mode, after)
			}
			fault.Reset()
			if err == nil {
				t.Fatalf("mode=%v after=%d: Finish succeeded under an armed fault", mode, after)
			}
			if f != nil {
				t.Fatalf("mode=%v after=%d: failed Finish returned a snapshot", mode, after)
			}
			switch mode {
			case fault.ModeError:
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("mode=error: got %v, want injected error", err)
				}
			case fault.ModePanic:
				var pe *fault.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("mode=panic: got %v, want contained PanicError", err)
				}
			}
			// No partial state: the loader is done…
			if _, err := l.Finish(); !errors.Is(err, ErrLoaderDone) {
				t.Fatalf("failed loader not marked done: %v", err)
			}
			checkLeak()

			// …and a fresh, unfaulted rerun is bit-identical.
			retry := NewBulkLoader(4)
			feedRuns(t, retry, runs, func(rows int) int { return rows })
			if got := finishColumns(t, retry); !reflect.DeepEqual(got, want) {
				t.Fatalf("mode=%v after=%d: post-fault rerun diverges from clean load", mode, after)
			}
		}
	}
}

// TestBulkLoadDelayFaultHarmless pins that a delay plan (the load
// benchmark's backend-floor instrument) perturbs timing only: the load
// succeeds and the snapshot is unchanged.
func TestBulkLoadDelayFaultHarmless(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(43))
	runs := makeBulkStream(rng, 30, 40)

	clean := NewBulkLoader(2)
	feedRuns(t, clean, runs, func(rows int) int { return rows })
	want := finishColumns(t, clean)

	if err := fault.Arm("pg/bulkload", fault.Plan{Mode: fault.ModeDelay, Times: -1}); err != nil {
		t.Fatalf("arm: %v", err)
	}
	l := NewBulkLoader(2)
	feedRuns(t, l, runs, func(rows int) int { return rows })
	got := finishColumns(t, l)
	fault.Reset()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delay fault changed the snapshot")
	}
}

// TestConcurrentBulkIngest is the race-detector leg of the data plane:
// several loaders run their sharded Finish phases concurrently (each with
// internal worker fan-out), which exercises buildSymbols' per-shard
// dictionaries and fillSymbolColumns' disjoint-range writes under
// contention. All results must be identical.
func TestConcurrentBulkIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	runs := makeBulkStream(rng, 120, 200)

	ref := NewBulkLoader(1)
	feedRuns(t, ref, runs, func(rows int) int { return rows })
	want := finishColumns(t, ref)

	const parallel = 6
	results := make([]Columns, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := NewBulkLoader(8)
			for _, r := range runs {
				nk := len(r.keys)
				var err error
				if r.node {
					err = l.AddNodes(NodeBatch{Labels: r.labels, Keys: r.keys, OIDs: r.oids, Vals: r.vals[:len(r.oids)*nk]})
				} else {
					err = l.AddEdges(EdgeBatch{Label: r.label, Keys: r.keys, OIDs: r.oids, From: r.from, To: r.to, Vals: r.vals[:len(r.oids)*nk]})
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
			f, err := l.Finish()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = f.Columns()
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent loader %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("concurrent loader %d diverged from reference", i)
		}
	}
}
