package pg

// View is the read interface shared by the two phases of a graph
// dictionary's lifecycle:
//
//   - the builder phase, where a mutable *Graph accumulates the dictionary
//     (loaders, SSST translation, Algorithm 2's flush), and
//   - the frozen phase, where an immutable *Frozen snapshot serves
//     concurrent readers (statistics, MetaLog fact extraction, schema
//     readers, validation, emission) without cloning.
//
// Everything that only reads a dictionary takes a View, so callers choose
// the representation: pass the *Graph while still building, or Freeze()
// once writes are done and share the snapshot. The paper's staging
// discussion (Section 6) batches all writes before reasoning, which is
// exactly the builder→frozen handoff.
//
// Contract: all iteration orders are ascending OID (slices) or sorted
// (label lists), identical across implementations — reasoning over a frozen
// snapshot is bit-identical to reasoning over the graph it snapshots.
// Returned slices and structs may be shared with the implementation and
// must be treated as read-only; *Graph returns fresh slices but *Frozen
// returns its internal ones.
type View interface {
	// NumNodes and NumEdges return the sizes of N and E.
	NumNodes() int
	NumEdges() int

	// Node and Edge resolve an OID, returning nil when absent.
	Node(id OID) *Node
	Edge(id OID) *Edge

	// Nodes and Edges list every construct in ascending OID order.
	Nodes() []*Node
	Edges() []*Edge

	// NodesByLabel and EdgesByLabel list the constructs carrying a label,
	// in ascending OID order.
	NodesByLabel(label string) []*Node
	EdgesByLabel(label string) []*Edge

	// Out and In list a node's incident edges in ascending edge-OID order.
	Out(id OID) []*Edge
	In(id OID) []*Edge

	// OutDegree and InDegree count a node's incident edges.
	OutDegree(id OID) int
	InDegree(id OID) int

	// NodeLabels and EdgeLabels list the labels present, sorted.
	NodeLabels() []string
	EdgeLabels() []string
}

// Both lifecycle phases implement the shared read interface.
var (
	_ View = (*Graph)(nil)
	_ View = (*Frozen)(nil)
)
