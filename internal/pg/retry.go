package pg

import (
	"io"

	"repro/internal/fault"
)

// Retryable readers: the CLI ingestion paths re-open and re-read a source
// on transient failure instead of aborting a materialization run over a
// flaky filesystem or network mount. The open callback is invoked once per
// attempt, so each retry reads a fresh stream from the start; retry counts
// surface through the internal/obs expvar counters.

// ReadJSONRetry reads a JSON graph with retries under the given policy.
func ReadJSONRetry(open func() (io.ReadCloser, error), p fault.RetryPolicy) (*Graph, error) {
	var g *Graph
	err := p.Do("pg/read-json", func() error {
		r, err := open()
		if err != nil {
			return err
		}
		defer r.Close()
		g, err = ReadJSON(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ReadCSVRetry reads a node/edge CSV graph pair with retries under the
// given policy.
func ReadCSVRetry(open func() (nodes, edges io.ReadCloser, err error), p fault.RetryPolicy) (*Graph, error) {
	var g *Graph
	err := p.Do("pg/read-csv", func() error {
		nr, er, err := open()
		if err != nil {
			return err
		}
		defer nr.Close()
		defer er.Close()
		g, err = ReadCSV(nr, er)
		return err
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
