package pg

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func build(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddNode([]string{"Person"}, Props{"name": value.Str("ann")})
	b := g.AddNode([]string{"Person", "Employee"}, Props{"name": value.Str("bob")})
	c := g.AddNode([]string{"Company"}, Props{"name": value.Str("acme"), "cap": value.FloatV(1e6)})
	g.MustAddEdge(a.ID, c.ID, "OWNS", Props{"pct": value.FloatV(0.6)})
	g.MustAddEdge(b.ID, c.ID, "OWNS", Props{"pct": value.FloatV(0.4)})
	g.MustAddEdge(b.ID, a.ID, "KNOWS", nil)
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := build(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if n := len(g.NodesByLabel("Person")); n != 2 {
		t.Errorf("persons = %d", n)
	}
	if n := len(g.EdgesByLabel("OWNS")); n != 2 {
		t.Errorf("OWNS = %d", n)
	}
	company := g.NodesByLabel("Company")[0]
	if g.InDegree(company.ID) != 2 || g.OutDegree(company.ID) != 0 {
		t.Errorf("company degrees = %d/%d", g.InDegree(company.ID), g.OutDegree(company.ID))
	}
	if got := g.NodeLabels(); len(got) != 3 {
		t.Errorf("node labels = %v", got)
	}
	if got := g.EdgeLabels(); len(got) != 2 {
		t.Errorf("edge labels = %v", got)
	}
	emp := g.NodesByLabel("Employee")[0]
	if !emp.HasLabel("Person") || emp.HasLabel("Company") {
		t.Errorf("multi-label query wrong: %v", emp.Labels)
	}
}

func TestDanglingEdgeRejected(t *testing.T) {
	g := New()
	n := g.AddNode([]string{"A"}, nil)
	if _, err := g.AddEdge(n.ID, 999, "R", nil); err == nil {
		t.Error("dangling target must fail")
	}
	if _, err := g.AddEdge(999, n.ID, "R", nil); err == nil {
		t.Error("dangling source must fail")
	}
}

func TestAddLabel(t *testing.T) {
	g := New()
	n := g.AddNode([]string{"A"}, nil)
	if err := g.AddLabel(n.ID, "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLabel(n.ID, "B"); err != nil {
		t.Fatal("idempotent AddLabel must succeed")
	}
	if len(g.NodesByLabel("B")) != 1 {
		t.Error("label index not updated")
	}
	if err := g.AddLabel(999, "C"); err == nil {
		t.Error("AddLabel on missing node must fail")
	}
}

func TestRemove(t *testing.T) {
	g := build(t)
	company := g.NodesByLabel("Company")[0]
	if err := g.RemoveNode(company.ID); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if n := len(g.EdgesByLabel("OWNS")); n != 0 {
		t.Errorf("incident edges must be removed, OWNS = %d", n)
	}
	if n := len(g.EdgesByLabel("KNOWS")); n != 1 {
		t.Errorf("unrelated edges must survive, KNOWS = %d", n)
	}
	if err := g.RemoveNode(company.ID); err == nil {
		t.Error("double remove must fail")
	}
}

func TestClonePreservesEverything(t *testing.T) {
	g := build(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	c.AddNode([]string{"X"}, nil)
	if g.NumNodes() == c.NumNodes() {
		t.Error("clone shares node storage")
	}
	for _, n := range g.Nodes() {
		cn := c.Node(n.ID)
		if cn == nil || cn.Label() != n.Label() {
			t.Fatalf("node %d not preserved", n.ID)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := build(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("round trip size mismatch")
	}
	for _, n := range g.Nodes() {
		bn := back.Node(n.ID)
		for k, v := range n.Props {
			if !value.Equal(bn.Props[k], v) {
				t.Errorf("node %d prop %s: %v vs %v", n.ID, k, bn.Props[k], v)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := build(t)
	var nodes, edges bytes.Buffer
	if err := g.WriteNodeCSV(&nodes); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeCSV(&edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("CSV round trip size mismatch")
	}
	for _, e := range g.Edges() {
		be := back.Edge(e.ID)
		if be == nil || be.From != e.From || be.To != e.To || be.Label != e.Label {
			t.Errorf("edge %d not preserved", e.ID)
		}
		for k, v := range e.Props {
			if !value.Equal(be.Props[k], v) {
				t.Errorf("edge %d prop %s: %v vs %v", e.ID, k, be.Props[k], v)
			}
		}
	}
}

// TestOIDAssignmentProperty: node and edge OIDs are unique and strictly
// increasing, whatever the interleaving of insertions.
func TestOIDAssignmentProperty(t *testing.T) {
	f := func(ops []bool) bool {
		g := New()
		first := g.AddNode(nil, nil).ID
		last := first
		seen := map[OID]bool{first: true}
		for _, isEdge := range ops {
			var id OID
			if isEdge {
				e, err := g.AddEdge(first, first, "L", nil)
				if err != nil {
					return false
				}
				id = e.ID
			} else {
				id = g.AddNode([]string{"N"}, nil).ID
			}
			if seen[id] || id <= last {
				return false
			}
			seen[id] = true
			last = id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIndexConsistencyProperty: after random insertions, label indexes agree
// with a full scan.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(labels []uint8) bool {
		g := New()
		names := []string{"A", "B", "C"}
		want := map[string]int{}
		for _, l := range labels {
			name := names[int(l)%len(names)]
			g.AddNode([]string{name}, nil)
			want[name]++
		}
		for _, name := range names {
			if len(g.NodesByLabel(name)) != want[name] {
				return false
			}
		}
		return g.NumNodes() == len(labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddWithIDConflicts(t *testing.T) {
	g := New()
	n, err := g.AddNodeWithID(10, []string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNodeWithID(10, []string{"B"}, nil); err == nil {
		t.Error("duplicate OID must fail")
	}
	// Next auto OID must not collide.
	m := g.AddNode([]string{"C"}, nil)
	if m.ID <= n.ID {
		t.Errorf("auto OID %d collides with explicit %d", m.ID, n.ID)
	}
	if _, err := g.AddEdgeWithID(10, n.ID, m.ID, "R", nil); err == nil {
		t.Error("edge OID colliding with node OID must fail")
	}
}
