package pg

import "repro/internal/sortedset"

// Snapshots give the graph store transactional rollback: Begin opens a
// savepoint, every subsequent mutation appends a compensating entry to the
// graph's undo journal, and Rollback replays the entries in reverse to
// restore the graph — including the OID allocator — to its exact state at
// Begin. Commit discards the savepoint's entries (keeping them only while
// an enclosing savepoint is still open).
//
// This is the copy-on-write discipline the materialization pipeline's
// atomicity invariant rests on: nothing is copied up front — the graph at
// dictionary scale is far too large — and each journal entry captures the
// minimal prior state (the old property value, the allocator position) at
// the moment of the write. Cost is O(mutations), not O(graph).
//
// Savepoints nest with LIFO discipline (the retryable source wrapper opens
// a per-attempt savepoint inside Materialize's outer one); finishing them
// out of order, or mutating a graph through anything but its own methods
// while a savepoint is open, breaks the journal. Property writes therefore
// must go through SetNodeProp while a snapshot may be active (the instance
// flush path does); writing node.Props directly bypasses the journal.

type undoKind uint8

const (
	undoAddNode undoKind = iota
	undoAddEdge
	undoAddLabel
	undoSetProp
	undoRemoveNode
	undoRemoveEdge
)

// undoOp is one compensating journal entry.
type undoOp struct {
	kind     undoKind
	id       OID
	prevNext OID // undoAddNode/undoAddEdge: allocator position before the add
	label    string
	key      string
	old      Props // undoSetProp: single-entry map with the prior value; nil if absent
	node     *Node // undoRemoveNode: the removed node, for reinsertion
	edge     *Edge // undoRemoveEdge: the removed edge, for reinsertion
}

// Snapshot is an open savepoint on a graph.
type Snapshot struct {
	g    *Graph
	mark int
	done bool
}

// Begin opens a savepoint. Every mutation until Commit or Rollback is
// journaled; Rollback restores the graph to this exact point.
func (g *Graph) Begin() *Snapshot {
	g.snapDepth++
	return &Snapshot{g: g, mark: len(g.journal)}
}

// Commit closes the savepoint, keeping its mutations. Journal entries are
// retained while an outer savepoint is still open (so the outer Rollback
// can undo them too) and discarded once the last savepoint closes.
func (s *Snapshot) Commit() {
	s.finish()
	if s.g.snapDepth == 0 {
		s.g.journal = nil
	}
}

// Rollback undoes every mutation made since Begin, in reverse order, and
// closes the savepoint. After Rollback the graph — contents, indexes and
// OID allocator — is byte-identical to its state at Begin, so a retried
// operation replays with the same OIDs and a failed materialization leaves
// no trace.
func (s *Snapshot) Rollback() {
	s.finish()
	g := s.g
	ops := g.journal[s.mark:]
	g.journal = g.journal[:s.mark]
	for i := len(ops) - 1; i >= 0; i-- {
		g.undo(ops[i])
	}
	if g.snapDepth == 0 {
		g.journal = nil
	}
}

func (s *Snapshot) finish() {
	if s.done {
		panic("pg: snapshot finished twice") // savepoint misuse: programming error
	}
	if s.g.snapDepth <= 0 || len(s.g.journal) < s.mark {
		panic("pg: snapshots finished out of LIFO order")
	}
	s.done = true
	s.g.snapDepth--
}

// record appends a journal entry while a savepoint is open.
func (g *Graph) record(op undoOp) {
	if g.snapDepth > 0 {
		g.journal = append(g.journal, op)
	}
}

// undo applies one compensating entry. It manipulates the internal maps
// directly — compensation must not re-journal.
func (g *Graph) undo(op undoOp) {
	switch op.kind {
	case undoAddNode:
		n := g.nodes[op.id]
		delete(g.nodes, op.id)
		for _, l := range n.Labels {
			g.byLabel[l] = sortedset.Remove(g.byLabel[l], op.id)
		}
		delete(g.out, op.id)
		delete(g.in, op.id)
		g.next = op.prevNext
	case undoAddEdge:
		e := g.edges[op.id]
		delete(g.edges, op.id)
		g.byEdgeLabel[e.Label] = sortedset.Remove(g.byEdgeLabel[e.Label], op.id)
		g.out[e.From] = sortedset.Remove(g.out[e.From], op.id)
		g.in[e.To] = sortedset.Remove(g.in[e.To], op.id)
		g.next = op.prevNext
	case undoAddLabel:
		n := g.nodes[op.id]
		for i, l := range n.Labels {
			if l == op.label {
				n.Labels = append(n.Labels[:i], n.Labels[i+1:]...)
				break
			}
		}
		g.byLabel[op.label] = sortedset.Remove(g.byLabel[op.label], op.id)
	case undoSetProp:
		n := g.nodes[op.id]
		if op.old == nil {
			delete(n.Props, op.key)
		} else {
			n.Props[op.key] = op.old[op.key]
		}
	case undoRemoveNode:
		n := op.node
		g.nodes[n.ID] = n
		for _, l := range n.Labels {
			g.byLabel[l] = sortedset.Insert(g.byLabel[l], n.ID)
		}
	case undoRemoveEdge:
		e := op.edge
		g.edges[e.ID] = e
		g.byEdgeLabel[e.Label] = sortedset.Insert(g.byEdgeLabel[e.Label], e.ID)
		g.out[e.From] = sortedset.Insert(g.out[e.From], e.ID)
		g.in[e.To] = sortedset.Insert(g.in[e.To], e.ID)
	}
}
