package pg

import (
	"errors"
	"testing"

	"repro/internal/value"
)

// isTypedBulkErr reports whether err is one of the loader's declared
// failure modes — the only errors bulk ingest is allowed to produce.
func isTypedBulkErr(err error) bool {
	return errors.Is(err, ErrBadBatch) ||
		errors.Is(err, ErrDuplicateOID) ||
		errors.Is(err, ErrDanglingEdge) ||
		errors.Is(err, ErrLoaderDone)
}

// FuzzBulkLoadBatch drives the loader with arbitrary batch sequences —
// malformed shapes, duplicate and out-of-order OIDs, dangling endpoints,
// colliding names, calls after Finish — and asserts the ingest contract:
// never a panic, only typed errors, and any snapshot that is produced
// passes the FrozenFromColumns validation wall by construction.
func FuzzBulkLoadBatch(f *testing.F) {
	f.Add([]byte{2, 0, 3, 1, 2, 3, 1, 0, 2, 1, 1, 2})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{3, 1, 2, 9, 9, 9, 2, 4, 4})
	f.Add([]byte("bulk-load-fuzz-corpus"))

	// Name palettes: deliberately unsorted, with label/key collisions, so
	// index bytes can produce both valid and malformed schema shapes.
	labels := []string{"Entity", "Business", "Entity", "A", "zz", ""}
	keys := []string{"fiscalCode", "Business", "fiscalCode", "b", ""}

	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		l := NewBulkLoader(1 + int(next()%4))
		finished := false
		for len(data) > 0 {
			op := next()
			pick := func(pal []string, n int) []string {
				out := make([]string, 0, n)
				for i := 0; i < n; i++ {
					out = append(out, pal[int(next())%len(pal)])
				}
				return out
			}
			rows := int(op>>4) % 5
			oids := make([]OID, rows)
			var oid OID
			for i := range oids {
				// Deltas of 0 provoke duplicates; occasional negatives
				// provoke regressions and non-positive OIDs.
				oid += OID(int8(next())) % 7
				oids[i] = oid
			}
			nk := int(next()) % 3
			ks := pick(keys, nk)
			vals := make([]value.Value, (rows*nk+int(next())%3)%(rows*nk+2))
			for i := range vals {
				vals[i] = value.IntV(int64(i))
			}
			var err error
			switch op % 3 {
			case 0:
				err = l.AddNodes(NodeBatch{Labels: pick(labels, int(next())%3), Keys: ks, OIDs: oids, Vals: vals})
			case 1:
				from := make([]OID, len(oids))
				to := make([]OID, (len(oids)+int(next())%2)%(len(oids)+1))
				for i := range from {
					from[i] = OID(next())
				}
				for i := range to {
					to[i] = OID(next())
				}
				err = l.AddEdges(EdgeBatch{Label: labels[int(next())%len(labels)], Keys: ks, OIDs: oids, From: from, To: to, Vals: vals})
			default:
				var snap *Frozen
				snap, err = l.Finish()
				if err == nil {
					// Exercise reads on whatever survived: the snapshot
					// must serve without panicking.
					_ = snap.NumNodes() + snap.NumEdges()
					_ = snap.NodeLabels()
					if snap.NumNodes() > 0 {
						_ = snap.Out(snap.Nodes()[0].ID)
					}
				}
				finished = true
			}
			if err != nil && !isTypedBulkErr(err) {
				t.Fatalf("untyped bulk error: %v", err)
			}
		}
		if !finished {
			if _, err := l.Finish(); err != nil && !isTypedBulkErr(err) {
				t.Fatalf("untyped finish error: %v", err)
			}
		}
	})
}
