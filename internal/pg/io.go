package pg

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/value"
)

// Injection sites of the serialization layer: one per reader/writer entry
// point, probed before any bytes move so an injected failure models the
// I/O error surfacing from the underlying stream.
var (
	siteReadJSON     = fault.Site("pg/read-json")
	siteWriteJSON    = fault.Site("pg/write-json")
	siteReadCSV      = fault.Site("pg/read-csv")
	siteWriteNodeCSV = fault.Site("pg/write-node-csv")
	siteWriteEdgeCSV = fault.Site("pg/write-edge-csv")
)

// The paper lists "plain CSV files" among the non-graph-like models frequently
// used to serialize graphs (Section 2.2). This file implements CSV and JSON
// serialization of property graphs, used by the CSV target model and by the
// command-line tools to exchange instances.

// jsonValue is the serialized form of a value.Value.
type jsonValue struct {
	Kind  string  `json:"kind"`
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
}

func toJSONValue(v value.Value) jsonValue {
	return jsonValue{Kind: v.K.String(), Str: v.S, Int: v.I, Float: v.F, Bool: v.B}
}

func fromJSONValue(j jsonValue) (value.Value, error) {
	switch j.Kind {
	case "string":
		return value.Str(j.Str), nil
	case "int":
		return value.IntV(j.Int), nil
	case "float":
		return value.FloatV(j.Float), nil
	case "bool":
		return value.BoolV(j.Bool), nil
	case "null":
		return value.NullV(j.Int), nil
	case "id":
		return value.IDV(j.Str), nil
	default:
		return value.Value{}, fmt.Errorf("pg: unknown value kind %q", j.Kind)
	}
}

// JSONValue is the exported name of the kind-tagged wire form, so other
// layers (the serving layer's /mutate payload) reuse the exact value encoding
// of the graph files instead of inventing a second one.
type JSONValue = jsonValue

// EncodeValue returns the wire form of a property value.
func EncodeValue(v value.Value) JSONValue { return toJSONValue(v) }

// DecodeValue parses the wire form of a property value.
func DecodeValue(j JSONValue) (value.Value, error) { return fromJSONValue(j) }

type jsonNode struct {
	ID     int64                `json:"id"`
	Labels []string             `json:"labels,omitempty"`
	Props  map[string]jsonValue `json:"props,omitempty"`
}

type jsonEdge struct {
	ID    int64                `json:"id"`
	Label string               `json:"label"`
	From  int64                `json:"from"`
	To    int64                `json:"to"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// WriteJSON serializes the graph as a single JSON document.
func (g *Graph) WriteJSON(w io.Writer) error {
	if err := fault.Hit(siteWriteJSON); err != nil {
		return err
	}
	doc := jsonGraph{}
	for _, n := range g.Nodes() {
		jn := jsonNode{ID: int64(n.ID), Labels: n.Labels, Props: map[string]jsonValue{}}
		for k, v := range n.Props {
			jn.Props[k] = toJSONValue(v)
		}
		doc.Nodes = append(doc.Nodes, jn)
	}
	for _, e := range g.Edges() {
		je := jsonEdge{ID: int64(e.ID), Label: e.Label, From: int64(e.From), To: int64(e.To), Props: map[string]jsonValue{}}
		for k, v := range e.Props {
			je.Props[k] = toJSONValue(v)
		}
		doc.Edges = append(doc.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a graph previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	if err := fault.Hit(siteReadJSON); err != nil {
		return nil, err
	}
	var doc jsonGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("pg: decoding JSON graph: %w", err)
	}
	g := New()
	for _, jn := range doc.Nodes {
		props := Props{}
		for k, jv := range jn.Props {
			v, err := fromJSONValue(jv)
			if err != nil {
				return nil, err
			}
			props[k] = v
		}
		if _, err := g.AddNodeWithID(OID(jn.ID), jn.Labels, props); err != nil {
			return nil, err
		}
	}
	for _, je := range doc.Edges {
		props := Props{}
		for k, jv := range je.Props {
			v, err := fromJSONValue(jv)
			if err != nil {
				return nil, err
			}
			props[k] = v
		}
		if _, err := g.AddEdgeWithID(OID(je.ID), OID(je.From), OID(je.To), je.Label, props); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteNodeCSV writes all nodes as CSV with header
// id,labels,<prop1>,<prop2>,... where the property columns are the union of
// property names across nodes, sorted. Missing properties serialize as "".
func (g *Graph) WriteNodeCSV(w io.Writer) error {
	if err := fault.Hit(siteWriteNodeCSV); err != nil {
		return err
	}
	nodes := g.Nodes()
	cols := propColumns(nodesProps(nodes))
	cw := csv.NewWriter(w)
	header := append([]string{"id", "labels"}, cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, n := range nodes {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.FormatInt(int64(n.ID), 10), strings.Join(n.Labels, ";"))
		for _, c := range cols {
			rec = append(rec, csvCell(n.Props, c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgeCSV writes all edges as CSV with header
// id,label,from,to,<prop1>,... analogous to WriteNodeCSV.
func (g *Graph) WriteEdgeCSV(w io.Writer) error {
	if err := fault.Hit(siteWriteEdgeCSV); err != nil {
		return err
	}
	edges := g.Edges()
	props := make([]Props, len(edges))
	for i, e := range edges {
		props[i] = e.Props
	}
	cols := propColumns(props)
	cw := csv.NewWriter(w)
	header := append([]string{"id", "label", "from", "to"}, cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range edges {
		rec := make([]string, 0, len(header))
		rec = append(rec,
			strconv.FormatInt(int64(e.ID), 10), e.Label,
			strconv.FormatInt(int64(e.From), 10), strconv.FormatInt(int64(e.To), 10))
		for _, c := range cols {
			rec = append(rec, csvCell(e.Props, c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reconstructs a graph from node and edge CSV streams produced by
// WriteNodeCSV and WriteEdgeCSV. Property values are re-parsed as literals;
// cells holding plain text that is not a valid literal load as strings.
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	if err := fault.Hit(siteReadCSV); err != nil {
		return nil, err
	}
	g := New()
	nr := csv.NewReader(nodes)
	nrecs, err := nr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("pg: reading node CSV: %w", err)
	}
	if len(nrecs) == 0 {
		return nil, fmt.Errorf("pg: node CSV has no header")
	}
	nh := nrecs[0]
	if len(nh) < 2 || nh[0] != "id" || nh[1] != "labels" {
		return nil, fmt.Errorf("pg: node CSV header must start with id,labels")
	}
	for _, rec := range nrecs[1:] {
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: bad node id %q: %w", rec[0], err)
		}
		var labels []string
		if rec[1] != "" {
			labels = strings.Split(rec[1], ";")
		}
		props := Props{}
		for i := 2; i < len(rec) && i < len(nh); i++ {
			if rec[i] == "" {
				continue
			}
			props[nh[i]] = parseCSVCell(rec[i])
		}
		if _, err := g.AddNodeWithID(OID(id), labels, props); err != nil {
			return nil, err
		}
	}

	er := csv.NewReader(edges)
	erecs, err := er.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("pg: reading edge CSV: %w", err)
	}
	if len(erecs) == 0 {
		return nil, fmt.Errorf("pg: edge CSV has no header")
	}
	eh := erecs[0]
	if len(eh) < 4 || eh[0] != "id" || eh[1] != "label" || eh[2] != "from" || eh[3] != "to" {
		return nil, fmt.Errorf("pg: edge CSV header must start with id,label,from,to")
	}
	for _, rec := range erecs[1:] {
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: bad edge id %q: %w", rec[0], err)
		}
		from, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: bad edge source %q: %w", rec[2], err)
		}
		to, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: bad edge target %q: %w", rec[3], err)
		}
		props := Props{}
		for i := 4; i < len(rec) && i < len(eh); i++ {
			if rec[i] == "" {
				continue
			}
			props[eh[i]] = parseCSVCell(rec[i])
		}
		if _, err := g.AddEdgeWithID(OID(id), OID(from), OID(to), rec[1], props); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func nodesProps(nodes []*Node) []Props {
	out := make([]Props, len(nodes))
	for i, n := range nodes {
		out[i] = n.Props
	}
	return out
}

func propColumns(ps []Props) []string {
	seen := map[string]bool{}
	for _, p := range ps {
		for k := range p {
			seen[k] = true
		}
	}
	cols := make([]string, 0, len(seen))
	for k := range seen {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

func csvCell(p Props, col string) string {
	v, ok := p[col]
	if !ok {
		return ""
	}
	if v.K == value.String {
		return strconv.Quote(v.S)
	}
	return v.String()
}

func parseCSVCell(s string) value.Value {
	if v, err := value.ParseLiteral(s); err == nil {
		return v
	}
	return value.Str(s)
}
