package pg

// Frozen is the immutable second phase of a graph dictionary's lifecycle.
// Freeze repacks the mutable store's map-of-pointers representation into
// columnar arrays — interned label symbols, CSR-packed label membership,
// property columns, and CSR in/out adjacency — plus a thin pointer facade
// so Frozen serves the same View method set as Graph.
//
// The physical layout is chosen for the read patterns of the reasoning
// pipeline: label scans and adjacency walks return pre-built shared slices
// with zero allocation, and a single snapshot is safe for any number of
// concurrent readers because nothing on the read path mutates. (Graph, by
// contrast, builds lazy state — nothing today, but its contract reserves
// the right — and allocates a fresh slice per call.)

import (
	"sort"
	"sync"

	"repro/internal/symtab"
	"repro/internal/value"
)

// Frozen is an immutable snapshot of a Graph. It implements View; returned
// slices and structs are shared across calls and must not be modified.
// The zero value is not usable; construct snapshots with Graph.Freeze.
type Frozen struct {
	syms *symtab.Table // labels and property keys, interned in sorted order

	// Columnar node storage, one row per node in ascending OID order.
	// Row i's labels are nodeLabelSyms[nodeLabelOff[i]:nodeLabelOff[i+1]]
	// and its properties the matching window of nodePropKeys/nodePropVals,
	// sorted by key symbol (= lexicographic, see Freeze).
	nodeOIDs     []OID
	nodeLabelOff []int32
	nodeLabels   []symtab.Sym
	nodePropOff  []int32
	nodePropKeys []symtab.Sym
	nodePropVals []value.Value

	// Columnar edge storage, ascending OID order.
	edgeOIDs     []OID
	edgeLabel    []symtab.Sym
	edgeFrom     []OID
	edgeTo       []OID
	edgePropOff  []int32
	edgePropKeys []symtab.Sym
	edgePropVals []value.Value

	// CSR adjacency: outAdj groups the edge facade pointers by source node
	// row (ascending edge OID within a row), indexed by outOff; inAdj/inOff
	// group by target.
	outOff []int32
	outAdj []*Edge
	inOff  []int32
	inAdj  []*Edge

	// outAdjRows/inAdjRows are the adjacency arrays as edge row indices —
	// the columnar form FrozenFromColumns receives. They are retained only
	// on the lazy path (nil after Freeze) so the pointer facade can be
	// materialized on first use without revisiting the source columns.
	outAdjRows []int32
	inAdjRows  []int32

	// Facade: pointer structs over the columns, so readers written against
	// Graph's method set work unchanged. Label string slices share one
	// backing array; property maps are materialized per construct.
	//
	// Freeze builds the facade eagerly. FrozenFromColumns — the open path
	// of an on-disk snapshot, where cold-start latency is the budget —
	// validates every structural invariant eagerly but defers the facade
	// allocations (pointer rows, property maps, label indexes) to the
	// first call that needs them, guarded by facadeOnce. Column-only
	// reads (counts, degrees, NodeProp/EdgeProp) never pay for it.
	nodes []*Node
	edges []*Edge

	byLabel        map[symtab.Sym][]*Node
	byEdgeLabel    map[symtab.Sym][]*Edge
	nodeLabelNames []string // sorted
	edgeLabelNames []string // sorted

	lazyFacade bool // set (before publication) by FrozenFromColumns
	facadeOnce sync.Once
}

// Freeze snapshots the graph into its immutable frozen form. The snapshot
// is deep: later mutations of g are invisible to it, and it holds no
// references into g's maps. Cost is O(nodes + edges + properties); the
// intended use is freezing once after the build phase and sharing the
// snapshot across readers, per the staging discipline of Section 6.
//
// Symbol assignment is deterministic: labels and property keys are interned
// in sorted order, so two graphs with equal content freeze to snapshots
// with identical symbol tables.
func (g *Graph) Freeze() *Frozen {
	f := &Frozen{syms: symtab.New()}

	// Intern every name in sorted order: node labels, edge labels, then
	// property keys. Sorted interning makes Sym order match lexicographic
	// order within each group, which the property columns rely on.
	f.nodeLabelNames = g.NodeLabels()
	f.edgeLabelNames = g.EdgeLabels()
	for _, l := range f.nodeLabelNames {
		f.syms.Intern(l)
	}
	for _, l := range f.edgeLabelNames {
		f.syms.Intern(l)
	}
	propKeys := map[string]bool{}
	for _, n := range g.nodes {
		for k := range n.Props {
			propKeys[k] = true
		}
	}
	for _, e := range g.edges {
		for k := range e.Props {
			propKeys[k] = true
		}
	}
	sortedKeys := make([]string, 0, len(propKeys))
	for k := range propKeys {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	for _, k := range sortedKeys {
		f.syms.Intern(k)
	}

	f.freezeNodes(g)
	f.freezeEdges(g)
	f.buildLabelIndexes()
	f.buildAdjacency()
	return f
}

func (f *Frozen) freezeNodes(g *Graph) {
	srcNodes := g.Nodes() // ascending OID
	f.nodeOIDs = make([]OID, len(srcNodes))
	f.nodeLabelOff = make([]int32, len(srcNodes)+1)
	f.nodePropOff = make([]int32, len(srcNodes)+1)
	f.nodes = make([]*Node, len(srcNodes))

	// One backing array for all label strings, shared by the facade's
	// Labels slices.
	labelStrings := make([]string, 0, len(srcNodes))
	for i, n := range srcNodes {
		f.nodeOIDs[i] = n.ID
		for _, l := range n.Labels { // already sorted unique
			f.nodeLabels = append(f.nodeLabels, f.sym(l))
			labelStrings = append(labelStrings, l)
		}
		f.nodeLabelOff[i+1] = int32(len(f.nodeLabels))
		f.appendProps(n.Props, &f.nodePropKeys, &f.nodePropVals)
		f.nodePropOff[i+1] = int32(len(f.nodePropKeys))
	}
	for i, n := range srcNodes {
		props := make(Props, int(f.nodePropOff[i+1]-f.nodePropOff[i]))
		for p := f.nodePropOff[i]; p < f.nodePropOff[i+1]; p++ {
			props[f.syms.Name(f.nodePropKeys[p])] = f.nodePropVals[p]
		}
		var ls []string // nil when unlabeled, matching the mutable store
		if f.nodeLabelOff[i+1] > f.nodeLabelOff[i] {
			ls = labelStrings[f.nodeLabelOff[i]:f.nodeLabelOff[i+1]:f.nodeLabelOff[i+1]]
		}
		f.nodes[i] = &Node{ID: n.ID, Labels: ls, Props: props}
	}
}

func (f *Frozen) freezeEdges(g *Graph) {
	srcEdges := g.Edges() // ascending OID
	f.edgeOIDs = make([]OID, len(srcEdges))
	f.edgeLabel = make([]symtab.Sym, len(srcEdges))
	f.edgeFrom = make([]OID, len(srcEdges))
	f.edgeTo = make([]OID, len(srcEdges))
	f.edgePropOff = make([]int32, len(srcEdges)+1)
	f.edges = make([]*Edge, len(srcEdges))
	for i, e := range srcEdges {
		f.edgeOIDs[i] = e.ID
		f.edgeLabel[i] = f.sym(e.Label)
		f.edgeFrom[i] = e.From
		f.edgeTo[i] = e.To
		f.appendProps(e.Props, &f.edgePropKeys, &f.edgePropVals)
		f.edgePropOff[i+1] = int32(len(f.edgePropKeys))
	}
	for i, e := range srcEdges {
		var props Props // nil when empty, matching the mutable store
		if n := int(f.edgePropOff[i+1] - f.edgePropOff[i]); n > 0 {
			props = make(Props, n)
			for p := f.edgePropOff[i]; p < f.edgePropOff[i+1]; p++ {
				props[f.syms.Name(f.edgePropKeys[p])] = f.edgePropVals[p]
			}
		}
		f.edges[i] = &Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: props}
	}
}

// sym interns a label that may be absent from the pre-pass (the empty edge
// label of unlabeled edges reaches here).
func (f *Frozen) sym(name string) symtab.Sym {
	return f.syms.Intern(name)
}

// appendProps appends one construct's properties to the shared key/value
// columns, sorted by key symbol. Within the property-key group symbols were
// assigned in lexicographic order, so symbol order is name order.
func (f *Frozen) appendProps(p Props, keys *[]symtab.Sym, vals *[]value.Value) {
	start := len(*keys)
	for k, v := range p {
		*keys = append(*keys, f.sym(k))
		*vals = append(*vals, v)
	}
	row := (*keys)[start:]
	rowVals := (*vals)[start:]
	sort.Sort(&propSorter{keys: row, vals: rowVals})
}

type propSorter struct {
	keys []symtab.Sym
	vals []value.Value
}

func (s *propSorter) Len() int           { return len(s.keys) }
func (s *propSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *propSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

func (f *Frozen) buildLabelIndexes() {
	f.byLabel = make(map[symtab.Sym][]*Node)
	for i, n := range f.nodes {
		for _, sym := range f.nodeLabels[f.nodeLabelOff[i]:f.nodeLabelOff[i+1]] {
			f.byLabel[sym] = append(f.byLabel[sym], n)
		}
	}
	f.byEdgeLabel = make(map[symtab.Sym][]*Edge)
	for i, e := range f.edges {
		f.byEdgeLabel[f.edgeLabel[i]] = append(f.byEdgeLabel[f.edgeLabel[i]], e)
	}
}

// buildAdjacency packs the incident-edge lists CSR-style: one counting
// pass, a prefix sum, and a fill pass in ascending edge-OID order, so each
// node's window is sorted by edge OID like Graph.Out/In.
func (f *Frozen) buildAdjacency() {
	n := len(f.nodeOIDs)
	f.outOff = make([]int32, n+1)
	f.inOff = make([]int32, n+1)
	for i := range f.edges {
		fr, _ := rowOf(f.nodeOIDs, f.edgeFrom[i]) // endpoints exist: Graph enforced it
		to, _ := rowOf(f.nodeOIDs, f.edgeTo[i])
		f.outOff[fr+1]++
		f.inOff[to+1]++
	}
	for i := 0; i < n; i++ {
		f.outOff[i+1] += f.outOff[i]
		f.inOff[i+1] += f.inOff[i]
	}
	f.outAdj = make([]*Edge, len(f.edges))
	f.inAdj = make([]*Edge, len(f.edges))
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, f.outOff[:n])
	copy(inNext, f.inOff[:n])
	for i, e := range f.edges {
		fr, _ := rowOf(f.nodeOIDs, f.edgeFrom[i])
		f.outAdj[outNext[fr]] = e
		outNext[fr]++
		to, _ := rowOf(f.nodeOIDs, f.edgeTo[i])
		f.inAdj[inNext[to]] = e
		inNext[to]++
	}
}

// rowOf binary-searches an ascending OID column for id, returning the row
// index. This replaces the old OID→row hash maps: the columns are sorted by
// construction (Freeze) or by validation (FrozenFromColumns), lookup is
// O(log n) with no per-snapshot index to build — which keeps row resolution
// available before the facade is materialized.
func rowOf(oids []OID, id OID) (int32, bool) {
	lo, hi := 0, len(oids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if oids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(oids) && oids[lo] == id {
		return int32(lo), true
	}
	return 0, false
}

// facade materializes the deferred pointer facade of a column-built
// snapshot. Freeze-built snapshots carry it already; for them this is a
// single predictable branch.
func (f *Frozen) facade() {
	if f.lazyFacade {
		f.facadeOnce.Do(f.materializeFacade)
	}
}

// NumNodes returns the number of nodes.
func (f *Frozen) NumNodes() int { return len(f.nodeOIDs) }

// NumEdges returns the number of edges.
func (f *Frozen) NumEdges() int { return len(f.edgeOIDs) }

// Node returns the node with the given OID, or nil.
func (f *Frozen) Node(id OID) *Node {
	if row, ok := rowOf(f.nodeOIDs, id); ok {
		f.facade()
		return f.nodes[row]
	}
	return nil
}

// Edge returns the edge with the given OID, or nil.
func (f *Frozen) Edge(id OID) *Edge {
	if row, ok := rowOf(f.edgeOIDs, id); ok {
		f.facade()
		return f.edges[row]
	}
	return nil
}

// Nodes returns all nodes in ascending OID order. The slice is shared.
func (f *Frozen) Nodes() []*Node {
	f.facade()
	return f.nodes
}

// Edges returns all edges in ascending OID order. The slice is shared.
func (f *Frozen) Edges() []*Edge {
	f.facade()
	return f.edges
}

// NodesByLabel returns the nodes carrying the label, in OID order. The
// slice is shared and returned without copying.
func (f *Frozen) NodesByLabel(label string) []*Node {
	if sym, ok := f.syms.Lookup(label); ok {
		f.facade()
		return f.byLabel[sym]
	}
	return nil
}

// EdgesByLabel returns the edges carrying the label, in OID order. The
// slice is shared and returned without copying.
func (f *Frozen) EdgesByLabel(label string) []*Edge {
	if sym, ok := f.syms.Lookup(label); ok {
		f.facade()
		return f.byEdgeLabel[sym]
	}
	return nil
}

// Out returns the outgoing edges of a node in edge-OID order: a shared
// window of the CSR adjacency array, with no per-call allocation.
func (f *Frozen) Out(id OID) []*Edge {
	if row, ok := rowOf(f.nodeOIDs, id); ok {
		f.facade()
		return f.outAdj[f.outOff[row]:f.outOff[row+1]:f.outOff[row+1]]
	}
	return nil
}

// In returns the incoming edges of a node in edge-OID order, as a shared
// CSR window.
func (f *Frozen) In(id OID) []*Edge {
	if row, ok := rowOf(f.nodeOIDs, id); ok {
		f.facade()
		return f.inAdj[f.inOff[row]:f.inOff[row+1]:f.inOff[row+1]]
	}
	return nil
}

// OutDegree returns the number of outgoing edges of a node. It reads only
// the CSR offsets, so it never forces facade materialization.
func (f *Frozen) OutDegree(id OID) int {
	if row, ok := rowOf(f.nodeOIDs, id); ok {
		return int(f.outOff[row+1] - f.outOff[row])
	}
	return 0
}

// InDegree returns the number of incoming edges of a node.
func (f *Frozen) InDegree(id OID) int {
	if row, ok := rowOf(f.nodeOIDs, id); ok {
		return int(f.inOff[row+1] - f.inOff[row])
	}
	return 0
}

// NodeLabels returns every node label present, sorted. The slice is shared.
func (f *Frozen) NodeLabels() []string {
	f.facade()
	return f.nodeLabelNames
}

// EdgeLabels returns every edge label present, sorted. The slice is shared.
func (f *Frozen) EdgeLabels() []string {
	f.facade()
	return f.edgeLabelNames
}

// Symbols exposes the snapshot's interned name table: labels first (node
// then edge, each sorted), then property keys (sorted). The table must not
// be mutated.
func (f *Frozen) Symbols() *symtab.Table { return f.syms }

// MaxOID returns the largest OID in the snapshot, or 0 when it is empty.
// Writers layering mutations over a snapshot (internal/overlay) allocate
// fresh OIDs strictly above it, which matches where Thaw's allocator
// resumes — so overlay-assigned and thaw-and-mutate-assigned OIDs agree.
// Column-only: it never materializes the facade.
func (f *Frozen) MaxOID() OID {
	var max OID
	if n := len(f.nodeOIDs); n > 0 && f.nodeOIDs[n-1] > max {
		max = f.nodeOIDs[n-1]
	}
	if m := len(f.edgeOIDs); m > 0 && f.edgeOIDs[m-1] > max {
		max = f.edgeOIDs[m-1]
	}
	return max
}

// NodeProp reads one node property from the columnar storage without
// touching the facade: a binary search over the node's key-symbol window.
// It reports false for an absent node or key.
func (f *Frozen) NodeProp(id OID, key string) (value.Value, bool) {
	row, ok := rowOf(f.nodeOIDs, id)
	if !ok {
		return value.Value{}, false
	}
	return f.propAt(f.nodePropKeys, f.nodePropVals, f.nodePropOff, row, key)
}

// EdgeProp reads one edge property from the columnar storage.
func (f *Frozen) EdgeProp(id OID, key string) (value.Value, bool) {
	row, ok := rowOf(f.edgeOIDs, id)
	if !ok {
		return value.Value{}, false
	}
	return f.propAt(f.edgePropKeys, f.edgePropVals, f.edgePropOff, row, key)
}

func (f *Frozen) propAt(keys []symtab.Sym, vals []value.Value, off []int32, row int32, key string) (value.Value, bool) {
	sym, ok := f.syms.Lookup(key)
	if !ok {
		return value.Value{}, false
	}
	lo, hi := int(off[row]), int(off[row+1])
	window := keys[lo:hi]
	i := sort.Search(len(window), func(i int) bool { return window[i] >= sym })
	if i < len(window) && window[i] == sym {
		return vals[lo+i], true
	}
	return value.Value{}, false
}

// Thaw rebuilds a mutable Graph from the snapshot, preserving every OID.
// Freeze and Thaw are exact inverses up to representation: Thaw(Freeze(g))
// has the same nodes, edges, labels and properties as g (the OID allocator
// resumes past the highest OID present).
func (f *Frozen) Thaw() *Graph {
	f.facade()
	g := New()
	for _, n := range f.nodes {
		if _, err := g.AddNodeWithID(n.ID, n.Labels, n.Props); err != nil {
			panic(err) // cannot happen: snapshot OIDs are unique
		}
	}
	for _, e := range f.edges {
		if _, err := g.AddEdgeWithID(e.ID, e.From, e.To, e.Label, e.Props); err != nil {
			panic(err) // cannot happen: endpoints were all added above
		}
	}
	return g
}
