package pg

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
)

// Error-path coverage for the serialization layer: every reader must reject
// malformed input with a descriptive error, never a panic, and never a
// half-built graph that the caller might mistake for a successful read.

func TestReadJSONErrorPaths(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"truncated document", `{"nodes":[{"id":1}`, "decoding JSON graph"},
		{"not JSON at all", `hello world`, "decoding JSON graph"},
		{"unknown value kind", `{"nodes":[{"id":1,"props":{"p":{"kind":"blob"}}}]}`, `unknown value kind "blob"`},
		{"unknown edge value kind", `{"nodes":[{"id":1},{"id":2}],"edges":[{"id":3,"label":"E","from":1,"to":2,"props":{"p":{"kind":"???"}}}]}`, "unknown value kind"},
		{"duplicate node id", `{"nodes":[{"id":1},{"id":1}]}`, "already exists"},
		{"edge to missing node", `{"nodes":[{"id":1}],"edges":[{"id":2,"label":"E","from":1,"to":99}]}`, "does not exist"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadJSON(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("ReadJSON accepted malformed input, got graph with %d nodes", len(g.Nodes()))
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if g != nil {
				t.Fatal("error return must not carry a partial graph")
			}
		})
	}
}

func TestReadCSVErrorPaths(t *testing.T) {
	goodNodes := "id,labels\n1,A\n2,B\n"
	goodEdges := "id,label,from,to\n3,E,1,2\n"
	cases := []struct {
		name, nodes, edges, wantSub string
	}{
		{"empty node stream", "", goodEdges, "no header"},
		{"bad node header", "oid,labels\n", goodEdges, "must start with id,labels"},
		{"ragged node row", "id,labels\n1,A,extra\n", goodEdges, "wrong number of fields"},
		{"non-numeric node id", "id,labels\nfoo,A\n", goodEdges, `bad node id "foo"`},
		{"empty edge stream", goodNodes, "", "no header"},
		{"bad edge header", goodNodes, "id,label,src,dst\n", "must start with id,label,from,to"},
		{"non-numeric edge id", goodNodes, "id,label,from,to\nx,E,1,2\n", `bad edge id "x"`},
		{"non-numeric edge source", goodNodes, "id,label,from,to\n3,E,x,2\n", `bad edge source "x"`},
		{"non-numeric edge target", goodNodes, "id,label,from,to\n3,E,1,x\n", `bad edge target "x"`},
		{"dangling edge", goodNodes, "id,label,from,to\n3,E,1,99\n", "does not exist"},
		{"truncated quoted cell", "id,labels\n1,\"A\n", goodEdges, "node CSV"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadCSV(strings.NewReader(tc.nodes), strings.NewReader(tc.edges))
			if err == nil {
				t.Fatal("ReadCSV accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if g != nil {
				t.Fatal("error return must not carry a partial graph")
			}
		})
	}
}

// randomGraph builds a pseudo-random graph exercising every value kind and
// the label/property shapes the serializers must preserve.
func randomGraph(rng *rand.Rand) *Graph {
	g := New()
	var ids []OID
	labels := []string{"Company", "Person", "KG", ""}
	for i := 0; i < 3+rng.Intn(10); i++ {
		props := Props{}
		if rng.Intn(2) == 0 {
			props["s"] = value.Str(fmt.Sprintf("str %d, with, commas \"and\" quotes", i))
		}
		if rng.Intn(2) == 0 {
			props["i"] = value.IntV(rng.Int63n(1000) - 500)
		}
		if rng.Intn(2) == 0 {
			props["f"] = value.FloatV(rng.Float64() * 100)
		}
		if rng.Intn(2) == 0 {
			props["b"] = value.BoolV(rng.Intn(2) == 0)
		}
		var ls []string
		if l := labels[rng.Intn(len(labels))]; l != "" {
			ls = append(ls, l)
			if rng.Intn(3) == 0 {
				ls = append(ls, "Extra")
			}
		}
		ids = append(ids, g.AddNode(ls, props).ID)
	}
	for i := 0; i < rng.Intn(2*len(ids)); i++ {
		props := Props{}
		if rng.Intn(2) == 0 {
			props["w"] = value.FloatV(rng.Float64())
		}
		g.MustAddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], "REL", props)
	}
	return g
}

// TestJSONRoundTripProperty: Read(Write(g)) == g for randomized graphs,
// compared via the canonical serialization.
func TestJSONRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf2 bytes.Buffer
		if err := g2.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf.String() != buf2.String() {
			t.Fatalf("seed %d: JSON round trip is lossy", seed)
		}
	}
}

// TestCSVRoundTripProperty: the CSV pair round-trips to the same canonical
// JSON serialization for randomized graphs.
func TestCSVRoundTripProperty(t *testing.T) {
	for seed := int64(100); seed < 125; seed++ {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		var nbuf, ebuf bytes.Buffer
		if err := g.WriteNodeCSV(&nbuf); err != nil {
			t.Fatal(err)
		}
		if err := g.WriteEdgeCSV(&ebuf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadCSV(bytes.NewReader(nbuf.Bytes()), bytes.NewReader(ebuf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a, b := serialize(t, g), serialize(t, g2); a != b {
			t.Fatalf("seed %d: CSV round trip is lossy:\n%s\nvs\n%s", seed, a, b)
		}
	}
}
