package pg_test

// Storage microbenchmarks (EXPERIMENTS.md E19). The two shapes that dominate
// the reasoning pipeline's read side are label scans (MetaLog fact
// extraction walks NodesByLabel/EdgesByLabel per catalog entry) and
// adjacency walks (graph statistics and instance views walk Out/In per
// node). Each is measured against every View implementation so
// BENCH_storage.json can compare the mutable builder against the frozen
// snapshot on identical data.

import (
	"testing"

	"repro/internal/pg"
	"repro/internal/value"
)

// benchGraph builds a deterministic two-label graph: n "Company" nodes and
// n "Person" nodes, with each person holding shares in 4 companies — the
// shape of the paper's ownership instances, small enough to stay in cache
// at the default size but large enough that per-call allocation dominates.
func benchGraph(n int) *pg.Graph {
	g := pg.New()
	companies := make([]pg.OID, n)
	persons := make([]pg.OID, n)
	for i := 0; i < n; i++ {
		c := g.AddNode([]string{"Company"}, pg.Props{"name": value.Str("c")})
		companies[i] = c.ID
	}
	for i := 0; i < n; i++ {
		p := g.AddNode([]string{"Person"}, pg.Props{"name": value.Str("p")})
		persons[i] = p.ID
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			to := companies[(i*7+k*13)%n]
			g.MustAddEdge(persons[i], to, "Owns", pg.Props{"w": value.FloatV(0.25)})
		}
	}
	return g
}

const benchN = 4096

func benchLabelScan(b *testing.B, v pg.View) {
	b.ReportAllocs()
	b.ResetTimer()
	var sum pg.OID
	for i := 0; i < b.N; i++ {
		for _, n := range v.NodesByLabel("Company") {
			sum += n.ID
		}
		for _, e := range v.EdgesByLabel("Owns") {
			sum += e.ID
		}
	}
	if sum == 0 {
		b.Fatal("empty scan")
	}
}

func benchAdjacency(b *testing.B, v pg.View, ids []pg.OID) {
	b.ReportAllocs()
	b.ResetTimer()
	var sum pg.OID
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			for _, e := range v.Out(id) {
				sum += e.To
			}
			for _, e := range v.In(id) {
				sum += e.From
			}
		}
	}
	if sum == 0 {
		b.Fatal("empty walk")
	}
}

func BenchmarkStorageLabelScan(b *testing.B) {
	g := benchGraph(benchN)
	b.Run("mutable", func(b *testing.B) { benchLabelScan(b, g) })
	b.Run("frozen", func(b *testing.B) { benchLabelScan(b, g.Freeze()) })
}

func BenchmarkStorageAdjacency(b *testing.B) {
	g := benchGraph(benchN)
	ids := make([]pg.OID, 0, 2*benchN)
	for _, n := range g.Nodes() {
		ids = append(ids, n.ID)
	}
	b.Run("mutable", func(b *testing.B) { benchAdjacency(b, g, ids) })
	b.Run("frozen", func(b *testing.B) { benchAdjacency(b, g.Freeze(), ids) })
}

func BenchmarkStorageFreeze(b *testing.B) {
	g := benchGraph(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := g.Freeze(); f.NumNodes() == 0 {
			b.Fatal("empty freeze")
		}
	}
}
