package pg

// Columnar export/import of Frozen snapshots. Columns is the wire image of
// a snapshot — exactly the arrays Freeze builds, with the pointer facade
// flattened away (adjacency as edge row indices, the symbol table as its
// name listing). It is the boundary between the storage layer and the
// on-disk snapshot format (internal/snapfile): Columns carries no pg
// internals, so the file format can evolve without reaching into Frozen,
// and FrozenFromColumns re-validates every structural invariant before the
// arrays are trusted, so a decoded file can never hand out a snapshot that
// violates the View contract.

import (
	"fmt"
	"sort"

	"repro/internal/symtab"
	"repro/internal/value"
)

// Columns is the columnar image of a Frozen snapshot: the symbol table as
// its ordered name listing, the node/edge columns, and the CSR adjacency
// with edges referred to by row index instead of pointer. Slices returned
// by Frozen.Columns are shared with the snapshot and must not be modified.
type Columns struct {
	// SymNames lists the interned names in symbol order: SymNames[i] is
	// the string of symtab.Sym(i+1).
	SymNames []string

	// Node columns, ascending OID order. Row i's labels are
	// NodeLabels[NodeLabelOff[i]:NodeLabelOff[i+1]] and its properties the
	// matching window of NodePropKeys/NodePropVals, ascending by symbol.
	NodeOIDs     []OID
	NodeLabelOff []int32
	NodeLabels   []symtab.Sym
	NodePropOff  []int32
	NodePropKeys []symtab.Sym
	NodePropVals []value.Value

	// Edge columns, ascending OID order.
	EdgeOIDs     []OID
	EdgeLabels   []symtab.Sym
	EdgeFrom     []OID
	EdgeTo       []OID
	EdgePropOff  []int32
	EdgePropKeys []symtab.Sym
	EdgePropVals []value.Value

	// CSR adjacency: node row i's outgoing edges are the edge rows
	// OutAdj[OutOff[i]:OutOff[i+1]], ascending; InOff/InAdj mirror for
	// incoming edges.
	OutOff []int32
	OutAdj []int32
	InOff  []int32
	InAdj  []int32
}

// Columns exports the snapshot's columnar arrays. The symbol listing and
// the numeric columns are shared with f; the adjacency index arrays are
// freshly built from the pointer CSR.
func (f *Frozen) Columns() Columns {
	c := Columns{
		SymNames:     f.syms.Names(),
		NodeOIDs:     f.nodeOIDs,
		NodeLabelOff: f.nodeLabelOff,
		NodeLabels:   f.nodeLabels,
		NodePropOff:  f.nodePropOff,
		NodePropKeys: f.nodePropKeys,
		NodePropVals: f.nodePropVals,
		EdgeOIDs:     f.edgeOIDs,
		EdgeLabels:   f.edgeLabel,
		EdgeFrom:     f.edgeFrom,
		EdgeTo:       f.edgeTo,
		EdgePropOff:  f.edgePropOff,
		EdgePropKeys: f.edgePropKeys,
		EdgePropVals: f.edgePropVals,
		OutOff:       f.outOff,
		InOff:        f.inOff,
	}
	if f.outAdjRows != nil {
		// Column-built snapshot: the row-index adjacency is retained
		// verbatim, so exporting needs no facade and no resolution.
		c.OutAdj, c.InAdj = f.outAdjRows, f.inAdjRows
		return c
	}
	f.facade()
	c.OutAdj = make([]int32, len(f.outAdj))
	for i, e := range f.outAdj {
		row, _ := rowOf(f.edgeOIDs, e.ID) // facade edges exist by construction
		c.OutAdj[i] = row
	}
	c.InAdj = make([]int32, len(f.inAdj))
	for i, e := range f.inAdj {
		row, _ := rowOf(f.edgeOIDs, e.ID)
		c.InAdj[i] = row
	}
	return c
}

// FrozenFromColumns rebuilds a Frozen snapshot from its columnar image,
// validating every structural invariant of the layout before any array is
// trusted: offset monotonicity, symbol ranges, per-row ordering, OID
// ordering, endpoint existence, and full CSR/edge-column agreement. The
// input slices are retained by the snapshot (they may be windows of an
// mmapped file).
//
// Validation is eager and allocation-free — O(nodes+edges) comparisons,
// binary searches instead of hash maps — so a corrupt column set is
// rejected here, never at query time. The pointer facade (Node/Edge
// structs, property maps, label indexes) is NOT built here: it
// materializes once, on the first read that needs it. That split is what
// makes snapshot cold-start cheap — opening a file costs checksums plus
// these checks, not a heap reconstruction of the whole graph.
func FrozenFromColumns(c Columns) (*Frozen, error) {
	syms, err := symtab.FromNames(c.SymNames)
	if err != nil {
		return nil, err
	}
	n, m := len(c.NodeOIDs), len(c.EdgeOIDs)
	nSyms := len(c.SymNames)

	if err := checkOffsets("node label", c.NodeLabelOff, n, len(c.NodeLabels)); err != nil {
		return nil, err
	}
	if err := checkOffsets("node property", c.NodePropOff, n, len(c.NodePropKeys)); err != nil {
		return nil, err
	}
	if err := checkOffsets("edge property", c.EdgePropOff, m, len(c.EdgePropKeys)); err != nil {
		return nil, err
	}
	if err := checkOffsets("out adjacency", c.OutOff, n, len(c.OutAdj)); err != nil {
		return nil, err
	}
	if err := checkOffsets("in adjacency", c.InOff, n, len(c.InAdj)); err != nil {
		return nil, err
	}
	if len(c.NodePropVals) != len(c.NodePropKeys) || len(c.EdgePropVals) != len(c.EdgePropKeys) {
		return nil, fmt.Errorf("pg: property key and value columns disagree")
	}
	if len(c.EdgeLabels) != m || len(c.EdgeFrom) != m || len(c.EdgeTo) != m {
		return nil, fmt.Errorf("pg: edge columns disagree on edge count")
	}
	if len(c.OutAdj) != m || len(c.InAdj) != m {
		return nil, fmt.Errorf("pg: adjacency holds %d/%d entries, want %d", len(c.OutAdj), len(c.InAdj), m)
	}
	for _, s := range c.NodeLabels {
		if s == symtab.None || int(s) > nSyms {
			return nil, fmt.Errorf("pg: node label symbol %d out of range", s)
		}
	}
	for _, s := range c.EdgeLabels {
		if s == symtab.None || int(s) > nSyms {
			return nil, fmt.Errorf("pg: edge label symbol %d out of range", s)
		}
	}
	for _, col := range [][]symtab.Sym{c.NodePropKeys, c.EdgePropKeys} {
		for _, s := range col {
			if s == symtab.None || int(s) > nSyms {
				return nil, fmt.Errorf("pg: property key symbol %d out of range", s)
			}
		}
	}

	// OIDs must be strictly ascending: the View iteration contract and the
	// precondition of every binary search over rows.
	for i := 1; i < n; i++ {
		if c.NodeOIDs[i] <= c.NodeOIDs[i-1] {
			return nil, fmt.Errorf("pg: node OIDs not strictly ascending at row %d", i)
		}
	}
	for i := 1; i < m; i++ {
		if c.EdgeOIDs[i] <= c.EdgeOIDs[i-1] {
			return nil, fmt.Errorf("pg: edge OIDs not strictly ascending at row %d", i)
		}
	}

	// Per-row labels must be strictly ascending by name (Node.HasLabel
	// binary-searches) and property keys strictly ascending by symbol
	// (Frozen.propAt binary-searches; this also excludes duplicate keys).
	for i := 0; i < n; i++ {
		for p := c.NodeLabelOff[i] + 1; p < c.NodeLabelOff[i+1]; p++ {
			if syms.Name(c.NodeLabels[p-1]) >= syms.Name(c.NodeLabels[p]) {
				return nil, fmt.Errorf("pg: node row %d labels not strictly ascending", i)
			}
		}
		for p := c.NodePropOff[i] + 1; p < c.NodePropOff[i+1]; p++ {
			if c.NodePropKeys[p-1] >= c.NodePropKeys[p] {
				return nil, fmt.Errorf("pg: node row %d: property keys not strictly ascending", i)
			}
		}
	}
	for i := 0; i < m; i++ {
		for p := c.EdgePropOff[i] + 1; p < c.EdgePropOff[i+1]; p++ {
			if c.EdgePropKeys[p-1] >= c.EdgePropKeys[p] {
				return nil, fmt.Errorf("pg: edge row %d: property keys not strictly ascending", i)
			}
		}
	}

	// Endpoints must resolve to node rows. Bulk-loaded graphs have dense
	// consecutive node OIDs, so the finder's O(1) fast path applies; at
	// 100M-edge scale this check would otherwise dominate open latency.
	rf := newRowFinder(c.NodeOIDs)
	for i := 0; i < m; i++ {
		if _, ok := rf.row(c.EdgeFrom[i]); !ok {
			return nil, fmt.Errorf("pg: edge row %d source %d is not a node", i, c.EdgeFrom[i])
		}
		if _, ok := rf.row(c.EdgeTo[i]); !ok {
			return nil, fmt.Errorf("pg: edge row %d target %d is not a node", i, c.EdgeTo[i])
		}
	}

	// CSR adjacency: every window must agree with the edge endpoint
	// columns and stay in ascending edge-row order (= ascending edge OID,
	// the Out/In contract). Ownership is a direct column comparison — the
	// source of edge row r is node row i iff EdgeFrom[r] == NodeOIDs[i].
	for i := 0; i < n; i++ {
		for p := c.OutOff[i]; p < c.OutOff[i+1]; p++ {
			row := c.OutAdj[p]
			if row < 0 || int(row) >= m {
				return nil, fmt.Errorf("pg: out adjacency entry %d out of range", row)
			}
			if c.EdgeFrom[row] != c.NodeOIDs[i] {
				return nil, fmt.Errorf("pg: out adjacency of node row %d lists edge row %d with a different source", i, row)
			}
			if p > c.OutOff[i] && c.OutAdj[p-1] >= row {
				return nil, fmt.Errorf("pg: out adjacency of node row %d not ascending", i)
			}
		}
		for p := c.InOff[i]; p < c.InOff[i+1]; p++ {
			row := c.InAdj[p]
			if row < 0 || int(row) >= m {
				return nil, fmt.Errorf("pg: in adjacency entry %d out of range", row)
			}
			if c.EdgeTo[row] != c.NodeOIDs[i] {
				return nil, fmt.Errorf("pg: in adjacency of node row %d lists edge row %d with a different target", i, row)
			}
			if p > c.InOff[i] && c.InAdj[p-1] >= row {
				return nil, fmt.Errorf("pg: in adjacency of node row %d not ascending", i)
			}
		}
	}

	return &Frozen{
		syms:         syms,
		nodeOIDs:     c.NodeOIDs,
		nodeLabelOff: c.NodeLabelOff,
		nodeLabels:   c.NodeLabels,
		nodePropOff:  c.NodePropOff,
		nodePropKeys: c.NodePropKeys,
		nodePropVals: c.NodePropVals,
		edgeOIDs:     c.EdgeOIDs,
		edgeLabel:    c.EdgeLabels,
		edgeFrom:     c.EdgeFrom,
		edgeTo:       c.EdgeTo,
		edgePropOff:  c.EdgePropOff,
		edgePropKeys: c.EdgePropKeys,
		edgePropVals: c.EdgePropVals,
		outOff:       c.OutOff,
		inOff:        c.InOff,
		outAdjRows:   c.OutAdj,
		inAdjRows:    c.InAdj,
		lazyFacade:   true,
	}, nil
}

// materializeFacade builds the pointer facade of a column-built snapshot:
// batch-allocated Node/Edge structs, per-row property maps, resolved
// adjacency pointers, and the label indexes. It runs at most once per
// snapshot (behind facadeOnce) and assumes FrozenFromColumns already
// validated every invariant, so it performs no checks.
func (f *Frozen) materializeFacade() {
	n, m := len(f.nodeOIDs), len(f.edgeOIDs)

	labelStrings := make([]string, len(f.nodeLabels))
	for i, s := range f.nodeLabels {
		labelStrings[i] = f.syms.Name(s)
	}
	nodeArr := make([]Node, n) // one allocation for all node structs
	f.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		lo, hi := f.nodeLabelOff[i], f.nodeLabelOff[i+1]
		var ls []string // nil when unlabeled, matching Freeze
		if hi > lo {
			ls = labelStrings[lo:hi:hi]
		}
		nodeArr[i] = Node{
			ID:     f.nodeOIDs[i],
			Labels: ls,
			Props:  makeProps(f.syms, f.nodePropKeys, f.nodePropVals, f.nodePropOff[i], f.nodePropOff[i+1], false),
		}
		f.nodes[i] = &nodeArr[i]
	}

	edgeArr := make([]Edge, m)
	f.edges = make([]*Edge, m)
	for i := 0; i < m; i++ {
		edgeArr[i] = Edge{
			ID:    f.edgeOIDs[i],
			Label: f.syms.Name(f.edgeLabel[i]),
			From:  f.edgeFrom[i],
			To:    f.edgeTo[i],
			Props: makeProps(f.syms, f.edgePropKeys, f.edgePropVals, f.edgePropOff[i], f.edgePropOff[i+1], true),
		}
		f.edges[i] = &edgeArr[i]
	}

	f.outAdj = make([]*Edge, m)
	for i, row := range f.outAdjRows {
		f.outAdj[i] = f.edges[row]
	}
	f.inAdj = make([]*Edge, m)
	for i, row := range f.inAdjRows {
		f.inAdj[i] = f.edges[row]
	}

	f.buildLabelIndexes()
	f.nodeLabelNames = collectLabelNames(f.syms, f.nodeLabels)
	f.edgeLabelNames = collectLabelNames(f.syms, f.edgeLabel)
}

// rowFinder resolves OIDs against an ascending OID column, with an O(1)
// arithmetic fast path when the column is dense (consecutive OIDs — true
// for every bulk-loaded or generator-built graph, where OIDs are assigned
// sequentially with no deletions). The column must already be strictly
// ascending; callers validate that first.
type rowFinder struct {
	oids  []OID
	dense bool
	base  OID
}

func newRowFinder(oids []OID) rowFinder {
	rf := rowFinder{oids: oids}
	if n := len(oids); n > 0 && oids[n-1]-oids[0] == OID(n-1) {
		rf.dense, rf.base = true, oids[0]
	}
	return rf
}

func (rf rowFinder) row(id OID) (int32, bool) {
	if rf.dense {
		if id < rf.base || id >= rf.base+OID(len(rf.oids)) {
			return 0, false
		}
		return int32(id - rf.base), true
	}
	return rowOf(rf.oids, id)
}

// checkOffsets validates one CSR offset column: rows+1 entries, starting at
// 0, monotonically non-decreasing, ending exactly at the payload length.
func checkOffsets(what string, off []int32, rows, payload int) error {
	if len(off) != rows+1 {
		return fmt.Errorf("pg: %s offsets hold %d entries, want %d", what, len(off), rows+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("pg: %s offsets start at %d, want 0", what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("pg: %s offsets decrease at row %d", what, i-1)
		}
	}
	if int(off[rows]) != payload {
		return fmt.Errorf("pg: %s offsets end at %d, want %d", what, off[rows], payload)
	}
	return nil
}

// makeProps materializes one row's facade property map from the columnar
// window. Key ordering was validated by FrozenFromColumns. nilWhenEmpty
// matches Freeze's facade: edges use nil for an empty map, nodes an empty
// map.
func makeProps(syms *symtab.Table, keys []symtab.Sym, vals []value.Value, lo, hi int32, nilWhenEmpty bool) Props {
	if hi == lo && nilWhenEmpty {
		return nil
	}
	props := make(Props, hi-lo)
	for p := lo; p < hi; p++ {
		props[syms.Name(keys[p])] = vals[p]
	}
	return props
}

// collectLabelNames derives the sorted distinct label names of a label
// column, mirroring Graph.NodeLabels/EdgeLabels on the frozen columns.
func collectLabelNames(syms *symtab.Table, col []symtab.Sym) []string {
	seen := make(map[symtab.Sym]bool)
	names := make([]string, 0, 8)
	for _, s := range col {
		if !seen[s] {
			seen[s] = true
			names = append(names, syms.Name(s))
		}
	}
	sort.Strings(names)
	return names
}
