package pg

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func noSleep(time.Duration) {}

func TestReadJSONRetryRecoversFromInjectedFault(t *testing.T) {
	defer fault.Reset()
	g := seedGraph()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := buf.String()

	// First attempt fails with an injected error, second succeeds.
	if err := fault.Arm("pg/read-json", fault.Plan{Mode: fault.ModeError, After: 1, Times: 1}); err != nil {
		t.Fatal(err)
	}
	opens := 0
	got, err := ReadJSONRetry(func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(strings.NewReader(want)), nil
	}, fault.RetryPolicy{MaxAttempts: 3, Sleep: noSleep})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if opens != 2 {
		t.Fatalf("open called %d times, want 2 (fresh stream per attempt)", opens)
	}
	// The recovered read is bit-identical to a no-fault read.
	if s := serialize(t, got); s != want {
		t.Fatalf("retried read differs from no-fault read")
	}
}

func TestReadJSONRetryExhaustsOnPersistentFault(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("pg/read-json", fault.Plan{Mode: fault.ModeError, Times: -1}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadJSONRetry(func() (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader("{}")), nil
	}, fault.RetryPolicy{MaxAttempts: 3, Sleep: noSleep})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want ErrInjected after exhaustion, got %v", err)
	}
	if fault.Hits("pg/read-json") != 3 {
		t.Fatalf("site hit %d times, want 3", fault.Hits("pg/read-json"))
	}
}

func TestReadCSVRetryRecoversFromInjectedFault(t *testing.T) {
	defer fault.Reset()
	g := seedGraph()
	var nbuf, ebuf bytes.Buffer
	if err := g.WriteNodeCSV(&nbuf); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeCSV(&ebuf); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("pg/read-csv", fault.Plan{Mode: fault.ModeError, After: 1, Times: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVRetry(func() (io.ReadCloser, io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(nbuf.String())),
			io.NopCloser(strings.NewReader(ebuf.String())), nil
	}, fault.RetryPolicy{MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(got.Nodes()) != len(g.Nodes()) || len(got.Edges()) != len(g.Edges()) {
		t.Fatalf("recovered graph has %d nodes/%d edges, want %d/%d",
			len(got.Nodes()), len(got.Edges()), len(g.Nodes()), len(g.Edges()))
	}
}

func TestWriteSitesInjectErrors(t *testing.T) {
	g := seedGraph()
	for _, site := range []string{"pg/write-json", "pg/write-node-csv", "pg/write-edge-csv"} {
		fault.Reset()
		if err := fault.Arm(site, fault.Plan{Mode: fault.ModeError}); err != nil {
			t.Fatal(err)
		}
		var err error
		switch site {
		case "pg/write-json":
			err = g.WriteJSON(io.Discard)
		case "pg/write-node-csv":
			err = g.WriteNodeCSV(io.Discard)
		case "pg/write-edge-csv":
			err = g.WriteEdgeCSV(io.Discard)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("site %s: want ErrInjected, got %v", site, err)
		}
	}
	fault.Reset()
}
