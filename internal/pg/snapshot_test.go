package pg

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// serialize captures the observable state of a graph for byte-identity
// comparisons.
func serialize(t *testing.T, g *Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func seedGraph() *Graph {
	g := New()
	a := g.AddNode([]string{"A"}, Props{"name": value.Str("a"), "n": value.IntV(1)})
	b := g.AddNode([]string{"B"}, Props{"name": value.Str("b")})
	g.MustAddEdge(a.ID, b.ID, "REL", Props{"w": value.FloatV(0.5)})
	return g
}

func TestSnapshotRollbackRestoresEverything(t *testing.T) {
	g := seedGraph()
	before := serialize(t, g)
	nextBefore := g.next

	snap := g.Begin()
	n := g.AddNode([]string{"C", "A"}, Props{"k": value.IntV(9)})
	g.MustAddEdge(n.ID, 1, "REL", nil)
	if err := g.AddLabel(1, "Extra"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProp(1, "name", value.Str("mutated")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProp(1, "fresh", value.BoolV(true)); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(3); err != nil { // the seed edge
		t.Fatal(err)
	}
	if err := g.RemoveNode(2); err != nil { // seed node b
		t.Fatal(err)
	}
	if serialize(t, g) == before {
		t.Fatal("mutations did not change the serialization (test is vacuous)")
	}
	snap.Rollback()

	if got := serialize(t, g); got != before {
		t.Fatalf("rollback is not byte-identical:\nbefore: %s\nafter:  %s", before, got)
	}
	if g.next != nextBefore {
		t.Fatalf("OID allocator not restored: %d != %d", g.next, nextBefore)
	}
	// The allocator replays the same OIDs, so a retried operation is
	// bit-identical to a first-try run.
	if n2 := g.AddNode(nil, nil); n2.ID != n.ID {
		t.Fatalf("post-rollback OID = %d, want %d", n2.ID, n.ID)
	}
}

func TestSnapshotCommitKeepsMutations(t *testing.T) {
	g := seedGraph()
	snap := g.Begin()
	n := g.AddNode([]string{"C"}, nil)
	snap.Commit()
	if g.Node(n.ID) == nil {
		t.Fatal("committed node vanished")
	}
	if g.snapDepth != 0 || g.journal != nil {
		t.Fatalf("journal not released after commit: depth=%d len=%d", g.snapDepth, len(g.journal))
	}
	// Mutations outside any savepoint are not journaled.
	g.AddNode(nil, nil)
	if len(g.journal) != 0 {
		t.Fatal("journaling active outside a savepoint")
	}
}

func TestSnapshotNestedSavepoints(t *testing.T) {
	g := seedGraph()
	base := serialize(t, g)

	// Inner rollback, outer commit: only the inner mutations vanish.
	outer := g.Begin()
	kept := g.AddNode([]string{"Kept"}, nil)
	inner := g.Begin()
	g.AddNode([]string{"Dropped"}, nil)
	inner.Rollback()
	outer.Commit()
	if g.Node(kept.ID) == nil || len(g.NodesByLabel("Dropped")) != 0 {
		t.Fatal("inner rollback under outer commit kept the wrong set")
	}

	// Inner commit, outer rollback: everything since the outer Begin goes.
	g2 := seedGraph()
	outer2 := g2.Begin()
	g2.AddNode([]string{"X"}, nil)
	inner2 := g2.Begin()
	g2.AddNode([]string{"Y"}, nil)
	inner2.Commit()
	outer2.Rollback()
	if got := serialize(t, g2); got != base {
		t.Fatalf("outer rollback did not undo inner-committed mutations")
	}
}

func TestSnapshotMisuse(t *testing.T) {
	g := seedGraph()
	snap := g.Begin()
	snap.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("double finish must panic (savepoint misuse is a programming error)")
		}
	}()
	snap.Commit()
}

// TestSnapshotRandomizedRollback drives a random mutation sequence under a
// savepoint and checks the rollback restores the serialization, for many
// seeds — the property the chaos suite's atomicity invariant reduces to.
func TestSnapshotRandomizedRollback(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var nodes []OID
		for i := 0; i < 5+rng.Intn(5); i++ {
			nodes = append(nodes, g.AddNode([]string{"N"}, Props{"i": value.IntV(int64(i))}).ID)
		}
		for i := 0; i < 8; i++ {
			g.MustAddEdge(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], "E", nil)
		}
		before := serialize(t, g)
		snap := g.Begin()
		for i := 0; i < 40; i++ {
			switch rng.Intn(6) {
			case 0:
				nodes = append(nodes, g.AddNode([]string{"M"}, nil).ID)
			case 1:
				// Endpoints may have been removed by case 5; the
				// error-returning AddEdge rejects those attempts.
				_, _ = g.AddEdge(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], "E2", nil)
			case 2:
				_ = g.SetNodeProp(nodes[rng.Intn(len(nodes))], "p", value.IntV(int64(i)))
			case 3:
				_ = g.AddLabel(nodes[rng.Intn(len(nodes))], "L")
			case 4:
				if es := g.Edges(); len(es) > 0 {
					_ = g.RemoveEdge(es[rng.Intn(len(es))].ID)
				}
			case 5:
				if len(nodes) > 2 {
					i := rng.Intn(len(nodes))
					if g.Node(nodes[i]) != nil {
						_ = g.RemoveNode(nodes[i])
					}
				}
			}
		}
		snap.Rollback()
		if got := serialize(t, g); got != before {
			t.Fatalf("seed %d: rollback not byte-identical", seed)
		}
	}
}
