package pg

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/value"
)

// randomFrozenGraph builds a randomized graph exercising the whole storage
// surface: multi-labeled and unlabeled nodes, mixed-kind properties, parallel
// and self-loop edges, and OID gaps from removals.
func randomFrozenGraph(r *rand.Rand) *Graph {
	labels := []string{"Company", "Person", "Asset", "Branch"}
	edgeLabels := []string{"OWNS", "WORKS_FOR", "HOLDS", ""}
	propKeys := []string{"name", "pct", "age", "active", "rank"}

	randValue := func() value.Value {
		switch r.Intn(4) {
		case 0:
			return value.Str(fmt.Sprintf("s%d", r.Intn(50)))
		case 1:
			return value.IntV(int64(r.Intn(1000) - 500))
		case 2:
			return value.FloatV(float64(r.Intn(2000))/7 - 100)
		default:
			return value.BoolV(r.Intn(2) == 0)
		}
	}
	randProps := func() Props {
		if r.Intn(3) == 0 {
			return nil
		}
		p := Props{}
		for _, k := range propKeys {
			if r.Intn(3) == 0 {
				p[k] = randValue()
			}
		}
		return p
	}

	g := New()
	n := 5 + r.Intn(40)
	var oids []OID
	for i := 0; i < n; i++ {
		var ls []string
		for _, l := range labels {
			if r.Intn(3) == 0 {
				ls = append(ls, l)
			}
		}
		node := g.AddNode(ls, randProps())
		oids = append(oids, node.ID)
	}
	var eids []OID
	for i := 0; i < 3*n; i++ {
		from := oids[r.Intn(len(oids))]
		to := oids[r.Intn(len(oids))]
		e := g.MustAddEdge(from, to, edgeLabels[r.Intn(len(edgeLabels))], randProps())
		eids = append(eids, e.ID)
	}
	// OID gaps: drop a few constructs so frozen rows are not contiguous.
	for i := 0; i < len(eids)/10; i++ {
		_ = g.RemoveEdge(eids[r.Intn(len(eids))])
	}
	for i := 0; i < len(oids)/10; i++ {
		_ = g.RemoveNode(oids[r.Intn(len(oids))])
	}
	return g
}

func graphJSON(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestFreezeThawRoundTrip is the Freeze/Thaw property test: for randomized
// graphs, Thaw(Freeze(g)) serializes byte-identically to g.
func TestFreezeThawRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomFrozenGraph(rand.New(rand.NewSource(seed)))
		want := graphJSON(t, g)
		got := graphJSON(t, g.Freeze().Thaw())
		if !bytes.Equal(want, got) {
			t.Fatalf("seed %d: Thaw(Freeze(g)) differs from g:\nwant %s\ngot  %s", seed, want, got)
		}
	}
}

// TestFrozenViewEquivalence checks every View method agrees between the
// mutable graph and its frozen snapshot, element by element and in order.
func TestFrozenViewEquivalence(t *testing.T) {
	edgeIDs := func(es []*Edge) []OID {
		out := []OID{}
		for _, e := range es {
			out = append(out, e.ID)
		}
		return out
	}
	for seed := int64(0); seed < 25; seed++ {
		g := randomFrozenGraph(rand.New(rand.NewSource(seed)))
		f := g.Freeze()

		if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: size mismatch: frozen %d/%d, graph %d/%d",
				seed, f.NumNodes(), f.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		if !reflect.DeepEqual(f.NodeLabels(), g.NodeLabels()) {
			t.Fatalf("seed %d: NodeLabels %v != %v", seed, f.NodeLabels(), g.NodeLabels())
		}
		if !reflect.DeepEqual(f.EdgeLabels(), g.EdgeLabels()) {
			t.Fatalf("seed %d: EdgeLabels %v != %v", seed, f.EdgeLabels(), g.EdgeLabels())
		}
		gn, fn := g.Nodes(), f.Nodes()
		for i := range gn {
			if fn[i].ID != gn[i].ID {
				t.Fatalf("seed %d: node order diverges at %d", seed, i)
			}
			if !reflect.DeepEqual(fn[i].Labels, gn[i].Labels) {
				t.Fatalf("seed %d: node %d labels %v != %v", seed, gn[i].ID, fn[i].Labels, gn[i].Labels)
			}
			if len(fn[i].Props) != len(gn[i].Props) {
				t.Fatalf("seed %d: node %d prop count", seed, gn[i].ID)
			}
			for k, v := range gn[i].Props {
				if fv, ok := fn[i].Props[k]; !ok || fv != v {
					t.Fatalf("seed %d: node %d prop %q: %v vs %v", seed, gn[i].ID, k, fv, v)
				}
				if cv, ok := f.NodeProp(gn[i].ID, k); !ok || cv != v {
					t.Fatalf("seed %d: NodeProp(%d,%q) = %v,%v want %v", seed, gn[i].ID, k, cv, ok, v)
				}
			}
			if _, ok := f.NodeProp(gn[i].ID, "no-such-key"); ok {
				t.Fatalf("seed %d: NodeProp found a phantom key", seed)
			}
			if !reflect.DeepEqual(edgeIDs(f.Out(gn[i].ID)), edgeIDs(g.Out(gn[i].ID))) {
				t.Fatalf("seed %d: Out(%d) order differs", seed, gn[i].ID)
			}
			if !reflect.DeepEqual(edgeIDs(f.In(gn[i].ID)), edgeIDs(g.In(gn[i].ID))) {
				t.Fatalf("seed %d: In(%d) order differs", seed, gn[i].ID)
			}
			if f.OutDegree(gn[i].ID) != g.OutDegree(gn[i].ID) || f.InDegree(gn[i].ID) != g.InDegree(gn[i].ID) {
				t.Fatalf("seed %d: degree mismatch at node %d", seed, gn[i].ID)
			}
		}
		ge, fe := g.Edges(), f.Edges()
		for i := range ge {
			if fe[i].ID != ge[i].ID || fe[i].Label != ge[i].Label || fe[i].From != ge[i].From || fe[i].To != ge[i].To {
				t.Fatalf("seed %d: edge row %d differs: %+v vs %+v", seed, i, fe[i], ge[i])
			}
			for k, v := range ge[i].Props {
				if cv, ok := f.EdgeProp(ge[i].ID, k); !ok || cv != v {
					t.Fatalf("seed %d: EdgeProp(%d,%q) = %v,%v want %v", seed, ge[i].ID, k, cv, ok, v)
				}
			}
		}
		for _, l := range append(g.NodeLabels(), "NoSuchLabel") {
			var wantIDs, gotIDs []OID
			for _, n := range g.NodesByLabel(l) {
				wantIDs = append(wantIDs, n.ID)
			}
			for _, n := range f.NodesByLabel(l) {
				gotIDs = append(gotIDs, n.ID)
			}
			if !reflect.DeepEqual(gotIDs, wantIDs) {
				t.Fatalf("seed %d: NodesByLabel(%q) %v != %v", seed, l, gotIDs, wantIDs)
			}
		}
		for _, l := range append(g.EdgeLabels(), "NoSuchLabel") {
			if !reflect.DeepEqual(edgeIDs(f.EdgesByLabel(l)), edgeIDs(g.EdgesByLabel(l))) {
				t.Fatalf("seed %d: EdgesByLabel(%q) differs", seed, l)
			}
		}
		if f.Node(1<<40) != nil || f.Edge(1<<40) != nil {
			t.Fatalf("seed %d: lookup of absent OID returned a construct", seed)
		}
	}
}

// TestFreezeDeterministicSymbols: symbol assignment is a pure function of
// graph content — two equal-content graphs (here: g and its round-trip twin)
// freeze to identical symbol tables.
func TestFreezeDeterministicSymbols(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomFrozenGraph(rand.New(rand.NewSource(seed)))
		a := g.Freeze()
		b := a.Thaw().Freeze()
		if !reflect.DeepEqual(a.Symbols().Names(), b.Symbols().Names()) {
			t.Fatalf("seed %d: symbol tables differ:\n%v\n%v", seed, a.Symbols().Names(), b.Symbols().Names())
		}
	}
}

// TestFrozenIsDeepSnapshot: mutations of the source graph after Freeze are
// invisible to the snapshot.
func TestFrozenIsDeepSnapshot(t *testing.T) {
	g := New()
	n := g.AddNode([]string{"Company"}, Props{"name": value.Str("acme")})
	m := g.AddNode([]string{"Person"}, nil)
	g.MustAddEdge(n.ID, m.ID, "OWNS", nil)
	f := g.Freeze()
	before := graphJSON(t, f.Thaw())

	g.AddNode([]string{"Intruder"}, nil)
	if err := g.SetNodeProp(n.ID, "name", value.Str("changed")); err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(m.ID, n.ID, "WORKS_FOR", nil)

	if got := graphJSON(t, f.Thaw()); !bytes.Equal(before, got) {
		t.Fatalf("snapshot changed after source mutation:\nbefore %s\nafter  %s", before, got)
	}
	if v, _ := f.NodeProp(n.ID, "name"); v != value.Str("acme") {
		t.Fatalf("frozen property changed: %v", v)
	}
}

// TestFrozenConcurrentReaders hammers one snapshot from 8 goroutines doing
// full read sweeps. Run under -race (make test-race) this proves the frozen
// read path performs no hidden mutation.
func TestFrozenConcurrentReaders(t *testing.T) {
	g := randomFrozenGraph(rand.New(rand.NewSource(7)))
	f := g.Freeze()
	want := graphJSON(t, f.Thaw())

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				total := 0
				for _, l := range f.NodeLabels() {
					total += len(f.NodesByLabel(l))
				}
				for _, n := range f.Nodes() {
					for _, e := range f.Out(n.ID) {
						_ = f.Edge(e.ID)
					}
					for _, e := range f.In(n.ID) {
						_, _ = f.EdgeProp(e.ID, "pct")
					}
					_, _ = f.NodeProp(n.ID, "name")
					_ = f.InDegree(n.ID) + f.OutDegree(n.ID)
				}
				for _, l := range f.EdgeLabels() {
					total += len(f.EdgesByLabel(l))
				}
				if total == 0 && f.NumNodes() > 0 && len(f.NodeLabels()) > 0 {
					errs <- fmt.Errorf("reader %d: label scan went empty", w)
					return
				}
			}
			if got := graphJSON(t, f.Thaw()); !bytes.Equal(want, got) {
				errs <- fmt.Errorf("reader %d: view drifted during concurrent reads", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
