package vadalog

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/value"
)

// ---------------------------------------------------------------------------
// E22 benchmarks: incremental maintenance vs full rebuild under small churn.
// make bench-incr captures BenchmarkIncr* into BENCH_incr.json; the
// acceptance criterion — a 0.1% edge-churn batch re-materializing in <1% of
// full-rebuild wall time — is enforced in-process by TestIncrChurnRatio so
// the gate runs on every `go test ./...`, not only when someone reads the
// bench numbers.
// ---------------------------------------------------------------------------

const (
	incrNodes     = 2000
	incrEdges     = 20000
	incrChurn     = 20 // 0.1% of incrEdges
	incrMaxFacts  = 1_000_000
	incrBenchProg = `
f(X,Y) :- e(X,Y), X < Y.
p(X,Z) :- f(X,Y), e(Y,Z).
u(X) :- p(X,Y).
`
)

// incrBenchEDB builds the E22 reference EDB: incrNodes node facts and about
// incrEdges random edges (duplicates collapse on insert).
func incrBenchEDB(rng *rand.Rand) *Database {
	db := NewDatabase()
	for i := 0; i < incrNodes; i++ {
		db.MustAddFact("n", value.IntV(int64(i)))
	}
	for i := 0; i < incrEdges; i++ {
		db.MustAddFact("e",
			value.IntV(int64(rng.Intn(incrNodes))), value.IntV(int64(rng.Intn(incrNodes))))
	}
	return db
}

// incrChurnBatches derives a pair of inverse churn batches from the
// maintainer's asserted edge set: batch A retracts `incrChurn` existing
// edges and asserts the same number of fresh ones; batch B undoes A.
// Alternating them keeps the maintained state oscillating between two fixed
// configurations, so every timed iteration does the same amount of work.
func incrChurnBatches(rng *rand.Rand, m *Maintainer) (Delta, Delta) {
	edges := m.AssertedFacts("e")
	present := make(map[[2]int64]bool, len(edges))
	for _, f := range edges {
		a, _ := f[0].AsInt()
		b, _ := f[1].AsInt()
		present[[2]int64{a, b}] = true
	}

	out, back := NewDelta(), NewDelta()
	for _, pos := range rng.Perm(len(edges))[:incrChurn] {
		out.DelFact("e", edges[pos]...)
		back.AddFact("e", edges[pos]...)
	}
	for added := 0; added < incrChurn; {
		pair := [2]int64{int64(rng.Intn(incrNodes)), int64(rng.Intn(incrNodes))}
		if present[pair] {
			continue
		}
		present[pair] = true
		out.AddFact("e", value.IntV(pair[0]), value.IntV(pair[1]))
		back.DelFact("e", value.IntV(pair[0]), value.IntV(pair[1]))
		added++
	}
	return out, back
}

// BenchmarkIncrChurnApply times one 0.1% edge-churn batch (20 retractions +
// 20 additions over a 20k-edge EDB) through Maintainer.Apply — DRed for the
// retracted support, semi-naive seeded from the additions.
func BenchmarkIncrChurnApply(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	prog, err := Parse(incrBenchProg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMaintainer(prog, incrBenchEDB(rng), Options{Workers: 1, MaxFacts: incrMaxFacts})
	if err != nil {
		b.Fatal(err)
	}
	if !m.Incremental() {
		b.Fatalf("bench program fell out of the incremental class: %v", m.Unsupported())
	}
	out, back := incrChurnBatches(rng, m)
	batches := [2]Delta{out, back}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Apply(batches[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrFullRebuild times the from-scratch alternative the
// incremental path is judged against: a full fixpoint over the same program
// and EDB.
func BenchmarkIncrFullRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	prog, err := Parse(incrBenchProg)
	if err != nil {
		b.Fatal(err)
	}
	edb := incrBenchEDB(rng)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, edb.Clone(), Options{Workers: 1, MaxFacts: incrMaxFacts}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIncrChurnRatio is the E22 acceptance gate in test form: a 0.1%
// edge-churn batch must re-materialize in under 1% of the full-rebuild wall
// time. Both sides are measured as the minimum over repeated runs — the
// apply side over many more, because a ~1ms interval needs far more samples
// than a ~100ms one for its minimum to converge under scheduler and GC
// noise. The steady-state ratio is ~0.8%, so the gate holds with modest but
// real margin; the quotient of two same-machine minima also cancels raw
// machine speed, which keeps the gate meaningful under the race detector.
func TestIncrChurnRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	prog, err := Parse(incrBenchProg)
	if err != nil {
		t.Fatal(err)
	}
	edb := incrBenchEDB(rng)

	full := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		runtime.GC()
		start := time.Now()
		if _, err := Run(prog, edb.Clone(), Options{Workers: 1, MaxFacts: incrMaxFacts}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < full {
			full = d
		}
	}

	m, err := NewMaintainer(prog, edb.Clone(), Options{Workers: 1, MaxFacts: incrMaxFacts})
	if err != nil {
		t.Fatal(err)
	}
	out, back := incrChurnBatches(rng, m)
	batches := [2]Delta{out, back}
	incr := time.Duration(1<<62 - 1)
	runtime.GC()
	for i := 0; i < 40; i++ {
		start := time.Now()
		if _, err := m.Apply(batches[i%2]); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < incr {
			incr = d
		}
	}

	ratio := float64(incr) / float64(full)
	t.Logf("full rebuild %v, 0.1%% churn apply %v, ratio %.4f%%", full, incr, 100*ratio)
	if ratio >= 0.01 {
		t.Fatalf("0.1%% churn batch took %v = %.2f%% of the %v full rebuild; the gate is <1%%",
			incr, 100*ratio, full)
	}
}
