package vadalog

// Incremental maintenance under both insertions AND retractions: the live
// write path of the serving roadmap. Incremental (incremental.go) resumes the
// semi-naive fixpoint for monotonically growing inputs; the Maintainer in
// this file additionally supports deleting extensional facts, using the
// classic delete-and-rederive (DRed) algorithm — see Hogan et al.,
// "Knowledge Graphs" (§reasoning) for the technique space, and the paper's §6
// for why a full rebuild per change (~160 min at Bank of Italy scale) is the
// thing to avoid.
//
// A batch is applied in two phases, deletions first:
//
//  1. Over-delete. For every rule H :- B1,…,Bn and every positive body atom
//     occurrence Bi, a variant rule del·H :- …,del·Bi,… computes an
//     over-approximation of the facts that lose a derivation: anything with
//     at least one derivation through a deleted fact. The variants run on a
//     scratch database that shares the live relations (still pre-deletion, as
//     DRed requires) with the private del· relations seeded from the batch.
//     The delta atom is moved to the front of the body — making it the
//     semi-naive driver, so the work is proportional to the delta — unless
//     one of its variables is the target of an assignment literal: fronting
//     would pre-bind the target and flip `X = E` from an assignment into an
//     equality *condition*, which evaluates under value.Equal's
//     kind-insensitive numeric equality while fact identity is canonical
//     (kind-sensitive). In that case the del· atom substitutes for Bi in
//     place, preserving the original binding structure exactly.
//
//  2. Re-derive. The over-deleted facts are removed from the live relations;
//     those still asserted extensionally are put straight back, and the rest
//     become cand· candidates. Every rule re-runs guarded by its own head:
//     H :- cand·H, B1,…,Bn — a firing re-derives a candidate if and only if
//     the remaining database still supports it, and the guarded fixpoint
//     cascades restorations (a restored fact may re-support another
//     candidate). Rules whose head contains an assignment-target variable or
//     an explicit Skolem term cannot be guarded (the guard would pre-bind the
//     assignment target / place a Skolem term in a body), so they are
//     included verbatim: over the post-deletion database every firing is a
//     true derivation, which keeps the pass sound at the cost of a full
//     evaluation of that one rule. Fact rules (empty body) are also included
//     verbatim.
//
// Soundness of the phase-2 guard: after removing Δ⁻ the database is a subset
// of the old model, and a deletion-only change shrinks the model of a
// positive program, so any fact of the new model that is missing was
// over-deleted and is therefore a candidate. The guarded fixpoint thus
// reaches exactly the new model.
//
// Insertions then run the ins·-transformed program (buildInsertionProgram):
// each rule variant is driven by a front-loaded ins· delta atom and heads
// into both the original predicate and its ins· shadow, so each round's
// derivations become the next round's delta — semi-naive evaluation
// expressed as a program transformation over the unmodified engine.
//
// Programs outside the supported class — stratified negation, aggregation
// (monotonic aggregation included: accumulators cannot be un-contributed),
// or existential head variables — fall back transparently to a full
// recomputation from the maintained extensional store; the result is still
// exactly what a fresh Run over the mutated input would produce, and
// DeltaStats.Recomputed reports that the fast path was bypassed.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/value"
)

// siteDelta brackets one maintenance batch; chaos tests arm it to prove that
// a failed batch leaves the maintained database untouched.
var siteDelta = fault.Site("vadalog/delta")

// delPrefix, candPrefix and insPrefix name the private relations of the
// maintenance phases. The middle dot cannot appear in parsed predicate
// names, so the transformed programs can never collide with user predicates.
const (
	delPrefix  = "·del·"
	candPrefix = "·cand·"
	insPrefix  = "·ins·"
)

func delPred(pred string) string  { return delPrefix + pred }
func candPred(pred string) string { return candPrefix + pred }
func insPred(pred string) string  { return insPrefix + pred }

// Delta is one batch of extensional changes: facts to retract and facts to
// assert. Within a batch, deletions apply before additions.
type Delta struct {
	Add map[string][]Fact
	Del map[string][]Fact
}

// NewDelta returns an empty batch.
func NewDelta() Delta {
	return Delta{Add: map[string][]Fact{}, Del: map[string][]Fact{}}
}

// AddFact schedules an extensional assertion.
func (d *Delta) AddFact(pred string, vals ...value.Value) {
	if d.Add == nil {
		d.Add = map[string][]Fact{}
	}
	d.Add[pred] = append(d.Add[pred], Fact(vals))
}

// DelFact schedules an extensional retraction.
func (d *Delta) DelFact(pred string, vals ...value.Value) {
	if d.Del == nil {
		d.Del = map[string][]Fact{}
	}
	d.Del[pred] = append(d.Del[pred], Fact(vals))
}

// Empty reports whether the batch changes nothing.
func (d Delta) Empty() bool {
	for _, fs := range d.Add {
		if len(fs) > 0 {
			return false
		}
	}
	for _, fs := range d.Del {
		if len(fs) > 0 {
			return false
		}
	}
	return true
}

// DeltaStats summarizes one applied batch.
type DeltaStats struct {
	// Added counts facts newly present after the insertion phase: asserted
	// facts that were not already in the database, plus everything the
	// resumed fixpoint derived from them.
	Added int
	// Deleted counts facts removed net of restorations.
	Deleted int
	// OverDeleted counts the facts the DRed over-deletion phase removed
	// before re-derivation (always ≥ the net Deleted).
	OverDeleted int
	// Rederived counts over-deleted facts the re-derivation phase restored.
	Rederived int
	// Recomputed reports that the batch was applied by full recomputation —
	// either because the program is outside the incremental class, or as
	// recovery after a failed incremental attempt was rolled back.
	Recomputed bool
	// Duration is the wall-clock time of the batch.
	Duration time.Duration
}

// Maintainer keeps a database saturated under batches of extensional
// insertions and deletions. It is not safe for concurrent use.
type Maintainer struct {
	prog *Program
	db   *Database
	opts Options

	// edb tracks the asserted (extensional) facts per predicate: the facts
	// present before the initial saturation, minus retractions, plus
	// assertions. It is authoritative — the fallback and recovery paths
	// recompute the whole database from it.
	edb map[string]*Relation

	// unsupported, when non-empty, names the program feature that forces the
	// full-recompute path for every batch.
	unsupported string

	// delProg, candProg and insProg are the cached maintenance program
	// transformations, pre-analyzed once so each Apply skips the per-run
	// stratification pass (nil for unsupported programs).
	delProg  *maintProg
	candProg *maintProg
	insProg  *maintProg

	// pool holds the reusable shadow relations (del·/cand·/ins· predicates)
	// keyed by predicate name. Each Apply resets and re-registers them in
	// its scratch database instead of growing fresh ones, which keeps the
	// steady-state allocation rate — and with it the GC tax — low.
	pool map[string]*Relation

	// removedBuf is the reusable buffer for Relation.removeInto results; its
	// contents are consumed before the next removal.
	removedBuf []Fact

	// broken poisons the maintainer after a failed batch whose recovery
	// recomputation also failed: the database state is no longer trusted.
	broken error
}

// NewMaintainer runs the initial fixpoint (saturating db in place) and
// returns a maintenance handle. Unlike NewIncremental it accepts any program
// the engine accepts: programs outside the incremental class are maintained
// by transparent full recomputation.
func NewMaintainer(prog *Program, db *Database, opts Options) (*Maintainer, error) {
	return NewMaintainerCtx(context.Background(), prog, db, opts)
}

// NewMaintainerCtx is NewMaintainer under a context covering the initial
// fixpoint. Options are sanitized for maintenance: Trace and Provenance are
// disabled (the internal DRed phases would pollute both) and OnFault is
// forced to fail-fast (a salvaged partial stratum has no maintenance
// semantics). Workers, MaxRounds, MaxFacts and Timeout apply per phase.
func NewMaintainerCtx(ctx context.Context, prog *Program, db *Database, opts Options) (*Maintainer, error) {
	opts.Trace = nil
	opts.Provenance = false
	opts.OnFault = FailFast
	opts.OwnInput = false

	m := &Maintainer{prog: prog, db: db, opts: opts, edb: map[string]*Relation{}, pool: map[string]*Relation{}}
	for pred, rel := range db.rels {
		if rel.Len() == 0 {
			continue
		}
		er := NewRelation(rel.Arity)
		for _, f := range rel.All() {
			if _, err := er.Insert(f); err != nil {
				return nil, err
			}
		}
		m.edb[pred] = er
	}
	if _, err := RunInPlaceCtx(ctx, prog, db, opts); err != nil {
		return nil, err
	}
	m.unsupported = dredClass(prog)
	if m.unsupported == "" {
		for _, p := range []struct {
			dst  **maintProg
			prog *Program
		}{
			{&m.delProg, buildDeletionProgram(prog)},
			{&m.candProg, buildRederivationProgram(prog)},
			{&m.insProg, buildInsertionProgram(prog)},
		} {
			mp, err := newMaintProg(p.prog)
			if err != nil {
				return nil, err
			}
			*p.dst = mp
		}
	}
	return m, nil
}

// maintProg is one derived maintenance program together with its analysis
// and the arities of its private shadow predicates, computed once at
// maintainer construction and reused by every batch.
type maintProg struct {
	prog  *Program
	an    *Analysis
	rules []*cRule

	// scratch is this program's reusable shadow database; shadowFor clears
	// and repopulates it each batch so the map buckets persist.
	scratch *Database

	// shadow maps every del·/cand·/ins· predicate the program mentions to
	// its arity, so Apply can register pooled relations for them before an
	// engine run creates throwaway ones.
	shadow map[string]int
}

func newMaintProg(prog *Program) (*maintProg, error) {
	an, err := Analyze(prog)
	if err != nil {
		return nil, err
	}
	rules := make([]*cRule, len(prog.Rules))
	for i := range prog.Rules {
		if rules[i], err = compileProgRule(prog, i); err != nil {
			return nil, err
		}
	}
	shadow := map[string]int{}
	note := func(a Atom) {
		if strings.HasPrefix(a.Pred, delPrefix) ||
			strings.HasPrefix(a.Pred, candPrefix) ||
			strings.HasPrefix(a.Pred, insPrefix) {
			shadow[a.Pred] = len(a.Args)
		}
	}
	for _, r := range prog.Rules {
		for _, h := range r.Head {
			note(h)
		}
		for _, l := range r.Body {
			if l.Kind == LitAtom || l.Kind == LitNegAtom {
				note(l.Atom)
			}
		}
	}
	return &maintProg{prog: prog, an: an, rules: rules, shadow: shadow}, nil
}

// shadowFor builds the scratch database for one maintenance run: the live
// relations shared by pointer, plus this program's private shadow relations
// drawn from the maintainer's pool (reset, with their capacity intact).
func (m *Maintainer) shadowFor(mp *maintProg) *Database {
	if mp.scratch == nil {
		mp.scratch = &Database{rels: make(map[string]*Relation, len(m.db.rels)+len(mp.shadow)+8)}
	}
	sc := mp.scratch
	clear(sc.rels)
	for pred, r := range m.db.rels {
		sc.rels[pred] = r
	}
	for pred, arity := range mp.shadow {
		sc.rels[pred] = m.pooledRelation(pred, arity)
	}
	return sc
}

// pooledRelation returns the pool's relation for a shadow predicate, reset
// for reuse; on first use it creates one with fact-slot recycling enabled,
// which is safe here because shadow facts never outlive the batch.
func (m *Maintainer) pooledRelation(pred string, arity int) *Relation {
	if r := m.pool[pred]; r != nil {
		r.Reset()
		return r
	}
	r := NewRelation(arity)
	r.recycle = true
	m.pool[pred] = r
	return r
}

// DB returns the maintained database. The pointer stays valid across Apply
// calls (fallback recomputation swaps its contents, not the pointer), but
// *Relation handles taken from it may be replaced by a batch.
func (m *Maintainer) DB() *Database { return m.db }

// Incremental reports whether batches take the incremental path; when false,
// Unsupported names the program feature that forces full recomputation.
func (m *Maintainer) Incremental() bool { return m.unsupported == "" }

// Unsupported names the feature outside the incremental class, or "".
func (m *Maintainer) Unsupported() string { return m.unsupported }

// AssertedFacts returns the currently asserted extensional facts of a
// predicate, in assertion order. The slice is shared; do not modify.
func (m *Maintainer) AssertedFacts(pred string) []Fact {
	if er := m.edb[pred]; er != nil {
		return er.All()
	}
	return nil
}

// dredClass names the program feature outside the DRed-incremental class, or
// returns "" for supported programs.
func dredClass(p *Program) string {
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind == LitNegAtom {
				return "stratified negation"
			}
			if l.Kind == LitExpr && l.Expr.findAggregate() != nil {
				return "aggregation"
			}
		}
		if len(r.ExistentialVars()) > 0 {
			return "existential head variables"
		}
	}
	return ""
}

// assignTargets collects the variables assigned by expression literals of a
// rule. The set is positional-context-free on purpose: a variable that is a
// target anywhere in the body is treated as hazardous for reordering.
func assignTargets(r Rule) map[string]bool {
	out := map[string]bool{}
	for _, l := range r.Body {
		if l.Kind == LitExpr {
			if v, ok := l.Expr.assignTarget(); ok {
				out[v] = true
			}
		}
	}
	return out
}

// buildDeletionProgram derives the over-deletion program: one variant per
// rule per positive body atom occurrence, heads prefixed with del·.
func buildDeletionProgram(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			continue // fact rules have no deletable body support
		}
		targets := assignTargets(r)
		for i, l := range r.Body {
			if l.Kind != LitAtom {
				continue
			}
			delAtom := Atom{Pred: delPred(l.Atom.Pred), Args: l.Atom.Args}
			frontable := true
			for _, v := range l.Atom.Vars() {
				if targets[v] {
					frontable = false
					break
				}
			}
			var body []Literal
			if frontable {
				body = make([]Literal, 0, len(r.Body))
				body = append(body, Literal{Kind: LitAtom, Atom: delAtom})
				for j, bl := range r.Body {
					if j != i {
						body = append(body, bl)
					}
				}
			} else {
				body = append([]Literal(nil), r.Body...)
				body[i] = Literal{Kind: LitAtom, Atom: delAtom}
			}
			heads := make([]Atom, len(r.Head))
			for hi, h := range r.Head {
				heads[hi] = Atom{Pred: delPred(h.Pred), Args: h.Args}
			}
			out.Rules = append(out.Rules, Rule{Head: heads, Body: body, Line: r.Line})
		}
	}
	return out
}

// buildInsertionProgram derives the delta-driven insertion program: one
// variant per rule per positive body atom occurrence, with the triggering
// occurrence read from its ins· delta relation and front-loaded when no
// variable of the atom is an assignment target (the same reordering hazard
// as the deletion program). Every variant heads into both the original
// predicate and its ins· shadow, so each round's derivations become the next
// round's delta: semi-naive evaluation expressed as a program transformation
// over the unmodified engine. The shadows accumulate for the lifetime of one
// batch, which re-joins earlier rounds' facts in later rounds — wasteful for
// large deltas, but batch deltas are orders of magnitude smaller than the
// relations they join against, and front-loading them is what keeps a batch
// from scanning the full database (the engine traverses rule bodies
// left-to-right).
func buildInsertionProgram(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			continue // fact rules are saturated by the initial fixpoint
		}
		targets := assignTargets(r)
		for i, l := range r.Body {
			if l.Kind != LitAtom {
				continue
			}
			insAtom := Atom{Pred: insPred(l.Atom.Pred), Args: l.Atom.Args}
			frontable := true
			for _, v := range l.Atom.Vars() {
				if targets[v] {
					frontable = false
					break
				}
			}
			var body []Literal
			if frontable {
				body = make([]Literal, 0, len(r.Body))
				body = append(body, Literal{Kind: LitAtom, Atom: insAtom})
				for j, bl := range r.Body {
					if j != i {
						body = append(body, bl)
					}
				}
			} else {
				body = append([]Literal(nil), r.Body...)
				body[i] = Literal{Kind: LitAtom, Atom: insAtom}
			}
			heads := make([]Atom, 0, len(r.Head)*2)
			for _, h := range r.Head {
				heads = append(heads, h, Atom{Pred: insPred(h.Pred), Args: h.Args})
			}
			out.Rules = append(out.Rules, Rule{Head: heads, Body: body, Line: r.Line})
		}
	}
	return out
}

// buildRederivationProgram derives the guarded re-derivation program: one
// cand·-guarded variant per head atom for guardable rules, the original rule
// verbatim otherwise.
func buildRederivationProgram(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			out.Rules = append(out.Rules, r)
			continue
		}
		targets := assignTargets(r)
		guardable := true
		for _, h := range r.Head {
			for _, t := range h.Args {
				switch t := t.(type) {
				case Const:
				case Var:
					if targets[t.Name] {
						guardable = false
					}
				default:
					guardable = false // Skolem terms cannot appear in bodies
				}
			}
		}
		if !guardable {
			out.Rules = append(out.Rules, r)
			continue
		}
		for _, h := range r.Head {
			guard := Literal{Kind: LitAtom, Atom: Atom{Pred: candPred(h.Pred), Args: h.Args}}
			body := make([]Literal, 0, len(r.Body)+1)
			body = append(body, guard)
			body = append(body, r.Body...)
			// The guard binds every variable of the guarded head, so one
			// witness re-derives the candidate; FirstMatchOnly stops the
			// traversal from enumerating the rest. Other heads of a
			// multi-head rule lose incidental emissions to the cut, but
			// those are redundant: a deleted fact of theirs is a candidate
			// with its own guarded variant, and an undeleted one needs no
			// re-derivation.
			out.Rules = append(out.Rules, Rule{
				Head: r.Head, Body: body, Line: r.Line, FirstMatchOnly: true,
			})
		}
	}
	return out
}

// shadowDatabase returns a database sharing d's relation pointers, so a
// transformed program can read (and, in the re-derivation phase, extend) the
// live relations while keeping its del·/cand· relations private.
func shadowDatabase(d *Database) *Database {
	out := &Database{rels: make(map[string]*Relation, len(d.rels)+8)}
	for pred, r := range d.rels {
		out.rels[pred] = r
	}
	return out
}

// predFact pairs a predicate with one fact, the unit of batch application.
type predFact struct {
	pred string
	f    Fact
}

// Apply applies one batch; see ApplyCtx.
func (m *Maintainer) Apply(d Delta) (DeltaStats, error) {
	return m.ApplyCtx(context.Background(), d)
}

// ApplyCtx applies one batch of extensional changes, deletions first, and
// leaves the database saturated. On any error the batch is rolled back by
// recomputing the database from the maintained extensional store, so a
// failed Apply leaves the maintained state exactly as before the call; if
// that recovery itself fails the maintainer is poisoned and every later
// Apply returns the poisoning error.
func (m *Maintainer) ApplyCtx(ctx context.Context, d Delta) (DeltaStats, error) {
	var stats DeltaStats
	if m.broken != nil {
		return stats, m.broken
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	dels, adds, err := m.validate(d)
	if err != nil {
		return stats, err
	}
	if len(dels) == 0 && len(adds) == 0 {
		stats.Duration = time.Since(start)
		return stats, nil
	}

	// Commit the batch to the extensional store up front; everything below
	// is derived state that recovery can rebuild from it.
	undoDel := m.retractEDB(dels)
	undoAdd := m.assertEDB(adds)

	err = fault.Guard(siteDelta, func() error {
		if err := fault.Hit(siteDelta); err != nil {
			return err
		}
		if m.unsupported != "" {
			stats.Recomputed = true
			stats.Deleted = len(undoDel)
			stats.Added = len(undoAdd)
			return m.recompute(ctx)
		}
		if len(undoDel) > 0 {
			if err := m.applyDeletions(ctx, undoDel, &stats); err != nil {
				return err
			}
		}
		if err := fault.Hit(siteDelta); err != nil {
			return err
		}
		if len(adds) > 0 {
			if err := m.applyAdditions(ctx, adds, &stats); err != nil {
				return err
			}
		}
		return fault.Hit(siteDelta)
	})
	if err != nil {
		m.rollback(undoDel, undoAdd, stats.Recomputed || batchTouchedDB(&stats))
		stats = DeltaStats{Duration: time.Since(start)}
		if m.broken != nil {
			return stats, fmt.Errorf("%w (additionally, recovery failed: %v)", err, m.broken)
		}
		return stats, err
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// batchTouchedDB reports whether a failed batch may have mutated the
// derived database (as opposed to failing before any db write).
func batchTouchedDB(stats *DeltaStats) bool {
	return stats.Added > 0 || stats.OverDeleted > 0 || stats.Rederived > 0
}

// validate checks the whole batch before anything mutates: predicates and
// arities must be consistent, and every retraction must name a currently
// asserted fact. The returned slices are ordered deterministically (sorted
// predicate, then the caller's per-predicate order).
func (m *Maintainer) validate(d Delta) (dels, adds []predFact, err error) {
	delPreds := sortedKeys(d.Del)
	for _, pred := range delPreds {
		er := m.edb[pred]
		for _, f := range d.Del[pred] {
			if er == nil || !er.Contains(f) {
				return nil, nil, fmt.Errorf("vadalog: delta retracts %s%s, which is not an asserted fact", pred, f)
			}
			dels = append(dels, predFact{pred, f})
		}
	}
	addPreds := sortedKeys(d.Add)
	for _, pred := range addPreds {
		arity := -1
		if rel := m.db.Relation(pred); rel != nil {
			arity = rel.Arity
		} else if er := m.edb[pred]; er != nil {
			arity = er.Arity
		}
		for _, f := range d.Add[pred] {
			if arity >= 0 && len(f) != arity {
				return nil, nil, fmt.Errorf("vadalog: delta asserts %s%s with arity %d, want %d", pred, f, len(f), arity)
			}
			if arity < 0 {
				arity = len(f)
			}
			adds = append(adds, predFact{pred, f})
		}
	}
	return dels, adds, nil
}

func sortedKeys(m map[string][]Fact) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// retractEDB removes the batch deletions from the extensional store and
// returns the facts actually retracted (deduplicated).
func (m *Maintainer) retractEDB(dels []predFact) []predFact {
	var out []predFact
	byPred := map[string][]Fact{}
	var order []string
	for _, d := range dels {
		if _, ok := byPred[d.pred]; !ok {
			order = append(order, d.pred)
		}
		byPred[d.pred] = append(byPred[d.pred], d.f)
	}
	for _, pred := range order {
		for _, f := range m.edb[pred].Remove(byPred[pred]) {
			out = append(out, predFact{pred, f})
		}
	}
	return out
}

// assertEDB adds the batch insertions to the extensional store and returns
// the facts that were newly asserted.
func (m *Maintainer) assertEDB(adds []predFact) []predFact {
	var out []predFact
	for _, a := range adds {
		er := m.edb[a.pred]
		if er == nil {
			er = NewRelation(len(a.f))
			m.edb[a.pred] = er
		}
		if ok, _ := er.Insert(a.f); ok {
			out = append(out, predFact{a.pred, a.f})
		}
	}
	return out
}

// rollback reverts the extensional store to its pre-batch state and, when
// the derived database may have been touched, recomputes it from scratch
// under a background context (the batch's cancellation must not strand the
// database mid-rollback). A failed recomputation poisons the maintainer.
func (m *Maintainer) rollback(undoDel, undoAdd []predFact, dbDirty bool) {
	for _, a := range undoAdd {
		er := m.edb[a.pred]
		er.Remove([]Fact{a.f})
		if er.Len() == 0 {
			delete(m.edb, a.pred) // drop relations the batch itself introduced
		}
	}
	for _, d := range undoDel {
		er := m.edb[d.pred]
		if er == nil {
			er = NewRelation(len(d.f))
			m.edb[d.pred] = er
		}
		if _, err := er.Insert(d.f); err != nil {
			m.broken = fmt.Errorf("vadalog: maintainer rollback failed: %w", err)
			return
		}
	}
	if !dbDirty {
		return
	}
	opts := m.opts
	opts.Timeout = 0
	if err := m.recomputeWith(context.Background(), opts); err != nil {
		m.broken = fmt.Errorf("vadalog: maintainer recovery recomputation failed: %w", err)
	}
}

// recompute rebuilds the derived database from the extensional store.
func (m *Maintainer) recompute(ctx context.Context) error {
	return m.recomputeWith(ctx, m.opts)
}

func (m *Maintainer) recomputeWith(ctx context.Context, opts Options) error {
	fresh := NewDatabase()
	for pred, er := range m.edb {
		nr := NewRelation(er.Arity)
		for _, f := range er.All() {
			if _, err := nr.Insert(f); err != nil {
				return err
			}
		}
		fresh.rels[pred] = nr
	}
	if _, err := RunInPlaceCtx(ctx, m.prog, fresh, opts); err != nil {
		return err
	}
	m.db.rels = fresh.rels
	return nil
}

// applyDeletions runs the two DRed phases for the batch retractions.
func (m *Maintainer) applyDeletions(ctx context.Context, dels []predFact, stats *DeltaStats) error {
	// Phase 1 — over-delete on a shadow of the (pre-deletion) live database.
	scratch := m.shadowFor(m.delProg)
	for _, d := range dels {
		rel, err := scratch.EnsureRelation(delPred(d.pred), len(d.f))
		if err != nil {
			return err
		}
		if _, err := rel.Insert(d.f); err != nil {
			return err
		}
	}
	if err := m.runProgram(ctx, m.delProg, scratch, nil); err != nil {
		return err
	}

	// Retract Δ⁻ from the live relations; re-assert what is still
	// extensionally supported, collect the rest as candidates.
	var delRels []string
	for pred := range scratch.rels {
		if strings.HasPrefix(pred, delPrefix) && scratch.rels[pred].Len() > 0 {
			delRels = append(delRels, pred)
		}
	}
	sort.Strings(delRels)
	gross, reasserted := 0, 0
	var cands []predFact
	for _, dp := range delRels {
		pred := strings.TrimPrefix(dp, delPrefix)
		rel := m.db.Relation(pred)
		if rel == nil {
			continue
		}
		m.removedBuf = rel.removeInto(m.removedBuf[:0], scratch.rels[dp].All())
		removed := m.removedBuf
		gross += len(removed)
		er := m.edb[pred]
		for _, f := range removed {
			if er != nil && er.Contains(f) {
				if ok, err := rel.Insert(f); err != nil {
					return err
				} else if ok {
					reasserted++
				}
				continue
			}
			cands = append(cands, predFact{pred, f})
		}
	}
	stats.OverDeleted += gross

	// Phase 2 — guarded re-derivation of the candidates.
	rederived := 0
	if len(cands) > 0 && len(m.candProg.prog.Rules) > 0 {
		scratch2 := m.shadowFor(m.candProg)
		seedRels := map[string]*Relation{}
		for _, c := range cands {
			rel := seedRels[c.pred]
			if rel == nil {
				var err error
				if rel, err = scratch2.EnsureRelation(candPred(c.pred), len(c.f)); err != nil {
					return err
				}
				seedRels[c.pred] = rel
			}
			if _, err := rel.Insert(c.f); err != nil {
				return err
			}
		}
		if err := m.runProgram(ctx, m.candProg, scratch2, &rederived); err != nil {
			return err
		}
	}
	stats.Rederived += rederived
	stats.Deleted += gross - reasserted - rederived
	return nil
}

// applyAdditions inserts the batch assertions and saturates their
// consequences by running the ins·-transformed program over a shadow of the
// live database: the new facts seed private ins· delta relations, every
// variant rule is driven by one of them (front-loaded, so the engine never
// scans a full base relation), and derivations extend the shared live
// relations directly.
func (m *Maintainer) applyAdditions(ctx context.Context, adds []predFact, stats *DeltaStats) error {
	before := make(map[string]int, len(m.db.rels))
	for pred, rel := range m.db.rels {
		before[pred] = rel.Len()
	}
	scratch := m.shadowFor(m.insProg)
	for _, a := range adds {
		rel, err := m.db.EnsureRelation(a.pred, len(a.f))
		if err != nil {
			return err
		}
		ok, err := rel.Insert(a.f)
		if err != nil {
			return err
		}
		if !ok {
			continue // already present: not a delta
		}
		ins, err := scratch.EnsureRelation(insPred(a.pred), len(a.f))
		if err != nil {
			return err
		}
		if _, err := ins.Insert(a.f); err != nil {
			return err
		}
	}
	if err := m.runProgram(ctx, m.insProg, scratch, nil); err != nil {
		return err
	}
	// The engine's own derived count includes the ins· shadows, so Added is
	// measured as the growth of the real relations instead. A relation the
	// run created for a predicate that had never held a fact before lives
	// only in the shadow map and is adopted here.
	for pred, rel := range scratch.rels {
		if strings.HasPrefix(pred, insPrefix) || m.db.rels[pred] != nil {
			continue
		}
		m.db.rels[pred] = rel
	}
	for pred, rel := range m.db.rels {
		stats.Added += rel.Len() - before[pred]
	}
	return nil
}

// runProgram evaluates one transformed DRed program over a shadow database.
// When derived is non-nil it receives the number of facts the run inserted.
func (m *Maintainer) runProgram(ctx context.Context, mp *maintProg, db *Database, derived *int) error {
	if len(mp.prog.Rules) == 0 {
		return nil
	}
	e, err := newEngineAnalyzed(ctx, mp.prog, mp.an, db, m.opts, mp.rules)
	if err != nil {
		return err
	}
	e.startPool()
	runErr := e.run()
	e.stopPool()
	e.release()
	if derived != nil {
		*derived = e.derived
	}
	return canonicalRunErr(runErr)
}
