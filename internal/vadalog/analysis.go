package vadalog

import (
	"fmt"
	"sort"
	"strings"
)

// Analysis is the result of the static analysis of a program: safety,
// stratification, recursion structure, and the wardedness and
// piecewise-linearity properties that Section 4 relies on for decidability
// and PTIME data complexity.
type Analysis struct {
	Prog *Program

	// Strata holds rule indices grouped by stratum, in evaluation order.
	// Rules within a stratum may be mutually recursive; negation and
	// stratified aggregation only cross stratum boundaries.
	Strata [][]int

	// PredStratum maps every IDB predicate to its stratum index.
	PredStratum map[string]int

	// Recursive[i] reports whether rule i belongs to a recursive component
	// and therefore takes part in semi-naive delta iteration.
	Recursive []bool

	// Warded reports whether every rule satisfies the wardedness condition;
	// Violations lists the offending rules when it does not.
	Warded     bool
	Violations []string

	// PiecewiseLinear reports whether every rule has at most one body atom
	// mutually recursive with its head (the fragment the paper's translated
	// path-pattern programs fall into).
	PiecewiseLinear bool

	// AffectedPositions holds the predicate positions that may carry labeled
	// nulls, as "pred/i" strings, sorted. It drives the wardedness check.
	AffectedPositions []string
}

// headPreds returns the set of predicates any of the given rules can derive
// into — the predicates that grow during the fixpoint of that rule group.
// Both the batch engine (runStratum) and incremental propagation
// (resumeStratum) use it to find the delta occurrences of each rule.
func headPreds(p *Program, ruleIdxs []int) map[string]bool {
	grow := make(map[string]bool, len(ruleIdxs))
	for _, ri := range ruleIdxs {
		for _, h := range p.Rules[ri].Head {
			grow[h.Pred] = true
		}
	}
	return grow
}

// Analyze checks safety and computes stratification and the structural
// properties of the program. It fails on unsafe or unstratifiable programs;
// wardedness violations are reported in the result rather than failing,
// because the engine (like the Vadalog System) can still execute such
// programs when termination is otherwise guaranteed.
func Analyze(p *Program) (*Analysis, error) {
	a := &Analysis{Prog: p, PredStratum: map[string]int{}}
	if err := checkSafety(p); err != nil {
		return nil, err
	}
	if err := a.stratify(); err != nil {
		return nil, err
	}
	a.findRecursion()
	a.checkWardedness()
	a.checkPiecewiseLinear()
	return a, nil
}

// checkSafety verifies the usual Datalog safety conditions, adapted to
// existential rules: every literal may only read variables bound by the
// positive atoms and assignments preceding it, assignments bind fresh
// variables, and head variables are either body-bound or existential.
func checkSafety(p *Program) error {
	for i, r := range p.Rules {
		bound := map[string]bool{}
		for _, l := range r.Body {
			switch l.Kind {
			case LitAtom:
				for _, v := range l.Atom.Vars() {
					bound[v] = true
				}
			case LitNegAtom:
				for _, v := range l.Atom.Vars() {
					// Anonymous variables act as wildcards in negated
					// atoms (not p(X,_) means "no p fact with first
					// component X").
					if strings.HasPrefix(v, "_anon") {
						continue
					}
					if !bound[v] {
						return fmt.Errorf("vadalog: rule %d (line %d): variable %s in negated atom %s is not bound by preceding positive literals",
							i, r.Line, v, l.Atom.Pred)
					}
				}
			case LitExpr:
				target, isAssign := l.Expr.assignTarget()
				need := map[string]bool{}
				if isAssign {
					l.Expr.Right.vars(need)
					// A monotonic aggregate's contributors must be bound;
					// they are included by vars already.
				} else {
					l.Expr.vars(need)
				}
				for v := range need {
					if !bound[v] {
						return fmt.Errorf("vadalog: rule %d (line %d): variable %s in expression %s is not bound by preceding literals",
							i, r.Line, v, l.Expr)
					}
				}
				if isAssign {
					if bound[target] {
						// Var = expr over an already-bound variable is a
						// condition (equality test), which is fine.
						continue
					}
					if l.Expr.Right.Kind == ExprAggregate && l.Expr.Right.Agg.Op == "pack" && l.Expr.Right.Agg.Monotonic() {
						return fmt.Errorf("vadalog: rule %d (line %d): pack cannot be monotonic", i, r.Line)
					}
					bound[target] = true
				}
			}
		}
		// Explicit Skolem terms may only use bound variables.
		for _, h := range r.Head {
			for _, t := range h.Args {
				if st, ok := t.(SkolemTerm); ok {
					for _, arg := range st.Args {
						if v, ok := arg.(Var); ok && !bound[v.Name] {
							return fmt.Errorf("vadalog: rule %d (line %d): Skolem functor %s uses unbound variable %s",
								i, r.Line, st.Functor, v.Name)
						}
					}
				}
			}
		}
		// At most one aggregate per rule, and it must be the only
		// non-condition use of its target.
		aggs := 0
		for _, l := range r.Body {
			if l.Kind == LitExpr && l.Expr.findAggregate() != nil {
				aggs++
			}
		}
		if aggs > 1 {
			return fmt.Errorf("vadalog: rule %d (line %d): at most one aggregate per rule", i, r.Line)
		}
	}
	return nil
}

// hasStratifiedAggregate reports whether the rule contains a non-monotonic
// aggregate, which forces its body predicates into strictly lower strata.
func hasStratifiedAggregate(r Rule) bool {
	for _, l := range r.Body {
		if l.Kind == LitExpr {
			if agg := l.Expr.findAggregate(); agg != nil && !agg.Monotonic() {
				return true
			}
		}
	}
	return false
}

// stratify computes predicate strata: stratum(h) ≥ stratum(b) for positive
// dependencies and stratum(h) > stratum(b) for negated or
// stratified-aggregated dependencies. Rules are then grouped by the maximum
// stratum of their head predicates.
func (a *Analysis) stratify() error {
	p := a.Prog
	stratum := map[string]int{}
	preds := map[string]bool{}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			preds[h.Pred] = true
		}
		for _, l := range r.Body {
			if l.Kind == LitAtom || l.Kind == LitNegAtom {
				preds[l.Atom.Pred] = true
			}
		}
	}
	maxIter := len(preds) + 1
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range p.Rules {
			strat := hasStratifiedAggregate(r)
			for _, h := range r.Head {
				for _, l := range r.Body {
					if l.Kind != LitAtom && l.Kind != LitNegAtom {
						continue
					}
					req := stratum[l.Atom.Pred]
					if l.Kind == LitNegAtom || strat {
						req++
					}
					if stratum[h.Pred] < req {
						stratum[h.Pred] = req
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
		if iter > maxIter {
			return fmt.Errorf("vadalog: program is not stratifiable (negation or stratified aggregation through recursion)")
		}
	}
	a.PredStratum = stratum

	maxStratum := 0
	for _, s := range stratum {
		if s > maxStratum {
			maxStratum = s
		}
	}
	a.Strata = make([][]int, maxStratum+1)
	for i, r := range p.Rules {
		s := 0
		for _, h := range r.Head {
			if stratum[h.Pred] > s {
				s = stratum[h.Pred]
			}
		}
		a.Strata[s] = append(a.Strata[s], i)
	}
	// Drop empty strata while preserving order.
	var compact [][]int
	for _, s := range a.Strata {
		if len(s) > 0 {
			compact = append(compact, s)
		}
	}
	a.Strata = compact
	return nil
}

// predSCCs computes strongly connected components of the predicate dependency
// graph (positive and negative edges alike) and returns a component id per
// predicate.
func (a *Analysis) predSCCs() map[string]int {
	adj := map[string][]string{}
	preds := map[string]bool{}
	addEdge := func(from, to string) {
		adj[from] = append(adj[from], to)
		preds[from], preds[to] = true, true
	}
	for _, r := range a.Prog.Rules {
		for _, h := range r.Head {
			preds[h.Pred] = true
			for _, l := range r.Body {
				if l.Kind == LitAtom || l.Kind == LitNegAtom {
					addEdge(l.Atom.Pred, h.Pred)
				}
			}
		}
	}
	// Iterative Tarjan over predicate names.
	names := make([]string, 0, len(preds))
	for p := range preds {
		names = append(names, p)
	}
	sort.Strings(names)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter, compID := 0, 0

	type frame struct {
		v    string
		next int
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := adj[f.v]
			advanced := false
			for f.next < len(succ) {
				w := succ[f.next]
				f.next++
				if _, seen := index[w]; !seen {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compID
					if w == f.v {
						break
					}
				}
				compID++
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pf := &frames[len(frames)-1]
				if low[v] < low[pf.v] {
					low[pf.v] = low[v]
				}
			}
		}
	}
	return comp
}

// findRecursion marks the rules that participate in a recursive component.
func (a *Analysis) findRecursion() {
	comp := a.predSCCs()
	// A component is recursive if it has >1 predicate or a self-loop.
	selfLoop := map[string]bool{}
	compSize := map[int]int{}
	for p, c := range comp {
		compSize[c]++
		_ = p
	}
	for _, r := range a.Prog.Rules {
		for _, h := range r.Head {
			for _, l := range r.Body {
				if (l.Kind == LitAtom || l.Kind == LitNegAtom) && l.Atom.Pred == h.Pred {
					selfLoop[h.Pred] = true
				}
			}
		}
	}
	recComp := map[int]bool{}
	for p, c := range comp {
		if compSize[c] > 1 || selfLoop[p] {
			recComp[c] = true
		}
	}
	a.Recursive = make([]bool, len(a.Prog.Rules))
	for i, r := range a.Prog.Rules {
		for _, h := range r.Head {
			hc, ok := comp[h.Pred]
			if !ok || !recComp[hc] {
				continue
			}
			for _, l := range r.Body {
				if (l.Kind == LitAtom || l.Kind == LitNegAtom) && comp[l.Atom.Pred] == hc {
					a.Recursive[i] = true
				}
			}
		}
	}
}

// checkWardedness computes affected positions (positions that may carry
// labeled nulls) and verifies that in every rule the "dangerous" variables —
// body variables occurring only at affected positions and propagated to the
// head — all appear in one single body atom, the ward (Section 4:
// "Wardedness poses syntactical restrictions on the interplay of existential
// quantification and recursion").
func (a *Analysis) checkWardedness() {
	p := a.Prog
	type pos struct {
		pred string
		i    int
	}
	affected := map[pos]bool{}

	// Seed: head positions of existential variables and Skolem terms.
	for _, r := range p.Rules {
		ex := map[string]bool{}
		for _, v := range r.ExistentialVars() {
			ex[v] = true
		}
		for _, h := range r.Head {
			for i, t := range h.Args {
				switch t := t.(type) {
				case Var:
					if ex[t.Name] {
						affected[pos{h.Pred, i}] = true
					}
				case SkolemTerm:
					affected[pos{h.Pred, i}] = true
				}
			}
		}
	}
	// Propagate: a body variable occurring only at affected positions
	// makes its head positions affected.
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			onlyAffected := varsOnlyAtAffected(r, func(pr string, i int) bool { return affected[pos{pr, i}] })
			for _, h := range r.Head {
				for i, t := range h.Args {
					if v, ok := t.(Var); ok && onlyAffected[v.Name] {
						if !affected[pos{h.Pred, i}] {
							affected[pos{h.Pred, i}] = true
							changed = true
						}
					}
				}
			}
		}
	}

	for pp := range affected {
		a.AffectedPositions = append(a.AffectedPositions, fmt.Sprintf("%s/%d", pp.pred, pp.i))
	}
	sort.Strings(a.AffectedPositions)

	a.Warded = true
	for ri, r := range p.Rules {
		onlyAffected := varsOnlyAtAffected(r, func(pr string, i int) bool { return affected[pos{pr, i}] })
		headVars := map[string]bool{}
		for _, v := range r.HeadVars() {
			headVars[v] = true
		}
		var dangerous []string
		for v, oa := range onlyAffected {
			if oa && headVars[v] {
				dangerous = append(dangerous, v)
			}
		}
		if len(dangerous) == 0 {
			continue
		}
		sort.Strings(dangerous)
		// All dangerous variables must co-occur in a single body atom.
		found := false
		for _, l := range r.Body {
			if l.Kind != LitAtom {
				continue
			}
			av := map[string]bool{}
			for _, v := range l.Atom.Vars() {
				av[v] = true
			}
			all := true
			for _, dv := range dangerous {
				if !av[dv] {
					all = false
					break
				}
			}
			if all {
				found = true
				break
			}
		}
		if !found {
			a.Warded = false
			a.Violations = append(a.Violations,
				fmt.Sprintf("rule %d (line %d): dangerous variables {%s} do not share a ward atom",
					ri, r.Line, strings.Join(dangerous, ",")))
		}
	}
}

// varsOnlyAtAffected returns, for each variable of the rule body, whether all
// its body occurrences are at affected positions. Variables with no positive
// body occurrence are absent from the map.
func varsOnlyAtAffected(r Rule, isAffected func(pred string, i int) bool) map[string]bool {
	out := map[string]bool{}
	for _, l := range r.Body {
		if l.Kind != LitAtom {
			continue
		}
		for i, t := range l.Atom.Args {
			v, ok := t.(Var)
			if !ok {
				continue
			}
			onlyAff, seen := out[v.Name]
			if !seen {
				out[v.Name] = isAffected(l.Atom.Pred, i)
				continue
			}
			out[v.Name] = onlyAff && isAffected(l.Atom.Pred, i)
		}
	}
	return out
}

// checkPiecewiseLinear verifies that every rule has at most one body atom
// whose predicate is mutually recursive with the rule's head. The translated
// path-pattern programs of Section 4 fall into this fragment (Piecewise
// Linear Datalog±).
func (a *Analysis) checkPiecewiseLinear() {
	comp := a.predSCCs()
	compSize := map[int]int{}
	for _, c := range comp {
		compSize[c]++
	}
	selfLoop := map[string]bool{}
	for _, r := range a.Prog.Rules {
		for _, h := range r.Head {
			for _, l := range r.Body {
				if (l.Kind == LitAtom || l.Kind == LitNegAtom) && l.Atom.Pred == h.Pred {
					selfLoop[h.Pred] = true
				}
			}
		}
	}
	// A body atom is mutually recursive with the head if they share a
	// component that is genuinely cyclic (size > 1, or a self-loop).
	recursivePair := func(r Rule, bodyPred string) bool {
		for _, h := range r.Head {
			c, ok := comp[h.Pred]
			if !ok || comp[bodyPred] != c {
				continue
			}
			if compSize[c] > 1 || (h.Pred == bodyPred && selfLoop[h.Pred]) {
				return true
			}
		}
		return false
	}
	a.PiecewiseLinear = true
	for _, r := range a.Prog.Rules {
		recursiveAtoms := 0
		for _, l := range r.Body {
			if l.Kind != LitAtom && l.Kind != LitNegAtom {
				continue
			}
			if recursivePair(r, l.Atom.Pred) {
				recursiveAtoms++
			}
		}
		if recursiveAtoms > 1 {
			a.PiecewiseLinear = false
			return
		}
	}
}
