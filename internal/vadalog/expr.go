package vadalog

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/value"
)

// ExprKind discriminates expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	ExprConst ExprKind = iota
	ExprVar
	ExprBinary
	ExprUnary
	ExprCall
	ExprAggregate
)

// Expr is a MetaLog/Vadalog expression: a condition or the right-hand side of
// an assignment (Section 4, "expressions" and "conditions"). Aggregate nodes
// may only occur as the entire right-hand side of an assignment literal; the
// parser enforces this.
type Expr struct {
	Kind ExprKind

	Val  value.Value // ExprConst
	Name string      // ExprVar: variable; ExprCall: function name
	Op   string      // ExprBinary / ExprUnary operator

	Left  *Expr
	Right *Expr
	Args  []*Expr // ExprCall arguments

	Agg *Aggregate // ExprAggregate
}

// Aggregate is an aggregation term. With contributor variables
// (e.g. sum(W, <Z>)) it is evaluated monotonically during the fixpoint, as in
// the control rule of Example 4.1: each distinct binding of the contributor
// tuple contributes exactly once per group. Without contributors it is a
// stratified aggregate evaluated after the defining stratum is saturated.
type Aggregate struct {
	Op           string // sum, count, min, max, avg, prod, pack
	Arg          *Expr  // aggregated expression; nil for count()
	Arg2         *Expr  // second argument (pack(name, value))
	Contributors []string
}

// Monotonic reports whether the aggregate has contributor variables and is
// therefore evaluated inside the fixpoint.
func (a *Aggregate) Monotonic() bool { return len(a.Contributors) > 0 }

func (e *Expr) String() string {
	switch e.Kind {
	case ExprConst:
		if e.Val.K == value.String {
			return fmt.Sprintf("%q", e.Val.S)
		}
		return e.Val.String()
	case ExprVar:
		return e.Name
	case ExprBinary:
		return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
	case ExprUnary:
		return e.Op + e.Left.String()
	case ExprCall:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return e.Name + "(" + strings.Join(parts, ",") + ")"
	case ExprAggregate:
		var inner []string
		if e.Agg.Arg != nil {
			inner = append(inner, e.Agg.Arg.String())
		}
		if e.Agg.Arg2 != nil {
			inner = append(inner, e.Agg.Arg2.String())
		}
		if len(e.Agg.Contributors) > 0 {
			inner = append(inner, "<"+strings.Join(e.Agg.Contributors, ",")+">")
		}
		return e.Agg.Op + "(" + strings.Join(inner, ", ") + ")"
	default:
		return "<bad expr>"
	}
}

// assignTarget reports whether the expression has the form Var = RHS, and if
// so returns the variable name.
func (e *Expr) assignTarget() (string, bool) {
	if e.Kind == ExprBinary && e.Op == "=" && e.Left.Kind == ExprVar {
		return e.Left.Name, true
	}
	return "", false
}

// vars collects the variable names referenced by the expression (including
// aggregate arguments and contributors) into set.
func (e *Expr) vars(set map[string]bool) {
	if e == nil {
		return
	}
	switch e.Kind {
	case ExprVar:
		set[e.Name] = true
	case ExprBinary:
		e.Left.vars(set)
		e.Right.vars(set)
	case ExprUnary:
		e.Left.vars(set)
	case ExprCall:
		for _, a := range e.Args {
			a.vars(set)
		}
	case ExprAggregate:
		e.Agg.Arg.vars(set)
		e.Agg.Arg2.vars(set)
		for _, c := range e.Agg.Contributors {
			set[c] = true
		}
	}
}

// findAggregate returns the aggregate node if the expression is exactly an
// assignment Var = agg(...), else nil.
func (e *Expr) findAggregate() *Aggregate {
	if _, ok := e.assignTarget(); ok && e.Right.Kind == ExprAggregate {
		return e.Right.Agg
	}
	return nil
}

// Env resolves variable names during expression evaluation. The engine
// provides a slot-based implementation; binding (a plain map) is a simple
// implementation for tests and small callers.
type Env interface {
	Lookup(name string) (value.Value, bool)
}

// binding is a map-based Env.
type binding map[string]value.Value

// Lookup implements Env.
func (b binding) Lookup(name string) (value.Value, bool) {
	v, ok := b[name]
	return v, ok
}

// Eval evaluates the expression under the binding. Aggregate nodes are an
// error here — the engine evaluates them through dedicated accumulator paths.
func (e *Expr) Eval(b Env) (value.Value, error) {
	switch e.Kind {
	case ExprConst:
		return e.Val, nil
	case ExprVar:
		v, ok := b.Lookup(e.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("vadalog: variable %s unbound in expression", e.Name)
		}
		return v, nil
	case ExprUnary:
		v, err := e.Left.Eval(b)
		if err != nil {
			return value.Value{}, err
		}
		switch e.Op {
		case "-":
			switch v.K {
			case value.Int:
				return value.IntV(-v.I), nil
			case value.Float:
				return value.FloatV(-v.F), nil
			}
			return value.Value{}, fmt.Errorf("vadalog: cannot negate %s", v.K)
		case "not":
			return value.BoolV(!v.Truthy()), nil
		}
		return value.Value{}, fmt.Errorf("vadalog: unknown unary operator %q", e.Op)
	case ExprBinary:
		return e.evalBinary(b)
	case ExprCall:
		return e.evalCall(b)
	case ExprAggregate:
		return value.Value{}, fmt.Errorf("vadalog: aggregate %s evaluated outside assignment context", e.Agg.Op)
	default:
		return value.Value{}, fmt.Errorf("vadalog: invalid expression")
	}
}

func (e *Expr) evalBinary(b Env) (value.Value, error) {
	// Short-circuit boolean operators.
	if e.Op == "and" || e.Op == "or" {
		l, err := e.Left.Eval(b)
		if err != nil {
			return value.Value{}, err
		}
		if e.Op == "and" && !l.Truthy() {
			return value.BoolV(false), nil
		}
		if e.Op == "or" && l.Truthy() {
			return value.BoolV(true), nil
		}
		r, err := e.Right.Eval(b)
		if err != nil {
			return value.Value{}, err
		}
		return value.BoolV(r.Truthy()), nil
	}
	l, err := e.Left.Eval(b)
	if err != nil {
		return value.Value{}, err
	}
	r, err := e.Right.Eval(b)
	if err != nil {
		return value.Value{}, err
	}
	switch e.Op {
	case "+":
		return value.Add(l, r)
	case "-":
		return value.Sub(l, r)
	case "*":
		return value.Mul(l, r)
	case "/":
		return value.Div(l, r)
	case "=", "==":
		return value.BoolV(value.Equal(l, r)), nil
	case "!=":
		return value.BoolV(!value.Equal(l, r)), nil
	case "<", "<=", ">", ">=":
		// Ordered comparisons over labeled nulls or Skolem identifiers (in
		// particular the "missing property" marker) are false, so conditions
		// never select facts whose operand is absent. Mixed non-numeric
		// kinds are likewise incomparable.
		if !comparable(l, r) {
			return value.BoolV(false), nil
		}
		c := value.Compare(l, r)
		switch e.Op {
		case "<":
			return value.BoolV(c < 0), nil
		case "<=":
			return value.BoolV(c <= 0), nil
		case ">":
			return value.BoolV(c > 0), nil
		default:
			return value.BoolV(c >= 0), nil
		}
	default:
		return value.Value{}, fmt.Errorf("vadalog: unknown binary operator %q", e.Op)
	}
}

// comparable reports whether an ordered comparison between the two values is
// meaningful: both numeric, or both of the same constant kind.
func comparable(l, r value.Value) bool {
	if l.K == value.Null || l.K == value.ID || r.K == value.Null || r.K == value.ID {
		return false
	}
	if _, ok := l.AsFloat(); ok {
		_, ok2 := r.AsFloat()
		return ok2
	}
	return l.K == r.K
}

func (e *Expr) evalCall(b Env) (value.Value, error) {
	args := make([]value.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(b)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	fn, ok := builtinFuncs[e.Name]
	if !ok {
		return value.Value{}, fmt.Errorf("vadalog: unknown function %q", e.Name)
	}
	return fn(args)
}

// builtinFuncs is the expression function library (Section 4: "a generic
// function, which may be tuple-level — an algebraic operation, a string
// operation, and so on").
var builtinFuncs = map[string]func([]value.Value) (value.Value, error){
	"abs": func(a []value.Value) (value.Value, error) {
		if err := arity("abs", a, 1); err != nil {
			return value.Value{}, err
		}
		switch a[0].K {
		case value.Int:
			if a[0].I < 0 {
				return value.IntV(-a[0].I), nil
			}
			return a[0], nil
		case value.Float:
			return value.FloatV(math.Abs(a[0].F)), nil
		}
		return value.Value{}, fmt.Errorf("vadalog: abs: non-numeric argument %s", a[0].K)
	},
	"sqrt":  numeric1("sqrt", math.Sqrt),
	"ln":    numeric1("ln", math.Log),
	"exp":   numeric1("exp", math.Exp),
	"floor": numeric1("floor", math.Floor),
	"ceil":  numeric1("ceil", math.Ceil),
	"min2": func(a []value.Value) (value.Value, error) {
		if err := arity("min2", a, 2); err != nil {
			return value.Value{}, err
		}
		if value.Compare(a[0], a[1]) <= 0 {
			return a[0], nil
		}
		return a[1], nil
	},
	"max2": func(a []value.Value) (value.Value, error) {
		if err := arity("max2", a, 2); err != nil {
			return value.Value{}, err
		}
		if value.Compare(a[0], a[1]) >= 0 {
			return a[0], nil
		}
		return a[1], nil
	},
	"concat": func(a []value.Value) (value.Value, error) {
		var b strings.Builder
		for _, v := range a {
			b.WriteString(v.String())
		}
		return value.Str(b.String()), nil
	},
	"lower": string1("lower", strings.ToLower),
	"upper": string1("upper", strings.ToUpper),
	"trim":  string1("trim", strings.TrimSpace),
	"strlen": func(a []value.Value) (value.Value, error) {
		if err := arity("strlen", a, 1); err != nil {
			return value.Value{}, err
		}
		return value.IntV(int64(len(a[0].String()))), nil
	},
	"contains": func(a []value.Value) (value.Value, error) {
		if err := arity("contains", a, 2); err != nil {
			return value.Value{}, err
		}
		return value.BoolV(strings.Contains(a[0].String(), a[1].String())), nil
	},
	"starts_with": func(a []value.Value) (value.Value, error) {
		if err := arity("starts_with", a, 2); err != nil {
			return value.Value{}, err
		}
		return value.BoolV(strings.HasPrefix(a[0].String(), a[1].String())), nil
	},
	"substring_before": func(a []value.Value) (value.Value, error) {
		if err := arity("substring_before", a, 2); err != nil {
			return value.Value{}, err
		}
		s, sep := a[0].String(), a[1].String()
		if i := strings.Index(s, sep); i >= 0 {
			return value.Str(s[:i]), nil
		}
		return value.Str(s), nil
	},
	"substring_after": func(a []value.Value) (value.Value, error) {
		if err := arity("substring_after", a, 2); err != nil {
			return value.Value{}, err
		}
		s, sep := a[0].String(), a[1].String()
		if i := strings.Index(s, sep); i >= 0 {
			return value.Str(s[i+len(sep):]), nil
		}
		return value.Str(""), nil
	},
	"to_string": func(a []value.Value) (value.Value, error) {
		if err := arity("to_string", a, 1); err != nil {
			return value.Value{}, err
		}
		return value.Str(a[0].String()), nil
	},
	"to_float": func(a []value.Value) (value.Value, error) {
		if err := arity("to_float", a, 1); err != nil {
			return value.Value{}, err
		}
		if f, ok := a[0].AsFloat(); ok {
			return value.FloatV(f), nil
		}
		if v, err := value.ParseLiteral(a[0].String()); err == nil {
			if f, ok := v.AsFloat(); ok {
				return value.FloatV(f), nil
			}
		}
		return value.Value{}, fmt.Errorf("vadalog: to_float: cannot convert %s", a[0])
	},
	"to_int": func(a []value.Value) (value.Value, error) {
		if err := arity("to_int", a, 1); err != nil {
			return value.Value{}, err
		}
		if i, ok := a[0].AsInt(); ok {
			return value.IntV(i), nil
		}
		return value.Value{}, fmt.Errorf("vadalog: to_int: cannot convert %s", a[0])
	},
	// sk applies a linker Skolem functor by name: sk("f", X, Y) builds the
	// identifier #f(x,y). The functor name must be the first argument.
	"sk": func(a []value.Value) (value.Value, error) {
		if len(a) < 1 || a[0].K != value.String {
			return value.Value{}, fmt.Errorf("vadalog: sk: first argument must be the functor name string")
		}
		return value.Skolem(a[0].S, a[1:]...), nil
	},
}

func arity(name string, args []value.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("vadalog: %s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func numeric1(name string, f func(float64) float64) func([]value.Value) (value.Value, error) {
	return func(a []value.Value) (value.Value, error) {
		if err := arity(name, a, 1); err != nil {
			return value.Value{}, err
		}
		x, ok := a[0].AsFloat()
		if !ok {
			return value.Value{}, fmt.Errorf("vadalog: %s: non-numeric argument %s", name, a[0].K)
		}
		return value.FloatV(f(x)), nil
	}
}

func string1(name string, f func(string) string) func([]value.Value) (value.Value, error) {
	return func(a []value.Value) (value.Value, error) {
		if err := arity(name, a, 1); err != nil {
			return value.Value{}, err
		}
		return value.Str(f(a[0].String())), nil
	}
}
