package vadalog

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func runProg(t *testing.T, src string, setup func(db *Database)) *Result {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := NewDatabase()
	if setup != nil {
		setup(db)
	}
	res, err := Run(prog, db, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func factStrings(fs []Fact) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func TestTransitiveClosure(t *testing.T) {
	res := runProg(t, `
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
		@output("tc").
	`, func(db *Database) {
		for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
			db.MustAddFact("edge", value.Str(e[0]), value.Str(e[1]))
		}
	})
	got := res.Output("tc")
	if len(got) != 6 {
		t.Fatalf("expected 6 tc facts, got %d: %v", len(got), factStrings(got))
	}
	want := "(a,d)"
	found := false
	for _, f := range got {
		if f.String() == want {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fact tc%s", want)
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	res := runProg(t, `
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`, func(db *Database) {
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
		db.MustAddFact("edge", value.Str("b"), value.Str("a"))
	})
	if n := len(res.Output("tc")); n != 4 {
		t.Fatalf("cycle closure should have 4 facts, got %d", n)
	}
}

func TestFactsAndConjunctiveHead(t *testing.T) {
	res := runProg(t, `
		base("x", 1).
		p(A), q(N) :- base(A, N).
	`, nil)
	if n := len(res.Output("p")); n != 1 {
		t.Fatalf("p: got %d facts", n)
	}
	if n := len(res.Output("q")); n != 1 {
		t.Fatalf("q: got %d facts", n)
	}
	if got := res.Output("q")[0][0]; got.I != 1 {
		t.Errorf("q value = %v", got)
	}
}

func TestExistentialSkolemization(t *testing.T) {
	res := runProg(t, `
		hasMgr(E, M) :- emp(E).
	`, func(db *Database) {
		db.MustAddFact("emp", value.Str("ann"))
		db.MustAddFact("emp", value.Str("bob"))
	})
	got := res.Output("hasMgr")
	if len(got) != 2 {
		t.Fatalf("expected 2 facts, got %d", len(got))
	}
	// Each employee gets a manager null; distinct employees get distinct
	// nulls, and re-running is deterministic.
	if value.Equal(got[0][1], got[1][1]) {
		t.Errorf("distinct frontier bindings must produce distinct nulls: %v", factStrings(got))
	}
	if got[0][1].K != value.ID {
		t.Errorf("existential value should be a Skolem identifier, got kind %v", got[0][1].K)
	}
}

func TestExistentialReusedAcrossHeadConjunction(t *testing.T) {
	res := runProg(t, `
		a(X, N), b(N, X) :- base(X).
	`, func(db *Database) {
		db.MustAddFact("base", value.Str("k"))
	})
	av := res.Output("a")[0][1]
	bv := res.Output("b")[0][0]
	if !value.Equal(av, bv) {
		t.Errorf("existential must be shared across head conjunction: %v vs %v", av, bv)
	}
}

func TestExplicitLinkerSkolem(t *testing.T) {
	res := runProg(t, `
		out(X, #link(X, "suffix")) :- in(X).
	`, func(db *Database) {
		db.MustAddFact("in", value.Str("v"))
	})
	got := res.Output("out")[0][1]
	want := value.Skolem("link", value.Str("v"), value.Str("suffix"))
	if !value.Equal(got, want) {
		t.Errorf("linker skolem: got %v want %v", got, want)
	}
}

func TestLinkerSkolemInjectiveAndRangeDisjoint(t *testing.T) {
	a := value.Skolem("skA", value.Str("x"))
	b := value.Skolem("skB", value.Str("x"))
	if value.Equal(a, b) {
		t.Errorf("distinct functors must have disjoint ranges")
	}
	a2 := value.Skolem("skA", value.Str("x"))
	if !value.Equal(a, a2) {
		t.Errorf("skolem functors must be deterministic")
	}
}

func TestStratifiedNegation(t *testing.T) {
	res := runProg(t, `
		reach(X) :- start(X).
		reach(Y) :- reach(X), edge(X,Y).
		unreached(X) :- node(X), not reach(X).
		@output("unreached").
	`, func(db *Database) {
		for _, n := range []string{"a", "b", "c", "d"} {
			db.MustAddFact("node", value.Str(n))
		}
		db.MustAddFact("start", value.Str("a"))
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
		db.MustAddFact("edge", value.Str("c"), value.Str("d"))
	})
	got := factStrings(res.Output("unreached"))
	if len(got) != 2 || got[0] != "(c)" || got[1] != "(d)" {
		t.Errorf("unreached = %v, want [(c) (d)]", got)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	prog := MustParse(`
		p(X) :- base(X), not q(X).
		q(X) :- base(X), not p(X).
	`)
	if _, err := Run(prog, NewDatabase(), Options{}); err == nil {
		t.Fatal("negation through recursion must be rejected")
	}
}

func TestNegationWildcard(t *testing.T) {
	res := runProg(t, `
		leaf(X) :- node(X), not edge(X, _).
	`, func(db *Database) {
		db.MustAddFact("node", value.Str("a"))
		db.MustAddFact("node", value.Str("b"))
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	})
	got := factStrings(res.Output("leaf"))
	if len(got) != 1 || got[0] != "(b)" {
		t.Errorf("leaf = %v, want [(b)]", got)
	}
}

func TestConditionsAndExpressions(t *testing.T) {
	res := runProg(t, `
		big(X, D) :- num(X), X > 10, D = X * 2 + 1.
	`, func(db *Database) {
		db.MustAddFact("num", value.IntV(5))
		db.MustAddFact("num", value.IntV(20))
	})
	got := res.Output("big")
	if len(got) != 1 {
		t.Fatalf("big: got %d facts", len(got))
	}
	if got[0][1].I != 41 {
		t.Errorf("derived value = %v, want 41", got[0][1])
	}
}

func TestStringFunctions(t *testing.T) {
	res := runProg(t, `
		out(Y) :- in(X), Y = concat(upper(X), "-", strlen(X)).
	`, func(db *Database) {
		db.MustAddFact("in", value.Str("abc"))
	})
	if got := res.Output("out")[0][0].S; got != "ABC-3" {
		t.Errorf("got %q", got)
	}
}

func TestStratifiedAggregates(t *testing.T) {
	res := runProg(t, `
		total(D, S) :- sale(D, _, V), S = sum(V).
		howmany(D, C) :- sale(D, _, _), C = count().
		cheapest(D, M) :- sale(D, _, V), M = min(V).
		priciest(D, M) :- sale(D, _, V), M = max(V).
	`, func(db *Database) {
		db.MustAddFact("sale", value.Str("north"), value.Str("s1"), value.IntV(10))
		db.MustAddFact("sale", value.Str("north"), value.Str("s2"), value.IntV(30))
		db.MustAddFact("sale", value.Str("south"), value.Str("s3"), value.IntV(7))
	})
	if got := factStrings(res.Output("total")); got[0] != "(north,40)" || got[1] != "(south,7)" {
		t.Errorf("total = %v", got)
	}
	if got := factStrings(res.Output("howmany")); got[0] != "(north,2)" || got[1] != "(south,1)" {
		t.Errorf("howmany = %v", got)
	}
	if got := factStrings(res.Output("cheapest")); got[0] != "(north,10)" || got[1] != "(south,7)" {
		t.Errorf("cheapest = %v", got)
	}
	if got := factStrings(res.Output("priciest")); got[0] != "(north,30)" || got[1] != "(south,7)" {
		t.Errorf("priciest = %v", got)
	}
}

func TestStratifiedAggregateFeedsSameStratumRules(t *testing.T) {
	res := runProg(t, `
		total(D, S) :- sale(D, V), S = sum(V).
		bigRegion(D) :- total(D, S), S > 15.
	`, func(db *Database) {
		db.MustAddFact("sale", value.Str("north"), value.IntV(10))
		db.MustAddFact("sale", value.Str("north"), value.IntV(30))
		db.MustAddFact("sale", value.Str("south"), value.IntV(7))
	})
	got := factStrings(res.Output("bigRegion"))
	if len(got) != 1 || got[0] != "(north)" {
		t.Errorf("bigRegion = %v", got)
	}
}

// TestExample42ControlVadalog reproduces Example 4.2 of the paper: company
// control via recursion and monotonic summation.
func TestExample42ControlVadalog(t *testing.T) {
	res := runProg(t, `
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
		@output("controls").
	`, func(db *Database) {
		for _, c := range []string{"a", "b", "c", "d"} {
			db.MustAddFact("company", value.Str(c))
		}
		// a owns 60% of b; a owns 30% of c, b owns 30% of c (jointly 60%);
		// c owns 40% of d (no control).
		own := func(x, y string, w float64) {
			db.MustAddFact("owns", value.Str(x), value.Str(y), value.FloatV(w))
		}
		own("a", "b", 0.6)
		own("a", "c", 0.3)
		own("b", "c", 0.3)
		own("c", "d", 0.4)
	})
	got := map[string]bool{}
	for _, f := range res.Output("controls") {
		got[f[0].S+"->"+f[1].S] = true
	}
	for _, want := range []string{"a->a", "b->b", "c->c", "d->d", "a->b", "a->c"} {
		if !got[want] {
			t.Errorf("missing control edge %s; got %v", want, got)
		}
	}
	if got["a->d"] || got["b->c"] || got["c->d"] {
		t.Errorf("spurious control edge derived: %v", got)
	}
	if len(got) != 6 {
		t.Errorf("expected 6 control edges, got %d: %v", len(got), got)
	}
}

// TestControlDeepChain checks monotonic aggregation through long recursion:
// a chain where each company owns 100% of the next.
func TestControlDeepChain(t *testing.T) {
	res := runProg(t, `
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	`, func(db *Database) {
		const n = 50
		names := make([]string, n)
		for i := range names {
			names[i] = "c" + strings.Repeat("x", 1) + string(rune('0'+i%10)) + string(rune('a'+i/10))
			db.MustAddFact("company", value.Str(names[i]))
		}
		for i := 0; i+1 < n; i++ {
			db.MustAddFact("owns", value.Str(names[i]), value.Str(names[i+1]), value.FloatV(1.0))
		}
	})
	// Every prefix controls every suffix: n self + n(n-1)/2 pairs.
	want := 50 + 50*49/2
	if n := len(res.Output("controls")); n != want {
		t.Errorf("chain control count = %d, want %d", n, want)
	}
}

// TestControlDiamondJointControl exercises the joint-control case that the
// simple transitive closure would miss: two controlled intermediaries whose
// stakes only jointly exceed 50%.
func TestControlDiamondJointControl(t *testing.T) {
	res := runProg(t, `
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	`, func(db *Database) {
		for _, c := range []string{"top", "l", "r", "bottom"} {
			db.MustAddFact("company", value.Str(c))
		}
		own := func(x, y string, w float64) {
			db.MustAddFact("owns", value.Str(x), value.Str(y), value.FloatV(w))
		}
		own("top", "l", 0.6)
		own("top", "r", 0.6)
		own("l", "bottom", 0.3)
		own("r", "bottom", 0.3)
	})
	got := map[string]bool{}
	for _, f := range res.Output("controls") {
		got[f[0].S+"->"+f[1].S] = true
	}
	if !got["top->bottom"] {
		t.Errorf("joint control through l and r not derived: %v", got)
	}
	if got["l->bottom"] || got["r->bottom"] {
		t.Errorf("spurious single-leg control: %v", got)
	}
}

func TestMonotonicCount(t *testing.T) {
	res := runProg(t, `
		reached(X) :- seed(X).
		reached(Y) :- reached(X), edge(X, Y).
		popular(Y, C) :- reached(X), edge(X, Y), C = mcount(<X>), C >= 2.
	`, func(db *Database) {
		db.MustAddFact("seed", value.Str("a"))
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
		db.MustAddFact("edge", value.Str("a"), value.Str("c"))
		db.MustAddFact("edge", value.Str("b"), value.Str("c"))
	})
	// c is reached from both a and b.
	found := false
	for _, f := range res.Output("popular") {
		if f[0].S == "c" && f[1].I == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("popular = %v", factStrings(res.Output("popular")))
	}
}

func TestSafetyErrors(t *testing.T) {
	cases := []string{
		`p(X) :- q(Y), not r(X).`,               // unbound var in negation
		`p(X) :- q(Y), X > 3.`,                  // unbound var in condition (X never bound)
		`p(Y) :- q(X), Z = W + 1.`,              // unbound var in assignment RHS
		`p(#f(Z)) :- q(X).`,                     // skolem over unbound var
		`p(X) :- q(X), A = sum(X), B = sum(X).`, // two aggregates
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // a parse error is an acceptable rejection too
		}
		if _, err := Analyze(prog); err == nil {
			t.Errorf("program accepted but should be unsafe: %s", src)
		}
	}
}

func TestArityMismatchRejected(t *testing.T) {
	prog := MustParse(`
		p(X) :- q(X).
		p(X, Y) :- q(X), q(Y).
	`)
	if _, err := Run(prog, NewDatabase(), Options{}); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
}

func TestWardednessAnalysis(t *testing.T) {
	// A classic warded program: the existential value flows through a
	// single ward atom.
	prog := MustParse(`
		hasOwner(X, O) :- company(X).
		ownerOf(O, X) :- hasOwner(X, O).
	`)
	an, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !an.Warded {
		t.Errorf("program should be warded: %v", an.Violations)
	}
	if len(an.AffectedPositions) == 0 {
		t.Errorf("affected positions should include hasOwner/1")
	}

	// Dangerous variables spread over two atoms with no shared ward and no
	// harmless occurrence: not warded.
	bad := MustParse(`
		p(X, N) :- base(X).
		q(A, B) :- p(X, A), p(Y, B).
	`)
	an2, err := Analyze(bad)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if an2.Warded {
		t.Errorf("program with split dangerous variables should not be warded")
	}
	if _, err := Run(bad, NewDatabase(), Options{RequireWarded: true}); err == nil {
		t.Errorf("RequireWarded must reject non-warded program")
	}
}

func TestPiecewiseLinearAnalysis(t *testing.T) {
	pl := MustParse(`
		tc(X,Y) :- e(X,Y).
		tc(X,Z) :- tc(X,Y), e(Y,Z).
	`)
	an, _ := Analyze(pl)
	if !an.PiecewiseLinear {
		t.Errorf("linear TC should be piecewise linear")
	}
	npl := MustParse(`
		tc(X,Y) :- e(X,Y).
		tc(X,Z) :- tc(X,Y), tc(Y,Z).
	`)
	an2, _ := Analyze(npl)
	if an2.PiecewiseLinear {
		t.Errorf("doubled recursion is not piecewise linear")
	}
}

func TestSameGeneration(t *testing.T) {
	res := runProg(t, `
		sg(X, X) :- person(X).
		sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
	`, func(db *Database) {
		for _, p := range []string{"grandpa", "dad", "uncle", "me", "cousin"} {
			db.MustAddFact("person", value.Str(p))
		}
		db.MustAddFact("par", value.Str("dad"), value.Str("grandpa"))
		db.MustAddFact("par", value.Str("uncle"), value.Str("grandpa"))
		db.MustAddFact("par", value.Str("me"), value.Str("dad"))
		db.MustAddFact("par", value.Str("cousin"), value.Str("uncle"))
	})
	got := map[string]bool{}
	for _, f := range res.Output("sg") {
		got[f[0].S+"~"+f[1].S] = true
	}
	if !got["me~cousin"] || !got["dad~uncle"] {
		t.Errorf("same-generation pairs missing: %v", got)
	}
	if got["me~dad"] {
		t.Errorf("cross-generation pair derived")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	res := runProg(t, `
		loop(X) :- edge(X, X).
	`, func(db *Database) {
		db.MustAddFact("edge", value.Str("a"), value.Str("a"))
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	})
	got := factStrings(res.Output("loop"))
	if len(got) != 1 || got[0] != "(a)" {
		t.Errorf("loop = %v", got)
	}
}

func TestConstantsInAtoms(t *testing.T) {
	res := runProg(t, `
		redThing(X) :- item(X, "red", _).
	`, func(db *Database) {
		db.MustAddFact("item", value.Str("ball"), value.Str("red"), value.IntV(1))
		db.MustAddFact("item", value.Str("cube"), value.Str("blue"), value.IntV(2))
	})
	got := factStrings(res.Output("redThing"))
	if len(got) != 1 || got[0] != "(ball)" {
		t.Errorf("redThing = %v", got)
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	prog := MustParse(`p(X) :- q(X).`)
	db := NewDatabase()
	db.MustAddFact("q", value.IntV(1))
	if _, err := Run(prog, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Count("p") != 0 {
		t.Errorf("Run must not mutate the input database")
	}
}

func TestNonRecursiveRuleOverGrowingSameStratumPred(t *testing.T) {
	// q is not in p's SCC but reads it within the same stratum; it must see
	// all p facts, including ones derived after round 0.
	res := runProg(t, `
		p(X, Y) :- e(X, Y).
		p(X, Z) :- p(X, Y), e(Y, Z).
		q(X) :- p(X, Y), Y = "d".
	`, func(db *Database) {
		db.MustAddFact("e", value.Str("a"), value.Str("b"))
		db.MustAddFact("e", value.Str("b"), value.Str("c"))
		db.MustAddFact("e", value.Str("c"), value.Str("d"))
	})
	got := factStrings(res.Output("q"))
	if len(got) != 3 {
		t.Errorf("q should contain a, b, c; got %v", got)
	}
}

func TestParserRoundTrip(t *testing.T) {
	src := `controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = sum(W, <Z>), V > 0.5.
@output("controls").`
	prog := MustParse(src)
	printed := prog.String()
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if prog2.String() != printed {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", printed, prog2.String())
	}
}

func TestEDBAndIDBPredicates(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	if got := prog.EDBPredicates(); len(got) != 1 || got[0] != "edge" {
		t.Errorf("EDB = %v", got)
	}
	if got := prog.IDBPredicates(); len(got) != 1 || got[0] != "tc" {
		t.Errorf("IDB = %v", got)
	}
}
