package vadalog_test

// Relation storage microbenchmarks (EXPERIMENTS.md E19): the dedup-on-insert
// and index-probe paths that every semi-naive round exercises once per
// candidate tuple. Each path runs against two implementations on identical
// data: "stringkey" is a test-only replica of the pre-refactor storage
// (concatenated canonical strings as dedup and index keys) serving as the
// recorded baseline, and "hashed" is the live Relation (direct tuple hashes
// with collision verification under canonical equality). make bench-storage
// captures both into BENCH_storage.json, so the speedup and allocation
// deltas are reproducible from this PR alone.

import (
	"sort"
	"testing"

	"repro/internal/vadalog"
	"repro/internal/value"
)

// legacyRelation replicates the pre-refactor Relation storage: dedup by the
// full tuple's canonical string, join indexes keyed by the projected
// canonical string. Kept test-only as the benchmark baseline.
type legacyRelation struct {
	arity   int
	facts   []vadalog.Fact
	dedup   map[string]int
	indexes map[uint64]map[string][]int
}

func newLegacyRelation(arity int) *legacyRelation {
	return &legacyRelation{
		arity:   arity,
		dedup:   make(map[string]int),
		indexes: make(map[uint64]map[string][]int),
	}
}

func legacyEncodeKey(vals []value.Value) string {
	var buf [96]byte
	b := buf[:0]
	for i, v := range vals {
		if i > 0 {
			b = append(b, 0)
		}
		b = v.AppendCanonical(b)
	}
	return string(b)
}

func (r *legacyRelation) projectKey(f vadalog.Fact, mask uint64) string {
	var buf [96]byte
	b := buf[:0]
	first := true
	for i := 0; i < r.arity; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !first {
			b = append(b, 0)
		}
		first = false
		b = f[i].AppendCanonical(b)
	}
	return string(b)
}

func (r *legacyRelation) insert(f vadalog.Fact) bool {
	key := legacyEncodeKey(f)
	if _, ok := r.dedup[key]; ok {
		return false
	}
	pos := len(r.facts)
	r.dedup[key] = pos
	r.facts = append(r.facts, f)
	for mask, idx := range r.indexes {
		pk := r.projectKey(f, mask)
		idx[pk] = append(idx[pk], pos)
	}
	return true
}

func (r *legacyRelation) ensureIndex(mask uint64) map[string][]int {
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	idx := make(map[string][]int)
	for pos, f := range r.facts {
		pk := r.projectKey(f, mask)
		idx[pk] = append(idx[pk], pos)
	}
	r.indexes[mask] = idx
	return idx
}

func (r *legacyRelation) lookup(mask uint64, boundVals []value.Value) []int {
	idx := r.ensureIndex(mask)
	return idx[legacyEncodeKey(boundVals)]
}

func benchFacts(n int) []vadalog.Fact {
	out := make([]vadalog.Fact, n)
	for i := 0; i < n; i++ {
		out[i] = vadalog.Fact{
			value.IDV("company" + string(rune('a'+i%26)) + "x"),
			value.IntV(int64(i)),
			value.FloatV(float64(i) * 0.5),
		}
	}
	return out
}

// BenchmarkStorageRelationInsert measures n fresh inserts followed by n
// dedup-hit re-inserts — the shape of the fixpoint's saturated rounds.
func BenchmarkStorageRelationInsert(b *testing.B) {
	facts := benchFacts(4096)
	b.Run("stringkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := newLegacyRelation(3)
			for _, f := range facts {
				r.insert(f)
			}
			for _, f := range facts {
				if r.insert(f) {
					b.Fatal("dedup miss")
				}
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := vadalog.NewRelation(3)
			for _, f := range facts {
				if _, err := r.Insert(f); err != nil {
					b.Fatal(err)
				}
			}
			for _, f := range facts {
				if ok, _ := r.Insert(f); ok {
					b.Fatal("dedup miss")
				}
			}
		}
	})
}

// BenchmarkStorageRelationProbe measures warm-index probes with one bound
// position, the inner loop of every join step.
func BenchmarkStorageRelationProbe(b *testing.B) {
	facts := benchFacts(4096)
	const mask = 1 << 1 // bind position 1, the integer key
	probes := make([][]value.Value, 256)
	for i := range probes {
		probes[i] = []value.Value{value.IntV(int64(i * 16))}
	}

	b.Run("stringkey", func(b *testing.B) {
		r := newLegacyRelation(3)
		for _, f := range facts {
			r.insert(f)
		}
		r.lookup(mask, probes[0]) // build the index outside the timer
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				hits += len(r.lookup(mask, p))
			}
		}
		if hits == 0 {
			b.Fatal("no probe hits")
		}
	})
	b.Run("hashed", func(b *testing.B) {
		r := vadalog.NewRelation(3)
		for _, f := range facts {
			if _, err := r.Insert(f); err != nil {
				b.Fatal(err)
			}
		}
		r.Lookup(mask, probes[0])
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				hits += len(r.Lookup(mask, p))
			}
		}
		if hits == 0 {
			b.Fatal("no probe hits")
		}
	})
}

// TestLegacyRelationAgrees pins the baseline replica to the live Relation:
// same dedup decisions, same probe results on randomized-ish data. A drifted
// baseline would make the benchmark comparison meaningless.
func TestLegacyRelationAgrees(t *testing.T) {
	facts := benchFacts(512)
	// Duplicate a slice of them to exercise the dedup path.
	facts = append(facts, facts[100:200]...)
	legacy := newLegacyRelation(3)
	live := vadalog.NewRelation(3)
	for _, f := range facts {
		a := legacy.insert(f)
		b, err := live.Insert(f)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("dedup disagreement on %v: legacy %v, live %v", f, a, b)
		}
	}
	for mask := uint64(1); mask < 8; mask++ {
		for i := 0; i < 64; i++ {
			var bound []value.Value
			f := facts[(i*37)%len(facts)]
			for p := 0; p < 3; p++ {
				if mask&(1<<uint(p)) != 0 {
					bound = append(bound, f[p])
				}
			}
			a := append([]int(nil), legacy.lookup(mask, bound)...)
			b := append([]int(nil), live.Lookup(mask, bound)...)
			sort.Ints(a)
			sort.Ints(b)
			if len(a) != len(b) {
				t.Fatalf("mask %b bound %v: legacy %v live %v", mask, bound, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("mask %b bound %v: legacy %v live %v", mask, bound, a, b)
				}
			}
		}
	}
}
