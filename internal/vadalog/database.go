package vadalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Fact is a tuple of values, a member of a relation (Section 4, "Relational
// Foundations"). Facts are immutable once inserted.
type Fact []value.Value

func (f Fact) String() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func encodeKey(vals []value.Value) string {
	var buf [96]byte
	b := buf[:0]
	for i, v := range vals {
		if i > 0 {
			b = append(b, 0)
		}
		b = v.AppendCanonical(b)
	}
	return string(b)
}

// Relation is an append-only set of facts of a fixed arity with hash indexes.
//
// Facts keep their insertion order, which lets the semi-naive engine address
// "old" and "delta" windows of the same relation by position ranges instead
// of copying snapshots.
type Relation struct {
	Arity int
	facts []Fact
	dedup map[string]int // full-tuple key -> position

	// indexes maps a bitmask of bound positions to an index from the
	// projected key to ascending fact positions. Once built for a mask, an
	// index is maintained incrementally by Insert.
	indexes map[uint64]map[string][]int
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		Arity:   arity,
		dedup:   make(map[string]int),
		indexes: make(map[uint64]map[string][]int),
	}
}

// Len returns the number of facts.
func (r *Relation) Len() int { return len(r.facts) }

// At returns the fact at the given position.
func (r *Relation) At(pos int) Fact { return r.facts[pos] }

// Contains reports whether the tuple is already in the relation.
func (r *Relation) Contains(f Fact) bool {
	_, ok := r.dedup[encodeKey(f)]
	return ok
}

// Insert adds a fact, reporting whether it was new. It is an error to insert
// a fact of the wrong arity.
func (r *Relation) Insert(f Fact) (bool, error) {
	if len(f) != r.Arity {
		return false, fmt.Errorf("vadalog: arity mismatch: relation has arity %d, fact has %d", r.Arity, len(f))
	}
	key := encodeKey(f)
	if _, ok := r.dedup[key]; ok {
		return false, nil
	}
	pos := len(r.facts)
	r.dedup[key] = pos
	r.facts = append(r.facts, f)
	for mask, idx := range r.indexes {
		pk := r.projectKey(f, mask)
		idx[pk] = append(idx[pk], pos)
	}
	return true, nil
}

func (r *Relation) projectKey(f Fact, mask uint64) string {
	var buf [96]byte
	b := buf[:0]
	first := true
	for i := 0; i < r.Arity; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !first {
			b = append(b, 0)
		}
		first = false
		b = f[i].AppendCanonical(b)
	}
	return string(b)
}

// warmIndex builds (if absent) the index for the given mask. The engine
// calls it for every mask a rule can consult before fanning that rule's
// evaluation out to worker goroutines: index construction is the only lazy
// mutation on the relation read path, so after warming, concurrent Lookup /
// At / Len calls are race-free as long as no Insert runs alongside them —
// which the parallel evaluator guarantees by buffering emissions until its
// merge barrier.
func (r *Relation) warmIndex(mask uint64) {
	if mask != 0 {
		r.ensureIndex(mask)
	}
}

func (r *Relation) ensureIndex(mask uint64) map[string][]int {
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	idx := make(map[string][]int)
	for pos, f := range r.facts {
		pk := r.projectKey(f, mask)
		idx[pk] = append(idx[pk], pos)
	}
	r.indexes[mask] = idx
	return idx
}

// Lookup returns the ascending positions of facts whose values at the masked
// positions equal boundVals (given in ascending position order). A zero mask
// matches every fact.
func (r *Relation) Lookup(mask uint64, boundVals []value.Value) []int {
	if mask == 0 {
		out := make([]int, len(r.facts))
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := r.ensureIndex(mask)
	return idx[encodeKey(boundVals)]
}

// All returns all facts in insertion order. The returned slice must not be
// modified.
func (r *Relation) All() []Fact { return r.facts }

// Sorted returns the facts sorted lexicographically by value order, for
// deterministic output.
func (r *Relation) Sorted() []Fact {
	out := append([]Fact(nil), r.facts...)
	sort.Slice(out, func(i, j int) bool { return factLess(out[i], out[j]) })
	return out
}

func factLess(a, b Fact) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := value.Compare(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// Database is a set of named relations: the (database) instance of Section 4.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(pred string) *Relation { return d.rels[pred] }

// EnsureRelation returns the named relation, creating it with the given arity
// if absent. It is an error to re-declare a relation with a different arity.
func (d *Database) EnsureRelation(pred string, arity int) (*Relation, error) {
	if r, ok := d.rels[pred]; ok {
		if r.Arity != arity {
			return nil, fmt.Errorf("vadalog: predicate %s used with arity %d and %d", pred, r.Arity, arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	d.rels[pred] = r
	return r, nil
}

// AddFact inserts a fact into the named relation, creating the relation on
// first use. It reports whether the fact was new.
func (d *Database) AddFact(pred string, vals ...value.Value) (bool, error) {
	r, err := d.EnsureRelation(pred, len(vals))
	if err != nil {
		return false, err
	}
	return r.Insert(Fact(vals))
}

// MustAddFact is AddFact that panics on arity mismatch, for test fixtures and
// generated loaders whose arity is known correct by construction.
func (d *Database) MustAddFact(pred string, vals ...value.Value) {
	if _, err := d.AddFact(pred, vals...); err != nil {
		panic(err)
	}
}

// Facts returns the facts of a predicate in insertion order, or nil.
func (d *Database) Facts(pred string) []Fact {
	r := d.rels[pred]
	if r == nil {
		return nil
	}
	return r.All()
}

// SortedFacts returns the facts of a predicate in deterministic value order.
func (d *Database) SortedFacts(pred string) []Fact {
	r := d.rels[pred]
	if r == nil {
		return nil
	}
	return r.Sorted()
}

// Count returns the number of facts of a predicate.
func (d *Database) Count(pred string) int {
	r := d.rels[pred]
	if r == nil {
		return 0
	}
	return r.Len()
}

// TotalFacts returns the number of facts across all relations.
func (d *Database) TotalFacts() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// Predicates returns the relation names, sorted.
func (d *Database) Predicates() []string {
	out := make([]string, 0, len(d.rels))
	for p := range d.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the database (facts are shared, as they are
// immutable; relation bookkeeping is copied).
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for pred, r := range d.rels {
		nr := NewRelation(r.Arity)
		for _, f := range r.All() {
			if _, err := nr.Insert(f); err != nil {
				panic(err) // same arity by construction
			}
		}
		out.rels[pred] = nr
	}
	return out
}

// MergeInto copies every fact of d into dst. It reports the number of facts
// that were new in dst.
func (d *Database) MergeInto(dst *Database) (int, error) {
	added := 0
	for _, pred := range d.Predicates() {
		r := d.rels[pred]
		dr, err := dst.EnsureRelation(pred, r.Arity)
		if err != nil {
			return added, err
		}
		for _, f := range r.All() {
			ok, err := dr.Insert(f)
			if err != nil {
				return added, err
			}
			if ok {
				added++
			}
		}
	}
	return added, nil
}

// Dump renders the database deterministically, for tests and debugging.
func (d *Database) Dump() string {
	var b strings.Builder
	for _, pred := range d.Predicates() {
		for _, f := range d.SortedFacts(pred) {
			b.WriteString(pred)
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
