package vadalog

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/value"
)

// Fact is a tuple of values, a member of a relation (Section 4, "Relational
// Foundations"). Facts are immutable once inserted.
type Fact []value.Value

func (f Fact) String() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// encodeKey renders a tuple as one canonical string. The relation's dedup
// and join indexes no longer use it (they work on interned symbols, below);
// it remains the key format of the aggregate group keys and the provenance
// store, where a printable, order-free key is worth the allocation.
func encodeKey(vals []value.Value) string {
	var buf [96]byte
	b := buf[:0]
	for i, v := range vals {
		if i > 0 {
			b = append(b, 0)
		}
		b = v.AppendCanonical(b)
	}
	return string(b)
}

// canonicalNaNBits is the single bit pattern every NaN hashes under: all NaN
// payloads print "NaN", so canonical equality merges them.
const canonicalNaNBits = 0x7ff8000000000000

// FNV-1a parameters for hashing tuples.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashValue folds one value into an FNV-1a state. The hash discriminates
// exactly what canonical-string equality discriminates: the Kind tag keeps
// Int 1, Float 1 and String "1" apart (as their canonical prefixes do),
// every NaN collapses to one pattern while +0 and -0 stay distinct (they
// print "0" and "-0"), and string payloads are folded byte-wise.
func hashValue(h uint64, v value.Value) uint64 {
	h ^= uint64(v.K)
	h *= fnvPrime64
	switch v.K {
	case value.Int, value.Null:
		h ^= uint64(v.I)
		h *= fnvPrime64
	case value.Float:
		b := math.Float64bits(v.F)
		if v.F != v.F {
			b = canonicalNaNBits
		}
		h ^= b
		h *= fnvPrime64
	case value.Bool:
		if v.B {
			h ^= 1
		}
		h *= fnvPrime64
	default: // String, ID, Invalid carry their payload in S.
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= fnvPrime64
		}
	}
	return h
}

// hashTuple hashes a full tuple.
func hashTuple(vals []value.Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = hashValue(h, v)
	}
	return h
}

// canonicalEqual mirrors canonical-string equality (value.Canonical) without
// materializing the strings. It is deliberately NOT value.Equal: Compare
// merges Int 1 with Float 1.0 numerically, while the canonical forms — and
// therefore the dedup and index keys — keep the kinds apart.
func canonicalEqual(a, b value.Value) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case value.Int, value.Null:
		return a.I == b.I
	case value.Float:
		if a.F != a.F {
			return b.F != b.F // every NaN prints "NaN"
		}
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case value.Bool:
		return a.B == b.B
	default:
		return a.S == b.S
	}
}

// tupleEqual reports canonical equality of two same-arity tuples.
func tupleEqual(a, b []value.Value) bool {
	for i := range a {
		if !canonicalEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Relation is an append-only set of facts of a fixed arity with hash indexes.
//
// Facts keep their insertion order, which lets the semi-naive engine address
// "old" and "delta" windows of the same relation by position ranges instead
// of copying snapshots.
//
// Deduplication and the join indexes key on tuple hashes over the values'
// canonical identity instead of concatenated canonical strings: an insert
// and an index probe allocate no key material, and hash collisions are
// resolved by comparing tuples under canonicalEqual — never by re-encoding.
type Relation struct {
	Arity int
	facts []Fact

	// dedup maps a full-tuple hash to the first fact position with that
	// hash; dedupMore holds the rare further positions whose distinct tuples
	// share a hash. Splitting the two keeps the common case at one map word
	// per fact with no slice allocation.
	dedup     map[uint64]int32
	dedupMore map[uint64][]int32

	// indexes maps a bitmask of bound positions to an index from the
	// projected-tuple hash to ascending fact positions. Once built for a
	// mask, an index is maintained incrementally by Insert. Probes verify
	// the candidate facts value-by-value, so a hash collision costs a
	// filtered copy, never a wrong answer.
	indexes map[uint64]map[uint64][]int

	// recycle marks a pooled scratch relation: Reset keeps the fact-slot
	// backing array and InsertValues may overwrite slots beyond len(facts).
	// It must stay false on any relation whose facts outlive its contents —
	// live relations hand removed Fact headers to callers, and recycling
	// would overwrite them in place.
	recycle bool
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		Arity:   arity,
		dedup:   make(map[uint64]int32),
		indexes: make(map[uint64]map[uint64][]int),
	}
}

// Len returns the number of facts.
func (r *Relation) Len() int { return len(r.facts) }

// Reset empties the relation while keeping its allocated capacity: the fact
// slots, dedup buckets and per-mask index maps are all retained. The
// maintenance path resets its pooled shadow relations between batches, so a
// steady-state Apply stops paying slice and map regrowth for them.
func (r *Relation) Reset() {
	r.facts = r.facts[:0]
	clear(r.dedup)
	clear(r.dedupMore)
	for _, idx := range r.indexes {
		clear(idx)
	}
}

// At returns the fact at the given position.
func (r *Relation) At(pos int) Fact { return r.facts[pos] }

// dedupFind scans the positions hashed to h for one whose tuple equals f.
func (r *Relation) dedupFind(h uint64, f Fact) (int, bool) {
	pos, ok := r.dedup[h]
	if !ok {
		return 0, false
	}
	if tupleEqual(r.facts[pos], f) {
		return int(pos), true
	}
	for _, p := range r.dedupMore[h] {
		if tupleEqual(r.facts[p], f) {
			return int(p), true
		}
	}
	return 0, false
}

// Contains reports whether the tuple is already in the relation. It never
// mutates the relation, so it is safe alongside concurrent reads.
func (r *Relation) Contains(f Fact) bool {
	if len(f) != r.Arity {
		return false
	}
	_, found := r.dedupFind(hashTuple(f), f)
	return found
}

// Insert adds a fact, reporting whether it was new. It is an error to insert
// a fact of the wrong arity.
func (r *Relation) Insert(f Fact) (bool, error) {
	if len(f) != r.Arity {
		return false, fmt.Errorf("vadalog: arity mismatch: relation has arity %d, fact has %d", r.Arity, len(f))
	}
	h := hashTuple(f)
	if _, dup := r.dedupFind(h, f); dup {
		return false, nil
	}
	r.insertNew(h, f)
	return true, nil
}

// InsertValues is Insert for a caller-owned scratch tuple: the values are
// copied into a fresh Fact only when no equal fact is present. Dup-heavy
// emitters (a fixpoint round re-deriving mostly known facts) therefore pay
// no allocation per duplicate.
func (r *Relation) InsertValues(vals []value.Value) (bool, error) {
	if len(vals) != r.Arity {
		return false, fmt.Errorf("vadalog: arity mismatch: relation has arity %d, fact has %d", r.Arity, len(vals))
	}
	h := hashTuple(vals)
	if _, dup := r.dedupFind(h, vals); dup {
		return false, nil
	}
	var f Fact
	if r.recycle && len(r.facts) < cap(r.facts) {
		// A pooled relation reuses the fact slot a prior generation left
		// behind the logical end of the slice.
		if old := r.facts[:len(r.facts)+1][len(r.facts)]; cap(old) >= len(vals) {
			f = old[:len(vals)]
		}
	}
	if f == nil {
		f = make(Fact, len(vals))
	}
	copy(f, vals)
	r.insertNew(h, f)
	return true, nil
}

// insertNew appends a fact known to be absent, updating the dedup table and
// every materialized index. The relation takes ownership of f.
func (r *Relation) insertNew(h uint64, f Fact) {
	pos := len(r.facts)
	if _, taken := r.dedup[h]; taken {
		if r.dedupMore == nil {
			r.dedupMore = make(map[uint64][]int32)
		}
		r.dedupMore[h] = append(r.dedupMore[h], int32(pos))
	} else {
		r.dedup[h] = int32(pos)
	}
	r.facts = append(r.facts, f)
	for mask, idx := range r.indexes {
		ph := projectHash(f, mask)
		idx[ph] = append(idx[ph], pos)
	}
}

// projectHash hashes the values at the masked positions of a tuple.
func projectHash(f Fact, mask uint64) uint64 {
	h := uint64(fnvOffset64)
	for i, v := range f {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		h = hashValue(h, v)
	}
	return h
}

// warmIndex builds (if absent) the index for the given mask. The engine
// calls it for every mask a rule can consult before fanning that rule's
// evaluation out to worker goroutines: index construction is the only lazy
// mutation on the relation read path, so after warming, concurrent Lookup /
// Contains / At / Len calls are race-free as long as no Insert runs
// alongside them — which the parallel evaluator guarantees by buffering
// emissions until its merge barrier.
func (r *Relation) warmIndex(mask uint64) {
	if mask != 0 {
		r.ensureIndex(mask)
	}
}

func (r *Relation) ensureIndex(mask uint64) map[uint64][]int {
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	idx := make(map[uint64][]int)
	for pos, f := range r.facts {
		ph := projectHash(f, mask)
		idx[ph] = append(idx[ph], pos)
	}
	r.indexes[mask] = idx
	return idx
}

// factMatches reports whether fact pos agrees with bound (the values of the
// masked positions, in ascending position order).
func (r *Relation) factMatches(pos int, mask uint64, bound []value.Value) bool {
	f := r.facts[pos]
	j := 0
	for i, v := range f {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !canonicalEqual(v, bound[j]) {
			return false
		}
		j++
	}
	return true
}

// Lookup returns the ascending positions of facts whose values at the masked
// positions equal boundVals (given in ascending position order). A zero mask
// matches every fact. The common, collision-free probe returns the index
// bucket itself with no allocation; when distinct projections share a hash
// the bucket is filtered by value comparison.
func (r *Relation) Lookup(mask uint64, boundVals []value.Value) []int {
	if mask == 0 {
		out := make([]int, len(r.facts))
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := r.ensureIndex(mask)
	if bits.OnesCount64(mask&(1<<uint(r.Arity)-1)) != len(boundVals) {
		return nil // malformed probe: bound values don't line up with the mask
	}
	h := uint64(fnvOffset64)
	for _, v := range boundVals {
		h = hashValue(h, v)
	}
	cand := idx[h]
	for i, pos := range cand {
		if !r.factMatches(pos, mask, boundVals) {
			out := append([]int(nil), cand[:i]...)
			for _, p := range cand[i+1:] {
				if r.factMatches(p, mask, boundVals) {
					out = append(out, p)
				}
			}
			return out
		}
	}
	return cand
}

// All returns all facts in insertion order. The returned slice must not be
// modified.
func (r *Relation) All() []Fact { return r.facts }

// Remove deletes the given facts from the relation and returns the facts
// actually removed (facts that were absent, malformed, or listed twice are
// skipped). Removal costs O(k) in the number of facts removed, not O(n) in
// the relation size: each removed fact is unlinked from the dedup maps and
// every posting list it appears in, and the relation's last fact is swapped
// into the vacated position with its own entries repointed. Incremental
// maintenance retracts a handful of facts from relations five orders of
// magnitude larger, so a rebuild here would cost as much as the full
// re-evaluation the maintenance layer exists to avoid.
//
// The relative order of the survivors is NOT preserved (the tail fact moves
// down); posting lists DO stay ascending, which the engine's window
// filtering binary-searches on. Because positions shift, Remove must never
// run while an engine holds position windows over the relation — the
// maintenance layer only calls it between evaluation phases.
func (r *Relation) Remove(facts []Fact) []Fact {
	return r.removeInto(nil, facts)
}

// removeInto is Remove accumulating into a caller-supplied buffer, so a
// caller that drains the result between calls (the maintenance loop) reuses
// one backing array instead of growing a fresh slice per relation.
func (r *Relation) removeInto(removed []Fact, facts []Fact) []Fact {
	for _, f := range facts {
		if len(f) != r.Arity {
			continue
		}
		h := hashTuple(f)
		pos, ok := r.dedupFind(h, f)
		if !ok {
			continue // absent, or a duplicate of an earlier removal
		}
		removed = append(removed, r.facts[pos])
		r.removeAt(pos, h)
	}
	return removed
}

// removeAt unlinks the fact at pos (whose full-tuple hash is h) and moves the
// relation's last fact into its place.
func (r *Relation) removeAt(pos int, h uint64) {
	last := len(r.facts) - 1
	gone := r.facts[pos]
	r.dedupUnlink(h, int32(pos))
	for mask, idx := range r.indexes {
		ph := projectHash(gone, mask)
		if lst := postingDelete(idx[ph], pos); len(lst) > 0 {
			idx[ph] = lst
		} else {
			delete(idx, ph)
		}
	}
	if pos != last {
		moved := r.facts[last]
		r.facts[pos] = moved
		r.dedupRepoint(hashTuple(moved), int32(last), int32(pos))
		for mask, idx := range r.indexes {
			// last is the highest position in the relation, so it is the
			// final element of its ascending posting list; drop it there and
			// re-insert the fact at its new, lower position. If gone and
			// moved share the bucket, the delete above left last in place.
			mph := projectHash(moved, mask)
			lst := idx[mph]
			idx[mph] = postingInsert(lst[:len(lst)-1], pos)
		}
	}
	r.facts[last] = nil // release the tail slot for GC
	r.facts = r.facts[:last]
}

// dedupUnlink removes the dedup entry mapping hash h to position pos,
// promoting an overflow position into the primary map when one exists.
func (r *Relation) dedupUnlink(h uint64, pos int32) {
	if p, ok := r.dedup[h]; ok && p == pos {
		if more := r.dedupMore[h]; len(more) > 0 {
			r.dedup[h] = more[len(more)-1]
			r.shrinkMore(h, len(more)-1)
		} else {
			delete(r.dedup, h)
		}
		return
	}
	more := r.dedupMore[h]
	for i, p := range more {
		if p == pos {
			more[i] = more[len(more)-1]
			r.shrinkMore(h, len(more)-1)
			return
		}
	}
}

// shrinkMore truncates the overflow list for h to n entries, dropping the
// key entirely when none remain.
func (r *Relation) shrinkMore(h uint64, n int) {
	if n == 0 {
		delete(r.dedupMore, h)
	} else {
		r.dedupMore[h] = r.dedupMore[h][:n]
	}
}

// dedupRepoint rewrites the dedup entry for hash h from position from to
// position to, wherever it lives.
func (r *Relation) dedupRepoint(h uint64, from, to int32) {
	if p, ok := r.dedup[h]; ok && p == from {
		r.dedup[h] = to
		return
	}
	more := r.dedupMore[h]
	for i, p := range more {
		if p == from {
			more[i] = to
			return
		}
	}
}

// postingDelete removes pos from an ascending posting list in place.
func postingDelete(lst []int, pos int) []int {
	i := sort.SearchInts(lst, pos)
	if i >= len(lst) || lst[i] != pos {
		return lst
	}
	return append(lst[:i], lst[i+1:]...)
}

// postingInsert inserts pos into an ascending posting list.
func postingInsert(lst []int, pos int) []int {
	i := sort.SearchInts(lst, pos)
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = pos
	return lst
}

// VisitRange invokes fn for every fact position in [lo, hi) whose mask-selected
// columns equal boundVals, in ascending position order, stopping at the first
// error from fn. Candidates are verified lazily, one at a time, so a caller
// that stops early (the engine's first-match cut) never pays for the rest of
// the hash bucket. mask 0 visits the whole window.
func (r *Relation) VisitRange(mask uint64, boundVals []value.Value, lo, hi int, fn func(pos int) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.facts) {
		hi = len(r.facts)
	}
	if lo >= hi {
		return nil
	}
	if mask == 0 {
		for pos := lo; pos < hi; pos++ {
			if err := fn(pos); err != nil {
				return err
			}
		}
		return nil
	}
	idx := r.ensureIndex(mask)
	if bits.OnesCount64(mask&(1<<uint(r.Arity)-1)) != len(boundVals) {
		return nil // malformed probe: bound values don't line up with the mask
	}
	h := uint64(fnvOffset64)
	for _, v := range boundVals {
		h = hashValue(h, v)
	}
	cand := idx[h]
	cand = cand[sort.SearchInts(cand, lo):]
	cand = cand[:sort.SearchInts(cand, hi)]
	for _, pos := range cand {
		if !r.factMatches(pos, mask, boundVals) {
			continue
		}
		if err := fn(pos); err != nil {
			return err
		}
	}
	return nil
}

// Sorted returns the facts sorted lexicographically by value order, for
// deterministic output.
func (r *Relation) Sorted() []Fact {
	out := append([]Fact(nil), r.facts...)
	sort.Slice(out, func(i, j int) bool { return factLess(out[i], out[j]) })
	return out
}

func factLess(a, b Fact) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := value.Compare(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// Database is a set of named relations: the (database) instance of Section 4.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(pred string) *Relation { return d.rels[pred] }

// EnsureRelation returns the named relation, creating it with the given arity
// if absent. It is an error to re-declare a relation with a different arity.
func (d *Database) EnsureRelation(pred string, arity int) (*Relation, error) {
	if r, ok := d.rels[pred]; ok {
		if r.Arity != arity {
			return nil, fmt.Errorf("vadalog: predicate %s used with arity %d and %d", pred, r.Arity, arity)
		}
		return r, nil
	}
	r := NewRelation(arity)
	d.rels[pred] = r
	return r, nil
}

// AddFact inserts a fact into the named relation, creating the relation on
// first use. It reports whether the fact was new.
func (d *Database) AddFact(pred string, vals ...value.Value) (bool, error) {
	r, err := d.EnsureRelation(pred, len(vals))
	if err != nil {
		return false, err
	}
	return r.Insert(Fact(vals))
}

// MustAddFact is AddFact that panics on arity mismatch, for test fixtures and
// generated loaders whose arity is known correct by construction.
func (d *Database) MustAddFact(pred string, vals ...value.Value) {
	if _, err := d.AddFact(pred, vals...); err != nil {
		panic(err)
	}
}

// Facts returns the facts of a predicate in insertion order, or nil.
func (d *Database) Facts(pred string) []Fact {
	r := d.rels[pred]
	if r == nil {
		return nil
	}
	return r.All()
}

// SortedFacts returns the facts of a predicate in deterministic value order.
func (d *Database) SortedFacts(pred string) []Fact {
	r := d.rels[pred]
	if r == nil {
		return nil
	}
	return r.Sorted()
}

// Count returns the number of facts of a predicate.
func (d *Database) Count(pred string) int {
	r := d.rels[pred]
	if r == nil {
		return 0
	}
	return r.Len()
}

// TotalFacts returns the number of facts across all relations.
func (d *Database) TotalFacts() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// Predicates returns the relation names, sorted.
func (d *Database) Predicates() []string {
	out := make([]string, 0, len(d.rels))
	for p := range d.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the database (facts are shared, as they are
// immutable; relation bookkeeping is copied).
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for pred, r := range d.rels {
		nr := NewRelation(r.Arity)
		for _, f := range r.All() {
			if _, err := nr.Insert(f); err != nil {
				panic(err) // same arity by construction
			}
		}
		out.rels[pred] = nr
	}
	return out
}

// ReplaceFacts swaps the named relation for a fresh one holding the given
// facts in the given order (deduplicated on insert). It lets maintenance
// layers rebuild a relation in a canonical order — the incremental fact
// extractor keeps extraction relations in ascending-OID order this way, so an
// incrementally maintained database is indistinguishable from a freshly
// extracted one, insertion order included.
func (d *Database) ReplaceFacts(pred string, arity int, facts []Fact) error {
	nr := NewRelation(arity)
	for _, f := range facts {
		if _, err := nr.Insert(f); err != nil {
			return err
		}
	}
	d.rels[pred] = nr
	return nil
}

// MergeInto copies every fact of d into dst. It reports the number of facts
// that were new in dst.
func (d *Database) MergeInto(dst *Database) (int, error) {
	added := 0
	for _, pred := range d.Predicates() {
		r := d.rels[pred]
		dr, err := dst.EnsureRelation(pred, r.Arity)
		if err != nil {
			return added, err
		}
		for _, f := range r.All() {
			ok, err := dr.Insert(f)
			if err != nil {
				return added, err
			}
			if ok {
				added++
			}
		}
	}
	return added, nil
}

// Dump renders the database deterministically, for tests and debugging.
func (d *Database) Dump() string {
	var b strings.Builder
	for _, pred := range d.Predicates() {
		for _, f := range d.SortedFacts(pred) {
			b.WriteString(pred)
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
