package vadalog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// The textual Vadalog syntax accepted by Parse:
//
//	% company control, Example 4.2 of the paper
//	controls(X,X) :- company(X).
//	controls(X,Y) :- controls(X,Z), owns(Z,Y,W), V = msum(W,<Z>), V > 0.5.
//	@output("controls").
//
// Identifiers in term position are always variables ("_" is anonymous);
// constants are quoted strings, numbers, or true/false. Head terms may be
// explicit linker Skolem functors, written #name(X,Y). A head variable that
// does not occur in the body is existentially quantified.

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // one of ( ) [ ] < > , . @ # and operators
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
		// A '.' is part of the number only if followed by a digit; otherwise
		// it is the rule terminator.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
				l.pos++
			}
		}
		// An exponent may follow either form (1e+06 as well as 1.5e7 —
		// strconv's shortest float rendering uses the former), but only
		// when digits actually follow; a bare trailing 'e' stays an
		// identifier token.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				l.pos = j
				for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
					l.pos++
				}
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		var b strings.Builder
		b.WriteByte('"')
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				b.WriteByte(ch)
				b.WriteByte(l.src[l.pos+1])
				l.pos += 2
				continue
			}
			if ch == '"' {
				b.WriteByte('"')
				l.pos++
				return token{kind: tokString, text: b.String(), line: l.line}, nil
			}
			if ch == '\n' {
				return token{}, fmt.Errorf("line %d: unterminated string literal", l.line)
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("line %d: unterminated string literal", l.line)
	default:
		// Multi-character operators first.
		for _, op := range []string{":-", "!=", "<=", ">=", "=="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokPunct, text: op, line: l.line}, nil
			}
		}
		if strings.ContainsRune("()[]<>,.@#=+-*/", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// aggregateOps names the aggregation operators. Operators with the m prefix
// (and any operator given contributor variables in <...>) are monotonic.
var aggregateOps = map[string]string{
	"sum": "sum", "count": "count", "min": "min", "max": "max",
	"avg": "avg", "prod": "prod", "pack": "pack",
	"msum": "sum", "mcount": "count", "mmin": "min", "mmax": "max", "mprod": "prod",
}

func isMonotonicName(name string) bool {
	return strings.HasPrefix(name, "m") && name != "min" && name != "max"
}

type parser struct {
	toks  []token
	pos   int
	fresh int // counter for anonymous variables
}

// Parse parses a Vadalog program from its textual form.
func Parse(src string) (*Program, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, fmt.Errorf("vadalog: %w", err)
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		if p.peek().kind == tokPunct && p.peek().text == "@" {
			ann, err := p.parseAnnotation()
			if err != nil {
				return nil, fmt.Errorf("vadalog: %w", err)
			}
			prog.Annotations = append(prog.Annotations, ann)
			continue
		}
		rule, err := p.parseRule()
		if err != nil {
			return nil, fmt.Errorf("vadalog: %w", err)
		}
		prog.Rules = append(prog.Rules, rule)
	}
	return prog, nil
}

// MustParse is Parse for programs embedded in the framework itself; it panics
// on syntax errors, which indicate a bug in the embedded program.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) (token, error) {
	t := p.advance()
	if t.kind != tokPunct || t.text != text {
		return t, fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return t, nil
}

func (p *parser) parseAnnotation() (Annotation, error) {
	if _, err := p.expect("@"); err != nil {
		return Annotation{}, err
	}
	name := p.advance()
	if name.kind != tokIdent {
		return Annotation{}, fmt.Errorf("line %d: expected annotation name, got %q", name.line, name.text)
	}
	ann := Annotation{Name: name.text, Line: name.line}
	if _, err := p.expect("("); err != nil {
		return Annotation{}, err
	}
	for {
		t := p.advance()
		switch t.kind {
		case tokString:
			s, err := strconv.Unquote(t.text)
			if err != nil {
				return Annotation{}, fmt.Errorf("line %d: bad string %s", t.line, t.text)
			}
			ann.Args = append(ann.Args, s)
		case tokIdent, tokNumber:
			ann.Args = append(ann.Args, t.text)
		default:
			return Annotation{}, fmt.Errorf("line %d: expected annotation argument, got %q", t.line, t.text)
		}
		t = p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			break
		}
		return Annotation{}, fmt.Errorf("line %d: expected , or ) in annotation, got %q", t.line, t.text)
	}
	if _, err := p.expect("."); err != nil {
		return Annotation{}, err
	}
	return ann, nil
}

func (p *parser) parseRule() (Rule, error) {
	line := p.peek().line
	var heads []Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return Rule{}, err
		}
		heads = append(heads, a)
		t := p.peek()
		if t.kind == tokPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	r := Rule{Head: heads, Line: line}
	t := p.advance()
	if t.kind == tokPunct && t.text == "." {
		return r, nil // fact
	}
	if t.kind != tokPunct || t.text != ":-" {
		return Rule{}, fmt.Errorf("line %d: expected :- or . after rule head, got %q", t.line, t.text)
	}
	for {
		lit, err := p.parseBodyLiteral()
		if err != nil {
			return Rule{}, err
		}
		r.Body = append(r.Body, lit)
		t := p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == "." {
			return r, nil
		}
		return Rule{}, fmt.Errorf("line %d: expected , or . in rule body, got %q", t.line, t.text)
	}
}

func (p *parser) parseBodyLiteral() (Literal, error) {
	t := p.peek()
	if t.kind == tokIdent && t.text == "not" && p.peek2().kind == tokIdent {
		p.advance()
		a, err := p.parseAtom()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitNegAtom, Atom: a}, nil
	}
	// IDENT '(' is an atom unless IDENT names a builtin function or
	// aggregate operator.
	if t.kind == tokIdent && p.peek2().kind == tokPunct && p.peek2().text == "(" {
		_, isFn := builtinFuncs[t.text]
		_, isAgg := aggregateOps[t.text]
		if !isFn && !isAgg {
			a, err := p.parseAtom()
			if err != nil {
				return Literal{}, err
			}
			return Literal{Kind: LitAtom, Atom: a}, nil
		}
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return Literal{}, err
	}
	return Literal{Kind: LitExpr, Expr: e}, nil
}

func (p *parser) parseAtom() (Atom, error) {
	name := p.advance()
	if name.kind != tokIdent {
		return Atom{}, fmt.Errorf("line %d: expected predicate name, got %q", name.line, name.text)
	}
	if _, err := p.expect("("); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name.text}
	if p.peek().kind == tokPunct && p.peek().text == ")" {
		p.advance()
		return a, nil
	}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, term)
		t := p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			return a, nil
		}
		return Atom{}, fmt.Errorf("line %d: expected , or ) in atom, got %q", t.line, t.text)
	}
}

func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "#":
		p.advance()
		name := p.advance()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected Skolem functor name after #", name.line)
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		st := SkolemTerm{Functor: name.text}
		if p.peek().kind == tokPunct && p.peek().text == ")" {
			p.advance()
			return st, nil
		}
		for {
			arg, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, arg)
			tk := p.advance()
			if tk.kind == tokPunct && tk.text == "," {
				continue
			}
			if tk.kind == tokPunct && tk.text == ")" {
				return st, nil
			}
			return nil, fmt.Errorf("line %d: expected , or ) in Skolem term, got %q", tk.line, tk.text)
		}
	case t.kind == tokIdent:
		p.advance()
		switch t.text {
		case "true":
			return Const{value.BoolV(true)}, nil
		case "false":
			return Const{value.BoolV(false)}, nil
		case "_":
			p.fresh++
			return Var{Name: fmt.Sprintf("_anon%d", p.fresh)}, nil
		default:
			return Var{Name: t.text}, nil
		}
	case t.kind == tokString:
		p.advance()
		s, err := strconv.Unquote(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad string %s", t.line, t.text)
		}
		return Const{value.Str(s)}, nil
	case t.kind == tokNumber:
		p.advance()
		v, err := value.ParseLiteral(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", t.line, err)
		}
		return Const{v}, nil
	case t.kind == tokPunct && t.text == "-":
		p.advance()
		num := p.advance()
		if num.kind != tokNumber {
			return nil, fmt.Errorf("line %d: expected number after unary minus", num.line)
		}
		v, err := value.ParseLiteral(num.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", num.line, err)
		}
		switch v.K {
		case value.Int:
			return Const{value.IntV(-v.I)}, nil
		default:
			return Const{value.FloatV(-v.F)}, nil
		}
	default:
		return nil, fmt.Errorf("line %d: expected term, got %q", t.line, t.text)
	}
}

// Operator precedence climbing for expressions.
var binaryPrec = map[string]int{
	"or": 1, "and": 2,
	"=": 3, "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
}

func (p *parser) parseExpr(minPrec int) (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		if t.kind == tokPunct {
			op = t.text
		} else if t.kind == tokIdent && (t.text == "and" || t.text == "or") {
			op = t.text
		} else {
			return left, nil
		}
		prec, ok := binaryPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Expr{Kind: ExprBinary, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "-" {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprUnary, Op: "-", Left: operand}, nil
	}
	if t.kind == tokIdent && t.text == "not" {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprUnary, Op: "not", Left: operand}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokString:
		p.advance()
		s, err := strconv.Unquote(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad string %s", t.line, t.text)
		}
		return &Expr{Kind: ExprConst, Val: value.Str(s)}, nil
	case t.kind == tokNumber:
		p.advance()
		v, err := value.ParseLiteral(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", t.line, err)
		}
		return &Expr{Kind: ExprConst, Val: v}, nil
	case t.kind == tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return &Expr{Kind: ExprConst, Val: value.BoolV(true)}, nil
		case "false":
			p.advance()
			return &Expr{Kind: ExprConst, Val: value.BoolV(false)}, nil
		}
		if p.peek2().kind == tokPunct && p.peek2().text == "(" {
			return p.parseCallOrAggregate()
		}
		p.advance()
		return &Expr{Kind: ExprVar, Name: t.text}, nil
	default:
		return nil, fmt.Errorf("line %d: expected expression, got %q", t.line, t.text)
	}
}

func (p *parser) parseCallOrAggregate() (*Expr, error) {
	name := p.advance()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	canonical, isAgg := aggregateOps[name.text]
	if isAgg {
		return p.parseAggregate(name, canonical)
	}
	call := &Expr{Kind: ExprCall, Name: name.text}
	if p.peek().kind == tokPunct && p.peek().text == ")" {
		p.advance()
		return call, nil
	}
	for {
		arg, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		t := p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			return call, nil
		}
		return nil, fmt.Errorf("line %d: expected , or ) in call, got %q", t.line, t.text)
	}
}

// parseAggregate parses sum(W), sum(W,<Z1,Z2>), count(), count(<Z>),
// pack(N,V), msum(W,<Z>), ...
func (p *parser) parseAggregate(name token, canonical string) (*Expr, error) {
	agg := &Aggregate{Op: canonical}
	monotonic := isMonotonicName(name.text)
	// Arguments until ')' — expressions, then optionally <contributors>.
	for {
		t := p.peek()
		if t.kind == tokPunct && t.text == ")" {
			p.advance()
			break
		}
		if t.kind == tokPunct && t.text == "<" {
			p.advance()
			for {
				v := p.advance()
				if v.kind != tokIdent {
					return nil, fmt.Errorf("line %d: expected contributor variable, got %q", v.line, v.text)
				}
				agg.Contributors = append(agg.Contributors, v.text)
				sep := p.advance()
				if sep.kind == tokPunct && sep.text == "," {
					continue
				}
				if sep.kind == tokPunct && sep.text == ">" {
					break
				}
				return nil, fmt.Errorf("line %d: expected , or > in contributor list, got %q", sep.line, sep.text)
			}
			continue
		}
		arg, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if agg.Arg == nil {
			agg.Arg = arg
		} else if agg.Arg2 == nil {
			agg.Arg2 = arg
		} else {
			return nil, fmt.Errorf("line %d: aggregate %s has too many arguments", name.line, name.text)
		}
		t = p.peek()
		if t.kind == tokPunct && t.text == "," {
			p.advance()
		}
	}
	if monotonic && len(agg.Contributors) == 0 {
		return nil, fmt.Errorf("line %d: monotonic aggregate %s requires contributor variables <...>", name.line, name.text)
	}
	if agg.Op == "pack" && (agg.Arg == nil || agg.Arg2 == nil) {
		return nil, fmt.Errorf("line %d: pack requires two arguments (name, value)", name.line)
	}
	if agg.Op != "count" && agg.Op != "pack" && agg.Arg == nil {
		return nil, fmt.Errorf("line %d: aggregate %s requires an argument", name.line, name.text)
	}
	return &Expr{Kind: ExprAggregate, Agg: agg}, nil
}
