package vadalog

import (
	"errors"
	"fmt"

	"repro/internal/fault"
)

// Failure semantics of a reasoning run (DESIGN.md §9).
//
// Every stratum executes under a fault.Guard, so a panic anywhere in the
// sequential evaluation stack surfaces as a typed *fault.PanicError instead
// of crashing the process; shard workers carry their own guard in
// parallel.go because a panic on a pool goroutine would escape the stratum
// guard entirely. What happens *after* a stratum fails is the caller's
// choice, expressed through Options.OnFault.

// FaultPolicy selects how a run reacts to a stratum failing with a
// non-interruption error (injected faults, contained panics, evaluation
// errors — but never cancellation or timeout, which keep their own typed
// sentinels under either policy).
type FaultPolicy int

const (
	// FailFast (the default) returns the stratum's error as-is. The partial
	// Result still accompanies it, as for every engine error.
	FailFast FaultPolicy = iota
	// BestEffort wraps the error in a *PartialError recording how many
	// strata completed before the failure. Strata are evaluated in
	// topological order, so the facts derived by the completed strata are a
	// sound prefix of the saturation: every fact in the partial database is
	// a fact of the full one. Callers (the materialization pipeline) may
	// salvage that prefix instead of discarding the run.
	BestEffort
)

func (p FaultPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("FaultPolicy(%d)", int(p))
	}
}

// ParseFaultPolicy parses the CLI spelling of a policy.
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch s {
	case "fail-fast", "failfast", "":
		return FailFast, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	default:
		return FailFast, fmt.Errorf("vadalog: unknown fault policy %q (want fail-fast or best-effort)", s)
	}
}

// PartialError reports a run that failed partway under FaultPolicy
// BestEffort. The Result returned next to it holds the database saturated
// through CompletedStrata strata — a sound prefix of the full saturation.
// Match the underlying failure with errors.Is/As through Unwrap.
type PartialError struct {
	// CompletedStrata is the number of strata that finished before the
	// failure; the failing stratum is CompletedStrata (0-based).
	CompletedStrata int
	// TotalStrata is the stratum count of the program.
	TotalStrata int
	// Cause is the error the failing stratum returned.
	Cause error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("vadalog: stratum %d of %d failed (first %d strata salvaged): %v",
		e.CompletedStrata+1, e.TotalStrata, e.CompletedStrata, e.Cause)
}

func (e *PartialError) Unwrap() error { return e.Cause }

// siteStratum is probed at the start of every stratum; chaos tests arm it to
// fail or crash the run between strata.
var siteStratum = fault.Site("vadalog/stratum")

// isInterruption reports whether err is a cooperative interruption
// (cancellation or timeout) rather than a failure. Interruptions keep their
// typed sentinels under every fault policy: the caller asked the run to
// stop, so there is nothing to salvage or wrap.
func isInterruption(err error) bool {
	err = canonicalRunErr(err)
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout)
}

// runGuarded evaluates one stratum under the fault guard and applies the
// OnFault policy to its outcome.
func (e *engine) runGuarded(si int, stratum []int) error {
	err := fault.Guard("vadalog/stratum", func() error {
		if err := fault.Hit(siteStratum); err != nil {
			return err
		}
		return e.runStratum(si, stratum)
	})
	if err == nil {
		return nil
	}
	if e.opts.OnFault == BestEffort && !isInterruption(err) {
		return &PartialError{CompletedStrata: si, TotalStrata: len(e.an.Strata), Cause: err}
	}
	return err
}
