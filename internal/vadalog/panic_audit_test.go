package vadalog

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// Panic-audit regressions: user-supplied programs and facts must surface
// errors through the error-returning API; the Must wrappers keep their
// documented panic contract for embedded framework programs only.

func TestParseErrorsNeverPanic(t *testing.T) {
	for _, src := range []string{
		"p(X :- q(X).",      // unbalanced paren
		"p(X) :- q(X)",      // missing period
		":- q(X).",          // empty head
		"p(1,2) :- p(1).",   // arity clash caught downstream, parse is fine
		"p(X) :- #garbage.", // junk token
	} {
		if _, err := Parse(src); err != nil && strings.Contains(err.Error(), "panic") {
			t.Errorf("Parse(%q) leaked a panic through its error: %v", src, err)
		}
	}
	if _, err := Parse("p(X :- q(X)."); err == nil {
		t.Error("malformed program must return a parse error")
	}
}

func TestMustParsePanicContract(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on a malformed embedded program must panic")
		}
	}()
	MustParse("p(X :- q(X).")
}

func TestMustAddFactPanicContract(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("p", value.IntV(1), value.IntV(2))
	if _, err := db.AddFact("p", value.IntV(3)); err == nil {
		t.Error("arity mismatch must return an error through AddFact")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddFact on an arity mismatch must panic")
		}
	}()
	db.MustAddFact("p", value.IntV(3))
}
