package vadalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// TestMonotonicSumConvergesToStratifiedSum: on non-recursive workloads the
// maximal value a monotonic sum emits per group equals the stratified sum
// over distinct contributors — the two aggregate families agree where both
// are defined.
func TestMonotonicSumConvergesToStratifiedSum(t *testing.T) {
	mono := MustParse(`m(G, V) :- s(G, C, W), V = msum(W, <C>).`)
	strat := MustParse(`t(G, V) :- s(G, C, W), V = sum(W).`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase()
		groups := []string{"g1", "g2", "g3"}
		for i := 0; i < 20; i++ {
			// Distinct contributors per insertion: contributor ids unique, so
			// the stratified sum over all rows equals the monotonic sum over
			// distinct contributors.
			db.MustAddFact("s",
				value.Str(groups[rng.Intn(len(groups))]),
				value.IntV(int64(i)),
				value.FloatV(float64(rng.Intn(100))/10),
			)
		}
		mr, err := Run(mono, db, Options{})
		if err != nil {
			return false
		}
		sr, err := Run(strat, db, Options{})
		if err != nil {
			return false
		}
		monoMax := map[string]float64{}
		for _, fct := range mr.DB.Facts("m") {
			v, _ := fct[1].AsFloat()
			if v > monoMax[fct[0].S] {
				monoMax[fct[0].S] = v
			}
		}
		stratV := map[string]float64{}
		for _, fct := range sr.DB.Facts("t") {
			v, _ := fct[1].AsFloat()
			stratV[fct[0].S] = v
		}
		if len(monoMax) != len(stratV) {
			return false
		}
		for g, v := range stratV {
			if math.Abs(monoMax[g]-v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMonotonicCountMatchesDistinctContributors: mcount's maximum equals the
// number of distinct contributor tuples per group.
func TestMonotonicCountMatchesDistinctContributors(t *testing.T) {
	prog := MustParse(`c(G, N) :- s(G, X), N = mcount(<X>).`)
	db := NewDatabase()
	for _, pair := range [][2]string{
		{"g", "a"}, {"g", "b"}, {"g", "a"}, // duplicate contributor a
		{"h", "a"},
	} {
		db.MustAddFact("s", value.Str(pair[0]), value.Str(pair[1]))
	}
	res, err := Run(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxN := map[string]int64{}
	for _, f := range res.DB.Facts("c") {
		if f[1].I > maxN[f[0].S] {
			maxN[f[0].S] = f[1].I
		}
	}
	if maxN["g"] != 2 || maxN["h"] != 1 {
		t.Errorf("counts = %v", maxN)
	}
}

// TestAggregateGroupingByHeadVars: grouping keys are the head variables
// other than the target — a body variable absent from the head is
// aggregated over.
func TestAggregateGroupingByHeadVars(t *testing.T) {
	res := runProg(t, `
		perRegion(R, S) :- sale(R, Shop, V), S = sum(V).
		perShop(R, Shop, S) :- sale(R, Shop, V), S = sum(V).
	`, func(db *Database) {
		db.MustAddFact("sale", value.Str("north"), value.Str("s1"), value.IntV(1))
		db.MustAddFact("sale", value.Str("north"), value.Str("s2"), value.IntV(2))
	})
	if got := res.Output("perRegion"); len(got) != 1 || got[0][1].I != 3 {
		t.Errorf("perRegion = %v", factStrings(got))
	}
	if got := res.Output("perShop"); len(got) != 2 {
		t.Errorf("perShop = %v", factStrings(got))
	}
}
