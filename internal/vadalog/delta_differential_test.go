package vadalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
)

// ---------------------------------------------------------------------------
// Differential wall for incremental maintenance: on randomly generated
// programs, (initial fixpoint → mutation batches through Maintainer.Apply)
// must be result-identical to (mutate the source EDB → full rebuild), at
// every batch boundary, for sequential and parallel engines alike. Batches
// mix additions with retractions, including retraction-only batches that
// drive DRed through heavy over-deletion.
// ---------------------------------------------------------------------------

// generateMaintProgram emits a random program from the incremental class —
// joins, recursion, filters, assignments, Skolem heads, multi-head rules,
// unions — and, a fraction of the time, a program with negation or
// aggregation so the transparent full-recompute fallback is swept by the
// same differential check.
func generateMaintProgram(rng *rand.Rand) string {
	var b strings.Builder
	bins := []string{"e"}     // arity-2 predicates usable as join inputs
	uns := []string{"n"}      // arity-1 predicates
	intBins := []string{"e"}  // arity-2 with integer columns (filters, arithmetic)
	pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }
	idx := 0
	fresh := func(prefix string) string { idx++; return fmt.Sprintf("%s%d", prefix, idx) }

	nRules := 3 + rng.Intn(4)
	for i := 0; i < nRules; i++ {
		switch rng.Intn(10) {
		case 0, 1: // join of two earlier binaries
			p := fresh("j")
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", p, pick(bins), pick(bins))
			bins = append(bins, p)
		case 2: // recursive closure (the DRed stress shape)
			p := fresh("t")
			base := pick(intBins)
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", p, base)
			fmt.Fprintf(&b, "%s(X,Z) :- %s(X,Y), %s(Y,Z).\n", p, p, base)
			bins = append(bins, p)
			intBins = append(intBins, p)
		case 3: // comparison filter over integer columns
			p := fresh("f")
			src := pick(intBins)
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y), X < Y.\n", p, src)
			bins = append(bins, p)
			intBins = append(intBins, p)
		case 4: // arithmetic assignment (the delta-rule front-load hazard)
			p := fresh("a")
			src := pick(intBins)
			fmt.Fprintf(&b, "%s(X,V) :- %s(X,Y), V = Y + 1.\n", p, src)
			bins = append(bins, p)
			intBins = append(intBins, p)
		case 5: // explicit Skolem head (supported incrementally)
			p := fresh("k")
			fmt.Fprintf(&b, "%s(#f%d(X), X) :- %s(X).\n", p, idx, pick(uns))
			bins = append(bins, p)
		case 6: // multi-head rule (one re-derivation guard per head)
			p1, p2 := fresh("h"), fresh("h")
			fmt.Fprintf(&b, "%s(X), %s(X) :- %s(X).\n", p1, p2, pick(uns))
			uns = append(uns, p1, p2)
		case 7: // union of two earlier binaries
			p := fresh("o")
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", p, pick(bins))
			fmt.Fprintf(&b, "%s(X,Y) :- %s(X,Y).\n", p, pick(bins))
			bins = append(bins, p)
		case 8: // unary projection
			p := fresh("u")
			fmt.Fprintf(&b, "%s(X) :- %s(X,Y).\n", p, pick(bins))
			uns = append(uns, p)
		case 9: // outside the incremental class: fallback sweep
			p := fresh("z")
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "%s(X) :- %s(X), not %s(X,X).\n", p, pick(uns), pick(bins))
				uns = append(uns, p)
			} else {
				fmt.Fprintf(&b, "%s(X,V) :- %s(X,Y), V = sum(Y).\n", p, pick(intBins))
				bins = append(bins, p)
			}
		}
	}
	return b.String()
}

// randomMaintEDB seeds the extensional predicates n/1 and e/2.
func randomMaintEDB(rng *rand.Rand) *Database {
	db := NewDatabase()
	nodes := 6 + rng.Intn(5)
	for i := 0; i < nodes; i++ {
		db.MustAddFact("n", value.IntV(int64(i)))
	}
	edges := 10 + rng.Intn(15)
	for i := 0; i < edges; i++ {
		db.MustAddFact("e",
			value.IntV(int64(rng.Intn(nodes))), value.IntV(int64(rng.Intn(nodes))))
	}
	return db
}

// maintBatch draws a mutation batch against the maintainer's current EDB.
// kind 0: mixed additions and retractions; kind 1: retraction-only and heavy
// (up to half the asserted edges at once — the DRed over-deletion stress);
// kind 2: addition-only.
func maintBatch(rng *rand.Rand, m *Maintainer, kind int) Delta {
	d := NewDelta()
	if kind != 1 { // additions
		adds := 1 + rng.Intn(4)
		for i := 0; i < adds; i++ {
			if rng.Intn(4) == 0 {
				d.AddFact("n", value.IntV(int64(rng.Intn(20))))
			} else {
				d.AddFact("e", value.IntV(int64(rng.Intn(12))), value.IntV(int64(rng.Intn(12))))
			}
		}
	}
	if kind != 2 { // retractions, drawn from currently asserted EDB facts
		edges := m.AssertedFacts("e")
		want := 1 + rng.Intn(3)
		if kind == 1 {
			want = 1 + len(edges)/2
		}
		for _, pos := range rng.Perm(len(edges)) {
			if want == 0 {
				break
			}
			d.DelFact("e", edges[pos]...)
			want--
		}
		if kind == 1 {
			nodes := m.AssertedFacts("n")
			if len(nodes) > 0 {
				d.DelFact("n", nodes[rng.Intn(len(nodes))]...)
			}
		}
	}
	return d
}

// applyToEDB folds a delta into the plain EDB mirror kept for the reference
// rebuilds. Deletions first, then additions — the maintainer's own batch
// order.
func applyToEDB(t *testing.T, edb *Database, d Delta) {
	t.Helper()
	for pred, facts := range d.Del {
		r := edb.Relation(pred)
		if r == nil {
			t.Fatalf("reference EDB missing %s", pred)
		}
		if removed := r.Remove(facts); len(removed) != len(facts) {
			t.Fatalf("reference EDB removed %d/%d facts from %s", len(removed), len(facts), pred)
		}
	}
	for pred, facts := range d.Add {
		for _, f := range facts {
			if _, err := edb.AddFact(pred, f...); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMaintainerDifferential is the incremental-maintenance wall: 120
// generated programs, three mutation batches each (mixed, retraction-heavy,
// addition-only), checked against a from-scratch rebuild after every batch,
// at Workers=1 and Workers=8. Zero divergence is the acceptance bar.
func TestMaintainerDifferential(t *testing.T) {
	shrinkShards(t)
	const total = 120
	rng := rand.New(rand.NewSource(23))
	incremental, fallback := 0, 0

	for i := 0; i < total; i++ {
		src := generateMaintProgram(rng)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d does not parse: %v\n%s", i, err, src)
		}
		edb0 := randomMaintEDB(rng)

		// Pre-draw the batches so both worker settings see the same ones.
		// Batches are drawn against the W=1 maintainer's asserted state;
		// asserted EDB evolution is deterministic and worker-independent, so
		// they are valid for W=8 too.
		seqM, err := NewMaintainer(prog, edb0.Clone(), Options{Workers: 1, MaxFacts: 200_000})
		if err != nil {
			t.Fatalf("program %d: maintainer: %v\n%s", i, err, src)
		}
		if seqM.Incremental() {
			incremental++
		} else {
			fallback++
		}

		parM, err := NewMaintainer(prog, edb0.Clone(), Options{Workers: 8, MaxFacts: 200_000})
		if err != nil {
			t.Fatalf("program %d: parallel maintainer: %v\n%s", i, err, src)
		}

		refEDB := edb0.Clone()
		for batch, kind := range []int{0, 1, 2} {
			d := maintBatch(rng, seqM, kind)
			if _, err := seqM.Apply(d); err != nil {
				t.Fatalf("program %d batch %d: %v\n%s", i, batch, err, src)
			}
			if _, err := parM.Apply(d); err != nil {
				t.Fatalf("program %d batch %d (W=8): %v\n%s", i, batch, err, src)
			}

			applyToEDB(t, refEDB, d)
			fresh, err := Run(prog, refEDB.Clone(), Options{Workers: 1, MaxFacts: 200_000})
			if err != nil {
				t.Fatalf("program %d batch %d: reference rebuild: %v\n%s", i, batch, err, src)
			}
			want := fresh.DB.Dump()
			if got := seqM.DB().Dump(); got != want {
				t.Fatalf("program %d batch %d (kind %d): incremental diverges from rebuild\nprogram:\n%s\nincremental:\n%s\nrebuild:\n%s",
					i, batch, kind, src, got, want)
			}
			if got := parM.DB().Dump(); got != want {
				t.Fatalf("program %d batch %d (kind %d): W=8 incremental diverges from rebuild\nprogram:\n%s\nincremental:\n%s\nrebuild:\n%s",
					i, batch, kind, src, got, want)
			}
		}
	}
	if incremental == 0 || fallback == 0 {
		t.Fatalf("sweep did not cover both classes: %d incremental, %d fallback", incremental, fallback)
	}
	t.Logf("120 programs, 3 batches each, W∈{1,8}: zero divergence (%d incremental, %d fallback)",
		incremental, fallback)
}
