package vadalog

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/testutil"
	"repro/internal/value"
)

// stratProgram has (at least) two strata: the transitive closure, then a
// negation over it. The stratum boundary is where the fault sites fire.
var stratProgram = MustParse(`
	path(X,Y) :- edge(X,Y).
	path(X,Z) :- path(X,Y), edge(Y,Z).
	unreached(X) :- node(X), not path(1, X).
`)

func stratDB(links int) *Database {
	db := NewDatabase()
	for i := 1; i <= links; i++ {
		db.MustAddFact("node", value.IntV(int64(i)))
		if i < links {
			db.MustAddFact("edge", value.IntV(int64(i)), value.IntV(int64(i+1)))
		}
	}
	db.MustAddFact("node", value.IntV(0)) // unreached from 1
	return db
}

func TestStratumFaultFailFast(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("vadalog/stratum", fault.Plan{Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(stratProgram, stratDB(5), Options{})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatal("FailFast must not wrap errors in PartialError")
	}
	if res == nil {
		t.Fatal("error return lost the partial result")
	}
}

func TestStratumFaultBestEffortSalvagesPrefix(t *testing.T) {
	defer fault.Reset()
	// Let the first stratum (the closure) complete, fail the second.
	if err := fault.Arm("vadalog/stratum", fault.Plan{Mode: fault.ModeError, After: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(stratProgram, stratDB(5), Options{OnFault: BestEffort})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("PartialError must unwrap to the cause, got %v", err)
	}
	if pe.CompletedStrata < 1 || pe.CompletedStrata >= pe.TotalStrata {
		t.Fatalf("CompletedStrata = %d of %d, want a proper prefix of at least 1", pe.CompletedStrata, pe.TotalStrata)
	}
	// The salvaged prefix holds the full closure but nothing from the
	// failed negation stratum.
	if got := len(res.Output("path")); got != 4+3+2+1 {
		t.Errorf("salvaged closure has %d path facts, want 10", got)
	}
	if got := len(res.Output("unreached")); got != 0 {
		t.Errorf("failed stratum leaked %d unreached facts", got)
	}
}

func TestBestEffortCompleteRunIsUnchanged(t *testing.T) {
	// With no fault armed, BestEffort must be indistinguishable from the
	// default policy.
	want, err := Run(stratProgram, stratDB(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(stratProgram, stratDB(5), Options{OnFault: BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"path", "unreached"} {
		if a, b := fmt.Sprint(want.Output(pred)), fmt.Sprint(got.Output(pred)); a != b {
			t.Errorf("%s differs under BestEffort:\n%s\nvs\n%s", pred, a, b)
		}
	}
}

func TestBestEffortDoesNotWrapInterruptions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, stratProgram, stratDB(50), Options{OnFault: BestEffort})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatal("interruptions must keep their typed sentinel, not become PartialError")
	}
}

func TestStratumPanicContained(t *testing.T) {
	defer fault.Reset()
	checkLeak := testutil.CheckGoroutineLeak(t)
	if err := fault.Arm("vadalog/stratum", fault.Plan{Mode: fault.ModePanic}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(stratProgram, stratDB(5), Options{})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *fault.PanicError", err)
	}
	if pe.Site != "vadalog/stratum" || len(pe.Stack) == 0 {
		t.Errorf("PanicError carries site %q and %d stack bytes", pe.Site, len(pe.Stack))
	}
	if res == nil {
		t.Fatal("contained panic lost the partial result")
	}
	checkLeak()
}

func TestShardPanicContained(t *testing.T) {
	defer fault.Reset()
	shrinkShards(t)
	checkLeak := testutil.CheckGoroutineLeak(t)
	if err := fault.Arm("vadalog/shard", fault.Plan{Mode: fault.ModePanic}); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 200; i++ {
		db.MustAddFact("item", value.IntV(int64(i)))
	}
	prog := MustParse(`pair(X,Y) :- item(X), item(Y).`)
	_, err := Run(prog, db, Options{Workers: 8})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *fault.PanicError (panic on a pool goroutine must not crash)", err)
	}
	if pe.Site != "vadalog/shard" {
		t.Errorf("PanicError site = %q, want vadalog/shard", pe.Site)
	}
	if fault.Fired("vadalog/shard") == 0 {
		t.Fatal("shard site never fired — the test exercised nothing")
	}
	checkLeak()
}

func TestShardErrorInjection(t *testing.T) {
	defer fault.Reset()
	shrinkShards(t)
	checkLeak := testutil.CheckGoroutineLeak(t)
	if err := fault.Arm("vadalog/shard", fault.Plan{Mode: fault.ModeError, After: 3}); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 200; i++ {
		db.MustAddFact("item", value.IntV(int64(i)))
	}
	prog := MustParse(`pair(X,Y) :- item(X), item(Y).`)
	_, err := Run(prog, db, Options{Workers: 4})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	checkLeak()
}

func TestParseFaultPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    FaultPolicy
		wantErr bool
	}{
		{"", FailFast, false},
		{"fail-fast", FailFast, false},
		{"failfast", FailFast, false},
		{"best-effort", BestEffort, false},
		{"besteffort", BestEffort, false},
		{"bogus", FailFast, true},
	}
	for _, tc := range cases {
		got, err := ParseFaultPolicy(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseFaultPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if FailFast.String() != "fail-fast" || BestEffort.String() != "best-effort" {
		t.Error("FaultPolicy.String misspells a policy")
	}
}
