package vadalog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/value"
)

func TestRelationRemove(t *testing.T) {
	r := NewRelation(2)
	facts := []Fact{
		{value.IntV(1), value.Str("a")},
		{value.IntV(2), value.Str("b")},
		{value.IntV(3), value.Str("c")},
		{value.IntV(4), value.Str("d")},
	}
	for _, f := range facts {
		if _, err := r.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	r.ensureIndex(1 << 0) // pre-built index must survive the removal

	removed := r.Remove([]Fact{
		{value.IntV(2), value.Str("b")},
		{value.IntV(9), value.Str("z")},          // absent: skipped
		{value.IntV(2), value.Str("b")},          // duplicate: skipped
		{value.FloatV(3), value.Str("c")},                // wrong kind: not canonical-equal, skipped
		{value.IntV(4), value.Str("d"), value.Str("x")}, // wrong arity: skipped
	})
	if len(removed) != 1 || !tupleEqual(removed[0], facts[1]) {
		t.Fatalf("removed = %v", removed)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// The tail fact is swapped into the vacated slot (survivor order is not
	// preserved; O(k) removal is).
	for i, want := range []Fact{facts[0], facts[3], facts[2]} {
		if !tupleEqual(r.At(i), want) {
			t.Fatalf("at %d: %v want %v", i, r.At(i), want)
		}
	}
	// Dedup and the pre-built index are coherent after the removal.
	if r.Contains(facts[1]) {
		t.Error("removed fact still Contains")
	}
	if !r.Contains(facts[2]) {
		t.Error("surviving fact lost")
	}
	if got := r.Lookup(1<<0, []value.Value{value.IntV(3)}); len(got) != 1 || got[0] != 2 {
		t.Errorf("index lookup after remove = %v, want [2]", got)
	}
	if got := r.Lookup(1<<0, []value.Value{value.IntV(4)}); len(got) != 1 || got[0] != 1 {
		t.Errorf("index lookup of moved fact = %v, want [1]", got)
	}
	if ok, _ := r.Insert(facts[1]); !ok {
		t.Error("re-inserting a removed fact must succeed")
	}
}

// TestRelationRemoveModel drives random insert/remove interleavings against a
// naive map model, checking after every step that membership, lookups, and
// the ascending-positions invariant of the posting lists all hold. This is
// the guard on the O(k) swap-remove bookkeeping: a stale dedup entry or an
// out-of-order posting list here would surface as a missed join or a wrong
// window downstream, far from the cause.
func TestRelationRemoveModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation(2)
		r.ensureIndex(1 << 0)
		r.ensureIndex(1<<0 | 1<<1)
		model := map[[2]int64]bool{}
		mkFact := func() (Fact, [2]int64) {
			k := [2]int64{int64(rng.Intn(12)), int64(rng.Intn(12))}
			return Fact{value.IntV(k[0]), value.IntV(k[1])}, k
		}
		for step := 0; step < 400; step++ {
			if rng.Intn(3) > 0 {
				f, k := mkFact()
				ok, err := r.Insert(f)
				if err != nil {
					t.Fatal(err)
				}
				if ok == model[k] {
					t.Fatalf("seed %d step %d: Insert(%v) new=%v, model says %v", seed, step, f, ok, !model[k])
				}
				model[k] = true
			} else {
				n := 1 + rng.Intn(3)
				var batch []Fact
				var keys [][2]int64
				for i := 0; i < n; i++ {
					f, k := mkFact()
					batch = append(batch, f)
					keys = append(keys, k)
				}
				removed := r.Remove(batch)
				want := 0
				for _, k := range keys {
					if model[k] {
						want++
						delete(model, k)
					}
				}
				if len(removed) != want {
					t.Fatalf("seed %d step %d: Remove removed %d, model says %d", seed, step, len(removed), want)
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("seed %d step %d: Len %d, model %d", seed, step, r.Len(), len(model))
			}
		}
		// Full coherence sweep: every model fact is findable by Contains and
		// both indexes; per-column lookup counts match; positions ascend.
		byFirst := map[int64]int{}
		for k := range model {
			byFirst[k[0]]++
			f := Fact{value.IntV(k[0]), value.IntV(k[1])}
			if !r.Contains(f) {
				t.Fatalf("seed %d: model fact %v lost", seed, f)
			}
			if got := r.Lookup(1<<0|1<<1, f); len(got) != 1 || !tupleEqual(r.At(got[0]), f) {
				t.Fatalf("seed %d: full-mask lookup of %v = %v", seed, f, got)
			}
		}
		for first, want := range byFirst {
			got := r.Lookup(1<<0, []value.Value{value.IntV(first)})
			if len(got) != want {
				t.Fatalf("seed %d: lookup(%d) found %d positions, want %d", seed, first, len(got), want)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("seed %d: posting list for %d not ascending: %v", seed, first, got)
				}
			}
		}
	}
}

func TestReplaceFacts(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("p", value.IntV(2))
	d.MustAddFact("p", value.IntV(1))
	if err := d.ReplaceFacts("p", 1, []Fact{{value.IntV(1)}, {value.IntV(2)}, {value.IntV(1)}}); err != nil {
		t.Fatal(err)
	}
	r := d.Relation("p")
	if r.Len() != 2 || !tupleEqual(r.At(0), Fact{value.IntV(1)}) || !tupleEqual(r.At(1), Fact{value.IntV(2)}) {
		t.Fatalf("replaced relation = %v", r.All())
	}
	if err := d.ReplaceFacts("q", 2, nil); err != nil {
		t.Fatal(err)
	}
	if d.Relation("q").Arity != 2 {
		t.Fatal("new relation arity")
	}
}

// maintainerVsFresh asserts the maintained database equals a fresh full run
// over the maintainer's asserted facts.
func maintainerVsFresh(t *testing.T, m *Maintainer, prog *Program) {
	t.Helper()
	fresh := NewDatabase()
	for pred, er := range m.edb {
		nr := NewRelation(er.Arity)
		for _, f := range er.All() {
			nr.Insert(f) //nolint:errcheck // arity fixed
		}
		fresh.rels[pred] = nr
	}
	if _, err := RunInPlace(prog, fresh, Options{}); err != nil {
		t.Fatal(err)
	}
	got, want := m.DB().Dump(), fresh.Dump()
	if got != want {
		t.Fatalf("maintained database diverges from full rebuild:\n--- maintained ---\n%s\n--- full ---\n%s", got, want)
	}
}

func TestMaintainerTransitiveClosure(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		db.MustAddFact("edge", value.Str(e[0]), value.Str(e[1]))
	}
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Incremental() {
		t.Fatalf("tc program must be incremental, got %q", m.Unsupported())
	}
	if m.DB().Count("tc") != 6 {
		t.Fatalf("initial tc = %d", m.DB().Count("tc"))
	}

	// Retract the middle edge: the chain splits, only a->b and c->d remain.
	d := NewDelta()
	d.DelFact("edge", value.Str("b"), value.Str("c"))
	stats, err := m.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recomputed {
		t.Error("incremental path expected")
	}
	if m.DB().Count("tc") != 2 {
		t.Fatalf("tc after retraction = %d, want 2", m.DB().Count("tc"))
	}
	if stats.Deleted == 0 || stats.OverDeleted < stats.Deleted {
		t.Errorf("stats = %+v", stats)
	}
	maintainerVsFresh(t, m, prog)

	// Mixed batch: remove one edge, add a bridging one.
	d = NewDelta()
	d.DelFact("edge", value.Str("a"), value.Str("b"))
	d.AddFact("edge", value.Str("d"), value.Str("c"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	maintainerVsFresh(t, m, prog)

	// Close a cycle and then reopen it.
	d = NewDelta()
	d.AddFact("edge", value.Str("c"), value.Str("d"))
	d.AddFact("edge", value.Str("d"), value.Str("d"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	maintainerVsFresh(t, m, prog)
	d = NewDelta()
	d.DelFact("edge", value.Str("d"), value.Str("d"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerRederivation: a fact with two derivations survives losing
// one of them (the DRed re-derive phase must restore it).
func TestMaintainerRederivation(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	// Two disjoint paths a->z: via b and via c.
	for _, e := range [][2]string{{"a", "b"}, {"b", "z"}, {"a", "c"}, {"c", "z"}} {
		db.MustAddFact("edge", value.Str(e[0]), value.Str(e[1]))
	}
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.DelFact("edge", value.Str("a"), value.Str("b"))
	stats, err := m.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	// tc(a,z) is over-deleted through the lost path but re-derived via c.
	if stats.Rederived == 0 {
		t.Errorf("expected re-derivations, stats = %+v", stats)
	}
	if !m.DB().Relation("tc").Contains(Fact{value.Str("a"), value.Str("z")}) {
		t.Error("tc(a,z) lost despite surviving derivation")
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerEDBOverlap: a fact both asserted and derivable only
// disappears when it loses both supports.
func TestMaintainerEDBOverlap(t *testing.T) {
	prog := MustParse(`p(X) :- q(X).`)
	db := NewDatabase()
	db.MustAddFact("q", value.IntV(1))
	db.MustAddFact("p", value.IntV(1)) // also asserted directly
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Retracting the assertion keeps p(1): still derived from q(1).
	d := NewDelta()
	d.DelFact("p", value.IntV(1))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !m.DB().Relation("p").Contains(Fact{value.IntV(1)}) {
		t.Fatal("p(1) must survive via derivation")
	}
	maintainerVsFresh(t, m, prog)

	// Retracting q(1) now removes the last support.
	d = NewDelta()
	d.DelFact("q", value.IntV(1))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("p") != 0 {
		t.Fatal("p(1) must fall with its last support")
	}
	maintainerVsFresh(t, m, prog)

	// Symmetric case: retracting the EDB support of a fact that is also
	// asserted keeps the assertion.
	d = NewDelta()
	d.AddFact("q", value.IntV(2))
	d.AddFact("p", value.IntV(2))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	d = NewDelta()
	d.DelFact("q", value.IntV(2))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !m.DB().Relation("p").Contains(Fact{value.IntV(2)}) {
		t.Fatal("asserted p(2) must survive losing its derivation")
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerAssignmentKinds: rules with assignment targets take the
// in-place / verbatim transformation paths, and numeric kinds stay exact.
func TestMaintainerAssignmentKinds(t *testing.T) {
	prog := MustParse(`r(X, Y) :- p(X), Y = X + 1.`)
	db := NewDatabase()
	db.MustAddFact("p", value.IntV(1))
	db.MustAddFact("p", value.FloatV(1))
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("r") != 2 {
		t.Fatalf("r count = %d, want 2 (Int and Float results are distinct facts)", m.DB().Count("r"))
	}
	d := NewDelta()
	d.DelFact("p", value.IntV(1))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	r := m.DB().Relation("r")
	if r.Contains(Fact{value.IntV(1), value.IntV(2)}) {
		t.Error("Int result must be retracted with its support")
	}
	if !r.Contains(Fact{value.FloatV(1), value.FloatV(2)}) {
		t.Error("Float result must survive: its support was not deleted")
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerSkolemHeads: explicit linker Skolem heads are in the
// incremental class (handled by the verbatim re-derivation fallback).
func TestMaintainerSkolemHeads(t *testing.T) {
	prog := MustParse(`
		link(#l(X), X) :- src(X).
		holder(H) :- link(H, X), keep(X).
	`)
	db := NewDatabase()
	db.MustAddFact("src", value.Str("a"))
	db.MustAddFact("src", value.Str("b"))
	db.MustAddFact("keep", value.Str("a"))
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Incremental() {
		t.Fatalf("explicit Skolem heads must stay incremental, got %q", m.Unsupported())
	}
	d := NewDelta()
	d.DelFact("src", value.Str("b"))
	d.AddFact("keep", value.Str("b")) // no src(b) anymore: no holder via b
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	maintainerVsFresh(t, m, prog)
	d = NewDelta()
	d.DelFact("src", value.Str("a"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("holder") != 0 {
		t.Error("holder must fall with src(a)")
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerFallback: programs outside the incremental class are
// maintained by transparent full recomputation.
func TestMaintainerFallback(t *testing.T) {
	cases := []struct {
		name, src, reason string
	}{
		{"negation", `p(X) :- q(X), not r(X).`, "negation"},
		{"aggregation", `s(G, T) :- q(G, V), T = sum(V).`, "aggregation"},
		{"monotonic aggregation", `s(G, T) :- q(G, V), T = msum(V, <V>).`, "aggregation"},
		{"existential", `p(X, Z) :- q(X).`, "existential"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := MustParse(tc.src)
			db := NewDatabase()
			db.MustAddFact("q", value.Str("g"), value.IntV(3))
			db.MustAddFact("q", value.Str("g"), value.IntV(5))
			if tc.name == "negation" || tc.name == "existential" {
				db = NewDatabase()
				db.MustAddFact("q", value.IntV(1))
				db.MustAddFact("q", value.IntV(2))
				db.MustAddFact("r", value.IntV(2))
			}
			m, err := NewMaintainer(prog, db, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if m.Incremental() {
				t.Fatal("program must be outside the incremental class")
			}
			if !strings.Contains(m.Unsupported(), tc.reason) {
				t.Fatalf("reason = %q, want %q", m.Unsupported(), tc.reason)
			}
			d := NewDelta()
			d.DelFact("q", db.Relation("q").At(0)...)
			stats, err := m.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Recomputed {
				t.Error("fallback batch must report Recomputed")
			}
			maintainerVsFresh(t, m, prog)
		})
	}
}

func TestMaintainerValidation(t *testing.T) {
	prog := MustParse(`tc(X,Y) :- edge(X,Y).`)
	db := NewDatabase()
	db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.DB().Dump()

	// Retracting a fact that is not asserted (even one that is derived).
	d := NewDelta()
	d.DelFact("tc", value.Str("a"), value.Str("b"))
	if _, err := m.Apply(d); err == nil {
		t.Error("retracting a derived-only fact must fail")
	}
	// Retracting an absent fact.
	d = NewDelta()
	d.DelFact("edge", value.Str("x"), value.Str("y"))
	if _, err := m.Apply(d); err == nil {
		t.Error("retracting an absent fact must fail")
	}
	// Arity mismatch on assertion.
	d = NewDelta()
	d.AddFact("edge", value.Str("only-one"))
	if _, err := m.Apply(d); err == nil {
		t.Error("arity mismatch must fail")
	}
	if got := m.DB().Dump(); got != before {
		t.Fatal("rejected batches must leave the database untouched")
	}
	// An empty batch is a no-op.
	stats, err := m.Apply(NewDelta())
	if err != nil || stats.Added != 0 || stats.Deleted != 0 {
		t.Fatalf("empty batch: %+v, %v", stats, err)
	}
}

// TestMaintainerFaultRestore: an injected failure mid-batch rolls the
// maintained database back to exactly its pre-batch state.
func TestMaintainerFaultRestore(t *testing.T) {
	defer fault.Reset()
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	for _, after := range []int{1, 2, 3} {
		fault.Reset()
		db := NewDatabase()
		for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
			db.MustAddFact("edge", value.Str(e[0]), value.Str(e[1]))
		}
		m, err := NewMaintainer(prog, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		before := m.DB().Dump()
		if err := fault.Arm("vadalog/delta", fault.Plan{Mode: fault.ModeError, After: after}); err != nil {
			t.Fatal(err)
		}
		d := NewDelta()
		d.DelFact("edge", value.Str("b"), value.Str("c"))
		d.AddFact("edge", value.Str("d"), value.Str("e"))
		if _, err := m.Apply(d); err == nil {
			t.Fatalf("after=%d: armed fault must fail the batch", after)
		}
		if got := m.DB().Dump(); got != before {
			t.Fatalf("after=%d: failed batch must restore the database:\n--- got ---\n%s\n--- want ---\n%s", after, got, before)
		}
		// The maintainer stays usable: the same batch succeeds once disarmed.
		fault.Reset()
		if _, err := m.Apply(d); err != nil {
			t.Fatalf("after=%d: post-recovery batch: %v", after, err)
		}
		maintainerVsFresh(t, m, prog)
	}
}

// TestMaintainerPanicContained: a panic-mode fault is contained by the
// guard, surfaces as an error, and the rollback still runs.
func TestMaintainerPanicContained(t *testing.T) {
	defer fault.Reset()
	prog := MustParse(`tc(X,Y) :- edge(X,Y).`)
	db := NewDatabase()
	db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.DB().Dump()
	if err := fault.Arm("vadalog/delta", fault.Plan{Mode: fault.ModePanic, After: 2}); err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.AddFact("edge", value.Str("b"), value.Str("c"))
	if _, err := m.Apply(d); err == nil {
		t.Fatal("panic fault must surface as an error")
	}
	if got := m.DB().Dump(); got != before {
		t.Fatal("panicked batch must restore the database")
	}
}

// TestDeltaProgramShapes pins the program transformations.
func TestDeltaProgramShapes(t *testing.T) {
	prog := MustParse(`
		base(1, 2).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
		r(X, Y) :- p(X), Y = X + 1.
	`)
	del := buildDeletionProgram(prog)
	// Fact rule contributes nothing; tc rule has two atom occurrences; the
	// assignment rule one.
	if len(del.Rules) != 3 {
		t.Fatalf("deletion program has %d rules, want 3:\n%v", len(del.Rules), del.Rules)
	}
	// tc variants: delta atom front-loaded.
	if del.Rules[0].Body[0].Atom.Pred != delPrefix+"tc" || del.Rules[0].Head[0].Pred != delPrefix+"tc" {
		t.Errorf("variant 0 = %v", del.Rules[0])
	}
	if del.Rules[1].Body[0].Atom.Pred != delPrefix+"edge" {
		t.Errorf("variant 1 = %v", del.Rules[1])
	}
	// Assignment rule: X is p's var and an arithmetic source but not an
	// assignment target, so fronting is allowed... unless Y were in p. Y is
	// the target and does not appear in p(X), so this fronts too.
	if del.Rules[2].Body[0].Atom.Pred != delPrefix+"p" {
		t.Errorf("variant 2 = %v", del.Rules[2])
	}

	cand := buildRederivationProgram(prog)
	if len(cand.Rules) != 3 {
		t.Fatalf("re-derivation program has %d rules, want 3:\n%v", len(cand.Rules), cand.Rules)
	}
	// Fact rule verbatim.
	if len(cand.Rules[0].Body) != 0 {
		t.Errorf("fact rule must stay verbatim: %v", cand.Rules[0])
	}
	// tc rule guarded by cand·tc.
	if cand.Rules[1].Body[0].Atom.Pred != candPrefix+"tc" {
		t.Errorf("guarded rule = %v", cand.Rules[1])
	}
	// Assignment-target head variable: verbatim (unguardable).
	if len(cand.Rules[2].Body) != 2 || cand.Rules[2].Body[0].Kind != LitAtom || cand.Rules[2].Body[0].Atom.Pred != "p" {
		t.Errorf("assignment rule must stay verbatim: %v", cand.Rules[2])
	}

	// A rule whose delta atom's variable is an assignment target keeps the
	// delta atom in place (no fronting).
	prog2 := MustParse(`out(Y) :- a(X), b(Y), Y = X + 1.`)
	del2 := buildDeletionProgram(prog2)
	if len(del2.Rules) != 2 {
		t.Fatalf("del2 rules = %d", len(del2.Rules))
	}
	// Variant for a(X): frontable (X is not a target).
	if del2.Rules[0].Body[0].Atom.Pred != delPrefix+"a" {
		t.Errorf("a-variant = %v", del2.Rules[0])
	}
	// Variant for b(Y): Y is a target, so the del atom stays at position 1.
	if del2.Rules[1].Body[0].Atom.Pred != "a" || del2.Rules[1].Body[1].Atom.Pred != delPrefix+"b" {
		t.Errorf("b-variant = %v", del2.Rules[1])
	}
	// And the rule is unguardable (head var Y is a target).
	cand2 := buildRederivationProgram(prog2)
	if len(cand2.Rules) != 1 || len(cand2.Rules[0].Body) != 3 {
		t.Errorf("cand2 = %v", cand2.Rules)
	}

	// Multi-head guardable rule: one variant per head.
	prog3 := MustParse(`h1(X), h2(X) :- p(X).`)
	cand3 := buildRederivationProgram(prog3)
	if len(cand3.Rules) != 2 ||
		cand3.Rules[0].Body[0].Atom.Pred != candPrefix+"h1" ||
		cand3.Rules[1].Body[0].Atom.Pred != candPrefix+"h2" ||
		len(cand3.Rules[0].Head) != 2 {
		t.Errorf("cand3 = %v", cand3.Rules)
	}
}

// TestMaintainerNewPredicates: assertions may introduce predicates the
// program never mentions; they are maintained as plain extensional data.
func TestMaintainerNewPredicates(t *testing.T) {
	prog := MustParse(`tc(X,Y) :- edge(X,Y).`)
	db := NewDatabase()
	db.MustAddFact("edge", value.Str("a"), value.Str("b"))
	m, err := NewMaintainer(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.AddFact("meta", value.Str("k"), value.Str("v"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("meta") != 1 {
		t.Fatal("new predicate must be stored")
	}
	d = NewDelta()
	d.DelFact("meta", value.Str("k"), value.Str("v"))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if m.DB().Count("meta") != 0 {
		t.Fatal("new predicate must be retractable")
	}
	maintainerVsFresh(t, m, prog)
}

// TestMaintainerWorkers: the maintainer takes the parallel evaluation path
// too and agrees with the sequential result.
func TestMaintainerWorkers(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	for i := int64(0); i < 12; i++ {
		db.MustAddFact("edge", value.IntV(i), value.IntV(i+1))
	}
	m, err := NewMaintainer(prog, db, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	d.DelFact("edge", value.IntV(5), value.IntV(6))
	d.AddFact("edge", value.IntV(12), value.IntV(0))
	if _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	maintainerVsFresh(t, m, prog)
}
