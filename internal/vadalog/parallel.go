package vadalog

// Parallel semi-naive evaluation.
//
// With Options.Workers >= 2 the engine evaluates each rule by partitioning
// the driver window — the delta window of the designated occurrence in
// semi-naive rounds, the first join's window otherwise — into contiguous
// position shards that a fixed pool of worker goroutines drains. While the
// shards run, the database is strictly read-only: every hash index a rule
// can touch is built up front (prewarmIndexes), and emitted facts go to
// per-shard buffers instead of the relations. At the barrier the buffers are
// deduplicated and inserted in shard index order.
//
// Determinism. The shard plan depends only on the window size, never on the
// worker count, and the merge consumes shards in index order, so the
// database contents after every rule evaluation — and therefore the whole
// fixpoint trajectory — are identical for every Workers >= 2. Relative to
// the sequential engine the derived fact *set* is also identical: deferring
// inserts to the barrier only delays self-derived matches to the next
// semi-naive round, which the fixpoint loop absorbs. Two constructs are
// order-sensitive and therefore always evaluated sequentially, even in a
// parallel run: monotonic aggregates (their running emissions depend on the
// contribution order) and provenance recording (the "first" derivation
// needs a global insertion order).

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/value"
)

// siteShard is probed at the start of every shard execution; a panic
// injected here lands on a pool goroutine, which is exactly the crash the
// per-shard guard below must contain.
var siteShard = fault.Site("vadalog/shard")

// atomicBool is the cooperative cancellation flag shared by the shards of
// one rule evaluation (aliased so engine.go needs no sync/atomic import).
type atomicBool = atomic.Bool

// errEvalCancelled aborts a shard after another shard of the same
// evaluation failed; it is swallowed by runShards, never returned to callers.
var errEvalCancelled = errors.New("vadalog: evaluation cancelled")

// workerPool is a fixed set of goroutines executing submitted closures. One
// pool lives for the duration of a reasoning run (or one incremental
// propagation) and is reused across every rule evaluation in it.
type workerPool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{workers: workers, tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
}

// runShards executes fn(0) … fn(shards-1) on the pool and waits for all of
// them. Shards are claimed from an atomic counter, so any number of shards
// works with any pool size. On failure the lowest-indexed error among the
// shards that ran is returned, the cancel flag is raised so in-flight
// shards abort cooperatively, and unclaimed shards are skipped. A non-nil
// ctx is polled at every shard boundary: once it is done, no further shard
// starts and its error surfaces like a shard failure (run cancellation
// therefore interrupts between shards, not only between rounds).
func (p *workerPool) runShards(ctx context.Context, shards int, cancel *atomicBool, fn func(shard int) error) error {
	if shards <= 0 {
		return nil
	}
	errs := make([]error, shards)
	var next atomic.Int64
	var done sync.WaitGroup
	body := func() {
		defer done.Done()
		for {
			i := int(next.Add(1) - 1)
			if i >= shards || cancel.Load() {
				return
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					cancel.Store(true)
					return
				}
			}
			// The guard contains panics from the shard body: a panic on a
			// pool goroutine would otherwise kill the process (no recover
			// above us on this stack) and strand done.Wait forever. It
			// surfaces as a *fault.PanicError like any shard failure.
			err := fault.Guard("vadalog/shard", func() error {
				if err := fault.Hit(siteShard); err != nil {
					return err
				}
				return fn(i)
			})
			if err != nil {
				if !errors.Is(err, errEvalCancelled) {
					errs[i] = err
				}
				cancel.Store(true)
				return
			}
		}
	}
	n := min(p.workers, shards)
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- body
	}
	done.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// startPool creates the worker pool when the run asks for parallelism.
// Provenance runs stay sequential (Options.Provenance documents why).
func (e *engine) startPool() {
	if e.opts.Workers > 1 && e.prov == nil && !e.hasMonotonicAgg() {
		e.pool = newWorkerPool(e.opts.Workers)
	}
}

// hasMonotonicAgg reports whether any compiled rule carries a monotonic
// aggregate. Such programs evaluate sequentially regardless of
// Options.Workers: a running aggregate's emissions depend on the order its
// contributions arrive, and that order is shaped by the insertion order of
// every upstream relation — which deferred shard-order merging cannot
// reproduce. A per-rule fallback would not be enough; only the fully
// sequential engine preserves the emission set.
func (e *engine) hasMonotonicAgg() bool {
	for _, cr := range e.rules {
		for _, st := range cr.steps {
			if st.kind == stepAgg {
				return true
			}
		}
	}
	return false
}

func (e *engine) stopPool() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// minShardSize is the smallest driver window worth splitting: below it, the
// fan-out barrier costs more than the join work it distributes. maxShards
// bounds the plan so the merge stays cheap on huge windows. Variables rather
// than constants so tests can shrink them to force the parallel path on
// small inputs; production code never mutates them.
var (
	minShardSize = 512
	maxShards    = 16
)

// shardPlan partitions n driver positions into contiguous [lo,hi) ranges.
// The plan is a function of n alone — never of the worker count — so the
// shard boundaries, and with them every merge order, are reproducible for
// any Workers setting.
func shardPlan(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	shards := n / minShardSize
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	out := make([][2]int, 0, shards)
	for i := 0; i < shards; i++ {
		lo, hi := i*n/shards, (i+1)*n/shards
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// prewarmIndexes builds every hash index the rule's steps can consult, so
// that concurrent shard evaluation never mutates relation state (lazy index
// construction is the only write on the read path).
func (e *engine) prewarmIndexes(cr *cRule) {
	for i := range cr.steps {
		st := &cr.steps[i]
		if st.kind == stepJoin || st.kind == stepNeg {
			e.db.Relation(st.pred).warmIndex(st.staticMask)
		}
	}
}

// pendingFact is a head fact emitted by a shard, buffered until the merge
// barrier.
type pendingFact struct {
	pred string
	f    Fact
}

// evalRuleSharded evaluates a rule by sharding the driver step's window
// across the worker pool and merging the per-shard emissions at the barrier.
func (e *engine) evalRuleSharded(cr *cRule, w windows, driver int) (int, error) {
	st := &cr.steps[driver]
	rel := e.db.Relation(st.pred)
	lo, hi := w.rangeFor(driver, st.pred)
	if hi < 0 {
		hi = rel.Len()
	}
	if lo >= hi {
		return 0, nil
	}
	// Small driver windows are not worth the fan-out, buffering and merge:
	// evaluate them sequentially. The threshold compares against the window
	// size alone, so the chosen path — like the shard plan itself — never
	// depends on the worker count.
	if hi-lo < 2*minShardSize {
		return e.evalRule(cr, w)
	}
	plan := shardPlan(hi - lo)
	e.prewarmIndexes(cr)
	buffers := make([][]pendingFact, len(plan))
	// Per-shard observability counters, summed after the barrier. The shard
	// plan is worker-count independent, so the sums are too.
	firings := make([]int64, len(plan))
	probes := make([]int64, len(plan))
	var cancel atomicBool
	// MaxFacts valve: without it, a rule that overshoots the fact limit
	// would buffer its entire (possibly enormous) match set before the merge
	// barrier gets a chance to error. Buffered counts include duplicates the
	// sequential engine would never count, so overshooting the budget is not
	// by itself an error — it aborts the fan-out and falls back to exact
	// sequential evaluation below.
	budget := int64(-1)
	if e.opts.MaxFacts > 0 {
		budget = int64(e.opts.MaxFacts-e.derived) + 1
	}
	var pending atomic.Int64
	var overBudget atomicBool
	err := e.pool.runShards(e.ctx, len(plan), &cancel, func(s int) error {
		var buf []pendingFact
		c := &evalCtx{
			e: e, cr: cr, w: w,
			slots:     make([]value.Value, len(cr.slots)),
			limit:     len(cr.steps),
			shardStep: driver,
			shardLo:   lo + plan[s][0],
			shardHi:   lo + plan[s][1],
			cancelled: &cancel,
		}
		c.onMatch = func() error {
			return headFacts(cr, c.slots, func(pred string, f Fact) error {
				if budget >= 0 && pending.Add(1) > budget {
					overBudget.Store(true)
					return errEvalCancelled
				}
				buf = append(buf, pendingFact{pred: pred, f: f})
				return nil
			})
		}
		err := c.step(0)
		firings[s], probes[s] = c.firings, c.probes
		if err != nil {
			return err
		}
		buffers[s] = buf
		return nil
	})
	for s := range plan {
		e.curFirings += firings[s]
		e.curProbes += probes[s]
	}
	if err != nil {
		return 0, err
	}
	if overBudget.Load() {
		// Pending emissions exceed the remaining budget. Inserts are
		// deduplicated, so discarding the buffers and re-deriving
		// sequentially is safe, and it counts new facts exactly: the re-run
		// either completes under the limit or reports the limit error with
		// the sequential engine's precise accounting.
		return e.evalRule(cr, w)
	}
	return e.mergePending(buffers)
}

// mergePending inserts the shard buffers in shard index order. The shard
// plan is a function of the window size alone and each buffer preserves its
// shard's visit order, so the insertion order — and with it the relation
// contents after every rule evaluation — is identical for every worker
// count, without any sorting at the barrier. Insert deduplicates against
// both earlier buffers and the existing relations.
func (e *engine) mergePending(buffers [][]pendingFact) (int, error) {
	inserted := 0
	for _, buf := range buffers {
		for _, p := range buf {
			added, err := e.db.Relation(p.pred).Insert(p.f)
			if err != nil {
				return inserted, err
			}
			if added {
				inserted++
				e.derived++
				if e.opts.MaxFacts > 0 && e.derived > e.opts.MaxFacts {
					return inserted, errMaxFacts(e.opts.MaxFacts)
				}
			}
		}
	}
	return inserted, nil
}

// evalStratifiedAggSharded runs the collect phase of a stratified aggregate
// over sharded windows with per-shard accumulator maps, merges them in shard
// order, and emits the groups exactly like the sequential path. Integer
// aggregates merge exactly; float sums and products re-associate, but the
// worker-count-independent shard plan keeps results reproducible for every
// Workers >= 2.
func (e *engine) evalStratifiedAggSharded(cr *cRule, driver int) (int, error) {
	st := &cr.steps[driver]
	rel := e.db.Relation(st.pred)
	plan := shardPlan(rel.Len())
	if plan == nil {
		return e.emitAggGroups(cr, map[string]*aggAccum{})
	}
	e.prewarmIndexes(cr)
	shardGroups := make([]map[string]*aggAccum, len(plan))
	firings := make([]int64, len(plan))
	probes := make([]int64, len(plan))
	var cancel atomicBool
	err := e.pool.runShards(e.ctx, len(plan), &cancel, func(s int) error {
		groups := map[string]*aggAccum{}
		c := &evalCtx{
			e: e, cr: cr, w: fullWindows{},
			slots:       make([]value.Value, len(cr.slots)),
			limit:       cr.aggStep,
			lenientCond: true,
			shardStep:   driver,
			shardLo:     plan[s][0],
			shardHi:     plan[s][1],
			cancelled:   &cancel,
		}
		c.onMatch = func() error { return accumulateGroup(cr, c.slots, groups) }
		err := c.step(0)
		firings[s], probes[s] = c.firings, c.probes
		if err != nil {
			return err
		}
		shardGroups[s] = groups
		return nil
	})
	for s := range plan {
		e.curFirings += firings[s]
		e.curProbes += probes[s]
	}
	if err != nil {
		return 0, err
	}
	op := cr.steps[cr.aggStep].agg.Op
	merged := map[string]*aggAccum{}
	for _, sg := range shardGroups {
		for gkey, acc := range sg {
			if dst, ok := merged[gkey]; ok {
				dst.merge(acc, op)
			} else {
				merged[gkey] = acc
			}
		}
	}
	return e.emitAggGroups(cr, merged)
}

// merge folds the accumulator b into a. Every operator merges associatively
// over disjoint match partitions; min/max guard the "no updates yet" state
// through the update count.
func (a *aggAccum) merge(b *aggAccum, op string) {
	switch op {
	case "count":
		a.count += b.count
	case "sum", "avg":
		a.sum += b.sum
		a.count += b.count
	case "prod":
		a.prod *= b.prod
		a.count += b.count
	case "min":
		if b.count > 0 && (a.count == 0 || value.Compare(b.min, a.min) < 0) {
			a.min = b.min
		}
		a.count += b.count
	case "max":
		if b.count > 0 && (a.count == 0 || value.Compare(b.max, a.max) > 0) {
			a.max = b.max
		}
		a.count += b.count
	case "pack":
		a.packItems = append(a.packItems, b.packItems...)
		a.count += b.count
	}
	if !b.allInts {
		a.allInts = false
	}
}
