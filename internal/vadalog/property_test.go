package vadalog

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/value"
)

// randomEdgeDB builds a database with a random edge relation over n nodes.
func randomEdgeDB(seed int64, n, edges int) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase()
	for i := 0; i < edges; i++ {
		db.MustAddFact("edge", value.IntV(int64(rng.Intn(n))), value.IntV(int64(rng.Intn(n))))
	}
	return db
}

// nativeClosure computes the transitive closure with a plain BFS.
func nativeClosure(db *Database) map[[2]int64]bool {
	adj := map[int64][]int64{}
	for _, f := range db.Facts("edge") {
		adj[f[0].I] = append(adj[f[0].I], f[1].I)
	}
	out := map[[2]int64]bool{}
	for src := range adj {
		seen := map[int64]bool{}
		stack := append([]int64(nil), adj[src]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]int64{src, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	return out
}

// TestTransitiveClosureMatchesNative is the engine's core soundness and
// completeness property: the Datalog fixpoint agrees with a native graph
// traversal on random graphs.
func TestTransitiveClosureMatchesNative(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	f := func(seed int64) bool {
		db := randomEdgeDB(seed, 15, 30)
		res, err := Run(prog, db, Options{})
		if err != nil {
			return false
		}
		want := nativeClosure(db)
		got := map[[2]int64]bool{}
		for _, fa := range res.DB.Facts("tc") {
			got[[2]int64{fa[0].I, fa[1].I}] = true
		}
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNaiveEquivalentToSemiNaive: the two evaluation strategies derive the
// same facts on random recursive workloads (ablation A2's correctness
// precondition).
func TestNaiveEquivalentToSemiNaive(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
		top(X) :- tc(X, Y), not tc(Y, X).
	`)
	f := func(seed int64) bool {
		db := randomEdgeDB(seed, 12, 25)
		a, err := Run(prog, db, Options{})
		if err != nil {
			return false
		}
		b, err := Run(prog, db, Options{Naive: true})
		if err != nil {
			return false
		}
		return a.DB.Dump() == b.DB.Dump()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMonotonicSumOrderIndependence: the final msum-derived facts do not
// depend on fact insertion order (the accumulator semantics is a set fold).
func TestMonotonicSumOrderIndependence(t *testing.T) {
	prog := MustParse(`
		reach(X, V) :- seed(X), V = msum(1, <X>).
		big(Y, V) :- owns(X, Y, W), V = msum(W, <X>), V > 0.5.
	`)
	type edge struct {
		x, y string
		w    float64
	}
	edges := []edge{
		{"a", "t", 0.3}, {"b", "t", 0.3}, {"c", "t", 0.2},
		{"a", "u", 0.6}, {"b", "u", 0.1},
	}
	run := func(perm []int) string {
		db := NewDatabase()
		db.MustAddFact("seed", value.Str("s"))
		for _, i := range perm {
			e := edges[i]
			db.MustAddFact("owns", value.Str(e.x), value.Str(e.y), value.FloatV(e.w))
		}
		res, err := Run(prog, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Compare only the final (maximal) aggregate per group: monotonic
		// aggregation emits intermediate sums whose order varies.
		max := map[string]float64{}
		for _, f := range res.DB.Facts("big") {
			v, _ := f[1].AsFloat()
			if v > max[f[0].S] {
				max[f[0].S] = v
			}
		}
		return fmt.Sprint(max)
	}
	base := run([]int{0, 1, 2, 3, 4})
	for _, perm := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 3, 0, 4, 2}} {
		if got := run(perm); got != base {
			t.Errorf("order dependence: %s vs %s (perm %v)", got, base, perm)
		}
	}
}

func TestMonotonicMinMax(t *testing.T) {
	res := runProg(t, `
		cheapest(S, M) :- offer(S, P), M = mmin(P, <P>).
		priciest(S, M) :- offer(S, P), M = mmax(P, <P>).
	`, func(db *Database) {
		for _, p := range []int64{30, 10, 20} {
			db.MustAddFact("offer", value.Str("shop"), value.IntV(p))
		}
	})
	// Monotonic aggregates emit running values; the extremes must be there.
	sawMin, sawMax := false, false
	for _, f := range res.Output("cheapest") {
		if f[1].I == 10 {
			sawMin = true
		}
	}
	for _, f := range res.Output("priciest") {
		if f[1].I == 30 {
			sawMax = true
		}
	}
	if !sawMin || !sawMax {
		t.Errorf("extremes missing: cheapest=%v priciest=%v", res.Output("cheapest"), res.Output("priciest"))
	}
}

func TestStratifiedAvgAndProd(t *testing.T) {
	res := runProg(t, `
		average(G, A) :- sample(G, V), A = avg(V).
		product(G, P) :- sample(G, V), P = prod(V).
	`, func(db *Database) {
		db.MustAddFact("sample", value.Str("g"), value.IntV(2))
		db.MustAddFact("sample", value.Str("g"), value.IntV(4))
		db.MustAddFact("sample", value.Str("g"), value.IntV(6))
	})
	if got := res.Output("average")[0][1]; got.F != 4 {
		t.Errorf("avg = %v", got)
	}
	if got := res.Output("product")[0][1]; got.I != 48 {
		t.Errorf("prod = %v", got)
	}
}

func TestPackAggregate(t *testing.T) {
	res := runProg(t, `
		packed(G, P) :- attr(G, N, V), P = pack(N, V).
	`, func(db *Database) {
		db.MustAddFact("attr", value.Str("n1"), value.Str("name"), value.Str("acme"))
		db.MustAddFact("attr", value.Str("n1"), value.Str("cap"), value.IntV(100))
	})
	got := res.Output("packed")[0][1].S
	if got != "cap=100|name=acme" {
		t.Errorf("pack = %q", got)
	}
}

func TestMaxFactsLimit(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1.
	`)
	db := NewDatabase()
	db.MustAddFact("nat", value.IntV(0))
	if _, err := Run(prog, db, Options{MaxFacts: 100}); err == nil {
		t.Fatal("unbounded derivation must hit the fact limit")
	}
}

func TestMaxRoundsLimit(t *testing.T) {
	prog := MustParse(`
		nat(Y) :- nat(X), Y = X + 1, Y < 100000.
	`)
	db := NewDatabase()
	db.MustAddFact("nat", value.IntV(0))
	if _, err := Run(prog, db, Options{MaxRounds: 10}); err == nil {
		t.Fatal("fixpoint must be cut off by MaxRounds")
	}
}

// TestSkolemChaseValve: the textbook person/hasBoss cascade is warded, and
// the warded chase (with isomorphism checks) would saturate it — but the
// frontier-Skolem realization keeps minting fresh nulls level after level.
// The MaxFacts valve must stop the run with an error instead of looping;
// DESIGN.md documents this as the one place the Skolemized chase is
// strictly weaker than the full warded chase.
func TestSkolemChaseValve(t *testing.T) {
	prog := MustParse(`
		hasBoss(X, B) :- person(X).
		person(B) :- hasBoss(X, B).
	`)
	an, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Warded {
		t.Errorf("the cascade program is warded: %v", an.Violations)
	}
	db := NewDatabase()
	db.MustAddFact("person", value.Str("root"))
	if _, err := Run(prog, db, Options{MaxFacts: 500}); err == nil {
		t.Fatal("cascading existentials must hit the fact valve")
	}
}

func TestExpressionFunctionLibrary(t *testing.T) {
	cases := []struct {
		expr string
		want value.Value
	}{
		{`abs(0 - 5)`, value.IntV(5)},
		{`sqrt(16.0)`, value.FloatV(4)},
		{`floor(3.7)`, value.FloatV(3)},
		{`ceil(3.2)`, value.FloatV(4)},
		{`min2(3, 7)`, value.IntV(3)},
		{`max2(3, 7)`, value.IntV(7)},
		{`lower("ABC")`, value.Str("abc")},
		{`upper("abc")`, value.Str("ABC")},
		{`trim("  x ")`, value.Str("x")},
		{`strlen("abcd")`, value.IntV(4)},
		{`contains("hello", "ell")`, value.BoolV(true)},
		{`starts_with("hello", "he")`, value.BoolV(true)},
		{`substring_before("Rossi Mario", " ")`, value.Str("Rossi")},
		{`substring_after("Rossi Mario", " ")`, value.Str("Mario")},
		{`to_string(42)`, value.Str("42")},
		{`to_float("x") or true`, value.Value{}}, // error case, checked below
	}
	for _, c := range cases[:len(cases)-1] {
		res := runProg(t, fmt.Sprintf(`out(Y) :- in(X), Y = %s.`, c.expr), func(db *Database) {
			db.MustAddFact("in", value.IntV(1))
		})
		got := res.Output("out")[0][0]
		if !value.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	// Errors propagate.
	prog := MustParse(`out(Y) :- in(X), Y = to_int("nope").`)
	db := NewDatabase()
	db.MustAddFact("in", value.Str("nope"))
	if _, err := Run(prog, db, Options{}); err == nil {
		t.Error("to_int on garbage must error")
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`p(X :- q(X).`,            // unbalanced
		`p(X) :- q(X)`,            // missing terminator
		`p(X) :- q(X), Y = sum(.`, // broken aggregate
		`@output(controls`,        // broken annotation
		`p("unterminated) :- q(X).`,
		`p(X) :- msum(X).`, // monotonic without contributors
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse should fail: %s", src)
		}
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	prog := MustParse(`
		p(X) :- q(X).
		@input("q", "csv", "q.csv").
		@output("p").
	`)
	if len(prog.Inputs()) != 1 || prog.Inputs()[0].Args[2] != "q.csv" {
		t.Errorf("inputs = %v", prog.Inputs())
	}
	if out := prog.Outputs(); len(out) != 1 || out[0] != "p" {
		t.Errorf("outputs = %v", out)
	}
}

func TestDatabaseOperations(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("p", value.IntV(1))
	db.MustAddFact("p", value.IntV(2))
	db.MustAddFact("q", value.Str("x"), value.Str("y"))
	if db.TotalFacts() != 3 {
		t.Errorf("total = %d", db.TotalFacts())
	}
	if got := db.Predicates(); len(got) != 2 || got[0] != "p" {
		t.Errorf("predicates = %v", got)
	}
	clone := db.Clone()
	clone.MustAddFact("p", value.IntV(3))
	if db.Count("p") != 2 || clone.Count("p") != 3 {
		t.Error("clone shares storage")
	}
	other := NewDatabase()
	other.MustAddFact("p", value.IntV(2)) // duplicate
	other.MustAddFact("p", value.IntV(9))
	added, err := other.MergeInto(db)
	if err != nil || added != 1 {
		t.Errorf("merge added %d, %v", added, err)
	}
	if _, err := db.AddFact("p", value.IntV(1), value.IntV(2)); err == nil {
		t.Error("arity change must fail")
	}
	if db.Dump() == "" {
		t.Error("dump empty")
	}
}

func TestRelationLookupWindows(t *testing.T) {
	r := NewRelation(2)
	for i := 0; i < 10; i++ {
		if _, err := r.Insert(Fact{value.IntV(int64(i % 3)), value.IntV(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Lookup on first column.
	pos := r.Lookup(1, []value.Value{value.IntV(0)})
	if len(pos) != 4 { // i = 0,3,6,9
		t.Errorf("positions = %v", pos)
	}
	// Positions must be ascending (the engine's window filtering relies on
	// it).
	for i := 1; i < len(pos); i++ {
		if pos[i] <= pos[i-1] {
			t.Fatalf("positions not ascending: %v", pos)
		}
	}
	if !r.Contains(Fact{value.IntV(1), value.IntV(4)}) {
		t.Error("Contains misses an inserted fact")
	}
	if r.Contains(Fact{value.IntV(9), value.IntV(9)}) {
		t.Error("Contains reports a missing fact")
	}
}

// ---------------------------------------------------------------------------
// Golden run traces: worker-count independence
// ---------------------------------------------------------------------------

// traceBytes runs prog over a clone of db with the given worker count and
// returns the deterministic JSON serialization of its run trace.
func traceBytes(t *testing.T, prog *Program, db *Database, workers int) []byte {
	t.Helper()
	tr := obs.NewTrace()
	if _, err := Run(prog, db, Options{Workers: workers, Trace: tr}); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceWorkerIndependence: for linear programs — one growing-
// predicate occurrence per rule, so the sequential engine sees exactly the
// delta windows the sharded one does — the full JSON run trace (per-rule
// firings, derived facts, join probes, per-round delta sizes, outcome) is
// byte-identical across worker counts. Two fixtures: a recursive closure
// and a stratified program with negation.
func TestGoldenTraceWorkerIndependence(t *testing.T) {
	shrinkShards(t)
	fixtures := []struct{ name, src string }{
		{"linear recursion", `
			tc(X,Y) :- edge(X,Y).
			tc(X,Z) :- tc(X,Y), edge(Y,Z).
		`},
		{"negation over closure", `
			tc(X,Y) :- edge(X,Y).
			tc(X,Z) :- tc(X,Y), edge(Y,Z).
			oneway(X,Y) :- tc(X,Y), not tc(Y,X).
			acyclic(X) :- node(X), not tc(X,X).
		`},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			prog := MustParse(fx.src)
			db := randomEdgeDB(42, 40, 120)
			for i := 0; i < 40; i++ {
				db.MustAddFact("node", value.IntV(int64(i)))
			}
			base := traceBytes(t, prog, db, 1)
			// The trace must actually carry counters, not vacuous zeros.
			for _, field := range []string{`"firings"`, `"probes"`, `"delta"`, `"status": "ok"`} {
				if !bytes.Contains(base, []byte(field)) {
					t.Fatalf("trace misses %s:\n%s", field, base)
				}
			}
			for _, w := range []int{2, 8} {
				if got := traceBytes(t, prog, db, w); !bytes.Equal(base, got) {
					t.Errorf("trace differs between workers=1 and workers=%d\nworkers=1:\n%s\nworkers=%d:\n%s",
						w, base, w, got)
				}
			}
		})
	}
}

// TestTraceSequentialFallbacks: the engine falls back to fully sequential
// evaluation for provenance recording and for monotonic aggregates even when
// Workers > 1; the trace must still carry real counters on those paths.
func TestTraceSequentialFallbacks(t *testing.T) {
	shrinkShards(t)
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{
			name: "provenance forces sequential",
			src: `
				tc(X,Y) :- edge(X,Y).
				tc(X,Z) :- tc(X,Y), edge(Y,Z).
			`,
			opts: Options{Workers: 8, Provenance: true},
		},
		{
			name: "monotonic aggregate stratum is sequential",
			src: `
				deg(X,V) :- edge(X,Y), V = mcount(<Y>).
			`,
			opts: Options{Workers: 8},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := randomEdgeDB(7, 20, 60)
			tr := obs.NewTrace()
			opts := tc.opts
			opts.Trace = tr
			res, err := Run(MustParse(tc.src), db, opts)
			if err != nil {
				t.Fatal(err)
			}
			runs := tr.Runs()
			if len(runs) != 1 {
				t.Fatalf("recorded %d runs, want 1", len(runs))
			}
			rt := runs[0]
			var firings, derived, probes int64
			for _, rs := range rt.Rules {
				if rs.Evals == 0 {
					t.Errorf("rule %d never evaluated", rs.Rule)
				}
				firings += rs.Firings
				derived += rs.Derived
				probes += rs.Probes
			}
			if firings == 0 || probes == 0 {
				t.Errorf("fallback path recorded no work: firings=%d probes=%d", firings, probes)
			}
			if derived != int64(res.Stats.FactsDerived) {
				t.Errorf("per-rule derived sum %d != stats %d", derived, res.Stats.FactsDerived)
			}
			var roundDelta int
			for _, r := range rt.Rounds {
				roundDelta += r.Delta
			}
			if roundDelta != res.Stats.FactsDerived {
				t.Errorf("round deltas sum to %d, stats say %d", roundDelta, res.Stats.FactsDerived)
			}
			if rt.Outcome.Status != "ok" || rt.Outcome.Derived != res.Stats.FactsDerived {
				t.Errorf("outcome = %+v, stats = %+v", rt.Outcome, res.Stats)
			}
		})
	}
}
