package vadalog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestCSVFactsRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("owns", value.Str("a"), value.Str("b"), value.FloatV(0.6))
	db.MustAddFact("owns", value.Str("b,c"), value.Str(`quo"te`), value.IntV(7))
	var buf bytes.Buffer
	if err := WriteCSVFacts(db, "owns", &buf); err != nil {
		t.Fatal(err)
	}
	back := NewDatabase()
	if err := LoadCSVFacts(back, "owns", &buf); err != nil {
		t.Fatal(err)
	}
	if back.Dump() != db.Dump() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", back.Dump(), db.Dump())
	}
}

func TestRunWithCSVBindings(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "owns.csv"), []byte(
		"\"a\",\"b\",0.6\n\"a\",\"c\",0.3\n\"b\",\"c\",0.3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "company.csv"), []byte(
		"\"a\"\n\"b\"\n\"c\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
		@input("company", "csv", "company.csv").
		@input("owns", "csv", "owns.csv").
		@output("controls").
	`)
	res, outputs, err := RunWithBindings(prog, Bindings{BaseDir: dir}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FactsDerived == 0 {
		t.Fatal("nothing derived")
	}
	got := map[string]bool{}
	for _, f := range outputs["controls"] {
		got[f[0].S+"->"+f[1].S] = true
	}
	if !got["a->b"] || !got["a->c"] {
		t.Errorf("controls = %v", got)
	}

	// Export and re-load.
	out := t.TempDir()
	if err := ExportOutputs(prog, res.DB, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(out, "controls.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reloaded := NewDatabase()
	if err := LoadCSVFacts(reloaded, "controls", f); err != nil {
		t.Fatal(err)
	}
	if reloaded.Count("controls") != len(outputs["controls"]) {
		t.Errorf("exported CSV lost facts: %d vs %d", reloaded.Count("controls"), len(outputs["controls"]))
	}
	if !strings.Contains(reloaded.Dump(), "controls(a,b)") {
		t.Errorf("reloaded facts wrong:\n%s", reloaded.Dump())
	}
}

func TestFactsDatasetBinding(t *testing.T) {
	ds := NewDatabase()
	ds.MustAddFact("edge", value.IntV(1), value.IntV(2))
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		@input("edge", "facts", "edge").
		@output("tc").
	`)
	_, outputs, err := RunWithBindings(prog, Bindings{Datasets: map[string]*Database{"edge": ds}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs["tc"]) != 1 {
		t.Errorf("tc = %v", outputs["tc"])
	}
}

func TestBindingsErrors(t *testing.T) {
	prog := MustParse(`
		p(X) :- q(X).
		@input("q", "warp-drive", "x").
	`)
	if err := (Bindings{}).LoadInputs(prog, NewDatabase()); err == nil {
		t.Error("unknown source kind must fail")
	}
	prog2 := MustParse(`
		p(X) :- q(X).
		@input("q", "csv", "does-not-exist.csv").
	`)
	if err := (Bindings{BaseDir: t.TempDir()}).LoadInputs(prog2, NewDatabase()); err == nil {
		t.Error("missing csv must fail")
	}
	prog3 := MustParse(`
		p(X) :- q(X).
		@input("q", "facts", "nope").
	`)
	if err := (Bindings{Datasets: map[string]*Database{}}).LoadInputs(prog3, NewDatabase()); err == nil {
		t.Error("missing dataset must fail")
	}
	// "pg" inputs are informational and skipped.
	prog4 := MustParse(`
		p(X) :- q(X).
		@input("q", "pg", "(n:Q) return n").
	`)
	if err := (Bindings{}).LoadInputs(prog4, NewDatabase()); err != nil {
		t.Errorf("pg inputs must be skipped, got %v", err)
	}
}
