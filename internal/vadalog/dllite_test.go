package vadalog

import (
	"testing"

	"repro/internal/value"
)

// Section 1 of the paper requires the intensional language to support
// "reasoning to the extent of tractable description logic (e.g., DL-Lite_R)"
// and to "cover any SPARQL query over RDF datasets under the entailment
// regime of OWL 2 QL". DL-Lite_R axioms translate to existential rules; this
// suite encodes each axiom form and checks query answering under
// entailment.

// TestDLLiteConceptInclusion: A ⊑ B (rdfs:subClassOf).
func TestDLLiteConceptInclusion(t *testing.T) {
	res := runProg(t, `
		legalPerson(X) :- business(X).
		person(X) :- legalPerson(X).
	`, func(db *Database) {
		db.MustAddFact("business", value.Str("acme"))
	})
	if len(res.Output("person")) != 1 {
		t.Errorf("subclass chain not entailed: %v", res.Output("person"))
	}
}

// TestDLLiteRoleInclusion: R ⊑ S (rdfs:subPropertyOf).
func TestDLLiteRoleInclusion(t *testing.T) {
	res := runProg(t, `
		relatedTo(X, Y) :- marriedTo(X, Y).
		relatedTo(X, Y) :- siblingOf(X, Y).
	`, func(db *Database) {
		db.MustAddFact("marriedTo", value.Str("a"), value.Str("b"))
		db.MustAddFact("siblingOf", value.Str("a"), value.Str("c"))
	})
	if len(res.Output("relatedTo")) != 2 {
		t.Errorf("role inclusion not entailed")
	}
}

// TestDLLiteInverseRole: R ⊑ S⁻.
func TestDLLiteInverseRole(t *testing.T) {
	res := runProg(t, `
		ownedBy(Y, X) :- owns(X, Y).
	`, func(db *Database) {
		db.MustAddFact("owns", value.Str("p"), value.Str("c"))
	})
	got := res.Output("ownedBy")
	if len(got) != 1 || got[0][0].S != "c" {
		t.Errorf("inverse role wrong: %v", got)
	}
}

// TestDLLiteDomainRange: ∃R ⊑ A (domain) and ∃R⁻ ⊑ B (range).
func TestDLLiteDomainRange(t *testing.T) {
	res := runProg(t, `
		person(X) :- owns(X, Y).
		company(Y) :- owns(X, Y).
	`, func(db *Database) {
		db.MustAddFact("owns", value.Str("p"), value.Str("c"))
	})
	if len(res.Output("person")) != 1 || len(res.Output("company")) != 1 {
		t.Errorf("domain/range not entailed")
	}
}

// TestDLLiteExistentialRHS: A ⊑ ∃R (every instance of A has an R-successor,
// possibly anonymous — the labeled-null case OWL 2 QL entailment requires).
func TestDLLiteExistentialRHS(t *testing.T) {
	res := runProg(t, `
		hasParent(X, P) :- person(X).
		person2(P) :- hasParent(X, P).
		grandparented(X) :- hasParent(X, P), hasParent2(P, G).
		hasParent2(P, G) :- person2(P).
	`, func(db *Database) {
		db.MustAddFact("person", value.Str("me"))
	})
	// The SPARQL-style query "does me have a grandparent?" must be entailed
	// through two levels of anonymous individuals.
	if len(res.Output("grandparented")) != 1 {
		t.Errorf("existential chain not entailed: %v", res.Output("grandparented"))
	}
	// The anonymous parents are labeled nulls (Skolem identifiers), not
	// constants.
	if got := res.Output("hasParent"); got[0][1].K != value.ID {
		t.Errorf("anonymous individual should be a null, got %v", got[0][1])
	}
}

// TestDLLiteQueryAnswering: a conjunctive query over the saturated ontology
// (the shape of SPARQL BGP answering under OWL 2 QL).
func TestDLLiteQueryAnswering(t *testing.T) {
	res := runProg(t, `
		% Ontology: Manager ⊑ Employee; Employee ⊑ ∃worksFor;
		% ∃worksFor⁻ ⊑ Organization.
		employee(X) :- manager(X).
		worksFor(X, O) :- employee(X).
		organization(O) :- worksFor(X, O).
		% Query: q(X) ← employee(X) ∧ worksFor(X, O) ∧ organization(O).
		q(X) :- employee(X), worksFor(X, O), organization(O).
	`, func(db *Database) {
		db.MustAddFact("manager", value.Str("ann"))
		db.MustAddFact("employee", value.Str("bob"))
	})
	if len(res.Output("q")) != 2 {
		t.Errorf("query answers = %v, want ann and bob", res.Output("q"))
	}
}

// TestDLLiteDisjointnessViaNegation: A ⊓ B ⊑ ⊥ surfaces as an inconsistency
// query (the mild negation of the desiderata).
func TestDLLiteDisjointnessViaNegation(t *testing.T) {
	res := runProg(t, `
		inconsistent(X) :- physicalPerson(X), legalPerson(X).
		consistentPhysical(X) :- physicalPerson(X), not legalPerson(X).
	`, func(db *Database) {
		db.MustAddFact("physicalPerson", value.Str("ok"))
		db.MustAddFact("physicalPerson", value.Str("bad"))
		db.MustAddFact("legalPerson", value.Str("bad"))
	})
	if len(res.Output("inconsistent")) != 1 {
		t.Errorf("disjointness violation not detected")
	}
	if got := res.Output("consistentPhysical"); len(got) != 1 || got[0][0].S != "ok" {
		t.Errorf("negation-filtered answers wrong: %v", got)
	}
}

// TestExpressivenessSuite is the E15 umbrella: recursive Datalog (TC),
// stratified negation, and existential entailment all in one program —
// strictly beyond UCQ/RPQ languages.
func TestExpressivenessSuite(t *testing.T) {
	res := runProg(t, `
		reach(X, Y) :- edge(X, Y).
		reach(X, Z) :- reach(X, Y), edge(Y, Z).
		sink(X) :- node(X), not edge(X, _).
		blessed(X, B) :- sink(X).
	`, func(db *Database) {
		for _, n := range []string{"a", "b", "c"} {
			db.MustAddFact("node", value.Str(n))
		}
		db.MustAddFact("edge", value.Str("a"), value.Str("b"))
		db.MustAddFact("edge", value.Str("b"), value.Str("c"))
	})
	if len(res.Output("reach")) != 3 {
		t.Errorf("reach = %v", res.Output("reach"))
	}
	if got := res.Output("sink"); len(got) != 1 || got[0][0].S != "c" {
		t.Errorf("sink = %v", got)
	}
	if got := res.Output("blessed"); len(got) != 1 || got[0][1].K != value.ID {
		t.Errorf("blessed = %v", got)
	}
}
