package vadalog

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestExplainTransitiveClosure(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		db.MustAddFact("edge", value.Str(e[0]), value.Str(e[1]))
	}
	res, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.Explain("tc", Fact{value.Str("a"), value.Str("d")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// tc(a,d) <- tc(a,c) <- tc(a,b) <- edge(a,b); plus edge(b,c), edge(c,d).
	if proof.IsGround() || proof.Rule != 1 {
		t.Errorf("root rule = %d", proof.Rule)
	}
	if proof.Size() != 6 {
		t.Errorf("proof size = %d, want 6\n%s", proof.Size(), proof)
	}
	// Every leaf is ground.
	var checkLeaves func(p *ProofNode)
	grounds := 0
	checkLeaves = func(p *ProofNode) {
		if len(p.Parents) == 0 {
			if !p.IsGround() {
				t.Errorf("non-ground leaf: %s%s", p.Pred, p.Fact)
			}
			grounds++
		}
		for _, par := range p.Parents {
			checkLeaves(par)
		}
	}
	checkLeaves(proof)
	if grounds != 3 {
		t.Errorf("ground leaves = %d, want the 3 edges", grounds)
	}
	text := proof.String()
	if !strings.Contains(text, "[ground]") || !strings.Contains(text, "[rule 1, line 3]") {
		t.Errorf("rendering:\n%s", text)
	}
}

func TestExplainControl(t *testing.T) {
	prog := MustParse(`
		controls(X, X) :- company(X).
		controls(X, Y) :- controls(X, Z), owns(Z, Y, W), V = msum(W, <Z>), V > 0.5.
	`)
	db := NewDatabase()
	for _, c := range []string{"a", "b", "c"} {
		db.MustAddFact("company", value.Str(c))
	}
	db.MustAddFact("owns", value.Str("a"), value.Str("b"), value.FloatV(0.6))
	db.MustAddFact("owns", value.Str("a"), value.Str("c"), value.FloatV(0.3))
	db.MustAddFact("owns", value.Str("b"), value.Str("c"), value.FloatV(0.3))
	res, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	// Why does a control c? The proof must bottom out in the ownership data
	// and the self-control seed.
	proof, err := res.Explain("controls", Fact{value.Str("a"), value.Str("c")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := proof.String()
	for _, want := range []string{"owns(", "company(a)", "[ground]"} {
		if !strings.Contains(text, want) {
			t.Errorf("proof missing %q:\n%s", want, text)
		}
	}
}

func TestExplainDepthLimit(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := NewDatabase()
	prev := "n0"
	for i := 1; i <= 10; i++ {
		next := prev[:1] + string(rune('0'+i))
		db.MustAddFact("edge", value.Str(prev), value.Str(next))
		prev = next
	}
	res, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := res.Explain("tc", Fact{value.Str("n0"), value.Str(prev)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := res.Explain("tc", Fact{value.Str("n0"), value.Str(prev)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Size() >= full.Size() {
		t.Errorf("depth cap had no effect: %d vs %d", capped.Size(), full.Size())
	}
}

func TestExplainErrors(t *testing.T) {
	prog := MustParse(`p(X) :- q(X).`)
	db := NewDatabase()
	db.MustAddFact("q", value.IntV(1))
	res, err := Run(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Explain("p", Fact{value.IntV(1)}, 0); err == nil {
		t.Error("Explain without Provenance must fail")
	}
	res2, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.Explain("p", Fact{value.IntV(99)}, 0); err == nil {
		t.Error("Explain of an absent fact must fail")
	}
	if _, err := res2.Explain("p", Fact{value.IntV(1)}, 0); err != nil {
		t.Errorf("valid explain failed: %v", err)
	}
}

func TestExplainStratifiedAggregate(t *testing.T) {
	prog := MustParse(`
		total(G, S) :- sale(G, V), S = sum(V).
	`)
	db := NewDatabase()
	db.MustAddFact("sale", value.Str("g"), value.IntV(2))
	db.MustAddFact("sale", value.Str("g"), value.IntV(3))
	res, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.Explain("total", Fact{value.Str("g"), value.IntV(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !proof.ViaAggregate {
		t.Errorf("aggregate derivation not marked: %s", proof)
	}
}

func TestProvenanceOffByDefaultCostsNothing(t *testing.T) {
	prog := MustParse(`
		tc(X,Y) :- edge(X,Y).
		tc(X,Z) :- tc(X,Y), edge(Y,Z).
	`)
	db := randomEdgeDB(3, 15, 40)
	res, err := Run(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.prov != nil {
		t.Error("provenance recorded without the option")
	}
	// Results are identical either way.
	res2, err := Run(prog, db, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Dump() != res2.DB.Dump() {
		t.Error("provenance must not change the derived facts")
	}
}
