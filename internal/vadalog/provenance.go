package vadalog

import (
	"fmt"
	"strings"
)

// Provenance: when Options.Provenance is set, the engine records, for every
// derived fact, the rule and the body facts of its first derivation. Explain
// then reconstructs the full proof tree down to the ground data — the
// "why is this company controlled?" question supervision analysts ask of the
// intensional component.

// parentRef identifies one body fact of a derivation by relation and
// position (relations are append-only, so positions are stable).
type parentRef struct {
	pred string
	pos  int
}

// derivation records how a fact was first derived.
type derivation struct {
	ruleIdx int
	line    int
	parents []parentRef
	// viaAggregate marks derivations through a stratified aggregate, whose
	// parents are the whole group rather than one body match.
	viaAggregate bool
}

// ProofNode is one node of a proof tree: a fact together with the rule that
// derived it and the proofs of its body facts. Ground facts have no rule.
type ProofNode struct {
	Pred string
	Fact Fact

	// Rule is the 0-based index of the deriving rule, -1 for ground facts.
	Rule int
	// Line is the rule's source line, 0 for ground facts.
	Line int
	// ViaAggregate marks derivations through a stratified aggregate.
	ViaAggregate bool

	Parents []*ProofNode
}

// IsGround reports whether the node is an input fact.
func (p *ProofNode) IsGround() bool { return p.Rule < 0 }

// String renders the proof tree with indentation.
func (p *ProofNode) String() string {
	var b strings.Builder
	p.render(&b, "")
	return b.String()
}

func (p *ProofNode) render(b *strings.Builder, indent string) {
	b.WriteString(indent)
	b.WriteString(p.Pred)
	b.WriteString(p.Fact.String())
	switch {
	case p.IsGround():
		b.WriteString("   [ground]")
	case p.ViaAggregate:
		fmt.Fprintf(b, "   [rule %d, line %d, via aggregate]", p.Rule, p.Line)
	default:
		fmt.Fprintf(b, "   [rule %d, line %d]", p.Rule, p.Line)
	}
	b.WriteByte('\n')
	for _, par := range p.Parents {
		par.render(b, indent+"  ")
	}
}

// Size returns the number of nodes in the proof tree.
func (p *ProofNode) Size() int {
	n := 1
	for _, par := range p.Parents {
		n += par.Size()
	}
	return n
}

// provKey identifies a fact across relations.
func provKey(pred string, f Fact) string {
	return pred + "\x00" + encodeKey(f)
}

// Explain reconstructs the proof tree of a derived fact, down to the ground
// data. It requires the run to have been executed with Options.Provenance.
// maxDepth bounds the tree (0 means unlimited); deeper branches are
// truncated into leaf nodes marked as derived without parents.
func (r *Result) Explain(pred string, f Fact, maxDepth int) (*ProofNode, error) {
	if r.prov == nil {
		return nil, fmt.Errorf("vadalog: run without Options.Provenance; nothing to explain")
	}
	rel := r.DB.Relation(pred)
	if rel == nil || !rel.Contains(f) {
		return nil, fmt.Errorf("vadalog: fact %s%s not in the result", pred, f)
	}
	return r.explain(pred, f, maxDepth, 0), nil
}

func (r *Result) explain(pred string, f Fact, maxDepth, depth int) *ProofNode {
	node := &ProofNode{Pred: pred, Fact: f, Rule: -1}
	d, ok := r.prov[provKey(pred, f)]
	if !ok {
		return node // ground fact
	}
	node.Rule = d.ruleIdx
	node.Line = d.line
	node.ViaAggregate = d.viaAggregate
	if maxDepth > 0 && depth >= maxDepth {
		return node
	}
	for _, pr := range d.parents {
		pf := r.DB.Relation(pr.pred).At(pr.pos)
		node.Parents = append(node.Parents, r.explain(pr.pred, pf, maxDepth, depth+1))
	}
	return node
}
