package vadalog

import "sort"

// Exported views of the body-literal classification the compiler applies in
// written order (compileProgRule): whether an expression literal would be an
// assignment or a condition, and which variables a literal touches. The
// cost-based planner (internal/plan) reorders rule bodies as a program
// transformation — the same pattern as the incremental Maintainer — and
// needs exactly this classification to know which literals are
// position-sensitive and must pin a rule to its written order.

// AssignTarget reports whether the expression has the form Var = RHS — the
// shape the compiler turns into an assignment when Var is unbound at the
// literal's position — and if so returns the variable name.
func (e *Expr) AssignTarget() (string, bool) { return e.assignTarget() }

// HasAggregate reports whether the expression is an aggregate assignment
// Var = agg(...). Aggregates are evaluated in body-traversal order (their
// contributor multiplicity depends on it), so a rule containing one is
// outside the reorderable class.
func (e *Expr) HasAggregate() bool { return e.findAggregate() != nil }

// VarNames returns the distinct variable names referenced by the expression
// (including aggregate arguments and contributors), sorted.
func (e *Expr) VarNames() []string {
	set := map[string]bool{}
	e.vars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// VarNames returns the distinct variable names a body literal touches:
// atom argument variables for (possibly negated) atoms, referenced
// variables for expression literals. Sorted.
func (l Literal) VarNames() []string {
	switch l.Kind {
	case LitExpr:
		return l.Expr.VarNames()
	default:
		vs := append([]string(nil), l.Atom.Vars()...)
		sort.Strings(vs)
		return vs
	}
}

// CloneRules returns a copy of the program whose rule slice and per-rule
// body slices are fresh, so a transformation pass can reorder and extend
// them without mutating the input. Heads, atoms, terms and annotations are
// shared — transformations treat them as immutable.
func (p *Program) CloneRules() *Program {
	out := &Program{
		Rules:       make([]Rule, len(p.Rules)),
		Annotations: append([]Annotation(nil), p.Annotations...),
	}
	for i, r := range p.Rules {
		r.Body = append([]Literal(nil), r.Body...)
		out.Rules[i] = r
	}
	return out
}
