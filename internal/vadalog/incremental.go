package vadalog

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
)

// Incremental maintenance of a saturated program: Section 6 of the paper
// describes accumulating changes and applying them to the target database in
// batches; the natural next step — which its "performance considerations"
// discussion gestures at — is to propagate new ground facts through the
// existing fixpoint instead of recomputing it. This file implements that for
// monotonic programs (no stratified negation, no stratified aggregation):
// newly inserted facts become the delta of a resumed semi-naive run, and the
// monotonic-aggregate accumulators persist across propagations.
type Incremental struct {
	eng      *engine
	lastLens map[string]int
}

// NewIncremental runs the initial fixpoint and returns a handle for
// incremental propagation. The database is saturated in place. Programs with
// stratified negation or stratified aggregation are rejected: deletions and
// non-monotonic re-aggregation would require view maintenance, which batch
// recomputation covers.
func NewIncremental(prog *Program, db *Database, opts Options) (*Incremental, error) {
	return NewIncrementalCtx(context.Background(), prog, db, opts)
}

// NewIncrementalCtx is NewIncremental under a context: the initial fixpoint
// honors ctx and Options.Timeout exactly like RunCtx (typed ErrCanceled /
// ErrTimeout). An interrupted initial run returns the error and no handle.
func NewIncrementalCtx(ctx context.Context, prog *Program, db *Database, opts Options) (*Incremental, error) {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind == LitNegAtom {
				return nil, fmt.Errorf("vadalog: incremental maintenance requires a negation-free program (rule at line %d)", r.Line)
			}
		}
		if hasStratifiedAggregate(r) {
			return nil, fmt.Errorf("vadalog: incremental maintenance requires monotonic aggregation only (rule at line %d)", r.Line)
		}
	}
	e, err := newEngine(ctx, prog, db, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e.startPool()
	err = e.run()
	e.stopPool()
	_, err = e.finish(start, err)
	// The construction context (and any Options.Timeout timer) covers only
	// the initial fixpoint; each PropagateCtx installs its own.
	e.release()
	e.ctx = context.Background()
	if err != nil {
		return nil, err
	}
	return &Incremental{eng: e, lastLens: e.lens()}, nil
}

// DB returns the saturated database.
func (inc *Incremental) DB() *Database { return inc.eng.db }

// Result exposes the engine state as a Result, so Explain works over the
// incrementally maintained database (requires Options.Provenance).
func (inc *Incremental) Result() *Result {
	return &Result{DB: inc.eng.db, Analysis: inc.eng.an, prov: inc.eng.prov}
}

// Add inserts a ground fact; it becomes part of the next Propagate delta.
func (inc *Incremental) Add(pred string, vals ...value.Value) error {
	_, err := inc.eng.db.AddFact(pred, vals...)
	return err
}

// Propagate pushes every fact added since the last propagation through the
// fixpoint, returning the number of newly derived facts. Monotonic-aggregate
// accumulators carry over, so running sums continue from their previous
// values exactly as a full recomputation would reach them.
func (inc *Incremental) Propagate() (int, error) {
	return inc.PropagateCtx(context.Background())
}

// PropagateCtx is Propagate under a context: cancellation and Options.Timeout
// interrupt the resumed fixpoint at round and shard boundaries with the same
// typed errors as RunCtx. On interruption the already-propagated facts stay
// in the database and the delta baseline is left untouched, so a later
// PropagateCtx resumes from the last completed propagation (re-derivations
// are deduplicated by insertion).
func (inc *Incremental) PropagateCtx(ctx context.Context) (int, error) {
	e := inc.eng
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		e.ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	before, roundsBefore := e.derived, e.rounds
	start := time.Now()
	e.startPool()
	defer e.stopPool()
	var err error
	for si, stratum := range e.an.Strata {
		if err = e.resumeStratum(si, stratum, inc.lastLens); err != nil {
			break
		}
	}
	err = canonicalRunErr(err)
	status := statusOf(err)
	if e.trace != nil {
		e.trace.Finish(status, e.rounds, e.derived, time.Since(start))
	}
	obs.CountRun(status, e.rounds-roundsBefore, e.derived-before)
	if err != nil {
		return e.derived - before, err
	}
	inc.lastLens = e.lens()
	return e.derived - before, nil
}

// resumeStratum runs the stratum's fixpoint treating every relation that
// grew since base as the initial delta (new EDB facts and lower-stratum
// derivations alike).
func (e *engine) resumeStratum(stratumIdx int, ruleIdxs []int, base map[string]int) error {
	if err := e.checkCtx(); err != nil {
		return err
	}
	grow := headPreds(e.prog, ruleIdxs)
	// Changed predicates: anything that grew since the last propagation,
	// plus the stratum's own heads (which may grow during this fixpoint).
	deltaPred := map[string]bool{}
	for pred, rel := range e.db.rels {
		if rel.Len() > base[pred] {
			deltaPred[pred] = true
		}
	}
	for p := range grow {
		deltaPred[p] = true
	}

	rules := make([]*cRule, 0, len(ruleIdxs))
	for _, ri := range ruleIdxs {
		cr := e.rules[ri]
		cr.growOccs = cr.growOccs[:0]
		for si, st := range cr.steps {
			if st.kind == stepJoin && deltaPred[st.pred] {
				cr.growOccs = append(cr.growOccs, si)
			}
		}
		rules = append(rules, cr)
	}

	prev := base
	for round := 1; ; round++ {
		e.rounds++
		if err := e.checkCtx(); err != nil {
			return err
		}
		if round > e.opts.MaxRounds {
			return fmt.Errorf("vadalog: incremental fixpoint did not converge within %d rounds", e.opts.MaxRounds)
		}
		cur := e.lens()
		inserted := 0
		for _, cr := range rules {
			if len(cr.growOccs) == 0 {
				continue
			}
			for _, occ := range cr.growOccs {
				w := deltaWindows{prev: prev, cur: cur, deltaStep: occ, growOccs: cr.growOccs}
				n, err := e.eval(cr, w)
				if err != nil {
					return err
				}
				inserted += n
			}
		}
		if e.trace != nil {
			e.trace.AddRound(stratumIdx, round, inserted)
		}
		if inserted == 0 {
			return nil
		}
		prev = cur
	}
}
