package vadalog

import (
	"fmt"

	"repro/internal/value"
)

// Incremental maintenance of a saturated program: Section 6 of the paper
// describes accumulating changes and applying them to the target database in
// batches; the natural next step — which its "performance considerations"
// discussion gestures at — is to propagate new ground facts through the
// existing fixpoint instead of recomputing it. This file implements that for
// monotonic programs (no stratified negation, no stratified aggregation):
// newly inserted facts become the delta of a resumed semi-naive run, and the
// monotonic-aggregate accumulators persist across propagations.
type Incremental struct {
	eng      *engine
	lastLens map[string]int
}

// NewIncremental runs the initial fixpoint and returns a handle for
// incremental propagation. The database is saturated in place. Programs with
// stratified negation or stratified aggregation are rejected: deletions and
// non-monotonic re-aggregation would require view maintenance, which batch
// recomputation covers.
func NewIncremental(prog *Program, db *Database, opts Options) (*Incremental, error) {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind == LitNegAtom {
				return nil, fmt.Errorf("vadalog: incremental maintenance requires a negation-free program (rule at line %d)", r.Line)
			}
		}
		if hasStratifiedAggregate(r) {
			return nil, fmt.Errorf("vadalog: incremental maintenance requires monotonic aggregation only (rule at line %d)", r.Line)
		}
	}
	an, err := Analyze(prog)
	if err != nil {
		return nil, err
	}
	if opts.RequireWarded && !an.Warded {
		return nil, fmt.Errorf("vadalog: program is not warded")
	}
	e := &engine{prog: prog, an: an, db: db, opts: opts}
	if e.opts.MaxRounds == 0 {
		e.opts.MaxRounds = defaultMaxRounds
	}
	if e.opts.Provenance {
		e.prov = map[string]derivation{}
	}
	if err := e.prepare(); err != nil {
		return nil, err
	}
	e.startPool()
	err = e.run()
	e.stopPool()
	if err != nil {
		return nil, err
	}
	return &Incremental{eng: e, lastLens: e.lens()}, nil
}

// DB returns the saturated database.
func (inc *Incremental) DB() *Database { return inc.eng.db }

// Result exposes the engine state as a Result, so Explain works over the
// incrementally maintained database (requires Options.Provenance).
func (inc *Incremental) Result() *Result {
	return &Result{DB: inc.eng.db, Analysis: inc.eng.an, prov: inc.eng.prov}
}

// Add inserts a ground fact; it becomes part of the next Propagate delta.
func (inc *Incremental) Add(pred string, vals ...value.Value) error {
	_, err := inc.eng.db.AddFact(pred, vals...)
	return err
}

// Propagate pushes every fact added since the last propagation through the
// fixpoint, returning the number of newly derived facts. Monotonic-aggregate
// accumulators carry over, so running sums continue from their previous
// values exactly as a full recomputation would reach them.
func (inc *Incremental) Propagate() (int, error) {
	before := inc.eng.derived
	inc.eng.startPool()
	defer inc.eng.stopPool()
	for _, stratum := range inc.eng.an.Strata {
		if err := inc.eng.resumeStratum(stratum, inc.lastLens); err != nil {
			return inc.eng.derived - before, err
		}
	}
	inc.lastLens = inc.eng.lens()
	return inc.eng.derived - before, nil
}

// resumeStratum runs the stratum's fixpoint treating every relation that
// grew since base as the initial delta (new EDB facts and lower-stratum
// derivations alike).
func (e *engine) resumeStratum(ruleIdxs []int, base map[string]int) error {
	grow := headPreds(e.prog, ruleIdxs)
	// Changed predicates: anything that grew since the last propagation,
	// plus the stratum's own heads (which may grow during this fixpoint).
	deltaPred := map[string]bool{}
	for pred, rel := range e.db.rels {
		if rel.Len() > base[pred] {
			deltaPred[pred] = true
		}
	}
	for p := range grow {
		deltaPred[p] = true
	}

	rules := make([]*cRule, 0, len(ruleIdxs))
	for _, ri := range ruleIdxs {
		cr := e.rules[ri]
		cr.growOccs = cr.growOccs[:0]
		for si, st := range cr.steps {
			if st.kind == stepJoin && deltaPred[st.pred] {
				cr.growOccs = append(cr.growOccs, si)
			}
		}
		rules = append(rules, cr)
	}

	prev := base
	for round := 1; ; round++ {
		e.rounds++
		if round > e.opts.MaxRounds {
			return fmt.Errorf("vadalog: incremental fixpoint did not converge within %d rounds", e.opts.MaxRounds)
		}
		cur := e.lens()
		inserted := 0
		for _, cr := range rules {
			if len(cr.growOccs) == 0 {
				continue
			}
			for _, occ := range cr.growOccs {
				w := deltaWindows{prev: prev, cur: cur, deltaStep: occ, growOccs: cr.growOccs}
				n, err := e.eval(cr, w)
				if err != nil {
					return err
				}
				inserted += n
			}
		}
		if inserted == 0 {
			return nil
		}
		prev = cur
	}
}
