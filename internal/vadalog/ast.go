// Package vadalog implements a Warded Datalog± reasoning engine in the style
// of the Vadalog System that the paper uses as its execution substrate
// (Section 4, "Relational Foundations and Vadalog").
//
// The engine supports:
//
//   - existential rules φ(x,y) → ∃z ψ(x,z), with existentials realized by
//     frontier-keyed Skolemization (the restricted chase) and with the
//     explicit linker Skolem functors of Section 4;
//   - recursion with semi-naive (delta) fixpoint evaluation;
//   - stratified negation;
//   - stratified aggregation (sum, count, min, max, avg, prod, pack) and
//     monotonic aggregation (msum, mcount, mmin, mmax — written
//     sum(W,<Z>) etc. in the paper's Example 4.1/4.2);
//   - conditions and expressions over a function library;
//   - @input/@output annotations binding predicates to external sources.
//
// Static analysis (analysis.go) provides the dependency graph,
// stratification, and the wardedness and piecewise-linearity checks that
// guarantee decidability and PTIME data complexity for the programs the
// framework generates.
package vadalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Term is an argument of an atom: a variable, a constant, or a Skolem term.
type Term interface {
	isTerm()
	String() string
}

// Var is a (regular) variable. The blank variable "_" is expanded to a fresh
// variable by the parser, so engine code never sees it.
type Var struct{ Name string }

func (Var) isTerm()          {}
func (v Var) String() string { return v.Name }

// Const is a constant from the domain C (or a labeled null / Skolem id when
// facts are fed back into rules).
type Const struct{ Value value.Value }

func (Const) isTerm() {}
func (c Const) String() string {
	if c.Value.K == value.String {
		return fmt.Sprintf("%q", c.Value.S)
	}
	return c.Value.String()
}

// SkolemTerm is an explicit linker Skolem functor application #name(args),
// usable in rule heads (Section 4, "Linker Skolem Functors"). Its arguments
// must be universally quantified variables or constants.
type SkolemTerm struct {
	Functor string
	Args    []Term
}

func (SkolemTerm) isTerm() {}
func (s SkolemTerm) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return "#" + s.Functor + "(" + strings.Join(parts, ",") + ")"
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Vars returns the distinct variable names in the atom, in first-occurrence
// order.
func (a Atom) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range a.Args {
		if v, ok := t.(Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	}
	return out
}

// Literal is one element of a rule body: a positive atom, a negated atom, or
// an expression literal (condition or assignment — which of the two is
// decided during compilation, based on whether the left-hand variable is
// already bound).
type Literal struct {
	Kind LiteralKind
	Atom Atom  // for LitAtom, LitNegAtom
	Expr *Expr // for LitExpr: a boolean condition or Var = Expr equation
}

// LiteralKind discriminates body literal forms.
type LiteralKind uint8

// Literal kinds.
const (
	LitAtom LiteralKind = iota
	LitNegAtom
	LitExpr
)

func (l Literal) String() string {
	switch l.Kind {
	case LitAtom:
		return l.Atom.String()
	case LitNegAtom:
		return "not " + l.Atom.String()
	default:
		return l.Expr.String()
	}
}

// Rule is an existential rule body → head. Head variables that do not occur
// in the body are existentially quantified; the engine realizes them with
// frontier-keyed Skolem functors unless the head uses an explicit SkolemTerm.
type Rule struct {
	Head []Atom
	Body []Literal
	// Line is the 1-based source line of the rule, for diagnostics.
	Line int
	// FirstMatchOnly stops the body traversal after the first complete match
	// per binding of the leading atom. It is never set by the parser: the
	// DRed re-derivation transformation (delta.go) sets it on guard-fronted
	// variants, where the guard binds every variable of the guarded head and
	// one witness therefore suffices to re-derive the fact.
	FirstMatchOnly bool
}

func (r Rule) String() string {
	heads := make([]string, len(r.Head))
	for i, h := range r.Head {
		heads[i] = h.String()
	}
	bodies := make([]string, len(r.Body))
	for i, b := range r.Body {
		bodies[i] = b.String()
	}
	if len(bodies) == 0 {
		return strings.Join(heads, ", ") + "."
	}
	return strings.Join(heads, ", ") + " :- " + strings.Join(bodies, ", ") + "."
}

// BodyVars returns the distinct variables occurring in positive body atoms,
// in first-occurrence order.
func (r Rule) BodyVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range r.Body {
		if l.Kind != LitAtom {
			continue
		}
		for _, v := range l.Atom.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// HeadVars returns the distinct variables occurring in head atoms (including
// inside explicit Skolem terms), in first-occurrence order.
func (r Rule) HeadVars() []string {
	var out []string
	seen := map[string]bool{}
	var walk func(t Term)
	walk = func(t Term) {
		switch t := t.(type) {
		case Var:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case SkolemTerm:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, h := range r.Head {
		for _, t := range h.Args {
			walk(t)
		}
	}
	return out
}

// ExistentialVars returns the head variables not bound by the body (the ∃z
// tuple of the rule), excluding variables assigned by expression literals.
func (r Rule) ExistentialVars() []string {
	bound := map[string]bool{}
	for _, v := range r.BodyVars() {
		bound[v] = true
	}
	for _, l := range r.Body {
		if l.Kind == LitExpr {
			if v, ok := l.Expr.assignTarget(); ok {
				bound[v] = true
			}
		}
	}
	var out []string
	for _, v := range r.HeadVars() {
		if !bound[v] {
			out = append(out, v)
		}
	}
	return out
}

// Annotation is a directive such as
//
//	@input("owns", "csv", "owns.csv").
//	@output("controls").
//	@bind("SM_Node", "pg", "dictionary").
//
// Annotations carry the name of the directive and its string arguments; their
// interpretation is up to the runtime bindings (see Bindings in engine.go).
type Annotation struct {
	Name string
	Args []string
	Line int
}

func (a Annotation) String() string {
	parts := make([]string, len(a.Args))
	for i, s := range a.Args {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return "@" + a.Name + "(" + strings.Join(parts, ",") + ")."
}

// Program is a set of rules plus annotations, as defined in Section 4.
type Program struct {
	Rules       []Rule
	Annotations []Annotation
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, a := range p.Annotations {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Outputs returns the predicates marked with @output annotations, sorted.
func (p *Program) Outputs() []string {
	var out []string
	for _, a := range p.Annotations {
		if a.Name == "output" && len(a.Args) >= 1 {
			out = append(out, a.Args[0])
		}
	}
	sort.Strings(out)
	return out
}

// Inputs returns the @input annotations.
func (p *Program) Inputs() []Annotation {
	var out []Annotation
	for _, a := range p.Annotations {
		if a.Name == "input" {
			out = append(out, a)
		}
	}
	return out
}

// EDBPredicates returns the predicates that occur in rule bodies but never in
// rule heads — the extensional database the program reads from.
func (p *Program) EDBPredicates() []string {
	inHead := map[string]bool{}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			inHead[h.Pred] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind == LitAtom || l.Kind == LitNegAtom {
				if !inHead[l.Atom.Pred] && !seen[l.Atom.Pred] {
					seen[l.Atom.Pred] = true
					out = append(out, l.Atom.Pred)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// IDBPredicates returns the predicates defined by rule heads, sorted.
func (p *Program) IDBPredicates() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range p.Rules {
		for _, h := range r.Head {
			if !seen[h.Pred] {
				seen[h.Pred] = true
				out = append(out, h.Pred)
			}
		}
	}
	sort.Strings(out)
	return out
}
